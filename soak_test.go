// Soak tests: long randomized campaigns across the whole surface, skipped
// in -short mode. They exist to catch rare interleaving bugs that the
// bounded exhaustive checks cannot reach and short randomized tests are
// unlikely to sample.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/history"
	"repro/internal/word"
)

func TestSoakSimulatedProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	type cfg struct {
		proto  core.Protocol
		n      int
		faulty []int
		t      int
	}
	configs := []cfg{
		{core.SingleCAS{}, 2, []int{0}, fault.Unbounded},
		{core.NewFPlusOne(2), 5, []int{0, 1}, fault.Unbounded},
		{core.NewFPlusOne(3), 8, []int{0, 1, 2}, fault.Unbounded},
		{core.NewStaged(2, 2), 3, []int{0, 1}, 2},
		{core.NewStaged(3, 1), 4, []int{0, 1, 2}, 1},
		{core.NewStaged(4, 1), 5, []int{0, 1, 2, 3}, 1},
	}
	const runsPerConfig = 1500
	for _, c := range configs {
		c := c
		t.Run(c.proto.Name(), func(t *testing.T) {
			t.Parallel()
			out, err := explore.Stress(explore.Config{
				Protocol:        c.proto,
				Inputs:          benchInputs(c.n),
				FaultyObjects:   c.faulty,
				FaultsPerObject: c.t,
			}, runsPerConfig, 20260705)
			if err != nil {
				t.Fatal(err)
			}
			if !out.OK() {
				t.Fatalf("violation after soak: %s", out.First)
			}
			// PCT pass over the same configuration.
			pct, err := explore.StressPCT(explore.Config{
				Protocol:        c.proto,
				Inputs:          benchInputs(c.n),
				FaultyObjects:   c.faulty,
				FaultsPerObject: c.t,
			}, runsPerConfig/3, 20260705, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !pct.OK() {
				t.Fatalf("PCT violation after soak: %s", pct.First)
			}
		})
	}
}

func TestSoakAtomicSubstrate(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// Hammer the faulty atomic bank with many short consensus rounds and
	// verify agreement every time.
	const rounds = 800
	proto := core.NewStaged(3, 1)
	for r := 0; r < rounds; r++ {
		bank := atomicx.NewFaultyBank(proto.Objects(),
			fault.NewFixedBudget([]int{0, 1, 2}, 1), 0.4, int64(r))
		const n = 4
		results := make([]int64, n)
		var wg sync.WaitGroup
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = proto.Decide(bank, int64(100+g))
			}(g)
		}
		wg.Wait()
		for g := 1; g < n; g++ {
			if results[g] != results[0] {
				t.Fatalf("round %d: disagreement %v", r, results)
			}
		}
	}
}

func TestSoakHistoryLinearizability(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// Many recorded concurrent histories of the faulty bank, each checked
	// against its own (f, t) budget under the Φ′ relaxation.
	for trial := 0; trial < 300; trial++ {
		bank := atomicx.NewFaultyBank(2, fault.NewBudget(2, 1), 0.6, int64(trial))
		rec := history.NewRecorder(bank)
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rec.CAS(g%2, word.Bottom, word.FromValue(int64(g+1)))
				rec.CAS(g%2, word.FromValue(int64(g+1)), word.FromValue(int64(g+4)))
			}(g)
		}
		wg.Wait()
		if !history.Check(rec.Ops(), 2, history.Budget{F: 2, T: 1}) {
			t.Fatalf("trial %d: history exceeds its (2,1) budget:\n%v", trial, rec.Ops())
		}
	}
}
