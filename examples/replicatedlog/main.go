// Replicated log: the application the paper's introduction motivates
// (blockchain, reliable distributed storage) built on faulty-CAS consensus.
//
// Several "replica" goroutines append key=value commands concurrently. Each
// log slot is one single-shot consensus instance of Figure 2 whose
// underlying CAS objects include a genuinely faulty one — yet every replica
// observes the same totally-ordered command sequence, so the replicated
// key-value state machines stay identical.
//
//	go run ./examples/replicatedlog
package main

import (
	"fmt"
	"sync"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
)

// command is an application-level operation encoded into a consensus value:
// the payload packs (key, value) into core.EncodeCmd's payload space.
func encodeKV(replica, key, value int) int64 {
	return core.EncodeCmd(replica, int64(key)<<12|int64(value))
}

func decodeKV(cmd int64) (replica, key, value int) {
	r, payload := core.DecodeCmd(cmd)
	return r, int(payload >> 12), int(payload & 0xfff)
}

func main() {
	const (
		replicas   = 4
		perReplica = 8
		faultRate  = 0.4
		toleratedF = 1
	)

	// Each log slot gets a fresh pair of atomic CAS objects; object 0 of
	// every slot is faulty with unbounded overriding faults (Theorem 5's
	// worst case for f = 1).
	proto := core.NewFPlusOne(toleratedF)
	var slotSeed int64
	var mu sync.Mutex
	log := core.NewLog(proto, func() core.Env {
		mu.Lock()
		slotSeed++
		s := slotSeed
		mu.Unlock()
		return atomicx.NewFaultyBank(proto.Objects(),
			fault.NewFixedBudget([]int{0}, fault.Unbounded), faultRate, s)
	})

	// Replicas append concurrently: replica r writes key r with
	// increasing values.
	var wg sync.WaitGroup
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perReplica; i++ {
				log.Append(encodeKV(r, r, i))
			}
		}(r)
	}
	wg.Wait()

	// Every replica replays the decided prefix into its own state
	// machine; all must end identical.
	replay := func() map[int]int {
		state := make(map[int]int)
		for _, cmd := range log.Snapshot() {
			_, k, v := decodeKV(cmd)
			state[k] = v
		}
		return state
	}
	states := make([]map[int]int, replicas)
	for r := range states {
		states[r] = replay()
	}

	fmt.Printf("log length: %d (want %d)\n", log.Len(), replicas*perReplica)
	fmt.Println("decided order (first 10 slots):")
	for i := 0; i < 10 && i < log.Len(); i++ {
		cmd, _ := log.Get(i)
		r, k, v := decodeKV(cmd)
		fmt.Printf("  slot %2d: replica %d sets key %d = %d\n", i, r, k, v)
	}

	for r := 1; r < replicas; r++ {
		for k, v := range states[0] {
			if states[r][k] != v {
				panic(fmt.Sprintf("replica %d diverged at key %d", r, k))
			}
		}
	}
	fmt.Println("\nall replica state machines identical ✓")
	fmt.Printf("final state: %v\n", states[0])
}
