// Wait-free key-value store over faulty CAS: Herlihy universality end to
// end. Writers race through the universal construction (announce + helping,
// so no writer can be starved), each slot is consensus over CAS objects of
// which one genuinely manifests overriding faults — and every reader
// replays the same totally-ordered history.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
)

func main() {
	const (
		writers   = 4
		perWriter = 6
		faultRate = 0.5
	)

	// Each consensus slot runs Figure 2 (f = 1) over a fresh pair of
	// atomic CAS objects; object 0 of every slot overrides at 50%.
	proto := core.NewFPlusOne(1)
	var seed int64
	var mu sync.Mutex
	store := core.NewKVStore(writers, proto, func() core.Env {
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		return atomicx.NewFaultyBank(proto.Objects(),
			fault.NewFixedBudget([]int{0}, fault.Unbounded), faultRate, s)
	})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Writers contend on overlapping keys.
				key := int64((w + i) % 5)
				store.Set(w, key, int64(10*w+i))
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("%d writers × %d ops through faulty-CAS consensus\n", writers, perWriter)
	state := store.State()
	fmt.Println("final state (identical for every reader):")
	for k := int64(0); k < 5; k++ {
		if v, ok := store.Get(k); ok {
			fmt.Printf("  key %d = %d\n", k, v)
		}
	}

	// Two independent replays must agree exactly — the replicated-state
	// machine guarantee.
	again := store.State()
	for k, v := range state {
		if again[k] != v {
			panic("replays diverged — unreachable if consensus held")
		}
	}
	fmt.Println("replay determinism verified ✓")
}
