// Energy-aware processor simulation: the paper's motivating scenario
// (Sections 1 and 3.3) made concrete.
//
// A processor running near-threshold voltage saves energy but its CAS
// comparator occasionally mis-evaluates — the overriding functional fault.
// This example models a chip whose fault rate grows as the voltage drops,
// and compares two deployments at each undervolt level:
//
//   - naive: the classic single-CAS consensus (correct only if the
//     hardware is), and
//   - hardened: Figure 2's construction over f+1 CAS registers, of which
//     up to f sit in the undervolted domain.
//
// The hardened deployment holds consensus at every voltage; the naive one
// starts disagreeing as soon as faults appear with three or more cores.
//
//	go run ./examples/energysim
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
)

// voltagePoint maps an undervolt level to an empirical comparator fault
// rate (rates are illustrative: deeper undervolting, more soft errors).
type voltagePoint struct {
	millivolts int
	faultRate  float64
}

var curve = []voltagePoint{
	{900, 0.00}, // nominal: no faults
	{800, 0.05},
	{700, 0.15},
	{600, 0.35},
	{500, 0.60}, // near-threshold: faults dominate
}

func inputs(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(40 + i)
	}
	return in
}

// trial runs `rounds` consensus instances at the given fault rate and
// returns how many violated agreement or validity.
func trial(proto core.Protocol, n int, faultyObjects []int, rate float64, rounds int) int {
	violations := 0
	for i := 0; i < rounds; i++ {
		seed := int64(1000 + i)
		cfgOpts := []run.Option{
			run.WithProtocol(proto),
			run.WithInputs(inputs(n)...),
			run.WithScheduler(sim.NewRandom(seed)),
		}
		if rate > 0 {
			cfgOpts = append(cfgOpts,
				run.WithBudget(fault.NewFixedBudget(faultyObjects, fault.Unbounded)),
				run.WithPolicy(fault.WhenEffective(fault.Rate(fault.Overriding, rate, seed))),
			)
		}
		res, err := run.ConsensusWith(cfgOpts...)
		if err != nil {
			panic(err)
		}
		if !res.Verdict.OK() {
			violations++
		}
	}
	return violations
}

func main() {
	const (
		cores  = 4
		rounds = 400
		f      = 1 // CAS registers in the undervolted power domain
	)
	naive := core.SingleCAS{}
	hardened := core.NewFPlusOne(f)

	fmt.Printf("%d cores, %d consensus rounds per voltage point\n", cores, rounds)
	fmt.Printf("naive    = %s (1 register, in the undervolted domain)\n", naive.Name())
	fmt.Printf("hardened = %s (%d registers, %d undervolted)\n\n",
		hardened.Name(), hardened.Objects(), f)

	fmt.Printf("%-8s %-12s %-18s %-18s\n", "voltage", "fault rate", "naive violations", "hardened violations")
	for _, pt := range curve {
		naiveViol := trial(naive, cores, []int{0}, pt.faultRate, rounds)
		hardViol := trial(hardened, cores, []int{0}, pt.faultRate, rounds)
		fmt.Printf("%-8s %-12.2f %-18d %-18d\n",
			fmt.Sprintf("%dmV", pt.millivolts), pt.faultRate, naiveViol, hardViol)
		if hardViol != 0 {
			panic("hardened deployment violated consensus — outside its fault model?")
		}
	}
	fmt.Println("\nthe hardened construction holds consensus across the whole voltage curve ✓")
	fmt.Println("(the naive single register starts losing agreement as soon as the comparator degrades)")
}
