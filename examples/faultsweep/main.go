// Fault sweep: map where each construction keeps — and loses — consensus.
//
// The deterministic simulator sweeps process counts and fault budgets for
// each protocol and prints a survival matrix. The boundaries it draws are
// the paper's theorems made visible:
//
//   - Figure 1 survives any number of overriding faults at n = 2 and dies
//     at n = 3 (Theorems 4 and 18).
//
//   - Figure 2 survives any n with f faulty of f+1 objects (Theorem 5).
//
//   - Figure 3 survives n ≤ f+1 with all f objects faulty (Theorem 6) and
//     dies at n = f+2 (Theorem 19).
//
//     go run ./examples/faultsweep
package main

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/run"
)

func inputs(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(10 + i)
	}
	return in
}

// probe searches for a violation: bounded exhaustive exploration first,
// then randomized stress, then the covering adversary where it applies.
func probe(proto core.Protocol, n int, faulty []int, perObject int) string {
	cfgOpts := []run.Option{
		run.WithProtocol(proto),
		run.WithInputs(inputs(n)...),
		run.WithFaultyObjects(faulty, perObject),
		run.WithMaxExecutions(20000),
	}
	out, err := explore.CheckWith(context.Background(), cfgOpts...)
	if err != nil {
		return "error"
	}
	if out.Violation != nil {
		return "BROKEN"
	}
	if out.Complete {
		return "ok (proved)"
	}
	st, err := explore.StressWith(300, 7, cfgOpts...)
	if err != nil {
		return "error"
	}
	if !st.OK() {
		return "BROKEN"
	}
	// The covering adversary faults every object (one fault each), so it
	// is only a fair probe when the configuration declares all objects
	// faulty — Theorem 19's setting.
	if n == proto.Objects()+2 && len(faulty) == proto.Objects() {
		if cov, err := adversary.Covering(proto, inputs(n)); err == nil && cov.Violated() {
			return "BROKEN (covering)"
		}
	}
	return "ok (stress)"
}

func main() {
	fmt.Println("figure1/single-cas, one object, unbounded overriding faults:")
	for n := 2; n <= 4; n++ {
		fmt.Printf("  n=%d: %s\n", n, probe(core.SingleCAS{}, n, []int{0}, fault.Unbounded))
	}

	fmt.Println("\nfigure2/f-plus-one, f faulty of f+1 objects, unbounded faults:")
	for _, f := range []int{1, 2} {
		proto := core.NewFPlusOne(f)
		faulty := make([]int, f)
		for i := range faulty {
			faulty[i] = i
		}
		for _, n := range []int{2, 3, 4} {
			fmt.Printf("  f=%d n=%d: %s\n", f, n, probe(proto, n, faulty, fault.Unbounded))
		}
	}

	fmt.Println("\nfigure3/staged, ALL f objects faulty, t=1 fault each:")
	for _, f := range []int{1, 2} {
		proto := core.NewStaged(f, 1)
		faulty := make([]int, f)
		for i := range faulty {
			faulty[i] = i
		}
		for n := 2; n <= f+2; n++ {
			fmt.Printf("  f=%d n=%d: %s\n", f, n, probe(proto, n, faulty, 1))
		}
	}

	fmt.Println("\nlegend: ok (proved)  = complete execution-tree enumeration found no violation")
	fmt.Println("        ok (stress)  = randomized exploration found no violation")
	fmt.Println("        BROKEN       = a violating execution was exhibited")
}
