// Impossibility, step by step: the covering argument of Theorem 19
// executed live against Figure 3, with the proof's anatomy narrated from
// the actual trace — and the valency analysis of Section 5 computed for the
// smallest instance.
//
//	go run ./examples/impossibility
package main

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/valency"
)

func main() {
	const f = 2
	proto := core.NewStaged(f, 1)
	inputs := []int64{10, 11, 12, 13} // n = f+2 processes, distinct inputs

	fmt.Printf("protocol: %s — provably (f=%d, t=1, n=%d)-tolerant (Theorem 6)\n",
		proto.Name(), f, f+1)
	fmt.Printf("running it with n = f+2 = %d processes, per the Theorem 19 proof:\n\n", f+2)

	res, err := adversary.Covering(proto, inputs)
	if err != nil {
		panic(err)
	}

	fmt.Println("phase 1 — p0 runs alone until it decides (wait-freedom + validity):")
	fmt.Printf("  p0 decided %s after %d steps\n\n", res.Sim.Decisions[0], res.Sim.Steps[0])

	fmt.Println("phase 2 — each coverer runs alone until its first CAS on a fresh object;")
	fmt.Println("          that CAS manifests ONE overriding fault, then the coverer halts:")
	for i, obj := range res.Covered {
		fmt.Printf("  p%d covered O%d (halted after %d steps)\n", i+1, obj, res.HaltedAfterSteps[i])
	}
	fmt.Printf("  faults used: %d — exactly the (f=%d, t=1) budget\n\n", len(res.Trace.Faults()), f)

	fmt.Println("phase 3 — the prober runs alone; every trace of p0 has been overwritten:")
	prober := len(inputs) - 1
	fmt.Printf("  p%d decided %s after %d steps\n\n", prober, res.Sim.Decisions[prober], res.Sim.Steps[prober])

	fmt.Printf("verdict: %s\n\n", res.Verdict)

	fmt.Println("the faulty steps, from the actual execution trace:")
	for _, e := range res.Trace.Events() {
		if e.Kind == trace.EventCAS && e.Fault != fault.None {
			fmt.Printf("  %s\n", e)
		}
	}

	fmt.Println("\n--- tightness: same attack, one process fewer (n = f+1) ---")
	tight, err := adversary.CoveringTightness(proto, inputs[:f+1])
	if err != nil {
		panic(err)
	}
	fmt.Printf("after resuming the halted coverers: %s\n", tight.Verdict)

	fmt.Println("\n--- the valency view (Section 5's proof machinery, computed) ---")
	vc := valency.Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          []int64{10, 11},
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	}
	v, err := valency.Compute(vc, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("initial state of figure3(f=1,t=1), n=2: %s\n", v)
	crit, err := valency.FindCritical(vc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("critical state found at depth %d: every enabled step is a decision step\n",
		len(crit.Prefix))
	for c, ch := range crit.Children {
		fmt.Printf("  step alternative %d → %v-valent\n", c, ch.Values)
	}
}
