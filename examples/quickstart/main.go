// Quickstart: build a consensus object from faulty CAS objects and decide
// among racing goroutines on real atomics.
//
// This is the smallest end-to-end use of the library: Figure 2's f-tolerant
// construction running on sync/atomic-backed registers where one of the two
// CAS objects injects overriding faults on half of its invocations — and
// all goroutines still agree on a single proposed value.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
)

func main() {
	// Tolerate f = 1 faulty CAS object using f+1 = 2 objects (Figure 2 /
	// Theorem 5 of the paper).
	proto := core.NewFPlusOne(1)

	// A bank of real atomic registers. Object 0 is faulty: each of its
	// CAS invocations manifests the overriding fault with probability
	// 0.5 (unboundedly many times). Object 1 is reliable.
	bank := atomicx.NewFaultyBank(
		proto.Objects(),
		fault.NewFixedBudget([]int{0}, fault.Unbounded),
		0.5, // fault rate
		42,  // seed
	)

	// Four goroutines race, each proposing its own value.
	const n = 4
	decisions := make([]int64, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			decisions[g] = proto.Decide(bank, int64(100+g))
		}(g)
	}
	wg.Wait()

	fmt.Printf("protocol : %s\n", proto.Name())
	fmt.Printf("faults   : %d overriding faults injected over %d CAS ops\n",
		bank.Faults(), bank.Ops())
	for g, d := range decisions {
		fmt.Printf("goroutine %d proposed %d, decided %d\n", g, 100+g, d)
	}
	for g := 1; g < n; g++ {
		if decisions[g] != decisions[0] {
			panic("consensus violated — this must be unreachable within the fault budget")
		}
	}
	fmt.Println("agreement reached despite the faulty CAS object ✓")
}
