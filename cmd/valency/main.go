// Command valency computes the Section 5 proof machinery for a concrete
// protocol configuration: the valence of the initial state (or of any state
// named by a choice-path prefix) and the critical state whose every enabled
// step is a decision step.
//
// Examples:
//
//	valency -proto figure1 -n 2                  # the classic critical initial state
//	valency -proto figure3 -f 1 -t 1 -n 2        # Figure 3's critical state under faults
//	valency -proto figure1 -n 2 -prefix 0        # valence after p0's first step
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/valency"
)

func main() {
	var (
		protoName = flag.String("proto", "figure1", "protocol: figure1 | figure2 | figure3")
		f         = flag.Int("f", 1, "fault parameter f")
		t         = flag.Int("t", 1, "per-object fault bound t")
		n         = flag.Int("n", 2, "number of processes")
		faulty    = flag.Int("faulty", -1, "number of faulty objects (default: all for figure3/figure1, f for figure2; 0 disables faults)")
		prefixArg = flag.String("prefix", "", "comma-separated choice path identifying a state (default: initial state)")
		critical  = flag.Bool("critical", true, "also search for a critical state")
	)
	flag.Parse()

	var proto core.Protocol
	switch strings.ToLower(*protoName) {
	case "figure1", "single":
		proto = core.SingleCAS{}
	case "figure2", "fplusone":
		proto = core.NewFPlusOne(*f)
	case "figure3", "staged":
		proto = core.NewStaged(*f, *t)
	default:
		fail(fmt.Errorf("unknown protocol %q", *protoName))
	}

	numFaulty := *faulty
	if numFaulty < 0 {
		switch strings.ToLower(*protoName) {
		case "figure2", "fplusone":
			numFaulty = *f
		default:
			numFaulty = proto.Objects()
		}
	}
	ids := make([]int, numFaulty)
	for i := range ids {
		ids[i] = i
	}

	inputs := make([]int64, *n)
	for i := range inputs {
		inputs[i] = int64(10 + i)
	}

	cfg := valency.Config{
		Protocol:        proto,
		Inputs:          inputs,
		FaultyObjects:   ids,
		FaultsPerObject: *t,
	}

	var prefix []int
	if *prefixArg != "" {
		for _, part := range strings.Split(*prefixArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fail(fmt.Errorf("bad prefix element %q", part))
			}
			prefix = append(prefix, v)
		}
	}

	v, err := valency.Compute(cfg, prefix)
	if err != nil {
		fail(err)
	}
	fmt.Printf("protocol : %s, n=%d, faulty=%v, t=%d\n", proto.Name(), *n, ids, *t)
	fmt.Printf("valence  : %s\n", v)

	if !*critical || len(prefix) > 0 {
		return
	}
	if !v.Multivalent() {
		fmt.Println("critical : not searched (initial state is univalent)")
		return
	}
	crit, err := valency.FindCritical(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("critical : state %v — every enabled step is a decision step\n", crit.Prefix)
	for c, ch := range crit.Children {
		fmt.Printf("           step alternative %d → %v-valent (%d extensions)\n",
			c, ch.Values, ch.Executions)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "valency: %v\n", err)
	os.Exit(2)
}
