// Command hierarchy prints the consensus-number table of faulty CAS
// objects (Section 5.2 of the paper): f CAS objects with at most t
// overriding faults each have consensus number f+1, sweeping the entire
// Herlihy hierarchy.
//
// Usage:
//
//	hierarchy -maxf 4 -t 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hierarchy"
)

func main() {
	var (
		maxF    = flag.Int("maxf", 4, "largest f to estimate")
		t       = flag.Int("t", 1, "per-object fault bound")
		runs    = flag.Int("stress", 400, "randomized runs per level when exhaustive checking is infeasible")
		budget  = flag.Int("budget", 20000, "execution cap for exhaustive checking per level")
		seed    = flag.Int64("seed", 1, "seed for randomized fallback")
		workers = flag.Int("workers", 0, "exploration parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ests, err := hierarchy.Table(*maxF, *t, hierarchy.Options{
		StressRuns:       *runs,
		ExhaustiveBudget: *budget,
		Seed:             *seed,
		Workers:          *workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hierarchy: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("consensus numbers of f faulty CAS objects (t = %d overriding faults each)\n\n", *t)
	fmt.Printf("%-4s %-17s %-10s %s\n", "f", "consensus number", "expected", "evidence")
	ok := true
	for _, est := range ests {
		evidence := ""
		for i, lv := range est.Levels {
			if i > 0 {
				evidence += ", "
			}
			status := "ok"
			if !lv.OK {
				status = "broken"
			}
			evidence += fmt.Sprintf("n=%d:%s/%s", lv.N, status, lv.Evidence)
		}
		fmt.Printf("%-4d %-17d %-10d %s\n", est.F, est.ConsensusNumber, est.F+1, evidence)
		if est.ConsensusNumber != est.F+1 {
			ok = false
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "hierarchy: estimates disagree with Section 5.2")
		os.Exit(1)
	}
	fmt.Println("\nall levels match the paper: consensus number = f+1")
}
