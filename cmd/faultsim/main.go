// Command faultsim runs one simulated consensus execution under a chosen
// protocol, scheduler, and fault configuration, printing the step-by-step
// trace, the fault audit, and the consensus verdict.
//
// Examples:
//
//	faultsim -proto figure2 -f 1 -n 3 -fault overriding -rate 0.5 -seed 7
//	faultsim -proto figure3 -f 2 -t 1 -n 3 -sched random -seed 3
//	faultsim -proto figure1 -n 3 -fault overriding -rate 1 -unbounded
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	var (
		protoName = flag.String("proto", "figure2", "protocol: figure1 | figure2 | figure3 | silent-retry")
		f         = flag.Int("f", 1, "fault parameter f (figure2/figure3)")
		t         = flag.Int("t", 1, "per-object fault bound t (figure3) or total bound (silent-retry)")
		n         = flag.Int("n", 3, "number of processes")
		schedName = flag.String("sched", "roundrobin", "scheduler: roundrobin | random | solo")
		seed      = flag.Int64("seed", 1, "seed for random scheduling and faults")
		kindName  = flag.String("fault", "none", "fault kind: none | overriding | silent | invisible | arbitrary")
		rate      = flag.Float64("rate", 0.5, "per-invocation fault probability")
		unbounded = flag.Bool("unbounded", false, "unbounded faults per faulty object (t = ∞)")
		faulty    = flag.Int("faulty", -1, "number of faulty objects (default: protocol's f, or all objects for figure3)")
		quiet     = flag.Bool("quiet", false, "suppress the trace, print verdict only")
		diagram   = flag.Bool("diagram", false, "render the trace as a space-time diagram instead of a list")
	)
	flag.Parse()

	proto, err := buildProtocol(*protoName, *f, *t)
	if err != nil {
		fail(err)
	}
	sched, err := buildScheduler(*schedName, *seed, *n)
	if err != nil {
		fail(err)
	}

	inputs := make([]int64, *n)
	for i := range inputs {
		inputs[i] = int64(10 + i)
	}

	cfgOpts := []run.Option{
		run.WithProtocol(proto),
		run.WithInputs(inputs...),
		run.WithScheduler(sched),
		run.WithTrace(),
	}

	kind, err := parseKind(*kindName)
	if err != nil {
		fail(err)
	}
	if kind != fault.None {
		numFaulty := *faulty
		if numFaulty < 0 {
			numFaulty = defaultFaultyObjects(*protoName, *f, proto)
		}
		perObject := *t
		if *unbounded {
			perObject = fault.Unbounded
		}
		ids := make([]int, numFaulty)
		for i := range ids {
			ids[i] = i
		}
		cfgOpts = append(cfgOpts,
			run.WithBudget(fault.NewFixedBudget(ids, perObject)),
			run.WithPolicy(fault.WhenEffective(fault.Rate(kind, *rate, *seed))),
		)
	}

	res, err := run.ConsensusWith(cfgOpts...)
	if err != nil {
		fail(err)
	}

	if !*quiet {
		if *diagram {
			fmt.Print(res.Sim.Log.Diagram())
		} else {
			fmt.Print(res.Sim.Log.String())
		}
		fmt.Println()
	}
	audit := spec.AuditTrace(res.Sim.Log)
	fmt.Printf("protocol : %s (%d objects, step bound %d)\n", proto.Name(), proto.Objects(), proto.StepBound(*n))
	fmt.Printf("audit    : %s\n", audit)
	for _, id := range audit.FaultyObjects() {
		fmt.Printf("           object %d: %d fault(s)\n", id, audit.ObjectFaults(id))
	}
	fmt.Printf("verdict  : %s\n", res.Verdict)
	if !res.Verdict.OK() {
		os.Exit(1)
	}
}

func buildProtocol(name string, f, t int) (core.Protocol, error) {
	switch strings.ToLower(name) {
	case "figure1", "single":
		return core.SingleCAS{}, nil
	case "figure2", "fplusone":
		return core.NewFPlusOne(f), nil
	case "figure3", "staged":
		return core.NewStaged(f, t), nil
	case "silent-retry", "silent":
		return core.NewSilentRetry(t), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func buildScheduler(name string, seed int64, n int) (sim.Scheduler, error) {
	switch strings.ToLower(name) {
	case "roundrobin", "rr":
		return sim.NewRoundRobin(), nil
	case "random", "rand":
		return sim.NewRandom(seed), nil
	case "solo":
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return sim.NewSolo(order...), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func parseKind(name string) (fault.Kind, error) {
	switch strings.ToLower(name) {
	case "none", "":
		return fault.None, nil
	case "overriding", "override":
		return fault.Overriding, nil
	case "silent":
		return fault.Silent, nil
	case "invisible":
		return fault.Invisible, nil
	case "arbitrary":
		return fault.Arbitrary, nil
	default:
		return fault.None, fmt.Errorf("unknown fault kind %q", name)
	}
}

func defaultFaultyObjects(protoName string, f int, proto core.Protocol) int {
	switch strings.ToLower(protoName) {
	case "figure3", "staged":
		return proto.Objects() // all objects may be faulty (Theorem 6)
	case "figure1", "single", "silent-retry", "silent":
		return 1
	default:
		return f // figure2: f of the f+1 objects
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
	os.Exit(2)
}
