// Command experiments regenerates every reproduction table of DESIGN.md /
// EXPERIMENTS.md: one experiment per paper result (Figures 1–3, Theorems
// 4–6, 18, 19, the consensus-hierarchy observation, the fault taxonomy, and
// the cost measurements).
//
// Usage:
//
//	experiments               # run everything (full sweeps)
//	experiments -run E5       # run one experiment
//	experiments -quick        # smaller sweeps
//	experiments -list         # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/run"
)

func main() {
	var (
		runID    = flag.String("run", "", "run only the experiment with this id (e.g. E3)")
		quick    = flag.Bool("quick", false, "smaller sweeps and sample counts")
		seed     = flag.Int64("seed", 1, "seed for randomized components")
		workers  = flag.Int("workers", 0, "exploration parallelism (0 = GOMAXPROCS); tables are identical for any value")
		engine   = flag.String("engine", "auto", "execution form: auto | compiled | interpreted (goroutine reference); tables are identical for any form")
		reduce   = flag.String("reduce", "off", "partial-order reduction for exhaustive explorations: off | on | aggressive; verdicts and counterexamples are unchanged (on), execution counts shrink; fixed-policy rows always run unreduced")
		list     = flag.Bool("list", false, "list experiments and exit")
		httpAddr = flag.String("http", "", "serve live introspection (/metrics, /pprof/) on this address while experiments run, e.g. :6060")
		events   = flag.String("events", "", "write the structured event log (JSONL) to this file, or '-' for stderr")
		traceDir = flag.String("trace", "", "capture execution traces of every exploration (trace/v1 JSONL + Perfetto JSON) into this directory")
		traceN   = flag.Int("trace-sample", 0, "with -trace, also capture one in N passing executions (0 = violations only)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	// One registry and one event log see every exploration the harness
	// drives, so a long `experiments` sweep is observable the same way a
	// `modelcheck -http` run is.
	reg := obs.NewRegistry()
	var evLog *obs.Log
	if *events != "" {
		w := os.Stderr
		if *events != "-" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		evLog = obs.NewLog(w, obs.Info)
		defer evLog.Flush() //nolint:errcheck // best-effort on exit
	}
	if *httpAddr != "" {
		addr, shutdown, err := obs.Serve(*httpAddr, obs.Handler(reg, nil))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "experiments: introspection on http://%s (/metrics /pprof/)\n", addr)
		defer shutdown() //nolint:errcheck // exiting anyway
	}

	execMode, err := run.ParseExecMode(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	reduceMode, err := run.ParseReduceMode(*reduce)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	opts := harness.NewOptions(run.WithQuick(*quick), run.WithSeed(*seed),
		run.WithWorkers(*workers), run.WithMetrics(reg), run.WithEvents(evLog),
		run.WithTraceDir(*traceDir, *traceN), run.WithExecMode(execMode),
		run.WithReduce(reduceMode))
	if *runID != "" {
		e, ok := harness.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *runID)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\nclaim: %s\n\n", e.ID, e.Title, e.Claim)
		if err := harness.RunOne(os.Stdout, e, opts); err != nil {
			evLog.Flush() //nolint:errcheck // best-effort before exit
			fmt.Fprintf(os.Stderr, "experiments: %s FAILED: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\nreproduced: %s\n", e.Claim)
		return
	}

	if err := harness.RunAll(os.Stdout, opts); err != nil {
		evLog.Flush() //nolint:errcheck // best-effort before exit
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
