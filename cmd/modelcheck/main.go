// Command modelcheck exhaustively explores the execution tree of a
// consensus protocol under an (f, t) overriding/silent fault budget,
// reporting either complete verification or a minimal counterexample trace.
//
// Examples:
//
//	modelcheck -proto figure3 -f 1 -t 1 -n 2            # Theorem 6, exhaustive
//	modelcheck -proto figure3 -f 1 -t 1 -n 3            # Theorem 19 violation
//	modelcheck -proto figure1 -n 3 -unbounded           # Theorem 18 violation
//	modelcheck -proto silent-retry -t 2 -n 2 -fault silent
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
)

func main() {
	var (
		protoName = flag.String("proto", "figure3", "protocol: figure1 | figure2 | figure3 | silent-retry")
		f         = flag.Int("f", 1, "fault parameter f")
		t         = flag.Int("t", 1, "per-object fault bound t")
		n         = flag.Int("n", 2, "number of processes")
		kindName  = flag.String("fault", "overriding", "fault kind: overriding | silent")
		unbounded = flag.Bool("unbounded", false, "unbounded faults per faulty object")
		faulty    = flag.Int("faulty", -1, "number of faulty objects (default: all of the protocol's objects)")
		maxExecs  = flag.Int("max", explore.DefaultMaxExecutions, "execution cap")
		workers   = flag.Int("workers", 0, "parallel exploration workers (0 = GOMAXPROCS); results are identical for any value")
		deadline  = flag.Duration("deadline", 0, "wall-clock budget for the exploration (0 = none), e.g. 30s")
		progress  = flag.Duration("progress", 0, "print throughput reports at this interval (0 = off), e.g. 2s")
		jsonOut   = flag.Bool("json", false, "emit the counterexample trace as JSON")
		diagram   = flag.Bool("diagram", false, "render the counterexample as a space-time diagram")
	)
	flag.Parse()

	var proto core.Protocol
	switch strings.ToLower(*protoName) {
	case "figure1", "single":
		proto = core.SingleCAS{}
	case "figure2", "fplusone":
		proto = core.NewFPlusOne(*f)
	case "figure3", "staged":
		proto = core.NewStaged(*f, *t)
	case "silent-retry", "silent":
		proto = core.NewSilentRetry(*t)
	default:
		fmt.Fprintf(os.Stderr, "modelcheck: unknown protocol %q\n", *protoName)
		os.Exit(2)
	}

	var kind fault.Kind
	switch strings.ToLower(*kindName) {
	case "overriding":
		kind = fault.Overriding
	case "silent":
		kind = fault.Silent
	default:
		fmt.Fprintf(os.Stderr, "modelcheck: unsupported fault kind %q\n", *kindName)
		os.Exit(2)
	}

	numFaulty := *faulty
	if numFaulty < 0 {
		numFaulty = proto.Objects()
	}
	ids := make([]int, numFaulty)
	for i := range ids {
		ids[i] = i
	}
	perObject := *t
	if *unbounded {
		perObject = fault.Unbounded
	}

	inputs := make([]int64, *n)
	for i := range inputs {
		inputs[i] = int64(10 + i)
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	eng := &explore.Engine{Workers: *workers}
	if *progress > 0 {
		eng.ProgressEvery = *progress
		eng.Progress = func(p explore.Progress) {
			fmt.Fprintf(os.Stderr, "progress: %d executions, %.0f paths/sec, frontier %d, %s elapsed\n",
				p.Executions, p.Rate, p.Frontier, p.Elapsed.Round(time.Millisecond))
		}
	}
	out, err := eng.Check(ctx, explore.Config{
		Protocol:        proto,
		Inputs:          inputs,
		FaultyObjects:   ids,
		FaultsPerObject: perObject,
		Kind:            kind,
		MaxExecutions:   *maxExecs,
	})
	deadlineHit := errors.Is(err, context.DeadlineExceeded)
	if err != nil && !deadlineHit {
		fmt.Fprintf(os.Stderr, "modelcheck: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("protocol    : %s\n", proto.Name())
	fmt.Printf("processes   : %d, faulty objects: %v, faults/object: %s\n",
		*n, ids, tString(perObject))
	fmt.Printf("executions  : %d (complete: %v)\n", out.Executions, out.Complete)
	fmt.Printf("max steps   : %d per process, max faults: %d per execution\n",
		out.MaxProcSteps, out.MaxFaults)
	if secs := out.Elapsed.Seconds(); secs > 0 {
		fmt.Printf("engine      : %d workers, %.0f paths/sec, %s elapsed\n",
			out.Workers, float64(out.Executions)/secs, out.Elapsed.Round(time.Millisecond))
	}
	if deadlineHit {
		fmt.Printf("deadline    : %s exceeded — partial exploration\n", *deadline)
	}

	if out.Violation == nil {
		switch {
		case out.Complete:
			fmt.Println("result      : VERIFIED — no execution violates consensus")
		case deadlineHit:
			fmt.Println("result      : NO VIOLATION FOUND (deadline exceeded; raise -deadline for certainty)")
		default:
			fmt.Println("result      : NO VIOLATION FOUND (cap reached; increase -max for certainty)")
		}
		return
	}

	fmt.Printf("result      : VIOLATION (%s)\n", out.Violation.Verdict.Violation)
	if out.ViolationLatency > 0 {
		fmt.Printf("latency     : first counterexample after %s\n", out.ViolationLatency.Round(time.Millisecond))
	}
	fmt.Println()
	if *diagram {
		fmt.Print(out.Violation.Trace.Diagram())
		fmt.Println()
	}
	if *jsonOut {
		data, err := json.MarshalIndent(out.Violation.Trace, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelcheck: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(data)
		fmt.Println()
	} else {
		fmt.Print(out.Violation.String())
	}
	os.Exit(1)
}

func tString(t int) string {
	if t == fault.Unbounded {
		return "∞"
	}
	return fmt.Sprintf("%d", t)
}
