// Command modelcheck exhaustively explores the execution tree of a
// consensus protocol under an (f, t) overriding/silent fault budget,
// reporting either complete verification or a minimal counterexample trace.
//
// Examples:
//
//	modelcheck -proto figure3 -f 1 -t 1 -n 2            # Theorem 6, exhaustive
//	modelcheck -proto figure3 -f 1 -t 1 -n 3            # Theorem 19 violation
//	modelcheck -proto figure1 -n 3 -unbounded           # Theorem 18 violation
//	modelcheck -proto silent-retry -t 2 -n 2 -fault silent
//
// Long explorations survive interruption: -checkpoint periodically persists
// the exploration frontier to a run directory, and -resume continues it —
// after a crash, a kill, or an expired -deadline — with the identical final
// verdict. -resume reconstructs the protocol settings from the stored
// manifest and refuses flags that contradict it.
//
//	modelcheck -proto figure3 -f 2 -n 3 -checkpoint run/ -deadline 10s
//	modelcheck -resume run/                              # pick up where it died
//
// Distributed exploration (docs/MODEL.md, "Distributed exploration"):
// -ledger joins any number of OS processes into one sweep over a shared work
// ledger in the run directory; workers claim subtrees under expiring leases,
// so a SIGKILLed participant forfeits only its current claim to the
// survivors. -ledger-finalize merges the drained ledger into the exact
// verdict a single process would have reported.
//
//	modelcheck -proto figure3 -f 1 -n 2 -unbounded -ledger run/ &
//	modelcheck -ledger run/ &                            # settings from the manifest
//	wait; modelcheck -ledger-finalize run/
//
// Fleet observability (docs/MODEL.md, "Fleet observability"): each ledger
// worker publishes periodic metrics snapshots into the shared run
// directory; -fleet-status renders the merged fleet view — per-worker
// liveness, summed counters, flagged anomalies — of any ledger run
// directory without joining it, and /fleet (JSON) plus /fleet/dashboard
// (text) serve the same view from any worker's -http endpoint.
//
//	modelcheck -fleet-status run/                        # or -fleet-status run/ -json
//
// Observability (docs/MODEL.md, "Observability"): -http serves the live
// metric snapshot, the latest progress report, and pprof while the
// exploration runs; -events streams the structured run event log as JSONL;
// -report writes the machine-readable final run report that
// scripts/bench.sh consumes.
//
//	modelcheck -proto figure3 -f 2 -n 3 -http :6060 -progress 2s
//	modelcheck -proto figure3 -f 1 -n 2 -report out.json -events run.jsonl
//
// Execution tracing (docs/MODEL.md, "Execution tracing"): -trace captures
// every violating execution (and a 1-in-N sample of passing ones with
// -trace-sample) into a directory as replayable trace/v1 JSONL plus
// Perfetto-loadable JSON; -explain verifies a captured trace by replay and
// narrates the counterexample; -profile-dir records CPU and heap profiles
// of the exploration itself.
//
//	modelcheck -proto figure3 -f 2 -n 3 -trace traces/ -trace-sample 1000
//	modelcheck -explain traces/violation-000001.jsonl
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/run"
	"repro/internal/store"
)

func main() {
	var (
		protoName = flag.String("proto", "figure3", "protocol: figure1 | figure2 | figure3 | silent-retry")
		f         = flag.Int("f", 1, "fault parameter f")
		t         = flag.Int("t", 1, "per-object fault bound t")
		n         = flag.Int("n", 2, "number of processes")
		kindName  = flag.String("fault", "overriding", "fault kind: overriding | silent")
		engine    = flag.String("engine", "auto", "execution form: auto | compiled | interpreted (goroutine reference)")
		reduceF   = flag.String("reduce", "off", "partial-order reduction: off | on (sleep sets + symmetry; keeps verdict and lex-least counterexample) | aggressive (adds footprint persistent sets; verdict only, compiled form required)")
		unbounded = flag.Bool("unbounded", false, "unbounded faults per faulty object")
		faulty    = flag.Int("faulty", -1, "number of faulty objects (default: all of the protocol's objects)")
		maxExecs  = flag.Int("max", explore.DefaultMaxExecutions, "execution cap")
		workers   = flag.Int("workers", 0, "parallel exploration workers (0 = GOMAXPROCS); results are identical for any value")
		deadline  = flag.Duration("deadline", 0, "wall-clock budget for the exploration (0 = none), e.g. 30s")
		progress  = flag.Duration("progress", 0, "print throughput reports at this interval (0 = off), e.g. 2s")
		dedup     = flag.Bool("dedup", false, "prune subtrees rooted at already-visited canonical states")
		checkpt   = flag.String("checkpoint", "", "create a run directory there and checkpoint the exploration into it")
		ckptEvery = flag.Duration("checkpoint-every", 0, "checkpoint period (default 5s)")
		resume    = flag.String("resume", "", "resume the exploration recorded in this run directory")
		ledgerF   = flag.String("ledger", "", "join (or create) the multi-process work ledger in this run directory and explore cooperatively")
		workerID  = flag.String("worker-id", "", "name of this ledger participant (default host:pid); must be unique among live participants")
		leaseTTL  = flag.Duration("lease-ttl", 0, "ledger lease time-to-live when creating a ledger (default 5s); later joiners adopt the creator's TTL")
		finalizeF = flag.String("ledger-finalize", "", "merge the drained work ledger in this run directory into the final verdict, then exit")
		fleetF    = flag.String("fleet-status", "", "print the fleet observability view of this ledger run directory (per-worker liveness, merged metrics, anomalies), then exit; -json for the machine-readable view")
		fleetSnap = flag.Bool("fleet-snapshots", true, "on a ledger run, periodically publish this worker's metrics snapshot into <run>/obs/ for -fleet-status and /fleet")
		jsonOut   = flag.Bool("json", false, "emit the counterexample trace as JSON")
		diagram   = flag.Bool("diagram", false, "render the counterexample as a space-time diagram")
		httpAddr  = flag.String("http", "", "serve live introspection (/metrics, /progress, /pprof/) on this address while exploring, e.g. :6060")
		reportOut = flag.String("report", "", "write the machine-readable final run report (JSON) to this file")
		eventsOut = flag.String("events", "", "write the structured run event log (JSONL) to this file, or '-' for stderr")
		eventsMin = flag.String("events-level", "info", "minimum event level: debug | info | warn | error")
		traceDir  = flag.String("trace", "", "capture execution traces (trace/v1 JSONL + Perfetto JSON) into this directory; violations are always captured")
		traceN    = flag.Int("trace-sample", 0, "with -trace, also capture one in N passing executions (0 = violations only)")
		explainF  = flag.String("explain", "", "verify the trace/v1 file by replay and narrate the counterexample, then exit")
		profDir   = flag.String("profile-dir", "", "write cpu.pprof and heap.pprof profiles of the exploration into this directory")
	)
	flag.Parse()

	if *explainF != "" {
		// The capture replays through the form that produced it; an explicit
		// -engine must match the recording or the replay is refused — it
		// would be evidence about an engine that never ran this execution.
		mode, err := run.ParseExecMode(strings.ToLower(*engine))
		if err != nil {
			fail("%v", err)
		}
		if err := explore.ExplainFileAs(os.Stdout, *explainF, mode); err != nil {
			fail("%v", err)
		}
		return
	}

	if *fleetF != "" {
		// One-shot fleet inspection: read-only over the run directory's
		// worker snapshots and ledger, no worker needed, no join.
		view, err := fleet.Load(*fleetF)
		if err != nil {
			fail("%v", err)
		}
		if *jsonOut {
			data, err := json.MarshalIndent(view, "", "  ")
			if err != nil {
				fail("%v", err)
			}
			os.Stdout.Write(data)
			fmt.Println()
		} else {
			fmt.Print(view.Dashboard())
		}
		return
	}

	if *resume != "" && *checkpt != "" {
		fail("use either -checkpoint (new run) or -resume (existing run), not both")
	}
	if *ledgerF != "" && (*checkpt != "" || *resume != "") {
		fail("the work ledger is the durable state of a distributed run; -ledger cannot be combined with -checkpoint or -resume")
	}
	if *finalizeF != "" && (*ledgerF != "" || *checkpt != "" || *resume != "") {
		fail("-ledger-finalize merges a finished run on its own; combine it only with output flags")
	}

	// The manifest carries the flags a run was created with; resume, ledger
	// joiners, and finalize reconstruct the protocol from it and refuse
	// contradictions, so `modelcheck -resume dir` (or `-ledger dir`,
	// `-ledger-finalize dir`) alone always continues the right exploration.
	restore := map[string]func(string){
		"proto":     func(v string) { *protoName = v },
		"f":         func(v string) { *f = atoi(v) },
		"t":         func(v string) { *t = atoi(v) },
		"n":         func(v string) { *n = atoi(v) },
		"fault":     func(v string) { *kindName = v },
		"unbounded": func(v string) { *unbounded = v == "true" },
		"faulty":    func(v string) { *faulty = atoi(v) },
		"dedup":     func(v string) { *dedup = v == "true" },
		"engine":    func(v string) { *engine = v },
		"reduce":    func(v string) { *reduceF = v },
	}
	var st *store.Store
	if *resume != "" {
		var err error
		if st, err = store.Open(*resume); err != nil {
			fail("%v", err)
		}
		applyManifest(st.Manifest().Extra, restore)
	}
	if dir := *ledgerF + *finalizeF; dir != "" {
		// Exactly one of the two is set (checked above). The first worker on
		// an empty directory commits its own flags as the manifest; everyone
		// after it — and finalize always — adopts the stored settings.
		sm, err := store.OpenShared(dir)
		switch {
		case err == nil:
			applyManifest(sm.Manifest().Extra, restore)
			sm.Close()
		case errors.Is(err, fs.ErrNotExist) && *finalizeF == "":
			// First participant: this process's flags create the run.
		default:
			fail("%v", err)
		}
	}

	var proto core.Protocol
	switch strings.ToLower(*protoName) {
	case "figure1", "single":
		proto = core.SingleCAS{}
	case "figure2", "fplusone":
		proto = core.NewFPlusOne(*f)
	case "figure3", "staged":
		proto = core.NewStaged(*f, *t)
	case "silent-retry", "silent":
		proto = core.NewSilentRetry(*t)
	default:
		fail("unknown protocol %q", *protoName)
	}

	var kind fault.Kind
	switch strings.ToLower(*kindName) {
	case "overriding":
		kind = fault.Overriding
	case "silent":
		kind = fault.Silent
	default:
		fail("unsupported fault kind %q", *kindName)
	}

	numFaulty := *faulty
	if numFaulty < 0 {
		numFaulty = proto.Objects()
	}
	ids := make([]int, numFaulty)
	for i := range ids {
		ids[i] = i
	}
	perObject := *t
	if *unbounded {
		perObject = fault.Unbounded
	}

	inputs := make([]int64, *n)
	for i := range inputs {
		inputs[i] = int64(10 + i)
	}

	execMode, err := run.ParseExecMode(strings.ToLower(*engine))
	if err != nil {
		fail("%v", err)
	}
	compiled, err := run.ResolveExec(execMode, proto)
	if err != nil {
		fail("%v", err)
	}
	execLabel := run.ExecLabel(compiled)
	reduceMode, err := run.ParseReduceMode(strings.ToLower(*reduceF))
	if err != nil {
		fail("%v", err)
	}
	reduceLabel := reduceMode.String()

	cfg := explore.ConfigFrom(run.NewSettings(
		run.WithProtocol(proto),
		run.WithInputs(inputs...),
		run.WithFaultyObjects(ids, perObject),
		run.WithFaultKind(kind),
		run.WithMaxExecutions(*maxExecs),
		run.WithExecMode(execMode),
		run.WithReduce(reduceMode),
	))

	if *finalizeF != "" {
		finalizeLedger(cfg, *finalizeF, proto, execLabel, ids, perObject, *n,
			*jsonOut, *diagram, *reportOut,
			settingsMeta(*protoName, *kindName, *engine, execLabel, reduceLabel, *f, *t, *n, *faulty, *unbounded, *dedup))
		return
	}

	if st != nil {
		m, err := explore.ManifestFor(cfg, false, *dedup)
		if err != nil {
			fail("%v", err)
		}
		if err := st.Verify(m); err != nil {
			fail("%v", err)
		}
	}
	if *checkpt != "" {
		m, err := explore.ManifestFor(cfg, false, *dedup)
		if err != nil {
			fail("%v", err)
		}
		m.Extra = settingsMeta(*protoName, *kindName, *engine, execLabel, reduceLabel, *f, *t, *n, *faulty, *unbounded, *dedup)
		if st, err = store.Create(*checkpt, m); err != nil {
			fail("%v", err)
		}
	}
	var led *ledger.Ledger
	if *ledgerF != "" {
		id := *workerID
		if id == "" {
			host, err := os.Hostname()
			if err != nil || host == "" {
				host = "worker"
			}
			id = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		var err error
		if led, _, err = ledger.Join(*ledgerF, id, *leaseTTL); err != nil {
			fail("%v", err)
		}
		// Bind the run directory to these settings: the first participant
		// commits the manifest; racing losers and later joiners verify
		// against it, so two processes can never sweep different execution
		// spaces into one ledger.
		m, err := explore.ManifestFor(cfg, false, *dedup)
		if err != nil {
			fail("%v", err)
		}
		m.Extra = settingsMeta(*protoName, *kindName, *engine, execLabel, reduceLabel, *f, *t, *n, *faulty, *unbounded, *dedup)
		m.LedgerEpoch = led.Epoch()
		sm, err := store.CreateShared(*ledgerF, m)
		if errors.Is(err, fs.ErrExist) {
			if sm, err = store.OpenShared(*ledgerF); err != nil {
				fail("%v", err)
			}
			err = sm.Verify(m)
		}
		if err != nil {
			fail("%v", err)
		}
		sm.Close()
	}

	// SIGINT/SIGTERM cancel the exploration context instead of killing the
	// process, so the event log, checkpoint, trace files, and profiles are
	// all flushed and sealed before exit (a second signal kills immediately
	// once stopSignals runs).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	profiles, err := startProfiles(*profDir)
	if err != nil {
		fail("%v", err)
	}
	// The registry backs the engine's counters whether or not anything
	// reads it: Outcome, -http, and -report are all views of one counter set.
	reg := obs.NewRegistry()
	var events *obs.Log
	if *eventsOut != "" {
		lvl, err := obs.ParseLevel(*eventsMin)
		if err != nil {
			fail("%v", err)
		}
		w := io.Writer(os.Stderr)
		if *eventsOut != "-" {
			f, err := os.Create(*eventsOut)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			w = f
		}
		events = obs.NewLog(w, lvl)
	}
	eng := &explore.Engine{
		Workers:         *workers,
		Dedup:           *dedup,
		Store:           st,
		Ledger:          led,
		FleetSnapshots:  *fleetSnap,
		CheckpointEvery: *ckptEvery,
		Metrics:         reg,
		Events:          events,
	}
	var tracer *explore.Tracer
	if *traceDir != "" {
		var err error
		tracer, err = explore.NewTracer(*traceDir, *traceN,
			settingsMeta(*protoName, *kindName, *engine, execLabel, reduceLabel, *f, *t, *n, *faulty, *unbounded, *dedup))
		if err != nil {
			fail("%v", err)
		}
		eng.Tracer = tracer
	}
	// Progress goes to stderr through one buffered writer so report lines
	// never interleave with the verdict on stdout; the final report is
	// flushed before any result is printed. The reporter also retains the
	// latest report for the -http /progress endpoint, so the engine's
	// periodic callback runs whenever either consumer exists.
	rep := newProgressReporter(os.Stderr)
	if *progress > 0 {
		eng.ProgressEvery = *progress
	}
	if *progress > 0 || *httpAddr != "" {
		eng.Progress = func(p explore.Progress) { rep.tick(p, *progress > 0) }
		if led != nil && *progress > 0 {
			// On a ledger run each progress tick also reports the fleet:
			// who has joined, which leases are live or forfeited, and how
			// much is already merged into published results. The status is
			// served through the fleet aggregator's cache — a full
			// ledger.Status is a directory scan that grows with task and
			// result count, so ticks within half a TTL reuse one scan.
			cache := fleet.NewStatusCache(*ledgerF, led.TTL()/2)
			eng.Progress = func(p explore.Progress) {
				rep.tick(p, true)
				rep.ledgerLine(cache)
			}
		}
	}
	if *httpAddr != "" {
		mux := obs.Handler(reg, rep.latest)
		endpoints := "/metrics /progress /healthz /pprof/"
		if led != nil {
			// Any worker can answer for the whole fleet: the view is
			// rebuilt from the shared run directory per request.
			fleet.Attach(mux, *ledgerF)
			endpoints += " /fleet /fleet/dashboard"
		}
		addr, shutdown, err := obs.Serve(*httpAddr, mux)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "modelcheck: introspection on http://%s (%s)\n", addr, endpoints)
		defer shutdown() //nolint:errcheck // exiting anyway
	}
	out, err := eng.Check(ctx, cfg)
	// From here on a signal should kill the process the ordinary way; the
	// flushes below run regardless because the engine already returned.
	stopSignals()
	deadlineHit := errors.Is(err, context.DeadlineExceeded)
	interrupted := errors.Is(err, context.Canceled)
	if cerr := tracer.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil && !deadlineHit && !interrupted {
		rep.flush()
		events.Flush() //nolint:errcheck // already failing
		fail("%v", err)
	}
	if *progress > 0 {
		// Final progress line: the periodic reporter stops between ticks,
		// so without this the last report understates the finished run.
		rep.final(out)
	}
	// Everything reported so far belongs before the verdict.
	rep.flush()
	// The event log and report are written before the human-readable
	// verdict so they exist even when a violation exits non-zero below.
	if err := events.Flush(); err != nil {
		fail("event log: %v", err)
	}
	if *reportOut != "" {
		meta := settingsMeta(*protoName, *kindName, *engine, execLabel, reduceLabel, *f, *t, *n, *faulty, *unbounded, *dedup)
		meta["workers"] = strconv.Itoa(out.Workers)
		meta["max"] = strconv.Itoa(*maxExecs)
		if err := obs.WriteReport(*reportOut, buildReport(out, reg, events, meta)); err != nil {
			fail("%v", err)
		}
	}
	if err := profiles.stop(); err != nil {
		fail("%v", err)
	}

	fmt.Printf("protocol    : %s (%s form)\n", proto.Name(), execLabel)
	fmt.Printf("processes   : %d, faulty objects: %v, faults/object: %s\n",
		*n, ids, tString(perObject))
	fmt.Printf("executions  : %d (complete: %v)\n", out.Executions, out.Complete)
	fmt.Printf("max steps   : %d per process, max faults: %d per execution\n",
		out.MaxProcSteps, out.MaxFaults)
	if secs := out.Elapsed.Seconds(); secs > 0 {
		fmt.Printf("engine      : %d workers, %.0f paths/sec, %s elapsed\n",
			out.Workers, float64(out.Executions)/secs, out.Elapsed.Round(time.Millisecond))
	}
	if out.Dedup != nil {
		fmt.Printf("dedup       : %d states, %d of %d replays pruned (%.1f%% hit rate)\n",
			out.Dedup.States, out.Dedup.Hits, out.Dedup.LeafLookups, 100*out.Dedup.HitRate())
	}
	if cfg.Reduce != run.ReduceOff {
		fmt.Printf("reduce      : %s, %d sleep-blocked subtrees pruned\n",
			reduceLabel, out.ReducePrunes)
	}
	if deadlineHit {
		fmt.Printf("deadline    : %s exceeded — partial exploration\n", *deadline)
	}
	if interrupted {
		fmt.Printf("interrupted : signal received — partial exploration, state flushed cleanly\n")
	}
	if tracer != nil {
		ts := tracer.Summary()
		fmt.Printf("trace       : %d violation(s), %d sample(s), %d span(s) captured in %s\n",
			ts.Violations, ts.Samples, ts.Spans, ts.Dir)
		if ts.Skipped > 0 {
			fmt.Printf("trace       : %d further violating executions not captured (cap %d)\n",
				ts.Skipped, explore.MaxViolationCaptures)
		}
	}
	if *profDir != "" {
		fmt.Printf("profiles    : cpu.pprof and heap.pprof written to %s\n", *profDir)
	}
	if st != nil {
		dir := st.Dir()
		if deadlineHit || (!out.Complete && out.Violation == nil) {
			fmt.Printf("checkpoint  : saved to %s — continue with: modelcheck -resume %s\n", dir, dir)
		} else {
			fmt.Printf("checkpoint  : finished run recorded in %s\n", dir)
		}
	}
	if led != nil {
		if rs, rserr := ledger.Status(*ledgerF); rserr == nil {
			if rs.Drained {
				fmt.Printf("ledger      : drained — %d participant(s), %d subtree result(s) in %s\n",
					len(rs.Participants), rs.Results, *ledgerF)
			} else {
				fmt.Printf("ledger      : %d task(s) pending, %d live / %d expired lease(s) in %s\n",
					rs.TasksPending, rs.LeasesLive, rs.LeasesExpired, *ledgerF)
			}
		}
	}

	if out.Violation == nil {
		if led != nil {
			// This worker's published claims hold no counterexample, but
			// another participant's might: the authoritative verdict is the
			// merged fold over every published result.
			fmt.Printf("result      : WORKER DONE — merged verdict via: modelcheck -ledger-finalize %s\n", *ledgerF)
			return
		}
		switch {
		case out.Complete:
			fmt.Println("result      : VERIFIED — no execution violates consensus")
		case deadlineHit:
			fmt.Println("result      : NO VIOLATION FOUND (deadline exceeded; raise -deadline for certainty)")
		case interrupted:
			fmt.Println("result      : NO VIOLATION FOUND (interrupted; resume or re-run for certainty)")
		default:
			fmt.Println("result      : NO VIOLATION FOUND (cap reached; increase -max for certainty)")
		}
		return
	}

	fmt.Printf("result      : VIOLATION (%s)\n", out.Violation.Verdict.Violation)
	if out.ViolationLatency > 0 {
		fmt.Printf("latency     : first counterexample after %s\n", out.ViolationLatency.Round(time.Millisecond))
	}
	fmt.Println()
	if *diagram {
		fmt.Print(out.Violation.Trace.Diagram())
		fmt.Println()
	}
	if *jsonOut {
		data, err := json.MarshalIndent(out.Violation.Trace, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	} else {
		fmt.Print(out.Violation.String())
	}
	os.Exit(1)
}

// progressReporter owns the stderr throughput line. The periodic engine
// callback and the final post-run flush render through the same formatter,
// and the latest report is retained for the -http /progress endpoint.
type progressReporter struct {
	w    *bufio.Writer
	last atomic.Pointer[explore.Progress]
}

func newProgressReporter(w io.Writer) *progressReporter {
	return &progressReporter{w: bufio.NewWriter(w)}
}

// tick records the engine's periodic report and, when print is set,
// renders it.
func (r *progressReporter) tick(p explore.Progress, print bool) {
	r.last.Store(&p)
	if print {
		r.line(p)
		r.flush()
	}
}

// latest returns the most recent progress report (nil before the first),
// shaped for the /progress endpoint.
func (r *progressReporter) latest() any {
	if p := r.last.Load(); p != nil {
		return *p
	}
	return nil
}

// final renders the finished run as one last progress line, so the output
// never understates a run that ended between periodic ticks.
func (r *progressReporter) final(out *explore.Outcome) {
	p := explore.Progress{
		Executions: int64(out.Executions),
		Elapsed:    out.Elapsed,
		Donations:  out.Donations,
		Steals:     out.Steals,
	}
	if secs := out.Elapsed.Seconds(); secs > 0 {
		p.Rate = float64(out.Executions) / secs
	}
	if out.Dedup != nil {
		p.Dedup = *out.Dedup
	}
	r.line(p)
	r.flush()
}

func (r *progressReporter) line(p explore.Progress) {
	fmt.Fprintf(r.w, "progress: %d executions, %.0f paths/sec, frontier %d, %d donated/%d stolen, %s elapsed",
		p.Executions, p.Rate, p.Frontier, p.Donations, p.Steals, p.Elapsed.Round(time.Millisecond))
	if p.DepthP99 > 0 {
		fmt.Fprintf(r.w, ", depth p50/p99 %.0f/%.0f", p.DepthP50, p.DepthP99)
	}
	if p.Dedup.Lookups > 0 {
		fmt.Fprintf(r.w, ", dedup %d states %.1f%% hits",
			p.Dedup.States, 100*p.Dedup.HitRate())
	}
	fmt.Fprintln(r.w)
}

// ledgerLine renders the fleet view of a ledger run underneath the local
// progress line: participants, lease liveness, and the merged totals so
// far. The status comes through the fleet aggregator's cache, so back-to-
// back ticks do not each rescan the ledger directories.
func (r *progressReporter) ledgerLine(cache *fleet.StatusCache) {
	rs, err := cache.Status()
	if err != nil {
		return // the ledger is being torn down or not yet created; skip the line
	}
	fmt.Fprintf(r.w, "ledger:   %d participant(s) %v, %d live / %d expired lease(s), %d task(s) pending, %d result(s) merged (%d executions, %d violations)\n",
		len(rs.Participants), rs.Participants, rs.LeasesLive, rs.LeasesExpired,
		rs.TasksPending, rs.Results, rs.MergedExecutions, rs.MergedViolations)
	r.flush()
}

func (r *progressReporter) flush() { r.w.Flush() } //nolint:errcheck // stderr

// settingsMeta renders the run settings as the flat string map shared by
// the checkpoint manifest (Extra), the trace/v1 header, and the -report Run
// section. engine is the -engine flag as given (so a resume restores it
// verbatim); exec is the resolved execution form ("compiled"/"interpreted"),
// sealed so replays of the artifact run under the form that produced it;
// reduce is the resolved reduction mode, sealed for the same reason — a
// reduced tree has different choice-path coordinates, so -explain and
// resume must replay under the mode that produced the artifact.
func settingsMeta(protoName, kindName, engine, exec, reduce string, f, t, n, faulty int, unbounded, dedup bool) map[string]string {
	return map[string]string{
		"proto":     strings.ToLower(protoName),
		"f":         strconv.Itoa(f),
		"t":         strconv.Itoa(t),
		"n":         strconv.Itoa(n),
		"fault":     strings.ToLower(kindName),
		"unbounded": strconv.FormatBool(unbounded),
		"faulty":    strconv.Itoa(faulty),
		"dedup":     strconv.FormatBool(dedup),
		"engine":    strings.ToLower(engine),
		"exec":      exec,
		"reduce":    reduce,
	}
}

// finalizeLedger merges the drained work ledger in dir into the final
// verdict and renders it exactly as a single-process run would: VERIFIED
// exits 0, a violation prints the replayed counterexample and exits 1, and
// an incomplete ledger (pending tasks or leases) reports who is still
// working and exits 2.
func finalizeLedger(cfg explore.Config, dir string, proto core.Protocol, execLabel string,
	ids []int, perObject, n int, jsonOut, diagram bool, reportOut string, meta map[string]string) {
	out, merged, err := explore.FinalizeLedger(cfg, dir, false)
	var inc *ledger.IncompleteError
	if errors.As(err, &inc) {
		if rs, serr := ledger.Status(dir); serr == nil {
			fmt.Fprintf(os.Stderr, "modelcheck: participants %v, %d live / %d expired lease(s), %d result(s) published so far\n",
				rs.Participants, rs.LeasesLive, rs.LeasesExpired, rs.Results)
		}
		fail("%v", err)
	}
	if err != nil {
		fail("%v", err)
	}

	if reportOut != "" {
		// The finalize report mirrors the single-process -report so
		// scripts/bench.sh consumes either: merged counters stand in for
		// the live registry, and the fleet shape rides in the Run section.
		reg := obs.NewRegistry()
		reg.Counter("explore.violations").Add(merged.Violations)
		meta["workers"] = strconv.Itoa(out.Workers)
		meta["ledger_participants"] = strconv.Itoa(len(merged.Participants))
		meta["ledger_results"] = strconv.Itoa(merged.Results)
		meta["ledger_reclaims"] = strconv.FormatInt(merged.Reclaims, 10)
		meta["ledger_total_work_ns"] = strconv.FormatInt(merged.TotalWorkNS, 10)
		rep := buildReport(out, reg, nil, meta)
		// The fleet section (modelcheck-fleet-report/v1) preserves the
		// worker fleet's final shape — per-worker snapshots, liveness,
		// anomalies — in the durable report. Best-effort: a run whose
		// workers never published snapshots still reports the ledger view.
		if fv, ferr := fleet.Load(dir); ferr == nil {
			rep.Fleet = fv
		}
		if err := obs.WriteReport(reportOut, rep); err != nil {
			fail("%v", err)
		}
	}

	fmt.Printf("protocol    : %s (%s form)\n", proto.Name(), execLabel)
	fmt.Printf("processes   : %d, faulty objects: %v, faults/object: %s\n", n, ids, tString(perObject))
	fmt.Printf("executions  : %d (complete: %v)\n", out.Executions, out.Complete)
	fmt.Printf("max steps   : %d per process, max faults: %d per execution\n",
		out.MaxProcSteps, out.MaxFaults)
	fmt.Printf("ledger      : %d participant(s) %v, %d subtree result(s) merged, %d reclaimed\n",
		len(merged.Participants), merged.Participants, merged.Results, merged.Reclaims)
	if merged.TotalWorkNS > 0 {
		fmt.Printf("ledger      : %s longest claim, %s total fleet work\n",
			time.Duration(merged.ElapsedNS).Round(time.Millisecond),
			time.Duration(merged.TotalWorkNS).Round(time.Millisecond))
	}
	if merged.DedupHits > 0 {
		fmt.Printf("dedup       : %d replays pruned (per-process caches)\n", merged.DedupHits)
	}

	if out.Violation == nil {
		if out.Complete {
			fmt.Println("result      : VERIFIED — no execution violates consensus")
			return
		}
		fmt.Println("result      : NO VIOLATION FOUND (a participant hit its execution cap; re-run with a higher -max for certainty)")
		return
	}
	fmt.Printf("result      : VIOLATION (%s)\n", out.Violation.Verdict.Violation)
	fmt.Println()
	if diagram {
		fmt.Print(out.Violation.Trace.Diagram())
		fmt.Println()
	}
	if jsonOut {
		data, err := json.MarshalIndent(out.Violation.Trace, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	} else {
		fmt.Print(out.Violation.String())
	}
	os.Exit(1)
}

// buildReport renders the finished run as the machine-readable report
// documented in docs/MODEL.md: verdict, counterexample, the full metric
// snapshot, and the event-log type counts.
func buildReport(out *explore.Outcome, reg *obs.Registry, events *obs.Log, meta map[string]string) *obs.Report {
	snap := reg.Snapshot()
	rep := &obs.Report{
		Schema:  obs.ReportSchema,
		Run:     meta,
		Metrics: snap,
		Events:  events.Counts(),
		Verdict: obs.Verdict{
			Complete:     out.Complete,
			Executions:   int64(out.Executions),
			Violations:   snap.Counters["explore.violations"],
			Workers:      out.Workers,
			MaxProcSteps: out.MaxProcSteps,
			MaxFaults:    out.MaxFaults,
			ElapsedNS:    out.Elapsed.Nanoseconds(),
		},
	}
	switch {
	case out.Violation != nil:
		rep.Verdict.Result = "violation"
		rep.Verdict.Violation = string(out.Violation.Verdict.Violation)
		rep.Verdict.FirstViolationNS = out.ViolationLatency.Nanoseconds()
		rep.Counterexample = map[string]any{
			"path":      out.Violation.Path,
			"schedule":  out.Violation.Schedule,
			"inputs":    out.Violation.Inputs,
			"violation": string(out.Violation.Verdict.Violation),
		}
	case out.Complete:
		rep.Verdict.Result = "verified"
	default:
		rep.Verdict.Result = "incomplete"
	}
	return rep
}

// profileCapture owns the -profile-dir CPU/heap capture.
type profileCapture struct {
	dir string
	cpu *os.File
}

// startProfiles begins the CPU profile in dir ("" disables capture).
func startProfiles(dir string) (*profileCapture, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, err
	}
	return &profileCapture{dir: dir, cpu: f}, nil
}

// stop seals the CPU profile and writes the heap profile. Nil-safe.
func (p *profileCapture) stop() error {
	if p == nil {
		return nil
	}
	pprof.StopCPUProfile()
	if err := p.cpu.Close(); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(p.dir, "heap.pprof"))
	if err != nil {
		return err
	}
	runtime.GC() // a settled heap makes the profile reflect live memory
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	return f.Close()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "modelcheck: "+format+"\n", args...)
	os.Exit(2)
}

func atoi(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		fail("corrupt manifest value %q: %v", s, err)
	}
	return v
}

// applyManifest restores flag values from a run manifest's Extra map,
// refusing explicitly-set flags that contradict it — a run directory
// continues only with the settings it was created with.
func applyManifest(extra map[string]string, restore map[string]func(string)) {
	explicit := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
	for name, set := range restore {
		v, ok := extra[name]
		if !ok {
			continue
		}
		if explicit[name] {
			cur := flagValue(name)
			if cur != v {
				fail("-%s %s contradicts the run manifest (%s=%s); a run directory resumes only with the settings it was created with", name, cur, name, v)
			}
			continue
		}
		set(v)
	}
}

// flagValue renders the current value of a named flag for conflict messages.
func flagValue(name string) string {
	fl := flag.Lookup(name)
	if fl == nil {
		return ""
	}
	return strings.ToLower(fl.Value.String())
}

func tString(t int) string {
	if t == fault.Unbounded {
		return "∞"
	}
	return fmt.Sprintf("%d", t)
}
