// Package repro is a from-scratch Go reproduction of "Functional Faults"
// (Gali Sheffi and Erez Petrank, SPAA 2020): a formal model of structured
// operation-level faults, consensus constructions from compare-and-swap
// objects that manifest the overriding fault, and empirical verification of
// the paper's matching impossibility results.
//
// The library lives under internal/:
//
//   - internal/word     — the 64-bit CAS register word (⊥ / value / ⟨value, stage⟩)
//   - internal/spec     — Hoare-triple specifications Ψ{O}Φ, relaxed Φ′, fault classification
//   - internal/fault    — fault kinds, (f, t, n) budgets, fault policies
//   - internal/sim      — deterministic shared-memory simulator (Section 2's model)
//   - internal/object   — the CAS-only shared object with fault injection; registers
//   - internal/core     — the paper's protocols (Figures 1–3), silent-retry, replicated log
//   - internal/run      — protocol↔simulator wiring and the consensus verdict
//   - internal/explore  — exhaustive model checker and randomized stress
//   - internal/adversary— Theorem 18/19 adversaries and the data-fault comparator
//   - internal/hierarchy— consensus-number estimation (Section 5.2)
//   - internal/valency  — valence, decision steps, critical states (Section 5's machinery)
//   - internal/history  — linearizability checker for concurrent CAS histories
//   - internal/tas      — test-and-set with its lost-set fault (the Section 7 question)
//   - internal/atomicx  — sync/atomic substrate with overriding-fault injection
//   - internal/stats    — summary statistics for the harness
//   - internal/harness  — reproduction experiments E1–E10 and table rendering
//
// Executables: cmd/faultsim, cmd/modelcheck, cmd/hierarchy, cmd/valency,
// cmd/experiments. Runnable examples: examples/quickstart,
// examples/replicatedlog, examples/faultsweep, examples/energysim,
// examples/impossibility, examples/kvstore.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced result.
package repro
