// Benchmarks for the extension modules: the universal construction and its
// state machines, the linearizability checker, the valency analyzer, and
// the PCT-vs-uniform search comparison.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/adversary"
	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/valency"
	"repro/internal/word"
)

func BenchmarkUniversalExecute(b *testing.B) {
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			proto := core.SingleCAS{}
			u := core.NewUniversal(procs, proto, func() core.Env {
				return atomicx.NewBank(proto.Objects())
			})
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/procs + 1
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						u.Execute(p, core.EncodeCmd(p, int64(i%core.MaxCmdPayload)))
					}
				}(p)
			}
			wg.Wait()
		})
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	proto := core.NewFPlusOne(1)
	// Fresh counter per 4096 ops (sequence space); amortized via sub-runs.
	var c *core.Counter
	newCounter := func() {
		c = core.NewCounter(1, proto, func() core.Env {
			return atomicx.NewBank(proto.Objects())
		})
	}
	newCounter()
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n == 4000 {
			b.StopTimer()
			newCounter()
			n = 0
			b.StartTimer()
		}
		c.Add(0, 1)
		n++
	}
}

func BenchmarkHistoryCheckStrict(b *testing.B) {
	// A 12-operation concurrent history with overlap: the checker's
	// working set for typical recorded workloads.
	var ops []history.Op
	for k := 0; k < 6; k++ {
		exp := word.Bottom
		if k > 0 {
			exp = word.FromValue(int64(k))
		}
		ops = append(ops, history.Op{
			Object: 0, Invoke: int64(3 * k), Return: int64(3*k + 2),
			Exp: exp, New: word.FromValue(int64(k + 1)), Old: exp,
		})
		ops = append(ops, history.Op{
			Object: 1, Invoke: int64(3*k + 1), Return: int64(3*k + 3),
			Exp: word.Bottom, New: word.FromValue(int64(k + 1)),
			Old: contentAfter(k),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !history.Check(ops, 2, history.Budget{}) {
			b.Fatal("history must be linearizable")
		}
	}
}

// contentAfter is the old value object 1 reports on its k-th failed CAS.
func contentAfter(k int) word.Word {
	if k == 0 {
		return word.Bottom
	}
	return word.FromValue(1)
}

func BenchmarkValencyCompute(b *testing.B) {
	cfg := valency.Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          benchInputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	}
	for i := 0; i < b.N; i++ {
		v, err := valency.Compute(cfg, nil)
		if err != nil || !v.Multivalent() {
			b.Fatal("initial state must be multivalent")
		}
	}
}

func BenchmarkSearchUniformVsPCT(b *testing.B) {
	// Head-to-head: violations found per 1000 runs on the deep
	// Theorem 19 configuration (f=2, n=4). PCT's advantage is the
	// headline number; see EXPERIMENTS.md E9.
	cfg := explore.Config{
		Protocol:        core.NewStaged(2, 1),
		Inputs:          benchInputs(4),
		FaultyObjects:   []int{0, 1},
		FaultsPerObject: 1,
	}
	b.Run("uniform", func(b *testing.B) {
		viol := 0
		for i := 0; i < b.N; i++ {
			out, err := explore.Stress(cfg, 1000, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			viol += out.Violations
		}
		b.ReportMetric(float64(viol)/float64(b.N), "violations/1000runs")
	})
	b.Run("pct", func(b *testing.B) {
		viol := 0
		for i := 0; i < b.N; i++ {
			out, err := explore.StressPCT(cfg, 1000, int64(i), 3, 0)
			if err != nil {
				b.Fatal(err)
			}
			viol += out.Violations
		}
		b.ReportMetric(float64(viol)/float64(b.N), "violations/1000runs")
	})
}

func BenchmarkCoveringVsModelCheck(b *testing.B) {
	// Two routes to the same Theorem 19 counterexample at f=1, n=3: the
	// proof-driven adversary (direct construction) vs the model
	// checker's DFS. The adversary is O(one execution); the checker
	// pays for its generality.
	cfg := explore.Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          benchInputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	}
	b.Run("modelcheck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := explore.Check(cfg)
			if err != nil || out.OK() {
				b.Fatal("expected violation")
			}
		}
	})
	b.Run("covering", func(b *testing.B) {
		proto := core.NewStaged(1, 1)
		for i := 0; i < b.N; i++ {
			res, err := coveringFind(proto)
			if err != nil || !res {
				b.Fatal("expected violation")
			}
		}
	})
}

func coveringFind(proto core.Protocol) (bool, error) {
	res, err := adversary.Covering(proto, benchInputs(proto.Objects()+2))
	if err != nil {
		return false, err
	}
	return res.Violated(), nil
}
