// Integration tests spanning the full pipeline: model checking →
// counterexample → serialization → replay → specification audit, and
// protocol portability across the simulated and atomic substrates.
package repro_test

import (
	"encoding/json"
	"testing"

	"repro/internal/adversary"
	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/word"
)

func TestCounterexamplePipeline(t *testing.T) {
	// 1. The checker finds the Theorem 18 violation.
	cfg := explore.Config{
		Protocol:        core.SingleCAS{},
		Inputs:          benchInputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	}
	out, err := explore.Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("expected a violation")
	}
	ce := out.Violation

	// 2. The trace serializes and round-trips through JSON.
	data, err := json.Marshal(ce.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var restored trace.Log
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != ce.Trace.Len() {
		t.Fatalf("JSON round trip lost events: %d vs %d", restored.Len(), ce.Trace.Len())
	}

	// 3. The choice path replays to the identical execution.
	re, err := explore.Replay(cfg, ce.Path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Verdict.Violation != ce.Verdict.Violation {
		t.Fatalf("replay verdict %s, original %s", re.Verdict.Violation, ce.Verdict.Violation)
	}

	// 4. The specification auditor confirms every event matches its
	//    label and the execution stayed within the declared budget.
	audit := spec.AuditTrace(ce.Trace)
	if len(audit.Mismatches) != 0 {
		t.Fatalf("audit found %d classification mismatches", len(audit.Mismatches))
	}
	if !audit.Tolerable(1, fault.Unbounded) {
		t.Fatal("the counterexample exceeded its own fault budget")
	}
	if len(audit.FaultyObjects()) == 0 {
		t.Fatal("the Theorem 18 violation must involve at least one fault")
	}
}

func TestCoveringTraceAuditsClean(t *testing.T) {
	// The covering adversary's execution must itself be a legal
	// (f, 1)-budget execution — the whole point of Theorem 19.
	for _, f := range []int{1, 2, 3} {
		proto := core.NewStaged(f, 1)
		res, err := adversary.Covering(proto, benchInputs(f+2))
		if err != nil {
			t.Fatal(err)
		}
		audit := spec.AuditTrace(res.Trace)
		if len(audit.Mismatches) != 0 {
			t.Errorf("f=%d: %d audit mismatches", f, len(audit.Mismatches))
		}
		if !audit.Tolerable(f, 1) {
			t.Errorf("f=%d: covering execution exceeded the (f, 1) budget: %s", f, audit)
		}
	}
}

func TestScheduleScriptReproducesCounterexample(t *testing.T) {
	// A recorded counterexample schedule replays through the public
	// Script scheduler (with fault decisions scripted from the trace)
	// and yields the same violation — the end-to-end reproducibility
	// guarantee the trace format exists for.
	cfg := explore.Config{
		Protocol:        core.SingleCAS{},
		Inputs:          benchInputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	}
	out, err := explore.Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ce := out.Violation
	if ce == nil {
		t.Fatal("expected a violation")
	}

	// Script the faults: replay each CAS event's fault label in order.
	var labels []fault.Kind
	for _, e := range ce.Trace.Events() {
		if e.Kind == trace.EventCAS {
			labels = append(labels, e.Fault)
		}
	}
	i := 0
	scripted := fault.PolicyFunc(func(fault.Op) fault.Proposal {
		if i < len(labels) && labels[i] != fault.None {
			i++
			return fault.Proposal{Kind: labels[i-1]}
		}
		i++
		return fault.NoFault
	})

	res, err := run.Consensus(run.Config{
		Protocol:  cfg.Protocol,
		Inputs:    cfg.Inputs,
		Scheduler: sim.NewScript(ce.Schedule...),
		Budget:    fault.NewFixedBudget(cfg.FaultyObjects, cfg.FaultsPerObject),
		Policy:    scripted,
		Trace:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Violation != ce.Verdict.Violation {
		t.Fatalf("scripted replay verdict %q, original %q\nreplay trace:\n%s",
			res.Verdict.Violation, ce.Verdict.Violation, res.Sim.Log)
	}
}

func TestProtocolPortabilityAcrossSubstrates(t *testing.T) {
	// The same protocol value runs on both substrates; in a sequential
	// (single-participant) setting both must decide the proposer's input.
	protos := []core.Protocol{
		core.SingleCAS{},
		core.NewFPlusOne(2),
		core.NewStaged(2, 1),
		core.NewSilentRetry(1),
	}
	for _, proto := range protos {
		// Simulated substrate.
		simRes, err := run.Consensus(run.Config{
			Protocol: proto,
			Inputs:   []int64{77},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := simRes.Verdict.Agreed.Value(); got != 77 {
			t.Errorf("%s on simulator decided %d", proto.Name(), got)
		}
		// Atomic substrate.
		if got := proto.Decide(atomicx.NewBank(proto.Objects()), 77); got != 77 {
			t.Errorf("%s on atomics decided %d", proto.Name(), got)
		}
	}
}

func TestSimAndAtomicsAgreeOnSequentialHistory(t *testing.T) {
	// Drive the two CAS implementations through the same operation
	// sequence and compare every old value and final content.
	type op struct{ exp, new word.Word }
	ops := []op{
		{word.Bottom, word.FromValue(1)},
		{word.Bottom, word.FromValue(2)}, // fails
		{word.FromValue(1), word.FromValue(3)},
		{word.FromValue(3), word.FromValue(3)},
		{word.FromValue(9), word.FromValue(4)}, // fails
	}
	simObj := object.NewCAS(0, nil, nil)
	atomBank := atomicx.NewBank(1)
	for i, o := range ops {
		a, _ := simObj.Apply(0, o.exp, o.new)
		b := atomBank.CAS(0, o.exp, o.new)
		if a != b {
			t.Fatalf("op %d: sim old %s, atomic old %s", i, a, b)
		}
	}
	if simObj.Content() != atomBank.Snapshot()[0] {
		t.Fatalf("final contents diverge: %s vs %s", simObj.Content(), atomBank.Snapshot()[0])
	}
}

func TestAuditToleranceMatchesBudgetAcrossRandomRuns(t *testing.T) {
	// Whatever the policy proposes, the trace audited after the fact
	// must stay within the configured (f, t) budget — Definition 3
	// enforced end to end.
	for seed := int64(0); seed < 30; seed++ {
		budget := fault.NewFixedBudget([]int{0, 1}, 2)
		res, err := run.Consensus(run.Config{
			Protocol:  core.NewStaged(2, 2),
			Inputs:    benchInputs(3),
			Scheduler: sim.NewRandom(seed),
			Budget:    budget,
			Policy:    fault.WhenEffective(fault.Rate(fault.Overriding, 0.8, seed)),
			Trace:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		audit := spec.AuditTrace(res.Sim.Log)
		if !audit.Tolerable(2, 2) {
			t.Fatalf("seed %d: execution exceeded (2,2): %s", seed, audit)
		}
		// The audit's per-object counts must equal the budget's.
		for _, id := range audit.FaultyObjects() {
			if audit.ObjectFaults(id) != budget.Faults(id) {
				t.Fatalf("seed %d: audit says %d faults on object %d, budget says %d",
					seed, audit.ObjectFaults(id), id, budget.Faults(id))
			}
		}
	}
}
