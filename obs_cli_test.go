// CLI integration tests for the observability layer: the -report final run
// report, the -events JSONL stream, and the -http live-introspection
// endpoints of cmd/modelcheck.
package repro_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCLIModelcheckReport: a verified run writes a -report that validates
// against the documented schema, with per-worker executions summing to the
// verdict's Executions, and an -events file that is well-formed JSONL.
func TestCLIModelcheckReport(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "out.json")
	events := filepath.Join(dir, "run.jsonl")
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure3", "-f", "1", "-t", "1", "-n", "2",
		"-workers", "4", "-report", report, "-events", events, "-events-level", "debug")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}

	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	if rep.Verdict.Result != "verified" || !rep.Verdict.Complete {
		t.Errorf("verdict = %+v, want verified/complete", rep.Verdict)
	}
	if rep.Verdict.Workers != 4 {
		t.Errorf("workers = %d, want 4", rep.Verdict.Workers)
	}
	if rep.Run["proto"] != "figure3" || rep.Run["n"] != "2" {
		t.Errorf("run metadata = %v", rep.Run)
	}
	if rep.Metrics.Counters["explore.executions"] != rep.Verdict.Executions {
		t.Errorf("metric executions = %d, verdict = %d",
			rep.Metrics.Counters["explore.executions"], rep.Verdict.Executions)
	}
	if rep.Events["run.start"] != 1 || rep.Events["run.done"] != 1 {
		t.Errorf("event counts = %v, want one run.start and one run.done", rep.Events)
	}

	ev, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(ev)), "\n")
	var total int64
	for _, c := range rep.Events {
		total += c
	}
	if int64(len(lines)) != total {
		t.Errorf("event file has %d lines, report counts %d", len(lines), total)
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("event line %d is not JSON: %s", i, line)
		}
	}
}

// TestCLIModelcheckReportViolation: a violating run exits 1 but still
// writes a schema-valid report carrying the counterexample.
func TestCLIModelcheckReportViolation(t *testing.T) {
	report := filepath.Join(t.TempDir(), "out.json")
	out, code := runCLI(t, "modelcheck",
		"-proto", "figure1", "-n", "3", "-unbounded", "-report", report)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	if rep.Verdict.Result != "violation" || rep.Verdict.Violations == 0 {
		t.Errorf("verdict = %+v, want violation", rep.Verdict)
	}
	ce, ok := rep.Counterexample.(map[string]any)
	if !ok || ce["path"] == nil || ce["violation"] == "" {
		t.Errorf("counterexample = %v", rep.Counterexample)
	}
	if rep.Verdict.FirstViolationNS <= 0 {
		t.Errorf("first violation latency = %d", rep.Verdict.FirstViolationNS)
	}
}

// TestCLIModelcheckHTTPLive: while a covering-sweep exploration runs,
// -http serves /metrics (with live engine counters), /progress, and
// /pprof/.
func TestCLIModelcheckHTTPLive(t *testing.T) {
	dir := buildCLIs(t)
	// The f=2 staged tree is far larger than this deadline allows, so the
	// process is guaranteed to still be exploring while we probe it.
	cmd := exec.Command(filepath.Join(dir, "modelcheck"),
		"-proto", "figure3", "-f", "2", "-t", "1", "-n", "3",
		"-max", "1000000000", "-deadline", "60s", "-workers", "2",
		"-http", "127.0.0.1:0", "-progress", "100ms")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The CLI announces the bound address on stderr before exploring.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			addr = strings.Fields(line[i:])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no introspection address announced: %v", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the progress stream drained

	get := func(path string) (int, string) {
		t.Helper()
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// The endpoint is live before the engine registers its counters, so
	// poll /metrics until the run is underway.
	var snap obs.Snapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body := get("/metrics")
		if status != http.StatusOK {
			t.Fatalf("/metrics status %d", status)
		}
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("/metrics is not a snapshot: %v", err)
		}
		if _, ok := snap.Counters["explore.executions"]; ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never showed explore.executions: %v", snap.Counters)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, ok := snap.Histograms["explore.frontier.depth"]; !ok {
		t.Error("/metrics has no frontier depth histogram")
	}

	// /progress may legitimately 204 before the first tick; wait for one.
	deadline = time.Now().Add(10 * time.Second)
	var status int
	var body string
	for {
		status, body = get("/progress")
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/progress never reported (last status %d)", status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	var prog map[string]any
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	if _, ok := prog["Executions"]; !ok {
		t.Errorf("/progress has no Executions field: %v", prog)
	}

	if status, _ := get("/pprof/"); status != http.StatusOK {
		t.Errorf("/pprof/ status %d", status)
	}
	if status, _ := get("/pprof/goroutine?debug=1"); status != http.StatusOK {
		t.Errorf("/pprof/goroutine status %d", status)
	}
}
