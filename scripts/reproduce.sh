#!/usr/bin/env sh
# Full reproduction pipeline: build, vet, test (unit + integration +
# property + race on the concurrent substrate), regenerate every experiment
# table, and run the benchmark suite. Outputs land next to this script's
# repo root as test_output.txt / experiments_output.txt / bench_output.txt.
#
# Usage: scripts/reproduce.sh [-quick]
set -e
cd "$(dirname "$0")/.."

QUICK=""
if [ "$1" = "-quick" ]; then
    QUICK="-quick"
fi

echo "== build & vet =="
go build ./...
go vet ./...

echo "== tests =="
go test ./... 2>&1 | tee test_output.txt

echo "== race detector (concurrent substrates) =="
go test -race ./internal/atomicx/ ./internal/history/ ./internal/core/ .

echo "== experiments (tables for EXPERIMENTS.md) =="
go run ./cmd/experiments $QUICK -seed 1 2>&1 | tee experiments_output.txt

echo "== benchmarks =="
if [ -n "$QUICK" ]; then
    go test -bench=. -benchmem -benchtime=10x -run xxx . 2>&1 | tee bench_output.txt
else
    go test -bench=. -benchmem -run xxx . 2>&1 | tee bench_output.txt
fi

echo "== done: test_output.txt experiments_output.txt bench_output.txt =="
