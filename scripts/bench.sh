#!/bin/sh
# Machine-readable benchmark results for the exploration engine.
#
# Runs the engine benchmarks (covering-sweep throughput across worker
# counts, the sequential baseline, the state-dedup sweep, and the
# partial-order-reduction sweep) and renders the standard `go test -bench`
# output as BENCH_explore.json: ns/op, states-per-second throughput,
# executions per verification, and the dedup hit rate (hits over per-replay
# leaf lookups), plus derived summaries: the dedup states-explored
# reduction, the "por_reduction" executions factor of reduce=on over the
# dedup-only baseline (gated at ≥ 3x by scripts/check.sh), and a "scaling"
# block giving ns/op at workers=1/2/4/8 with the workers=8 speedup and
# parallel efficiency (speedup / 8). On a single-core box the honest efficiency ceiling is
# 1/8 = 0.125; the block exists so the trajectory shows whether adding
# workers ever makes the same slab SLOWER (the negative-scaling bug).
#
# A second, dedicated pass measures the tracing overhead: the traced and
# untraced covering sweeps run interleaved for TRACE_COUNT repetitions and
# the per-benchmark MINIMUM ns/op is compared (the minimum is the reading
# least contaminated by machine noise — single samples on a loaded box can
# misread the overhead by an order of magnitude). The fraction is recorded
# under "trace_overhead" with its 15% budget; exceeding the budget prints a
# warning but does not fail the script (scripts/check.sh is the hard gate).
#
# A third pass measures the compiled execution form against the goroutine
# reference on the single-worker covering slab (min of FORM_COUNT, same
# noise discipline) and records the ratio under "compiled_speedup" together
# with the host's core count — the slab is single-worker, so the ratio is
# honest on a single-core host (annotated single_core_host: true), unlike
# the worker-scaling block whose efficiency ceiling depends on cores.
#
# A fourth pass records the distributed work ledger: the covering slab runs
# once through a single ledger worker process and once through two
# concurrent worker processes, both finalized with -ledger-finalize, and
# the wall clocks, merged execution counts, and the 2-process ratio land
# under "ledger_scaling" (annotated with the host's core count — on a
# single-core box two processes time-slice one P, so the honest ceiling is
# coordination overhead, not speedup). The two merges must agree on the
# execution count; disagreement prints a warning (scripts/check.sh's ledger
# gate is the hard equality check).
#
# A fifth pass measures the fleet-snapshot publication overhead: the same
# solo ledger worker runs FLEET_COUNT times with -fleet-snapshots=false and
# =true interleaved, and the per-mode MINIMUM wall clocks are compared under
# "fleet_overhead" with a 5% budget (warning, not failure — the publisher
# is two atomic writes plus one per TTL/3 tick, so the budget is headroom,
# not a target).
#
# It then runs the same covering-sweep workload once through
# `modelcheck -report` (with dedup and periodic checkpointing enabled) and
# embeds the machine-readable report under "report", so the perf
# trajectory includes the per-worker utilization counters
# (explore.worker.N.executions / .steals / .idle_ns) and the
# checkpoint-latency histograms (explore.checkpoint.save_ms,
# store.checkpoint.write_ms) instead of scraping stderr.
#
#   scripts/bench.sh              # 3 iterations per benchmark (default)
#   BENCHTIME=10x scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
TRACE_COUNT="${TRACE_COUNT:-5}"
FORM_COUNT="${FORM_COUNT:-5}"
FLEET_COUNT="${FLEET_COUNT:-5}"
OUT="${OUT:-BENCH_explore.json}"
NCPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
RAW="$(mktemp)"
RAW_TRACE="$(mktemp)"
RAW_FORM="$(mktemp)"
BENCH_JSON="$(mktemp)"
OVERHEAD="$(mktemp)"
SPEEDUP="$(mktemp)"
REPORT="$(mktemp)"
RUNDIR="$(mktemp -d)"
trap 'rm -rf "$RAW" "$RAW_TRACE" "$RAW_FORM" "$BENCH_JSON" "$OVERHEAD" "$SPEEDUP" "$REPORT" "$RUNDIR"' EXIT

go test -run '^$' \
	-bench 'BenchmarkEngineCoveringSweep|BenchmarkSequentialCoveringSweep|BenchmarkEngineDedupSweep|BenchmarkEngineReduceSweep' \
	-benchtime "$BENCHTIME" ./internal/explore/ | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^pkg:/     { pkg = $2 }
/^cpu:/     { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	iters = $2
	line = "    {\"name\": \"" name "\", \"iterations\": " iters
	for (i = 3; i + 1 <= NF; i += 2) {
		val = $i; unit = $(i + 1)
		if (unit == "ns/op")        key = "ns_per_op"
		else if (unit == "paths/sec") key = "states_per_sec"
		else if (unit == "executions") key = "executions_per_run"
		else if (unit == "hitrate")  key = "dedup_hit_rate"
		else continue
		line = line ", \"" key "\": " val
		if (name ~ /^EngineDedupSweep/) {
			if (name ~ /dedup=false/ && unit == "executions") plain = val
			if (name ~ /dedup=true/ && unit == "executions") dedup = val
		}
		if (name ~ /^EngineReduceSweep/) {
			if (name ~ /reduce=off/ && unit == "executions") roff = val
			if (name ~ /reduce=off/ && unit == "ns/op") roffns = val
			if (name ~ /reduce=on/ && unit == "executions") ron = val
			if (name ~ /reduce=on/ && unit == "ns/op") ronns = val
		}
		if (unit == "ns/op" && name ~ /^EngineCoveringSweep\/workers=/) {
			w = name
			sub(/^EngineCoveringSweep\/workers=/, "", w)
			ns[w + 0] = val
		}
	}
	rows[++n] = line "}"
}
END {
	print "{"
	print "  \"suite\": \"explore engine\","
	print "  \"package\": \"" pkg "\","
	print "  \"goos\": \"" goos "\", \"goarch\": \"" goarch "\","
	print "  \"cpu\": \"" cpu "\","
	print "  \"benchtime\": \"" benchtime "\","
	print "  \"benchmarks\": ["
	for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
	print "  ]" (((ns[1] && ns[8]) || (plain && dedup) || (roff && ron)) ? "," : "")
	if (ns[1] && ns[8]) {
		printf "  \"scaling\": {\"ns_per_op_workers_1\": %.0f, \"ns_per_op_workers_2\": %.0f, \"ns_per_op_workers_4\": %.0f, \"ns_per_op_workers_8\": %.0f, \"speedup_workers_8\": %.4f, \"parallel_efficiency\": %.4f}%s\n", \
			ns[1], ns[2], ns[4], ns[8], ns[1] / ns[8], ns[1] / ns[8] / 8, (((plain && dedup) || (roff && ron)) ? "," : "")
	}
	if (plain && dedup) {
		printf "  \"dedup_reduction\": {\"plain_executions\": %d, \"dedup_executions\": %d, \"executions_saved_fraction\": %.4f}%s\n", \
			plain, dedup, (plain - dedup) / plain, ((roff && ron) ? "," : "")
	}
	if (roff && ron) {
		printf "  \"por_reduction\": {\"dedup_only_executions\": %d, \"reduced_executions\": %d, \"executions_reduction_factor\": %.4f, \"floor\": 3.0, \"dedup_only_ns_per_op\": %.0f, \"reduced_ns_per_op\": %.0f}\n", \
			roff, ron, roff / ron, roffns, ronns
	}
	print "}"
}
' "$RAW" > "$BENCH_JSON"

echo "== tracing overhead (traced vs untraced covering sweep, min of $TRACE_COUNT) =="
go test -run '^$' \
	-bench 'BenchmarkEngineCoveringSweep/workers=4$|BenchmarkEngineTracedCoveringSweep' \
	-benchtime "$BENCHTIME" -count "$TRACE_COUNT" ./internal/explore/ | tee "$RAW_TRACE"

awk -v count="$TRACE_COUNT" '
/^BenchmarkEngineCoveringSweep\/workers=4/       { if (!u || $3 + 0 < u) u = $3 + 0 }
/^BenchmarkEngineTracedCoveringSweep\/workers=4/ { if (!t || $3 + 0 < t) t = $3 + 0 }
END {
	if (!u || !t) { print "{}"; exit 1 }
	overhead = (t - u) / u
	printf "{\"untraced_min_ns_per_op\": %.0f, \"traced_min_ns_per_op\": %.0f, \"overhead_fraction\": %.4f, \"budget_fraction\": 0.15, \"samples\": %d}\n", \
		u, t, overhead, count
	if (overhead > 0.15) {
		printf "WARNING: tracing overhead %.1f%% exceeds the 15%% budget\n", 100 * overhead > "/dev/stderr"
	}
}
' "$RAW_TRACE" > "$OVERHEAD"

echo "== compiled-vs-goroutine execution form (min of $FORM_COUNT) =="
go test -run '^$' \
	-bench 'BenchmarkExecFormCoveringSweep' \
	-benchtime "$BENCHTIME" -count "$FORM_COUNT" ./internal/explore/ | tee "$RAW_FORM"

awk -v count="$FORM_COUNT" -v ncpu="$NCPU" '
/^BenchmarkExecFormCoveringSweep\/form=compiled/  { if (!c || $3 + 0 < c) c = $3 + 0 }
/^BenchmarkExecFormCoveringSweep\/form=goroutine/ { if (!g || $3 + 0 < g) g = $3 + 0 }
END {
	if (!c || !g) { print "{}"; exit 1 }
	printf "{\"goroutine_min_ns_per_op\": %.0f, \"compiled_min_ns_per_op\": %.0f, \"compiled_speedup\": %.4f, \"floor\": 2.0, \"samples\": %d, \"host_cpus\": %d, \"single_core_host\": %s}\n", \
		g, c, g / c, count, ncpu, (ncpu <= 1 ? "true" : "false")
}
' "$RAW_FORM" > "$SPEEDUP"

echo "== ledger scaling (1 vs 2 cooperating worker processes) =="
MC="$RUNDIR/modelcheck"
go build -o "$MC" ./cmd/modelcheck
LEDGER_ARGS="-proto figure3 -f 1 -t 1 -n 2 -unbounded"
T0="$(date +%s%N)"
"$MC" $LEDGER_ARGS -ledger "$RUNDIR/led1" -worker-id solo >/dev/null
T1="$(date +%s%N)"
"$MC" $LEDGER_ARGS -ledger "$RUNDIR/led2" -worker-id duo-a >/dev/null &
LWPID=$!
"$MC" $LEDGER_ARGS -ledger "$RUNDIR/led2" -worker-id duo-b >/dev/null
wait "$LWPID"
T2="$(date +%s%N)"
"$MC" -ledger-finalize "$RUNDIR/led1" -report "$RUNDIR/led1.json" >/dev/null
"$MC" -ledger-finalize "$RUNDIR/led2" -report "$RUNDIR/led2.json" >/dev/null
EX1="$(sed -n 's/^ *"executions": \([0-9]*\),*$/\1/p' "$RUNDIR/led1.json" | head -1)"
EX2="$(sed -n 's/^ *"executions": \([0-9]*\),*$/\1/p' "$RUNDIR/led2.json" | head -1)"
if [ "$EX1" != "$EX2" ]; then
	echo "WARNING: ledger merges disagree: 1-proc $EX1 executions, 2-proc $EX2" >&2
fi
W1_MS=$(( (T1 - T0) / 1000000 ))
W2_MS=$(( (T2 - T1) / 1000000 ))
LEDGER_JSON="$RUNDIR/ledger_scaling.json"
awk -v ex1="$EX1" -v ex2="$EX2" -v w1="$W1_MS" -v w2="$W2_MS" -v ncpu="$NCPU" 'BEGIN {
	printf "{\"executions_1proc\": %d, \"executions_2proc\": %d, \"wall_ms_1proc\": %d, \"wall_ms_2proc\": %d, \"speedup_2proc\": %.4f, \"host_cpus\": %d, \"single_core_host\": %s}\n", \
		ex1, ex2, w1, w2, (w2 > 0 ? w1 / w2 : 0), ncpu, (ncpu <= 1 ? "true" : "false")
}' > "$LEDGER_JSON"
cat "$LEDGER_JSON"

echo "== fleet snapshot overhead (publishing vs plain solo worker, min of $FLEET_COUNT) =="
# Fresh ledger directories every iteration: re-joining a drained ledger
# would measure an immediate exit, not a sweep.
FLEET_JSON="$RUNDIR/fleet_overhead.json"
PMIN=0
SMIN=0
i=1
while [ "$i" -le "$FLEET_COUNT" ]; do
	F0="$(date +%s%N)"
	"$MC" $LEDGER_ARGS -ledger "$RUNDIR/fleet-plain-$i" -worker-id plain \
		-fleet-snapshots=false >/dev/null
	F1="$(date +%s%N)"
	"$MC" $LEDGER_ARGS -ledger "$RUNDIR/fleet-snap-$i" -worker-id snap >/dev/null
	F2="$(date +%s%N)"
	P=$(( F1 - F0 ))
	S=$(( F2 - F1 ))
	if [ "$PMIN" -eq 0 ] || [ "$P" -lt "$PMIN" ]; then PMIN=$P; fi
	if [ "$SMIN" -eq 0 ] || [ "$S" -lt "$SMIN" ]; then SMIN=$S; fi
	i=$(( i + 1 ))
done
awk -v p="$PMIN" -v s="$SMIN" -v count="$FLEET_COUNT" 'BEGIN {
	overhead = (s - p) / p
	printf "{\"plain_min_wall_ms\": %.1f, \"snapshots_min_wall_ms\": %.1f, \"overhead_fraction\": %.4f, \"budget_fraction\": 0.05, \"samples\": %d}\n", \
		p / 1e6, s / 1e6, overhead, count
	if (overhead > 0.05) {
		printf "WARNING: fleet snapshot overhead %.1f%% exceeds the 5%% budget\n", 100 * overhead > "/dev/stderr"
	}
}' > "$FLEET_JSON"
cat "$FLEET_JSON"

# One instrumented run producing the metric snapshot the bench trajectory
# records. The workload is the dedup-sweep configuration (staged f=1, t=1,
# n=2, unbounded faults on every object): its execution tree is finite, so
# the run COMPLETES and the embedded report's "result" is a real verdict
# ("verified"), not the "incomplete" a capped slab produces — an embedded
# incomplete run is a benchmark artifact, not a canonical report.
# Checkpointing is on so the checkpoint-latency histograms populate.
echo "== instrumented verification run (-report) =="
go run ./cmd/modelcheck \
	-proto figure3 -f 1 -t 1 -n 2 -unbounded -max 1000000 -dedup \
	-checkpoint "$RUNDIR/run" -checkpoint-every 100ms \
	-report "$REPORT" >/dev/null

# Embed the overhead measurement and the run report into the benchmark
# JSON: drop the closing brace, splice in the members, close the object.
{
	sed '$d' "$BENCH_JSON"
	printf '  ,\n  "trace_overhead":\n'
	sed 's/^/  /' "$OVERHEAD"
	printf '  ,\n  "compiled_speedup":\n'
	sed 's/^/  /' "$SPEEDUP"
	printf '  ,\n  "ledger_scaling":\n'
	sed 's/^/  /' "$LEDGER_JSON"
	printf '  ,\n  "fleet_overhead":\n'
	sed 's/^/  /' "$FLEET_JSON"
	printf '  ,\n  "report":\n'
	sed 's/^/  /' "$REPORT"
	printf '}\n'
} > "$OUT"

echo "wrote $OUT"
