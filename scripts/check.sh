#!/bin/sh
# CI gate: formatting, vet, build, full test suite, and a race-detector
# pass over every package.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files are not gofmt-formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== obs gate (vet + staticcheck + fresh tests) =="
# The observability layer is the measurement foundation every perf PR
# builds on, so it gets its own uncached gate: vet, staticcheck when the
# tool is installed, and -count=1 tests.
go vet ./internal/obs/
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./internal/obs/
else
	echo "staticcheck not installed; skipping (go vet still gates internal/obs)"
fi
go test -count=1 ./internal/obs/

echo "== trace gate (vet + fresh tests) =="
# The trace/v1 on-disk format and the Perfetto rendering are what every
# capture, replay, and explanation depends on, so the trace packages get
# the same uncached gate.
go vet ./internal/trace/ ./internal/trace/export/
go test -count=1 ./internal/trace/ ./internal/trace/export/

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (all packages) =="
go test -race ./...

echo "== ledger gate (multi-process verdict equality, fresh) =="
# The distributed work ledger must merge to the exact single-process
# verdict — same execution count, same lex-least counterexample — with
# participants joining, exporting, dying mid-lease, and being reclaimed.
# Package tests cover the protocol (fencing, reclaim, lineage supersession);
# the CLI tests drive real OS processes, SIGKILL one, and compare the
# finalized verdict against an uninterrupted reference run. Uncached.
go test -count=1 ./internal/ledger/
go test -count=1 -run 'TestEngineLedger' ./internal/explore/
go test -count=1 -run 'TestCLILedger' .

echo "== fleet gate (cross-worker observability, fresh) =="
# Fleet observability is how a distributed run is watched: per-worker
# snapshots merge into one view whose totals must agree with the finalize
# merge, and a frozen worker must surface as stale with its reaped claim
# traceable across the survivors' event logs. Package tests exercise every
# anomaly rule on synthetic inputs; the CLI test SIGSTOPs a real worker
# and follows the reclaim chain. Uncached.
go test -count=1 ./internal/obs/fleet/
go test -count=1 -run 'TestEngineFleet' ./internal/explore/
go test -count=1 -run 'TestCLIFleet' .

echo "== exec-form equivalence gate (compiled vs interpreted covering sweeps) =="
# The compiled Stepper machines must enumerate the SAME execution tree as
# the goroutine-gated reference simulator, leaf for leaf: every protocol
# with a compiled form is swept (n=2, f=1, unbounded faults) through both
# forms and any divergence in verdicts, schedules, decisions, step counts,
# or trace logs fails the gate. Uncached, so the gate re-runs every time.
go test -count=1 -run TestCompiledMatchesInterpreted ./internal/explore/

echo "== reduction-equivalence gate (reduced vs full exploration, fresh, race) =="
# Partial-order reduction must not change what the checker reports: every
# differential case (clean and violating sweeps, both execution forms) is
# re-explored with reduce=on and any divergence in verdict, completeness,
# counterexample schedule, decisions, or trace log fails the gate. The
# reducer's sleep/symmetry bookkeeping is shared mutable state on the branch
# path, so this gate runs under the race detector, uncached.
go test -count=1 -race -run TestReduceMatchesFull ./internal/explore/

echo "== scaling gate (workers=8 vs workers=1 smoke sweep) =="
# Negative-scaling regression gate: the same 4096-execution covering-sweep
# slab must not get slower when workers are added. The per-benchmark MINIMUM
# of SCALE_COUNT runs is compared (single samples on a loaded box misread by
# 50%). On a multicore machine eight workers must be at least as fast as
# one (budget 1.05). On a single core eight workers time-slice one P, so
# the budget is the measured cost of interleaving eight replay chains
# through the Go scheduler (~1.4x on this class of box) plus noise headroom:
# 1.6x. Before the lease rework the single-core ratio was not the problem —
# the shared-counter hot path made workers=8 slower than workers=1 even
# with idle cores to spare.
NCPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$NCPU" -ge 2 ]; then BUDGET=1.05; else BUDGET=1.6; fi
SCALE_COUNT="${SCALE_COUNT:-5}"
RAW_SCALE="$(mktemp)"
RAW_FORM="$(mktemp)"
RAW_REDUCE="$(mktemp)"
trap 'rm -f "$RAW_SCALE" "$RAW_FORM" "$RAW_REDUCE"' EXIT
go test -run '^$' -bench 'BenchmarkEngineCoveringSweep/workers=(1|8)$' \
	-benchtime 1x -count "$SCALE_COUNT" ./internal/explore/ | tee "$RAW_SCALE"
awk -v budget="$BUDGET" '
$1 ~ /\/workers=1(-[0-9]+)?$/ { if (!w1 || $3 + 0 < w1) w1 = $3 + 0 }
$1 ~ /\/workers=8(-[0-9]+)?$/ { if (!w8 || $3 + 0 < w8) w8 = $3 + 0 }
END {
	if (!w1 || !w8) { print "scaling gate: missing benchmark output" > "/dev/stderr"; exit 1 }
	ratio = w8 / w1
	printf "scaling gate: workers=1 min %.0f ns/op, workers=8 min %.0f ns/op, ratio %.2f (budget %.2f)\n", w1, w8, ratio, budget
	if (ratio > budget) {
		printf "FAIL: workers=8 is %.2fx slower than workers=1 — negative worker scaling\n", ratio > "/dev/stderr"
		exit 1
	}
}
' "$RAW_SCALE"

echo "== compiled-speedup gate (compiled vs goroutine form, min of $SCALE_COUNT) =="
# The compiled form's reason to exist is speed: the single-worker
# 4096-execution covering slab must run at least 2x faster through the
# stepped runner than through the goroutine-gated reference simulator.
# Per-benchmark MINIMUM of SCALE_COUNT runs, same as the scaling gate —
# single samples on a loaded box misread the ratio. The slab is
# single-worker, so the floor holds on single-core hosts too.
go test -run '^$' -bench 'BenchmarkExecFormCoveringSweep' \
	-benchtime 1x -count "$SCALE_COUNT" ./internal/explore/ | tee "$RAW_FORM"
awk '
$1 ~ /\/form=compiled(-[0-9]+)?$/  { if (!c || $3 + 0 < c) c = $3 + 0 }
$1 ~ /\/form=goroutine(-[0-9]+)?$/ { if (!g || $3 + 0 < g) g = $3 + 0 }
END {
	if (!c || !g) { print "compiled-speedup gate: missing benchmark output" > "/dev/stderr"; exit 1 }
	speedup = g / c
	printf "compiled-speedup gate: goroutine min %.0f ns/op, compiled min %.0f ns/op, speedup %.2fx (floor 2.00x)\n", g, c, speedup
	if (speedup < 2) {
		printf "FAIL: compiled form is only %.2fx faster than the goroutine form (floor 2x)\n", speedup > "/dev/stderr"
		exit 1
	}
}
' "$RAW_FORM"

echo "== POR executions-reduction gate (reduce=on vs dedup-only, min of $SCALE_COUNT) =="
# The reducer's reason to exist is fewer replays for the same verdict: on
# the figure2 f=1, n=4 covering sweep (unbounded faults on the first
# object) the reduce=on row must finish the complete verification in at
# least 3x fewer executions than the dedup-only baseline. Both counts are
# exactly reproducible (single worker, complete sweep) — the min of
# SCALE_COUNT runs only defends against a benchmark harness mishap, not
# noise. The equivalence gate above already proved the verdicts and
# counterexamples identical; this gate pins the measured win.
go test -run '^$' -bench 'BenchmarkEngineReduceSweep' \
	-benchtime 1x -count "$SCALE_COUNT" ./internal/explore/ | tee "$RAW_REDUCE"
awk '
$1 ~ /\/reduce=off(-[0-9]+)?$/ { for (i = 3; i < NF; i++) if ($(i + 1) == "executions") { v = $i + 0; if (!off || v < off) off = v } }
$1 ~ /\/reduce=on(-[0-9]+)?$/  { for (i = 3; i < NF; i++) if ($(i + 1) == "executions") { v = $i + 0; if (!on  || v < on)  on  = v } }
END {
	if (!off || !on) { print "POR gate: missing benchmark output" > "/dev/stderr"; exit 1 }
	factor = off / on
	printf "POR gate: dedup-only %.0f executions, reduce=on %.0f executions, reduction %.2fx (floor 3.00x)\n", off, on, factor
	if (factor < 3) {
		printf "FAIL: reduction only cuts executions %.2fx over dedup alone (floor 3x)\n", factor > "/dev/stderr"
		exit 1
	}
}
' "$RAW_REDUCE"

echo "OK"
