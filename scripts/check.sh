#!/bin/sh
# CI gate: vet, build, full test suite, and a race-detector pass over the
# concurrency-bearing packages (the parallel exploration engine and the
# step-granting simulator).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (engine + simulator) =="
go test -race ./internal/explore/... ./internal/sim/...

echo "OK"
