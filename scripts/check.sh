#!/bin/sh
# CI gate: formatting, vet, build, full test suite, and a race-detector
# pass over every package.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files are not gofmt-formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (all packages) =="
go test -race ./...

echo "OK"
