#!/bin/sh
# CI gate: formatting, vet, build, full test suite, and a race-detector
# pass over every package.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files are not gofmt-formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== obs gate (vet + staticcheck + fresh tests) =="
# The observability layer is the measurement foundation every perf PR
# builds on, so it gets its own uncached gate: vet, staticcheck when the
# tool is installed, and -count=1 tests.
go vet ./internal/obs/
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./internal/obs/
else
	echo "staticcheck not installed; skipping (go vet still gates internal/obs)"
fi
go test -count=1 ./internal/obs/

echo "== trace gate (vet + fresh tests) =="
# The trace/v1 on-disk format and the Perfetto rendering are what every
# capture, replay, and explanation depends on, so the trace packages get
# the same uncached gate.
go vet ./internal/trace/ ./internal/trace/export/
go test -count=1 ./internal/trace/ ./internal/trace/export/

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (all packages) =="
go test -race ./...

echo "OK"
