package trace

import (
	"sync"
	"time"
)

// Span is one named interval of real work recorded during an exploration:
// an engine worker enumerating a subtree task, a checkpoint being written,
// a whole run. Unlike Event — which lives in the simulated execution's
// logical time — a span carries wall-clock timestamps, so exported spans
// show where the machine actually spent its time.
type Span struct {
	// Name labels the span (e.g. "task", "checkpoint", "run").
	Name string `json:"name"`
	// Cat groups spans for filtering in trace viewers ("worker",
	// "checkpoint", ...).
	Cat string `json:"cat,omitempty"`
	// PID identifies the owning engine worker (Perfetto's process lane).
	PID int `json:"pid"`
	// TID subdivides a worker's lane; -1 when the span has no sub-lane.
	TID int `json:"tid"`
	// Start is nanoseconds since the recorder was created (monotonic).
	Start int64 `json:"start_ns"`
	// Dur is the span duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Args carries span-specific detail (task depth, executions, bytes).
	Args map[string]any `json:"args,omitempty"`
}

// DefaultSpanCap bounds how many spans a Recorder retains. Long sweeps can
// enumerate hundreds of thousands of donated tasks; the cap keeps the
// recorder's memory bounded while Dropped makes the truncation visible.
const DefaultSpanCap = 16384

// Recorder collects spans from concurrent engine workers. All methods are
// safe for concurrent use and safe on a nil *Recorder (they do nothing), so
// instrumentation threads through unconditionally.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	cap     int
	spans   []Span
	dropped int64
	common  map[string]any // Annotate keys, stamped onto every End
}

// NewRecorder returns a recorder retaining at most cap spans (0 means
// DefaultSpanCap).
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultSpanCap
	}
	return &Recorder{start: time.Now(), cap: cap}
}

// Begin returns the wall-clock instant to pass back to End. Nil-safe: on a
// nil recorder the zero time is returned and End discards it.
func (r *Recorder) Begin() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// Annotate registers a key/value pair stamped into the args of every span
// recorded from now on (explicit End args win on collision). It is how a
// process-wide identity — a ledger worker id, a ledger epoch — reaches
// every span without threading through each End call site, so spans from
// different OS processes can be correlated after export. Nil-safe.
func (r *Recorder) Annotate(key string, value any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.common == nil {
		r.common = make(map[string]any)
	}
	r.common[key] = value
}

// End records one span that started at the given Begin instant. Args is
// retained, not copied (unless Annotate keys force a merge); callers must
// not mutate it afterwards.
func (r *Recorder) End(name, cat string, pid, tid int, start time.Time, args map[string]any) {
	if r == nil || start.IsZero() {
		return
	}
	s := Span{
		Name:  name,
		Cat:   cat,
		PID:   pid,
		TID:   tid,
		Start: start.Sub(r.start).Nanoseconds(),
		Dur:   time.Since(start).Nanoseconds(),
		Args:  args,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.common) > 0 {
		merged := make(map[string]any, len(r.common)+len(args))
		for k, v := range r.common {
			merged[k] = v
		}
		for k, v := range args {
			merged[k] = v
		}
		s.Args = merged
	}
	if len(r.spans) >= r.cap {
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// Spans returns a copy of the recorded spans in recording order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Dropped returns how many spans the cap discarded — exported alongside the
// spans so a truncated recording never reads as a complete one.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
