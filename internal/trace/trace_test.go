package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/word"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: EventCAS, Proc: 0, Object: 1, Exp: word.Bottom, New: word.FromValue(7),
			Pre: word.Bottom, Post: word.FromValue(7), Old: word.Bottom},
		{Kind: EventCAS, Proc: 1, Object: 1, Exp: word.Bottom, New: word.FromValue(9),
			Pre: word.FromValue(7), Post: word.FromValue(9), Old: word.FromValue(7),
			Fault: fault.Overriding},
		{Kind: EventDecide, Proc: 0, Value: word.FromValue(7)},
		{Kind: EventCorrupt, Object: 0, Value: word.FromValue(3), Pre: word.FromValue(7)},
		{Kind: EventHalt, Proc: 2},
		{Kind: EventRead, Proc: 1, Object: 4, Value: word.FromValue(5)},
		{Kind: EventWrite, Proc: 1, Object: 4, Value: word.FromValue(6)},
	}
}

func TestLogAppendAssignsIndices(t *testing.T) {
	l := New()
	for _, e := range sampleEvents() {
		l.Append(e)
	}
	for i, e := range l.Events() {
		if e.Index != i {
			t.Errorf("event %d has index %d", i, e.Index)
		}
	}
	if l.Len() != len(sampleEvents()) {
		t.Errorf("Len() = %d, want %d", l.Len(), len(sampleEvents()))
	}
}

func TestLogFaults(t *testing.T) {
	l := New()
	for _, e := range sampleEvents() {
		l.Append(e)
	}
	faults := l.Faults()
	if len(faults) != 1 {
		t.Fatalf("Faults() returned %d events, want 1", len(faults))
	}
	if faults[0].Fault != fault.Overriding {
		t.Errorf("fault kind = %v", faults[0].Fault)
	}
}

func TestEventWrote(t *testing.T) {
	e := Event{Pre: word.Bottom, Post: word.FromValue(1)}
	if !e.Wrote() {
		t.Error("changed content must report Wrote")
	}
	e.Post = word.Bottom
	if e.Wrote() {
		t.Error("unchanged content must not report Wrote")
	}
}

func TestEventStringForms(t *testing.T) {
	for _, e := range sampleEvents() {
		s := e.String()
		if s == "" {
			t.Errorf("empty String() for %v", e.Kind)
		}
		if !strings.Contains(s, "#") {
			t.Errorf("String() missing index marker: %q", s)
		}
	}
	// A faulty CAS must advertise the fault.
	faulty := sampleEvents()[1]
	if !strings.Contains(faulty.String(), "FAULT[overriding]") {
		t.Errorf("faulty CAS string lacks fault marker: %q", faulty.String())
	}
}

func TestLogJSONRoundTrip(t *testing.T) {
	l := New()
	for _, e := range sampleEvents() {
		l.Append(e)
	}
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	var back Log
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), l.Len())
	}
	for i, e := range back.Events() {
		if e != l.Events()[i] {
			t.Errorf("event %d differs after round trip:\n got %+v\nwant %+v", i, e, l.Events()[i])
		}
	}
}

func TestLogString(t *testing.T) {
	l := New()
	for _, e := range sampleEvents() {
		l.Append(e)
	}
	s := l.String()
	if got := strings.Count(s, "\n"); got != l.Len() {
		t.Errorf("String() has %d lines, want %d", got, l.Len())
	}
}
