package trace

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/word"
)

var update = flag.Bool("update", false, "rewrite golden files")

// wideLog builds a diagram stress case: 11 processes (two-digit column
// headers) and staged register words far wider than the historical fixed
// 24-rune column.
func wideLog() *Log {
	l := New()
	for p := 0; p < 11; p++ {
		pre := word.Bottom
		if p > 0 {
			pre = word.Pack(int64(100+p-1), int64(40+p))
		}
		post := word.Pack(int64(100+p), int64(40+p))
		l.Append(Event{Index: p, Kind: EventCAS, Proc: p, Object: p % 3,
			Exp: pre, New: post, Pre: pre, Post: post, Old: pre})
	}
	l.Append(Event{Index: 11, Kind: EventCAS, Proc: 10, Object: 0,
		Exp: word.Bottom, New: word.FromValue(999),
		Pre: word.Pack(110, 50), Post: word.FromValue(999),
		Old: word.Pack(110, 50), Fault: fault.Overriding})
	l.Append(Event{Index: 12, Kind: EventDecide, Proc: 10, Value: word.FromValue(999)})
	return l
}

// TestDiagramWideGolden pins the exact rendering of a wide diagram (11
// processes, staged words) against testdata/diagram_wide.golden; regenerate
// with `go test ./internal/trace -run Golden -update` after an intentional
// format change.
func TestDiagramWideGolden(t *testing.T) {
	got := wideLog().Diagram()
	path := filepath.Join("testdata", "diagram_wide.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagram deviates from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDiagramWideAlignment asserts the structural property the golden file
// encodes: every row has the same display width, and every event's cell
// starts exactly under its process's header label — the invariant the old
// fixed-width rendering broke for ≥10 processes and wide register values.
func TestDiagramWideAlignment(t *testing.T) {
	l := wideLog()
	d := l.Diagram()
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	if len(lines) != 14 { // header + 13 events
		t.Fatalf("diagram has %d lines:\n%s", len(lines), d)
	}
	width := displayWidth(lines[0])
	for i, row := range lines {
		if w := displayWidth(row); w != width {
			t.Errorf("row %d has display width %d, header has %d:\n%s", i, w, width, d)
		}
	}
	header := []rune(lines[0])
	for i, e := range l.Events() {
		label := "p" + string([]rune{rune('0' + e.Proc/10), rune('0' + e.Proc%10)})
		if e.Proc < 10 {
			label = "p" + string(rune('0'+e.Proc))
		}
		pos := runeIndex(header, label+" ")
		if pos < 0 {
			t.Fatalf("header lacks %q: %q", label, lines[0])
		}
		row := []rune(lines[i+1])
		if pos >= len(row) || row[pos] == ' ' || row[pos] == '.' {
			t.Errorf("row %d: p%d's cell does not start at header column %d:\n%s", i, e.Proc, pos, d)
		}
	}
}

// runeIndex finds the rune offset of the first occurrence of sub.
func runeIndex(runes []rune, sub string) int {
	s := string(runes)
	b := strings.Index(s, sub)
	if b < 0 {
		return -1
	}
	return len([]rune(s[:b]))
}
