package export

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/word"
)

func sampleExecution() *Execution {
	return &Execution{
		Meta: Meta{
			Kind:     "execution",
			Run:      map[string]string{"proto": "figure3", "f": "1", "t": "1", "n": "3"},
			Worker:   2,
			Path:     []int{0, 1, 0},
			Schedule: []int{0, 1, 2},
			Inputs:   []int64{10, 11, 12},
			Verdict:  "consistency",
			Detail:   "process 2 decided 11 but an earlier process decided 10",
		},
		Events: []trace.Event{
			{Index: 0, Kind: trace.EventCAS, Proc: 0, Object: 0,
				Exp: word.Bottom, New: word.FromValue(10), Pre: word.Bottom,
				Post: word.FromValue(10), Old: word.Bottom},
			{Index: 1, Kind: trace.EventCAS, Proc: 1, Object: 0,
				Exp: word.Bottom, New: word.FromValue(11), Pre: word.FromValue(10),
				Post: word.FromValue(11), Old: word.FromValue(10), Fault: fault.Overriding},
			{Index: 2, Kind: trace.EventDecide, Proc: 1, Value: word.FromValue(11)},
		},
		Spans: []trace.Span{
			{Name: "task", Cat: "worker", PID: 0, TID: -1, Start: 100, Dur: 5000},
		},
		DroppedSpans: 4,
	}
}

func TestRoundTrip(t *testing.T) {
	x := sampleExecution()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(x.Meta); err != nil {
		t.Fatal(err)
	}
	for _, e := range x.Events {
		if err := w.Event(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range x.Spans {
		if err := w.Span(s); err != nil {
			t.Fatal(err)
		}
	}
	w.SetDropped(x.DroppedSpans)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}

	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Schema != Schema {
		t.Errorf("schema = %q", got.Meta.Schema)
	}
	if got.Meta.Verdict != x.Meta.Verdict || got.Meta.Worker != x.Meta.Worker {
		t.Errorf("meta mismatch: %+v", got.Meta)
	}
	if len(got.Meta.Path) != 3 || got.Meta.Path[1] != 1 {
		t.Errorf("path mismatch: %v", got.Meta.Path)
	}
	if len(got.Events) != len(x.Events) {
		t.Fatalf("got %d events, want %d", len(got.Events), len(x.Events))
	}
	for i := range got.Events {
		if got.Events[i] != x.Events[i] {
			t.Errorf("event %d: got %+v want %+v", i, got.Events[i], x.Events[i])
		}
	}
	if len(got.Spans) != 1 || got.Spans[0].Dur != 5000 {
		t.Errorf("spans mismatch: %+v", got.Spans)
	}
	if got.DroppedSpans != 4 {
		t.Errorf("dropped spans = %d, want 4", got.DroppedSpans)
	}
}

func TestWriteExecutionReadFile(t *testing.T) {
	x := sampleExecution()
	path := filepath.Join(t.TempDir(), "x.jsonl")
	if err := WriteExecution(path, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(x.Events) || got.Meta.Kind != "execution" {
		t.Errorf("round trip lost data: %d events, kind %q", len(got.Events), got.Meta.Kind)
	}
}

// TestTruncationDetected: a file missing its end record — the writer was
// killed mid-stream — must fail with ErrTruncated, not parse as a shorter
// execution.
func TestTruncationDetected(t *testing.T) {
	x := sampleExecution()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(x.Meta); err != nil {
		t.Fatal(err)
	}
	for _, e := range x.Events {
		if err := w.Event(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	// Chop off the end record — the tail a crash mid-write loses.
	sealed := strings.TrimRight(buf.String(), "\n")
	truncated := sealed[:strings.LastIndexByte(sealed, '\n')+1]
	if _, err := Read(strings.NewReader(truncated)); !errors.Is(err, ErrTruncated) {
		t.Errorf("unsealed file: err = %v, want ErrTruncated", err)
	}
}

// TestCountMismatchDetected: an end record whose counts disagree with the
// records present (a lost middle block) is refused.
func TestCountMismatchDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Event(trace.Event{Kind: trace.EventDecide}); err != nil {
		t.Fatal(err)
	}
	if err := w.Event(trace.Event{Kind: trace.EventHalt}); err != nil {
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	// Drop one event line (line 2) but keep the end record.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	corrupted := strings.Join(append(lines[:1:1], lines[2:]...), "\n")
	if _, err := Read(strings.NewReader(corrupted)); err == nil ||
		!strings.Contains(err.Error(), "end record counts") {
		t.Errorf("count mismatch: err = %v", err)
	}
}

func TestReadRefusesWrongSchema(t *testing.T) {
	in := `{"type":"meta","meta":{"schema":"trace/v2"}}`
	if _, err := Read(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema: err = %v", err)
	}
}

func TestReadRefusesMissingMeta(t *testing.T) {
	in := `{"type":"event","event":{"i":0,"kind":"decide","proc":0}}`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Error("a file without a meta record must be refused")
	}
}

func TestWriterSequenceEnforced(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Event(trace.Event{}); err == nil {
		t.Error("Event before Begin must fail")
	}
	if err := w.End(); err == nil {
		t.Error("End before Begin must fail")
	}
	if err := w.Begin(Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(Meta{}); err == nil {
		t.Error("double Begin must fail")
	}
}

func TestEndIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	if err := w.End(); err != nil {
		t.Errorf("second End must be a no-op, got %v", err)
	}
	if n := strings.Count(buf.String(), `"type":"end"`); n != 1 {
		t.Errorf("file has %d end records, want 1", n)
	}
}
