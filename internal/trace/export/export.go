// Package export turns recorded executions into durable, exportable trace
// artifacts: a JSONL on-disk format ("trace/v1") that round-trips through
// Read back into events bit-for-bit, and a Chrome trace-event / Perfetto
// JSON rendering (perfetto.go) loadable in ui.perfetto.dev.
//
// A trace/v1 file is a sequence of JSON objects, one per line, each tagged
// with a "type" discriminator:
//
//	{"type":"meta", "meta":{...}}    exactly once, first line
//	{"type":"event","event":{...}}   one per simulator event, in order
//	{"type":"span", "span":{...}}    one per wall-clock span, in order
//	{"type":"end",  "events":N,"spans":M,"dropped_spans":D}
//
// The end record carries the record counts, so a truncated file — a crash
// mid-write, a lost final block — is detected on read instead of silently
// passing for a shorter execution.
package export

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

// Schema identifies the on-disk trace format; readers refuse other values.
const Schema = "trace/v1"

// Meta is the header of a trace/v1 file: everything needed to re-run the
// recorded execution (or to identify a spans-only recording).
type Meta struct {
	// Schema is always Schema ("trace/v1").
	Schema string `json:"schema"`
	// Kind is "execution" (events of one simulated run) or "spans"
	// (wall-clock spans of a whole exploration).
	Kind string `json:"kind"`
	// Run records the settings that produced the run as flat strings
	// (proto, f, t, n, fault, ...) — the same map the checkpoint manifest
	// and the -report Run section use, so a trace file alone suffices to
	// reconstruct its configuration.
	Run map[string]string `json:"run,omitempty"`
	// Worker is the engine worker that ran the execution (-1 when not
	// applicable).
	Worker int `json:"worker"`
	// Path is the choice path driving the execution (replay key).
	Path []int `json:"path,omitempty"`
	// Schedule is the sequence of process ids granted steps.
	Schedule []int `json:"schedule,omitempty"`
	// Inputs are the process input values.
	Inputs []int64 `json:"inputs,omitempty"`
	// Verdict is "ok" or the violated requirement ("consistency", ...).
	Verdict string `json:"verdict,omitempty"`
	// Detail is the human-readable violation explanation.
	Detail string `json:"detail,omitempty"`
}

// Execution is a fully parsed trace/v1 file.
type Execution struct {
	Meta   Meta
	Events []trace.Event
	Spans  []trace.Span
	// DroppedSpans is the number of spans the recorder's cap discarded
	// before export (the recording is complete when zero).
	DroppedSpans int64
}

// record is the one-line-per-record framing of the file.
type record struct {
	Type  string       `json:"type"`
	Meta  *Meta        `json:"meta,omitempty"`
	Event *trace.Event `json:"event,omitempty"`
	Span  *trace.Span  `json:"span,omitempty"`

	// end-record fields
	Events       int   `json:"events,omitempty"`
	Spans        int   `json:"spans,omitempty"`
	DroppedSpans int64 `json:"dropped_spans,omitempty"`
}

// ErrTruncated reports a trace/v1 file without a matching end record: the
// writer died (or was killed) before the trace was sealed.
var ErrTruncated = errors.New("export: trace file truncated (no matching end record)")

// Writer streams one trace/v1 file. The record sequence is enforced: Begin,
// any number of Event/Span, End. Writers are not safe for concurrent use.
type Writer struct {
	w       *bufio.Writer
	c       io.Closer // nil when wrapping a caller-owned io.Writer
	events  int
	spans   int
	dropped int64
	begun   bool
	ended   bool
	err     error
}

// NewWriter returns a writer streaming to w; the caller owns w's lifetime.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Create opens path for writing (truncating) and returns a writer that
// Close will flush, sync, and close.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	w := NewWriter(f)
	w.c = f
	return w, nil
}

func (w *Writer) emit(r *record) error {
	if w.err != nil {
		return w.err
	}
	data, err := json.Marshal(r)
	if err == nil {
		data = append(data, '\n')
		_, err = w.w.Write(data)
	}
	if err != nil {
		w.err = fmt.Errorf("export: %w", err)
	}
	return w.err
}

// Begin writes the meta header. It must be the first record.
func (w *Writer) Begin(m Meta) error {
	if w.begun {
		return errors.New("export: Begin called twice")
	}
	w.begun = true
	m.Schema = Schema
	if m.Kind == "" {
		m.Kind = "execution"
	}
	return w.emit(&record{Type: "meta", Meta: &m})
}

// Event appends one simulator event.
func (w *Writer) Event(e trace.Event) error {
	if !w.begun {
		return errors.New("export: Event before Begin")
	}
	w.events++
	return w.emit(&record{Type: "event", Event: &e})
}

// Span appends one wall-clock span.
func (w *Writer) Span(s trace.Span) error {
	if !w.begun {
		return errors.New("export: Span before Begin")
	}
	w.spans++
	return w.emit(&record{Type: "span", Span: &s})
}

// SetDropped records how many spans were discarded before export; the count
// is sealed into the end record.
func (w *Writer) SetDropped(n int64) { w.dropped = n }

// End seals the file with the end record and flushes. A file without a
// matching End fails Read with ErrTruncated.
func (w *Writer) End() error {
	if !w.begun {
		return errors.New("export: End before Begin")
	}
	if w.ended {
		return nil
	}
	w.ended = true
	if err := w.emit(&record{Type: "end", Events: w.events, Spans: w.spans, DroppedSpans: w.dropped}); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = fmt.Errorf("export: %w", err)
	}
	return w.err
}

// Close seals the file (if End was not yet called), flushes, and closes the
// underlying file when the writer owns one.
func (w *Writer) Close() error {
	err := w.End()
	if w.c != nil {
		if cerr := w.c.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("export: %w", cerr)
		}
		w.c = nil
	}
	return err
}

// WriteExecution writes a complete execution as one trace/v1 file.
func WriteExecution(path string, x *Execution) error {
	w, err := Create(path)
	if err != nil {
		return err
	}
	if err := w.Begin(x.Meta); err != nil {
		w.Close() //nolint:errcheck // already failing
		return err
	}
	for _, e := range x.Events {
		if err := w.Event(e); err != nil {
			w.Close() //nolint:errcheck // already failing
			return err
		}
	}
	for _, s := range x.Spans {
		if err := w.Span(s); err != nil {
			w.Close() //nolint:errcheck // already failing
			return err
		}
	}
	w.SetDropped(x.DroppedSpans)
	return w.Close()
}

// Read parses a trace/v1 stream, verifying the header schema and the end
// record's counts. A stream without an end record returns ErrTruncated.
func Read(r io.Reader) (*Execution, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	x := &Execution{}
	sealed := false
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if sealed {
			return nil, fmt.Errorf("export: line %d: record after end", line)
		}
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("export: line %d: %w", line, err)
		}
		switch rec.Type {
		case "meta":
			if line != 1 || rec.Meta == nil {
				return nil, fmt.Errorf("export: line %d: misplaced meta record", line)
			}
			if rec.Meta.Schema != Schema {
				return nil, fmt.Errorf("export: schema %q, want %q", rec.Meta.Schema, Schema)
			}
			x.Meta = *rec.Meta
		case "event":
			if rec.Event == nil {
				return nil, fmt.Errorf("export: line %d: event record without event", line)
			}
			x.Events = append(x.Events, *rec.Event)
		case "span":
			if rec.Span == nil {
				return nil, fmt.Errorf("export: line %d: span record without span", line)
			}
			x.Spans = append(x.Spans, *rec.Span)
		case "end":
			if rec.Events != len(x.Events) || rec.Spans != len(x.Spans) {
				return nil, fmt.Errorf("export: end record counts %d events/%d spans, file holds %d/%d",
					rec.Events, rec.Spans, len(x.Events), len(x.Spans))
			}
			x.DroppedSpans = rec.DroppedSpans
			sealed = true
		default:
			return nil, fmt.Errorf("export: line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	if x.Meta.Schema == "" {
		return nil, errors.New("export: no meta record (not a trace/v1 file)")
	}
	if !sealed {
		return nil, ErrTruncated
	}
	return x, nil
}

// ReadFile parses the trace/v1 file at path.
func ReadFile(path string) (*Execution, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	defer f.Close()
	x, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return x, nil
}
