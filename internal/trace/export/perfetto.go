package export

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/fault"
	"repro/internal/trace"
)

// Chrome trace-event JSON (the format Perfetto and chrome://tracing load):
// an object with a "traceEvents" array of phase-tagged events. Simulated
// executions have no wall clock, so each atomic step is rendered as a
// fixed-width slice at ts = step·stepUS — the timeline then reads as the
// schedule itself, one lane per process, with fault injections as flow
// marks. Wall-clock spans (engine workers, checkpoints) use their real
// timestamps, one lane per worker.
const (
	stepUS  = 10 // microseconds per simulated atomic step
	sliceUS = 8  // rendered slice width (gap makes step boundaries visible)
)

// perfettoEvent is one traceEvents entry.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// Perfetto renders the execution as Chrome trace-event JSON: pid = engine
// worker, tid = process, one complete ("X") slice per atomic step whose
// args carry the CAS arguments (exp), the observed register content
// (observed = pre), the written content (wrote = post), the returned old
// value, and the fault kind; fault injections additionally emit an instant
// event so they stand out on the timeline.
func Perfetto(w io.Writer, x *Execution) error {
	pid := x.Meta.Worker
	if pid < 0 {
		pid = 0
	}
	f := perfettoFile{DisplayTimeUnit: "ms", TraceEvents: []perfettoEvent{}}
	meta := func(p, t int, name, val string) {
		ev := perfettoEvent{Name: name, Ph: "M", PID: p, TID: t,
			Args: map[string]any{"name": val}}
		f.TraceEvents = append(f.TraceEvents, ev)
	}

	if len(x.Events) > 0 {
		meta(pid, 0, "process_name", fmt.Sprintf("worker %d", pid))
		procs := 0
		for _, e := range x.Events {
			if e.Proc+1 > procs {
				procs = e.Proc + 1
			}
		}
		for p := 0; p < procs; p++ {
			meta(pid, p, "thread_name", fmt.Sprintf("p%d", p))
		}
		// Corruption events belong to no process; give the adversary its
		// own lane after the process lanes.
		advTID := procs
		haveAdv := false
		for _, e := range x.Events {
			ts := int64(e.Index) * stepUS
			tid := e.Proc
			if e.Kind == trace.EventCorrupt {
				tid = advTID
				haveAdv = true
			}
			ev := perfettoEvent{
				Name: sliceName(e),
				Cat:  string(e.Kind),
				Ph:   "X",
				TS:   ts,
				Dur:  sliceUS,
				PID:  pid,
				TID:  tid,
				Args: sliceArgs(e),
			}
			f.TraceEvents = append(f.TraceEvents, ev)
			if e.Fault != fault.None {
				f.TraceEvents = append(f.TraceEvents, perfettoEvent{
					Name: "FAULT " + e.Fault.String(),
					Cat:  "fault",
					Ph:   "i",
					TS:   ts,
					PID:  pid,
					TID:  tid,
					S:    "p",
					Args: map[string]any{"step": e.Index, "object": e.Object},
				})
			}
		}
		if haveAdv {
			meta(pid, advTID, "thread_name", "adversary")
		}
	}

	// Wall-clock spans: pid = worker (engine-level spans such as checkpoint
	// writes carry pid -1 and get their own "engine" lane), tid = the
	// span's sub-lane.
	const engineLane = 1 << 20 // pids must be non-negative for Perfetto
	workers := map[int]bool{}
	for _, s := range x.Spans {
		pid, name := s.PID, fmt.Sprintf("worker %d", s.PID)
		if pid < 0 {
			pid, name = engineLane, "engine"
		}
		if !workers[pid] {
			workers[pid] = true
			meta(pid, 0, "process_name", name)
		}
		tid := s.TID
		if tid < 0 {
			tid = 0
		}
		f.TraceEvents = append(f.TraceEvents, perfettoEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   s.Start / 1000, // ns → µs
			Dur:  max64(s.Dur/1000, 1),
			PID:  pid,
			TID:  tid,
			Args: s.Args,
		})
	}

	// Compact encoding: Perfetto parses it the same, the files are ~40%
	// smaller, and capture writes stay off the exploration's critical path.
	enc := json.NewEncoder(w)
	if err := enc.Encode(&f); err != nil {
		return fmt.Errorf("export: perfetto: %w", err)
	}
	return nil
}

// WritePerfetto renders the execution as a Perfetto JSON file at path.
func WritePerfetto(path string, x *Execution) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	if err := Perfetto(f, x); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	return nil
}

// sliceName labels one atomic step on the timeline.
func sliceName(e trace.Event) string {
	switch e.Kind {
	case trace.EventCAS:
		name := fmt.Sprintf("CAS(O%d, %s→%s)", e.Object, e.Exp, e.New)
		if e.Fault != fault.None {
			name += " ⚡" + e.Fault.String()
		}
		return name
	case trace.EventRead:
		return fmt.Sprintf("Read(R%d)", e.Object)
	case trace.EventWrite:
		return fmt.Sprintf("Write(R%d, %s)", e.Object, e.Value)
	case trace.EventDecide:
		return fmt.Sprintf("DECIDE %s", e.Value)
	case trace.EventCorrupt:
		return fmt.Sprintf("DATA-FAULT O%d ← %s", e.Object, e.Value)
	case trace.EventHalt:
		return "HALT"
	default:
		return string(e.Kind)
	}
}

// sliceArgs carries the step's full observable state into the viewer's
// argument pane.
func sliceArgs(e trace.Event) map[string]any {
	args := map[string]any{"step": e.Index, "proc": e.Proc}
	switch e.Kind {
	case trace.EventCAS:
		args["object"] = e.Object
		args["exp"] = e.Exp.String()
		args["new"] = e.New.String()
		args["observed"] = e.Pre.String()
		args["wrote"] = e.Post.String()
		args["old"] = e.Old.String()
		args["fault"] = e.Fault.String()
	case trace.EventRead, trace.EventWrite, trace.EventCorrupt:
		args["object"] = e.Object
		args["value"] = e.Value.String()
	case trace.EventDecide:
		args["decision"] = e.Value.String()
	}
	return args
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
