package export

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

func traceSpan(name string, pid int) trace.Span {
	return trace.Span{Name: name, Cat: "checkpoint", PID: pid, TID: -1, Start: 200, Dur: 300}
}

// TestPerfettoShape decodes the rendered Chrome trace-event JSON and checks
// the structural contract Perfetto relies on: a traceEvents array, metadata
// lanes, complete slices in logical time, and instant marks at fault steps.
func TestPerfettoShape(t *testing.T) {
	x := sampleExecution()
	var buf bytes.Buffer
	if err := Perfetto(&buf, x); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}

	var metas, slices, instants, spans int
	var casArgs map[string]any
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
		case "X":
			if e.Cat == "worker" {
				spans++
				continue
			}
			slices++
			if e.TS != int64(e.Args["step"].(float64))*stepUS {
				t.Errorf("slice ts %d does not encode step %v", e.TS, e.Args["step"])
			}
			if e.PID != x.Meta.Worker {
				t.Errorf("slice pid = %d, want worker %d", e.PID, x.Meta.Worker)
			}
			if e.Cat == "cas" && e.Args["fault"] == "overriding" {
				casArgs = e.Args
			}
		case "i":
			instants++
		}
	}
	if metas < 3 { // process_name + one thread_name per process
		t.Errorf("only %d metadata records", metas)
	}
	if slices != len(x.Events) {
		t.Errorf("%d slices for %d events", slices, len(x.Events))
	}
	if instants != 1 {
		t.Errorf("%d fault instants, want 1", instants)
	}
	if spans != 1 {
		t.Errorf("%d wall-clock spans, want 1", spans)
	}
	if casArgs == nil {
		t.Fatal("no faulty CAS slice found")
	}
	// The argument pane must carry the full observable state of the step.
	for _, key := range []string{"exp", "new", "observed", "wrote", "old", "fault"} {
		if _, ok := casArgs[key]; !ok {
			t.Errorf("faulty CAS args missing %q: %v", key, casArgs)
		}
	}
	if casArgs["observed"] != "10" || casArgs["wrote"] != "11" {
		t.Errorf("CAS observed/wrote = %v/%v, want 10/11", casArgs["observed"], casArgs["wrote"])
	}
}

// TestPerfettoEngineLane: spans with pid -1 (engine-level work such as
// checkpoint writes) must land in a dedicated non-negative pid lane.
func TestPerfettoEngineLane(t *testing.T) {
	x := sampleExecution()
	x.Spans = append(x.Spans, traceSpan("checkpoint", -1))
	var buf bytes.Buffer
	if err := Perfetto(&buf, x); err != nil {
		t.Fatal(err)
	}
	var f perfettoFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range f.TraceEvents {
		if e.PID < 0 {
			t.Errorf("negative pid leaked into the trace: %+v", e)
		}
		if e.Ph == "M" && e.Args["name"] == "engine" {
			found = true
		}
	}
	if !found {
		t.Error("no engine lane metadata for the pid -1 span")
	}
}
