package trace

import (
	"fmt"
	"strings"

	"repro/internal/fault"
)

// Diagram renders the log as an ASCII space-time diagram: one column per
// process, one row per atomic step, with register effects annotated — the
// picture distributed-computing proofs are usually drawn with, generated
// from the actual execution.
//
//	            p0                  p1                  p2
//	#0   CAS(O0,⊥,10)→⊥✓   .                   .
//	#1   .                  CAS(O0,⊥,11)→10⚡   .
//	...
//
// ✓ marks a write per specification, ⚡ a functional fault, ✗ a no-op
// (failed comparison). Decide and halt events span their process column.
func (l *Log) Diagram() string {
	procs := 0
	maxIndex := 0
	for _, e := range l.events {
		if e.Proc+1 > procs {
			procs = e.Proc + 1
		}
		if e.Index > maxIndex {
			maxIndex = e.Index
		}
	}
	if procs == 0 {
		return "(empty trace)\n"
	}

	cell := func(e Event) string {
		switch e.Kind {
		case EventCAS:
			mark := "✗"
			if e.Wrote() {
				mark = "✓"
			}
			if e.Fault != fault.None {
				mark = "⚡" + e.Fault.String()
			}
			return fmt.Sprintf("CAS(O%d,%s,%s)→%s%s", e.Object, e.Exp, e.New, e.Old, mark)
		case EventRead:
			return fmt.Sprintf("Read(R%d)→%s", e.Object, e.Value)
		case EventWrite:
			return fmt.Sprintf("Write(R%d,%s)", e.Object, e.Value)
		case EventDecide:
			return fmt.Sprintf("DECIDE %s", e.Value)
		case EventHalt:
			return "⟂ halted"
		case EventCorrupt:
			return fmt.Sprintf("DATA-FAULT O%d←%s", e.Object, e.Value)
		default:
			return string(e.Kind)
		}
	}

	// Measure before rendering: the column width fits the widest cell and
	// the widest header label, so diagrams with many processes or wide
	// register words (version-tagged pairs, large values) stay aligned
	// instead of overflowing a fixed-width column.
	const minColWidth = 12
	cells := make([]string, len(l.events))
	colWidth := displayWidth(fmt.Sprintf("p%d", procs-1)) + 2
	if colWidth < minColWidth {
		colWidth = minColWidth
	}
	for i, e := range l.events {
		cells[i] = cell(e)
		if w := displayWidth(cells[i]) + 2; w > colWidth {
			colWidth = w
		}
	}
	// The step gutter likewise grows with the largest index (at least the
	// historical 6 columns).
	gutter := len(fmt.Sprintf("#%d", maxIndex)) + 1
	if gutter < 6 {
		gutter = 6
	}

	var b strings.Builder
	b.WriteString(strings.Repeat(" ", gutter))
	for p := 0; p < procs; p++ {
		b.WriteString(padDisplay(fmt.Sprintf("p%d", p), colWidth))
	}
	b.WriteByte('\n')

	for i, e := range l.events {
		b.WriteString(padDisplay(fmt.Sprintf("#%d", e.Index), gutter))
		for p := 0; p < procs; p++ {
			content := "."
			// Corruption events belong to no process; render them in
			// column 0 with a distinguishing prefix.
			if p == e.Proc && e.Kind != EventCorrupt || (e.Kind == EventCorrupt && p == 0) {
				content = cells[i]
			}
			b.WriteString(padDisplay(content, colWidth))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// displayWidth counts runes, the diagram's unit of horizontal space.
func displayWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// padDisplay pads s with spaces to the given display width, counting runes
// rather than bytes (the diagram uses ⊥, ⟨⟩, ✓, ⚡).
func padDisplay(s string, width int) string {
	n := displayWidth(s)
	if n >= width {
		return s + " "
	}
	return s + strings.Repeat(" ", width-n)
}
