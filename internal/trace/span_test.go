package trace

import (
	"sync"
	"testing"
)

func TestRecorderRecordsSpans(t *testing.T) {
	r := NewRecorder(0)
	start := r.Begin()
	r.End("task", "worker", 3, -1, start, map[string]any{"executions": 7})
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "task" || s.Cat != "worker" || s.PID != 3 || s.TID != -1 {
		t.Errorf("span fields = %+v", s)
	}
	if s.Start < 0 || s.Dur < 0 {
		t.Errorf("span times must be non-negative: %+v", s)
	}
	if s.Args["executions"] != 7 {
		t.Errorf("args lost: %+v", s.Args)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	start := r.Begin()
	if !start.IsZero() {
		t.Error("nil recorder must hand out the zero time")
	}
	r.End("x", "", 0, 0, start, nil) // must not panic
	if r.Spans() != nil || r.Dropped() != 0 {
		t.Error("nil recorder must report nothing")
	}
}

func TestRecorderZeroStartDiscarded(t *testing.T) {
	r := NewRecorder(0)
	r.End("x", "", 0, 0, (&Recorder{}).start, nil) // zero time: from a nil Begin
	if len(r.Spans()) != 0 {
		t.Error("a span with a zero start must be discarded")
	}
}

func TestRecorderCapAndDropped(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.End("s", "", 0, 0, r.Begin(), nil)
	}
	if got := len(r.Spans()); got != 2 {
		t.Errorf("cap 2 retained %d spans", got)
	}
	if got := r.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.End("s", "worker", w, -1, r.Begin(), nil)
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Spans()); got != 800 {
		t.Errorf("got %d spans, want 800", got)
	}
}

// TestRecorderAnnotate: Annotate keys are stamped into every span recorded
// afterwards, explicit End args win on collision, and earlier spans are
// untouched — the idiom that stamps a ledger worker's identity onto its
// spans for cross-process correlation.
func TestRecorderAnnotate(t *testing.T) {
	r := NewRecorder(0)
	r.End("before", "", 0, 0, r.Begin(), nil)
	r.Annotate("worker", "w1")
	r.Annotate("ledger_epoch", int64(2))
	r.End("plain", "", 0, 0, r.Begin(), nil)
	r.End("merged", "", 0, 0, r.Begin(), map[string]any{"worker": "explicit", "claim": "0001"})

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Args != nil {
		t.Errorf("pre-Annotate span gained args: %v", spans[0].Args)
	}
	if got := spans[1].Args; got["worker"] != "w1" || got["ledger_epoch"] != int64(2) {
		t.Errorf("annotated span args = %v", got)
	}
	if got := spans[2].Args; got["worker"] != "explicit" || got["claim"] != "0001" || got["ledger_epoch"] != int64(2) {
		t.Errorf("merged span args = %v", got)
	}

	var nilRec *Recorder
	nilRec.Annotate("k", "v") // must not panic
}
