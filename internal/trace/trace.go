// Package trace records executions of the simulated shared-memory system as
// a sequence of atomic-step events, per the execution model of Section 2 of
// the paper. Traces serialize to JSON for counterexample storage and replay,
// and render to a human-readable form for CLI output.
package trace

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/word"
)

// EventKind discriminates trace events.
type EventKind string

const (
	// EventCAS is a CAS operation step on a shared object.
	EventCAS EventKind = "cas"
	// EventRead is a read step on a read/write register.
	EventRead EventKind = "read"
	// EventWrite is a write step on a read/write register.
	EventWrite EventKind = "write"
	// EventDecide records a process returning its decision value.
	EventDecide EventKind = "decide"
	// EventCorrupt records a data fault: the content of an object replaced
	// outside any operation (the model of Afek et al., Section 3.1).
	EventCorrupt EventKind = "corrupt"
	// EventHalt records the adversary halting a process (covering
	// arguments, Section 5.2).
	EventHalt EventKind = "halt"
)

// Event is one atomic step of an execution.
type Event struct {
	Index  int       `json:"i"`
	Kind   EventKind `json:"kind"`
	Proc   int       `json:"proc"`
	Object int       `json:"obj,omitempty"`

	// CAS fields: exp/new arguments, register content before (pre) and
	// after (post) the step, and the returned old value.
	Exp  word.Word `json:"exp,omitempty"`
	New  word.Word `json:"new,omitempty"`
	Pre  word.Word `json:"pre,omitempty"`
	Post word.Word `json:"post,omitempty"`
	Old  word.Word `json:"old,omitempty"`

	// Fault is the fault kind that fired during this step (None if the
	// step followed its specification).
	Fault fault.Kind `json:"fault,omitempty"`

	// Value carries the decision (decide events), written value (write
	// and corrupt events), or read result (read events).
	Value word.Word `json:"val,omitempty"`
}

// Wrote reports whether the step changed the register content.
func (e Event) Wrote() bool { return e.Pre != e.Post }

// String renders the event in one line.
func (e Event) String() string {
	switch e.Kind {
	case EventCAS:
		mark := ""
		if e.Fault != fault.None {
			mark = fmt.Sprintf(" FAULT[%s]", e.Fault)
		}
		return fmt.Sprintf("#%d p%d CAS(O%d, exp=%s, new=%s) -> old=%s (pre=%s post=%s)%s",
			e.Index, e.Proc, e.Object, e.Exp, e.New, e.Old, e.Pre, e.Post, mark)
	case EventRead:
		return fmt.Sprintf("#%d p%d Read(R%d) -> %s", e.Index, e.Proc, e.Object, e.Value)
	case EventWrite:
		return fmt.Sprintf("#%d p%d Write(R%d, %s)", e.Index, e.Proc, e.Object, e.Value)
	case EventDecide:
		return fmt.Sprintf("#%d p%d DECIDE %s", e.Index, e.Proc, e.Value)
	case EventCorrupt:
		return fmt.Sprintf("#%d DATA-FAULT O%d <- %s (pre=%s)", e.Index, e.Object, e.Value, e.Pre)
	case EventHalt:
		return fmt.Sprintf("#%d p%d HALTED by adversary", e.Index, e.Proc)
	default:
		return fmt.Sprintf("#%d p%d %s", e.Index, e.Proc, e.Kind)
	}
}

// Log accumulates the events of one execution in order.
type Log struct {
	events []Event
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append adds an event, assigning its index.
func (l *Log) Append(e Event) {
	e.Index = len(l.events)
	l.events = append(l.events, e)
}

// Events returns the recorded events in execution order. The returned slice
// is owned by the log and must not be modified.
func (l *Log) Events() []Event { return l.events }

// Reset empties the log, retaining its capacity so replay loops can reuse
// one allocation across executions.
func (l *Log) Reset() { l.events = l.events[:0] }

// Clone returns an independent copy of the log. Counterexamples retain it,
// while the original keeps being reset and reused by the replay loop.
func (l *Log) Clone() *Log {
	return &Log{events: append([]Event(nil), l.events...)}
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Faults returns the events during which a functional fault fired.
func (l *Log) Faults() []Event {
	var out []Event
	for _, e := range l.events {
		if e.Fault != fault.None {
			out = append(out, e)
		}
	}
	return out
}

// String renders the whole log, one event per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// MarshalJSON serializes the log as a JSON array of events.
func (l *Log) MarshalJSON() ([]byte, error) { return json.Marshal(l.events) }

// UnmarshalJSON restores a log from its JSON form.
func (l *Log) UnmarshalJSON(data []byte) error { return json.Unmarshal(data, &l.events) }
