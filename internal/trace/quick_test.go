package trace

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/word"
)

// randomEvent derives a structurally valid event from raw fuzz values.
func randomEvent(kindSel, proc, obj uint8, pre, post, old, exp, nw uint32, fk uint8) Event {
	kinds := []EventKind{EventCAS, EventRead, EventWrite, EventDecide, EventCorrupt, EventHalt}
	mk := func(v uint32) word.Word {
		if v%5 == 0 {
			return word.Bottom
		}
		return word.Pack(int64(v)&word.MaxValue, int64(v%7))
	}
	return Event{
		Kind:   kinds[int(kindSel)%len(kinds)],
		Proc:   int(proc % 8),
		Object: int(obj % 8),
		Pre:    mk(pre),
		Post:   mk(post),
		Old:    mk(old),
		Exp:    mk(exp),
		New:    mk(nw),
		Fault:  fault.Kind(int(fk) % 6),
		Value:  mk(pre ^ post),
	}
}

func TestEventJSONRoundTripProperty(t *testing.T) {
	prop := func(kindSel, proc, obj uint8, pre, post, old, exp, nw uint32, fk uint8) bool {
		l := New()
		l.Append(randomEvent(kindSel, proc, obj, pre, post, old, exp, nw, fk))
		data, err := json.Marshal(l)
		if err != nil {
			return false
		}
		var back Log
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Len() == 1 && back.Events()[0] == l.Events()[0]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventStringNeverEmptyProperty(t *testing.T) {
	prop := func(kindSel, proc, obj uint8, pre, post, old, exp, nw uint32, fk uint8) bool {
		e := randomEvent(kindSel, proc, obj, pre, post, old, exp, nw, fk)
		return e.String() != ""
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiagramTotalProperty(t *testing.T) {
	// The diagram renderer must handle any event sequence without
	// panicking and produce one row per event.
	prop := func(raw []uint8) bool {
		l := New()
		for i := 0; i+1 < len(raw) && i < 20; i += 2 {
			l.Append(randomEvent(raw[i], raw[i+1], raw[i], uint32(raw[i]),
				uint32(raw[i+1]), uint32(raw[i]), uint32(raw[i+1]), uint32(raw[i]), raw[i+1]))
		}
		d := l.Diagram()
		return d != ""
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
