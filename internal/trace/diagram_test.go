package trace

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/word"
)

func TestDiagramEmpty(t *testing.T) {
	if got := New().Diagram(); !strings.Contains(got, "empty") {
		t.Errorf("empty diagram = %q", got)
	}
}

func TestDiagramLayout(t *testing.T) {
	l := New()
	l.Append(Event{Kind: EventCAS, Proc: 0, Object: 0,
		Exp: word.Bottom, New: word.FromValue(10), Pre: word.Bottom,
		Post: word.FromValue(10), Old: word.Bottom})
	l.Append(Event{Kind: EventCAS, Proc: 1, Object: 0,
		Exp: word.Bottom, New: word.FromValue(11), Pre: word.FromValue(10),
		Post: word.FromValue(11), Old: word.FromValue(10), Fault: fault.Overriding})
	l.Append(Event{Kind: EventDecide, Proc: 0, Value: word.FromValue(10)})
	l.Append(Event{Kind: EventHalt, Proc: 1})
	l.Append(Event{Kind: EventCorrupt, Object: 0, Value: word.FromValue(3)})

	d := l.Diagram()
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	if len(lines) != 6 { // header + 5 events
		t.Fatalf("diagram has %d lines:\n%s", len(lines), d)
	}
	if !strings.Contains(lines[0], "p0") || !strings.Contains(lines[0], "p1") {
		t.Errorf("header missing process columns: %q", lines[0])
	}
	if !strings.Contains(lines[1], "✓") {
		t.Errorf("successful CAS must be marked ✓: %q", lines[1])
	}
	if !strings.Contains(lines[2], "⚡overriding") {
		t.Errorf("faulty CAS must be marked ⚡: %q", lines[2])
	}
	if !strings.Contains(lines[3], "DECIDE 10") {
		t.Errorf("decide row: %q", lines[3])
	}
	if !strings.Contains(lines[4], "halted") {
		t.Errorf("halt row: %q", lines[4])
	}
	if !strings.Contains(lines[5], "DATA-FAULT") {
		t.Errorf("corrupt row: %q", lines[5])
	}
	// The p1 event must appear in the second column: the p0 column for
	// that row holds the placeholder dot.
	if !strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(lines[2], "#1")), ".") {
		t.Errorf("p1 row must show a placeholder in p0's column: %q", lines[2])
	}
}

func TestDiagramFailedCASMark(t *testing.T) {
	l := New()
	l.Append(Event{Kind: EventCAS, Proc: 0, Object: 0,
		Exp: word.FromValue(9), New: word.FromValue(1), Pre: word.Bottom,
		Post: word.Bottom, Old: word.Bottom})
	if !strings.Contains(l.Diagram(), "✗") {
		t.Errorf("failed CAS must be marked ✗:\n%s", l.Diagram())
	}
}

// TestDiagramFaultAndDecideSameStep: one granted scheduler step can append
// two events for the same process — a CAS on which a fault fired and the
// decision it led to. Both rows must render in that process's column, the
// fault marked ⚡ and the decision spanning the column, with placeholder
// dots everywhere else.
func TestDiagramFaultAndDecideSameStep(t *testing.T) {
	l := New()
	// p0 sets the stage so the diagram has a second column to check.
	l.Append(Event{Kind: EventCAS, Proc: 0, Object: 0,
		Exp: word.Bottom, New: word.FromValue(10), Pre: word.Bottom,
		Post: word.FromValue(10), Old: word.Bottom})
	// p1's step: overridden CAS, then its decide, back to back.
	l.Append(Event{Kind: EventCAS, Proc: 1, Object: 0,
		Exp: word.Bottom, New: word.FromValue(11), Pre: word.FromValue(10),
		Post: word.FromValue(11), Old: word.FromValue(10), Fault: fault.Overriding})
	l.Append(Event{Kind: EventDecide, Proc: 1, Value: word.FromValue(11)})

	d := l.Diagram()
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	if len(lines) != 4 { // header + 3 events
		t.Fatalf("diagram has %d lines:\n%s", len(lines), d)
	}
	faultRow, decideRow := lines[2], lines[3]
	if !strings.Contains(faultRow, "⚡overriding") {
		t.Errorf("fault row must carry the ⚡ mark: %q", faultRow)
	}
	if !strings.Contains(decideRow, "DECIDE 11") {
		t.Errorf("decide row must carry the decision: %q", decideRow)
	}
	// Both rows belong to p1, so p0's column holds the placeholder dot.
	for _, row := range []string{faultRow, decideRow} {
		body := strings.TrimSpace(row[6:]) // strip the "#N" gutter
		if !strings.HasPrefix(body, ".") {
			t.Errorf("p1 event leaked into p0's column: %q", row)
		}
	}
}

func TestDiagramRegisterOps(t *testing.T) {
	l := New()
	l.Append(Event{Kind: EventWrite, Proc: 0, Object: 2, Value: word.FromValue(5)})
	l.Append(Event{Kind: EventRead, Proc: 1, Object: 2, Value: word.FromValue(5)})
	d := l.Diagram()
	if !strings.Contains(d, "Write(R2,5)") || !strings.Contains(d, "Read(R2)→5") {
		t.Errorf("register ops missing:\n%s", d)
	}
}

func TestPadDisplayCountsRunes(t *testing.T) {
	padded := padDisplay("⊥⊥", 5)
	n := 0
	for range padded {
		n++
	}
	if n != 5 {
		t.Errorf("padDisplay produced %d runes, want 5 (%q)", n, padded)
	}
	// Over-long content still gets a separating space.
	if got := padDisplay("abcdef", 3); got != "abcdef " {
		t.Errorf("overflow padding = %q", got)
	}
}
