package object

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/word"
)

// Bank is a set of CAS objects shared by all processes of one execution.
type Bank struct {
	objs []*CAS
	// ops counts CAS invocations. Plain int is race-free here: every
	// invocation runs inside a granted simulator step, and the grant
	// protocol's channel handshakes order the steps.
	ops int64
}

// NewBank creates n CAS objects (ids 0..n-1) sharing one budget and policy.
func NewBank(n int, budget *fault.Budget, policy fault.Policy) *Bank {
	b := &Bank{objs: make([]*CAS, n)}
	for i := range b.objs {
		b.objs[i] = NewCAS(i, budget, policy)
		b.objs[i].ops = &b.ops
	}
	return b
}

// Object returns the i-th CAS object.
func (b *Bank) Object(i int) *CAS { return b.objs[i] }

// Len returns the number of objects.
func (b *Bank) Len() int { return len(b.objs) }

// Contents returns a snapshot of all register contents (monitor-side).
func (b *Bank) Contents() []word.Word {
	out := make([]word.Word, len(b.objs))
	for i, o := range b.objs {
		out[i] = o.Content()
	}
	return out
}

// Reset restores every object to ⊥.
func (b *Bank) Reset() {
	for _, o := range b.objs {
		o.Reset()
	}
}

// Ops returns the number of CAS invocations executed so far.
func (b *Bank) Ops() int64 { return b.ops }

// Bind returns the bank as seen by one simulated process: an environment
// whose CAS method takes one scheduled atomic step.
func (b *Bank) Bind(p *sim.Proc) core.Env { return &Array{bank: b, p: p} }

// Array is a Bank bound to one simulated process.
type Array struct {
	bank *Bank
	p    *sim.Proc
}

// CAS executes the CAS operation on object i as one atomic step.
func (a *Array) CAS(i int, exp, new word.Word) word.Word {
	return a.bank.objs[i].Invoke(a.p, exp, new)
}

// Len returns the number of objects in the bank.
func (a *Array) Len() int { return a.bank.Len() }
