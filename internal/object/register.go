package object

import (
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/word"
)

// Register is an atomic read/write register. The paper's impossibility
// result for unbounded faults (Theorem 18) permits protocols an unbounded
// number of reliable read/write registers alongside the faulty CAS objects;
// Register provides them. It is always reliable.
type Register struct {
	id      int
	content word.Word
}

// NewRegister returns a register initialized to ⊥.
func NewRegister(id int) *Register { return &Register{id: id} }

// ID returns the register's id.
func (r *Register) ID() int { return r.id }

// Content returns the current content without taking a step (monitor-side).
func (r *Register) Content() word.Word { return r.content }

// Read performs an atomic read step by the simulated process p.
func (r *Register) Read(p *sim.Proc) word.Word {
	var v word.Word
	p.Exec(func() {
		v = r.content
		p.Record(trace.Event{
			Kind:   trace.EventRead,
			Proc:   p.ID(),
			Object: r.id,
			Value:  v,
		})
	})
	return v
}

// Write performs an atomic write step by the simulated process p.
func (r *Register) Write(p *sim.Proc, v word.Word) {
	p.Exec(func() {
		r.content = v
		p.Record(trace.Event{
			Kind:   trace.EventWrite,
			Proc:   p.ID(),
			Object: r.id,
			Value:  v,
		})
	})
}
