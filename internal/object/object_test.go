package object

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/word"
)

func TestBankCreatesIndependentObjects(t *testing.T) {
	b := NewBank(3, nil, nil)
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Object(1).Apply(0, word.Bottom, word.FromValue(5))
	contents := b.Contents()
	if contents[0] != word.Bottom || contents[1] != word.FromValue(5) || contents[2] != word.Bottom {
		t.Errorf("contents = %v", contents)
	}
	b.Reset()
	for i, c := range b.Contents() {
		if c != word.Bottom {
			t.Errorf("object %d not reset: %s", i, c)
		}
	}
}

func TestBankObjectsShareBudget(t *testing.T) {
	budget := fault.NewBudget(1, fault.Unbounded) // one faulty object total
	b := NewBank(2, budget, fault.Always(fault.Overriding))

	// Fault object 0 (observable: mismatch).
	b.Object(0).Corrupt(word.FromValue(1))
	_, ev := b.Object(0).Apply(0, word.Bottom, word.FromValue(2))
	if ev.Fault != fault.Overriding {
		t.Fatal("object 0 must fault")
	}

	// Object 1 can no longer join the faulty set.
	b.Object(1).Corrupt(word.FromValue(1))
	_, ev = b.Object(1).Apply(0, word.Bottom, word.FromValue(2))
	if ev.Fault != fault.None {
		t.Error("object 1 must be denied: faulty set is full")
	}
}

func TestArrayRunsCASUnderScheduler(t *testing.T) {
	bank := NewBank(1, nil, nil)
	log := trace.New()
	prog := func(p *sim.Proc) word.Word {
		env := bank.Bind(p)
		old := env.CAS(0, word.Bottom, word.FromValue(int64(p.ID()+10)))
		if old.IsBottom() {
			return word.FromValue(int64(p.ID() + 10))
		}
		return old
	}
	res, err := sim.Run(sim.Config{
		Programs:  []sim.Program{prog, prog},
		Scheduler: sim.NewRoundRobin(),
		Log:       log,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Process 0 CASes first under round-robin, so both decide 10.
	for i := 0; i < 2; i++ {
		if res.Decisions[i].Value() != 10 {
			t.Errorf("p%d decided %s, want 10", i, res.Decisions[i])
		}
	}
	var casEvents int
	for _, e := range log.Events() {
		if e.Kind == trace.EventCAS {
			casEvents++
		}
	}
	if casEvents != 2 {
		t.Errorf("trace has %d CAS events, want 2", casEvents)
	}
	if got := bank.Object(0).Content(); got != word.FromValue(10) {
		t.Errorf("final content = %s, want 10", got)
	}
}

func TestArrayLen(t *testing.T) {
	bank := NewBank(4, nil, nil)
	prog := func(p *sim.Proc) word.Word {
		if bank.Bind(p).Len() != 4 {
			t.Error("bound array must report bank size")
		}
		return word.Bottom
	}
	if _, err := sim.Run(sim.Config{Programs: []sim.Program{prog}, Scheduler: sim.NewRoundRobin()}); err != nil {
		t.Fatal(err)
	}
}

func TestNonresponsiveInvokeStallsProcess(t *testing.T) {
	budget := fault.NewBudget(1, 1)
	bank := NewBank(1, budget, fault.Always(fault.Nonresponsive))
	prog := func(p *sim.Proc) word.Word {
		bank.Bind(p).CAS(0, word.Bottom, word.FromValue(1))
		return word.FromValue(1)
	}
	res, err := sim.Run(sim.Config{
		Programs:  []sim.Program{prog},
		Scheduler: sim.NewRoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stalled[0] {
		t.Error("nonresponsive fault must stall the process")
	}
	if res.Decided[0] {
		t.Error("stalled process must not decide")
	}
}

func TestRegisterReadWrite(t *testing.T) {
	reg := NewRegister(0)
	log := trace.New()
	prog := func(p *sim.Proc) word.Word {
		reg.Write(p, word.FromValue(42))
		return reg.Read(p)
	}
	res, err := sim.Run(sim.Config{
		Programs:  []sim.Program{prog},
		Scheduler: sim.NewRoundRobin(),
		Log:       log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0].Value() != 42 {
		t.Errorf("read back %s, want 42", res.Decisions[0])
	}
	if reg.Content() != word.FromValue(42) {
		t.Errorf("content = %s", reg.Content())
	}
	if reg.ID() != 0 {
		t.Errorf("id = %d", reg.ID())
	}
	kinds := []trace.EventKind{}
	for _, e := range log.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []trace.EventKind{trace.EventWrite, trace.EventRead, trace.EventDecide}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace kinds = %v, want %v", kinds, want)
		}
	}
}

func TestRegisterInitiallyBottom(t *testing.T) {
	reg := NewRegister(1)
	prog := func(p *sim.Proc) word.Word { return reg.Read(p) }
	res, err := sim.Run(sim.Config{Programs: []sim.Program{prog}, Scheduler: sim.NewRoundRobin()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decisions[0].IsBottom() {
		t.Error("fresh register must read ⊥")
	}
}

func TestRegisterIsOneStepPerOperation(t *testing.T) {
	reg := NewRegister(0)
	prog := func(p *sim.Proc) word.Word {
		reg.Write(p, word.FromValue(1))
		reg.Read(p)
		reg.Read(p)
		return word.Bottom
	}
	res, err := sim.Run(sim.Config{
		Programs:  []sim.Program{prog},
		Scheduler: sim.NewRoundRobin(),
		StepLimit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0] != 3 {
		t.Errorf("steps = %d, want 3", res.Steps[0])
	}
	// One more operation than the limit must trip wait-freedom.
	prog2 := func(p *sim.Proc) word.Word {
		for i := 0; i < 4; i++ {
			reg.Read(p)
		}
		return word.Bottom
	}
	_, err = sim.Run(sim.Config{
		Programs:  []sim.Program{prog2},
		Scheduler: sim.NewRoundRobin(),
		StepLimit: 3,
	})
	if !errors.Is(err, sim.ErrWaitFreedom) {
		t.Errorf("err = %v, want wait-freedom", err)
	}
}
