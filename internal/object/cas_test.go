package object

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/word"
)

var (
	v1 = word.FromValue(1)
	v2 = word.FromValue(2)
	v3 = word.FromValue(3)
)

func unboundedBudget() *fault.Budget { return fault.NewBudget(1, fault.Unbounded) }

func TestCorrectCASSemantics(t *testing.T) {
	o := NewCAS(0, nil, nil)

	// Successful CAS: matching expected value writes and returns old.
	old, ev := o.Apply(0, word.Bottom, v1)
	if old != word.Bottom {
		t.Errorf("old = %s, want ⊥", old)
	}
	if o.Content() != v1 {
		t.Errorf("content = %s, want 1", o.Content())
	}
	if ev.Fault != fault.None || !ev.Wrote() {
		t.Errorf("event = %+v", ev)
	}

	// Failed CAS: mismatching expected value leaves content, returns old.
	old, ev = o.Apply(1, word.Bottom, v2)
	if old != v1 {
		t.Errorf("old = %s, want 1", old)
	}
	if o.Content() != v1 {
		t.Errorf("content = %s, want 1", o.Content())
	}
	if ev.Wrote() {
		t.Error("failed CAS must not write")
	}
}

func TestOverridingFaultSemantics(t *testing.T) {
	// Φ′ of Section 3.3: the new value is written even on mismatch, and
	// the returned old value is still correct.
	b := unboundedBudget()
	o := NewCAS(0, b, fault.Always(fault.Overriding))

	// First CAS matches (⊥): the override proposal is unobservable, so it
	// behaves as a normal success and is not charged.
	old, ev := o.Apply(0, word.Bottom, v1)
	if old != word.Bottom || o.Content() != v1 {
		t.Fatalf("matching CAS corrupted: old=%s content=%s", old, o.Content())
	}
	if ev.Fault != fault.None {
		t.Errorf("unobservable override must be reported as None, got %v", ev.Fault)
	}
	if b.TotalFaults() != 0 {
		t.Errorf("unobservable override charged the budget: %d", b.TotalFaults())
	}

	// Second CAS mismatches: the override fires, writes, returns true old.
	old, ev = o.Apply(1, word.Bottom, v2)
	if old != v1 {
		t.Errorf("old = %s, want 1 (old value stays correct under Φ′)", old)
	}
	if o.Content() != v2 {
		t.Errorf("content = %s, want 2 (override writes)", o.Content())
	}
	if ev.Fault != fault.Overriding {
		t.Errorf("fault = %v, want overriding", ev.Fault)
	}
	if b.Faults(0) != 1 {
		t.Errorf("budget charge = %d, want 1", b.Faults(0))
	}
}

func TestOverridingFaultRespectsBudget(t *testing.T) {
	b := fault.NewBudget(1, 1) // one fault total
	o := NewCAS(0, b, fault.Always(fault.Overriding))

	o.Apply(0, word.Bottom, v1)            // matching, no fault
	o.Apply(1, word.Bottom, v2)            // override fires (budget now empty)
	old, ev := o.Apply(2, word.Bottom, v3) // proposal rejected: normal failed CAS
	if ev.Fault != fault.None {
		t.Errorf("exhausted budget must suppress fault, got %v", ev.Fault)
	}
	if old != v2 || o.Content() != v2 {
		t.Errorf("suppressed fault must behave per spec: old=%s content=%s", old, o.Content())
	}
}

func TestOverridingNoOpWriteIsUnobservable(t *testing.T) {
	// An override that writes the register's current content back leaves
	// a state satisfying Φ: per Definition 1 no fault occurred, so no
	// budget is consumed and the event is labeled None.
	b := unboundedBudget()
	o := NewCAS(0, b, fault.Always(fault.Overriding))
	o.Corrupt(v2)
	old, ev := o.Apply(0, word.Bottom, v2) // mismatch, but new == current
	if old != v2 || o.Content() != v2 {
		t.Fatalf("state disturbed: old=%s content=%s", old, o.Content())
	}
	if ev.Fault != fault.None {
		t.Errorf("no-op override labeled %v, want none", ev.Fault)
	}
	if b.TotalFaults() != 0 {
		t.Error("no-op override must not be charged")
	}
}

func TestSilentNoOpWriteIsUnobservable(t *testing.T) {
	b := unboundedBudget()
	o := NewCAS(0, b, fault.Always(fault.Silent))
	o.Corrupt(v2)
	_, ev := o.Apply(0, v2, v2) // match, but writing the same value
	if ev.Fault != fault.None {
		t.Errorf("no-op silent labeled %v, want none", ev.Fault)
	}
	if b.TotalFaults() != 0 {
		t.Error("no-op silent must not be charged")
	}
}

func TestNilBudgetAdmitsNoFaults(t *testing.T) {
	o := NewCAS(0, nil, fault.Always(fault.Overriding))
	o.Apply(0, word.Bottom, v1)
	_, ev := o.Apply(1, word.Bottom, v2)
	if ev.Fault != fault.None {
		t.Error("nil budget must never admit faults")
	}
	if o.Content() != v1 {
		t.Error("content must follow specification")
	}
}

func TestSilentFaultSemantics(t *testing.T) {
	b := unboundedBudget()
	o := NewCAS(0, b, fault.Always(fault.Silent))

	// Matching CAS: silent fault fires — no write, correct old returned.
	old, ev := o.Apply(0, word.Bottom, v1)
	if old != word.Bottom {
		t.Errorf("old = %s, want ⊥", old)
	}
	if o.Content() != word.Bottom {
		t.Errorf("content = %s, want ⊥ (silent fault suppresses write)", o.Content())
	}
	if ev.Fault != fault.Silent {
		t.Errorf("fault = %v, want silent", ev.Fault)
	}
}

func TestSilentFaultUnobservableOnMismatch(t *testing.T) {
	b := unboundedBudget()
	o := NewCAS(0, b, fault.Always(fault.Silent))
	o.Corrupt(v1)
	_, ev := o.Apply(0, v2, v3) // mismatch: spec already writes nothing
	if ev.Fault != fault.None {
		t.Errorf("silent fault on mismatching CAS is unobservable, got %v", ev.Fault)
	}
	if b.TotalFaults() != 0 {
		t.Error("unobservable silent fault must not be charged")
	}
}

func TestInvisibleFaultDefaultCorruption(t *testing.T) {
	b := unboundedBudget()
	o := NewCAS(0, b, fault.Always(fault.Invisible))

	// Matching CAS: write proceeds per spec, but old pretends failure
	// (returns the new value instead of the true old ⊥).
	old, ev := o.Apply(0, word.Bottom, v1)
	if ev.Fault != fault.Invisible {
		t.Fatalf("fault = %v, want invisible", ev.Fault)
	}
	if o.Content() != v1 {
		t.Errorf("content = %s, want 1 (write behaviour per spec)", o.Content())
	}
	if old == word.Bottom {
		t.Error("invisible fault must corrupt the returned old value")
	}

	// Mismatching CAS: no write per spec, old pretends success (returns exp).
	old, ev = o.Apply(1, v2, v3)
	if ev.Fault != fault.Invisible {
		t.Fatalf("fault = %v, want invisible", ev.Fault)
	}
	if o.Content() != v1 {
		t.Errorf("content = %s, want 1", o.Content())
	}
	if old != v2 {
		t.Errorf("old = %s, want exp=2 (pretend success)", old)
	}
}

func TestInvisibleFaultExplicitReturn(t *testing.T) {
	b := unboundedBudget()
	policy := fault.PolicyFunc(func(op fault.Op) fault.Proposal {
		return fault.Proposal{Kind: fault.Invisible, Return: v3}
	})
	o := NewCAS(0, b, policy)
	old, ev := o.Apply(0, word.Bottom, v1)
	if old != v3 || ev.Fault != fault.Invisible {
		t.Errorf("old = %s fault = %v, want 3/invisible", old, ev.Fault)
	}
}

func TestArbitraryFaultSemantics(t *testing.T) {
	b := unboundedBudget()
	policy := fault.PolicyFunc(func(op fault.Op) fault.Proposal {
		return fault.Proposal{Kind: fault.Arbitrary, Write: v3}
	})
	o := NewCAS(0, b, policy)

	old, ev := o.Apply(0, word.Bottom, v1)
	if old != word.Bottom {
		t.Errorf("old = %s, want ⊥ (arbitrary fault keeps old correct)", old)
	}
	if o.Content() != v3 {
		t.Errorf("content = %s, want 3 (arbitrary write)", o.Content())
	}
	if ev.Fault != fault.Arbitrary {
		t.Errorf("fault = %v", ev.Fault)
	}
}

func TestArbitraryFaultUnobservableWhenMatchingSpec(t *testing.T) {
	b := unboundedBudget()
	// Proposes writing exactly what the spec would write.
	policy := fault.PolicyFunc(func(op fault.Op) fault.Proposal {
		correct := op.Current
		if op.Current == op.Exp {
			correct = op.New
		}
		return fault.Proposal{Kind: fault.Arbitrary, Write: correct}
	})
	o := NewCAS(0, b, policy)
	_, ev := o.Apply(0, word.Bottom, v1)
	if ev.Fault != fault.None {
		t.Errorf("spec-matching arbitrary write is unobservable, got %v", ev.Fault)
	}
	if b.TotalFaults() != 0 {
		t.Error("unobservable arbitrary fault must not be charged")
	}
}

func TestNonresponsiveFaultChargesAndReports(t *testing.T) {
	b := unboundedBudget()
	o := NewCAS(0, b, fault.Always(fault.Nonresponsive))
	_, ev := o.Apply(0, word.Bottom, v1)
	if ev.Fault != fault.Nonresponsive {
		t.Fatalf("fault = %v", ev.Fault)
	}
	if b.Faults(0) != 1 {
		t.Error("nonresponsive fault must be charged")
	}
}

func TestCorruptIsDataFault(t *testing.T) {
	o := NewCAS(0, nil, nil)
	o.Apply(0, word.Bottom, v1)
	displaced := o.Corrupt(v2)
	if displaced != v1 {
		t.Errorf("displaced = %s, want 1", displaced)
	}
	if o.Content() != v2 {
		t.Errorf("content = %s, want 2", o.Content())
	}
}

func TestResetRestoresBottom(t *testing.T) {
	o := NewCAS(0, nil, nil)
	o.Apply(0, word.Bottom, v1)
	o.Reset()
	if o.Content() != word.Bottom {
		t.Error("Reset must restore ⊥")
	}
}

func TestEventRecordsPrePost(t *testing.T) {
	b := unboundedBudget()
	o := NewCAS(3, b, fault.Always(fault.Overriding))
	o.Apply(0, word.Bottom, v1)
	_, ev := o.Apply(1, word.Bottom, v2)
	if ev.Object != 3 || ev.Proc != 1 {
		t.Errorf("event ids: %+v", ev)
	}
	if ev.Pre != v1 || ev.Post != v2 || ev.Old != v1 || ev.Exp != word.Bottom || ev.New != v2 {
		t.Errorf("event fields wrong: %+v", ev)
	}
}
