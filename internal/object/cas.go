// Package object implements the shared objects of the paper's model: the
// CAS object of Section 3.3 — which exposes only the CAS operation and can
// manifest any of the functional faults of Sections 3.3–3.4 — and a plain
// read/write register.
//
// The fault pipeline per invocation is: the configured fault.Policy proposes
// a fault; the proposal is admitted only if it is observable (it would
// actually violate the CAS postconditions Φ, per Definition 1) and within
// the fault.Budget (Definition 3); admitted faults are charged and applied.
package object

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/word"
)

// CAS is a CAS object: a register supporting only the compare-and-swap
// operation. Protocols cannot read it; the Content method exists for
// checkers and adversaries only.
type CAS struct {
	id      int
	content word.Word
	budget  *fault.Budget
	policy  fault.Policy
	// ops, when non-nil, is the bank-wide invocation counter, bumped
	// inside Apply — i.e. inside the granted atomic step, where the
	// simulator's grant protocol orders all object accesses.
	ops *int64
}

// NewCAS returns a CAS object initialized to ⊥. budget and policy may be nil
// for a fault-free object.
func NewCAS(id int, budget *fault.Budget, policy fault.Policy) *CAS {
	if policy == nil {
		policy = fault.Never()
	}
	return &CAS{id: id, budget: budget, policy: policy}
}

// ID returns the object's id.
func (o *CAS) ID() int { return o.id }

// Content returns the current register content. It is a monitor-side
// operation: the CAS object type offers no read operation to protocols
// (Section 3.3), and no protocol code calls it.
func (o *CAS) Content() word.Word { return o.content }

// Reset restores the initial state ⊥ (fresh executions during exploration).
func (o *CAS) Reset() { o.content = word.Bottom }

// Corrupt replaces the register content outside any operation — a memory
// data fault in the model of Afek et al. (Section 3.1), used to contrast
// data faults with functional faults. It returns the displaced content.
func (o *CAS) Corrupt(v word.Word) word.Word {
	old := o.content
	o.content = v
	return old
}

// Apply executes one atomic CAS action directly, without scheduling: it
// consults the fault policy and budget, updates the register, and returns
// the old value along with the trace event describing what happened. The
// simulator wraps Apply in a scheduled step via Invoke.
func (o *CAS) Apply(proc int, exp, new word.Word) (word.Word, trace.Event) {
	if o.ops != nil {
		*o.ops++
	}
	pre := o.content
	prop := o.policy.Decide(fault.Op{
		Object:  o.id,
		Proc:    proc,
		Exp:     exp,
		New:     new,
		Current: pre,
	})

	kind := prop.Kind
	admit := func() bool {
		if o.budget == nil || !o.budget.Admits(o.id) {
			return false
		}
		o.budget.Charge(o.id)
		return true
	}

	// Specification behaviour (Φ): write iff pre == exp; return pre.
	write := pre == exp
	stored := new
	old := pre

	switch kind {
	case fault.None:
		// Specification behaviour stands.
	case fault.Overriding:
		// Φ′: R = val ∧ old = R′. Observable only when the comparison
		// would have failed AND the written value actually differs
		// from the current content (overriding with the same word
		// leaves a state satisfying Φ — no fault per Definition 1).
		if pre == exp || new == pre || !admit() {
			kind = fault.None
		} else {
			write = true
		}
	case fault.Silent:
		// The new value is not written even though the comparison
		// succeeds. Observable only when it would have succeeded and
		// the write would have changed the content.
		if pre != exp || new == pre || !admit() {
			kind = fault.None
		} else {
			write = false
		}
	case fault.Invisible:
		// The returned old value is incorrect; the write behaviour
		// follows the specification. A ⊥ (zero) Return means the
		// policy left the corruption unspecified: fall back to the
		// classic corruption of pretending the opposite comparison
		// outcome.
		ret := prop.Return
		if ret.IsBottom() {
			if pre == exp {
				ret = new
			} else {
				ret = exp
			}
		}
		if ret == pre || !admit() {
			kind = fault.None
		} else {
			old = ret
		}
	case fault.Arbitrary:
		// An arbitrary value is written regardless of the inputs.
		target := prop.Write
		correct := pre
		if pre == exp {
			correct = new
		}
		if target == correct || !admit() {
			kind = fault.None
		} else {
			write = true
			stored = target
		}
	case fault.Nonresponsive:
		if !admit() {
			kind = fault.None
		}
		// The event is recorded; the caller is responsible for never
		// returning (Invoke stalls the process).
	default:
		panic(fmt.Sprintf("object: unknown fault kind %v", kind))
	}

	post := pre
	if write && kind != fault.Nonresponsive {
		o.content = stored
		post = stored
	}

	ev := trace.Event{
		Kind:   trace.EventCAS,
		Proc:   proc,
		Object: o.id,
		Exp:    exp,
		New:    new,
		Pre:    pre,
		Post:   post,
		Old:    old,
		Fault:  kind,
	}
	return old, ev
}

// Invoke executes the CAS operation as one atomic step of the simulated
// process p, recording the step in the execution trace. A nonresponsive
// fault stalls the process forever.
func (o *CAS) Invoke(p *sim.Proc, exp, new word.Word) word.Word {
	var old word.Word
	p.ExecCAS(o.id, exp, new, func() {
		var ev trace.Event
		old, ev = o.Apply(p.ID(), exp, new)
		p.Record(ev)
		if ev.Fault == fault.Nonresponsive {
			p.Stall()
		}
	})
	return old
}
