// Package history records concurrent CAS histories and checks them for
// linearizability — against the strict sequential specification Φ of the
// CAS operation, and against the overriding relaxation Φ′ of Section 3.3
// under an (f, t) fault budget.
//
// This is the correctness bridge for the real-concurrency substrate
// (internal/atomicx): the deterministic simulator is sequentially
// consistent by construction, but the atomic backend's faulty CAS (an
// unconditional Swap) is only trustworthy if its concurrent histories
// linearize to sequences in which every operation follows Φ or, for at
// most f objects and at most t operations each, Φ′. The checker implements
// the classic Wing–Gong search with memoization.
package history

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/word"
)

// Op is one completed CAS operation in a concurrent history. Invoke and
// Return are logical timestamps drawn from one atomic counter: Invoke is
// taken on entry, Return on exit, so op A precedes op B in real time iff
// A.Return < B.Invoke.
type Op struct {
	Proc   int
	Object int
	Invoke int64
	Return int64
	Exp    word.Word
	New    word.Word
	Old    word.Word
}

func (o Op) String() string {
	return fmt.Sprintf("p%d CAS(O%d, %s, %s)=%s [%d,%d]",
		o.Proc, o.Object, o.Exp, o.New, o.Old, o.Invoke, o.Return)
}

// Env is the minimal environment the recorder wraps (structurally matches
// core.Env).
type Env interface {
	CAS(i int, exp, new word.Word) word.Word
	Len() int
}

// Recorder wraps an Env and records every CAS with invocation/response
// timestamps. It is safe for concurrent use.
type Recorder struct {
	inner Env
	clock atomic.Int64

	mu  sync.Mutex
	ops []Op
}

// NewRecorder wraps env.
func NewRecorder(env Env) *Recorder { return &Recorder{inner: env} }

// CAS implements Env, recording the operation.
func (r *Recorder) CAS(i int, exp, new word.Word) word.Word {
	inv := r.clock.Add(1)
	old := r.inner.CAS(i, exp, new)
	ret := r.clock.Add(1)
	r.mu.Lock()
	r.ops = append(r.ops, Op{Object: i, Invoke: inv, Return: ret, Exp: exp, New: new, Old: old})
	r.mu.Unlock()
	return old
}

// Len implements Env.
func (r *Recorder) Len() int { return r.inner.Len() }

// Ops returns the recorded history (order of completion, unsorted).
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

// Budget bounds the relaxation allowed during linearization: at most F
// objects may have faulty linearization points, at most T each (T < 0 for
// unbounded). The zero Budget admits no faults — strict linearizability.
type Budget struct {
	F int
	T int
}

// Check searches for a linearization of the history in which every
// operation satisfies Φ, except that operations on at most budget.F objects
// may satisfy only the overriding Φ′ (write despite a mismatch, truthful
// old), at most budget.T times per object. It reports whether one exists.
//
// The search is exponential in the worst case; keep histories small
// (≤ ~16 operations) or well-ordered.
func Check(ops []Op, objects int, budget Budget) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	if n > 63 {
		panic("history: history too long to check")
	}

	type stateKey struct {
		done     uint64
		contents string
		spent    string
	}
	memo := map[stateKey]bool{}

	contents := make([]word.Word, objects)
	faults := make([]int, objects)

	var dfs func(done uint64) bool
	dfs = func(done uint64) bool {
		if done == uint64(1)<<n-1 {
			return true
		}
		key := stateKey{done: done, contents: fmt.Sprint(contents), spent: fmt.Sprint(faults)}
		if v, ok := memo[key]; ok {
			return v
		}

		// Earliest return among un-linearized ops: an op is eligible
		// to linearize next only if its invocation precedes every
		// other remaining op's return (otherwise it strictly follows
		// one of them in real time).
		minRet := int64(1<<62 - 1)
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && ops[i].Return < minRet {
				minRet = ops[i].Return
			}
		}

		ok := false
		for i := 0; i < n && !ok; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			op := ops[i]
			if op.Invoke > minRet {
				continue // strictly after another remaining op
			}
			if op.Object < 0 || op.Object >= objects {
				continue
			}
			cur := contents[op.Object]
			if op.Old != cur {
				continue // the old value is truthful under Φ and Φ′ alike
			}

			// Try the strict step.
			if cur == op.Exp {
				contents[op.Object] = op.New
				if dfs(done | 1<<i) {
					ok = true
				}
				contents[op.Object] = cur
				if ok {
					break
				}
				// A silent/other relaxation is not admitted here:
				// only the overriding Φ′ is part of this model.
				continue
			}

			// Mismatch: strict Φ is a no-op...
			if dfs(done | 1<<i) {
				ok = true
				break
			}
			// ...or an overriding fault wrote anyway, if the budget
			// allows and the write changes the content.
			if op.New != cur && admits(faults, op.Object, budget) {
				faults[op.Object]++
				contents[op.Object] = op.New
				if dfs(done | 1<<i) {
					ok = true
				}
				contents[op.Object] = cur
				faults[op.Object]--
			}
		}
		memo[key] = ok
		return ok
	}
	return dfs(0)
}

// admits reports whether one more fault on the object stays within budget.
func admits(faults []int, object int, b Budget) bool {
	if faults[object] == 0 {
		// Would this object join the faulty set?
		inUse := 0
		for _, f := range faults {
			if f > 0 {
				inUse++
			}
		}
		if inUse >= b.F {
			return false
		}
	}
	if b.T >= 0 && faults[object] >= b.T {
		return false
	}
	return true
}

// Unbounded is the per-object fault count for T = ∞.
const Unbounded = -1
