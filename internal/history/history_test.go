package history

import (
	"sync"
	"testing"

	"repro/internal/atomicx"
	"repro/internal/fault"
	"repro/internal/word"
)

var (
	bot = word.Bottom
	w1  = word.FromValue(1)
	w2  = word.FromValue(2)
	w3  = word.FromValue(3)
)

// seqOp builds a non-overlapping op occupying [2k, 2k+1].
func seqOp(k int, obj int, exp, new, old word.Word) Op {
	return Op{Object: obj, Invoke: int64(2 * k), Return: int64(2*k + 1), Exp: exp, New: new, Old: old}
}

func TestEmptyHistoryLinearizable(t *testing.T) {
	if !Check(nil, 1, Budget{}) {
		t.Fatal("empty history must be linearizable")
	}
}

func TestSequentialCorrectHistory(t *testing.T) {
	ops := []Op{
		seqOp(0, 0, bot, w1, bot), // success
		seqOp(1, 0, bot, w2, w1),  // failure
		seqOp(2, 0, w1, w3, w1),   // success
	}
	if !Check(ops, 1, Budget{}) {
		t.Fatal("correct sequential history must be linearizable")
	}
}

func TestSequentialBrokenHistoryRejected(t *testing.T) {
	// The second op claims old=⊥ though the register must hold 1.
	ops := []Op{
		seqOp(0, 0, bot, w1, bot),
		seqOp(1, 0, bot, w2, bot),
	}
	if Check(ops, 1, Budget{}) {
		t.Fatal("history with an untruthful old value must be rejected")
	}
}

func TestOverridingHistoryNeedsBudget(t *testing.T) {
	// Op 2 observes old=1 (truthful) and its write takes effect (op 3
	// sees 2) despite exp=⊥ mismatching: an overriding step.
	ops := []Op{
		seqOp(0, 0, bot, w1, bot), // content 1
		seqOp(1, 0, bot, w2, w1),  // override: content 2
		seqOp(2, 0, w2, w3, w2),   // success proves the write landed
	}
	if Check(ops, 1, Budget{}) {
		t.Fatal("strict linearizability must reject the overriding step")
	}
	if !Check(ops, 1, Budget{F: 1, T: 1}) {
		t.Fatal("(1,1)-relaxed linearizability must accept one override")
	}
}

func TestBudgetPerObjectEnforced(t *testing.T) {
	// Two overrides, each PROVEN by a later op consuming the written
	// value (without the proof op, an "override" linearizes as a plain
	// failed CAS and needs no budget).
	ops := []Op{
		seqOp(0, 0, bot, w1, bot), // success: content 1
		seqOp(1, 0, bot, w2, w1),  // override #1: content 2
		seqOp(2, 0, bot, w3, w2),  // override #2: content 3
		seqOp(3, 0, w3, w1, w3),   // success consuming 3: proves #2 wrote
	}
	// (op 2's old=2 proves #1 wrote.)
	if Check(ops, 1, Budget{F: 1, T: 1}) {
		t.Fatal("two overrides must exceed T=1")
	}
	if !Check(ops, 1, Budget{F: 1, T: 2}) {
		t.Fatal("T=2 must accept two overrides")
	}
	if !Check(ops, 1, Budget{F: 1, T: Unbounded}) {
		t.Fatal("T=∞ must accept")
	}
}

func TestBudgetFaultyObjectCountEnforced(t *testing.T) {
	// One proven override per object.
	ops := []Op{
		seqOp(0, 0, bot, w1, bot),
		seqOp(1, 1, bot, w1, bot),
		seqOp(2, 0, bot, w2, w1), // override on object 0
		seqOp(3, 1, bot, w2, w1), // override on object 1
		seqOp(4, 0, w2, w3, w2),  // proof for object 0
		seqOp(5, 1, w2, w3, w2),  // proof for object 1
	}
	if Check(ops, 2, Budget{F: 1, T: Unbounded}) {
		t.Fatal("two faulty objects must exceed F=1")
	}
	if !Check(ops, 2, Budget{F: 2, T: 1}) {
		t.Fatal("F=2 must accept one override per object")
	}
}

func TestConcurrentOverlapAllowsReordering(t *testing.T) {
	// Two overlapping successful CASes on ⊥: only one can truly have
	// seen ⊥... unless they are ordered so the second's old matches.
	// Overlapping ops may linearize in either order.
	ops := []Op{
		{Object: 0, Invoke: 0, Return: 3, Exp: bot, New: w1, Old: bot},
		{Object: 0, Invoke: 1, Return: 2, Exp: w1, New: w2, Old: w1},
	}
	if !Check(ops, 1, Budget{}) {
		t.Fatal("overlapping ops must be orderable: first wrote 1, second consumed it")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// The op that returned before the other was invoked must linearize
	// first; here that order is inconsistent, so the history is rejected.
	ops := []Op{
		// Completed first: claims it consumed content 1...
		seqOp(0, 0, w1, w2, w1),
		// ...but the op that wrote 1 runs strictly later.
		seqOp(1, 0, bot, w1, bot),
	}
	if Check(ops, 1, Budget{}) {
		t.Fatal("history violating real-time order must be rejected")
	}
}

func TestRecorderCapturesConcurrentRuns(t *testing.T) {
	bank := atomicx.NewBank(1)
	rec := NewRecorder(bank)
	const procs = 4
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rec.CAS(0, bot, word.FromValue(int64(g+1)))
		}(g)
	}
	wg.Wait()
	ops := rec.Ops()
	if len(ops) != procs {
		t.Fatalf("recorded %d ops", len(ops))
	}
	if rec.Len() != 1 {
		t.Fatalf("Len = %d", rec.Len())
	}
	if !Check(ops, 1, Budget{}) {
		t.Fatal("fault-free atomic CAS history must be strictly linearizable")
	}
}

func TestAtomicBankStrictlyLinearizable(t *testing.T) {
	// Randomized concurrent workloads on the fault-free atomic bank must
	// always be strictly linearizable.
	for trial := 0; trial < 40; trial++ {
		bank := atomicx.NewBank(2)
		rec := NewRecorder(bank)
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 2; i++ {
					exp := word.Bottom
					if i == 1 {
						exp = word.FromValue(int64(g + 1))
					}
					rec.CAS(g%2, exp, word.FromValue(int64(3*g+i+1)))
				}
			}(g)
		}
		wg.Wait()
		if !Check(rec.Ops(), 2, Budget{}) {
			t.Fatalf("trial %d: fault-free history not linearizable:\n%v", trial, rec.Ops())
		}
	}
}

func TestFaultyAtomicBankRelaxedLinearizable(t *testing.T) {
	// Histories of the faulty bank may need the Φ′ relaxation — and must
	// always fit within it given the bank's own budget.
	for trial := 0; trial < 40; trial++ {
		bank := atomicx.NewFaultyBank(1, fault.NewBudget(1, 2), 0.8, int64(trial))
		rec := NewRecorder(bank)
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rec.CAS(0, word.Bottom, word.FromValue(int64(g+1)))
				rec.CAS(0, word.FromValue(int64(g+1)), word.FromValue(int64(g+10)))
			}(g)
		}
		wg.Wait()
		if !Check(rec.Ops(), 1, Budget{F: 1, T: 2}) {
			t.Fatalf("trial %d: faulty history exceeds its own (1,2) budget:\n%v",
				trial, rec.Ops())
		}
	}
}

func TestTooLongHistoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized history must panic")
		}
	}()
	Check(make([]Op, 64), 1, Budget{})
}

func TestOpString(t *testing.T) {
	if seqOp(0, 0, bot, w1, bot).String() == "" {
		t.Error("empty op string")
	}
}
