package history

import (
	"testing"
	"testing/quick"

	"repro/internal/word"
)

// TestSequentialCorrectHistoriesAlwaysLinearizableProperty generates random
// CORRECT sequential histories (simulating the CAS spec faithfully) and
// asserts the checker accepts every one under the strict budget.
func TestSequentialCorrectHistoriesAlwaysLinearizableProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		const objects = 2
		contents := [objects]word.Word{}
		var ops []Op
		for k, b := range raw {
			if k >= 12 {
				break
			}
			obj := int(b) % objects
			// Derive exp: half the time the true content (success),
			// half the time something else (failure).
			exp := contents[obj]
			if b&0x10 != 0 {
				exp = word.FromValue(int64(b%7) + 50)
			}
			nw := word.FromValue(int64(b%13) + 1)
			old := contents[obj]
			if exp == contents[obj] {
				contents[obj] = nw
			}
			ops = append(ops, Op{
				Object: obj,
				Invoke: int64(2 * k), Return: int64(2*k + 1),
				Exp: exp, New: nw, Old: old,
			})
		}
		return Check(ops, objects, Budget{})
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialOverridingHistoriesFitTheirBudgetProperty generates random
// sequential histories where some mismatching CASes override anyway, and
// asserts the checker accepts them exactly under a budget at least as large
// as the number of overrides taken.
func TestSequentialOverridingHistoriesFitTheirBudgetProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		contents := word.Bottom
		overrides := 0
		var ops []Op
		for k, b := range raw {
			if k >= 10 {
				break
			}
			exp := contents
			if b&0x10 != 0 {
				exp = word.FromValue(int64(b%7) + 50)
			}
			nw := word.FromValue(int64(b%13) + 1)
			old := contents
			switch {
			case exp == contents:
				contents = nw
			case b&0x20 != 0 && nw != contents:
				// Overriding fault: write despite the mismatch.
				contents = nw
				overrides++
			}
			ops = append(ops, Op{
				Object: 0,
				Invoke: int64(2 * k), Return: int64(2*k + 1),
				Exp: exp, New: nw, Old: old,
			})
		}
		// Accepted with a budget covering the overrides taken...
		if !Check(ops, 1, Budget{F: 1, T: overrides}) {
			return false
		}
		// ...and with the unbounded budget.
		return Check(ops, 1, Budget{F: 1, T: Unbounded})
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
