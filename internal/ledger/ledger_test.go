package ledger

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock lets tests move lease expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// newFakeClock starts at the real current time so that Merge and Status —
// which always inspect with the real clock — agree with the fake timeline
// until a test explicitly advances it.
func newFakeClock() *fakeClock { return &fakeClock{t: time.Now()} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func join(t *testing.T, dir, owner string, clk *fakeClock) *Ledger {
	t.Helper()
	l, _, err := Join(dir, owner, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if clk != nil {
		l.now = clk.now
	}
	l.poll = time.Millisecond
	return l
}

func TestJoinSeedsRootOnce(t *testing.T) {
	dir := t.TempDir()
	a, created, err := Join(dir, "a", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first join should create the ledger")
	}
	b, created, err := Join(dir, "b", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("second join must adopt, not create")
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("epochs diverge: %d vs %d", a.Epoch(), b.Epoch())
	}
	if b.TTL() != time.Second {
		t.Fatalf("joiner TTL = %v, want the creator's 1s", b.TTL())
	}
	ents, err := os.ReadDir(filepath.Join(dir, "ledger", "tasks"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("tasks dir holds %d entries, want exactly the root task", len(ents))
	}
}

func TestClaimExclusiveAndDrain(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := join(t, dir, "a", clk)
	b := join(t, dir, "b", clk)

	ctx := context.Background()
	ls, err := a.Claim(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ls.ID != TaskID(nil, 0) || ls.Epoch != 0 {
		t.Fatalf("claimed %s@%d, want root@0", ls.ID, ls.Epoch)
	}

	// b sees a's live lease: no task to claim, not drained — times out.
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := b.Claim(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("concurrent claim: err = %v, want deadline (blocked on live lease)", err)
	}

	if err := a.Release(ls, &Result{Executions: 42, ElapsedNS: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Claim(ctx); !errors.Is(err, ErrDrained) {
		t.Fatalf("claim after full coverage: err = %v, want ErrDrained", err)
	}

	m, err := Merge(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executions != 42 || m.Results != 1 || len(m.Participants) != 1 || m.Participants[0] != "a" {
		t.Fatalf("merged = %+v", m)
	}
}

func TestRenewExtendsAndExpiryReclaims(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := join(t, dir, "a", clk)
	b := join(t, dir, "b", clk)

	ls, err := a.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(700 * time.Millisecond)
	if err := a.Renew(ls); err != nil {
		t.Fatal(err)
	}
	// Past the original expiry but within the renewed one: still held.
	clk.advance(700 * time.Millisecond)
	short, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := b.Claim(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("renewed lease was not honored: %v", err)
	}

	// Let it expire: b reclaims the subtree at epoch 1.
	clk.advance(2 * time.Second)
	got, err := b.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != ls.ID || got.Epoch != ls.Epoch+1 {
		t.Fatalf("reclaimed %s@%d, want %s@%d", got.ID, got.Epoch, ls.ID, ls.Epoch+1)
	}

	// The dead claimant is fenced: renew and publish both refuse.
	if err := a.Renew(ls); !errors.Is(err, ErrFenced) {
		t.Fatalf("renew after reclaim: err = %v, want ErrFenced", err)
	}
	if err := a.Release(ls, &Result{Executions: 1}); !errors.Is(err, ErrFenced) {
		t.Fatalf("publish after reclaim: err = %v, want ErrFenced", err)
	}

	// Only b's result counts.
	if err := b.Release(got, &Result{Executions: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := Merge(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executions != 9 || m.Results != 1 {
		t.Fatalf("merged = %+v, want only the reclaimer's 9 executions", m)
	}
}

func TestExportAndLineageFencing(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := join(t, dir, "a", clk)
	b := join(t, dir, "b", clk)

	root, err := a.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// a carves a child subtree out of its claim and b runs it to completion.
	if err := a.Export(root, []int{1}, 0); err != nil {
		t.Fatal(err)
	}
	child, err := b.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if child.ID != TaskID([]int{1}, 0) {
		t.Fatalf("claimed %s, want the exported child", child.ID)
	}
	if len(child.Lineage) != 1 || child.Lineage[0].ID != root.ID || child.Lineage[0].Epoch != root.Epoch {
		t.Fatalf("child lineage = %+v, want [{root, 0}]", child.Lineage)
	}
	if err := b.Release(child, &Result{Executions: 10}); err != nil {
		t.Fatal(err)
	}

	// a dies mid-claim; its root lease expires and is reclaimed. The re-run
	// covers the WHOLE root subtree, so the child's published result must
	// be excluded by lineage supersession — not double-counted.
	clk.advance(3 * time.Second)
	reclaimed, err := b.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed.ID != root.ID || reclaimed.Epoch != root.Epoch+1 {
		t.Fatalf("reclaimed %s@%d, want root@1", reclaimed.ID, reclaimed.Epoch)
	}
	if err := b.Release(reclaimed, &Result{Executions: 100}); err != nil {
		t.Fatal(err)
	}

	m, err := Merge(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executions != 100 {
		t.Fatalf("merged executions = %d, want 100 (child of dead lineage excluded)", m.Executions)
	}
	if m.Reclaims == 0 {
		t.Fatal("merge should report the excluded orphan result")
	}
}

// TestExportRefusesOwnClaim: exporting a claim's own (path, floor) would
// bump the task's epoch past the live lease — fencing the exporter — and
// leave a task whose lineage supersedes itself, which debris collection
// would then silently drop. The ledger must refuse it outright.
func TestExportRefusesOwnClaim(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := join(t, dir, "a", clk)

	root, err := a.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Export(root, root.Path, root.Floor); err == nil {
		t.Fatal("self-export succeeded; want an error")
	}
	// The claim is untouched: still renewable and publishable.
	if err := a.Renew(root); err != nil {
		t.Fatalf("renew after refused self-export: %v", err)
	}
	if err := a.Release(root, &Result{Executions: 5}); err != nil {
		t.Fatalf("release after refused self-export: %v", err)
	}
	m, err := Merge(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executions != 5 {
		t.Fatalf("merged executions = %d, want 5", m.Executions)
	}
}

func TestAbandonReenqueuesAtNextEpoch(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := join(t, dir, "a", clk)

	ls, err := a.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Export(ls, []int{0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Abandon(ls); err != nil {
		t.Fatal(err)
	}

	// The abandoned task comes back at epoch+1 — fencing the exported
	// child, whose region the re-run covers.
	got, err := a.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != ls.ID || got.Epoch != ls.Epoch+1 {
		t.Fatalf("re-claimed %s@%d, want %s@%d", got.ID, got.Epoch, ls.ID, ls.Epoch+1)
	}
	if err := a.Release(got, &Result{Executions: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Claim(context.Background()); !errors.Is(err, ErrDrained) {
		t.Fatalf("err = %v, want ErrDrained (child task superseded by abandon bump)", err)
	}
	m, err := Merge(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executions != 5 {
		t.Fatalf("merged executions = %d, want 5", m.Executions)
	}
}

func TestMergeRefusesWhileWorkRemains(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := join(t, dir, "a", clk)

	// Unclaimed root task.
	var inc *IncompleteError
	if _, err := Merge(dir, false); !errors.As(err, &inc) || inc.Tasks != 1 {
		t.Fatalf("err = %v, want IncompleteError{Tasks: 1}", err)
	}

	// Live lease.
	ls, err := a.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dir, false); !errors.As(err, &inc) || inc.LiveLeases != 1 {
		t.Fatalf("err = %v, want IncompleteError{LiveLeases: 1}", err)
	}

	// Expired, unreclaimed lease. Merge inspects with the real clock, so
	// move the lease's expiry into the real past via the fake clock delta.
	clk.advance(-2 * time.Hour)
	if err := a.Renew(ls); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dir, false); !errors.As(err, &inc) || inc.ExpiredLeases != 1 {
		t.Fatalf("err = %v, want IncompleteError{ExpiredLeases: 1}", err)
	}
}

func TestMergeCounterexampleOrdering(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := join(t, dir, "a", clk)
	b := join(t, dir, "b", clk)

	root, err := a.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Export(root, []int{2}, 0); err != nil {
		t.Fatal(err)
	}
	child, err := b.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The child (deeper region, lex-greater path) finds a SHORTER schedule;
	// the root finds the lex-least path.
	if err := b.Release(child, &Result{
		Executions: 3, Violations: 1, HasBest: true, BestPath: []int{2, 0}, BestLen: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(root, &Result{
		Executions: 7, Violations: 2, HasBest: true, BestPath: []int{0, 1}, BestLen: 9,
	}); err != nil {
		t.Fatal(err)
	}

	lex, err := Merge(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !lex.HasBest || lex.BestPath[0] != 0 {
		t.Fatalf("default mode best = %+v, want lex-least [0 1]", lex.BestPath)
	}
	ex, err := Merge(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.HasBest || ex.BestLen != 4 {
		t.Fatalf("exhaustive mode best len = %d, want 4 (shortest schedule)", ex.BestLen)
	}
	if lex.Violations != 3 || lex.Executions != 10 {
		t.Fatalf("merged = %+v, want violations 3, executions 10", lex)
	}
}

func TestStatusReportsParticipantsAndLeases(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := join(t, dir, "a", clk)
	b := join(t, dir, "b", clk)

	root, err := a.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Export(root, []int{0}, 0); err != nil {
		t.Fatal(err)
	}
	child, err := b.Claim(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Release(child, &Result{Executions: 11}); err != nil {
		t.Fatal(err)
	}

	rs, err := Status(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Participants) != 2 {
		t.Fatalf("participants = %v, want a and b", rs.Participants)
	}
	// a still holds the root lease (expiry ~1s out on the real clock Status
	// inspects with).
	if rs.LeasesLive+rs.LeasesExpired != 1 {
		t.Fatalf("leases = %d live + %d expired, want 1 total", rs.LeasesLive, rs.LeasesExpired)
	}
	if rs.Results != 1 || rs.MergedExecutions != 11 {
		t.Fatalf("status = %+v, want 1 result / 11 merged executions", rs)
	}
	if rs.Drained {
		t.Fatal("status claims drained while a lease is held")
	}
}

// TestClaimRaceSingleWinner hammers one task with concurrent claimers from
// several handles: exactly one wins each round.
func TestClaimRaceSingleWinner(t *testing.T) {
	dir := t.TempDir()
	handles := make([]*Ledger, 8)
	for i := range handles {
		handles[i] = join(t, dir, string(rune('a'+i)), nil)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var mu sync.Mutex
	winners := 0
	var wg sync.WaitGroup
	for _, h := range handles {
		wg.Add(1)
		go func(l *Ledger) {
			defer wg.Done()
			ls, err := l.Claim(ctx)
			if err != nil {
				return // drained or timed out: someone else won
			}
			mu.Lock()
			winners++
			mu.Unlock()
			l.Release(ls, &Result{Executions: 1})
		}(h)
	}
	wg.Wait()
	if winners != 1 {
		t.Fatalf("%d claim winners, want exactly 1", winners)
	}
	m, err := Merge(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executions != 1 {
		t.Fatalf("merged executions = %d, want 1", m.Executions)
	}
}
