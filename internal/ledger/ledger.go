// Package ledger turns a run directory into a multi-process work ledger:
// several OS processes cooperate on one exploration by claiming subtree
// tasks, publishing per-claim outcome records, and reclaiming the work of
// participants that died mid-claim. A deterministic merge folds every
// published record into the verdict a single-process run would have
// produced — same execution count (modulo state dedup), same lex-least
// counterexample — for any participant count and any interleaving of
// crashes.
//
// # Layout
//
// Under the run directory (which also holds the store manifest), the ledger
// occupies one subdirectory:
//
//	ledger/ledger.json          marker: ledger epoch, lease TTL
//	ledger/tasks/task-<id>.json unclaimed subtree tasks
//	ledger/leases/lease-<id>.json
//	ledger/results/result-<id>-e<epoch>.json
//
// A task is a subtree of the execution tree — a choice-path prefix plus a
// backtracking floor, exactly the engine's frontier granule. Its id is a
// hash of (path, floor), so the same region always maps to the same file
// name regardless of which participant touches it.
//
// # Protocol
//
// Every commit is either a hard link of a fully-written, fsync'd temp file
// (claim, publish, re-enqueue, init — link fails atomically with ErrExist
// when someone else won) or an atomic rename (lease renewal, the only
// mutable record). Task and result files are immutable for their lifetime:
// an epoch bump is a NEW link of the task file created only while the name
// is absent, so whatever a claimer read is exactly what it claimed.
//
//	claim    read task@e → link lease(owner, expiry) → unlink task
//	renew    verify owner+epoch, fence-check, rename new expiry
//	release  link result-<id>-e<e> (exclusive) → unlink lease
//	abandon  link task@e+1 (supersedes) → unlink lease
//	export   link task for a carved-out child subtree, lineage = parent+self
//	reclaim  expired lease: link task@e+1 (preserving lineage) → unlink lease
//
// # Fencing
//
// The epoch in a task/lease/result is a per-subtree fencing token. A record
// at (id, e) is superseded when ANY record exists at (id, e') with e' > e.
// A reclaimed subtree restarts at e+1, so results the dead owner managed to
// publish at e — and, via the lineage refs every exported child carries,
// everything its children published — are excluded by the merge, and the
// e+1 re-run recounts the whole subtree exactly once. A live owner that
// lost its lease discovers the bump on its next renew or publish (the task
// file at a higher epoch, or ErrExist on its result link), discards the
// claim's work, and claims afresh; it never publishes fenced work.
package ledger

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

const (
	ledgerDir  = "ledger"
	markerFile = "ledger.json"
	tasksDir   = "tasks"
	leasesDir  = "leases"
	resultsDir = "results"
)

// DefaultTTL is the lease time-to-live when the creating participant does
// not choose one. Holders renew at TTL/3, so a ~5s TTL tolerates seconds of
// scheduler stall while bounding how long a dead worker's subtree stays
// unclaimable.
const DefaultTTL = 5 * time.Second

var (
	// ErrDrained reports that no tasks and no leases remain: the tree is
	// fully covered by published results and Claim has nothing to hand out.
	ErrDrained = errors.New("ledger: all work is claimed and published")
	// ErrFenced reports that the caller's lease was superseded (expired and
	// reclaimed, or its subtree re-enqueued at a higher epoch); the claim's
	// work must be discarded, not published.
	ErrFenced = errors.New("ledger: lease fenced by a higher epoch")
	// ErrNoLedger reports a run directory that holds no ledger marker.
	ErrNoLedger = errors.New("ledger: run directory holds no ledger")
)

// Ref names one (task, epoch) a record descends from.
type Ref struct {
	ID    string `json:"id"`
	Epoch int64  `json:"epoch"`
}

// Task is one unclaimed subtree: the engine's frontier granule (choice-path
// prefix + backtracking floor) plus its fencing epoch and the lineage of
// (id, epoch) claims it was exported under. A task whose lineage contains a
// superseded ref is itself dead: the re-run of the superseded ancestor
// re-covers this subtree.
type Task struct {
	ID      string `json:"id"`
	Epoch   int64  `json:"epoch"`
	Path    []int  `json:"path"`
	Floor   int    `json:"floor"`
	Lineage []Ref  `json:"lineage,omitempty"`
}

// Lease is a claimed task: who holds it and until when. Expiry is compared
// against the claimer fleet's wall clocks; the TTL must dominate clock skew.
type Lease struct {
	Task
	Owner           string `json:"owner"`
	LedgerEpoch     int64  `json:"ledger_epoch"`
	ExpiresUnixNano int64  `json:"expires_unix_nano"`
}

// Result is the published outcome of one claim: the executions enumerated
// in the claimed subtree MINUS any children exported to the ledger (their
// claims publish their own results), plus the claim's violation maxima and
// best counterexample candidate.
type Result struct {
	Task
	Owner        string `json:"owner"`
	Executions   int64  `json:"executions"`
	Violations   int64  `json:"violations"`
	MaxProcSteps int    `json:"max_proc_steps"`
	MaxFaults    int    `json:"max_faults"`
	Capped       bool   `json:"capped"`
	// HasBest marks a claim that found a violation; BestPath is then its
	// best (mode-least) violating choice path, BestLen its schedule length.
	HasBest  bool  `json:"has_best,omitempty"`
	BestPath []int `json:"best_path,omitempty"`
	BestLen  int   `json:"best_len,omitempty"`
	// Dedup digest: how many replays the claimer's state-dedup cache pruned
	// while running this claim (advisory; merged counts are "modulo dedup").
	DedupHits int64 `json:"dedup_hits,omitempty"`
	ElapsedNS int64 `json:"elapsed_ns"`
}

// marker is the ledger's identity record, created exactly once per run
// directory by whichever participant wins the init link.
type marker struct {
	LedgerEpoch int64  `json:"ledger_epoch"` // unix nanoseconds at init
	LeaseTTLNS  int64  `json:"lease_ttl_ns"`
	CreatedBy   string `json:"created_by"`
	CreatedAt   string `json:"created_at"`
}

// TaskID derives the stable file-name id of a subtree: FNV-64a over the
// backtracking floor and the choice path.
func TaskID(path []int, floor int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "f%d", floor)
	for _, c := range path {
		fmt.Fprintf(h, "|%d", c)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Ledger is one participant's handle on a run directory's work ledger.
type Ledger struct {
	dir   string // <run>/ledger
	owner string
	epoch int64 // ledger epoch from the marker
	ttl   time.Duration

	now  func() time.Time // test hook
	poll time.Duration    // Claim's idle re-scan interval

	events    *obs.Log
	claims    *obs.Counter
	reclaims  *obs.Counter
	publishes *obs.Counter
	exports   *obs.Counter
	abandons  *obs.Counter
	fenced    *obs.Counter
}

// Join opens the work ledger in runDir, creating it — directories, marker,
// and the root task covering the whole execution tree — when absent.
// Exactly one racing participant creates; everyone else adopts the winning
// marker's epoch and TTL (the ttl argument only matters to the creator; 0
// means DefaultTTL). The returned bool reports whether this call created
// the ledger.
func Join(runDir, owner string, ttl time.Duration) (*Ledger, bool, error) {
	if owner == "" {
		return nil, false, errors.New("ledger: empty owner id")
	}
	if strings.ContainsAny(owner, "/\x00") {
		return nil, false, fmt.Errorf("ledger: invalid owner id %q", owner)
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	dir := filepath.Join(runDir, ledgerDir)
	for _, d := range []string{dir, filepath.Join(dir, tasksDir), filepath.Join(dir, leasesDir), filepath.Join(dir, resultsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, false, fmt.Errorf("ledger: %w", err)
		}
	}
	l := &Ledger{
		dir:   dir,
		owner: owner,
		ttl:   ttl,
		now:   time.Now,
		poll:  50 * time.Millisecond,
	}

	mk := marker{
		LedgerEpoch: time.Now().UnixNano(),
		LeaseTTLNS:  int64(ttl),
		CreatedBy:   owner,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
	}
	data, err := json.MarshalIndent(&mk, "", "  ")
	if err != nil {
		return nil, false, fmt.Errorf("ledger: %w", err)
	}
	created := false
	switch err := store.CreateExclusive(dir, markerFile, data); {
	case err == nil:
		created = true
		// The creator seeds the root task: the whole tree, no lineage.
		root := Task{ID: TaskID(nil, 0), Epoch: 0, Path: []int{}, Floor: 0}
		if err := l.linkTask(root); err != nil && !errors.Is(err, fs.ErrExist) {
			return nil, false, err
		}
	case errors.Is(err, fs.ErrExist):
		// Lost the init race (or joining an existing ledger): adopt.
	default:
		return nil, false, err
	}
	got, err := readMarker(dir)
	if err != nil {
		return nil, false, err
	}
	l.epoch = got.LedgerEpoch
	l.ttl = time.Duration(got.LeaseTTLNS)
	// Idle claimers re-scan at a fraction of the TTL so short-TTL ledgers
	// (tests, fast local runs) hand work off promptly, while long-TTL
	// ledgers on shared filesystems stay polite.
	if p := l.ttl / 20; p < l.poll {
		l.poll = p
		if l.poll < time.Millisecond {
			l.poll = time.Millisecond
		}
	}
	return l, created, nil
}

func readMarker(dir string) (*marker, error) {
	data, err := os.ReadFile(filepath.Join(dir, markerFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNoLedger, filepath.Dir(dir))
		}
		return nil, fmt.Errorf("ledger: %w", err)
	}
	var mk marker
	if err := json.Unmarshal(data, &mk); err != nil {
		return nil, fmt.Errorf("ledger: corrupt marker: %w", err)
	}
	return &mk, nil
}

// Owner returns this participant's id.
func (l *Ledger) Owner() string { return l.owner }

// Epoch returns the ledger incarnation stamp from the marker.
func (l *Ledger) Epoch() int64 { return l.epoch }

// TTL returns the fleet-wide lease time-to-live.
func (l *Ledger) TTL() time.Duration { return l.ttl }

// RunDir returns the run directory this ledger lives under (the parent of
// the ledger/ subdirectory) — where cooperating subsystems such as the
// fleet snapshot publisher anchor their own files.
func (l *Ledger) RunDir() string { return filepath.Dir(l.dir) }

// Instrument attaches observability: claim/reclaim/publish/export/abandon/
// fenced counters, pending-task and live-lease gauges (computed from the
// directory on read), and ledger.* events. Either argument may be nil.
func (l *Ledger) Instrument(reg *obs.Registry, events *obs.Log) {
	l.events = events
	if reg == nil {
		return
	}
	l.claims = reg.Counter("ledger.claims")
	l.reclaims = reg.Counter("ledger.reclaims")
	l.publishes = reg.Counter("ledger.publishes")
	l.exports = reg.Counter("ledger.exports")
	l.abandons = reg.Counter("ledger.abandons")
	l.fenced = reg.Counter("ledger.fenced")
	reg.Func("ledger.tasks_pending", func() int64 { return int64(countDir(filepath.Join(l.dir, tasksDir))) })
	reg.Func("ledger.leases_held", func() int64 { return int64(countDir(filepath.Join(l.dir, leasesDir))) })
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func countDir(dir string) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !strings.Contains(e.Name(), ".tmp") {
			n++
		}
	}
	return n
}

func taskName(id string) string            { return "task-" + id + ".json" }
func leaseName(id string) string           { return "lease-" + id + ".json" }
func resultName(id string, e int64) string { return fmt.Sprintf("result-%s-e%d.json", id, e) }

// parseResultName extracts (id, epoch) from a result file name.
func parseResultName(name string) (string, int64, bool) {
	rest, ok := strings.CutPrefix(name, "result-")
	if !ok {
		return "", 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".json")
	if !ok {
		return "", 0, false
	}
	id, es, ok := strings.Cut(rest, "-e")
	if !ok {
		return "", 0, false
	}
	e, err := strconv.ParseInt(es, 10, 64)
	if err != nil {
		return "", 0, false
	}
	return id, e, true
}

// scanState is one consistent-enough directory listing: records may vanish
// or appear between the listing and a follow-up read (every reader copes),
// but within one state the supersession math is coherent.
type scanState struct {
	tasks   map[string]Task
	leases  map[string]Lease
	results map[string][]int64 // id → epochs with a published result
}

func (l *Ledger) scan() (*scanState, error) {
	st := &scanState{
		tasks:   map[string]Task{},
		leases:  map[string]Lease{},
		results: map[string][]int64{},
	}
	tents, err := os.ReadDir(filepath.Join(l.dir, tasksDir))
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	for _, e := range tents {
		var t Task
		if readJSON(filepath.Join(l.dir, tasksDir, e.Name()), &t) && t.ID != "" {
			st.tasks[t.ID] = t
		}
	}
	lents, err := os.ReadDir(filepath.Join(l.dir, leasesDir))
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	for _, e := range lents {
		var ls Lease
		if readJSON(filepath.Join(l.dir, leasesDir, e.Name()), &ls) && ls.ID != "" {
			st.leases[ls.ID] = ls
		}
	}
	rents, err := os.ReadDir(filepath.Join(l.dir, resultsDir))
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	for _, e := range rents {
		if id, ep, ok := parseResultName(e.Name()); ok {
			st.results[id] = append(st.results[id], ep)
		}
	}
	return st, nil
}

// readJSON loads path into v, tolerating concurrent deletion and torn
// listings: false means "treat as absent".
func readJSON(path string, v any) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// maxEpoch returns the highest epoch any record (task, lease, result)
// holds for id, or -1 when id is unknown.
func (st *scanState) maxEpoch(id string) int64 {
	max := int64(-1)
	if t, ok := st.tasks[id]; ok && t.Epoch > max {
		max = t.Epoch
	}
	if ls, ok := st.leases[id]; ok && ls.Epoch > max {
		max = ls.Epoch
	}
	for _, e := range st.results[id] {
		if e > max {
			max = e
		}
	}
	return max
}

// superseded reports whether a record at (id, epoch) with the given lineage
// is dead: a higher epoch exists for the record itself or for any ancestor
// it was exported under.
func (st *scanState) superseded(id string, epoch int64, lineage []Ref) bool {
	if st.maxEpoch(id) > epoch {
		return true
	}
	for _, ref := range lineage {
		if st.maxEpoch(ref.ID) > ref.Epoch {
			return true
		}
	}
	return false
}

// resultAtOrAbove reports a published result for id at epoch ≥ e.
func (st *scanState) resultAtOrAbove(id string, e int64) bool {
	for _, re := range st.results[id] {
		if re >= e {
			return true
		}
	}
	return false
}

func (l *Ledger) linkTask(t Task) error {
	data, err := json.Marshal(&t)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	return store.CreateExclusive(filepath.Join(l.dir, tasksDir), taskName(t.ID), data)
}

func (l *Ledger) linkLease(ls Lease) error {
	data, err := json.Marshal(&ls)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	return store.CreateExclusive(filepath.Join(l.dir, leasesDir), leaseName(ls.ID), data)
}

// dropOwnLease removes the caller's lease file, but only after re-verifying
// the on-disk record still names this owner at this epoch — never delete a
// successor's lease.
func (l *Ledger) dropOwnLease(ls *Lease) {
	path := filepath.Join(l.dir, leasesDir, leaseName(ls.ID))
	var cur Lease
	if !readJSON(path, &cur) {
		return
	}
	if cur.Owner == l.owner && cur.Epoch == ls.Epoch {
		os.Remove(path)
	}
}

// fencedNow re-checks the fence for a held lease against the directory: a
// task re-enqueued at a higher epoch, a lease on the same subtree held by
// someone else (a reclaimer claimed before we noticed losing ours), or a
// result published at a higher epoch all mean a reclaim superseded this
// claim.
func (l *Ledger) fencedNow(ls *Lease) bool {
	var t Task
	if readJSON(filepath.Join(l.dir, tasksDir, taskName(ls.ID)), &t) && t.Epoch > ls.Epoch {
		return true
	}
	var cur Lease
	if readJSON(filepath.Join(l.dir, leasesDir, leaseName(ls.ID)), &cur) &&
		(cur.Epoch > ls.Epoch || (cur.Epoch == ls.Epoch && cur.Owner != l.owner)) {
		return true
	}
	rents, err := os.ReadDir(filepath.Join(l.dir, resultsDir))
	if err != nil {
		return false
	}
	for _, e := range rents {
		if id, ep, ok := parseResultName(e.Name()); ok && id == ls.ID && ep > ls.Epoch {
			return true
		}
	}
	return false
}

// Claim hands out one unclaimed, unsuperseded task, registering a lease
// that expires in TTL unless renewed. It reaps expired leases as it scans
// (re-enqueueing dead owners' subtrees at the next epoch), blocks polling
// while other participants still hold live leases (they may export
// subtasks), and returns ErrDrained when no tasks and no leases remain.
func (l *Ledger) Claim(ctx context.Context) (*Lease, error) {
	for {
		st, err := l.scan()
		if err != nil {
			return nil, err
		}
		if n, err := l.reap(st); err != nil {
			return nil, err
		} else if n > 0 {
			continue // re-enqueued work: rescan
		}

		ids := make([]string, 0, len(st.tasks))
		for id := range st.tasks {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		live := 0
		for _, id := range ids {
			t := st.tasks[id]
			if st.resultAtOrAbove(id, t.Epoch) || st.superseded(id, t.Epoch, t.Lineage) {
				// Debris: already published, or a dead lineage. Remove so
				// the drain check converges.
				os.Remove(filepath.Join(l.dir, tasksDir, taskName(id)))
				continue
			}
			if _, held := st.leases[id]; held {
				live++
				continue // claimed and not expired (reap ran first)
			}
			live++
			ls := Lease{
				Task:            t,
				Owner:           l.owner,
				LedgerEpoch:     l.epoch,
				ExpiresUnixNano: l.now().Add(l.ttl).UnixNano(),
			}
			if err := l.linkLease(ls); err != nil {
				if errors.Is(err, fs.ErrExist) {
					continue // lost the race for this task
				}
				return nil, err
			}
			if err := os.Remove(filepath.Join(l.dir, tasksDir, taskName(id))); err != nil && !errors.Is(err, fs.ErrNotExist) {
				// The claim stands (lease is linked); a claim-debris task
				// file is cleaned up by later scans.
				l.emit(obs.Warn, "ledger.claim", map[string]any{"id": id, "unlink_err": err.Error()})
			}
			inc(l.claims)
			l.emit(obs.Info, "ledger.claim", map[string]any{
				"id": id, "epoch": t.Epoch, "owner": l.owner,
				"path_len": len(t.Path), "floor": t.Floor,
			})
			return &ls, nil
		}

		if live == 0 && len(st.leases) == 0 {
			if len(st.results) == 0 {
				return nil, fmt.Errorf("ledger: empty ledger in %s (no tasks, leases, or results)", l.dir)
			}
			return nil, ErrDrained
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(l.poll):
		}
	}
}

// reap re-enqueues every expired lease at the next epoch so its subtree —
// and, through lineage supersession, everything its dead owner exported —
// is redone exactly once. A lease whose result already exists (the owner
// died between publish and lease removal) or whose task file still exists
// (died between lease link and task unlink) only needs the lease dropped.
func (l *Ledger) reap(st *scanState) (int, error) {
	now := l.now().UnixNano()
	n := 0
	for id, ls := range st.leases {
		if ls.ExpiresUnixNano > now {
			continue
		}
		switch {
		case st.resultAtOrAbove(id, ls.Epoch):
			// Work completed; only cleanup was lost.
		case func() bool { t, ok := st.tasks[id]; return ok && t.Epoch >= ls.Epoch }():
			// Claim never got underway: the task file is still claimable.
		default:
			bumped := Task{ID: id, Epoch: ls.Epoch + 1, Path: ls.Path, Floor: ls.Floor, Lineage: ls.Lineage}
			if err := l.linkTask(bumped); err != nil && !errors.Is(err, fs.ErrExist) {
				return n, err
			}
			st.tasks[id] = bumped
		}
		os.Remove(filepath.Join(l.dir, leasesDir, leaseName(id)))
		delete(st.leases, id)
		n++
		inc(l.reclaims)
		l.emit(obs.Warn, "ledger.reclaim", map[string]any{
			"id": id, "epoch": ls.Epoch, "dead_owner": ls.Owner, "by": l.owner,
		})
	}
	return n, nil
}

// Renew extends the caller's lease by TTL. ErrFenced means the lease was
// reclaimed or superseded: the caller must stop working on the claim and
// discard its partial results. On fencing, Renew drops the caller's own
// lease record (if still present) so the successor's claim can proceed.
func (l *Ledger) Renew(ls *Lease) error {
	path := filepath.Join(l.dir, leasesDir, leaseName(ls.ID))
	var cur Lease
	if !readJSON(path, &cur) || cur.Owner != l.owner || cur.Epoch != ls.Epoch {
		inc(l.fenced)
		return ErrFenced
	}
	if l.fencedNow(ls) {
		l.dropOwnLease(ls)
		inc(l.fenced)
		return ErrFenced
	}
	cur.ExpiresUnixNano = l.now().Add(l.ttl).UnixNano()
	data, err := json.Marshal(&cur)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if err := store.WriteFileAtomic(filepath.Join(l.dir, leasesDir), leaseName(ls.ID), data); err != nil {
		return err
	}
	// The rename may have resurrected a lease a reaper deleted between our
	// read and the rename; if a fence appeared meanwhile, undo and yield.
	if l.fencedNow(ls) {
		l.dropOwnLease(ls)
		inc(l.fenced)
		return ErrFenced
	}
	ls.ExpiresUnixNano = cur.ExpiresUnixNano
	return nil
}

// Release publishes the claim's outcome and drops the lease. The result
// link is exclusive per (id, epoch): if a fence raced ahead — the subtree
// was reclaimed and republished — Release returns ErrFenced and the
// caller's work is discarded, keeping merged counts exact.
func (l *Ledger) Release(ls *Lease, r *Result) error {
	if l.fencedNow(ls) {
		l.dropOwnLease(ls)
		inc(l.fenced)
		return ErrFenced
	}
	r.Task = ls.Task
	r.Owner = l.owner
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if err := store.CreateExclusive(filepath.Join(l.dir, resultsDir), resultName(ls.ID, ls.Epoch), data); err != nil {
		if errors.Is(err, fs.ErrExist) {
			l.dropOwnLease(ls)
			inc(l.fenced)
			return ErrFenced
		}
		return err
	}
	l.dropOwnLease(ls)
	inc(l.publishes)
	l.emit(obs.Info, "ledger.publish", map[string]any{
		"id": ls.ID, "epoch": ls.Epoch, "owner": l.owner,
		"executions": r.Executions, "violations": r.Violations, "has_best": r.HasBest,
	})
	return nil
}

// Abandon returns a claim to the ledger unfinished (execution cap hit,
// graceful shutdown): the task is re-enqueued at the next epoch — fencing
// any children this claim exported, which must not double-count against
// the full re-run — and the lease is dropped. The claim's partial work is
// discarded.
func (l *Ledger) Abandon(ls *Lease) error {
	bumped := Task{ID: ls.ID, Epoch: ls.Epoch + 1, Path: ls.Path, Floor: ls.Floor, Lineage: ls.Lineage}
	if err := l.linkTask(bumped); err != nil && !errors.Is(err, fs.ErrExist) {
		return err
	}
	l.dropOwnLease(ls)
	inc(l.abandons)
	l.emit(obs.Info, "ledger.abandon", map[string]any{"id": ls.ID, "epoch": ls.Epoch, "owner": l.owner})
	return nil
}

// Export offers a subtree carved from the caller's claim to other
// participants: a new task whose lineage extends the parent's by the
// parent claim itself, so a reclaim of the parent fences this child and
// every result it produces. The child's epoch exceeds every record a
// previous incarnation of the same subtree left behind, keeping its result
// file name fresh. fs.ErrExist means the subtree's task file is already
// present (a dead incarnation not yet collected) — the caller should keep
// the subtree local.
func (l *Ledger) Export(parent *Lease, path []int, floor int) error {
	id := TaskID(path, floor)
	if id == parent.ID {
		// Exporting the whole claim back would bump its own epoch, fencing
		// the live lease, and leave a task whose lineage supersedes itself
		// — the subtree would be silently dropped as debris. An export must
		// be a strict sub-region of the claim.
		return fmt.Errorf("ledger: export %s: refusing to export the claim's own task", id)
	}
	st, err := l.scan()
	if err != nil {
		return err
	}
	if _, exists := st.tasks[id]; exists {
		return fmt.Errorf("ledger: export %s: %w", id, fs.ErrExist)
	}
	t := Task{
		ID:      id,
		Epoch:   st.maxEpoch(id) + 1,
		Path:    append([]int(nil), path...),
		Floor:   floor,
		Lineage: append(append([]Ref(nil), parent.Lineage...), Ref{ID: parent.ID, Epoch: parent.Epoch}),
	}
	if err := l.linkTask(t); err != nil {
		return err
	}
	inc(l.exports)
	l.emit(obs.Info, "ledger.export", map[string]any{
		"id": id, "epoch": t.Epoch, "parent": parent.ID, "owner": l.owner,
		"path_len": len(path), "floor": floor,
	})
	return nil
}

// Starving reports whether fewer than lowWater unclaimed tasks are on
// offer — the signal for claim holders to export a subtree.
func (l *Ledger) Starving(lowWater int) bool {
	return countDir(filepath.Join(l.dir, tasksDir)) < lowWater
}

func (l *Ledger) emit(level obs.Level, typ string, fields map[string]any) {
	l.events.Emit(level, typ, fields)
}
