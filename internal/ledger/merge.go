package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Merged is the deterministic fold of every live published result: the
// verdict a single-process run over the same tree would report. For a
// covering (verified) sweep with dedup off the execution count is exact;
// dedup keeps its per-process caches, so counts are "modulo dedup";
// violating sweeps may count more executions than one process (the pruning
// bound is not shared across processes) but the best counterexample is
// identical — every process keeps its claim's mode-least candidate and the
// fold takes the global least.
type Merged struct {
	Executions   int64 `json:"executions"`
	Violations   int64 `json:"violations"`
	MaxProcSteps int   `json:"max_proc_steps"`
	MaxFaults    int   `json:"max_faults"`
	Capped       bool  `json:"capped"`

	HasBest  bool  `json:"has_best,omitempty"`
	BestPath []int `json:"best_path,omitempty"`
	BestLen  int   `json:"best_len,omitempty"`

	Participants []string `json:"participants"` // distinct result owners, sorted
	Results      int      `json:"results"`      // live result records folded
	Reclaims     int64    `json:"reclaims"`     // superseded results excluded
	DedupHits    int64    `json:"dedup_hits,omitempty"`
	// ElapsedNS is the longest single claim (a lower bound on wall clock);
	// TotalWorkNS sums every claim's elapsed time (the fleet's CPU spend).
	ElapsedNS   int64 `json:"elapsed_ns"`
	TotalWorkNS int64 `json:"total_work_ns"`
}

// IncompleteError reports a merge attempted while work remains: unclaimed
// tasks, leases still live, or expired leases no surviving participant has
// reclaimed yet (rejoin a worker, or re-run finalize after TTL with
// reclamation enabled).
type IncompleteError struct {
	Tasks         int // unclaimed, unsuperseded task files
	LiveLeases    int // leases within their TTL
	ExpiredLeases int // leases past expiry with no published result
}

func (e *IncompleteError) Error() string {
	return fmt.Sprintf("ledger: exploration incomplete: %d unclaimed tasks, %d live leases, %d expired unreclaimed leases",
		e.Tasks, e.LiveLeases, e.ExpiredLeases)
}

// Merge folds all published results in runDir's ledger into one verdict.
// exhaustive selects the counterexample ordering (shortest schedule, then
// lexicographic path — matching explore.Engine's Exhaustive mode); default
// mode orders by lexicographic path alone. Merge never mutates the ledger,
// so it is safe to run concurrently with live participants — it fails with
// *IncompleteError until they drain.
func Merge(runDir string, exhaustive bool) (*Merged, error) {
	l, err := inspect(runDir)
	if err != nil {
		return nil, err
	}
	st, err := l.scan()
	if err != nil {
		return nil, err
	}

	// Incompleteness: any live (unsuperseded) task or any lease means the
	// partition of the tree into (pending ∪ claimed ∪ published) still has
	// pending or claimed regions.
	inc := IncompleteError{}
	for id, t := range st.tasks {
		if !st.resultAtOrAbove(id, t.Epoch) && !st.superseded(id, t.Epoch, t.Lineage) {
			inc.Tasks++
		}
	}
	now := l.now().UnixNano()
	for id, ls := range st.leases {
		if st.resultAtOrAbove(id, ls.Epoch) || st.superseded(id, ls.Epoch, ls.Lineage) {
			continue // cleanup debris, not pending work
		}
		if ls.ExpiresUnixNano > now {
			inc.LiveLeases++
		} else {
			inc.ExpiredLeases++
		}
	}
	if inc.Tasks+inc.LiveLeases+inc.ExpiredLeases > 0 {
		return nil, &inc
	}

	// Fold live results in sorted id order (determinism is by construction
	// — every fold operation is commutative — but a stable order keeps any
	// tie-breaking future-proof).
	ids := make([]string, 0, len(st.results))
	for id := range st.results {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	m := &Merged{}
	owners := map[string]bool{}
	for _, id := range ids {
		epochs := st.results[id]
		top := epochs[0]
		for _, e := range epochs[1:] {
			if e > top {
				top = e
			}
		}
		m.Reclaims += int64(len(epochs) - 1)
		var r Result
		if !readJSON(filepath.Join(l.dir, resultsDir, resultName(id, top)), &r) {
			return nil, fmt.Errorf("ledger: unreadable result %s", resultName(id, top))
		}
		if st.superseded(r.ID, r.Epoch, r.Lineage) {
			m.Reclaims++
			continue // a dead lineage's orphan: its region was re-run
		}
		m.Results++
		owners[r.Owner] = true
		m.Executions += r.Executions
		m.Violations += r.Violations
		if r.MaxProcSteps > m.MaxProcSteps {
			m.MaxProcSteps = r.MaxProcSteps
		}
		if r.MaxFaults > m.MaxFaults {
			m.MaxFaults = r.MaxFaults
		}
		m.Capped = m.Capped || r.Capped
		m.DedupHits += r.DedupHits
		if r.ElapsedNS > m.ElapsedNS {
			m.ElapsedNS = r.ElapsedNS
		}
		m.TotalWorkNS += r.ElapsedNS
		if r.HasBest && better(&r, m, exhaustive) {
			m.HasBest = true
			m.BestPath = append([]int(nil), r.BestPath...)
			m.BestLen = r.BestLen
		}
	}
	if m.Results == 0 {
		return nil, fmt.Errorf("ledger: no live results in %s", l.dir)
	}
	for o := range owners {
		m.Participants = append(m.Participants, o)
	}
	sort.Strings(m.Participants)
	return m, nil
}

// better reports whether candidate r beats the current merged best under
// the engine's counterexample ordering.
func better(r *Result, m *Merged, exhaustive bool) bool {
	if !m.HasBest {
		return true
	}
	if exhaustive && r.BestLen != m.BestLen {
		return r.BestLen < m.BestLen
	}
	return lexLess(r.BestPath, m.BestPath)
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// LeaseStatus is one lease as seen by Status.
type LeaseStatus struct {
	ID      string `json:"id"`
	Owner   string `json:"owner"`
	Epoch   int64  `json:"epoch"`
	Expired bool   `json:"expired"`
	// ExpiresUnixNano is the lease's deadline as last renewed; the fleet
	// aggregator compares it against the TTL to flag leases whose holder
	// has missed renewals (healthy holders renew at TTL/3).
	ExpiresUnixNano int64 `json:"expires_unix_nano"`
}

// RunStatus is a read-only snapshot of a ledger run for progress UX: who
// has participated, what is claimed or pending, and how much is already
// merged into published results.
type RunStatus struct {
	LedgerEpoch int64 `json:"ledger_epoch"`
	// LeaseTTLNS is the fleet-wide lease time-to-live from the marker —
	// also the heartbeat-staleness threshold for worker snapshots.
	LeaseTTLNS       int64         `json:"lease_ttl_ns"`
	Participants     []string      `json:"participants"` // owners across leases + results, sorted
	TasksPending     int           `json:"tasks_pending"`
	LeasesLive       int           `json:"leases_live"`
	LeasesExpired    int           `json:"leases_expired"`
	Leases           []LeaseStatus `json:"leases,omitempty"`
	Results          int           `json:"results"`
	MergedExecutions int64         `json:"merged_executions"` // over live results
	MergedViolations int64         `json:"merged_violations"`
	Drained          bool          `json:"drained"` // ready to finalize
}

// Status inspects runDir's ledger without joining or mutating it.
func Status(runDir string) (*RunStatus, error) {
	l, err := inspect(runDir)
	if err != nil {
		return nil, err
	}
	st, err := l.scan()
	if err != nil {
		return nil, err
	}
	rs := &RunStatus{LedgerEpoch: l.epoch, LeaseTTLNS: int64(l.ttl)}
	owners := map[string]bool{}
	now := l.now().UnixNano()
	for id, t := range st.tasks {
		if !st.resultAtOrAbove(id, t.Epoch) && !st.superseded(id, t.Epoch, t.Lineage) {
			rs.TasksPending++
		}
	}
	var leaseIDs []string
	for id := range st.leases {
		leaseIDs = append(leaseIDs, id)
	}
	sort.Strings(leaseIDs)
	for _, id := range leaseIDs {
		ls := st.leases[id]
		owners[ls.Owner] = true
		expired := ls.ExpiresUnixNano <= now
		if expired {
			rs.LeasesExpired++
		} else {
			rs.LeasesLive++
		}
		rs.Leases = append(rs.Leases, LeaseStatus{
			ID: id, Owner: ls.Owner, Epoch: ls.Epoch,
			Expired: expired, ExpiresUnixNano: ls.ExpiresUnixNano,
		})
	}
	for id, epochs := range st.results {
		top := epochs[0]
		for _, e := range epochs[1:] {
			if e > top {
				top = e
			}
		}
		var r Result
		if !readJSON(filepath.Join(l.dir, resultsDir, resultName(id, top)), &r) {
			continue
		}
		if st.superseded(r.ID, r.Epoch, r.Lineage) {
			continue
		}
		rs.Results++
		owners[r.Owner] = true
		rs.MergedExecutions += r.Executions
		rs.MergedViolations += r.Violations
	}
	for o := range owners {
		rs.Participants = append(rs.Participants, o)
	}
	sort.Strings(rs.Participants)
	rs.Drained = rs.TasksPending == 0 && len(st.leases) == 0 && rs.Results > 0
	return rs, nil
}

// inspect builds a read-only handle on an existing ledger: the marker must
// already exist (use Join to create one).
func inspect(runDir string) (*Ledger, error) {
	dir := filepath.Join(runDir, ledgerDir)
	if _, err := os.Stat(filepath.Join(dir, markerFile)); err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoLedger, runDir)
	}
	mk, err := readMarker(dir)
	if err != nil {
		return nil, err
	}
	return &Ledger{
		dir:   dir,
		owner: "(inspect)",
		epoch: mk.LedgerEpoch,
		ttl:   time.Duration(mk.LeaseTTLNS),
		now:   time.Now,
	}, nil
}
