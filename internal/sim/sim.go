// Package sim implements the shared-memory execution model of Section 2 of
// the paper as a deterministic cooperative simulator.
//
// A fixed collection of virtual processes communicates through shared
// objects. Each shared-object operation (invocation and response folded
// together) is one atomic step; between steps a process performs only local
// computation, which is invisible to other processes and therefore needs no
// scheduling decision. A pluggable Scheduler chooses which process takes the
// next step, so an execution is an alternating sequence of states and steps
// fully determined by (programs, scheduler choices, fault choices) — the
// property the model checker in internal/explore relies on.
//
// Mechanically, every process runs in its own goroutine but is gated: before
// each atomic step it parks and waits for a grant from the runner. The runner
// grants exactly one process at a time, so the simulation is sequentially
// consistent and race-free by construction even though programs are written
// as ordinary straight-line Go code.
//
// The process goroutines live in an Arena, which is reusable: the model
// checker replays millions of executions, and respawning goroutines and
// channels per replay used to dominate its profile. Run starts each slot's
// current program over the arena's long-lived goroutines; when an execution
// ends early, parked processes are unwound back to their slots with an
// abort grant, so the next Run starts from a clean arena. One-shot callers
// use Run/RunContext, which wrap a single-use Arena.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/trace"
	"repro/internal/word"
)

// Program is the code of one process: it receives its process handle and
// returns its decision value. Programs must be deterministic and must touch
// shared state only through Proc.Exec (shared objects do this internally).
type Program func(p *Proc) word.Word

// Scheduler picks the next process to take an atomic step.
type Scheduler interface {
	// Next receives the ids of processes currently able to step, sorted
	// ascending and non-empty, and returns the chosen id. Returning
	// ok=false stops the execution immediately, abandoning the remaining
	// processes — the adversarial "halt" used by covering arguments.
	Next(enabled []int) (id int, ok bool)
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(enabled []int) (int, bool)

// Next implements Scheduler.
func (f SchedulerFunc) Next(enabled []int) (int, bool) { return f(enabled) }

// Config describes one execution.
type Config struct {
	// Programs holds one program per process; process ids are indices.
	Programs []Program
	// Scheduler chooses the interleaving. Required.
	Scheduler Scheduler
	// StepLimit bounds the number of atomic steps any single process may
	// take. Exceeding it is reported as a wait-freedom violation. 0 means
	// DefaultStepLimit.
	StepLimit int
	// Log, when non-nil, records every step. Shared objects append their
	// events through Proc.Record.
	Log *trace.Log
	// Observer, when non-nil, is called synchronously after each recorded
	// event. Adversaries use it to track protocol behaviour.
	Observer func(trace.Event)
}

// DefaultStepLimit is the per-process step bound used when Config.StepLimit
// is zero. It is deliberately large: protocols declare their own bounds.
const DefaultStepLimit = 1 << 20

// Result describes a completed (or stopped) execution.
type Result struct {
	// Decided[i] reports whether process i returned a decision.
	Decided []bool
	// Decisions[i] is process i's decision value (valid when Decided[i]).
	Decisions []word.Word
	// Steps[i] is the number of atomic steps process i took.
	Steps []int
	// Stalled[i] reports that process i was parked forever by a
	// nonresponsive fault.
	Stalled []bool
	// Stopped reports that the scheduler abandoned the execution while
	// some processes had not decided.
	Stopped bool
	// Log is the recorded trace (nil if none was configured).
	Log *trace.Log
}

// DecidedValues returns the decisions of all processes that decided.
func (r *Result) DecidedValues() []word.Word {
	var out []word.Word
	for i, ok := range r.Decided {
		if ok {
			out = append(out, r.Decisions[i])
		}
	}
	return out
}

// ErrWaitFreedom reports a process exceeding its step limit: under a correct
// wait-free protocol and budget-respecting faults this must never happen.
var ErrWaitFreedom = errors.New("sim: step limit exceeded (wait-freedom violation)")

// PanicError wraps a panic raised inside a program.
type PanicError struct {
	Proc  int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %d panicked: %v", e.Proc, e.Value)
}

type eventKind int

const (
	evParked   eventKind = iota // process waits for its next step grant
	evFinished                  // process returned a decision
	evStalled                   // process parked forever (nonresponsive fault)
	evPanicked                  // process panicked
	evAborted                   // process unwound back to its arena slot
)

type procEvent struct {
	id       int
	kind     eventKind
	decision word.Word
	panicVal any
}

// grantMsg is one step grant. abort unwinds the process back to its arena
// slot instead of granting the step (the execution ended without it).
type grantMsg struct {
	abort bool
}

// abortSignal is panicked inside abandoned process goroutines and recovered
// by the arena slot, which acknowledges the unwind with evAborted.
type abortSignal struct{}

// stallSignal is panicked by Proc.Stall to unwind a nonresponsive process.
type stallSignal struct{}

// Proc is the handle a program uses to interact with the simulation. Proc
// handles are owned by the arena and stable across its runs, so callers may
// bind per-process state (object environments) to them once.
type Proc struct {
	id int
	a  *Arena
}

// ID returns the process id (its index in Config.Programs).
func (p *Proc) ID() int { return p.id }

// PendingOp describes the shared-memory operation a parked process will
// perform on its next grant. Known is false for operations that did not
// declare themselves (plain Exec callers: registers, test programs) — the
// partial-order reducer must then treat the step as potentially conflicting
// with everything.
type PendingOp struct {
	Known bool
	Obj   int
	Exp   word.Word
	New   word.Word
}

// Exec performs one atomic step: it parks until the scheduler grants this
// process the next step, runs op, and returns. op runs while the process
// exclusively holds the step token, so it may freely touch shared objects.
func (p *Proc) Exec(op func()) {
	a := p.a
	a.pending[p.id] = PendingOp{}
	a.events <- procEvent{id: p.id, kind: evParked}
	if g := <-a.grant[p.id]; g.abort {
		panic(abortSignal{})
	}
	op()
}

// ExecCAS is Exec for a CAS step: identical gating, but the object index and
// CAS arguments are published as the process's PendingOp before it parks
// (the park event's channel send orders the write before any runner read),
// so the scheduler can compute step independence without granting the step.
func (p *Proc) ExecCAS(obj int, exp, new word.Word, op func()) {
	a := p.a
	a.pending[p.id] = PendingOp{Known: true, Obj: obj, Exp: exp, New: new}
	a.events <- procEvent{id: p.id, kind: evParked}
	if g := <-a.grant[p.id]; g.abort {
		panic(abortSignal{})
	}
	op()
}

// Record appends an event to the execution trace and notifies the observer.
// It must be called only from inside an Exec op (shared objects do).
func (p *Proc) Record(e trace.Event) { p.a.record(e) }

// Stall parks the process forever, modeling a nonresponsive fault: the
// operation never returns, and the process never decides. It must be called
// from inside an Exec op.
func (p *Proc) Stall() {
	panic(stallSignal{})
}

// Arena is a reusable pool of gated process goroutines plus the runner state
// of one execution. An Arena is built for a fixed process count; Run
// executes one configuration over it, and the same arena can run any number
// of executions in sequence. An Arena is not safe for concurrent Runs; the
// parallel exploration engine gives each worker its own.
type Arena struct {
	n      int
	procs  []*Proc
	start  []chan Program
	grant  []chan grantMsg
	events chan procEvent
	closed bool

	// Per-run state, reset by Run. The result slices are owned by the
	// arena: a Result returned by Run is valid only until the next Run.
	cfg       Config
	decided   []bool
	decisions []word.Word
	steps     []int
	stalled   []bool
	parked    []bool
	pending   []PendingOp
	enabled   []int
	early     []int
	liveCount int // processes neither finished nor stalled nor panicked
	res       Result
}

// NewArena starts n process goroutines and returns the arena managing them.
// Callers must Close the arena to release the goroutines.
func NewArena(n int) *Arena {
	if n <= 0 {
		panic("sim: arena needs at least one process")
	}
	a := &Arena{
		n:     n,
		procs: make([]*Proc, n),
		start: make([]chan Program, n),
		grant: make([]chan grantMsg, n),
		// Buffered to n: every process has at most one unconsumed event
		// in flight, so sends never block and need no abort select.
		events:    make(chan procEvent, n),
		decided:   make([]bool, n),
		decisions: make([]word.Word, n),
		steps:     make([]int, n),
		stalled:   make([]bool, n),
		parked:    make([]bool, n),
		pending:   make([]PendingOp, n),
		enabled:   make([]int, 0, n),
		early:     make([]int, 0, n),
	}
	for i := 0; i < n; i++ {
		a.procs[i] = &Proc{id: i, a: a}
		a.start[i] = make(chan Program, 1)
		a.grant[i] = make(chan grantMsg, 1)
		go a.slotMain(i)
	}
	return a
}

// Procs returns the arena's stable process handles, indexed by process id.
// They are the handles every Run passes to its programs, so environments
// bound to them (run.BoundPrograms) stay valid across runs.
func (a *Arena) Procs() []*Proc { return a.procs }

// Pending returns the declared next operation of process id. It is
// meaningful only while the process is parked (the ids a Scheduler.Next call
// received as enabled); at any other moment it may describe a step already
// taken.
func (a *Arena) Pending(id int) PendingOp { return a.pending[id] }

// Close releases the arena's process goroutines. The arena must be idle (no
// Run in progress). Close is idempotent.
func (a *Arena) Close() {
	if a.closed {
		return
	}
	a.closed = true
	for _, ch := range a.start {
		close(ch)
	}
}

// slotMain is one process slot: it runs each program handed to it and
// survives aborts, stalls, and panics, so the goroutine is reusable.
func (a *Arena) slotMain(id int) {
	p := a.procs[id]
	for prog := range a.start[id] {
		a.runProgram(p, prog)
	}
}

func (a *Arena) runProgram(p *Proc, prog Program) {
	defer func() {
		switch v := recover(); v.(type) {
		case nil:
		case abortSignal:
			a.events <- procEvent{id: p.id, kind: evAborted}
		case stallSignal:
			a.events <- procEvent{id: p.id, kind: evStalled}
		default:
			a.events <- procEvent{id: p.id, kind: evPanicked, panicVal: v}
		}
	}()
	dec := prog(p)
	a.events <- procEvent{id: p.id, kind: evFinished, decision: dec}
}

func (a *Arena) record(e trace.Event) {
	if a.cfg.Log != nil {
		a.cfg.Log.Append(e)
		if a.cfg.Observer != nil {
			e.Index = a.cfg.Log.Len() - 1
			a.cfg.Observer(e)
		}
		return
	}
	if a.cfg.Observer != nil {
		a.cfg.Observer(e)
	}
}

// Run executes one simulation over the arena and returns its result. The
// returned Result's slices are owned by the arena and are invalidated by
// the next Run; one-shot callers (RunContext) are unaffected.
//
// The execution ends when every process has decided (or stalled), when the
// scheduler stops it, when ctx is cancelled between steps (the partial
// result is returned together with ctx.Err(), marked Stopped), or when an
// error (wait-freedom violation, panic) occurs. Run never returns both a
// nil Result and a nil error.
func (a *Arena) Run(ctx context.Context, cfg Config) (*Result, error) {
	if a.closed {
		return nil, errors.New("sim: arena closed")
	}
	if len(cfg.Programs) != a.n {
		return nil, fmt.Errorf("sim: %d programs for a %d-process arena", len(cfg.Programs), a.n)
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: no scheduler")
	}
	limit := cfg.StepLimit
	if limit <= 0 {
		limit = DefaultStepLimit
	}

	a.cfg = cfg
	for i := 0; i < a.n; i++ {
		a.decided[i] = false
		a.decisions[i] = word.Bottom
		a.steps[i] = 0
		a.stalled[i] = false
		a.parked[i] = false
		a.pending[i] = PendingOp{}
	}
	a.liveCount = a.n
	a.early = a.early[:0]
	// Whatever happens, unwind parked processes back to their slots on
	// exit, so the arena is clean for its next Run.
	defer a.unwind()

	for i, prog := range cfg.Programs {
		a.start[i] <- prog
	}

	// Collection phase: wait until every process is parked at its first
	// step or already finished. Processes that finish without taking any
	// step have their decide events appended afterwards in id order, so
	// the trace stays deterministic despite concurrent starts. The phase
	// always drains all n events — even after a panic — so no event of
	// this run can leak into the next one.
	var startErr error
	for pending := a.n; pending > 0; pending-- {
		ev := <-a.events
		switch ev.kind {
		case evParked:
			a.parked[ev.id] = true
		case evFinished:
			a.decided[ev.id] = true
			a.decisions[ev.id] = ev.decision
			a.liveCount--
			a.early = append(a.early, ev.id)
		case evPanicked:
			a.liveCount--
			if startErr == nil {
				startErr = &PanicError{Proc: ev.id, Value: ev.panicVal}
			}
		case evStalled:
			// Cannot happen before the first grant.
			a.liveCount--
			if startErr == nil {
				startErr = fmt.Errorf("sim: process %d stalled before its first step", ev.id)
			}
		}
	}
	if startErr != nil {
		return nil, startErr
	}
	sort.Ints(a.early)
	for _, id := range a.early {
		a.record(trace.Event{Kind: trace.EventDecide, Proc: id, Value: a.decisions[id]})
	}

	// Main loop: grant one step at a time.
	for a.liveCount > 0 {
		if err := ctx.Err(); err != nil {
			return a.result(true), err
		}
		a.enabled = a.enabled[:0]
		for id := 0; id < a.n; id++ {
			if a.parked[id] {
				a.enabled = append(a.enabled, id)
			}
		}
		if len(a.enabled) == 0 {
			// All live processes are stalled: nothing can ever step.
			break
		}
		pick, ok := cfg.Scheduler.Next(a.enabled)
		if !ok {
			return a.result(true), nil
		}
		if pick < 0 || pick >= a.n || !a.parked[pick] {
			return nil, fmt.Errorf("sim: scheduler picked process %d which is not enabled", pick)
		}
		a.steps[pick]++
		if a.steps[pick] > limit {
			return a.result(false), fmt.Errorf("%w: process %d exceeded %d steps", ErrWaitFreedom, pick, limit)
		}
		a.parked[pick] = false
		a.grant[pick] <- grantMsg{}

		// Only the granted process can emit the next event: everyone
		// else is blocked waiting for a grant.
		ev := <-a.events
		switch ev.kind {
		case evParked:
			a.parked[ev.id] = true
		case evFinished:
			a.decided[ev.id] = true
			a.decisions[ev.id] = ev.decision
			a.liveCount--
			a.record(trace.Event{Kind: trace.EventDecide, Proc: ev.id, Value: ev.decision})
		case evStalled:
			a.stalled[ev.id] = true
			a.liveCount--
		case evPanicked:
			a.liveCount--
			return nil, &PanicError{Proc: ev.id, Value: ev.panicVal}
		}
	}
	return a.result(false), nil
}

// unwind aborts every parked process and waits for each to acknowledge that
// it returned to its slot. At every Run exit the non-parked processes have
// already reported their final event, so after unwind the events channel is
// empty and all slots are idle.
func (a *Arena) unwind() {
	aborting := 0
	for id := 0; id < a.n; id++ {
		if a.parked[id] {
			a.grant[id] <- grantMsg{abort: true}
			aborting++
		}
	}
	for ; aborting > 0; aborting-- {
		ev := <-a.events
		if ev.kind != evAborted {
			panic(fmt.Sprintf("sim: event kind %d during unwind", ev.kind))
		}
		a.parked[ev.id] = false
	}
}

func (a *Arena) result(stopped bool) *Result {
	a.res = Result{
		Decided:   a.decided,
		Decisions: a.decisions,
		Steps:     a.steps,
		Stalled:   a.stalled,
		Stopped:   stopped,
		Log:       a.cfg.Log,
	}
	return &a.res
}

// Run executes one simulation to completion and returns its result.
//
// The execution ends when every process has decided (or stalled), when the
// scheduler stops it, or when an error (wait-freedom violation, panic)
// occurs. Run never returns both a nil Result and a nil error.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline passes) between steps, the execution is abandoned and the partial
// result is returned together with ctx.Err(). The result is marked Stopped,
// like an execution the scheduler halted, since the remaining processes were
// abandoned rather than left behind by the protocol.
//
// RunContext is the one-shot form: it builds a single-use Arena and closes
// it before returning. Repeated replays (the model checker's hot path)
// should hold an Arena and call its Run directly.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Programs) == 0 {
		return nil, errors.New("sim: no programs")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: no scheduler")
	}
	a := NewArena(len(cfg.Programs))
	defer a.Close()
	return a.Run(ctx, cfg)
}
