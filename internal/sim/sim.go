// Package sim implements the shared-memory execution model of Section 2 of
// the paper as a deterministic cooperative simulator.
//
// A fixed collection of virtual processes communicates through shared
// objects. Each shared-object operation (invocation and response folded
// together) is one atomic step; between steps a process performs only local
// computation, which is invisible to other processes and therefore needs no
// scheduling decision. A pluggable Scheduler chooses which process takes the
// next step, so an execution is an alternating sequence of states and steps
// fully determined by (programs, scheduler choices, fault choices) — the
// property the model checker in internal/explore relies on.
//
// Mechanically, every process runs in its own goroutine but is gated: before
// each atomic step it parks and waits for a grant from the runner. The runner
// grants exactly one process at a time, so the simulation is sequentially
// consistent and race-free by construction even though programs are written
// as ordinary straight-line Go code.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/trace"
	"repro/internal/word"
)

// Program is the code of one process: it receives its process handle and
// returns its decision value. Programs must be deterministic and must touch
// shared state only through Proc.Exec (shared objects do this internally).
type Program func(p *Proc) word.Word

// Scheduler picks the next process to take an atomic step.
type Scheduler interface {
	// Next receives the ids of processes currently able to step, sorted
	// ascending and non-empty, and returns the chosen id. Returning
	// ok=false stops the execution immediately, abandoning the remaining
	// processes — the adversarial "halt" used by covering arguments.
	Next(enabled []int) (id int, ok bool)
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(enabled []int) (int, bool)

// Next implements Scheduler.
func (f SchedulerFunc) Next(enabled []int) (int, bool) { return f(enabled) }

// Config describes one execution.
type Config struct {
	// Programs holds one program per process; process ids are indices.
	Programs []Program
	// Scheduler chooses the interleaving. Required.
	Scheduler Scheduler
	// StepLimit bounds the number of atomic steps any single process may
	// take. Exceeding it is reported as a wait-freedom violation. 0 means
	// DefaultStepLimit.
	StepLimit int
	// Log, when non-nil, records every step. Shared objects append their
	// events through Proc.Record.
	Log *trace.Log
	// Observer, when non-nil, is called synchronously after each recorded
	// event. Adversaries use it to track protocol behaviour.
	Observer func(trace.Event)
}

// DefaultStepLimit is the per-process step bound used when Config.StepLimit
// is zero. It is deliberately large: protocols declare their own bounds.
const DefaultStepLimit = 1 << 20

// Result describes a completed (or stopped) execution.
type Result struct {
	// Decided[i] reports whether process i returned a decision.
	Decided []bool
	// Decisions[i] is process i's decision value (valid when Decided[i]).
	Decisions []word.Word
	// Steps[i] is the number of atomic steps process i took.
	Steps []int
	// Stalled[i] reports that process i was parked forever by a
	// nonresponsive fault.
	Stalled []bool
	// Stopped reports that the scheduler abandoned the execution while
	// some processes had not decided.
	Stopped bool
	// Log is the recorded trace (nil if none was configured).
	Log *trace.Log
}

// DecidedValues returns the decisions of all processes that decided.
func (r *Result) DecidedValues() []word.Word {
	var out []word.Word
	for i, ok := range r.Decided {
		if ok {
			out = append(out, r.Decisions[i])
		}
	}
	return out
}

// ErrWaitFreedom reports a process exceeding its step limit: under a correct
// wait-free protocol and budget-respecting faults this must never happen.
var ErrWaitFreedom = errors.New("sim: step limit exceeded (wait-freedom violation)")

// PanicError wraps a panic raised inside a program.
type PanicError struct {
	Proc  int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %d panicked: %v", e.Proc, e.Value)
}

type eventKind int

const (
	evParked   eventKind = iota // process waits for its next step grant
	evFinished                  // process returned a decision
	evStalled                   // process parked forever (nonresponsive fault)
	evPanicked                  // process panicked
)

type procEvent struct {
	id       int
	kind     eventKind
	decision word.Word
	panicVal any
}

// abortSignal is panicked inside abandoned process goroutines and swallowed
// by the process wrapper.
type abortSignal struct{}

// stallSignal is panicked by Proc.Stall to unwind a nonresponsive process.
type stallSignal struct{}

// Proc is the handle a program uses to interact with the simulation.
type Proc struct {
	id int
	r  *runner
}

// ID returns the process id (its index in Config.Programs).
func (p *Proc) ID() int { return p.id }

// Exec performs one atomic step: it parks until the scheduler grants this
// process the next step, runs op, and returns. op runs while the process
// exclusively holds the step token, so it may freely touch shared objects.
func (p *Proc) Exec(op func()) {
	r := p.r
	select {
	case r.events <- procEvent{id: p.id, kind: evParked}:
	case <-r.abort:
		panic(abortSignal{})
	}
	select {
	case <-r.grant[p.id]:
	case <-r.abort:
		panic(abortSignal{})
	}
	op()
}

// Record appends an event to the execution trace and notifies the observer.
// It must be called only from inside an Exec op (shared objects do).
func (p *Proc) Record(e trace.Event) { p.r.record(e) }

// Stall parks the process forever, modeling a nonresponsive fault: the
// operation never returns, and the process never decides. It must be called
// from inside an Exec op.
func (p *Proc) Stall() {
	panic(stallSignal{})
}

type runner struct {
	cfg    Config
	n      int
	grant  []chan struct{}
	events chan procEvent
	abort  chan struct{}

	decided   []bool
	decisions []word.Word
	steps     []int
	stalled   []bool
	parked    []bool
	liveCount int // processes neither finished nor stalled nor panicked
}

func (r *runner) record(e trace.Event) {
	if r.cfg.Log != nil {
		r.cfg.Log.Append(e)
		if r.cfg.Observer != nil {
			evs := r.cfg.Log.Events()
			r.cfg.Observer(evs[len(evs)-1])
		}
		return
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer(e)
	}
}

// Run executes one simulation to completion and returns its result.
//
// The execution ends when every process has decided (or stalled), when the
// scheduler stops it, or when an error (wait-freedom violation, panic)
// occurs. Run never returns both a nil Result and a nil error.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline passes) between steps, the execution is abandoned and the partial
// result is returned together with ctx.Err(). The result is marked Stopped,
// like an execution the scheduler halted, since the remaining processes were
// abandoned rather than left behind by the protocol. The parallel
// exploration engine relies on this to stop all workers promptly once a
// counterexample is found or a deadline hits.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Programs) == 0 {
		return nil, errors.New("sim: no programs")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: no scheduler")
	}
	limit := cfg.StepLimit
	if limit <= 0 {
		limit = DefaultStepLimit
	}

	n := len(cfg.Programs)
	r := &runner{
		cfg:       cfg,
		n:         n,
		grant:     make([]chan struct{}, n),
		events:    make(chan procEvent),
		abort:     make(chan struct{}),
		decided:   make([]bool, n),
		decisions: make([]word.Word, n),
		steps:     make([]int, n),
		stalled:   make([]bool, n),
		parked:    make([]bool, n),
		liveCount: n,
	}
	for i := range r.grant {
		r.grant[i] = make(chan struct{})
	}

	for i, prog := range cfg.Programs {
		go r.procMain(i, prog)
	}
	// Whatever happens, release abandoned goroutines on exit.
	defer close(r.abort)

	// Collection phase: wait until every process is parked at its first
	// step or already finished. Processes that finish without taking any
	// step have their decide events appended afterwards in id order, so
	// the trace stays deterministic despite concurrent starts.
	earlyFinish := []int{}
	pending := n
	for pending > 0 {
		ev := <-r.events
		switch ev.kind {
		case evParked:
			r.parked[ev.id] = true
		case evFinished:
			r.decided[ev.id] = true
			r.decisions[ev.id] = ev.decision
			r.liveCount--
			earlyFinish = append(earlyFinish, ev.id)
		case evPanicked:
			return nil, &PanicError{Proc: ev.id, Value: ev.panicVal}
		case evStalled:
			// Cannot happen before the first grant.
			return nil, fmt.Errorf("sim: process %d stalled before its first step", ev.id)
		}
		pending--
	}
	sort.Ints(earlyFinish)
	for _, id := range earlyFinish {
		r.record(trace.Event{Kind: trace.EventDecide, Proc: id, Value: r.decisions[id]})
	}

	// Main loop: grant one step at a time.
	for r.liveCount > 0 {
		if err := ctx.Err(); err != nil {
			return r.result(true), err
		}
		enabled := make([]int, 0, n)
		for id := 0; id < n; id++ {
			if r.parked[id] {
				enabled = append(enabled, id)
			}
		}
		if len(enabled) == 0 {
			// All live processes are stalled: nothing can ever step.
			break
		}
		pick, ok := cfg.Scheduler.Next(enabled)
		if !ok {
			return r.result(true), nil
		}
		if !r.parked[pick] {
			return nil, fmt.Errorf("sim: scheduler picked process %d which is not enabled", pick)
		}
		r.steps[pick]++
		if r.steps[pick] > limit {
			return r.result(false), fmt.Errorf("%w: process %d exceeded %d steps", ErrWaitFreedom, pick, limit)
		}
		r.parked[pick] = false
		r.grant[pick] <- struct{}{}

		// Only the granted process can emit the next event: everyone
		// else is blocked waiting for a grant.
		ev := <-r.events
		switch ev.kind {
		case evParked:
			r.parked[ev.id] = true
		case evFinished:
			r.decided[ev.id] = true
			r.decisions[ev.id] = ev.decision
			r.liveCount--
			r.record(trace.Event{Kind: trace.EventDecide, Proc: ev.id, Value: ev.decision})
		case evStalled:
			r.stalled[ev.id] = true
			r.liveCount--
		case evPanicked:
			return nil, &PanicError{Proc: ev.id, Value: ev.panicVal}
		}
	}
	return r.result(false), nil
}

func (r *runner) result(stopped bool) *Result {
	return &Result{
		Decided:   r.decided,
		Decisions: r.decisions,
		Steps:     r.steps,
		Stalled:   r.stalled,
		Stopped:   stopped,
		Log:       r.cfg.Log,
	}
}

func (r *runner) procMain(id int, prog Program) {
	defer func() {
		switch v := recover(); v.(type) {
		case nil:
		case abortSignal:
			// Execution abandoned; exit silently.
		case stallSignal:
			select {
			case r.events <- procEvent{id: id, kind: evStalled}:
			case <-r.abort:
			}
		default:
			select {
			case r.events <- procEvent{id: id, kind: evPanicked, panicVal: v}:
			case <-r.abort:
			}
		}
	}()
	dec := prog(&Proc{id: id, r: r})
	select {
	case r.events <- procEvent{id: id, kind: evFinished, decision: dec}:
	case <-r.abort:
	}
}
