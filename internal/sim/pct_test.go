package sim

import (
	"testing"

	"repro/internal/word"
)

func TestPCTRunsAllProcessesToCompletion(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		for i := 0; i < 4; i++ {
			c.Incr(p)
		}
		return word.FromValue(int64(p.ID()))
	}
	for seed := int64(0); seed < 20; seed++ {
		c.n, c.order = 0, nil
		res, err := Run(Config{
			Programs:  []Program{prog, prog, prog},
			Scheduler: NewPCT(seed, 12, 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, ok := range res.Decided {
			if !ok {
				t.Fatalf("seed %d: process %d never decided (PCT starved it)", seed, i)
			}
		}
		if c.n != 12 {
			t.Fatalf("seed %d: counter = %d", seed, c.n)
		}
	}
}

func TestPCTProducesSoloBursts(t *testing.T) {
	// Without change points (depth 1), PCT runs strict priority order:
	// one process runs solo to completion, then the next — exactly the
	// shape the impossibility proofs need.
	c := &counter{}
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		c.Incr(p)
		return word.Bottom
	}
	_, err := Run(Config{
		Programs:  []Program{prog, prog},
		Scheduler: NewPCT(3, 4, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The order must be a solo burst: [a a b b] for some a ≠ b.
	if c.order[0] != c.order[1] || c.order[2] != c.order[3] || c.order[0] == c.order[2] {
		t.Fatalf("depth-1 PCT order = %v, want two solo bursts", c.order)
	}
}

func TestPCTSeedDeterminism(t *testing.T) {
	runOnce := func(seed int64) []int {
		c := &counter{}
		prog := func(p *Proc) word.Word {
			for i := 0; i < 3; i++ {
				c.Incr(p)
			}
			return word.Bottom
		}
		if _, err := Run(Config{
			Programs:  []Program{prog, prog, prog},
			Scheduler: NewPCT(seed, 9, 3),
		}); err != nil {
			t.Fatal(err)
		}
		return c.order
	}
	a, b := runOnce(11), runOnce(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestPCTParameterClamping(t *testing.T) {
	s := NewPCT(1, 0, 0) // degenerate params must not panic
	if pick, ok := s.Next([]int{0, 1}); !ok || (pick != 0 && pick != 1) {
		t.Fatalf("pick = %d, ok = %v", pick, ok)
	}
}
