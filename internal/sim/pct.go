package sim

import "math/rand"

// PCT is a probabilistic concurrency testing scheduler (Burckhardt et al.):
// every process gets a random distinct priority, the highest-priority
// enabled process always runs, and at d−1 random step indices the running
// priorities are perturbed by demoting the current leader to the bottom.
//
// For bugs of "depth" d (requiring d ordering constraints), PCT finds a
// triggering schedule with probability ≥ 1/(n·k^(d−1)) per run — usually
// far better than uniform random walks, because it produces long solo
// bursts punctuated by a few adversarial preemptions. The paper's
// impossibility executions have exactly that shape (solo runs + targeted
// switches), which makes PCT a natural stress engine for them.
type PCT struct {
	rng          *rand.Rand
	priority     map[int]int
	nextBottom   int
	step         int
	changePoints map[int]bool
}

// NewPCT returns a PCT scheduler. maxSteps estimates the execution length
// (change points are drawn uniformly from [1, maxSteps]); depth is the
// targeted bug depth d (d−1 priority change points).
func NewPCT(seed int64, maxSteps, depth int) *PCT {
	if maxSteps < 1 {
		maxSteps = 1
	}
	if depth < 1 {
		depth = 1
	}
	rng := rand.New(rand.NewSource(seed))
	cps := make(map[int]bool, depth-1)
	for i := 0; i < depth-1; i++ {
		cps[1+rng.Intn(maxSteps)] = true
	}
	return &PCT{
		rng:          rng,
		priority:     make(map[int]int),
		changePoints: cps,
	}
}

// Next implements Scheduler.
func (s *PCT) Next(enabled []int) (int, bool) {
	s.step++

	// Assign initial priorities lazily: a fresh random priority above the
	// demotion floor, so the relative order of processes is uniformly
	// random (ties broken by lower id, deterministically).
	for _, id := range enabled {
		if _, ok := s.priority[id]; !ok {
			s.priority[id] = s.rng.Intn(1 << 30)
		}
	}

	// Highest-priority enabled process runs.
	best := enabled[0]
	for _, id := range enabled[1:] {
		if s.priority[id] > s.priority[best] {
			best = id
		}
	}

	// Priority change point: demote the leader below everyone.
	if s.changePoints[s.step] {
		s.nextBottom--
		s.priority[best] = s.nextBottom
		// Re-pick after the demotion.
		best = enabled[0]
		for _, id := range enabled[1:] {
			if s.priority[id] > s.priority[best] {
				best = id
			}
		}
	}
	return best, true
}
