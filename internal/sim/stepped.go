// The stepped runner is the compiled counterpart of the goroutine-gated
// Arena: it executes an entire schedule in one tight loop on the calling
// goroutine. Where the Arena suspends each process inside a blocked Program
// closure (park, grant, channel handshake — two scheduler hops per atomic
// step), the stepped runner advances explicitly resumable state machines
// (core.Stepper, adapted through SteppedProgram), so granting a step is a
// plain function call. The Arena remains the reference semantics; the
// stepped runner reproduces its observable behaviour exactly — same
// scheduling decisions, same step accounting, same trace events in the same
// order, same errors byte for byte — which explore.CrossCheck and the
// differential fuzz tests enforce.
package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/trace"
	"repro/internal/word"
)

// SteppedProgram is the code of all processes of one stepped execution, in
// resumable form. Begin initializes process id's machine (local computation
// only — no shared-memory operation and no recording); each Step call
// performs process id's next atomic step, records its trace events through
// rec, and reports how the process left the step. One Step call must
// perform exactly one shared-object operation: it is the unit the scheduler
// granted, and the step accounting (wait-freedom bounds) counts Step calls.
type SteppedProgram interface {
	Begin(id int)
	Step(id int, rec *StepRecorder) StepOutcome
}

// StepOutcome reports how a process left one granted step.
type StepOutcome struct {
	// Done means the process decided (in this step) with Decision.
	Done bool
	// Stalled means a nonresponsive fault parked the process forever; it
	// takes no further steps and never decides. Stalled overrides Done.
	Stalled bool
	// Decision is the decided value (valid when Done).
	Decision word.Word
}

// StepRecorder appends events to the execution trace on behalf of the
// process taking the current step — the stepped counterpart of Proc.Record.
type StepRecorder struct {
	log      *trace.Log
	observer func(trace.Event)
}

// Record appends an event to the trace and notifies the observer, exactly
// as Arena.record does: the observer sees the event with its log index.
func (r *StepRecorder) Record(e trace.Event) {
	if r.log != nil {
		r.log.Append(e)
		if r.observer != nil {
			e.Index = r.log.Len() - 1
			r.observer(e)
		}
		return
	}
	if r.observer != nil {
		r.observer(e)
	}
}

// SteppedConfig describes one stepped execution. The fields mirror Config;
// Programs is replaced by the resumable Program plus the process count.
type SteppedConfig struct {
	// Procs is the number of processes; process ids are 0..Procs-1.
	Procs int
	// Program is the resumable code of all processes. Required.
	Program SteppedProgram
	// Scheduler chooses the interleaving. Required.
	Scheduler Scheduler
	// StepLimit bounds the number of atomic steps any single process may
	// take (0 means DefaultStepLimit), as in Config.
	StepLimit int
	// Log, when non-nil, records every step.
	Log *trace.Log
	// Observer, when non-nil, is called synchronously after each recorded
	// event.
	Observer func(trace.Event)
}

// Stepped is the reusable runner state for stepped executions — the
// counterpart of Arena for the compiled path. A Stepped is built for a
// fixed process count and can run any number of executions in sequence; it
// holds no goroutines, so there is nothing to Close. Not safe for
// concurrent Runs.
type Stepped struct {
	n         int
	decided   []bool
	decisions []word.Word
	steps     []int
	stalled   []bool
	runnable  []bool
	enabled   []int
	rec       StepRecorder
	res       Result
}

// NewStepped returns a reusable stepped runner for n processes.
func NewStepped(n int) *Stepped {
	if n <= 0 {
		panic("sim: stepped runner needs at least one process")
	}
	return &Stepped{
		n:         n,
		decided:   make([]bool, n),
		decisions: make([]word.Word, n),
		steps:     make([]int, n),
		stalled:   make([]bool, n),
		runnable:  make([]bool, n),
		enabled:   make([]int, 0, n),
	}
}

// Run executes one stepped simulation and returns its result. The returned
// Result's slices are owned by the runner and are invalidated by the next
// Run, exactly like Arena.Run. The termination conditions and error
// behaviour match Arena.Run: the execution ends when every process has
// decided (or stalled), when the scheduler stops it, when ctx is cancelled
// between steps (partial result plus ctx.Err(), marked Stopped), or on a
// wait-freedom violation or program panic. Run never returns both a nil
// Result and a nil error.
func (s *Stepped) Run(ctx context.Context, cfg SteppedConfig) (*Result, error) {
	if cfg.Procs != s.n {
		return nil, fmt.Errorf("sim: %d processes for a %d-process stepped runner", cfg.Procs, s.n)
	}
	if cfg.Program == nil {
		return nil, errors.New("sim: no program")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: no scheduler")
	}
	limit := cfg.StepLimit
	if limit <= 0 {
		limit = DefaultStepLimit
	}

	for i := 0; i < s.n; i++ {
		s.decided[i] = false
		s.decisions[i] = word.Bottom
		s.steps[i] = 0
		s.stalled[i] = false
		s.runnable[i] = true
	}
	s.rec = StepRecorder{log: cfg.Log, observer: cfg.Observer}
	live := s.n

	// Initialization phase: the counterpart of the Arena's collection
	// phase. Begin performs no shared-memory step, so afterwards every
	// process sits at its first step, exactly like a freshly parked
	// goroutine.
	for id := 0; id < s.n; id++ {
		if err := beginProc(cfg.Program, id); err != nil {
			return nil, err
		}
	}

	// Main loop: grant one step at a time. Structure and error strings
	// track Arena.Run exactly — the sequential checker's lex-least
	// counterexample guarantee rests on both forms consuming scheduler
	// decisions identically.
	for live > 0 {
		if err := ctx.Err(); err != nil {
			return s.result(cfg, true), err
		}
		s.enabled = s.enabled[:0]
		for id := 0; id < s.n; id++ {
			if s.runnable[id] {
				s.enabled = append(s.enabled, id)
			}
		}
		if len(s.enabled) == 0 {
			// All live processes are stalled: nothing can ever step.
			break
		}
		pick, ok := cfg.Scheduler.Next(s.enabled)
		if !ok {
			return s.result(cfg, true), nil
		}
		if pick < 0 || pick >= s.n || !s.runnable[pick] {
			return nil, fmt.Errorf("sim: scheduler picked process %d which is not enabled", pick)
		}
		s.steps[pick]++
		if s.steps[pick] > limit {
			return s.result(cfg, false), fmt.Errorf("%w: process %d exceeded %d steps", ErrWaitFreedom, pick, limit)
		}
		out, err := stepProc(cfg.Program, pick, &s.rec)
		if err != nil {
			return nil, err
		}
		switch {
		case out.Stalled:
			s.stalled[pick] = true
			s.runnable[pick] = false
			live--
		case out.Done:
			s.decided[pick] = true
			s.decisions[pick] = out.Decision
			s.runnable[pick] = false
			live--
			// The decide event follows the step's own events, as in the
			// goroutine path (the program returns after its final CAS).
			s.rec.Record(trace.Event{Kind: trace.EventDecide, Proc: pick, Value: out.Decision})
		}
	}
	return s.result(cfg, false), nil
}

// beginProc initializes one process, converting a panic into the same
// PanicError the Arena reports for a program panicking before its first
// step.
func beginProc(prog SteppedProgram, id int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Proc: id, Value: v}
		}
	}()
	prog.Begin(id)
	return nil
}

// stepProc advances one process by one step, converting a panic into the
// same PanicError the Arena reports for a program panicking mid-step.
func stepProc(prog SteppedProgram, id int, rec *StepRecorder) (out StepOutcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Proc: id, Value: v}
		}
	}()
	return prog.Step(id, rec), nil
}

func (s *Stepped) result(cfg SteppedConfig, stopped bool) *Result {
	s.res = Result{
		Decided:   s.decided,
		Decisions: s.decisions,
		Steps:     s.steps,
		Stalled:   s.stalled,
		Stopped:   stopped,
		Log:       cfg.Log,
	}
	return &s.res
}

// RunStepped executes one stepped simulation to completion — the one-shot
// form, mirroring RunContext. Repeated replays (the model checker's hot
// path) should hold a Stepped and call its Run directly.
func RunStepped(ctx context.Context, cfg SteppedConfig) (*Result, error) {
	if cfg.Procs <= 0 {
		return nil, errors.New("sim: no processes")
	}
	return NewStepped(cfg.Procs).Run(ctx, cfg)
}
