package sim

import "math/rand"

// RoundRobin cycles through enabled processes in id order, giving each one
// step in turn. It is the canonical "fair" interleaving.
type RoundRobin struct {
	last int
}

// NewRoundRobin returns a fresh round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Next implements Scheduler.
func (s *RoundRobin) Next(enabled []int) (int, bool) {
	for _, id := range enabled {
		if id > s.last {
			s.last = id
			return id, true
		}
	}
	s.last = enabled[0]
	return enabled[0], true
}

// Random picks uniformly among enabled processes from a deterministic seeded
// source, so a given seed replays the same interleaving.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (s *Random) Next(enabled []int) (int, bool) {
	return enabled[s.rng.Intn(len(enabled))], true
}

// Solo runs processes to completion one at a time in the given order: the
// first process runs until it decides, then the second, and so on. Processes
// absent from the order never run. Solo runs are the building block of the
// paper's impossibility executions ("p0 runs alone until it returns...").
type Solo struct {
	order []int
	pos   int
}

// NewSolo returns a scheduler running the given process ids sequentially.
func NewSolo(order ...int) *Solo { return &Solo{order: order} }

// Next implements Scheduler.
func (s *Solo) Next(enabled []int) (int, bool) {
	for s.pos < len(s.order) {
		want := s.order[s.pos]
		for _, id := range enabled {
			if id == want {
				return id, true
			}
		}
		// want has finished (or stalled); move to the next phase.
		s.pos++
	}
	return 0, false
}

// Crash wraps a scheduler with fail-stop process crashes: process id takes
// no further steps once it has executed afterSteps steps. Wait-freedom — the
// paper's §2 requirement that every process finishes regardless of the
// behavior of the others — is exactly the guarantee that survivors still
// decide under this scheduler.
type Crash struct {
	inner   Scheduler
	crashAt map[int]int // proc id -> steps after which it crashes
	taken   map[int]int
}

// NewCrash returns a scheduler that crashes each listed process after it
// has taken the given number of steps (0 = crashed from the start).
func NewCrash(inner Scheduler, crashAt map[int]int) *Crash {
	ca := make(map[int]int, len(crashAt))
	for id, n := range crashAt {
		ca[id] = n
	}
	return &Crash{inner: inner, crashAt: ca, taken: make(map[int]int)}
}

// Next implements Scheduler.
func (s *Crash) Next(enabled []int) (int, bool) {
	alive := enabled[:0:0]
	for _, id := range enabled {
		if limit, crashes := s.crashAt[id]; crashes && s.taken[id] >= limit {
			continue
		}
		alive = append(alive, id)
	}
	if len(alive) == 0 {
		return 0, false // only crashed processes remain
	}
	pick, ok := s.inner.Next(alive)
	if ok {
		s.taken[pick]++
	}
	return pick, ok
}

// Script replays a fixed sequence of process ids, one per step; when the
// script is exhausted (or the scripted process is not enabled) the execution
// stops. Used to replay recorded counterexamples exactly.
type Script struct {
	ids []int
	pos int
}

// NewScript returns a scheduler replaying the given step sequence.
func NewScript(ids ...int) *Script { return &Script{ids: ids} }

// Next implements Scheduler.
func (s *Script) Next(enabled []int) (int, bool) {
	if s.pos >= len(s.ids) {
		return 0, false
	}
	want := s.ids[s.pos]
	for _, id := range enabled {
		if id == want {
			s.pos++
			return id, true
		}
	}
	return 0, false
}
