package sim

import (
	"errors"
	"testing"

	"repro/internal/trace"
	"repro/internal/word"
)

// counter is a trivial shared object for testing the step machinery: each
// Incr is one atomic step recording who ran it.
type counter struct {
	n     int
	order []int
}

func (c *counter) Incr(p *Proc) int {
	var v int
	p.Exec(func() {
		c.n++
		v = c.n
		c.order = append(c.order, p.ID())
		p.Record(trace.Event{Kind: trace.EventWrite, Proc: p.ID(), Value: word.FromValue(int64(v))})
	})
	return v
}

func TestRunAllProcessesDecide(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		for i := 0; i < 3; i++ {
			c.Incr(p)
		}
		return word.FromValue(int64(p.ID()))
	}
	res, err := Run(Config{
		Programs:  []Program{prog, prog, prog},
		Scheduler: NewRoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !res.Decided[i] {
			t.Errorf("process %d did not decide", i)
		}
		if res.Decisions[i].Value() != int64(i) {
			t.Errorf("process %d decision = %s", i, res.Decisions[i])
		}
		if res.Steps[i] != 3 {
			t.Errorf("process %d took %d steps, want 3", i, res.Steps[i])
		}
	}
	if c.n != 9 {
		t.Errorf("counter = %d, want 9", c.n)
	}
}

func TestRoundRobinInterleavesFairly(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		c.Incr(p)
		return word.Bottom
	}
	_, err := Run(Config{
		Programs:  []Program{prog, prog},
		Scheduler: NewRoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1}
	if len(c.order) != len(want) {
		t.Fatalf("order = %v", c.order)
	}
	for i := range want {
		if c.order[i] != want[i] {
			t.Fatalf("order = %v, want %v", c.order, want)
		}
	}
}

func TestSoloRunsSequentially(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		c.Incr(p)
		return word.Bottom
	}
	_, err := Run(Config{
		Programs:  []Program{prog, prog, prog},
		Scheduler: NewSolo(2, 0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 0, 0, 1, 1}
	for i := range want {
		if c.order[i] != want[i] {
			t.Fatalf("order = %v, want %v", c.order, want)
		}
	}
}

func TestSoloOmittedProcessNeverRuns(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		return word.FromValue(int64(p.ID()))
	}
	res, err := Run(Config{
		Programs:  []Program{prog, prog},
		Scheduler: NewSolo(1), // process 0 is never scheduled
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("execution must report Stopped")
	}
	if res.Decided[0] {
		t.Error("process 0 must not decide")
	}
	if !res.Decided[1] {
		t.Error("process 1 must decide")
	}
}

func TestScriptReplaysExactOrder(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		c.Incr(p)
		return word.Bottom
	}
	res, err := Run(Config{
		Programs:  []Program{prog, prog},
		Scheduler: NewScript(1, 1, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 0, 0}
	for i := range want {
		if c.order[i] != want[i] {
			t.Fatalf("order = %v, want %v", c.order, want)
		}
	}
	if res.Stopped {
		t.Error("fully-replayed script covering all steps ends naturally, not stopped")
	}
}

func TestScriptExhaustionStops(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		c.Incr(p)
		return word.Bottom
	}
	res, err := Run(Config{
		Programs:  []Program{prog, prog},
		Scheduler: NewScript(0), // one step only
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("exhausted script must stop the execution")
	}
	if len(c.order) != 1 || c.order[0] != 0 {
		t.Errorf("order = %v, want [0]", c.order)
	}
}

func TestRandomSchedulerIsSeedDeterministic(t *testing.T) {
	runWith := func(seed int64) []int {
		c := &counter{}
		prog := func(p *Proc) word.Word {
			for i := 0; i < 5; i++ {
				c.Incr(p)
			}
			return word.Bottom
		}
		_, err := Run(Config{
			Programs:  []Program{prog, prog, prog},
			Scheduler: NewRandom(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.order
	}
	a, b := runWith(7), runWith(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestStepLimitViolation(t *testing.T) {
	c := &counter{}
	spinner := func(p *Proc) word.Word {
		for {
			c.Incr(p)
		}
	}
	res, err := Run(Config{
		Programs:  []Program{spinner},
		Scheduler: NewRoundRobin(),
		StepLimit: 10,
	})
	if !errors.Is(err, ErrWaitFreedom) {
		t.Fatalf("err = %v, want ErrWaitFreedom", err)
	}
	if res == nil {
		t.Fatal("result must accompany a wait-freedom error")
	}
	if res.Steps[0] != 11 {
		t.Errorf("steps = %d, want limit+1 = 11", res.Steps[0])
	}
}

func TestProgramPanicPropagates(t *testing.T) {
	prog := func(p *Proc) word.Word {
		p.Exec(func() {})
		panic("boom")
	}
	_, err := Run(Config{
		Programs:  []Program{prog},
		Scheduler: NewRoundRobin(),
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Proc != 0 || pe.Value != "boom" {
		t.Errorf("PanicError = %+v", pe)
	}
}

func TestStallModelsNonresponsiveFault(t *testing.T) {
	c := &counter{}
	stuck := func(p *Proc) word.Word {
		p.Exec(func() { p.Stall() })
		return word.FromValue(1) // unreachable
	}
	fine := func(p *Proc) word.Word {
		c.Incr(p)
		return word.FromValue(2)
	}
	res, err := Run(Config{
		Programs:  []Program{stuck, fine},
		Scheduler: NewRoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stalled[0] || res.Decided[0] {
		t.Error("process 0 must be stalled, undecided")
	}
	if !res.Decided[1] || res.Decisions[1].Value() != 2 {
		t.Error("process 1 must decide 2 despite the stalled peer")
	}
}

func TestDecideWithoutStepsIsDeterministicallyTraced(t *testing.T) {
	// Processes that decide without any shared step must appear in the
	// trace in id order regardless of goroutine start order.
	for trial := 0; trial < 20; trial++ {
		log := trace.New()
		mk := func(id int64) Program {
			return func(p *Proc) word.Word { return word.FromValue(id) }
		}
		_, err := Run(Config{
			Programs:  []Program{mk(10), mk(11), mk(12)},
			Scheduler: NewRoundRobin(),
			Log:       log,
		})
		if err != nil {
			t.Fatal(err)
		}
		evs := log.Events()
		if len(evs) != 3 {
			t.Fatalf("trace has %d events, want 3", len(evs))
		}
		for i, e := range evs {
			if e.Kind != trace.EventDecide || e.Proc != i {
				t.Fatalf("trial %d: event %d = %+v, want decide by p%d", trial, i, e, i)
			}
		}
	}
}

func TestTraceRecordsStepsAndDecisions(t *testing.T) {
	c := &counter{}
	log := trace.New()
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		return word.FromValue(int64(p.ID()))
	}
	_, err := Run(Config{
		Programs:  []Program{prog, prog},
		Scheduler: NewRoundRobin(),
		Log:       log,
	})
	if err != nil {
		t.Fatal(err)
	}
	var writes, decides int
	for _, e := range log.Events() {
		switch e.Kind {
		case trace.EventWrite:
			writes++
		case trace.EventDecide:
			decides++
		}
	}
	if writes != 2 || decides != 2 {
		t.Errorf("writes=%d decides=%d, want 2 and 2", writes, decides)
	}
}

func TestObserverSeesEvents(t *testing.T) {
	c := &counter{}
	var seen []trace.Event
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		return word.Bottom
	}
	_, err := Run(Config{
		Programs:  []Program{prog},
		Scheduler: NewRoundRobin(),
		Observer:  func(e trace.Event) { seen = append(seen, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 { // one write, one decide
		t.Errorf("observer saw %d events, want 2", len(seen))
	}
}

func TestObserverWithLogSeesIndexedEvents(t *testing.T) {
	c := &counter{}
	var indices []int
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		c.Incr(p)
		return word.Bottom
	}
	_, err := Run(Config{
		Programs:  []Program{prog},
		Scheduler: NewRoundRobin(),
		Log:       trace.New(),
		Observer:  func(e trace.Event) { indices = append(indices, e.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range indices {
		if idx != i {
			t.Errorf("observer event %d has index %d", i, idx)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Scheduler: NewRoundRobin()}); err == nil {
		t.Error("empty programs must error")
	}
	if _, err := Run(Config{Programs: []Program{func(*Proc) word.Word { return word.Bottom }}}); err == nil {
		t.Error("missing scheduler must error")
	}
}

func TestSchedulerStopAbandonsCleanly(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		for i := 0; i < 100; i++ {
			c.Incr(p)
		}
		return word.Bottom
	}
	steps := 0
	sched := SchedulerFunc(func(enabled []int) (int, bool) {
		steps++
		if steps > 5 {
			return 0, false
		}
		return enabled[0], true
	})
	res, err := Run(Config{
		Programs:  []Program{prog, prog},
		Scheduler: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("must report Stopped")
	}
	if c.n != 5 {
		t.Errorf("counter = %d, want 5", c.n)
	}
}

func TestDecidedValues(t *testing.T) {
	res := &Result{
		Decided:   []bool{true, false, true},
		Decisions: []word.Word{word.FromValue(1), word.Bottom, word.FromValue(3)},
	}
	vals := res.DecidedValues()
	if len(vals) != 2 || vals[0].Value() != 1 || vals[1].Value() != 3 {
		t.Errorf("DecidedValues = %v", vals)
	}
}
