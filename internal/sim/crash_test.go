package sim

import (
	"testing"

	"repro/internal/word"
)

func TestCrashSchedulerStopsProcess(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		for i := 0; i < 5; i++ {
			c.Incr(p)
		}
		return word.FromValue(int64(p.ID()))
	}
	res, err := Run(Config{
		Programs:  []Program{prog, prog},
		Scheduler: NewCrash(NewRoundRobin(), map[int]int{0: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided[0] {
		t.Error("crashed process must not decide")
	}
	if !res.Decided[1] {
		t.Error("surviving process must decide")
	}
	if res.Steps[0] != 2 {
		t.Errorf("crashed process took %d steps, want 2", res.Steps[0])
	}
	if res.Steps[1] != 5 {
		t.Errorf("survivor took %d steps, want 5", res.Steps[1])
	}
	if !res.Stopped {
		t.Error("execution ends stopped once only crashed processes remain")
	}
}

func TestCrashFromStartNeverRuns(t *testing.T) {
	c := &counter{}
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		return word.Bottom
	}
	res, err := Run(Config{
		Programs:  []Program{prog, prog, prog},
		Scheduler: NewCrash(NewRoundRobin(), map[int]int{1: 0}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range c.order {
		if id == 1 {
			t.Fatal("process 1 stepped despite crashing at step 0")
		}
	}
	if res.Decided[1] {
		t.Error("process 1 must not decide")
	}
}

func TestCrashMapIsolatedFromCaller(t *testing.T) {
	m := map[int]int{0: 1}
	s := NewCrash(NewRoundRobin(), m)
	delete(m, 0)
	// First pick for proc 0 succeeds...
	if pick, ok := s.Next([]int{0}); !ok || pick != 0 {
		t.Fatal("first step must be granted")
	}
	// ...second must be refused (limit 1 still applies).
	if _, ok := s.Next([]int{0}); ok {
		t.Fatal("crash limit lost after caller mutated the map")
	}
}
