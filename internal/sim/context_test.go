package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/word"
)

// TestRunContextCancelMidExecution: cancelling the context between steps
// must abandon the execution and return the partial result, marked Stopped,
// together with the context error.
func TestRunContextCancelMidExecution(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := &counter{}
	prog := func(p *Proc) word.Word {
		for i := 0; i < 100; i++ {
			c.Incr(p)
		}
		return word.FromValue(int64(p.ID()))
	}
	grants := 0
	sched := SchedulerFunc(func(enabled []int) (int, bool) {
		grants++
		if grants == 5 {
			cancel()
		}
		return enabled[0], true
	})
	res, err := RunContext(ctx, Config{
		Programs:  []Program{prog, prog},
		Scheduler: sched,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if !res.Stopped {
		t.Error("partial result not marked Stopped")
	}
	if res.Decided[0] || res.Decided[1] {
		t.Error("a process decided in an abandoned execution")
	}
	if c.n == 0 || c.n >= 200 {
		t.Errorf("counter = %d, want a partial execution", c.n)
	}
}

// TestRunContextPreCancelled: an already-cancelled context must stop the
// execution before any step is granted.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &counter{}
	prog := func(p *Proc) word.Word {
		c.Incr(p)
		return word.FromValue(0)
	}
	res, err := RunContext(ctx, Config{
		Programs:  []Program{prog, prog},
		Scheduler: NewRoundRobin(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if res == nil || !res.Stopped {
		t.Fatalf("want stopped partial result, got %+v", res)
	}
	if c.n != 0 {
		t.Errorf("counter = %d, want 0 steps granted", c.n)
	}
}

// TestRunBackgroundEquivalence: Run is RunContext with a background
// context — completed executions are identical.
func TestRunBackgroundEquivalence(t *testing.T) {
	mk := func() Config {
		c := &counter{}
		prog := func(p *Proc) word.Word {
			for i := 0; i < 3; i++ {
				c.Incr(p)
			}
			return word.FromValue(int64(p.ID()))
		}
		return Config{Programs: []Program{prog, prog}, Scheduler: NewRoundRobin()}
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stopped || b.Stopped {
		t.Fatal("completed executions marked Stopped")
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] || a.Steps[i] != b.Steps[i] {
			t.Errorf("process %d: Run and RunContext diverge", i)
		}
	}
}
