// Package word defines the 64-bit register word stored in CAS objects.
//
// The paper's protocols operate on CAS registers that hold either the
// distinguished initial value ⊥ (Bottom), a plain input value, or — for the
// staged protocol of Figure 3 — a pair ⟨value, stage⟩. To stay faithful to a
// hardware CAS register (and to share one representation between the
// deterministic simulator and the sync/atomic backend) all three are packed
// into a single uint64:
//
//	bit 63      : presence flag (0 only for Bottom)
//	bits 32..62 : value   (31 bits, 0 .. MaxValue)
//	bits  0..31 : stage   (32 bits, 0 .. MaxStage)
//
// Bottom is the all-zero word, so zero-initialized registers start at ⊥
// exactly as the paper assumes.
package word

import (
	"fmt"
	"math"
)

// Word is the content of a CAS register: ⊥, a value, or a ⟨value, stage⟩ pair.
type Word uint64

// Bottom is the distinguished initial register value ⊥. It differs from every
// packed value, as the paper requires of process inputs.
const Bottom Word = 0

const (
	presentBit = uint64(1) << 63

	// MaxValue is the largest input value representable in a Word.
	MaxValue = (1 << 31) - 1

	// MaxStage is the largest stage number representable in a Word.
	MaxStage = math.MaxUint32
)

// Pack builds the pair ⟨value, stage⟩ used by the staged protocol (Figure 3).
// It panics if value or stage is out of range; protocol inputs are validated
// at the API boundary, so a panic here indicates a library bug.
func Pack(value int64, stage int64) Word {
	if value < 0 || value > MaxValue {
		panic(fmt.Sprintf("word: value %d out of range [0, %d]", value, MaxValue))
	}
	if stage < 0 || stage > MaxStage {
		panic(fmt.Sprintf("word: stage %d out of range [0, %d]", stage, MaxStage))
	}
	return Word(presentBit | uint64(value)<<32 | uint64(stage))
}

// FromValue builds a plain value word (stage 0). Plain-value protocols
// (Figures 1 and 2) never inspect the stage field.
func FromValue(value int64) Word { return Pack(value, 0) }

// IsBottom reports whether w is the initial value ⊥.
func (w Word) IsBottom() bool { return uint64(w)&presentBit == 0 }

// Value returns the packed value. For ⊥ it returns -1, which is outside the
// valid input range and therefore never collides with a real value.
func (w Word) Value() int64 {
	if w.IsBottom() {
		return -1
	}
	return int64(uint64(w) >> 32 & MaxValue)
}

// Stage returns the packed stage. For ⊥ it returns -1: the paper's staged
// protocol compares stages with ≥, and treating ⊥ as "stage −1" makes every
// real stage later than the initial content, matching the protocol's intent.
func (w Word) Stage() int64 {
	if w.IsBottom() {
		return -1
	}
	return int64(uint64(w) & MaxStage)
}

// WithStage returns w with its stage field replaced (paper line 17,
// "exp.stage ← s"). Replacing the stage of ⊥ has no meaning in the paper's
// pseudocode, so callers must pack a full pair in that case; this method
// panics on ⊥ to surface such misuse.
func (w Word) WithStage(stage int64) Word {
	if w.IsBottom() {
		panic("word: WithStage on Bottom")
	}
	return Pack(w.Value(), stage)
}

// String renders ⊥, plain values, and pairs readably for traces.
func (w Word) String() string {
	if w.IsBottom() {
		return "⊥"
	}
	if w.Stage() == 0 {
		return fmt.Sprintf("%d", w.Value())
	}
	return fmt.Sprintf("⟨%d,%d⟩", w.Value(), w.Stage())
}
