package word

import "testing"

func FuzzPackRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(MaxValue), int64(MaxStage))
	f.Add(int64(42), int64(7))
	f.Fuzz(func(t *testing.T, value, stage int64) {
		value &= MaxValue
		stage &= MaxStage
		if value < 0 {
			value = -value & MaxValue
		}
		if stage < 0 {
			stage = -stage & MaxStage
		}
		w := Pack(value, stage)
		if w.IsBottom() {
			t.Fatalf("Pack(%d,%d) is Bottom", value, stage)
		}
		if w.Value() != value || w.Stage() != stage {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", value, stage, w.Value(), w.Stage())
		}
		if w.WithStage(0).Value() != value {
			t.Fatalf("WithStage lost value")
		}
	})
}
