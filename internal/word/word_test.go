package word

import (
	"testing"
	"testing/quick"
)

func TestBottomIsZeroValue(t *testing.T) {
	var w Word
	if !w.IsBottom() {
		t.Fatal("zero Word must be Bottom")
	}
	if w != Bottom {
		t.Fatal("zero Word must equal Bottom")
	}
}

func TestBottomSentinelFields(t *testing.T) {
	if got := Bottom.Value(); got != -1 {
		t.Errorf("Bottom.Value() = %d, want -1", got)
	}
	if got := Bottom.Stage(); got != -1 {
		t.Errorf("Bottom.Stage() = %d, want -1", got)
	}
	if Bottom.String() != "⊥" {
		t.Errorf("Bottom.String() = %q, want ⊥", Bottom.String())
	}
}

func TestPackRoundTrip(t *testing.T) {
	cases := []struct{ value, stage int64 }{
		{0, 0},
		{1, 0},
		{42, 7},
		{MaxValue, 0},
		{0, MaxStage},
		{MaxValue, MaxStage},
	}
	for _, c := range cases {
		w := Pack(c.value, c.stage)
		if w.IsBottom() {
			t.Errorf("Pack(%d,%d) must not be Bottom", c.value, c.stage)
		}
		if got := w.Value(); got != c.value {
			t.Errorf("Pack(%d,%d).Value() = %d", c.value, c.stage, got)
		}
		if got := w.Stage(); got != c.stage {
			t.Errorf("Pack(%d,%d).Stage() = %d", c.value, c.stage, got)
		}
	}
}

func TestPackRoundTripProperty(t *testing.T) {
	prop := func(v uint32, s uint32) bool {
		value := int64(v) & MaxValue
		w := Pack(value, int64(s))
		return !w.IsBottom() && w.Value() == value && w.Stage() == int64(s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackInjectiveProperty(t *testing.T) {
	// Distinct (value, stage) pairs must pack to distinct words: register
	// equality is the only comparison a CAS object ever performs, so any
	// collision would silently merge logically distinct protocol states.
	prop := func(v1, s1, v2, s2 uint32) bool {
		a := Pack(int64(v1)&MaxValue, int64(s1))
		b := Pack(int64(v2)&MaxValue, int64(s2))
		same := int64(v1)&MaxValue == int64(v2)&MaxValue && s1 == s2
		return (a == b) == same
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromValueHasStageZero(t *testing.T) {
	w := FromValue(99)
	if w.Stage() != 0 {
		t.Errorf("FromValue(99).Stage() = %d, want 0", w.Stage())
	}
	if w.Value() != 99 {
		t.Errorf("FromValue(99).Value() = %d, want 99", w.Value())
	}
}

func TestWithStage(t *testing.T) {
	w := Pack(5, 3)
	u := w.WithStage(9)
	if u.Value() != 5 || u.Stage() != 9 {
		t.Errorf("WithStage: got ⟨%d,%d⟩, want ⟨5,9⟩", u.Value(), u.Stage())
	}
	// Original is unchanged (Word is a value type).
	if w.Stage() != 3 {
		t.Errorf("WithStage mutated receiver: stage %d", w.Stage())
	}
}

func TestWithStageOnBottomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithStage on Bottom must panic")
		}
	}()
	_ = Bottom.WithStage(1)
}

func TestPackRangePanics(t *testing.T) {
	for _, c := range []struct{ value, stage int64 }{
		{-1, 0},
		{MaxValue + 1, 0},
		{0, -1},
		{0, MaxStage + 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pack(%d,%d) must panic", c.value, c.stage)
				}
			}()
			Pack(c.value, c.stage)
		}()
	}
}

func TestStringForms(t *testing.T) {
	if got := FromValue(7).String(); got != "7" {
		t.Errorf("plain value string = %q, want 7", got)
	}
	if got := Pack(7, 2).String(); got != "⟨7,2⟩" {
		t.Errorf("pair string = %q, want ⟨7,2⟩", got)
	}
}

func TestBottomDiffersFromEveryValue(t *testing.T) {
	prop := func(v uint32, s uint32) bool {
		return Pack(int64(v)&MaxValue, int64(s)) != Bottom
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
