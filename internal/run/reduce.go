package run

import "fmt"

// ReduceMode selects how aggressively the exploration engine prunes
// redundant interleavings via dynamic partial-order reduction (sleep sets
// over the choice path plus branch-time process-symmetry skipping; see
// docs/MODEL.md, "Partial-order reduction").
//
// Like ExecMode, the reduction mode changes WHICH schedules are replayed,
// so it participates in manifests and trace meta: a resumed run, a joining
// ledger worker, and -explain all refuse artifacts recorded under a
// different mode — their choice paths are coordinates in a different tree.
type ReduceMode int

const (
	// ReduceOff (the default) explores every schedule the fault-aware
	// chooser enumerates, exactly as before reduction existed.
	ReduceOff ReduceMode = iota
	// ReduceSafe prunes only schedules provably equivalent to a
	// lexicographically smaller explored one, preserving the engine's
	// lex-least counterexample guarantee and exact verdicts.
	ReduceSafe
	// ReduceAggressive adds persistent-set pruning from whole-future object
	// footprints. Verdicts (violation found / verified) are preserved, but
	// the reported counterexample need not be the lex-least one. Requires
	// the compiled execution form (footprints come from machine state).
	ReduceAggressive
)

// String renders the mode as its meta/flag spelling.
func (m ReduceMode) String() string {
	switch m {
	case ReduceSafe:
		return "on"
	case ReduceAggressive:
		return "aggressive"
	default:
		return "off"
	}
}

// ParseReduceMode is the inverse of ReduceMode.String (CLI flags, meta).
func ParseReduceMode(s string) (ReduceMode, error) {
	switch s {
	case "", "off", "false":
		return ReduceOff, nil
	case "on", "true", "safe":
		return ReduceSafe, nil
	case "aggressive":
		return ReduceAggressive, nil
	default:
		return ReduceOff, fmt.Errorf("run: unknown reduction mode %q (want off, on, or aggressive)", s)
	}
}
