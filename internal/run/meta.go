package run

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
)

// The flat string-map rendering of run settings ("meta") is the shared
// self-description format of durable artifacts: the checkpoint manifest's
// Extra section, the -report Run section, and the trace/v1 header all carry
// it, and SettingsFromMeta reconstructs a runnable Settings from it — so a
// run directory or a trace file alone suffices to re-run (or replay) the
// execution it records.

// MetaFromSettings renders the settings as the flat map. Only the four
// canonical protocol families are reversible; an unknown protocol is
// recorded under its display name and refused by SettingsFromMeta.
func MetaFromSettings(s *Settings) map[string]string {
	m := map[string]string{
		"n":         strconv.Itoa(len(s.Inputs)),
		"fault":     s.Kind.String(),
		"faulty":    strconv.Itoa(len(s.FaultyObjects)),
		"unbounded": strconv.FormatBool(s.FaultsPerObject == fault.Unbounded),
		"dedup":     strconv.FormatBool(s.Dedup),
		"f":         "0",
		"t":         strconv.Itoa(s.FaultsPerObject),
	}
	if s.Kind == fault.None {
		m["fault"] = fault.Overriding.String()
	}
	if s.Reduce != ReduceOff {
		// Recorded only when reduction is on: artifacts from before the
		// reducer existed carry no key and keep meaning "off", so their
		// hashes and replays are unchanged.
		m["reduce"] = s.Reduce.String()
	}
	if s.FaultsPerObject == fault.Unbounded {
		m["t"] = "0"
	}
	if s.Protocol != nil {
		// The resolved execution form, so a replay of this artifact runs
		// under the same engine that produced it.
		if compiled, err := ResolveExec(s.Exec, s.Protocol); err == nil {
			m["exec"] = ExecLabel(compiled)
		}
	}
	switch p := s.Protocol.(type) {
	case core.SingleCAS:
		m["proto"] = "figure1"
	case core.FPlusOne:
		m["proto"] = "figure2"
		m["f"] = strconv.Itoa(p.F)
	case core.Staged:
		m["proto"] = "figure3"
		m["f"] = strconv.Itoa(p.F)
		m["t"] = strconv.Itoa(p.T)
	case core.SilentRetry:
		m["proto"] = "silent-retry"
		m["t"] = strconv.Itoa(p.B)
	case nil:
	default:
		m["proto"] = p.Name()
	}
	return m
}

// SettingsFromMeta reconstructs runnable settings from the flat map: the
// protocol (from proto/f/t), the canonical inputs (from n, unless explicit
// inputs are given), the faulty-object set (from faulty/unbounded/t), and
// the fault kind. It is the inverse of MetaFromSettings and of the
// modelcheck CLI's flag rendering.
func SettingsFromMeta(meta map[string]string, inputs []int64) (*Settings, error) {
	get := func(key string, def int) (int, error) {
		v, ok := meta[key]
		if !ok {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("run: meta %s=%q: %w", key, v, err)
		}
		return n, nil
	}
	f, err := get("f", 1)
	if err != nil {
		return nil, err
	}
	t, err := get("t", 1)
	if err != nil {
		return nil, err
	}
	n, err := get("n", len(inputs))
	if err != nil {
		return nil, err
	}

	var proto core.Protocol
	switch strings.ToLower(meta["proto"]) {
	case "figure1", "single":
		proto = core.SingleCAS{}
	case "figure2", "fplusone":
		proto = core.NewFPlusOne(f)
	case "figure3", "staged":
		proto = core.NewStaged(f, t)
	case "silent-retry", "silent":
		proto = core.NewSilentRetry(t)
	default:
		return nil, fmt.Errorf("run: unknown protocol %q in meta", meta["proto"])
	}

	var kind fault.Kind
	switch strings.ToLower(meta["fault"]) {
	case "", "overriding":
		kind = fault.Overriding
	case "silent":
		kind = fault.Silent
	default:
		return nil, fmt.Errorf("run: unsupported fault kind %q in meta", meta["fault"])
	}

	numFaulty, err := get("faulty", -1)
	if err != nil {
		return nil, err
	}
	if numFaulty < 0 {
		numFaulty = proto.Objects()
	}
	ids := make([]int, numFaulty)
	for i := range ids {
		ids[i] = i
	}
	perObject := t
	if meta["unbounded"] == "true" {
		perObject = fault.Unbounded
	}

	if inputs == nil {
		if n <= 0 {
			return nil, fmt.Errorf("run: meta names no process count (n) and no inputs were given")
		}
		inputs = make([]int64, n)
		for i := range inputs {
			inputs[i] = int64(10 + i)
		}
	}

	opts := []Option{
		WithProtocol(proto),
		WithInputs(inputs...),
		WithFaultyObjects(ids, perObject),
		WithFaultKind(kind),
	}
	if v := meta["exec"]; v != "" {
		// Replay the artifact under the form that produced it. Meta
		// without an exec entry predates the compiled form and keeps the
		// default (auto).
		mode, err := ParseExecMode(v)
		if err != nil {
			return nil, err
		}
		if mode == ExecAuto {
			mode = ExecInterpreted // "auto" is never recorded; be strict
		}
		opts = append(opts, WithExecMode(mode))
	}
	if v := meta["reduce"]; v != "" {
		mode, err := ParseReduceMode(v)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithReduce(mode))
	}
	return NewSettings(opts...), nil
}
