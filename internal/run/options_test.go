package run

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestOptionsBuildSettings(t *testing.T) {
	var events int
	s := NewSettings(
		WithProtocol(core.NewStaged(1, 1)),
		WithDistinctInputs(3),
		WithAllObjectsFaulty(2),
		WithFaultKind(fault.Silent),
		WithTrace(),
		WithObserver(func(trace.Event) { events++ }),
		WithStepLimit(40),
		WithMaxExecutions(1234),
		WithWorkers(4),
		WithQuick(true),
		WithSeed(7),
	)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Inputs) != 3 || s.Inputs[0] != 10 || s.Inputs[2] != 12 {
		t.Errorf("inputs = %v, want canonical 10..12", s.Inputs)
	}
	if len(s.FaultyObjects) != s.Protocol.Objects() || s.FaultsPerObject != 2 {
		t.Errorf("faulty set = %v (t=%d), want all %d objects with t=2",
			s.FaultyObjects, s.FaultsPerObject, s.Protocol.Objects())
	}
	if s.Kind != fault.Silent || !s.Trace || s.StepLimit != 40 ||
		s.MaxExecutions != 1234 || s.Workers != 4 || !s.Quick || s.Seed != 7 {
		t.Errorf("settings not applied: %+v", s)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := NewSettings(WithDistinctInputs(2)).Validate(); err == nil {
		t.Error("missing protocol must fail validation")
	}
	if err := NewSettings(WithProtocol(core.SingleCAS{})).Validate(); err == nil {
		t.Error("missing inputs must fail validation")
	}
}

func TestOptionsAllObjectsFaultyRequiresProtocol(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithAllObjectsFaulty before WithProtocol must panic")
		}
	}()
	NewSettings(WithAllObjectsFaulty(1))
}

// TestConsensusWithMatchesLegacyConfig: the options front door and the
// deprecated Config shim must produce identical executions.
func TestConsensusWithMatchesLegacyConfig(t *testing.T) {
	viaOptions, err := ConsensusWith(
		WithProtocol(core.SingleCAS{}),
		WithInputs(1, 2),
		WithTrace(),
	)
	if err != nil {
		t.Fatal(err)
	}
	viaConfig, err := Consensus(Config{
		Protocol: core.SingleCAS{},
		Inputs:   []int64{1, 2},
		Trace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !viaOptions.Verdict.OK() || !viaConfig.Verdict.OK() {
		t.Fatalf("verdicts: options=%s config=%s", viaOptions.Verdict, viaConfig.Verdict)
	}
	if viaOptions.Verdict.Agreed != viaConfig.Verdict.Agreed {
		t.Errorf("agreed values differ: %s vs %s",
			viaOptions.Verdict.Agreed, viaConfig.Verdict.Agreed)
	}
}

// TestConsensusContextCancelPropagates is the regression test for the
// silently-evaluated partial result bug: Consensus used to check only
// res == nil and would evaluate a cancelled execution's truncated result as
// if it had completed. A cancelled context must surface ctx.Err() alongside
// the partial result.
func TestConsensusContextCancelPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	grants := 0
	sched := sim.SchedulerFunc(func(enabled []int) (int, bool) {
		grants++
		if grants == 2 {
			cancel()
		}
		return enabled[0], true
	})
	res, err := ConsensusContext(ctx, Config{
		Protocol:  core.NewStaged(1, 1),
		Inputs:    []int64{1, 2},
		Scheduler: sched,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Sim == nil {
		t.Fatal("partial result not returned alongside the error")
	}
	if !res.Sim.Stopped {
		t.Error("partial result not marked Stopped")
	}
}
