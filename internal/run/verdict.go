package run

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/word"
)

// Violation identifies which consensus requirement an execution broke.
type Violation string

const (
	// ViolationNone means the execution satisfied all requirements that
	// apply to it.
	ViolationNone Violation = ""
	// ViolationValidity means some decision is not any process's input.
	ViolationValidity Violation = "validity"
	// ViolationConsistency means two deciders decided different values.
	ViolationConsistency Violation = "consistency"
	// ViolationWaitFreedom means a process exceeded its step bound (or
	// stalled) without deciding, while the execution was not stopped by
	// the adversary.
	ViolationWaitFreedom Violation = "wait-freedom"
)

// Verdict is the evaluation of one execution against the consensus
// specification.
type Verdict struct {
	// Violation is the first requirement found violated, or ViolationNone.
	Violation Violation
	// Detail is a human-readable explanation of the violation.
	Detail string
	// Decisions are the decided values of deciding processes, indexed by
	// process id (nil entries encoded via Decided).
	Decisions []word.Word
	// Decided mirrors sim.Result.Decided.
	Decided []bool
	// Agreed is the common decision when consistency holds and at least
	// one process decided.
	Agreed word.Word
	// Stopped reports the execution was cut short by the scheduler; an
	// undecided process is then not a wait-freedom violation.
	Stopped bool
}

// OK reports whether no requirement was violated.
func (v Verdict) OK() bool { return v.Violation == ViolationNone }

// String summarizes the verdict in one line.
func (v Verdict) String() string {
	if v.OK() {
		var ds []string
		for i, ok := range v.Decided {
			if ok {
				ds = append(ds, fmt.Sprintf("p%d=%s", i, v.Decisions[i]))
			}
		}
		return "OK [" + strings.Join(ds, " ") + "]"
	}
	return fmt.Sprintf("VIOLATION(%s): %s", v.Violation, v.Detail)
}

// An Evaluator judges executions of one fixed input vector. It precomputes
// the input set once, so replay loops evaluating millions of executions do
// not rebuild the map per leaf.
type Evaluator struct {
	inputSet map[int64]bool
}

// NewEvaluator returns an evaluator for the given inputs.
func NewEvaluator(inputs []int64) *Evaluator {
	set := make(map[int64]bool, len(inputs))
	for _, in := range inputs {
		set[in] = true
	}
	return &Evaluator{inputSet: set}
}

// Evaluate checks the consensus requirements over a completed simulation.
//
// Validity and consistency are judged over the processes that decided; an
// execution stopped early by the adversary is judged on its deciders only
// (that is the point of covering arguments: the survivors already disagree).
// Wait-freedom is judged only for executions that ran to completion: a
// process that neither decided nor was abandoned — i.e. it stalled or
// exceeded its step bound — is a wait-freedom violation.
//
// The returned Verdict aliases res.Decisions and res.Decided. When res is a
// reused arena result, callers retaining the verdict must clone those slices.
func Evaluate(inputs []int64, res *sim.Result, runErr error) Verdict {
	return NewEvaluator(inputs).Evaluate(res, runErr)
}

// Evaluate judges one execution; see the package-level Evaluate for the
// semantics and the aliasing caveat.
func (ev *Evaluator) Evaluate(res *sim.Result, runErr error) Verdict {
	v := Verdict{
		Decisions: res.Decisions,
		Decided:   res.Decided,
		Stopped:   res.Stopped,
	}
	inputSet := ev.inputSet

	first := true
	for i, ok := range res.Decided {
		if !ok {
			continue
		}
		d := res.Decisions[i]
		if d.IsBottom() || !inputSet[d.Value()] {
			v.Violation = ViolationValidity
			v.Detail = fmt.Sprintf("process %d decided %s, which is no process's input", i, d)
			return v
		}
		if first {
			v.Agreed = d
			first = false
		} else if d != v.Agreed {
			v.Violation = ViolationConsistency
			v.Detail = fmt.Sprintf("process %d decided %s but an earlier process decided %s", i, d, v.Agreed)
			return v
		}
	}

	if errors.Is(runErr, sim.ErrWaitFreedom) {
		v.Violation = ViolationWaitFreedom
		v.Detail = runErr.Error()
		return v
	}
	if !res.Stopped {
		for i, ok := range res.Decided {
			if !ok {
				v.Violation = ViolationWaitFreedom
				v.Detail = fmt.Sprintf("process %d never decided", i)
				return v
			}
		}
	}
	return v
}
