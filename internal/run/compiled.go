package run

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/word"
)

// ExecMode selects which execution form drives the protocol: the compiled
// step machines (core.Stepper on the sim stepped runner) or the
// goroutine-gated reference simulator. The two forms are observationally
// identical — same verdicts, traces, and counterexamples — so the mode only
// changes speed; it still participates in manifests and trace meta so that
// replays and resumes run under the form that produced an artifact.
type ExecMode int

const (
	// ExecAuto (the default) uses the compiled form when the protocol
	// provides a Stepper and falls back to the goroutine path otherwise.
	ExecAuto ExecMode = iota
	// ExecInterpreted forces the goroutine-gated reference simulator.
	ExecInterpreted
	// ExecCompiled requires the compiled form; drivers refuse protocols
	// without a Stepper.
	ExecCompiled
)

// String renders the mode as its meta/flag spelling.
func (m ExecMode) String() string {
	switch m {
	case ExecInterpreted:
		return "interpreted"
	case ExecCompiled:
		return "compiled"
	default:
		return "auto"
	}
}

// ParseExecMode is the inverse of ExecMode.String (CLI flags, trace meta).
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "auto":
		return ExecAuto, nil
	case "interpreted", "goroutine":
		return ExecInterpreted, nil
	case "compiled":
		return ExecCompiled, nil
	default:
		return ExecAuto, fmt.Errorf("run: unknown execution form %q (want auto, compiled, or interpreted)", s)
	}
}

// ResolveExec resolves the mode against a protocol: whether the compiled
// form runs. ExecCompiled fails when the protocol has no Stepper.
func ResolveExec(mode ExecMode, p core.Protocol) (compiled bool, err error) {
	switch mode {
	case ExecInterpreted:
		return false, nil
	case ExecCompiled:
		if _, ok := core.Compile(p); !ok {
			return false, fmt.Errorf("run: protocol %s has no compiled form (core.Stepper)", p.Name())
		}
		return true, nil
	default:
		_, ok := core.Compile(p)
		return ok, nil
	}
}

// ExecLabel renders the resolved execution form for manifests and trace
// meta ("compiled" or "interpreted").
func ExecLabel(compiled bool) string {
	if compiled {
		return "compiled"
	}
	return "interpreted"
}

// SteppedExec adapts a compiled protocol to the sim stepped runner: one
// core.Stepper shared by all processes, one State and one bank-bound
// environment per process. It is reusable across executions the same way
// BoundPrograms is — Begin re-initializes a process's machine — provided
// the bank is Reset between executions by the caller.
type SteppedExec struct {
	stepper core.Stepper
	inputs  []int64
	states  []core.State
	envs    []steppedEnv
}

// NewSteppedExec builds the adapter for one (stepper, bank, inputs) triple.
func NewSteppedExec(stepper core.Stepper, bank *object.Bank, inputs []int64) *SteppedExec {
	x := &SteppedExec{
		stepper: stepper,
		inputs:  inputs,
		states:  make([]core.State, len(inputs)),
		envs:    make([]steppedEnv, len(inputs)),
	}
	for i := range x.envs {
		x.envs[i] = steppedEnv{bank: bank, proc: i}
	}
	return x
}

// Begin implements sim.SteppedProgram.
func (x *SteppedExec) Begin(id int) { x.states[id] = x.stepper.Begin(x.inputs[id]) }

// Pending reports process id's next CAS as a sim.PendingOp — the same
// metadata the goroutine form publishes via Proc.ExecCAS, recomputed from
// the machine state. Always Known: every compiled step is a declared CAS.
func (x *SteppedExec) Pending(id int) sim.PendingOp {
	obj, exp, new := x.stepper.Pending(&x.states[id])
	return sim.PendingOp{Known: true, Obj: obj, Exp: exp, New: new}
}

// Footprint reports the object interval process id's remaining execution
// may touch (core.Stepper.Footprint on its current state).
func (x *SteppedExec) Footprint(id int) (lo, hi int) {
	return x.stepper.Footprint(&x.states[id])
}

// Step implements sim.SteppedProgram: one Stepper step against the bank.
// A nonresponsive fault surfaces as a stalled outcome, exactly like
// object.CAS.Invoke stalling the goroutine-gated process; whatever the
// machine computed after the stalling CAS is discarded with it.
func (x *SteppedExec) Step(id int, rec *sim.StepRecorder) sim.StepOutcome {
	env := &x.envs[id]
	env.rec = rec
	env.stalled = false
	done, decided := x.stepper.Step(&x.states[id], env)
	env.rec = nil
	if env.stalled {
		return sim.StepOutcome{Stalled: true}
	}
	if done {
		return sim.StepOutcome{Done: true, Decision: word.FromValue(decided)}
	}
	return sim.StepOutcome{}
}

// steppedEnv is the core.Env one process sees on the compiled path: each
// CAS applies the object's full fault pipeline directly (the stepped runner
// granted this step, so no scheduling handshake is needed) and records the
// event, mirroring object.CAS.Invoke minus the park.
type steppedEnv struct {
	bank    *object.Bank
	proc    int
	rec     *sim.StepRecorder
	stalled bool
}

// CAS implements core.Env.
func (e *steppedEnv) CAS(i int, exp, new word.Word) word.Word {
	old, ev := e.bank.Object(i).Apply(e.proc, exp, new)
	e.rec.Record(ev)
	if ev.Fault == fault.Nonresponsive {
		e.stalled = true
	}
	return old
}

// Len implements core.Env.
func (e *steppedEnv) Len() int { return e.bank.Len() }
