package run

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/word"
)

func TestConsensusHappyPath(t *testing.T) {
	res, err := Consensus(Config{
		Protocol: core.SingleCAS{},
		Inputs:   []int64{1, 2},
		Trace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK() {
		t.Fatalf("verdict: %s", res.Verdict)
	}
	if res.Sim.Log == nil || res.Sim.Log.Len() == 0 {
		t.Error("trace requested but empty")
	}
	if res.Bank.Len() != 1 {
		t.Errorf("bank size = %d", res.Bank.Len())
	}
}

func TestConsensusValidation(t *testing.T) {
	if _, err := Consensus(Config{Inputs: []int64{1}}); err == nil {
		t.Error("missing protocol must error")
	}
	if _, err := Consensus(Config{Protocol: core.SingleCAS{}}); err == nil {
		t.Error("missing inputs must error")
	}
}

func TestConsensusObserver(t *testing.T) {
	var n int
	_, err := Consensus(Config{
		Protocol: core.SingleCAS{},
		Inputs:   []int64{1, 2},
		Observer: func(trace.Event) { n++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // 2 CAS + 2 decide
		t.Errorf("observer saw %d events, want 4", n)
	}
}

func TestConsensusCustomStepLimit(t *testing.T) {
	res, err := Consensus(Config{
		Protocol:  core.NewSilentRetry(1), // StepBound 3
		Inputs:    []int64{1},
		Budget:    fault.NewFixedBudget([]int{0}, fault.Unbounded),
		Policy:    fault.Always(fault.Silent),
		StepLimit: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Violation != ViolationWaitFreedom {
		t.Fatalf("verdict = %s", res.Verdict)
	}
	if res.Sim.Steps[0] != 8 {
		t.Errorf("steps = %d, want limit+1 = 8", res.Sim.Steps[0])
	}
}

func simResult(decided []bool, vals []int64, stopped bool) *sim.Result {
	ws := make([]word.Word, len(vals))
	for i, v := range vals {
		if v >= 0 {
			ws[i] = word.FromValue(v)
		}
	}
	return &sim.Result{
		Decided:   decided,
		Decisions: ws,
		Steps:     make([]int, len(vals)),
		Stalled:   make([]bool, len(vals)),
		Stopped:   stopped,
	}
}

func TestEvaluateOK(t *testing.T) {
	v := Evaluate([]int64{5, 6}, simResult([]bool{true, true}, []int64{5, 5}, false), nil)
	if !v.OK() {
		t.Fatalf("verdict: %s", v)
	}
	if v.Agreed.Value() != 5 {
		t.Errorf("agreed = %s", v.Agreed)
	}
}

func TestEvaluateValidityViolation(t *testing.T) {
	v := Evaluate([]int64{5, 6}, simResult([]bool{true, true}, []int64{7, 7}, false), nil)
	if v.Violation != ViolationValidity {
		t.Fatalf("verdict: %s", v)
	}
}

func TestEvaluateBottomDecisionIsInvalid(t *testing.T) {
	v := Evaluate([]int64{5}, simResult([]bool{true}, []int64{-1}, false), nil)
	if v.Violation != ViolationValidity {
		t.Fatalf("verdict: %s", v)
	}
}

func TestEvaluateConsistencyViolation(t *testing.T) {
	v := Evaluate([]int64{5, 6}, simResult([]bool{true, true}, []int64{5, 6}, false), nil)
	if v.Violation != ViolationConsistency {
		t.Fatalf("verdict: %s", v)
	}
}

func TestEvaluateUndecidedIsWaitFreedomViolation(t *testing.T) {
	v := Evaluate([]int64{5, 6}, simResult([]bool{true, false}, []int64{5, -1}, false), nil)
	if v.Violation != ViolationWaitFreedom {
		t.Fatalf("verdict: %s", v)
	}
}

func TestEvaluateStoppedExecutionJudgedOnDeciders(t *testing.T) {
	// An adversarially stopped execution with agreeing survivors is OK...
	v := Evaluate([]int64{5, 6, 7}, simResult([]bool{true, false, true}, []int64{5, -1, 5}, true), nil)
	if !v.OK() {
		t.Fatalf("verdict: %s", v)
	}
	// ...but disagreeing survivors still violate consistency.
	v = Evaluate([]int64{5, 6, 7}, simResult([]bool{true, false, true}, []int64{5, -1, 6}, true), nil)
	if v.Violation != ViolationConsistency {
		t.Fatalf("verdict: %s", v)
	}
}

func TestEvaluateValidityBeatsConsistencyOrdering(t *testing.T) {
	// The first decider already violates validity; report that.
	v := Evaluate([]int64{5}, simResult([]bool{true}, []int64{9}, false), nil)
	if v.Violation != ViolationValidity {
		t.Fatalf("verdict: %s", v)
	}
}

func TestVerdictString(t *testing.T) {
	ok := Evaluate([]int64{5}, simResult([]bool{true}, []int64{5}, false), nil)
	if s := ok.String(); s == "" {
		t.Error("empty OK string")
	}
	bad := Evaluate([]int64{5, 6}, simResult([]bool{true, true}, []int64{5, 6}, false), nil)
	if s := bad.String(); s == "" {
		t.Error("empty violation string")
	}
}
