package run

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Settings is the unified description of consensus executions, shared by
// every driver in the repository: single runs (Consensus), the exploration
// engine (internal/explore), the experiment harness (internal/harness), and
// the CLI tools. It replaces the three historical config types — run.Config,
// explore.Config, and harness.Options — which remain as thin deprecated
// shims for one release.
//
// Construct a Settings with NewSettings and the With... functional options;
// zero values mean "use the default".
type Settings struct {
	// Protocol under test.
	Protocol core.Protocol
	// Inputs holds one input value per process; len(Inputs) is n.
	Inputs []int64
	// Scheduler chooses the interleaving for single runs; exploration
	// drivers install their own choice-driven scheduler.
	Scheduler sim.Scheduler
	// FaultyObjects is the adversary's committed faulty-object set.
	FaultyObjects []int
	// FaultsPerObject is the per-object fault bound t (fault.Unbounded
	// for t = ∞).
	FaultsPerObject int
	// Kind is the functional fault to inject (default Overriding).
	Kind fault.Kind
	// Policy, when non-nil, fixes the fault decisions (an adversary);
	// exploration then enumerates scheduling only.
	Policy fault.Policy
	// Budget, when non-nil, overrides the (FaultyObjects,
	// FaultsPerObject) budget for single runs.
	Budget *fault.Budget
	// Trace enables event recording.
	Trace bool
	// Observer, when non-nil, sees every recorded event.
	Observer func(trace.Event)
	// StepLimit overrides the protocol's per-process step bound.
	StepLimit int
	// Exec selects the execution form: compiled step machines or the
	// goroutine-gated reference simulator (default ExecAuto — compiled
	// whenever the protocol provides a core.Stepper).
	Exec ExecMode
	// Reduce selects the partial-order reduction mode for exploration
	// drivers (default ReduceOff).
	Reduce ReduceMode
	// MaxExecutions caps an exploration (0 means the explorer's default).
	MaxExecutions int
	// Workers is the exploration parallelism (0 means GOMAXPROCS).
	Workers int
	// Dedup enables state deduplication in the exploration engine.
	Dedup bool
	// CheckpointDir, when non-empty, makes the exploration engine create a
	// run store there and checkpoint into it periodically.
	CheckpointDir string
	// CheckpointEvery overrides the checkpoint period (0 means the
	// engine's default).
	CheckpointEvery time.Duration
	// Resume, when non-empty, resumes the exploration recorded in that run
	// directory; the stored manifest must match these settings.
	Resume string
	// LedgerDir, when non-empty, joins (or creates) the multi-process work
	// ledger in that run directory: the exploration claims subtrees from
	// the shared ledger and publishes results there, so any number of OS
	// processes pointed at the same directory cooperate on one sweep. The
	// stored manifest must match these settings. Mutually exclusive with
	// CheckpointDir and Resume.
	LedgerDir string
	// WorkerID names this participant in the work ledger (default
	// "host:pid"). It must be unique among live participants.
	WorkerID string
	// LeaseTTL is the ledger lease time-to-live: a participant silent for
	// this long forfeits its claimed subtree to the survivors (0 means the
	// ledger's default). Only the participant that creates the ledger sets
	// the TTL; later joiners adopt it.
	LeaseTTL time.Duration
	// Quick shrinks experiment sweeps and sample counts.
	Quick bool
	// Seed drives every randomized component.
	Seed int64
	// Metrics, when non-nil, is the registry exploration drivers publish
	// their counters, gauges, and histograms on (see docs/MODEL.md for the
	// metric names).
	Metrics *obs.Registry
	// Events, when non-nil, receives the structured run event log.
	Events *obs.Log
	// TraceDir, when non-empty, makes exploration drivers capture durable
	// execution traces (trace/v1 JSONL + Perfetto JSON) into that directory:
	// every violation, plus one in TraceSample passing executions.
	TraceDir string
	// TraceSample is the passing-execution sampling rate for TraceDir
	// (0 disables passing-run capture; violations are always captured).
	TraceSample int
}

// Option mutates one Settings field; the With... constructors below are the
// single way executions are described across the packages.
type Option func(*Settings)

// NewSettings applies the options to a zero Settings.
func NewSettings(opts ...Option) *Settings {
	s := &Settings{}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// WithProtocol sets the protocol under test.
func WithProtocol(p core.Protocol) Option { return func(s *Settings) { s.Protocol = p } }

// WithInputs sets one input value per process.
func WithInputs(inputs ...int64) Option {
	return func(s *Settings) { s.Inputs = append([]int64(nil), inputs...) }
}

// WithDistinctInputs sets the canonical n distinct inputs 10, 11, …, 10+n−1
// used throughout the experiments.
func WithDistinctInputs(n int) Option {
	return func(s *Settings) {
		s.Inputs = make([]int64, n)
		for i := range s.Inputs {
			s.Inputs[i] = int64(10 + i)
		}
	}
}

// WithScheduler sets the interleaving for single runs.
func WithScheduler(sched sim.Scheduler) Option { return func(s *Settings) { s.Scheduler = sched } }

// WithFaultyObjects commits the adversary to the given faulty-object set
// with at most perObject faults each (fault.Unbounded for t = ∞).
func WithFaultyObjects(ids []int, perObject int) Option {
	return func(s *Settings) {
		s.FaultyObjects = append([]int(nil), ids...)
		s.FaultsPerObject = perObject
	}
}

// WithAllObjectsFaulty commits the adversary to every object of the
// protocol (requires WithProtocol first, as options apply in order).
func WithAllObjectsFaulty(perObject int) Option {
	return func(s *Settings) {
		if s.Protocol == nil {
			panic("run: WithAllObjectsFaulty requires WithProtocol before it")
		}
		ids := make([]int, s.Protocol.Objects())
		for i := range ids {
			ids[i] = i
		}
		s.FaultyObjects = ids
		s.FaultsPerObject = perObject
	}
}

// WithFaultKind sets the functional fault to inject.
func WithFaultKind(k fault.Kind) Option { return func(s *Settings) { s.Kind = k } }

// WithPolicy fixes the fault decisions to a deterministic adversary policy.
func WithPolicy(p fault.Policy) Option { return func(s *Settings) { s.Policy = p } }

// WithBudget sets an explicit fault budget for single runs.
func WithBudget(b *fault.Budget) Option { return func(s *Settings) { s.Budget = b } }

// WithTrace enables event recording.
func WithTrace() Option { return func(s *Settings) { s.Trace = true } }

// WithObserver installs an event observer.
func WithObserver(fn func(trace.Event)) Option { return func(s *Settings) { s.Observer = fn } }

// WithStepLimit overrides the protocol's per-process step bound.
func WithStepLimit(n int) Option { return func(s *Settings) { s.StepLimit = n } }

// WithCompiled selects the execution form explicitly: true requires the
// compiled step machines (refusing protocols without a core.Stepper),
// false forces the goroutine-gated reference simulator. Without this
// option the compiled form is used whenever the protocol provides one.
func WithCompiled(compiled bool) Option {
	return func(s *Settings) {
		if compiled {
			s.Exec = ExecCompiled
		} else {
			s.Exec = ExecInterpreted
		}
	}
}

// WithExecMode sets the execution form directly (flag plumbing).
func WithExecMode(m ExecMode) Option { return func(s *Settings) { s.Exec = m } }

// WithReduce sets the exploration engine's partial-order reduction mode.
func WithReduce(m ReduceMode) Option { return func(s *Settings) { s.Reduce = m } }

// WithMaxExecutions caps an exploration.
func WithMaxExecutions(n int) Option { return func(s *Settings) { s.MaxExecutions = n } }

// WithWorkers sets the exploration parallelism (0 means GOMAXPROCS).
func WithWorkers(n int) Option { return func(s *Settings) { s.Workers = n } }

// WithDedup enables state deduplication in the exploration engine: subtrees
// rooted at an already-visited canonical execution state are pruned.
func WithDedup() Option { return func(s *Settings) { s.Dedup = true } }

// WithCheckpoint makes the exploration engine create a run store in dir and
// persist crash-safe checkpoints every period (0 means the engine default).
func WithCheckpoint(dir string, every time.Duration) Option {
	return func(s *Settings) {
		s.CheckpointDir = dir
		s.CheckpointEvery = every
	}
}

// WithResume makes the exploration engine resume the run recorded in dir,
// refusing to start if the stored manifest does not match these settings.
func WithResume(dir string) Option { return func(s *Settings) { s.Resume = dir } }

// WithLedger joins (or creates) the multi-process work ledger in the run
// directory: processes pointed at the same directory split one exploration
// between them and merge to the single-process verdict.
func WithLedger(dir string) Option { return func(s *Settings) { s.LedgerDir = dir } }

// WithWorkerID names this ledger participant (default "host:pid").
func WithWorkerID(id string) Option { return func(s *Settings) { s.WorkerID = id } }

// WithLeaseTTL sets the ledger lease time-to-live when creating a ledger;
// later joiners adopt the creator's TTL.
func WithLeaseTTL(ttl time.Duration) Option { return func(s *Settings) { s.LeaseTTL = ttl } }

// WithMetrics publishes exploration metrics on the given registry.
func WithMetrics(reg *obs.Registry) Option { return func(s *Settings) { s.Metrics = reg } }

// WithEvents sends the structured run event log to the given log.
func WithEvents(log *obs.Log) Option { return func(s *Settings) { s.Events = log } }

// WithTraceDir makes exploration drivers capture durable execution traces
// into dir: every violation, plus one in sampleN passing executions
// (0 disables passing-run capture).
func WithTraceDir(dir string, sampleN int) Option {
	return func(s *Settings) {
		s.TraceDir = dir
		s.TraceSample = sampleN
	}
}

// WithQuick shrinks experiment sweeps and sample counts.
func WithQuick(quick bool) Option { return func(s *Settings) { s.Quick = quick } }

// WithSeed fixes the seed of every randomized component.
func WithSeed(seed int64) Option { return func(s *Settings) { s.Seed = seed } }

// Validate checks the fields every driver requires.
func (s *Settings) Validate() error {
	if s.Protocol == nil {
		return fmt.Errorf("run: no protocol")
	}
	if len(s.Inputs) == 0 {
		return fmt.Errorf("run: no inputs")
	}
	return nil
}

// Config converts the unified settings to the legacy single-run Config.
func (s *Settings) Config() Config {
	budget := s.Budget
	if budget == nil && len(s.FaultyObjects) > 0 {
		budget = fault.NewFixedBudget(s.FaultyObjects, s.FaultsPerObject)
	}
	return Config{
		Protocol:  s.Protocol,
		Inputs:    s.Inputs,
		Scheduler: s.Scheduler,
		Budget:    budget,
		Policy:    s.Policy,
		Trace:     s.Trace,
		Observer:  s.Observer,
		StepLimit: s.StepLimit,
		Exec:      s.Exec,
	}
}

// ConsensusWith runs one execution described by the options. It is the
// unified-API form of Consensus.
func ConsensusWith(opts ...Option) (*Result, error) {
	return Consensus(NewSettings(opts...).Config())
}
