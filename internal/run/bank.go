package run

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/word"
)

// Bank is the common surface of a CAS-object bank, satisfied by both
// substrates: the deterministic simulator's object.Bank and the
// real-atomics atomicx.Bank. Code written against Bank — Programs, the
// exploration engine, the harness cost tables — runs unchanged on either
// substrate, with no type switches.
//
// Bind returns the bank as seen by one process. On the simulator the
// process handle gates each CAS behind a scheduled atomic step; on real
// atomics the calling goroutine is the process and the handle is ignored
// (nil is allowed there).
type Bank interface {
	// Bind returns the environment of one process.
	Bind(p *sim.Proc) core.Env
	// Len returns the number of CAS objects in the bank.
	Len() int
	// Reset restores every object to ⊥ (fresh executions).
	Reset()
	// Contents returns a snapshot of all register contents. Monitor-side
	// only; on real atomics the snapshot is not atomic across objects.
	Contents() []word.Word
	// Ops returns the number of CAS invocations executed so far.
	Ops() int64
}
