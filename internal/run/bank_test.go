package run

import (
	"testing"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/word"
)

// TestBankInterfaceUniform drives one consensus instance on each substrate
// purely through the Bank interface and checks the shared observable
// contract: object count, op accounting, contents inspection, and reset.
// This is the invariant the cost harness (E8) relies on to measure both
// substrates with one code path.
func TestBankInterfaceUniform(t *testing.T) {
	proto := core.SingleCAS{}
	inputs := []int64{41, 42}

	substrates := map[string]struct {
		bank   Bank
		decide func(t *testing.T, bank Bank) []int64
	}{
		"simulator": {
			bank: object.NewBank(proto.Objects(), fault.NewFixedBudget(nil, 0), fault.Never()),
			decide: func(t *testing.T, bank Bank) []int64 {
				res, err := sim.Run(sim.Config{
					Programs:  Programs(proto, bank, inputs),
					Scheduler: sim.NewRoundRobin(),
					StepLimit: proto.StepBound(len(inputs)),
				})
				if err != nil {
					t.Fatal(err)
				}
				out := make([]int64, len(inputs))
				for i := range out {
					out[i] = res.Decisions[i].Value()
				}
				return out
			},
		},
		"atomics": {
			bank: atomicx.NewBank(proto.Objects()),
			decide: func(t *testing.T, bank Bank) []int64 {
				env := bank.Bind(nil)
				out := make([]int64, len(inputs))
				for i, in := range inputs {
					out[i] = proto.Decide(env, in)
				}
				return out
			},
		},
	}

	for name, sub := range substrates {
		t.Run(name, func(t *testing.T) {
			bank := sub.bank
			if bank.Len() != proto.Objects() {
				t.Fatalf("Len = %d, want %d", bank.Len(), proto.Objects())
			}
			for i, w := range bank.Contents() {
				if w != word.Bottom {
					t.Fatalf("object %d starts at %s, want ⊥", i, w)
				}
			}
			if bank.Ops() != 0 {
				t.Fatalf("fresh bank reports %d ops", bank.Ops())
			}

			out := sub.decide(t, bank)
			for i, v := range out {
				if v != inputs[0] {
					t.Errorf("process %d decided %d, want %d", i, v, inputs[0])
				}
			}
			// SingleCAS: one CAS invocation per process.
			if got := bank.Ops(); got != int64(len(inputs)) {
				t.Errorf("Ops = %d, want %d", got, len(inputs))
			}
			if got := bank.Contents()[0]; got.Value() != inputs[0] {
				t.Errorf("object 0 holds %s, want %d", got, inputs[0])
			}

			bank.Reset()
			for i, w := range bank.Contents() {
				if w != word.Bottom {
					t.Errorf("object %d = %s after Reset, want ⊥", i, w)
				}
			}
		})
	}
}
