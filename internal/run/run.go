// Package run wires a consensus protocol to the deterministic simulator and
// evaluates the consensus correctness conditions of Section 2 of the paper:
// validity (the decision is some process's input), consistency (all deciders
// agree), and wait-freedom (every process decides within its step bound).
package run

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/word"
)

// Programs builds one simulator program per input value, each executing the
// protocol against the shared bank.
func Programs(proto core.Protocol, bank Bank, inputs []int64) []sim.Program {
	progs := make([]sim.Program, len(inputs))
	for i, input := range inputs {
		input := input
		progs[i] = func(p *sim.Proc) word.Word {
			return word.FromValue(proto.Decide(bank.Bind(p), input))
		}
	}
	return progs
}

// BoundPrograms builds one program per input value with the object
// environment pre-bound to the arena's stable process handles, so repeated
// replays do not allocate a binding per program invocation. The returned
// programs are tied to those handles: they must only run on the arena that
// produced procs (procs[i] is the handle the arena passes to program i).
func BoundPrograms(proto core.Protocol, bank Bank, inputs []int64, procs []*sim.Proc) []sim.Program {
	if len(procs) != len(inputs) {
		panic(fmt.Sprintf("run: %d process handles for %d inputs", len(procs), len(inputs)))
	}
	progs := make([]sim.Program, len(inputs))
	for i, input := range inputs {
		input := input
		env := bank.Bind(procs[i])
		progs[i] = func(*sim.Proc) word.Word {
			return word.FromValue(proto.Decide(env, input))
		}
	}
	return progs
}

// Config describes one simulated consensus execution.
//
// Deprecated: new code should describe executions with the unified
// functional options (NewSettings / ConsensusWith and the run.With...
// constructors); Config remains as a thin shim for one release.
type Config struct {
	Protocol core.Protocol
	// Inputs holds one input value per process; len(Inputs) is n.
	Inputs []int64
	// Scheduler chooses the interleaving; defaults to round-robin.
	Scheduler sim.Scheduler
	// Budget limits faults per Definition 3; nil means no faults admitted.
	Budget *fault.Budget
	// Policy proposes faults; nil means none.
	Policy fault.Policy
	// Trace enables event recording.
	Trace bool
	// Observer, when non-nil, sees every recorded event (requires Trace
	// or is invoked with synthesized events).
	Observer func(trace.Event)
	// StepLimit overrides the protocol's StepBound when positive.
	StepLimit int
	// Exec selects the execution form (default ExecAuto: compiled when
	// the protocol provides a core.Stepper).
	Exec ExecMode
}

// Result bundles the simulation outcome with its verdict.
type Result struct {
	Sim     *sim.Result
	Verdict Verdict
	Bank    *object.Bank
}

// Consensus runs one execution and evaluates it. An error is returned only
// for framework-level failures (program panic, cancellation); a
// wait-freedom violation is reported through the verdict, since for the
// impossibility experiments a violation is the expected observation, not an
// error.
func Consensus(cfg Config) (*Result, error) {
	return ConsensusContext(context.Background(), cfg)
}

// ConsensusContext is Consensus with cancellation: when ctx is cancelled
// mid-execution the partial result is returned together with ctx.Err().
func ConsensusContext(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("run: no protocol")
	}
	if len(cfg.Inputs) == 0 {
		return nil, fmt.Errorf("run: no inputs")
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = sim.NewRoundRobin()
	}
	compiled, err := ResolveExec(cfg.Exec, cfg.Protocol)
	if err != nil {
		return nil, err
	}
	bank := object.NewBank(cfg.Protocol.Objects(), cfg.Budget, cfg.Policy)

	limit := cfg.StepLimit
	if limit <= 0 {
		limit = cfg.Protocol.StepBound(len(cfg.Inputs))
	}

	var res *sim.Result
	if compiled {
		stepper, _ := core.Compile(cfg.Protocol)
		steppedCfg := sim.SteppedConfig{
			Procs:     len(cfg.Inputs),
			Program:   NewSteppedExec(stepper, bank, cfg.Inputs),
			Scheduler: sched,
			StepLimit: limit,
			Observer:  cfg.Observer,
		}
		if cfg.Trace {
			steppedCfg.Log = trace.New()
		}
		res, err = sim.RunStepped(ctx, steppedCfg)
	} else {
		simCfg := sim.Config{
			Programs:  Programs(cfg.Protocol, bank, cfg.Inputs),
			Scheduler: sched,
			StepLimit: limit,
			Observer:  cfg.Observer,
		}
		if cfg.Trace {
			simCfg.Log = trace.New()
		}
		res, err = sim.RunContext(ctx, simCfg)
	}
	if err != nil && res == nil {
		return nil, err
	}
	verdict := Evaluate(cfg.Inputs, res, err)
	result := &Result{Sim: res, Verdict: verdict, Bank: bank}
	// A wait-freedom violation is folded into the verdict (it is an
	// observation, not a failure). Any other partial-result error —
	// cancellation, a future simulator condition — must reach the caller:
	// silently evaluating the truncated execution would report a verdict
	// for an execution that never ran to its end.
	if err != nil && !errors.Is(err, sim.ErrWaitFreedom) {
		return result, err
	}
	return result, nil
}
