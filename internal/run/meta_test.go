package run

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

// TestMetaRoundTrip: SettingsFromMeta(MetaFromSettings(s)) must rebuild
// equivalent settings for every canonical protocol family — this is what
// makes a trace file (or a run directory) self-describing.
func TestMetaRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"figure1", []Option{
			WithProtocol(core.SingleCAS{}), WithDistinctInputs(2),
			WithFaultyObjects([]int{0}, fault.Unbounded),
		}},
		{"figure2", []Option{
			WithProtocol(core.NewFPlusOne(2)), WithDistinctInputs(3),
			WithFaultyObjects([]int{0, 1}, fault.Unbounded),
		}},
		{"figure3", []Option{
			WithProtocol(core.NewStaged(2, 1)), WithDistinctInputs(3),
			WithAllObjectsFaulty(1),
		}},
		{"silent-retry", []Option{
			WithProtocol(core.NewSilentRetry(2)), WithDistinctInputs(2),
			WithFaultyObjects([]int{0}, 2), WithFaultKind(fault.Silent),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSettings(tc.opts...)
			meta := MetaFromSettings(s)
			got, err := SettingsFromMeta(meta, s.Inputs)
			if err != nil {
				t.Fatal(err)
			}
			if got.Protocol.Name() != s.Protocol.Name() {
				t.Errorf("protocol %q != %q", got.Protocol.Name(), s.Protocol.Name())
			}
			if len(got.Inputs) != len(s.Inputs) {
				t.Errorf("inputs %v != %v", got.Inputs, s.Inputs)
			}
			if len(got.FaultyObjects) != len(s.FaultyObjects) {
				t.Errorf("faulty objects %v != %v", got.FaultyObjects, s.FaultyObjects)
			}
			if got.FaultsPerObject != s.FaultsPerObject {
				t.Errorf("faults/object %d != %d", got.FaultsPerObject, s.FaultsPerObject)
			}
			wantKind := s.Kind
			if wantKind == fault.None {
				wantKind = fault.Overriding
			}
			if got.Kind != wantKind {
				t.Errorf("kind %v != %v", got.Kind, wantKind)
			}
		})
	}
}

// TestMetaRoundTripExec: the resolved execution form survives the meta
// round trip, so an artifact replays under the engine that produced it —
// and a meta without an exec entry (predating the compiled form) keeps the
// default auto resolution.
func TestMetaRoundTripExec(t *testing.T) {
	base := []Option{
		WithProtocol(core.NewStaged(1, 1)), WithDistinctInputs(2),
		WithAllObjectsFaulty(1),
	}
	cases := []struct {
		name string
		mode ExecMode
		want ExecMode // reconstructed mode
	}{
		// Auto on a steppered protocol resolves (and records) compiled.
		{"auto-resolves-compiled", ExecAuto, ExecCompiled},
		{"compiled", ExecCompiled, ExecCompiled},
		{"interpreted", ExecInterpreted, ExecInterpreted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSettings(append(base, WithExecMode(tc.mode))...)
			meta := MetaFromSettings(s)
			wantCompiled, err := ResolveExec(tc.mode, s.Protocol)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := meta["exec"], ExecLabel(wantCompiled); got != want {
				t.Fatalf("meta exec = %q, want %q", got, want)
			}
			got, err := SettingsFromMeta(meta, s.Inputs)
			if err != nil {
				t.Fatal(err)
			}
			if got.Exec != tc.want {
				t.Errorf("reconstructed Exec = %v, want %v", got.Exec, tc.want)
			}
		})
	}

	t.Run("legacy-meta-keeps-auto", func(t *testing.T) {
		s, err := SettingsFromMeta(map[string]string{"proto": "figure1", "n": "2"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if s.Exec != ExecAuto {
			t.Errorf("Exec = %v, want ExecAuto for meta without an exec entry", s.Exec)
		}
	})

	t.Run("corrupt-exec-refused", func(t *testing.T) {
		if _, err := SettingsFromMeta(map[string]string{"proto": "figure1", "n": "2", "exec": "jit"}, nil); err == nil {
			t.Error("unknown exec form in meta must be refused")
		}
	})
}

// TestSettingsFromMetaCanonicalInputs: without explicit inputs, the meta's
// process count yields the canonical 10, 11, … inputs every driver uses.
func TestSettingsFromMetaCanonicalInputs(t *testing.T) {
	s, err := SettingsFromMeta(map[string]string{"proto": "figure3", "f": "1", "t": "1", "n": "3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Inputs) != 3 || s.Inputs[0] != 10 || s.Inputs[2] != 12 {
		t.Errorf("canonical inputs = %v", s.Inputs)
	}
}

// TestSettingsFromMetaModelcheckFlags: the flat map the modelcheck CLI
// writes (faulty=-1 meaning "all objects", flag spellings) must parse.
func TestSettingsFromMetaModelcheckFlags(t *testing.T) {
	meta := map[string]string{
		"proto": "staged", "f": "2", "t": "1", "n": "3",
		"fault": "overriding", "unbounded": "false", "faulty": "-1", "dedup": "true",
	}
	s, err := SettingsFromMeta(meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.FaultyObjects) != s.Protocol.Objects() {
		t.Errorf("faulty=-1 must mean all %d objects, got %v", s.Protocol.Objects(), s.FaultyObjects)
	}
	if s.Protocol.Name() != core.NewStaged(2, 1).Name() {
		t.Errorf("protocol = %s", s.Protocol.Name())
	}
}

func TestSettingsFromMetaRejectsUnknown(t *testing.T) {
	if _, err := SettingsFromMeta(map[string]string{"proto": "nope", "n": "2"}, nil); err == nil {
		t.Error("unknown protocol must be refused")
	}
	if _, err := SettingsFromMeta(map[string]string{"proto": "figure1", "fault": "arbitrary", "n": "2"}, nil); err == nil {
		t.Error("unsupported fault kind must be refused")
	}
	if _, err := SettingsFromMeta(map[string]string{"proto": "figure1"}, nil); err == nil {
		t.Error("missing n and inputs must be refused")
	}
}
