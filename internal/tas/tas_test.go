package tas

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/word"
)

// runTwoProc executes the 2-process TAS consensus under the given scheduler
// and TAS fault policy, returning the two decisions.
func runTwoProc(t *testing.T, sched sim.Scheduler, budget *fault.Budget, policy Policy) [2]int64 {
	t.Helper()
	tasBit := New(0, budget, policy)
	announce := [2]*object.Register{object.NewRegister(1), object.NewRegister(2)}
	inputs := [2]int64{10, 11}
	mk := func(id int) sim.Program {
		return func(p *sim.Proc) word.Word {
			return word.FromValue(TwoProcessConsensus(p, tasBit, announce, id, inputs[id]))
		}
	}
	res, err := sim.Run(sim.Config{
		Programs:  []sim.Program{mk(0), mk(1)},
		Scheduler: sched,
		StepLimit: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return [2]int64{res.Decisions[0].Value(), res.Decisions[1].Value()}
}

func TestApplySemantics(t *testing.T) {
	o := New(0, nil, nil)
	old, faulted := o.Apply(0)
	if old != 0 || faulted {
		t.Fatalf("first TAS: old=%d faulted=%v", old, faulted)
	}
	if !o.Set() {
		t.Fatal("bit must be set after a win")
	}
	old, faulted = o.Apply(1)
	if old != 1 || faulted {
		t.Fatalf("second TAS: old=%d faulted=%v", old, faulted)
	}
}

func TestLostSetFaultSemantics(t *testing.T) {
	b := fault.NewBudget(1, 1)
	o := New(0, b, Always())
	old, faulted := o.Apply(0)
	if old != 0 || !faulted {
		t.Fatalf("lost set: old=%d faulted=%v", old, faulted)
	}
	if o.Set() {
		t.Fatal("lost set must leave the bit unset")
	}
	if b.Faults(0) != 1 {
		t.Fatal("lost set must be charged")
	}
	// Budget exhausted: the next TAS wins genuinely.
	old, faulted = o.Apply(1)
	if old != 0 || faulted || !o.Set() {
		t.Fatalf("post-budget TAS: old=%d faulted=%v set=%v", old, faulted, o.Set())
	}
}

func TestLostSetUnobservableWhenAlreadySet(t *testing.T) {
	b := fault.NewBudget(1, 1)
	o := New(0, b, Always())
	o.set = true
	old, faulted := o.Apply(0)
	if old != 1 || faulted {
		t.Fatalf("TAS on set bit: old=%d faulted=%v", old, faulted)
	}
	if b.TotalFaults() != 0 {
		t.Fatal("no budget may be consumed on an already-set bit")
	}
}

func TestTwoProcessConsensusFaultFree(t *testing.T) {
	// All schedules of the short protocol: fault-free TAS solves
	// 2-process consensus (consensus number 2).
	scheds := []func() sim.Scheduler{
		func() sim.Scheduler { return sim.NewRoundRobin() },
		func() sim.Scheduler { return sim.NewSolo(0, 1) },
		func() sim.Scheduler { return sim.NewSolo(1, 0) },
	}
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		scheds = append(scheds, func() sim.Scheduler { return sim.NewRandom(seed) })
	}
	for i, mk := range scheds {
		d := runTwoProc(t, mk(), nil, nil)
		if d[0] != d[1] {
			t.Fatalf("schedule %d: disagreement %v", i, d)
		}
		if d[0] != 10 && d[0] != 11 {
			t.Fatalf("schedule %d: invalid decision %v", i, d)
		}
	}
}

func TestSingleLostSetFaultBreaksConsensus(t *testing.T) {
	// The contrast with Theorem 4: ONE lost-set fault defeats the TAS
	// construction at n = 2, while the overriding CAS tolerates
	// unboundedly many faults there. Round-robin: p0's TAS faults
	// (spurious win), p1's TAS genuinely wins — both decide their own
	// inputs.
	d := runTwoProc(t, sim.NewRoundRobin(), fault.NewFixedBudget([]int{0}, 1), Always())
	if d[0] == d[1] {
		t.Fatalf("expected disagreement, got agreement on %v", d)
	}
	if d[0] != 10 || d[1] != 11 {
		t.Fatalf("expected both to win their own inputs, got %v", d)
	}
}

func TestLostSetFaultHarmlessInSoloRuns(t *testing.T) {
	// A lost-set fault with no concurrent contender is harmless: the
	// faulted winner still decides its own input; the later process
	// "wins" the unset bit and... also decides its own input — so solo
	// order with a fault DOES break it too, unless the second process
	// never runs. Verify the precise boundary: a genuinely solo run is
	// correct.
	tasBit := New(0, fault.NewFixedBudget([]int{0}, 1), Always())
	announce := [2]*object.Register{object.NewRegister(1), object.NewRegister(2)}
	prog := func(p *sim.Proc) word.Word {
		return word.FromValue(TwoProcessConsensus(p, tasBit, announce, 0, 42))
	}
	res, err := sim.Run(sim.Config{
		Programs:  []sim.Program{prog},
		Scheduler: sim.NewRoundRobin(),
		StepLimit: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0].Value() != 42 {
		t.Fatalf("solo run decided %s", res.Decisions[0])
	}
}

func TestInvokeRecordsTraceEvent(t *testing.T) {
	tasBit := New(7, fault.NewFixedBudget([]int{7}, 1), Always())
	log := trace.New()
	prog := func(p *sim.Proc) word.Word {
		tasBit.Invoke(p)
		tasBit.Invoke(p) // budget spent: genuine win, no fault
		return word.Bottom
	}
	if _, err := sim.Run(sim.Config{
		Programs:  []sim.Program{prog},
		Scheduler: sim.NewRoundRobin(),
		Log:       log,
	}); err != nil {
		t.Fatal(err)
	}
	faults := log.Faults()
	if len(faults) != 1 || faults[0].Object != 7 || faults[0].Fault != fault.Silent {
		t.Fatalf("fault events: %v", faults)
	}
	// The second invoke set the bit: its event must show the write.
	var wrote bool
	for _, e := range log.Events() {
		if e.Kind == trace.EventCAS && e.Wrote() {
			wrote = true
		}
	}
	if !wrote {
		t.Error("genuine win must be traced as a write")
	}
}
