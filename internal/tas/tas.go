// Package tas extends the functional-fault framework to a second object
// type — test-and-set — pursuing the paper's closing question (Section 7):
// "examine other widely used functions with natural faults and understand
// whether they can be overcome with clever constructions."
//
// A test-and-set bit sits at level 2 of the Herlihy hierarchy: with two
// read/write registers it solves consensus for exactly two processes. Its
// natural one-sided functional fault — the *lost-set* fault, where the
// operation reports winning (returns 0) but fails to set the bit — is the
// structural analog of the CAS silent fault. The contrast with the paper's
// case study is sharp and instructive:
//
//   - An overriding-faulty CAS still solves 2-process consensus with
//     unboundedly many faults (Theorem 4), because Φ′ keeps the returned
//     old value truthful.
//   - A lost-set-faulty TAS loses 2-process consensus after a SINGLE
//     fault: the fault corrupts exactly the information (who won) that the
//     protocol depends on, and the object offers no later correction.
//
// The package demonstrates both directions with executable evidence (see
// the tests), giving an instance of the paper's open classification
// question: which relaxed postconditions Φ′ are survivable is determined by
// whether Φ′ preserves the bits the construction consumes.
package tas

import (
	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/word"
)

// Object is a test-and-set bit supporting only the TAS operation: it sets
// the bit and returns its previous value (0 = the caller won).
type Object struct {
	id     int
	set    bool
	budget *fault.Budget
	policy Policy
}

// Policy decides, per TAS invocation, whether the lost-set fault fires.
type Policy interface {
	// Decide reports whether to propose a lost-set fault for an
	// invocation by proc while the bit has the given current state.
	Decide(proc int, set bool) bool
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc func(proc int, set bool) bool

// Decide implements Policy.
func (f PolicyFunc) Decide(proc int, set bool) bool { return f(proc, set) }

// Never returns a policy proposing no faults.
func Never() Policy { return PolicyFunc(func(int, bool) bool { return false }) }

// Always returns a policy proposing the lost-set fault on every invocation.
func Always() Policy { return PolicyFunc(func(int, bool) bool { return true }) }

// New returns a TAS object initialized to unset. budget and policy may be
// nil for a fault-free object.
func New(id int, budget *fault.Budget, policy Policy) *Object {
	if policy == nil {
		policy = Never()
	}
	return &Object{id: id, budget: budget, policy: policy}
}

// Set reports the current bit state (monitor-side; protocols only get the
// TAS return value).
func (o *Object) Set() bool { return o.set }

// Apply executes one atomic TAS action without scheduling and returns the
// previous bit value (0 or 1) and whether a lost-set fault fired.
//
// The specification Φ of TAS is: bit′ = 1 ∧ old = bit. The lost-set Φ′ is:
// bit′ = bit ∧ old = bit — the returned old value is still truthful, but
// the set is dropped. The fault is observable only when the bit was unset
// (a set on an already-set bit is a no-op anyway), and only observable
// faults consume budget, per Definition 1.
func (o *Object) Apply(proc int) (old int, faulted bool) {
	if o.set {
		return 1, false
	}
	if o.policy.Decide(proc, o.set) && o.budget != nil && o.budget.Admits(o.id) {
		o.budget.Charge(o.id)
		return 0, true // lost set: report a win but leave the bit unset
	}
	o.set = true
	return 0, false
}

// Invoke executes the TAS operation as one atomic step of the simulated
// process p, recording a trace event.
func (o *Object) Invoke(p *sim.Proc) int {
	var old int
	p.Exec(func() {
		var faulted bool
		old, faulted = o.Apply(p.ID())
		kind := fault.None
		if faulted {
			kind = fault.Silent // the lost set is the TAS silent analog
		}
		post := word.FromValue(1)
		if !o.set {
			post = word.Bottom
		}
		pre := word.FromValue(1)
		if old == 0 {
			pre = word.Bottom
		}
		p.Record(trace.Event{
			Kind:   trace.EventCAS, // recorded in the CAS event shape: exp=⊥, new=1
			Proc:   p.ID(),
			Object: o.id,
			Exp:    word.Bottom,
			New:    word.FromValue(1),
			Pre:    pre,
			Post:   post,
			Old:    pre,
			Fault:  kind,
		})
	})
	return old
}

// TwoProcessConsensus is the classic 2-process consensus from one TAS bit
// and two single-writer registers: each process announces its input in its
// register, then races the TAS; the winner decides its own input, the loser
// reads the winner's announcement.
//
// procID must be 0 or 1. With a fault-free TAS this satisfies validity,
// consistency, and wait-freedom for two processes (TAS has consensus
// number 2); with a single lost-set fault it does not — see the tests.
func TwoProcessConsensus(p *sim.Proc, t *Object, announce [2]*object.Register, procID int, input int64) int64 {
	announce[procID].Write(p, word.FromValue(input))
	if t.Invoke(p) == 0 {
		return input // won the race
	}
	return announce[1-procID].Read(p).Value()
}
