// Package harness defines the reproduction experiments E1–E8 of DESIGN.md:
// one experiment per paper result (Figures 1–3, Theorems 4–6, 18, 19, the
// consensus-hierarchy observation of Section 5.2, the fault taxonomy of
// Section 3.4, and the practicality measurements). Each experiment prints
// the table recorded in EXPERIMENTS.md and returns an error if the paper's
// prediction fails to reproduce.
package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/run"
)

// Options tunes experiment effort. It is the harness view of the unified
// run.Settings; construct it from the shared run.With... options via
// NewOptions.
type Options struct {
	// Quick shrinks sweeps and sample counts (used by tests); the full
	// configuration is the default used by cmd/experiments.
	Quick bool
	// Seed drives every randomized component; a fixed seed reproduces
	// the exact tables.
	Seed int64
	// Workers is the parallelism of exploration-driven experiments
	// (0 means GOMAXPROCS). Tables stay identical across worker counts:
	// the engine's results are deterministic.
	Workers int
	// Metrics, when non-nil, receives the counters of every exploration
	// an experiment drives, plus the harness's own per-experiment
	// accounting (harness.experiments.*).
	Metrics *obs.Registry
	// Events, when non-nil, receives experiment lifecycle events and the
	// engine event streams of the underlying explorations.
	Events *obs.Log
	// TraceDir, when non-empty, captures execution traces of every
	// exploration the experiments drive into that directory (violations
	// always, 1-in-TraceSample passing runs); file numbering is shared
	// across the sweep's explorations.
	TraceDir string
	// TraceSample is the passing-execution sampling rate for TraceDir.
	TraceSample int
	// Exec selects the execution form of every exploration the experiments
	// drive: compiled step machines, the goroutine-gated reference
	// simulator, or auto (compiled when the protocol provides a Stepper).
	// Tables are identical across forms; only throughput changes.
	Exec run.ExecMode
	// Reduce applies partial-order reduction to every exhaustive
	// exploration driven by the checker's own fault policy (fixed-policy
	// rows run unreduced — the reducer reasons about the checker's fault
	// branches). Verdicts and counterexamples are unchanged in the default
	// safe mode; printed execution counts shrink.
	Reduce run.ReduceMode
}

// NewOptions derives experiment options from the unified run.With... options
// (run.WithQuick, run.WithSeed, run.WithWorkers, run.WithMetrics,
// run.WithEvents, run.WithTraceDir, run.WithExecMode).
func NewOptions(opts ...run.Option) Options {
	s := run.NewSettings(opts...)
	return Options{Quick: s.Quick, Seed: s.Seed, Workers: s.Workers,
		Metrics: s.Metrics, Events: s.Events,
		TraceDir: s.TraceDir, TraceSample: s.TraceSample,
		Exec: s.Exec, Reduce: s.Reduce}
}

// engine bundles the options every engine-driven exploration inside an
// experiment shares: the parallelism plus the observability sinks, so one
// registry, one event log, and one trace directory see every exploration
// the harness runs.
func (o Options) engine() run.Option {
	return func(s *run.Settings) {
		s.Workers = o.Workers
		s.Metrics = o.Metrics
		s.Events = o.Events
		s.TraceDir = o.TraceDir
		s.TraceSample = o.TraceSample
		s.Exec = o.Exec
		s.Reduce = o.Reduce
	}
}

// Experiment is one reproduction experiment.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E3").
	ID string
	// Title summarizes the experiment.
	Title string
	// Claim is the paper result being reproduced.
	Claim string
	// Run executes the experiment, writes its table(s) to w, and returns
	// an error if the paper's prediction does not hold.
	Run func(w io.Writer, opts Options) error
}

// All lists the experiments in order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "E1",
			Title: "Two-process consensus from one faulty CAS (Figure 1)",
			Claim: "Theorem 4: (f, ∞, 2)-tolerant with a single object",
			Run:   runE1,
		},
		{
			ID:    "E2",
			Title: "f-tolerant consensus from f+1 CAS objects (Figure 2)",
			Claim: "Theorem 5: f faulty objects, unbounded faults, any n",
			Run:   runE2,
		},
		{
			ID:    "E3",
			Title: "(f, t, f+1)-tolerant consensus from f faulty objects (Figure 3)",
			Claim: "Theorem 6: all objects faulty, bounded faults, n = f+1",
			Run:   runE3,
		},
		{
			ID:    "E4",
			Title: "Impossibility with unbounded faults and n > 2",
			Claim: "Theorem 18: f objects cannot carry consensus for n = 3",
			Run:   runE4,
		},
		{
			ID:    "E5",
			Title: "Covering adversary at n = f+2 (and its failure at f+1)",
			Claim: "Theorem 19: f objects cannot carry consensus for n ≥ f+2",
			Run:   runE5,
		},
		{
			ID:    "E6",
			Title: "Consensus hierarchy of faulty CAS objects",
			Claim: "Section 5.2: consensus number of f bounded-faulty CAS = f+1",
			Run:   runE6,
		},
		{
			ID:    "E7",
			Title: "Other fault kinds and the data-fault expressiveness gap",
			Claim: "Sections 3.4 and 4: silent faults recoverable iff bounded; one data fault beats any functional budget",
			Run:   runE7,
		},
		{
			ID:    "E8",
			Title: "Construction cost on real atomics",
			Claim: "Practicality: cost ordering baseline < Fig.2 < Fig.3, Fig.3 cost grows with t·(4f+f²)",
			Run:   runE8,
		},
		{
			ID:    "E9",
			Title: "Graceful degradation beyond the budget",
			Claim: "Section 7 direction: over-budget overriding faults break consistency only — validity and wait-freedom survive",
			Run:   runE9,
		},
		{
			ID:    "E10",
			Title: "Stage-budget ablation for Figure 3",
			Claim: "Section 4.3 remark: an earlier maximal stage can work — the paper's t·(4f+f²) is safe and conservative",
			Run:   runE10,
		},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunOne executes a single experiment with observability: an
// experiment.start/.done event pair, a pass/fail counter, and a duration
// histogram on the options' registry (all no-ops when observability is
// off). Both cmd/experiments and RunAll go through it, so per-experiment
// accounting is identical for single and full runs.
func RunOne(w io.Writer, e Experiment, opts Options) error {
	opts.Events.Emit(obs.Info, "experiment.start", map[string]any{
		"id": e.ID, "title": e.Title, "quick": opts.Quick,
	})
	start := time.Now()
	err := e.Run(w, opts)
	elapsed := time.Since(start)
	if opts.Metrics != nil {
		opts.Metrics.Counter("harness.experiments.run").Inc()
		if err != nil {
			opts.Metrics.Counter("harness.experiments.failed").Inc()
		}
		opts.Metrics.Histogram("harness.experiment.duration_ms",
			10, 50, 100, 500, 1000, 5000, 10000, 60000, 300000).
			Observe(float64(elapsed.Microseconds()) / 1000)
	}
	fields := map[string]any{"id": e.ID, "elapsed_ms": elapsed.Milliseconds(), "ok": err == nil}
	if err != nil {
		fields["error"] = err.Error()
		opts.Events.Emit(obs.Error, "experiment.done", fields)
	} else {
		opts.Events.Emit(obs.Info, "experiment.done", fields)
	}
	return err
}

// RunAll executes every experiment in order, writing headers between them.
// It keeps going after a failure and returns a combined error.
func RunAll(w io.Writer, opts Options) error {
	var failed []string
	for _, e := range All() {
		fmt.Fprintf(w, "\n=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprintf(w, "claim: %s\n\n", e.Claim)
		if err := RunOne(w, e, opts); err != nil {
			fmt.Fprintf(w, "FAILED: %v\n", err)
			failed = append(failed, fmt.Sprintf("%s (%v)", e.ID, err))
			continue
		}
		fmt.Fprintf(w, "reproduced: %s\n", e.Claim)
	}
	if len(failed) > 0 {
		return fmt.Errorf("experiments failed: %v", failed)
	}
	return nil
}

// inputs returns n distinct input values.
func inputs(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(10 + i)
	}
	return in
}

// objectIDs returns [0, 1, .., n-1].
func objectIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}
