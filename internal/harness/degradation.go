package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/run"
)

// runE9 probes the paper's future-work question on graceful degradation
// (Section 7, following Jayanti et al.): when a construction is pushed
// BEYOND its proven budget — more processes than n, more faults than t —
// *how* does it fail?
//
// The overriding fault's relaxed postcondition Φ′ still (i) writes only
// operation-supplied values and (ii) returns truthful old values, so the
// prediction is that over-budget failures are confined to CONSISTENCY:
// validity (decisions are always some process's input) and wait-freedom
// (overriding never blocks progress) survive. That is a graceful
// degradation in Jayanti et al.'s sense — the compound object's failure
// stays within a benign fault class.
func runE9(w io.Writer, opts Options) error {
	runs := 4000
	if opts.Quick {
		runs = 600
	}

	type cfgRow struct {
		name string
		note string
		opts []run.Option
	}
	rows := []cfgRow{
		{
			// Theorem 19 boundary: one process too many.
			"figure3(f=1,t=1), n=3 (> f+1)",
			"breakable (Thm 19); uniform sampling finds it",
			[]run.Option{
				run.WithProtocol(core.NewStaged(1, 1)),
				run.WithInputs(inputs(3)...),
				run.WithFaultyObjects([]int{0}, 1),
			},
		},
		{
			"figure3(f=2,t=1), n=4 (> f+1)",
			"breakable (Thm 19) but needs covering-grade coordination — see E5",
			[]run.Option{
				run.WithProtocol(core.NewStaged(2, 1)),
				run.WithInputs(inputs(4)...),
				run.WithFaultyObjects([]int{0, 1}, 1),
			},
		},
		{
			// Theorem 18 boundary: unbounded faults.
			"figure1, n=3, t=∞",
			"breakable (Thm 18); violations common",
			[]run.Option{
				run.WithProtocol(core.SingleCAS{}),
				run.WithInputs(inputs(3)...),
				run.WithFaultyObjects([]int{0}, fault.Unbounded),
			},
		},
		{
			// Fault-count boundary: the staged protocol budgeted for
			// t=1 while the adversary spends up to t=3 per object —
			// at n=2 this is exhaustively safe anyway (the two-process
			// anomaly of Theorem 4 extends to the staged protocol).
			"figure3(f=1,t=1), actual t=3, n=2",
			"provably robust anyway (n=2 anomaly, exhaustively verified)",
			[]run.Option{
				run.WithProtocol(core.NewStaged(1, 1)),
				run.WithInputs(inputs(2)...),
				run.WithFaultyObjects([]int{0}, 3),
			},
		},
	}

	t := NewTable("over-budget configuration", "runs", "consistency", "validity", "wait-freedom", "note")
	totalConsistency := 0
	for _, r := range rows {
		consistency, validity, waitFreedom, err := tallyViolations(r.opts, runs, opts.Seed)
		if err != nil {
			return err
		}
		t.Add(r.name, runs, consistency, validity, waitFreedom, r.note)
		totalConsistency += consistency
		if validity != 0 {
			t.Render(w)
			return fmt.Errorf("E9: %q produced %d validity violations — overriding faults must preserve validity", r.name, validity)
		}
		if waitFreedom != 0 {
			t.Render(w)
			return fmt.Errorf("E9: %q produced %d wait-freedom violations — overriding faults must not block progress", r.name, waitFreedom)
		}
	}
	t.Render(w)
	if totalConsistency == 0 {
		return fmt.Errorf("E9: no consistency violations observed in any over-budget configuration — the probe has no power")
	}
	fmt.Fprintf(w, "\nover-budget failures are consistency-only: validity and wait-freedom survive (graceful degradation)\n")

	// The f=2 row above shows 0 because its violation needs covering-grade
	// coordination; a PCT scheduler (solo bursts + targeted preemptions)
	// reaches it where uniform sampling cannot — and its violations must
	// also be consistency-only.
	pctRuns := 3000
	if opts.Quick {
		pctRuns = 800
	}
	pctOut, err := explore.StressPCTWith(pctRuns, opts.Seed, 3, 0,
		run.WithProtocol(core.NewStaged(2, 1)),
		run.WithInputs(inputs(4)...),
		run.WithFaultyObjects([]int{0, 1}, 1),
	)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "PCT scheduler on figure3(f=2,t=1), n=4: %d/%d violations (uniform found 0)\n",
		pctOut.Violations, pctOut.Runs)
	if pctOut.First != nil {
		if v := pctOut.First.Verdict.Violation; v != run.ViolationConsistency {
			return fmt.Errorf("E9: PCT violation is %s, want consistency-only degradation", v)
		}
	}
	if pctOut.Violations == 0 && !opts.Quick {
		return fmt.Errorf("E9: PCT failed to reach the f=2 covering-shaped violation")
	}
	return nil
}

// tallyViolations samples the configuration's execution space and counts
// violations by kind.
func tallyViolations(cfgOpts []run.Option, runs int, seed int64) (consistency, validity, waitFreedom int, err error) {
	for i := 0; i < runs; i++ {
		ce, err2 := explore.SampleWith(seed+int64(i), cfgOpts...)
		if err2 != nil {
			return 0, 0, 0, err2
		}
		switch ce.Verdict.Violation {
		case run.ViolationConsistency:
			consistency++
		case run.ViolationValidity:
			validity++
		case run.ViolationWaitFreedom:
			waitFreedom++
		}
	}
	return
}
