package harness

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runE1 reproduces Theorem 4 / Figure 1: a single CAS object with
// unboundedly many overriding faults solves two-process consensus.
func runE1(w io.Writer, opts Options) error {
	// Part 1: exhaustive verification over the complete execution tree.
	out, err := explore.CheckWith(context.Background(),
		run.WithProtocol(core.SingleCAS{}),
		run.WithInputs(inputs(2)...),
		run.WithFaultyObjects([]int{0}, fault.Unbounded),
		opts.engine(),
	)
	if err != nil {
		return err
	}
	t1 := NewTable("mode", "executions", "complete", "violations")
	viol := 0
	if !out.OK() {
		viol = 1
	}
	t1.Add("exhaustive", out.Executions, out.Complete, viol)
	t1.Render(w)
	if !out.OK() {
		return fmt.Errorf("E1: exhaustive check found a violation: %s", out.Violation)
	}
	if !out.Complete {
		return fmt.Errorf("E1: exhaustive check did not complete")
	}

	// Part 2: randomized sweep over fault rates.
	runs := 2000
	if opts.Quick {
		runs = 200
	}
	fmt.Fprintln(w)
	t2 := NewTable("fault rate", "runs", "faults injected", "violations", "max steps/proc")
	for _, rate := range []float64{0, 0.25, 0.5, 1.0} {
		var faults, violations, maxSteps int
		for i := 0; i < runs; i++ {
			seed := opts.Seed + int64(i)
			budget := fault.NewBudget(1, fault.Unbounded)
			res, err := run.ConsensusWith(
				run.WithProtocol(core.SingleCAS{}),
				run.WithInputs(inputs(2)...),
				run.WithScheduler(sim.NewRandom(seed)),
				run.WithBudget(budget),
				run.WithPolicy(fault.WhenEffective(fault.Rate(fault.Overriding, rate, seed))),
			)
			if err != nil {
				return err
			}
			faults += budget.TotalFaults()
			if !res.Verdict.OK() {
				violations++
			}
			for _, s := range res.Sim.Steps {
				if s > maxSteps {
					maxSteps = s
				}
			}
		}
		t2.Add(rate, runs, faults, violations, maxSteps)
		if violations > 0 {
			t2.Render(w)
			return fmt.Errorf("E1: %d violations at fault rate %.2f", violations, rate)
		}
	}
	t2.Render(w)
	return nil
}

// runE2 reproduces Theorem 5 / Figure 2: f+1 objects tolerate f faulty
// objects with unbounded overriding faults, for any number of processes.
func runE2(w io.Writer, opts Options) error {
	fs := []int{1, 2, 3, 4, 5}
	ns := []int{2, 3, 5, 8, 16}
	runs := 400
	if opts.Quick {
		fs = []int{1, 2, 3}
		ns = []int{2, 3, 5}
		runs = 60
	}
	t := NewTable("f", "objects", "n", "runs", "faults injected", "violations", "steps/proc")
	for _, f := range fs {
		for _, n := range ns {
			proto := core.NewFPlusOne(f)
			var faults, violations int
			stepsPerProc := -1
			for i := 0; i < runs; i++ {
				seed := opts.Seed + int64(i)
				budget := fault.NewFixedBudget(objectIDs(f), fault.Unbounded)
				res, err := run.ConsensusWith(
					run.WithProtocol(proto),
					run.WithInputs(inputs(n)...),
					run.WithScheduler(sim.NewRandom(seed)),
					run.WithBudget(budget),
					run.WithPolicy(fault.WhenEffective(fault.Always(fault.Overriding))),
				)
				if err != nil {
					return err
				}
				faults += budget.TotalFaults()
				if !res.Verdict.OK() {
					violations++
				}
				for _, s := range res.Sim.Steps {
					if stepsPerProc == -1 {
						stepsPerProc = s
					}
					if s != f+1 {
						return fmt.Errorf("E2: f=%d n=%d: a process took %d steps, want exactly f+1=%d", f, n, s, f+1)
					}
				}
			}
			t.Add(f, f+1, n, runs, faults, violations, stepsPerProc)
			if violations > 0 {
				t.Render(w)
				return fmt.Errorf("E2: %d violations at f=%d n=%d", violations, f, n)
			}
		}
	}
	t.Render(w)
	return nil
}

// runE3 reproduces Theorem 6 / Figure 3: f all-faulty objects with ≤ t
// faults each carry consensus for n = f+1 processes, and the stage budget
// maxStage = t(4f+f²) is far above what executions actually consume.
func runE3(w io.Writer, opts Options) error {
	configs := []struct{ f, t int }{{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {3, 1}}
	runs := 400
	exhaustiveCap := 150_000
	if opts.Quick {
		configs = []struct{ f, t int }{{1, 1}, {2, 1}}
		runs = 60
		exhaustiveCap = 30_000
	}
	t := NewTable("f", "t", "n", "mode", "executions", "violations",
		"maxStage bound", "max stage seen", "step bound", "max steps seen")
	for _, cfg := range configs {
		proto := core.NewStaged(cfg.f, cfg.t)
		n := cfg.f + 1

		// Exhaustive first; fall back to randomized stress when the
		// tree exceeds the cap.
		out, err := explore.CheckWith(context.Background(),
			run.WithProtocol(proto),
			run.WithInputs(inputs(n)...),
			run.WithFaultyObjects(objectIDs(cfg.f), cfg.t),
			run.WithMaxExecutions(exhaustiveCap),
			opts.engine(),
		)
		if err != nil {
			return err
		}
		if out.Violation != nil {
			return fmt.Errorf("E3: f=%d t=%d: violation found: %s", cfg.f, cfg.t, out.Violation)
		}
		if out.Complete {
			t.Add(cfg.f, cfg.t, n, "exhaustive", out.Executions, 0,
				proto.MaxStage(), "-", proto.StepBound(n), out.MaxProcSteps)
			continue
		}

		// Randomized stress with stage observation.
		var violations, maxStage, maxSteps int
		var stepSamples []int
		for i := 0; i < runs; i++ {
			seed := opts.Seed + int64(i)
			stageSeen := 0
			observer := func(e trace.Event) {
				if e.Kind == trace.EventCAS && e.Wrote() {
					if s := int(e.Post.Stage()); s > stageSeen {
						stageSeen = s
					}
				}
			}
			res, err := run.ConsensusWith(
				run.WithProtocol(proto),
				run.WithInputs(inputs(n)...),
				run.WithScheduler(sim.NewRandom(seed)),
				run.WithBudget(fault.NewFixedBudget(objectIDs(cfg.f), cfg.t)),
				run.WithPolicy(fault.WhenEffective(fault.Rate(fault.Overriding, 0.4, seed))),
				run.WithObserver(observer),
			)
			if err != nil {
				return err
			}
			if !res.Verdict.OK() {
				violations++
			}
			if stageSeen > maxStage {
				maxStage = stageSeen
			}
			for _, s := range res.Sim.Steps {
				stepSamples = append(stepSamples, s)
				if s > maxSteps {
					maxSteps = s
				}
			}
		}
		t.Add(cfg.f, cfg.t, n, "stress", runs, violations,
			proto.MaxStage(), maxStage, proto.StepBound(n), maxSteps)
		if violations > 0 {
			t.Render(w)
			return fmt.Errorf("E3: %d violations at f=%d t=%d", violations, cfg.f, cfg.t)
		}
		dist := stats.SummarizeInts(stepSamples)
		fmt.Fprintf(w, "f=%d t=%d steps/process distribution: %s\n", cfg.f, cfg.t, dist)
	}
	t.Render(w)
	return nil
}
