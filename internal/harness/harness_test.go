package harness

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("registered %d experiments, want 10", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Error("E3 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 must not resolve")
	}
}

// Each experiment runs in quick mode and must report its claim reproduced.
func testExperiment(t *testing.T, id string) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, quickOpts()); err != nil {
		t.Fatalf("%s failed: %v\noutput:\n%s", id, err, buf.String())
	}
	if !strings.Contains(buf.String(), "|") {
		t.Errorf("%s produced no table:\n%s", id, buf.String())
	}
}

func TestE1(t *testing.T)  { testExperiment(t, "E1") }
func TestE2(t *testing.T)  { testExperiment(t, "E2") }
func TestE3(t *testing.T)  { testExperiment(t, "E3") }
func TestE4(t *testing.T)  { testExperiment(t, "E4") }
func TestE5(t *testing.T)  { testExperiment(t, "E5") }
func TestE6(t *testing.T)  { testExperiment(t, "E6") }
func TestE7(t *testing.T)  { testExperiment(t, "E7") }
func TestE9(t *testing.T)  { testExperiment(t, "E9") }
func TestE10(t *testing.T) { testExperiment(t, "E10") }

func TestE8(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	testExperiment(t, "E8")
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, quickOpts()); err != nil {
		t.Fatalf("RunAll: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
		if !strings.Contains(out, "=== "+id) {
			t.Errorf("output missing section %s", id)
		}
	}
	if strings.Contains(out, "FAILED") {
		t.Error("output contains FAILED")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("a", "bb")
	tb.Add(1, "x")
	tb.Add(2.5, "yyyy")
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "1") || !strings.Contains(lines[3], "2.50") {
		t.Errorf("rows malformed:\n%s", out)
	}
}

func TestTableRowArityPanics(t *testing.T) {
	tb := NewTable("a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong arity must panic")
		}
	}()
	tb.Add(1)
}
