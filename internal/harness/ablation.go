package harness

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/run"
)

// runE10 is the stage-budget ablation the paper invites in §4.3: "choosing
// an earlier maximal stage might work, but we chose to concentrate on
// correctness and space complexity rather than on performance." For each
// small (f, t) configuration the experiment sweeps the stage budget from 1
// up to the paper's bound t·(4f+f²) and, via exhaustive checking (falling
// back to adversarial stress), finds the empirical threshold: the smallest
// budget with no violating execution.
//
// The paper's bound must of course be safe; the interesting output is the
// gap between the proof's bound and the threshold the checker certifies.
func runE10(w io.Writer, opts Options) error {
	type cfg struct{ f, t int }
	configs := []cfg{{1, 1}, {1, 2}}
	exhaustiveCap := 400_000
	stressRuns := 1500
	if opts.Quick {
		configs = []cfg{{1, 1}}
		exhaustiveCap = 80_000
		stressRuns = 300
	}
	// f=2 trees are too large to enumerate; probe by stress only.
	stressConfigs := []cfg{{2, 1}}
	if opts.Quick {
		stressConfigs = nil
	}

	t := NewTable("f", "t", "paper bound", "stage budget", "mode", "executions", "outcome")

	for _, c := range configs {
		paperBound := core.NewStaged(c.f, c.t).MaxStage()
		threshold := int64(-1)
		for stages := int64(1); stages <= paperBound; stages++ {
			proto := core.NewStagedWithBudget(c.f, c.t, stages)
			out, err := explore.CheckWith(context.Background(),
				run.WithProtocol(proto),
				run.WithInputs(inputs(c.f+1)...),
				run.WithFaultyObjects(objectIDs(c.f), c.t),
				run.WithMaxExecutions(exhaustiveCap),
				opts.engine(),
			)
			if err != nil {
				return err
			}
			switch {
			case out.Violation != nil:
				t.Add(c.f, c.t, paperBound, stages, "exhaustive", out.Executions,
					"violation: "+string(out.Violation.Verdict.Violation))
			case out.Complete:
				t.Add(c.f, c.t, paperBound, stages, "exhaustive", out.Executions, "safe (proved)")
				if threshold < 0 {
					threshold = stages
				}
			default:
				t.Add(c.f, c.t, paperBound, stages, "exhaustive", out.Executions, "inconclusive (capped)")
			}
		}
		if threshold < 0 {
			t.Render(w)
			return fmt.Errorf("E10: no safe stage budget found up to the paper bound for f=%d t=%d", c.f, c.t)
		}
		fmt.Fprintf(w, "f=%d t=%d: paper bound %d, empirical threshold %d (proved over complete trees)\n",
			c.f, c.t, paperBound, threshold)
	}

	for _, c := range stressConfigs {
		paperBound := core.NewStaged(c.f, c.t).MaxStage()
		// Probe a few budgets below the bound with adversarial stress.
		for _, stages := range []int64{1, 2, paperBound / 2, paperBound} {
			if stages < 1 {
				continue
			}
			proto := core.NewStagedWithBudget(c.f, c.t, stages)
			st, err := explore.StressWith(stressRuns, opts.Seed,
				run.WithProtocol(proto),
				run.WithInputs(inputs(c.f+1)...),
				run.WithFaultyObjects(objectIDs(c.f), c.t),
			)
			if err != nil {
				return err
			}
			outcome := "no violation found"
			if !st.OK() {
				outcome = "violation: " + string(st.First.Verdict.Violation)
			}
			t.Add(c.f, c.t, paperBound, stages, "stress", st.Runs, outcome)
		}
	}

	t.Render(w)
	fmt.Fprintln(w, "\nfindings: (i) at f=1 every budget is safe — the n=2 anomaly (truthful old")
	fmt.Fprintln(w, "values suffice for two processes) makes the stage machinery redundant there;")
	fmt.Fprintln(w, "(ii) at f=2 (n=3) a budget of 1 stage IS breakable while small budgets ≥2")
	fmt.Fprintln(w, "already resist stress — the stage mechanism matters exactly when n ≥ 3, and")
	fmt.Fprintln(w, "the paper's t·(4f+f²) bound is safe and conservative, as §4.3 anticipates")
	return nil
}
