package harness

import (
	"context"
	"fmt"
	"io"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/run"
)

// runE4 reproduces Theorem 18: with an unbounded number of overriding
// faults per object and more than two processes, f (all-faulty) CAS objects
// cannot carry consensus — the model checker finds a violating execution
// for every construction handed only faulty objects.
func runE4(w io.Writer, opts Options) error {
	cap := 300_000
	if opts.Quick {
		cap = 60_000
	}
	type row struct {
		name    string
		proto   core.Protocol
		n       int
		policy  fault.Policy // nil = checker's own fault choices
		mustDie bool
	}
	rows := []row{
		// The single-object protocol at n=3: the minimal Theorem 18
		// instance (its proof's "all f objects faulty" with f=1).
		{"figure1, all objects faulty", core.SingleCAS{}, 3, nil, true},
		// Figure 3 sized for t=1 while the real fault count is
		// unbounded: the premise of Theorem 6 breaks and so does the
		// protocol.
		{"figure3(f=1,t=1), actual t=∞", core.NewStaged(1, 1), 3, nil, true},
		// Figure 2 with f=1 but BOTH of its objects faulty: Theorem 18
		// for f'=2 says its two objects cannot suffice.
		{"figure2(f=1), all objects faulty", core.NewFPlusOne(1), 3, nil, true},
		// The reduced model from the proof: p0's CAS executions are
		// always faulty; only scheduling is explored.
		{"figure1, reduced model (p0 faulty)", core.SingleCAS{}, 3, adversary.ReducedModelPolicy(0), true},
		// Control: the same reduced model cannot break two processes
		// (Theorem 4).
		{"figure1, reduced model, n=2", core.SingleCAS{}, 2, adversary.ReducedModelPolicy(0), false},
	}

	t := NewTable("configuration", "n", "executions", "outcome", "schedule len")
	for _, r := range rows {
		// The whole sweep runs on the parallel engine through the unified
		// options API; the reported counterexamples are canonical
		// (lexicographically least), so the table is identical for any
		// worker count. The reduced-model rows drive a fixed fault policy,
		// which the partial-order reducer cannot reason about, so they run
		// unreduced whatever Options.Reduce says.
		reduce := opts.Reduce
		if r.policy != nil {
			reduce = run.ReduceOff
		}
		out, err := explore.CheckWith(context.Background(),
			run.WithProtocol(r.proto),
			run.WithDistinctInputs(r.n),
			run.WithAllObjectsFaulty(fault.Unbounded),
			run.WithPolicy(r.policy),
			run.WithMaxExecutions(cap),
			opts.engine(),
			run.WithReduce(reduce),
		)
		if err != nil {
			return err
		}
		outcome := "no violation"
		schedLen := "-"
		if out.Violation != nil {
			outcome = "violation: " + string(out.Violation.Verdict.Violation)
			schedLen = fmt.Sprintf("%d", len(out.Violation.Schedule))
		} else if out.Complete {
			outcome = "no violation (complete)"
		}
		t.Add(r.name, r.n, out.Executions, outcome, schedLen)
		if r.mustDie && out.Violation == nil {
			t.Render(w)
			return fmt.Errorf("E4: %q survived; Theorem 18 predicts a violation", r.name)
		}
		if !r.mustDie && out.Violation != nil {
			t.Render(w)
			return fmt.Errorf("E4: control %q violated: %s", r.name, out.Violation)
		}
	}
	t.Render(w)
	return nil
}

// runE5 reproduces Theorem 19: the covering adversary defeats any f-object
// protocol at n = f+2 while staying within a t = 1 fault budget — and the
// same attack is powerless at n = f+1 (tightness, Theorem 6).
func runE5(w io.Writer, opts Options) error {
	fs := []int{1, 2, 3, 4, 5}
	if opts.Quick {
		fs = []int{1, 2, 3}
	}
	t := NewTable("f", "n", "mode", "covered objects", "faults used", "outcome")
	for _, f := range fs {
		proto := core.NewStaged(f, 1)

		cov, err := adversary.Covering(proto, inputs(f+2))
		if err != nil {
			return err
		}
		outcome := "agreement"
		if cov.Violated() {
			outcome = "violation: " + string(cov.Verdict.Violation)
		}
		t.Add(f, f+2, "covering", len(cov.Covered), len(cov.Trace.Faults()), outcome)
		if !cov.Violated() {
			t.Render(w)
			return fmt.Errorf("E5: covering adversary failed at f=%d", f)
		}
		if got := len(cov.Trace.Faults()); got > f {
			t.Render(w)
			return fmt.Errorf("E5: adversary used %d faults at f=%d, exceeding its budget", got, f)
		}

		tight, err := adversary.CoveringTightness(proto, inputs(f+1))
		if err != nil {
			return err
		}
		outcome = "agreement"
		if tight.Violated() {
			outcome = "violation: " + string(tight.Verdict.Violation)
		}
		t.Add(f, f+1, "tightness", len(tight.Covered), len(tight.Trace.Faults()), outcome)
		if tight.Violated() {
			t.Render(w)
			return fmt.Errorf("E5: tightness run violated consensus at f=%d", f)
		}

		// Cross-check with the parallel engine for small f: exploring the
		// same configuration (all objects faulty, t=1, n=f+2) must also
		// find a violation — the directed covering attack and the
		// exhaustive search agree on Theorem 19.
		if f <= 2 {
			out, err := explore.CheckWith(context.Background(),
				run.WithProtocol(proto),
				run.WithInputs(inputs(f+2)...),
				run.WithFaultyObjects(objectIDs(proto.Objects()), 1),
				run.WithMaxExecutions(100_000),
				opts.engine(),
			)
			if err != nil {
				return err
			}
			outcome = "no violation"
			faultsUsed := "-"
			if out.Violation != nil {
				outcome = "violation: " + string(out.Violation.Verdict.Violation)
				faultsUsed = fmt.Sprintf("%d", len(out.Violation.Trace.Faults()))
			}
			t.Add(f, f+2, "engine explore", "-", faultsUsed, outcome)
			if out.Violation == nil {
				t.Render(w)
				return fmt.Errorf("E5: engine exploration found no violation at f=%d, n=%d", f, f+2)
			}
		}
	}
	t.Render(w)
	return nil
}
