package harness

import (
	"context"
	"fmt"
	"io"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/hierarchy"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/word"
)

// runE6 reproduces the Section 5.2 observation: f CAS objects with bounded
// overriding faults sit at level f+1 of the Herlihy consensus hierarchy.
func runE6(w io.Writer, opts Options) error {
	maxF := 4
	hopts := hierarchy.Options{StressRuns: 400, Seed: opts.Seed, Workers: opts.Workers}
	if opts.Quick {
		maxF = 2
		hopts.StressRuns = 120
		hopts.ExhaustiveBudget = 8000
	}
	ests, err := hierarchy.Table(maxF, 1, hopts)
	if err != nil {
		return err
	}
	t := NewTable("f", "t", "consensus number", "expected (f+1)", "evidence per level")
	for _, est := range ests {
		evidence := ""
		for i, lv := range est.Levels {
			if i > 0 {
				evidence += ", "
			}
			status := "ok"
			if !lv.OK {
				status = "broken"
			}
			evidence += fmt.Sprintf("n=%d:%s(%s)", lv.N, status, lv.Evidence)
		}
		t.Add(est.F, est.T, est.ConsensusNumber, est.F+1, evidence)
		if est.ConsensusNumber != est.F+1 {
			t.Render(w)
			return fmt.Errorf("E6: f=%d estimated consensus number %d, want %d",
				est.F, est.ConsensusNumber, est.F+1)
		}
	}
	t.Render(w)
	return nil
}

// runE7 reproduces the Section 3.4 fault taxonomy and the expressiveness
// gap of Section 4: the constructions survive any budget-respecting
// overriding-fault pattern, yet a single well-aimed data fault — or an
// invisible fault corrupting the returned old value — defeats them,
// because they lean precisely on the structure Φ′ preserves.
func runE7(w io.Writer, opts Options) error {
	t := NewTable("scenario", "fault model", "budget", "outcome", "expected")

	// Silent faults, bounded budget: the retry protocol recovers.
	out, err := explore.CheckWith(context.Background(),
		run.WithProtocol(core.NewSilentRetry(2)),
		run.WithInputs(inputs(2)...),
		run.WithFaultyObjects([]int{0}, 2),
		run.WithFaultKind(fault.Silent),
		opts.engine(),
	)
	if err != nil {
		return err
	}
	outcome := describeExploreOutcome(out)
	t.Add("silent-retry, n=2", "functional/silent", "(1, 2)", outcome, "agreement")
	if !out.OK() || !out.Complete {
		t.Render(w)
		return fmt.Errorf("E7: bounded silent faults broke the retry protocol")
	}

	// Silent faults, unbounded: liveness is unrecoverable.
	out, err = explore.CheckWith(context.Background(),
		run.WithProtocol(core.NewSilentRetry(1)),
		run.WithInputs(inputs(2)...),
		run.WithFaultyObjects([]int{0}, fault.Unbounded),
		run.WithFaultKind(fault.Silent),
		run.WithStepLimit(16),
		opts.engine(),
	)
	if err != nil {
		return err
	}
	t.Add("silent-retry, n=2", "functional/silent", "(1, ∞)", describeExploreOutcome(out), "wait-freedom violation")
	if out.OK() || out.Violation.Verdict.Violation != run.ViolationWaitFreedom {
		t.Render(w)
		return fmt.Errorf("E7: unbounded silent faults must livelock the retry protocol")
	}

	// The expressiveness gap. Functional overriding faults, full budget,
	// exhaustive: Figure 3 at (f=1, t=1, n=2) provably survives...
	proto := core.NewStaged(1, 1)
	out, err = explore.CheckWith(context.Background(),
		run.WithProtocol(proto),
		run.WithInputs(inputs(2)...),
		run.WithFaultyObjects([]int{0}, 1),
		opts.engine(),
	)
	if err != nil {
		return err
	}
	t.Add("figure3(1,1), n=2", "functional/overriding", "(1, 1)", describeExploreOutcome(out), "agreement (exhaustive)")
	if !out.OK() || !out.Complete {
		t.Render(w)
		return fmt.Errorf("E7: functional-fault side of the gap failed")
	}

	// ...while ONE data fault (same (f=1, budget 1) shape, but striking
	// between operations with an arbitrary value) breaks it.
	in := inputs(2)
	df, err := adversary.DataFault(proto, in, 0, word.Pack(in[1], proto.MaxStage()))
	if err != nil {
		return err
	}
	outcome = "agreement"
	if df.Violated() {
		outcome = "violation: " + string(df.Verdict.Violation)
	}
	t.Add("figure3(1,1), n=2", "data fault (Afek et al.)", "(1, 1)", outcome, "consistency violation")
	if !df.Violated() {
		t.Render(w)
		return fmt.Errorf("E7: the aimed data fault failed to break the protocol")
	}

	// Invisible faults corrupt the returned old value — the one thing the
	// overriding constructions rely on (Φ′ of the overriding fault keeps
	// old correct; the invisible fault does not). One aimed invisible
	// fault on Figure 2's LAST object makes a process adopt a value
	// nobody converged on: the constructions do not transfer across
	// Section 3.4's fault kinds.
	runs := 600
	if opts.Quick {
		runs = 150
	}
	in3 := inputs(3)
	forgedOld := word.FromValue(in3[2])
	violations := 0
	for i := 0; i < runs; i++ {
		seed := opts.Seed + int64(i)
		invisible := fault.OnObjects(fault.PolicyFunc(func(fault.Op) fault.Proposal {
			return fault.Proposal{Kind: fault.Invisible, Return: forgedOld}
		}), 1)
		res, err := run.ConsensusWith(
			run.WithProtocol(core.NewFPlusOne(1)),
			run.WithInputs(in3...),
			run.WithScheduler(sim.NewRandom(seed)),
			run.WithBudget(fault.NewFixedBudget([]int{1}, 1)),
			run.WithPolicy(invisible),
		)
		if err != nil {
			return err
		}
		if !res.Verdict.OK() {
			violations++
		}
	}
	t.Add("figure2(f=1), n=3", "functional/invisible", "(1, 1)",
		fmt.Sprintf("%d/%d runs violated", violations, runs), "violations occur")
	if violations == 0 {
		t.Render(w)
		return fmt.Errorf("E7: invisible faults never broke Figure 2 in %d runs", runs)
	}

	t.Render(w)
	return nil
}

func describeExploreOutcome(out *explore.Outcome) string {
	if out.Violation != nil {
		return fmt.Sprintf("violation: %s (%d execs)", out.Violation.Verdict.Violation, out.Executions)
	}
	if out.Complete {
		return fmt.Sprintf("agreement (exhaustive, %d execs)", out.Executions)
	}
	return fmt.Sprintf("agreement (%d execs, capped)", out.Executions)
}
