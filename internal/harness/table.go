package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table renders fixed-width experiment tables (also valid Markdown).
type Table struct {
	columns []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(columns ...string) *Table {
	return &Table{columns: columns}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	if len(cells) != len(t.columns) {
		panic(fmt.Sprintf("harness: row has %d cells, table has %d columns", len(cells), len(t.columns)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table in Markdown pipe form with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.columns))
	for i, c := range t.columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.columns)
	seps := make([]string, len(t.columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
}
