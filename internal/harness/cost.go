package harness

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/run"
	"repro/internal/sim"
)

// costConfig is one row of the E8 cost sweep.
type costConfig struct {
	name      string
	proto     core.Protocol
	faulty    int     // number of faulty objects (0 = fault-free)
	boundedT  int     // per-object fault bound; fault.Unbounded for ∞
	faultRate float64 // per-invocation fault probability
	procs     int     // concurrent goroutines
}

// substrate runs one consensus instance on a run.Bank. Both substrates are
// driven through the unified Bank interface, so the measurement loop —
// construction, decide, op accounting, agreement check — is one code path
// with no type switches.
type substrate struct {
	name    string
	newBank func(cfg costConfig, round int, seed int64) run.Bank
	decide  func(bank run.Bank, cfg costConfig, round int, seed int64) ([]int64, error)
}

// realAtomics races native goroutines on the lock-free environment: the
// deployment-shaped measurement.
func realAtomics() substrate {
	return substrate{
		name: "atomics",
		newBank: func(cfg costConfig, round int, seed int64) run.Bank {
			if cfg.faulty > 0 {
				return atomicx.NewFaultyBank(cfg.proto.Objects(),
					fault.NewFixedBudget(objectIDs(cfg.faulty), cfg.boundedT),
					cfg.faultRate, seed+int64(round))
			}
			return atomicx.NewBank(cfg.proto.Objects())
		},
		decide: func(bank run.Bank, cfg costConfig, round int, seed int64) ([]int64, error) {
			// Real atomics need no per-process binding: Bind returns the
			// shared lock-free environment.
			env := bank.Bind(nil)
			results := make([]int64, cfg.procs)
			var wg sync.WaitGroup
			for g := 0; g < cfg.procs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					results[g] = cfg.proto.Decide(env, int64(100+g))
				}(g)
			}
			wg.Wait()
			return results, nil
		},
	}
}

// simulated runs the same instance on the step-granting simulator under a
// seeded random schedule — the model-checking-shaped measurement, for
// calibrating simulated against native op counts.
func simulated() substrate {
	return substrate{
		name: "simulator",
		newBank: func(cfg costConfig, round int, seed int64) run.Bank {
			policy := fault.Never()
			if cfg.faulty > 0 {
				policy = fault.Rate(fault.Overriding, cfg.faultRate, seed+int64(round))
			}
			return object.NewBank(cfg.proto.Objects(),
				fault.NewFixedBudget(objectIDs(cfg.faulty), cfg.boundedT), policy)
		},
		decide: func(bank run.Bank, cfg costConfig, round int, seed int64) ([]int64, error) {
			inputs := make([]int64, cfg.procs)
			for g := range inputs {
				inputs[g] = int64(100 + g)
			}
			res, err := sim.Run(sim.Config{
				Programs:  run.Programs(cfg.proto, bank, inputs),
				Scheduler: sim.NewRandom(seed + int64(round)),
				StepLimit: cfg.proto.StepBound(cfg.procs),
			})
			if err != nil {
				return nil, err
			}
			results := make([]int64, cfg.procs)
			for g := range results {
				if !res.Decided[g] {
					return nil, fmt.Errorf("process %d did not decide", g)
				}
				results[g] = res.Decisions[g].Value()
			}
			return results, nil
		},
	}
}

// measureCost times `rounds` one-shot consensus instances on the given
// substrate, returning ns per decide call and the mean CAS invocations per
// decide call (counted by the bank, uniformly across substrates).
func measureCost(cfg costConfig, sub substrate, rounds int, seed int64) (nsPerDecide float64, casPerDecide float64, err error) {
	var totalOps int64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		bank := sub.newBank(cfg, r, seed)
		results, err := sub.decide(bank, cfg, r, seed)
		if err != nil {
			return 0, 0, fmt.Errorf("round %d (%s/%s): %w", r, cfg.name, sub.name, err)
		}
		totalOps += bank.Ops()
		for g := 1; g < len(results); g++ {
			if results[g] != results[0] {
				return 0, 0, fmt.Errorf("round %d: disagreement %v under %s/%s",
					r, results, cfg.name, sub.name)
			}
		}
	}
	elapsed := time.Since(start)
	decides := float64(rounds * cfg.procs)
	nsPerDecide = float64(elapsed.Nanoseconds()) / decides
	casPerDecide = float64(totalOps) / decides
	return nsPerDecide, casPerDecide, nil
}

// runE8 measures the practical cost of each construction: the baseline
// single CAS is cheapest, Figure 2 costs f+1 CAS steps, and Figure 3 pays
// for its stage budget t·(4f+f²) — the price of surviving with zero
// reliable objects. Each configuration is measured on real atomics and,
// at the lowest concurrency, cross-checked on the simulator through the
// same unified bank code path.
func runE8(w io.Writer, opts Options) error {
	rounds := 3000
	simRounds := 300
	procsList := []int{2, 4, 8}
	if opts.Quick {
		rounds = 300
		simRounds = 50
		procsList = []int{2, 4}
	}

	t := NewTable("protocol", "objects", "procs", "substrate", "fault cfg", "ns/decide", "CAS/decide")
	type rowResult struct {
		name string
		ns   float64
	}
	var baseline, staged21 *rowResult

	for _, procs := range procsList {
		// Figure 3 instances are only fault-tolerant up to f+1 processes
		// (Theorem 6, tight by Theorem 19 — see E5), so each staged row
		// is sized with f = procs−1 to match the requested concurrency.
		configs := []costConfig{
			{"baseline single CAS", core.SingleCAS{}, 0, 0, 0, procs},
			{"figure2 f=1", core.NewFPlusOne(1), 1, fault.Unbounded, 0.3, procs},
			{"figure2 f=3", core.NewFPlusOne(3), 3, fault.Unbounded, 0.3, procs},
			{fmt.Sprintf("figure3 f=%d,t=1", procs-1), core.NewStaged(procs-1, 1), procs - 1, 1, 0.3, procs},
			{fmt.Sprintf("figure3 f=%d,t=2", procs-1), core.NewStaged(procs-1, 2), procs - 1, 2, 0.3, procs},
		}
		for _, cfg := range configs {
			if cfg.proto.MaxProcs() != 0 && cfg.procs > cfg.proto.MaxProcs() && cfg.faulty > 0 {
				return fmt.Errorf("E8: misconfigured row %q: %d procs exceeds tolerance bound %d",
					cfg.name, cfg.procs, cfg.proto.MaxProcs())
			}
			faultCfg := "fault-free"
			if cfg.faulty > 0 {
				tStr := "∞"
				if cfg.boundedT != fault.Unbounded {
					tStr = fmt.Sprintf("%d", cfg.boundedT)
				}
				faultCfg = fmt.Sprintf("f=%d t=%s p=%.1f", cfg.faulty, tStr, cfg.faultRate)
			}
			subs := []struct {
				substrate
				rounds int
			}{{realAtomics(), rounds}}
			if procs == procsList[0] {
				subs = append(subs, struct {
					substrate
					rounds int
				}{simulated(), simRounds})
			}
			for _, sub := range subs {
				ns, cas, err := measureCost(cfg, sub.substrate, sub.rounds, opts.Seed)
				if err != nil {
					return fmt.Errorf("E8: %w", err)
				}
				t.Add(cfg.name, cfg.proto.Objects(), procs, sub.name, faultCfg, ns, cas)
				if procs == procsList[0] && sub.name == "atomics" {
					switch {
					case cfg.name == "baseline single CAS":
						baseline = &rowResult{cfg.name, ns}
					case staged21 == nil && strings.HasPrefix(cfg.name, "figure3") && strings.HasSuffix(cfg.name, "t=1"):
						staged21 = &rowResult{cfg.name, ns}
					}
				}
			}
		}
	}
	t.Render(w)

	// Shape check: the fault-tolerant staged construction must cost more
	// than the unprotected baseline (the paper's constructions trade
	// steps for tolerance; if this inverts, the harness is mismeasuring).
	if baseline != nil && staged21 != nil && staged21.ns <= baseline.ns {
		return fmt.Errorf("E8: cost ordering inverted: %s (%.1f ns) <= %s (%.1f ns)",
			staged21.name, staged21.ns, baseline.name, baseline.ns)
	}
	fmt.Fprintf(w, "\ncost ordering holds: baseline (%.0f ns/decide) < figure3 f=2,t=1 (%.0f ns/decide)\n",
		baseline.ns, staged21.ns)
	return nil
}
