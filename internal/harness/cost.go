package harness

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
)

// costConfig is one row of the E8 cost sweep.
type costConfig struct {
	name      string
	proto     core.Protocol
	faulty    int     // number of faulty objects (0 = fault-free)
	boundedT  int     // per-object fault bound; fault.Unbounded for ∞
	faultRate float64 // per-invocation fault probability
	procs     int     // concurrent goroutines
}

// measureCost times `rounds` one-shot consensus instances with the given
// concurrency on real atomics, returning ns per decide call and the mean
// CAS invocations per decide call.
func measureCost(cfg costConfig, rounds int, seed int64) (nsPerDecide float64, casPerDecide float64, err error) {
	var totalOps int64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var bank *atomicx.Bank
		if cfg.faulty > 0 {
			bank = atomicx.NewFaultyBank(cfg.proto.Objects(),
				fault.NewFixedBudget(objectIDs(cfg.faulty), cfg.boundedT),
				cfg.faultRate, seed+int64(r))
		} else {
			bank = atomicx.NewBank(cfg.proto.Objects())
		}
		results := make([]int64, cfg.procs)
		var wg sync.WaitGroup
		for g := 0; g < cfg.procs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = cfg.proto.Decide(bank, int64(100+g))
			}(g)
		}
		wg.Wait()
		totalOps += bank.Ops()
		for g := 1; g < cfg.procs; g++ {
			if results[g] != results[0] {
				err = fmt.Errorf("round %d: disagreement %v under %s", r, results, cfg.name)
				return
			}
		}
	}
	elapsed := time.Since(start)
	decides := float64(rounds * cfg.procs)
	nsPerDecide = float64(elapsed.Nanoseconds()) / decides
	casPerDecide = float64(totalOps) / decides
	return
}

// runE8 measures the practical cost of each construction on real atomics:
// the baseline single CAS is cheapest, Figure 2 costs f+1 CAS steps, and
// Figure 3 pays for its stage budget t·(4f+f²) — the price of surviving
// with zero reliable objects.
func runE8(w io.Writer, opts Options) error {
	rounds := 3000
	procsList := []int{2, 4, 8}
	if opts.Quick {
		rounds = 300
		procsList = []int{2, 4}
	}

	t := NewTable("protocol", "objects", "procs", "fault cfg", "ns/decide", "CAS/decide")
	type rowResult struct {
		name string
		ns   float64
	}
	var baseline, staged21 *rowResult

	for _, procs := range procsList {
		// Figure 3 instances are only fault-tolerant up to f+1 processes
		// (Theorem 6, tight by Theorem 19 — see E5), so each staged row
		// is sized with f = procs−1 to match the requested concurrency.
		configs := []costConfig{
			{"baseline single CAS", core.SingleCAS{}, 0, 0, 0, procs},
			{"figure2 f=1", core.NewFPlusOne(1), 1, fault.Unbounded, 0.3, procs},
			{"figure2 f=3", core.NewFPlusOne(3), 3, fault.Unbounded, 0.3, procs},
			{fmt.Sprintf("figure3 f=%d,t=1", procs-1), core.NewStaged(procs-1, 1), procs - 1, 1, 0.3, procs},
			{fmt.Sprintf("figure3 f=%d,t=2", procs-1), core.NewStaged(procs-1, 2), procs - 1, 2, 0.3, procs},
		}
		for _, cfg := range configs {
			if cfg.proto.MaxProcs() != 0 && cfg.procs > cfg.proto.MaxProcs() && cfg.faulty > 0 {
				return fmt.Errorf("E8: misconfigured row %q: %d procs exceeds tolerance bound %d",
					cfg.name, cfg.procs, cfg.proto.MaxProcs())
			}
			ns, cas, err := measureCost(cfg, rounds, opts.Seed)
			if err != nil {
				return fmt.Errorf("E8: %w", err)
			}
			faultCfg := "fault-free"
			if cfg.faulty > 0 {
				tStr := "∞"
				if cfg.boundedT != fault.Unbounded {
					tStr = fmt.Sprintf("%d", cfg.boundedT)
				}
				faultCfg = fmt.Sprintf("f=%d t=%s p=%.1f", cfg.faulty, tStr, cfg.faultRate)
			}
			t.Add(cfg.name, cfg.proto.Objects(), procs, faultCfg, ns, cas)
			if procs == procsList[0] {
				switch {
				case cfg.name == "baseline single CAS":
					baseline = &rowResult{cfg.name, ns}
				case staged21 == nil && strings.HasPrefix(cfg.name, "figure3") && strings.HasSuffix(cfg.name, "t=1"):
					staged21 = &rowResult{cfg.name, ns}
				}
			}
		}
	}
	t.Render(w)

	// Shape check: the fault-tolerant staged construction must cost more
	// than the unprotected baseline (the paper's constructions trade
	// steps for tolerance; if this inverts, the harness is mismeasuring).
	if baseline != nil && staged21 != nil && staged21.ns <= baseline.ns {
		return fmt.Errorf("E8: cost ordering inverted: %s (%.1f ns) <= %s (%.1f ns)",
			staged21.name, staged21.ns, baseline.name, baseline.ns)
	}
	fmt.Fprintf(w, "\ncost ordering holds: baseline (%.0f ns/decide) < figure3 f=2,t=1 (%.0f ns/decide)\n",
		baseline.ns, staged21.ns)
	return nil
}
