package valency

import (
	"fmt"
	"sort"

	"repro/internal/run"
)

// SoloValence computes the set of values a given process decides across all
// solo extensions of the state identified by prefix — extensions in which
// only that process takes steps (fault choices still range over the
// adversary's options). This is the probe the impossibility proofs apply to
// successor states of a critical state: if two states are indistinguishable
// to process p, p's solo runs from both decide the same values, which
// contradicts the states having different valencies.
func SoloValence(cfg Config, prefix []int, proc int) (Valence, error) {
	if proc < 0 || proc >= len(cfg.Inputs) {
		return Valence{}, fmt.Errorf("valency: process %d out of range", proc)
	}
	res := Valence{Prefix: append([]int(nil), prefix...)}
	seen := map[int64]bool{}

	soloCfg := cfg
	soloCfg.soloProc = proc + 1 // +1 so zero means "no solo restriction"

	err := enumerate(soloCfg, prefix, func(verdict run.Verdict) {
		res.Executions++
		if !verdict.OK() {
			res.Violated = true
		}
		if verdict.Decided[proc] && !verdict.Decisions[proc].IsBottom() {
			seen[verdict.Decisions[proc].Value()] = true
		}
	})
	if err != nil {
		return Valence{}, err
	}
	for v := range seen {
		res.Values = append(res.Values, v)
	}
	sort.Slice(res.Values, func(i, j int) bool { return res.Values[i] < res.Values[j] })
	return res, nil
}

// IndistinguishableTo reports whether two states look the same to a process
// in the operational sense the proofs use: the process's solo runs from
// both states decide exactly the same value sets. (True state-level
// indistinguishability implies this; the converse direction is what the
// contradiction needs.)
func IndistinguishableTo(cfg Config, prefixA, prefixB []int, proc int) (bool, error) {
	a, err := SoloValence(cfg, prefixA, proc)
	if err != nil {
		return false, err
	}
	b, err := SoloValence(cfg, prefixB, proc)
	if err != nil {
		return false, err
	}
	if len(a.Values) != len(b.Values) {
		return false, nil
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false, nil
		}
	}
	return true, nil
}
