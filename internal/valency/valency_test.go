package valency

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

func cfgSingle(n int, faults int) Config {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(10 + i)
	}
	c := Config{Protocol: core.SingleCAS{}, Inputs: in}
	if faults != 0 {
		c.FaultyObjects = []int{0}
		c.FaultsPerObject = faults
	}
	return c
}

func TestInitialStateIsMultivalent(t *testing.T) {
	// Validity forces the initial state multivalent with distinct inputs
	// (the observation opening the Theorem 18 proof).
	v, err := Compute(cfgSingle(2, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Multivalent() {
		t.Fatalf("initial state: %s", v)
	}
	if len(v.Values) != 2 || v.Values[0] != 10 || v.Values[1] != 11 {
		t.Fatalf("values = %v, want [10 11]", v.Values)
	}
	if v.Violated {
		t.Error("fault-free executions must not violate")
	}
	if v.Executions != 2 {
		t.Errorf("executions = %d, want 2", v.Executions)
	}
}

func TestFirstStepDecides(t *testing.T) {
	// After p0's CAS, only p0's input remains reachable: the scheduler
	// choice out of the initial state is a decision step.
	v, err := Compute(cfgSingle(2, 0), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Univalent() || v.Values[0] != 10 {
		t.Fatalf("after p0's step: %s", v)
	}
	v, err = Compute(cfgSingle(2, 0), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Univalent() || v.Values[0] != 11 {
		t.Fatalf("after p1's step: %s", v)
	}
}

func TestEqualInputsAreUnivalentFromTheStart(t *testing.T) {
	cfg := Config{Protocol: core.SingleCAS{}, Inputs: []int64{7, 7}}
	v, err := Compute(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Univalent() || v.Values[0] != 7 {
		t.Fatalf("equal inputs: %s", v)
	}
}

func TestValenceUnderTheorem4Faults(t *testing.T) {
	// With unbounded overriding faults and two processes (Theorem 4's
	// setting) the system stays correct: the initial state is exactly
	// {10, 11}-valent and no extension violates.
	v, err := Compute(cfgSingle(2, fault.Unbounded), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Violated {
		t.Fatal("Theorem 4 configuration must have no violating extension")
	}
	if len(v.Values) != 2 {
		t.Fatalf("values = %v", v.Values)
	}
}

func TestValenceDetectsTheorem18Violations(t *testing.T) {
	v, err := Compute(cfgSingle(3, fault.Unbounded), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Violated {
		t.Fatal("three processes with unbounded faults must reach violations")
	}
}

func TestChildArity(t *testing.T) {
	// Initial state of the 2-process single-CAS system: the scheduler
	// picks between 2 enabled processes.
	arity, err := ChildArity(cfgSingle(2, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if arity != 2 {
		t.Fatalf("initial arity = %d, want 2", arity)
	}
	// After both steps the execution is over: no further choices.
	arity, err = ChildArity(cfgSingle(2, 0), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if arity != 1 {
		// One enabled process remains; single-enabled picks consume no
		// choice, so the frontier choice (if any) is the fault choice
		// or nothing. Fault-free: nothing.
		if arity != 0 {
			t.Fatalf("post-step arity = %d, want 0 or 1", arity)
		}
	}
}

func TestFindCriticalSingleCAS(t *testing.T) {
	// The canonical FLP/Herlihy picture: for the single-CAS protocol the
	// initial state itself is critical — every enabled step decides.
	crit, err := FindCritical(cfgSingle(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(crit.Prefix) != 0 {
		t.Fatalf("critical prefix = %v, want the initial state", crit.Prefix)
	}
	if !crit.State.Multivalent() {
		t.Fatal("critical state must be multivalent")
	}
	values := map[int64]bool{}
	for _, ch := range crit.Children {
		if !ch.Univalent() {
			t.Fatalf("child not univalent: %s", ch)
		}
		values[ch.Values[0]] = true
	}
	if len(values) < 2 {
		t.Fatalf("decision steps cover %v; a critical state needs ≥2 valencies", values)
	}
}

func TestFindCriticalStaged(t *testing.T) {
	// Figure 3's f=1, t=1 instance also has a critical state; verify the
	// structural invariants hold wherever the walk lands.
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          []int64{10, 11},
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	}
	crit, err := FindCritical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !crit.State.Multivalent() {
		t.Fatal("critical state must be multivalent")
	}
	if len(crit.Children) < 2 {
		t.Fatalf("critical state has %d children", len(crit.Children))
	}
	seen := map[int64]bool{}
	for _, ch := range crit.Children {
		if !ch.Univalent() {
			t.Fatalf("child not univalent: %s", ch)
		}
		seen[ch.Values[0]] = true
	}
	if len(seen) < 2 {
		t.Fatalf("children valencies %v; want both values represented", seen)
	}
}

func TestFindCriticalRejectsUnivalentStart(t *testing.T) {
	cfg := Config{Protocol: core.SingleCAS{}, Inputs: []int64{7, 7}}
	if _, err := FindCritical(cfg); err == nil {
		t.Fatal("equal inputs must be rejected (initial state univalent)")
	}
}

func TestValenceString(t *testing.T) {
	v, err := Compute(cfgSingle(2, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() == "" {
		t.Error("empty string")
	}
	u, err := Compute(cfgSingle(2, 0), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if u.String() == "" {
		t.Error("empty string")
	}
}
