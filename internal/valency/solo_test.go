package valency

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

func TestSoloValenceFollowsStateValency(t *testing.T) {
	cfg := cfgSingle(2, 0)
	// After p0's step the state is 10-valent; p1's solo run decides 10.
	v, err := SoloValence(cfg, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Univalent() || v.Values[0] != 10 {
		t.Fatalf("p1 solo from 10-valent state: %s", v)
	}
	// Symmetric case.
	v, err = SoloValence(cfg, []int{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Univalent() || v.Values[0] != 11 {
		t.Fatalf("p0 solo from 11-valent state: %s", v)
	}
}

func TestSoloValenceFromInitialState(t *testing.T) {
	// A solo run of p0 from the initial state decides p0's input.
	v, err := SoloValence(cfgSingle(2, 0), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Univalent() || v.Values[0] != 10 {
		t.Fatalf("p0 solo from start: %s", v)
	}
}

func TestSoloValenceValidation(t *testing.T) {
	if _, err := SoloValence(cfgSingle(2, 0), nil, 5); err == nil {
		t.Fatal("out-of-range process must error")
	}
}

func TestIndistinguishabilityDistinguishesDecidedStates(t *testing.T) {
	cfg := cfgSingle(2, 0)
	// States after p0's step vs after p1's step ARE distinguishable to
	// either process (the register content differs and CAS exposes it).
	same, err := IndistinguishableTo(cfg, []int{0}, []int{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatal("states with different winners must be distinguishable")
	}
}

func TestTheorem18ContradictionExhibited(t *testing.T) {
	// The closing move of the Theorem 18 proof, computed: in the reduced
	// model (3 processes, unbounded overriding faults on the single
	// object) take the two successor states of the initial state in
	// which p0 and then p1 CAS first — call them s1 and s2′ after p1's
	// overriding CAS lands on top in both orders. The proof's point:
	// there are pairs of states with different valencies that a third
	// process cannot distinguish, so its solo run decides the same value
	// in both — contradicting consensus.
	cfg := cfgSingle(3, fault.Unbounded)

	// Prefix [0, ...]: p0 CASes first (succeeds, register 10), then p1
	// CASes with an overriding fault (register 11).
	// Prefix [1, ...]: p1 CASes first (succeeds, register 11) — wait,
	// scheduling choice 1 picks p1. Then p0 CASes and overrides
	// (register 10)... the proof wants both orders ending with the SAME
	// final content so p2 cannot tell. Choose the interleavings ending
	// with register = 11:
	//   A: p0 steps (10), p1 steps + fault (11)
	//   B: p1 steps (11), p0's step fails (register stays 11, no fault)
	// In A the history contains p0's value; in B it does not. p2's solo
	// run must nevertheless decide the same value in both.
	prefixA := []int{0, 0, 1} // schedule p0; schedule p1; p1's CAS faults
	prefixB := []int{1, 0, 0} // schedule p1; schedule p0; p0's CAS does not fault

	same, err := IndistinguishableTo(cfg, prefixA, prefixB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		a, _ := SoloValence(cfg, prefixA, 2)
		b, _ := SoloValence(cfg, prefixB, 2)
		t.Fatalf("p2 distinguishes the two states: %s vs %s", a, b)
	}

	// And the contradiction: in execution B nobody ever proposed-and-won
	// with p0's value, while in A both p0 and p1 decide 10 in some
	// extensions — yet p2's solo decision is identical. Verify A indeed
	// reaches violations (p2 decides 11 while p0 decided 10).
	vA, err := Compute(cfg, prefixA)
	if err != nil {
		t.Fatal(err)
	}
	if !vA.Violated {
		t.Fatalf("state A must have violating extensions: %s", vA)
	}
}

func TestSoloValenceUnderFaultsEnumeratesFaultChoices(t *testing.T) {
	// Solo extensions still branch on fault decisions: with unbounded
	// overriding faults on the object, p1's solo run from the state
	// where p0 won explores both the faulty and non-faulty branch —
	// but decides 10 either way (Theorem 4's truthful-old argument).
	v, err := SoloValence(cfgSingle(2, fault.Unbounded), []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Executions < 2 {
		t.Fatalf("expected ≥2 solo extensions (fault branch), got %d", v.Executions)
	}
	if !v.Univalent() || v.Values[0] != 10 {
		t.Fatalf("p1 solo: %s", v)
	}
}

func TestSoloValenceStaged(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          []int64{10, 11},
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	}
	v, err := SoloValence(cfg, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Univalent() || v.Values[0] != 11 {
		t.Fatalf("p1 solo from start: %s", v)
	}
}
