// Package valency operationalizes the proof technique of Section 5 of the
// paper (inherited from Herlihy's impossibility arguments and FLP): the
// *valence* of a system state is the set of decision values still reachable
// in some extension of the execution.
//
// A state is multivalent when at least two decision values remain possible,
// univalent (x-valent) when only one does, and a step out of a multivalent
// state into a univalent one is a decision step. The impossibility proofs
// construct a critical state — a multivalent state whose every enabled step
// is a decision step — and derive a contradiction from indistinguishability
// of its successors. This package computes those objects *exactly*, by
// exhaustive enumeration over the deterministic simulator's choice tree, so
// the proof's skeleton can be exhibited (and tested) on concrete protocols.
//
// States are identified by choice-path prefixes: the sequence of
// scheduler/fault decisions that leads to the state from the initial one
// (the same representation the model checker in internal/explore uses).
package valency

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/run"
	"repro/internal/sim"
)

// Config describes the system whose state space is analyzed. It mirrors
// explore.Config (scheduling choices plus optional overriding-fault
// choices on a fixed faulty-object set).
type Config struct {
	Protocol        core.Protocol
	Inputs          []int64
	FaultyObjects   []int
	FaultsPerObject int
	// MaxExecutions caps each subtree enumeration. 0 means the explore
	// default; valence results are only exact when the enumeration
	// completes, and Valence reports an error otherwise.
	MaxExecutions int

	// soloProc, when positive, restricts scheduling beyond the prefix to
	// process soloProc−1 (solo extensions; see SoloValence).
	soloProc int
}

// Valence is the analysis result for one state (choice-path prefix).
type Valence struct {
	// Prefix identifies the state.
	Prefix []int
	// Values are the decision values reachable in extensions of the
	// state, ascending. With a correct protocol every execution is
	// consistent and Values is the classical valence; if any extension
	// violates consistency, Violated is set and Values collects every
	// decided value observed.
	Values []int64
	// Violated reports that some extension violates a consensus
	// requirement (the protocol is incorrect in this configuration).
	Violated bool
	// Executions is the number of complete extensions enumerated.
	Executions int
}

// Multivalent reports whether at least two decision values remain possible.
func (v Valence) Multivalent() bool { return len(v.Values) >= 2 }

// Univalent reports whether exactly one decision value remains possible.
func (v Valence) Univalent() bool { return len(v.Values) == 1 }

// String renders the valence compactly.
func (v Valence) String() string {
	kind := "multivalent"
	if v.Univalent() {
		kind = fmt.Sprintf("%d-valent", v.Values[0])
	}
	if v.Violated {
		kind += " (violations reachable)"
	}
	return fmt.Sprintf("state %v: %s, values %v over %d executions", v.Prefix, kind, v.Values, v.Executions)
}

// Compute determines the valence of the state identified by prefix by
// enumerating every extension. It returns an error if the enumeration
// cannot be completed within the cap (the result would not be exact).
func Compute(cfg Config, prefix []int) (Valence, error) {
	res := Valence{Prefix: append([]int(nil), prefix...)}
	seen := map[int64]bool{}

	err := enumerate(cfg, prefix, func(verdict run.Verdict) {
		res.Executions++
		if !verdict.OK() {
			res.Violated = true
		}
		for i, ok := range verdict.Decided {
			if ok && !verdict.Decisions[i].IsBottom() {
				seen[verdict.Decisions[i].Value()] = true
			}
		}
	})
	if err != nil {
		return Valence{}, err
	}
	for v := range seen {
		res.Values = append(res.Values, v)
	}
	sort.Slice(res.Values, func(i, j int) bool { return res.Values[i] < res.Values[j] })
	return res, nil
}

// ChildArity returns the number of alternatives at the state's frontier
// choice — i.e. how many distinct next steps the adversary can take from
// this state. Zero means the execution completes without consuming another
// choice (the state is terminal for scheduling purposes).
func ChildArity(cfg Config, prefix []int) (int, error) {
	arity := 0
	probe := append(append([]int(nil), prefix...), 0)
	c := newChooser(probe)
	if err := runPath(cfg, c); err != nil {
		return 0, err
	}
	if len(c.arity) > len(prefix) {
		arity = c.arity[len(prefix)]
	}
	return arity, nil
}

// Critical is a multivalent state whose every enabled step leads to a
// univalent state — the object the impossibility proofs construct.
type Critical struct {
	// Prefix identifies the critical state.
	Prefix []int
	// State is the critical state's own valence.
	State Valence
	// Children holds the valence of each successor, indexed by choice.
	Children []Valence
}

// FindCritical walks the choice tree from the initial state, always
// stepping into a multivalent child, until it reaches a state whose
// children are all univalent. For a correct wait-free protocol with at
// least two distinct inputs such a state must exist (the walk strictly
// descends a finite tree and the initial state is multivalent by validity).
func FindCritical(cfg Config) (*Critical, error) {
	prefix := []int{}
	state, err := Compute(cfg, prefix)
	if err != nil {
		return nil, err
	}
	if !state.Multivalent() {
		return nil, fmt.Errorf("valency: initial state is %s; need ≥2 distinct inputs", state)
	}

	for {
		arity, err := ChildArity(cfg, prefix)
		if err != nil {
			return nil, err
		}
		if arity == 0 {
			return nil, fmt.Errorf("valency: multivalent state %v has no successors", prefix)
		}
		children := make([]Valence, arity)
		nextChild := -1
		for c := 0; c < arity; c++ {
			child, err := Compute(cfg, append(append([]int(nil), prefix...), c))
			if err != nil {
				return nil, err
			}
			children[c] = child
			if child.Multivalent() && nextChild == -1 {
				nextChild = c
			}
		}
		if nextChild == -1 {
			return &Critical{Prefix: prefix, State: state, Children: children}, nil
		}
		prefix = append(prefix, nextChild)
		state = children[nextChild]
	}
}

// enumerate runs every extension of the prefix, invoking visit with each
// execution's verdict. It fails if the subtree exceeds the execution cap.
func enumerate(cfg Config, prefix []int, visit func(run.Verdict)) error {
	cap := cfg.MaxExecutions
	if cap <= 0 {
		cap = explore.DefaultMaxExecutions
	}
	c := newChooser(prefix)
	floor := len(prefix)
	for execs := 0; execs < cap; execs++ {
		c.arity = c.arity[:0]
		c.pos = 0
		verdict, err := runPathVerdict(cfg, c, floor)
		if err != nil {
			return err
		}
		visit(verdict)
		if !c.next(floor) {
			return nil
		}
	}
	return fmt.Errorf("valency: subtree at %v exceeds %d executions", prefix, cap)
}

// chooser mirrors explore's replay chooser, with a floor below which the
// odometer never backtracks (the prefix is pinned).
type chooser struct {
	path  []int
	arity []int
	pos   int
}

func newChooser(prefix []int) *chooser {
	return &chooser{path: append([]int(nil), prefix...)}
}

func (c *chooser) choose(n int) int {
	if c.pos == len(c.path) {
		c.path = append(c.path, 0)
	}
	pick := c.path[c.pos]
	if pick >= n {
		panic(fmt.Sprintf("valency: stale choice %d of %d at %d", pick, n, c.pos))
	}
	c.arity = append(c.arity, n)
	c.pos++
	return pick
}

func (c *chooser) next(floor int) bool {
	i := len(c.path) - 1
	for i >= floor && (i >= len(c.arity) || c.path[i]+1 >= c.arity[i]) {
		i--
	}
	if i < floor {
		return false
	}
	c.path = c.path[:i+1]
	c.path[i]++
	return true
}

func runPath(cfg Config, c *chooser) error {
	_, err := runPathVerdict(cfg, c, len(c.path))
	return err
}

func runPathVerdict(cfg Config, c *chooser, soloAfter int) (run.Verdict, error) {
	budget := fault.NewFixedBudget(cfg.FaultyObjects, cfg.FaultsPerObject)
	policy := fault.PolicyFunc(func(op fault.Op) fault.Proposal {
		if !budget.Admits(op.Object) || op.Current == op.Exp || op.New == op.Current {
			return fault.NoFault
		}
		if c.choose(2) == 1 {
			return fault.Proposal{Kind: fault.Overriding}
		}
		return fault.NoFault
	})
	bank := object.NewBank(cfg.Protocol.Objects(), budget, policy)
	sched := sim.SchedulerFunc(func(enabled []int) (int, bool) {
		if cfg.soloProc > 0 && c.pos >= soloAfter {
			// Solo extension: only the designated process steps.
			want := cfg.soloProc - 1
			for _, id := range enabled {
				if id == want {
					return id, true
				}
			}
			return 0, false // the solo process has finished
		}
		if len(enabled) == 1 {
			return enabled[0], true
		}
		return enabled[c.choose(len(enabled))], true
	})
	res, err := sim.Run(sim.Config{
		Programs:  run.Programs(cfg.Protocol, bank, cfg.Inputs),
		Scheduler: sched,
		StepLimit: cfg.Protocol.StepBound(len(cfg.Inputs)),
	})
	if err != nil && res == nil {
		return run.Verdict{}, err
	}
	return run.Evaluate(cfg.Inputs, res, err), nil
}
