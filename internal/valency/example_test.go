package valency_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/valency"
)

// The FLP/Herlihy picture for the single-CAS protocol: the initial state is
// multivalent and critical — each process's first step is a decision step.
func ExampleFindCritical() {
	cfg := valency.Config{
		Protocol: core.SingleCAS{},
		Inputs:   []int64{10, 11},
	}
	crit, err := valency.FindCritical(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("critical at depth", len(crit.Prefix))
	for c, child := range crit.Children {
		fmt.Printf("step %d → %v\n", c, child.Values)
	}
	// Output:
	// critical at depth 0
	// step 0 → [10]
	// step 1 → [11]
}

// Valence of the state after p0's first CAS: only p0's input remains.
func ExampleCompute() {
	cfg := valency.Config{
		Protocol: core.SingleCAS{},
		Inputs:   []int64{10, 11},
	}
	v, err := valency.Compute(cfg, []int{0})
	if err != nil {
		panic(err)
	}
	fmt.Println(v.Univalent(), v.Values)
	// Output: true [10]
}
