package dedup

import (
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/word"
)

func TestVisitSemantics(t *testing.T) {
	s := NewSet(0)
	fp := Fingerprint{Hi: 1, Lo: 2}

	if d := s.Visit(fp, []int{1, 0}); d != Stored {
		t.Fatalf("first visit = %v, want Stored", d)
	}
	if d := s.Visit(fp, []int{1, 0}); d != Revisit {
		t.Fatalf("same-path visit = %v, want Revisit", d)
	}
	if d := s.Visit(fp, []int{1, 1}); d != Prune {
		t.Fatalf("larger-path visit = %v, want Prune", d)
	}
	if d := s.Visit(fp, []int{0, 7}); d != Improved {
		t.Fatalf("smaller-path visit = %v, want Improved", d)
	}
	// After the improvement, the old representative now prunes.
	if d := s.Visit(fp, []int{1, 0}); d != Prune {
		t.Fatalf("old representative = %v, want Prune", d)
	}

	st := s.Stats()
	if st.States != 1 || st.Hits != 2 || st.Improved != 1 || st.Lookups != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVisitPrefixOrdering(t *testing.T) {
	s := NewSet(0)
	fp := Fingerprint{Hi: 3, Lo: 4}
	if d := s.Visit(fp, []int{2}); d != Stored {
		t.Fatalf("got %v", d)
	}
	// A stored proper prefix orders before every extension.
	if d := s.Visit(fp, []int{2, 0}); d != Prune {
		t.Fatalf("extension of stored prefix = %v, want Prune", d)
	}
	// A shorter candidate that is a prefix of the stored path improves it.
	if d := s.Visit(Fingerprint{Hi: 5, Lo: 6}, []int{2, 0}); d != Stored {
		t.Fatalf("got %v", d)
	}
	if d := s.Visit(Fingerprint{Hi: 5, Lo: 6}, []int{2}); d != Improved {
		t.Fatalf("prefix of stored path = %v, want Improved", d)
	}
}

func TestSetLimit(t *testing.T) {
	s := NewSet(2)
	s.Visit(Fingerprint{Lo: 0}, []int{0})
	s.Visit(Fingerprint{Lo: 1}, []int{1})
	// Full: the third state is not recorded...
	if d := s.Visit(Fingerprint{Lo: 2}, []int{2}); d != Stored {
		t.Fatalf("got %v", d)
	}
	if d := s.Visit(Fingerprint{Lo: 2}, []int{3}); d != Stored {
		t.Fatalf("state beyond the limit must stay unrecorded, got %v", d)
	}
	// ...but recorded states keep pruning.
	if d := s.Visit(Fingerprint{Lo: 1}, []int{5}); d != Prune {
		t.Fatalf("got %v", d)
	}
	if st := s.Stats(); st.States != 2 {
		t.Fatalf("states = %d, want 2", st.States)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewSet(0)
	s.Visit(Fingerprint{Hi: 1, Lo: 1}, []int{0, 1})
	s.Visit(Fingerprint{Hi: 2, Lo: 2}, []int{1})
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}

	r := NewSet(0)
	r.Restore(snap)
	if d := r.Visit(Fingerprint{Hi: 1, Lo: 1}, []int{0, 2}); d != Prune {
		t.Fatalf("restored entry must prune, got %v", d)
	}
	// Restore keeps the smaller representative on conflict.
	r2 := NewSet(0)
	r2.Visit(Fingerprint{Hi: 2, Lo: 2}, []int{0})
	r2.Restore(snap)
	if d := r2.Visit(Fingerprint{Hi: 2, Lo: 2}, []int{0}); d != Revisit {
		t.Fatalf("smaller pre-existing representative must survive restore, got %v", d)
	}
}

func TestConcurrentVisits(t *testing.T) {
	s := NewSet(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Visit(Fingerprint{Hi: uint64(i), Lo: uint64(i % 37)}, []int{w, i})
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.States != 2000 {
		t.Fatalf("states = %d, want 2000", st.States)
	}
	if st.Lookups != 16000 {
		t.Fatalf("lookups = %d, want 16000", st.Lookups)
	}
}

func casEvent(proc, obj int, old, post word.Word) trace.Event {
	return trace.Event{Kind: trace.EventCAS, Proc: proc, Object: obj, Old: old, Post: post}
}

func TestTrackerDistinguishesStates(t *testing.T) {
	tr := NewTracker(2, []int64{10, 11}, false)
	base := tr.Fingerprint()

	tr.Observe(casEvent(0, 0, word.Bottom, word.FromValue(10)))
	after := tr.Fingerprint()
	if after == base {
		t.Fatal("a CAS step must change the fingerprint")
	}

	tr.Reset()
	if got := tr.Fingerprint(); got != base {
		t.Fatalf("reset fingerprint = %v, want %v", got, base)
	}
}

func TestTrackerConvergingInterleavings(t *testing.T) {
	// Two processes each perform an operation whose responses are
	// order-independent: both orders must converge to the same state.
	a := NewTracker(2, []int64{10, 11}, false)
	a.Observe(casEvent(0, 0, word.Bottom, word.FromValue(10)))
	a.Observe(casEvent(1, 1, word.Bottom, word.FromValue(11)))

	b := NewTracker(2, []int64{10, 11}, false)
	b.Observe(casEvent(1, 1, word.Bottom, word.FromValue(11)))
	b.Observe(casEvent(0, 0, word.Bottom, word.FromValue(10)))

	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("commuting steps must reach the same fingerprint")
	}
}

func TestTrackerOrderSensitive(t *testing.T) {
	// Same multiset of events but different responses observed: distinct.
	a := NewTracker(1, []int64{10, 11}, false)
	a.Observe(casEvent(0, 0, word.Bottom, word.FromValue(10)))
	a.Observe(casEvent(1, 0, word.FromValue(10), word.FromValue(10)))

	b := NewTracker(1, []int64{10, 11}, false)
	b.Observe(casEvent(1, 0, word.Bottom, word.FromValue(11)))
	b.Observe(casEvent(0, 0, word.FromValue(11), word.FromValue(11)))

	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different observed responses must yield different fingerprints")
	}
}

func TestTrackerSymmetricRenaming(t *testing.T) {
	// Processes 0 and 1 have swapped inputs and swapped histories: the
	// symmetric tracker identifies the states, the plain one does not.
	history := func(sym bool, swap bool) Fingerprint {
		inputs := []int64{10, 11}
		if swap {
			inputs = []int64{11, 10}
		}
		tr := NewTracker(1, inputs, sym)
		p0, p1 := 0, 1
		if swap {
			p0, p1 = 1, 0
		}
		tr.Observe(casEvent(p0, 0, word.Bottom, word.FromValue(10)))
		tr.Observe(casEvent(p1, 0, word.FromValue(10), word.FromValue(10)))
		return tr.Fingerprint()
	}
	if history(true, false) != history(true, true) {
		t.Fatal("symmetric tracker must identify renamed states")
	}
	if history(false, false) == history(false, true) {
		t.Fatal("plain tracker must distinguish renamed states")
	}
}

func TestTrackerBudgetCharges(t *testing.T) {
	// Identical registers and histories except one execution charged a
	// fault: the remaining budgets differ, so the states must differ.
	a := NewTracker(1, []int64{10}, false)
	a.Observe(casEvent(0, 0, word.Bottom, word.FromValue(10)))

	b := NewTracker(1, []int64{10}, false)
	ev := casEvent(0, 0, word.Bottom, word.FromValue(10))
	ev.Fault = fault.Overriding
	b.Observe(ev)

	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("differing budget consumption must yield different fingerprints")
	}
}
