// Package dedup eliminates duplicate work during exploration of the
// execution tree: a sharded, lock-striped set of fingerprints over canonical
// execution states (register contents, per-process local-state digests, and
// pending fault budgets — see Tracker). Many interleavings converge to the
// same state; once one subtree rooted at a state has been claimed, every
// other path reaching that state can be pruned, turning exponential
// re-exploration of converging interleavings into a visited-set walk.
//
// The set keeps, per state, the lexicographically least choice path seen to
// reach it. A path is pruned only when a strictly smaller path already
// claimed the state, which preserves the engine's canonical-counterexample
// guarantee: the lexicographically least violating leaf of the full tree is
// never cut off, because any prefix of it that loses a dedup race loses to a
// strictly smaller path whose (isomorphic) subtree contains a strictly
// smaller violating leaf — contradicting leastness. Pruning therefore
// changes how much work is done, never which verdict and counterexample are
// reported.
package dedup

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Fingerprint is a 128-bit hash of a canonical execution state. Two
// independent 64-bit hashes make accidental collisions (which would prune a
// genuinely different state) negligible at any realistic exploration size.
type Fingerprint struct {
	Hi, Lo uint64
}

// Decision is the outcome of a Visit.
type Decision int

const (
	// Stored means the state was new and the path was recorded as its
	// representative: keep exploring.
	Stored Decision = iota
	// Revisit means the state was already claimed by this very path (a
	// shared prefix of the worker's own enumeration): keep exploring.
	Revisit
	// Improved means the path is strictly smaller than the recorded
	// representative and replaced it: keep exploring.
	Improved
	// Prune means a strictly smaller path already claimed the state: the
	// subtree rooted here only repeats work, abandon it.
	Prune
)

// numShards stripes the lock so concurrent workers rarely contend; a power
// of two keeps shard selection a mask.
const numShards = 64

type shard struct {
	mu sync.Mutex
	m  map[Fingerprint][]int32
	// buf is the shard's interning arena: representative paths are carved
	// out of large chunks instead of one heap object per state, which
	// removes the per-store allocation from the Visit hot path.
	buf []int32
}

// internChunk is the arena chunk size in cells; paths longer than a chunk
// get an exact allocation.
const internChunk = 4096

// intern copies path into the shard's arena. Callers hold the shard lock.
func (sh *shard) intern(path []int) []int32 {
	n := len(path)
	if n > internChunk {
		return compact(path)
	}
	if len(sh.buf)+n > cap(sh.buf) {
		sh.buf = make([]int32, 0, internChunk)
	}
	start := len(sh.buf)
	for _, v := range path {
		sh.buf = append(sh.buf, int32(v))
	}
	return sh.buf[start : start+n : start+n]
}

// Set is the concurrent visited-state set. The zero value is not usable;
// construct with NewSet.
type Set struct {
	shards [numShards]shard

	// limit bounds the number of stored states (0 = unlimited). When the
	// set is full, new states are not recorded — existing entries keep
	// pruning, so the cap trades hit rate for memory, never soundness.
	limit int64
	size  atomic.Int64

	lookups  atomic.Int64
	hits     atomic.Int64
	improved atomic.Int64

	// leafLookups is the engine-side effectiveness denominator: Visit runs
	// once per scheduling decision (so Lookups counts steps, not
	// executions, and most of them are Revisits of the worker's own
	// prefix). The engine calls LeafLookup once per replayed leaf — pruned
	// or completed — making Hits/LeafLookups the honest hit rate.
	leafLookups atomic.Int64
}

// NewSet returns an empty set holding at most limit states (0 = unlimited).
func NewSet(limit int) *Set {
	s := &Set{limit: int64(limit)}
	for i := range s.shards {
		s.shards[i].m = make(map[Fingerprint][]int32)
	}
	return s
}

// Visit records or consults the state reached by the given choice path and
// decides whether the subtree rooted at that path should be explored or
// pruned. path is borrowed for the duration of the call; the set copies it
// when it becomes a representative.
func (s *Set) Visit(fp Fingerprint, path []int) Decision {
	s.lookups.Add(1)
	sh := &s.shards[fp.Lo&(numShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	stored, ok := sh.m[fp]
	if !ok {
		if s.limit > 0 && s.size.Load() >= s.limit {
			return Stored // full: not recorded, treated as fresh
		}
		sh.m[fp] = sh.intern(path)
		s.size.Add(1)
		return Stored
	}
	switch comparePaths(stored, path) {
	case 0:
		return Revisit
	case -1:
		s.hits.Add(1)
		return Prune
	default:
		sh.m[fp] = sh.intern(path)
		s.improved.Add(1)
		return Improved
	}
}

// LeafLookup counts one replayed leaf that consulted the set. Callers (the
// exploration engine) invoke it once per completed or pruned replay.
func (s *Set) LeafLookup() { s.leafLookups.Add(1) }

// compact stores a choice path in 32-bit cells (arities are tiny).
func compact(path []int) []int32 {
	c := make([]int32, len(path))
	for i, v := range path {
		c[i] = int32(v)
	}
	return c
}

// comparePaths orders a stored representative against a candidate path:
// -1 if stored is lexicographically less, 0 if equal, +1 if greater. A
// shorter path that is a prefix of the longer orders first.
func comparePaths(stored []int32, path []int) int {
	for i := 0; i < len(stored) && i < len(path); i++ {
		if int(stored[i]) != path[i] {
			if int(stored[i]) < path[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(stored) == len(path):
		return 0
	case len(stored) < len(path):
		return -1
	default:
		return 1
	}
}

// Stats is a point-in-time summary of the set's effectiveness.
type Stats struct {
	// States is the number of distinct states recorded.
	States int64
	// Lookups is the total number of Visit calls.
	Lookups int64
	// Hits is the number of Prune decisions (subtrees eliminated).
	Hits int64
	// Improved is the number of representative replacements by a
	// lexicographically smaller path.
	Improved int64
	// LeafLookups is the number of replayed leaves that consulted the set
	// (one per execution, pruned or completed — versus Lookups, which is
	// one per scheduling decision).
	//
	// There is deliberately no "executions saved" counter here: a pruned
	// replay cuts a whole unexplored subtree, and the number of leaves
	// that subtree would have had is unknowable without exploring it. The
	// honest savings measure is leaf-level — compare Executions of a
	// deduplicated run against the same run with dedup off (scripts/bench.sh
	// records exactly that as executions_saved_fraction).
	LeafLookups int64
}

// HitRate is the fraction of replayed leaves that were pruned: Hits over
// LeafLookups. Dividing by all Visit calls instead (one per step, nearly
// all of them Revisits of the worker's own prefix) once underreported a
// 60%-savings run as a 1% hit rate. When the engine-side leaf counter is
// absent (bare Set users), it falls back to the per-step ratio.
func (s Stats) HitRate() float64 {
	if s.LeafLookups > 0 {
		return float64(s.Hits) / float64(s.LeafLookups)
	}
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Stats returns the current counters.
func (s *Set) Stats() Stats {
	return Stats{
		States:      s.size.Load(),
		Lookups:     s.lookups.Load(),
		Hits:        s.hits.Load(),
		Improved:    s.improved.Load(),
		LeafLookups: s.leafLookups.Load(),
	}
}

// Register exposes the set's counters on the registry as live derived
// gauges (dedup.states, dedup.lookups, dedup.hits, dedup.improved), so a
// metrics snapshot taken mid-run reads the cache's effectiveness without
// extra bookkeeping on the Visit hot path.
func (s *Set) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Func("dedup.states", s.size.Load)
	reg.Func("dedup.lookups", s.lookups.Load)
	reg.Func("dedup.hits", s.hits.Load)
	reg.Func("dedup.improved", s.improved.Load)
	reg.Func("dedup.leaf_lookups", s.leafLookups.Load)
}

// Entry is one persisted state: its fingerprint and representative path.
type Entry struct {
	Hi   uint64 `json:"hi"`
	Lo   uint64 `json:"lo"`
	Path []int  `json:"path"`
}

// Snapshot returns every recorded state, for checkpointing. The snapshot is
// consistent per shard; entries added concurrently may or may not appear,
// which is safe — dedup entries are advisory, and every entry's subtree is
// covered by the checkpoint's task set.
func (s *Set) Snapshot() []Entry {
	var out []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for fp, p := range sh.m {
			path := make([]int, len(p))
			for j, v := range p {
				path[j] = int(v)
			}
			out = append(out, Entry{Hi: fp.Hi, Lo: fp.Lo, Path: path})
		}
		sh.mu.Unlock()
	}
	return out
}

// Restore loads persisted entries into the set (resume). Existing entries
// are kept when lexicographically smaller.
func (s *Set) Restore(entries []Entry) {
	for _, e := range entries {
		fp := Fingerprint{Hi: e.Hi, Lo: e.Lo}
		sh := &s.shards[fp.Lo&(numShards-1)]
		sh.mu.Lock()
		stored, ok := sh.m[fp]
		if !ok {
			if s.limit <= 0 || s.size.Load() < s.limit {
				sh.m[fp] = sh.intern(e.Path)
				s.size.Add(1)
			}
		} else if comparePaths(stored, e.Path) > 0 {
			sh.m[fp] = sh.intern(e.Path)
		}
		sh.mu.Unlock()
	}
}
