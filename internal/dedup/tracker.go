package dedup

import (
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/word"
)

// Tracker incrementally maintains the canonical state of one replayed
// execution, fed by the simulator's event stream, and renders it as a
// Fingerprint on demand. The canonical state is:
//
//   - the contents of every CAS register (tracked from post-states of CAS
//     events),
//   - one local-state digest per process — a rolling hash over the
//     process's input and the sequence of responses it observed (returned
//     old values, plus its decision). Programs are deterministic and see
//     shared memory only through those responses, so equal digests mean
//     equal local states, including the program counter,
//   - the fault budget consumed per object (remaining budgets determine
//     which faults the adversary may still inject).
//
// Two partial executions with equal canonical states have isomorphic
// continuation subtrees, so the second is redundant.
//
// When symmetric is set, the per-process digests are hashed as a sorted
// multiset instead of a vector, identifying states that differ only by a
// renaming of processes. This is sound for every protocol written against
// core.Env: the environment exposes no process identity, so process
// programs differ only by their input value — which the digest seed
// captures — and the consensus conditions are invariant under renaming.
//
// The fingerprint is maintained incrementally: each register slot and each
// process digest contributes one mixed term to a pair of commutative
// accumulators, and Observe replaces the changed slot's term (subtract old,
// add new) instead of rehashing the whole state. Fingerprint is therefore
// O(1) per probe — the explorer fingerprints before every scheduling
// decision, and the old O(objects + n log n) walk dominated deduplicated
// replays. Addition is commutative, so the symmetric multiset view needs no
// sort: unsalted process terms are order-blind by construction, while
// register terms stay salted by slot index.
type Tracker struct {
	inputs    []int64
	regs      []word.Word
	procs     []uint64
	charges   []uint32
	symmetric bool

	regSalt []uint64 // per-slot salt for register terms
	hi, lo  uint64   // commutative accumulators over all slot terms
}

// NewTracker returns a tracker for executions of n = len(inputs) processes
// over the given number of CAS objects.
func NewTracker(objects int, inputs []int64, symmetric bool) *Tracker {
	t := &Tracker{
		inputs:    append([]int64(nil), inputs...),
		regs:      make([]word.Word, objects),
		procs:     make([]uint64, len(inputs)),
		charges:   make([]uint32, objects),
		symmetric: symmetric,
		regSalt:   make([]uint64, objects),
	}
	for i := range t.regSalt {
		t.regSalt[i] = mix64(fnvSeed + uint64(i)*fnvPrime)
	}
	t.Reset()
	return t
}

// regTerm is object slot i's contribution: the packed (register, charges)
// value mixed with the slot's salt, in two independent streams.
func (t *Tracker) regTerm(i int) (hi, lo uint64) {
	v := uint64(t.regs[i]) ^ uint64(t.charges[i])<<1 ^ t.regSalt[i]
	return mix64(v), mix64(v ^ fnvSeed2)
}

// procTerm is process p's contribution. Symmetric trackers drop the process
// index from the term, turning the accumulated sum into a multiset hash of
// the digests — renaming-invariant without sorting.
func (t *Tracker) procTerm(p int) (hi, lo uint64) {
	d := t.procs[p]
	if !t.symmetric {
		d ^= mix64(fnvSeed2 + uint64(p)*fnvPrime)
	}
	return mix64(d ^ fnvSeed), mix64(d + fnvSeed2)
}

// setProc replaces process p's digest and swaps its accumulator term.
func (t *Tracker) setProc(p int, d uint64) {
	oh, ol := t.procTerm(p)
	t.procs[p] = d
	nh, nl := t.procTerm(p)
	t.hi += nh - oh
	t.lo += nl - ol
}

// setReg replaces object o's register (and optionally bumps its fault
// charge) and swaps its accumulator term.
func (t *Tracker) setReg(o int, v word.Word, charge bool) {
	oh, ol := t.regTerm(o)
	t.regs[o] = v
	if charge {
		t.charges[o]++
	}
	nh, nl := t.regTerm(o)
	t.hi += nh - oh
	t.lo += nl - ol
}

// Reset restores the initial state (fresh replay) and rebuilds the
// accumulators from scratch.
func (t *Tracker) Reset() {
	for i := range t.regs {
		t.regs[i] = word.Bottom
		t.charges[i] = 0
	}
	for i, in := range t.inputs {
		t.procs[i] = mix64(fnvSeed ^ uint64(in))
	}
	t.hi, t.lo = fnvSeed, fnvSeed2
	for i := range t.regs {
		h, l := t.regTerm(i)
		t.hi += h
		t.lo += l
	}
	for p := range t.procs {
		h, l := t.procTerm(p)
		t.hi += h
		t.lo += l
	}
}

// Observe folds one simulator event into the state. It is installed as the
// simulator's Observer, so it runs inside the granted atomic step — no
// synchronization is needed.
func (t *Tracker) Observe(e trace.Event) {
	switch e.Kind {
	case trace.EventCAS:
		t.setReg(e.Object, e.Post, e.Fault != fault.None)
		// The process observes only the returned old value (a silent
		// fault is invisible to it); which operation it issued is a
		// function of its local state, so (object, old) per response
		// pins the continuation.
		d := roll(t.procs[e.Proc], uint64(e.Object)<<1|1)
		t.setProc(e.Proc, roll(d, uint64(e.Old)))
	case trace.EventDecide:
		d := roll(t.procs[e.Proc], 0xD0)
		t.setProc(e.Proc, roll(d, uint64(e.Value)))
	case trace.EventCorrupt:
		t.setReg(e.Object, e.Value, false)
	case trace.EventHalt:
		t.setProc(e.Proc, roll(t.procs[e.Proc], 0xA1))
	}
}

// Fingerprint renders the current canonical state as a 128-bit hash. O(1):
// the accumulators are maintained by Observe; only the finalizer runs here.
func (t *Tracker) Fingerprint() Fingerprint {
	return Fingerprint{Hi: mix64(t.hi), Lo: mix64(t.lo)}
}

// Register returns the tracked content of CAS register o — the value the
// next operation on o will read. The exploration reducer's independence
// relation consults it to decide whether a pending CAS is a pure read.
func (t *Tracker) Register(o int) word.Word { return t.regs[o] }

// ProcDigest returns process p's local-state digest. Equal digests mean
// equal local states (same input, same observed responses), which is what
// lets the reducer canonicalize process-symmetric branch points.
func (t *Tracker) ProcDigest(p int) uint64 { return t.procs[p] }

const (
	fnvSeed  = 0xcbf29ce484222325
	fnvSeed2 = 0x9e3779b97f4a7c15
	fnvPrime = 0x100000001b3
)

// roll is a multiply-xor rolling hash for the per-process digests; mix64 is
// the splitmix64 finalizer for avalanche.
func roll(h, v uint64) uint64 { return (h ^ mix64(v)) * fnvPrime }

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
