package dedup

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/word"
)

// Tracker incrementally maintains the canonical state of one replayed
// execution, fed by the simulator's event stream, and renders it as a
// Fingerprint on demand. The canonical state is:
//
//   - the contents of every CAS register (tracked from post-states of CAS
//     events),
//   - one local-state digest per process — a rolling hash over the
//     process's input and the sequence of responses it observed (returned
//     old values, plus its decision). Programs are deterministic and see
//     shared memory only through those responses, so equal digests mean
//     equal local states, including the program counter,
//   - the fault budget consumed per object (remaining budgets determine
//     which faults the adversary may still inject).
//
// Two partial executions with equal canonical states have isomorphic
// continuation subtrees, so the second is redundant.
//
// When symmetric is set, the per-process digests are hashed as a sorted
// multiset instead of a vector, identifying states that differ only by a
// renaming of processes. This is sound for every protocol written against
// core.Env: the environment exposes no process identity, so process
// programs differ only by their input value — which the digest seed
// captures — and the consensus conditions are invariant under renaming.
type Tracker struct {
	inputs    []int64
	regs      []word.Word
	procs     []uint64
	charges   []uint32
	symmetric bool
	scratch   []uint64
}

// NewTracker returns a tracker for executions of n = len(inputs) processes
// over the given number of CAS objects.
func NewTracker(objects int, inputs []int64, symmetric bool) *Tracker {
	t := &Tracker{
		inputs:    append([]int64(nil), inputs...),
		regs:      make([]word.Word, objects),
		procs:     make([]uint64, len(inputs)),
		charges:   make([]uint32, objects),
		symmetric: symmetric,
		scratch:   make([]uint64, len(inputs)),
	}
	t.Reset()
	return t
}

// Reset restores the initial state (fresh replay).
func (t *Tracker) Reset() {
	for i := range t.regs {
		t.regs[i] = word.Bottom
		t.charges[i] = 0
	}
	for i, in := range t.inputs {
		t.procs[i] = mix64(fnvSeed ^ uint64(in))
	}
}

// Observe folds one simulator event into the state. It is installed as the
// simulator's Observer, so it runs inside the granted atomic step — no
// synchronization is needed.
func (t *Tracker) Observe(e trace.Event) {
	switch e.Kind {
	case trace.EventCAS:
		t.regs[e.Object] = e.Post
		if e.Fault != fault.None {
			t.charges[e.Object]++
		}
		// The process observes only the returned old value (a silent
		// fault is invisible to it); which operation it issued is a
		// function of its local state, so (object, old) per response
		// pins the continuation.
		t.procs[e.Proc] = roll(t.procs[e.Proc], uint64(e.Object)<<1|1)
		t.procs[e.Proc] = roll(t.procs[e.Proc], uint64(e.Old))
	case trace.EventDecide:
		t.procs[e.Proc] = roll(t.procs[e.Proc], 0xD0)
		t.procs[e.Proc] = roll(t.procs[e.Proc], uint64(e.Value))
	case trace.EventCorrupt:
		t.regs[e.Object] = e.Value
	case trace.EventHalt:
		t.procs[e.Proc] = roll(t.procs[e.Proc], 0xA1)
	}
}

// Fingerprint renders the current canonical state as a 128-bit hash.
func (t *Tracker) Fingerprint() Fingerprint {
	procs := t.procs
	if t.symmetric {
		procs = t.scratch
		copy(procs, t.procs)
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	}
	hi, lo := uint64(fnvSeed), uint64(fnvSeed2)
	for i, r := range t.regs {
		v := uint64(r) ^ uint64(t.charges[i])<<1
		hi = roll(hi, v)
		lo = roll2(lo, v)
	}
	for _, d := range procs {
		hi = roll(hi, d)
		lo = roll2(lo, d)
	}
	return Fingerprint{Hi: mix64(hi), Lo: mix64(lo)}
}

const (
	fnvSeed  = 0xcbf29ce484222325
	fnvSeed2 = 0x9e3779b97f4a7c15
	fnvPrime = 0x100000001b3
)

// roll and roll2 are two independent multiply-xor rolling hashes; mix64 is
// the splitmix64 finalizer for avalanche.
func roll(h, v uint64) uint64  { return (h ^ mix64(v)) * fnvPrime }
func roll2(h, v uint64) uint64 { return (h + mix64(v^fnvSeed2)) * 0x9ddfea08eb382d69 }

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
