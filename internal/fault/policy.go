package fault

import (
	"math/rand"

	"repro/internal/word"
)

// Op describes a CAS invocation about to execute, as seen by a fault policy.
// The adversary of the paper is state-aware, so the current register content
// is exposed; benign random policies simply ignore it.
type Op struct {
	Object  int       // object id
	Proc    int       // invoking process id
	Exp     word.Word // expected value argument
	New     word.Word // new value argument
	Current word.Word // register content on entry (R′ in the paper)
}

// Proposal is a policy's verdict for one invocation. For Arbitrary faults,
// Write carries the value to store; for Invisible faults, Return carries the
// incorrect old value to report (⊥ means "unspecified", letting the object
// pick the default corruption of pretending the opposite comparison
// outcome). Both are ignored for other kinds.
type Proposal struct {
	Kind   Kind
	Write  word.Word
	Return word.Word
}

// NoFault is the proposal for a correct execution of the operation.
var NoFault = Proposal{Kind: None}

// Policy decides, per CAS invocation, whether to propose a functional fault.
// The proposal is subject to budget admission and to observability: a
// proposed fault that would not deviate from the CAS postconditions (e.g. an
// overriding fault when the comparison would succeed anyway) is a no-op and
// is not charged.
type Policy interface {
	Decide(op Op) Proposal
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(op Op) Proposal

// Decide implements Policy.
func (f PolicyFunc) Decide(op Op) Proposal { return f(op) }

// Never proposes no faults: every object behaves per its specification.
func Never() Policy { return PolicyFunc(func(Op) Proposal { return NoFault }) }

// Always proposes the given fault kind on every invocation. Combined with a
// budget this yields the paper's worst-case adversary ("all CAS executions
// may incorrectly succeed", Section 4.2).
func Always(kind Kind) Policy {
	return PolicyFunc(func(Op) Proposal { return Proposal{Kind: kind} })
}

// Rate proposes the given fault kind on each invocation independently with
// probability p, using a deterministic seeded source so runs are repeatable.
// It models soft-error-style stochastic faults (Section 1).
func Rate(kind Kind, p float64, seed int64) Policy {
	rng := rand.New(rand.NewSource(seed))
	return PolicyFunc(func(Op) Proposal {
		if rng.Float64() < p {
			return Proposal{Kind: kind}
		}
		return NoFault
	})
}

// OnObjects restricts an inner policy to the given object ids; other objects
// never fault. This expresses the adversary committing to a faulty set
// independently of the budget's bookkeeping.
func OnObjects(inner Policy, objects ...int) Policy {
	set := make(map[int]bool, len(objects))
	for _, id := range objects {
		set[id] = true
	}
	return PolicyFunc(func(op Op) Proposal {
		if !set[op.Object] {
			return NoFault
		}
		return inner.Decide(op)
	})
}

// PerObject routes each object to its own policy — the "mix of functional
// faults" Definition 3's discussion allows: different objects in one
// execution may deviate toward different relaxed postconditions. Objects
// without an entry never fault.
func PerObject(policies map[int]Policy) Policy {
	cloned := make(map[int]Policy, len(policies))
	for id, p := range policies {
		cloned[id] = p
	}
	return PolicyFunc(func(op Op) Proposal {
		if p, ok := cloned[op.Object]; ok {
			return p.Decide(op)
		}
		return NoFault
	})
}

// WhenEffective wraps a policy so that Overriding is proposed only when the
// comparison would genuinely fail (Current ≠ Exp) and Silent only when it
// would genuinely succeed (Current = Exp) — and, in both cases, only when
// the written value would actually change the register (New ≠ Current;
// otherwise the post-state satisfies Φ and no fault occurs per Definition
// 1). This concentrates a bounded budget on invocations where the fault is
// observable, the strongest use of t faults available to the adversary.
func WhenEffective(inner Policy) Policy {
	return PolicyFunc(func(op Op) Proposal {
		p := inner.Decide(op)
		switch p.Kind {
		case Overriding:
			if op.Current == op.Exp || op.New == op.Current {
				return NoFault
			}
		case Silent:
			if op.Current != op.Exp || op.New == op.Current {
				return NoFault
			}
		}
		return p
	})
}
