package fault

import (
	"testing"
)

func TestPerObjectRouting(t *testing.T) {
	p := PerObject(map[int]Policy{
		0: Always(Overriding),
		2: Always(Silent),
	})
	if got := p.Decide(Op{Object: 0}).Kind; got != Overriding {
		t.Errorf("object 0: %v", got)
	}
	if got := p.Decide(Op{Object: 1}).Kind; got != None {
		t.Errorf("object 1 (no entry): %v", got)
	}
	if got := p.Decide(Op{Object: 2}).Kind; got != Silent {
		t.Errorf("object 2: %v", got)
	}
}

func TestPerObjectIsolatedFromCallerMap(t *testing.T) {
	m := map[int]Policy{0: Always(Overriding)}
	p := PerObject(m)
	delete(m, 0) // mutating the caller's map must not affect the policy
	if got := p.Decide(Op{Object: 0}).Kind; got != Overriding {
		t.Errorf("policy lost its routing after caller mutation: %v", got)
	}
}

func TestPerObjectEmpty(t *testing.T) {
	p := PerObject(nil)
	if got := p.Decide(Op{Object: 5}).Kind; got != None {
		t.Errorf("empty mix proposed %v", got)
	}
}
