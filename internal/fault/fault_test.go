package fault

import (
	"testing"
	"testing/quick"

	"repro/internal/word"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		None:          "none",
		Overriding:    "overriding",
		Silent:        "silent",
		Invisible:     "invisible",
		Arbitrary:     "arbitrary",
		Nonresponsive: "nonresponsive",
		Kind(99):      "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestBudgetLazyFaultyObjectLimit(t *testing.T) {
	b := NewBudget(2, Unbounded)
	if !b.Admits(0) || !b.Admits(7) {
		t.Fatal("fresh budget must admit any object")
	}
	b.Charge(0)
	b.Charge(7)
	if b.Admits(3) {
		t.Error("third distinct object must be rejected with f=2")
	}
	if !b.Admits(0) {
		t.Error("already-faulty object must stay admitted with t=∞")
	}
}

func TestBudgetPerObjectLimit(t *testing.T) {
	b := NewBudget(1, 2)
	b.Charge(5)
	if !b.Admits(5) {
		t.Fatal("second fault on object must be admitted with t=2")
	}
	b.Charge(5)
	if b.Admits(5) {
		t.Error("third fault on object must be rejected with t=2")
	}
	if got := b.Faults(5); got != 2 {
		t.Errorf("Faults(5) = %d, want 2", got)
	}
	if got := b.TotalFaults(); got != 2 {
		t.Errorf("TotalFaults() = %d, want 2", got)
	}
}

func TestBudgetChargeWithoutAdmitPanics(t *testing.T) {
	b := NewBudget(0, Unbounded)
	defer func() {
		if recover() == nil {
			t.Fatal("Charge without admission must panic")
		}
	}()
	b.Charge(1)
}

func TestFixedBudgetRestrictsSet(t *testing.T) {
	b := NewFixedBudget([]int{1, 3}, 1)
	if b.Admits(0) {
		t.Error("object outside fixed set must never be admitted")
	}
	if !b.Admits(1) || !b.Admits(3) {
		t.Error("objects in fixed set must be admitted")
	}
	b.Charge(1)
	if b.Admits(1) {
		t.Error("t=1 exhausted on object 1")
	}
	if !b.Admits(3) {
		t.Error("object 3 budget is independent")
	}
}

func TestBudgetClone(t *testing.T) {
	b := NewBudget(2, 1)
	b.Charge(4)
	c := b.Clone()
	c.Charge(9)
	if b.Faults(9) != 0 {
		t.Error("charging clone must not affect original")
	}
	if c.Faults(4) != 1 {
		t.Error("clone must carry existing charges")
	}
	if c.MaxFaultyObjects() != 2 || c.FaultsPerObject() != 1 {
		t.Error("clone must carry parameters")
	}
}

func TestBudgetInvariantProperty(t *testing.T) {
	// Property: however faults are charged (always via Admits-then-Charge),
	// the number of faulty objects never exceeds f and no object exceeds t.
	prop := func(objs []uint8, f, tt uint8) bool {
		fN := int(f%4) + 1
		tN := int(tt%3) + 1
		b := NewBudget(fN, tN)
		for _, o := range objs {
			id := int(o % 8)
			if b.Admits(id) {
				b.Charge(id)
			}
		}
		if len(b.FaultyObjects()) > fN {
			return false
		}
		for _, id := range b.FaultyObjects() {
			if b.Faults(id) > tN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewBudgetValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative f": func() { NewBudget(-1, 1) },
		"negative t": func() { NewBudget(1, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNeverPolicy(t *testing.T) {
	p := Never()
	if got := p.Decide(Op{}); got.Kind != None {
		t.Errorf("Never proposed %v", got.Kind)
	}
}

func TestAlwaysPolicy(t *testing.T) {
	p := Always(Overriding)
	if got := p.Decide(Op{}); got.Kind != Overriding {
		t.Errorf("Always(Overriding) proposed %v", got.Kind)
	}
}

func TestRatePolicyDeterministicBySeed(t *testing.T) {
	sample := func(seed int64) []Kind {
		p := Rate(Overriding, 0.5, seed)
		out := make([]Kind, 64)
		for i := range out {
			out[i] = p.Decide(Op{}).Kind
		}
		return out
	}
	a, b := sample(42), sample(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := sample(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-draw sequence (suspicious)")
	}
}

func TestRatePolicyExtremes(t *testing.T) {
	never := Rate(Overriding, 0, 1)
	always := Rate(Overriding, 1, 1)
	for i := 0; i < 50; i++ {
		if never.Decide(Op{}).Kind != None {
			t.Fatal("Rate(0) proposed a fault")
		}
		if always.Decide(Op{}).Kind != Overriding {
			t.Fatal("Rate(1) failed to propose")
		}
	}
}

func TestOnObjectsPolicy(t *testing.T) {
	p := OnObjects(Always(Overriding), 2, 5)
	if p.Decide(Op{Object: 2}).Kind != Overriding {
		t.Error("object 2 must fault")
	}
	if p.Decide(Op{Object: 3}).Kind != None {
		t.Error("object 3 must not fault")
	}
}

func TestWhenEffectivePolicy(t *testing.T) {
	over := WhenEffective(Always(Overriding))
	matched := Op{Exp: word.Bottom, Current: word.Bottom, New: word.FromValue(2)}
	mismatched := Op{Exp: word.Bottom, Current: word.FromValue(1), New: word.FromValue(2)}
	if over.Decide(matched).Kind != None {
		t.Error("overriding on matching CAS is unobservable and must be dropped")
	}
	if over.Decide(mismatched).Kind != Overriding {
		t.Error("overriding on mismatching CAS must pass through")
	}

	silent := WhenEffective(Always(Silent))
	if silent.Decide(matched).Kind != Silent {
		t.Error("silent on matching CAS must pass through")
	}
	if silent.Decide(mismatched).Kind != None {
		t.Error("silent on mismatching CAS is unobservable and must be dropped")
	}

	other := WhenEffective(Always(Arbitrary))
	if other.Decide(matched).Kind != Arbitrary {
		t.Error("non-filtered kinds must pass through")
	}
}

func TestWhenEffectiveDropsNoOpWrites(t *testing.T) {
	// Writing the register's current content back is unobservable for
	// both one-sided faults (the post-state satisfies Φ) and must be
	// filtered, per Definition 1.
	cur := word.FromValue(5)
	over := WhenEffective(Always(Overriding))
	if got := over.Decide(Op{Exp: word.Bottom, Current: cur, New: cur}).Kind; got != None {
		t.Errorf("overriding with New == Current must be dropped, got %v", got)
	}
	silent := WhenEffective(Always(Silent))
	if got := silent.Decide(Op{Exp: cur, Current: cur, New: cur}).Kind; got != None {
		t.Errorf("silent with New == Current must be dropped, got %v", got)
	}
}
