// Package fault implements the functional-fault model of Section 3 of the
// paper: fault kinds for the CAS operation (Section 3.3–3.4), the (f, t, n)
// tolerance budget of Definition 3, and pluggable fault policies that decide,
// per operation invocation, whether a fault fires.
//
// A policy *proposes* a fault; the Budget *admits* it. Only admitted faults
// that actually deviate from the CAS postconditions Φ are charged against the
// budget, matching Definition 1 (a fault "occurs" only when Φ is violated).
package fault

import "fmt"

// Kind enumerates the CAS functional faults discussed in the paper.
type Kind int

const (
	// None means the operation follows its sequential specification Φ.
	None Kind = iota

	// Overriding is the paper's case-study fault (Section 3.3): the new
	// value is written even when the register content differs from the
	// expected value. The returned old value is still correct, so the
	// relaxed postcondition Φ′ is  R = val ∧ old = R′.
	Overriding

	// Silent (Section 3.4): the new value is not written even though the
	// register content equals the expected value. The returned old value
	// is still correct (it equals the expected value).
	Silent

	// Invisible (Section 3.4): the returned old value is incorrect. The
	// write behaviour itself follows the specification. Reducible to a
	// data fault in the model of Afek et al.
	Invisible

	// Arbitrary (Section 3.4): an arbitrary value is written to the
	// register regardless of the operation's input. Comparable to the
	// responsive arbitrary data fault of Jayanti et al.
	Arbitrary

	// Nonresponsive (Section 3.4): the operation never returns. Proven
	// insurmountable for consensus; modeled so the liveness failure can be
	// demonstrated, never tolerated.
	Nonresponsive
)

// String returns the paper's name for the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Overriding:
		return "overriding"
	case Silent:
		return "silent"
	case Invisible:
		return "invisible"
	case Arbitrary:
		return "arbitrary"
	case Nonresponsive:
		return "nonresponsive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Unbounded marks an unlimited number of faults per faulty object (t = ∞ in
// Definition 3).
const Unbounded = -1

// Budget enforces Definition 3: at most f faulty objects in the execution and
// at most t functional faults per faulty object. The faulty-object set may be
// fixed up front (the usual adversarial setting, where the adversary commits
// to which objects are faulty) or discovered lazily (first f distinct objects
// that fault become the faulty set).
//
// Budget is not safe for concurrent use; the simulator serializes all steps.
// The atomicx backend wraps it in a mutex.
type Budget struct {
	f int // max faulty objects
	t int // max faults per faulty object, or Unbounded

	faulty map[int]int // object id -> faults charged
	fixed  bool        // faulty set fixed up front
}

// NewBudget returns a budget admitting at most maxFaultyObjects faulty
// objects with at most faultsPerObject faults each (Unbounded for t = ∞).
// The faulty-object set is discovered lazily.
func NewBudget(maxFaultyObjects, faultsPerObject int) *Budget {
	if maxFaultyObjects < 0 {
		panic("fault: negative faulty-object bound")
	}
	if faultsPerObject < 0 && faultsPerObject != Unbounded {
		panic("fault: negative per-object fault bound")
	}
	return &Budget{
		f:      maxFaultyObjects,
		t:      faultsPerObject,
		faulty: make(map[int]int),
	}
}

// NewFixedBudget returns a budget whose faulty-object set is exactly the
// given object ids (|set| counts toward f = len(objects)). Objects outside
// the set never fault regardless of policy proposals.
func NewFixedBudget(objects []int, faultsPerObject int) *Budget {
	b := NewBudget(len(objects), faultsPerObject)
	b.fixed = true
	for _, id := range objects {
		b.faulty[id] = 0
	}
	return b
}

// Admits reports whether one more fault on the given object would stay
// within the budget. It does not charge the budget.
func (b *Budget) Admits(object int) bool {
	used, known := b.faulty[object]
	if !known {
		if b.fixed {
			return false // object is outside the fixed faulty set
		}
		if len(b.faulty) >= b.f {
			return false // would exceed f faulty objects
		}
		used = 0
	}
	return b.t == Unbounded || used < b.t
}

// Charge records one fault against the object. It panics if the fault is not
// admitted: callers must check Admits first, and a violation indicates a
// framework bug rather than a recoverable condition.
func (b *Budget) Charge(object int) {
	if !b.Admits(object) {
		panic(fmt.Sprintf("fault: budget violated charging object %d", object))
	}
	b.faulty[object]++
}

// FaultyObjects returns the ids of objects that are designated faulty (fixed
// set) or have faulted at least once (lazy set), in unspecified order.
func (b *Budget) FaultyObjects() []int {
	ids := make([]int, 0, len(b.faulty))
	for id := range b.faulty {
		ids = append(ids, id)
	}
	return ids
}

// Faults returns the number of faults charged to the object so far.
func (b *Budget) Faults(object int) int { return b.faulty[object] }

// TotalFaults returns the number of faults charged across all objects.
func (b *Budget) TotalFaults() int {
	total := 0
	for _, n := range b.faulty {
		total += n
	}
	return total
}

// MaxFaultyObjects returns the f parameter.
func (b *Budget) MaxFaultyObjects() int { return b.f }

// FaultsPerObject returns the t parameter (Unbounded for t = ∞).
func (b *Budget) FaultsPerObject() int { return b.t }

// Reset discharges all recorded faults, returning the budget to its pristine
// state: a fixed faulty set keeps its members at zero charges, a lazy set
// forgets the discovered objects. Replay loops reuse one budget this way
// instead of cloning per execution.
func (b *Budget) Reset() {
	if b.fixed {
		for id := range b.faulty {
			b.faulty[id] = 0
		}
		return
	}
	clear(b.faulty)
}

// Clone returns an independent copy of the budget, used by the model checker
// to replay executions from a pristine state.
func (b *Budget) Clone() *Budget {
	c := &Budget{f: b.f, t: b.t, fixed: b.fixed, faulty: make(map[int]int, len(b.faulty))}
	for id, n := range b.faulty {
		c.faulty[id] = n
	}
	return c
}
