package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 || s.P50 != 42 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almostEqual(s.Mean, 3) || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if !almostEqual(s.P50, 3) {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
}

func TestSummarizeUnsortedInput(t *testing.T) {
	a := Summarize([]float64{5, 1, 4, 2, 3})
	b := Summarize([]float64{1, 2, 3, 4, 5})
	if a != b {
		t.Errorf("order sensitivity: %+v vs %+v", a, b)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 50); !almostEqual(got, 5) {
		t.Errorf("P50 = %v, want 5", got)
	}
	if got := Percentile(sorted, 0); got != 0 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 10 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if !almostEqual(s.Mean, 4) || s.N != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeIntsEmpty(t *testing.T) {
	if s := SummarizeInts(nil); s != (Summary{}) {
		t.Errorf("empty int summary = %+v, want zero", s)
	}
	if s := SummarizeInts([]int{}); s != (Summary{}) {
		t.Errorf("empty int summary = %+v, want zero", s)
	}
}

// TestPercentileSingleSample pins every percentile of a one-element sample
// to that element: rank interpolation has no second point to lean on.
func TestPercentileSingleSample(t *testing.T) {
	sorted := []float64{7}
	for _, p := range []float64{0, 1, 50, 95, 99, 100} {
		if got := Percentile(sorted, p); got != 7 {
			t.Errorf("P%v = %v, want 7", p, got)
		}
	}
}

func TestSummarizeDropsNaN(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3, math.NaN()})
	want := Summarize([]float64{1, 3})
	if s != want {
		t.Errorf("NaN summary = %+v, want %+v", s, want)
	}
	if all := Summarize([]float64{math.NaN(), math.NaN()}); all != (Summary{}) {
		t.Errorf("all-NaN summary = %+v, want zero", all)
	}
}

func TestSummarizeKeepsInf(t *testing.T) {
	s := Summarize([]float64{1, 2, math.Inf(1)})
	if s.N != 3 || !math.IsInf(s.Max, 1) || !math.IsInf(s.Mean, 1) {
		t.Errorf("+Inf summary = %+v", s)
	}
	if s.Min != 1 {
		t.Errorf("Min = %v, want 1", s.Min)
	}
	s = Summarize([]float64{math.Inf(-1), 5})
	if !math.IsInf(s.Min, -1) || s.Max != 5 {
		t.Errorf("-Inf summary = %+v", s)
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		fs := make([]float64, len(raw))
		for i, v := range raw {
			fs[i] = float64(v)
		}
		s := Summarize(fs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1, 2}).String() == "" {
		t.Error("empty string")
	}
}
