// Package stats provides the small set of summary statistics the benchmark
// harness reports: mean, min/max, and percentiles over samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds summary statistics of a sample set.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
	P99  float64
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary. NaN samples are dropped — they have no position on the axis, and
// one of them would otherwise poison the mean and break the sorted-order
// invariant percentiles rely on. ±Inf samples are kept and surface as the
// extremes (an infinite sample legitimately makes the mean infinite).
func Summarize(samples []float64) Summary {
	sorted := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			sorted = append(sorted, v)
		}
	}
	if len(sorted) == 0 {
		return Summary{}
	}
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		N:    len(sorted),
		Mean: sum / float64(len(sorted)),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  Percentile(sorted, 50),
		P95:  Percentile(sorted, 95),
		P99:  Percentile(sorted, 99),
	}
}

// SummarizeInts converts integer samples and summarizes them.
func SummarizeInts(samples []int) Summary {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
	}
	return Summarize(fs)
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample, using nearest-rank with linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.0f p50=%.0f p95=%.0f p99=%.0f max=%.0f",
		s.N, s.Mean, s.Min, s.P50, s.P95, s.P99, s.Max)
}
