package spec

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/word"
)

var (
	bot = word.Bottom
	w1  = word.FromValue(1)
	w2  = word.FromValue(2)
	w3  = word.FromValue(3)
)

func TestCASSpecHolds(t *testing.T) {
	cases := []struct {
		name string
		s    State
		want bool
	}{
		{"success", State{Pre: bot, Post: w1, Exp: bot, New: w1, Old: bot}, true},
		{"failure", State{Pre: w1, Post: w1, Exp: bot, New: w2, Old: w1}, true},
		{"override", State{Pre: w1, Post: w2, Exp: bot, New: w2, Old: w1}, false},
		{"silent", State{Pre: bot, Post: bot, Exp: bot, New: w1, Old: bot}, false},
		{"bad old", State{Pre: bot, Post: w1, Exp: bot, New: w1, Old: w1}, false},
	}
	for _, c := range cases {
		if got := CASSpec.Holds(c.s); got != c.want {
			t.Errorf("%s: CASSpec = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestOverridingSpecIsWeakerThanCASOnSuccess(t *testing.T) {
	// Property: every state satisfying Φ with a successful comparison
	// also satisfies the overriding Φ′ (the fault only relaxes the
	// failing branch). This is what makes the fault "one-sided".
	prop := func(preV, newV uint16) bool {
		pre := word.FromValue(int64(preV))
		nw := word.FromValue(int64(newV))
		s := State{Pre: pre, Post: nw, Exp: pre, New: nw, Old: pre}
		return CASSpec.Holds(s) && OverridingSpec.Holds(s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyCorrect(t *testing.T) {
	if got := Classify(State{Pre: bot, Post: w1, Exp: bot, New: w1, Old: bot}); got != fault.None {
		t.Errorf("success classified as %v", got)
	}
	if got := Classify(State{Pre: w1, Post: w1, Exp: w2, New: w3, Old: w1}); got != fault.None {
		t.Errorf("failure classified as %v", got)
	}
}

func TestClassifyOverriding(t *testing.T) {
	s := State{Pre: w1, Post: w2, Exp: bot, New: w2, Old: w1}
	if got := Classify(s); got != fault.Overriding {
		t.Errorf("classified as %v, want overriding", got)
	}
}

func TestClassifySilent(t *testing.T) {
	s := State{Pre: bot, Post: bot, Exp: bot, New: w1, Old: bot}
	if got := Classify(s); got != fault.Silent {
		t.Errorf("classified as %v, want silent", got)
	}
}

func TestClassifyInvisible(t *testing.T) {
	// Write behaviour per spec, old corrupted.
	s := State{Pre: w1, Post: w1, Exp: w2, New: w3, Old: w2}
	if got := Classify(s); got != fault.Invisible {
		t.Errorf("classified as %v, want invisible", got)
	}
}

func TestClassifyArbitrary(t *testing.T) {
	// A value unrelated to the operation was written; old correct.
	s := State{Pre: w1, Post: w3, Exp: bot, New: w2, Old: w1}
	if got := Classify(s); got != fault.Arbitrary {
		t.Errorf("classified as %v, want arbitrary", got)
	}
	// Both old and content corrupted.
	s = State{Pre: w1, Post: w3, Exp: bot, New: w2, Old: w2}
	if got := Classify(s); got != fault.Arbitrary {
		t.Errorf("double corruption classified as %v, want arbitrary", got)
	}
}

func TestClassifyMatchesInjectorEndToEnd(t *testing.T) {
	// Run real protocol executions with each injectable fault kind and
	// verify the auditor's classification agrees with the injector's
	// label on every single event — the meta-soundness check tying
	// Definition 1 to the implementation.
	kinds := []fault.Kind{fault.Overriding, fault.Silent, fault.Invisible, fault.Arbitrary}
	for _, k := range kinds {
		policy := fault.Policy(fault.Always(k))
		if k == fault.Arbitrary {
			policy = fault.PolicyFunc(func(op fault.Op) fault.Proposal {
				return fault.Proposal{Kind: fault.Arbitrary, Write: w3}
			})
		}
		res, err := run.Consensus(run.Config{
			Protocol:  core.NewFPlusOne(1),
			Inputs:    []int64{10, 11, 12},
			Scheduler: sim.NewRandom(5),
			Budget:    fault.NewFixedBudget([]int{0}, 2),
			Policy:    policy,
			Trace:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		audit := AuditTrace(res.Sim.Log)
		if len(audit.Mismatches) != 0 {
			t.Errorf("kind %v: %d classification mismatches, e.g. %s",
				k, len(audit.Mismatches), audit.Mismatches[0])
		}
		if audit.Total == 0 {
			t.Errorf("kind %v: no CAS events audited", k)
		}
	}
}

func TestAuditFaultyObjectsAndTolerable(t *testing.T) {
	log := trace.New()
	// Two faults on object 0, one on object 2.
	mk := func(obj int, kind fault.Kind) trace.Event {
		return trace.Event{
			Kind: trace.EventCAS, Object: obj,
			Pre: w1, Post: w2, Exp: bot, New: w2, Old: w1,
			Fault: kind,
		}
	}
	log.Append(mk(0, fault.Overriding))
	log.Append(mk(0, fault.Overriding))
	log.Append(mk(2, fault.Overriding))
	// And one correct CAS.
	log.Append(trace.Event{Kind: trace.EventCAS, Object: 1, Pre: bot, Post: w1, Exp: bot, New: w1, Old: bot})

	a := AuditTrace(log)
	if a.Total != 4 {
		t.Errorf("Total = %d, want 4", a.Total)
	}
	if len(a.FaultyObjects()) != 2 {
		t.Errorf("faulty objects = %v, want 2 of them", a.FaultyObjects())
	}
	if a.ObjectFaults(0) != 2 || a.ObjectFaults(2) != 1 || a.ObjectFaults(1) != 0 {
		t.Errorf("per-object faults wrong: %v", a.Faults)
	}
	if !a.Tolerable(2, 2) {
		t.Error("(2,2) must tolerate this execution")
	}
	if a.Tolerable(1, 2) {
		t.Error("(1,2) must reject: two faulty objects")
	}
	if a.Tolerable(2, 1) {
		t.Error("(2,1) must reject: object 0 has two faults")
	}
	if !a.Tolerable(2, fault.Unbounded) {
		t.Error("(2,∞) must tolerate")
	}
	if a.String() == "" {
		t.Error("empty audit string")
	}
}

func TestAuditDetectsMislabeledEvent(t *testing.T) {
	log := trace.New()
	// An event labeled None whose state shows an override.
	log.Append(trace.Event{
		Kind: trace.EventCAS, Object: 0,
		Pre: w1, Post: w2, Exp: bot, New: w2, Old: w1,
		Fault: fault.None,
	})
	a := AuditTrace(log)
	if len(a.Mismatches) != 1 {
		t.Errorf("mismatches = %d, want 1", len(a.Mismatches))
	}
}

func TestAuditIgnoresNonCASEvents(t *testing.T) {
	log := trace.New()
	log.Append(trace.Event{Kind: trace.EventDecide, Proc: 0, Value: w1})
	log.Append(trace.Event{Kind: trace.EventHalt, Proc: 1})
	a := AuditTrace(log)
	if a.Total != 0 {
		t.Errorf("Total = %d, want 0", a.Total)
	}
}

func TestStateOf(t *testing.T) {
	e := trace.Event{Kind: trace.EventCAS, Pre: w1, Post: w2, Exp: bot, New: w2, Old: w1}
	s := StateOf(e)
	if s.Pre != w1 || s.Post != w2 || s.Exp != bot || s.New != w2 || s.Old != w1 {
		t.Errorf("StateOf = %+v", s)
	}
}

func TestTripleNames(t *testing.T) {
	for _, tr := range []Triple{CASSpec, OverridingSpec, SilentSpec, InvisibleSpec, ArbitrarySpec} {
		if tr.Name == "" {
			t.Error("unnamed triple")
		}
	}
}

func TestClassificationIsExclusiveProperty(t *testing.T) {
	// Property: Classify never reports None for a state violating Φ, and
	// never reports a fault for a state satisfying Φ.
	vals := []word.Word{bot, w1, w2, w3}
	for _, pre := range vals {
		for _, post := range vals {
			for _, exp := range vals {
				for _, nw := range vals {
					for _, old := range vals {
						s := State{Pre: pre, Post: post, Exp: exp, New: nw, Old: old}
						got := Classify(s)
						if CASSpec.Holds(s) != (got == fault.None) {
							t.Fatalf("inconsistent classification for %+v: %v", s, got)
						}
					}
				}
			}
		}
	}
}
