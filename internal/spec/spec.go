// Package spec implements the Hoare-triple machinery of Section 3.2 of the
// paper: operation specifications Ψ{O}Φ expressed as assertions over
// execution states, relaxed postconditions Φ′ characterizing functional
// faults (Definition 1), and an execution auditor that classifies every
// completed CAS invocation and decides which objects are faulty in an
// execution (Definition 2).
//
// The auditor consumes the trace of a simulated execution — each CAS event
// carries the register content before and after the step, the operation
// arguments, and the returned old value — and is therefore a *monitor*: it
// observes the very state the paper's assertions quantify over without
// giving protocols any read capability.
package spec

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/word"
)

// State is the observable state of one CAS invocation: the register content
// on entry (R′ in the paper's notation) and exit (R), the operation
// arguments (exp, val), and the returned old value.
type State struct {
	Pre  word.Word // R′: register content on entry
	Post word.Word // R: register content on return
	Exp  word.Word // expected-value argument
	New  word.Word // new-value argument
	Old  word.Word // returned old value
}

// Assertion is a predicate over an invocation's observable state — the Φ
// and Φ′ of Definition 1.
type Assertion func(State) bool

// Triple is a named correctness specification Ψ{O}Φ for the CAS operation.
// The CAS precondition Ψ is trivially true (CAS accepts any register
// content and arguments), so a Triple carries only the postcondition.
type Triple struct {
	Name string
	Post Assertion
}

// Holds reports whether the postcondition is satisfied by the state.
func (t Triple) Holds(s State) bool { return t.Post(s) }

// CASSpec is the sequential specification Φ of CAS (Section 3.3):
//
//	R′ = exp ? (R = val ∧ old = R′) : (R = R′ ∧ old = R′)
var CASSpec = Triple{
	Name: "cas",
	Post: func(s State) bool {
		if s.Pre == s.Exp {
			return s.Post == s.New && s.Old == s.Pre
		}
		return s.Post == s.Pre && s.Old == s.Pre
	},
}

// OverridingSpec is the relaxed postcondition Φ′ of the overriding fault
// (Section 3.3):
//
//	R = val ∧ old = R′
var OverridingSpec = Triple{
	Name: "overriding",
	Post: func(s State) bool {
		return s.Post == s.New && s.Old == s.Pre
	},
}

// SilentSpec is the relaxed postcondition of the silent fault (Section
// 3.4): the register does not change and the returned old value is correct
// — even when the comparison succeeded.
var SilentSpec = Triple{
	Name: "silent",
	Post: func(s State) bool {
		return s.Post == s.Pre && s.Old == s.Pre
	},
}

// InvisibleSpec is the relaxed postcondition of the invisible fault
// (Section 3.4): the write behaviour follows the specification but the
// returned old value is arbitrary.
var InvisibleSpec = Triple{
	Name: "invisible",
	Post: func(s State) bool {
		if s.Pre == s.Exp {
			return s.Post == s.New
		}
		return s.Post == s.Pre
	},
}

// ArbitrarySpec is the relaxed postcondition of the arbitrary fault
// (Section 3.4): any value may be written, but the returned old value is
// correct.
var ArbitrarySpec = Triple{
	Name: "arbitrary",
	Post: func(s State) bool { return s.Old == s.Pre },
}

// Classify determines the fault class of one completed CAS invocation by
// testing the observed state against Φ and the Φ′ hierarchy, most
// structured first. It returns fault.None when the specification holds —
// i.e. no ⟨CAS, Φ′⟩-fault occurred in this step (Definition 1).
func Classify(s State) fault.Kind {
	if CASSpec.Holds(s) {
		return fault.None
	}
	// The comparison below mirrors Section 3.4's taxonomy: a fault that
	// satisfies the overriding (resp. silent) Φ′ deviates only in the
	// one-sided branch outcome; an incorrect old value is invisible; an
	// unexplained written value is arbitrary.
	if s.Old == s.Pre {
		if s.Pre != s.Exp && OverridingSpec.Holds(s) {
			return fault.Overriding
		}
		if s.Pre == s.Exp && SilentSpec.Holds(s) {
			return fault.Silent
		}
		return fault.Arbitrary
	}
	if InvisibleSpec.Holds(s) {
		return fault.Invisible
	}
	// Both the old value and the written value deviate: data-fault-grade
	// corruption, reported as arbitrary.
	return fault.Arbitrary
}

// StateOf extracts the invocation state from a CAS trace event.
func StateOf(e trace.Event) State {
	return State{Pre: e.Pre, Post: e.Post, Exp: e.Exp, New: e.New, Old: e.Old}
}

// Audit is the per-execution fault account of Definition 2/3.
type Audit struct {
	// Total is the number of CAS invocations audited.
	Total int
	// Faults counts classified faults per object per kind.
	Faults map[int]map[fault.Kind]int
	// Mismatches lists events whose classification disagrees with the
	// fault kind the injector recorded — always empty unless the
	// framework itself is buggy; the test suite asserts on it.
	Mismatches []trace.Event
}

// FaultyObjects returns the ids of objects that manifested at least one
// fault in the execution (Definition 2), in unspecified order.
func (a *Audit) FaultyObjects() []int {
	var ids []int
	for id, kinds := range a.Faults {
		total := 0
		for _, n := range kinds {
			total += n
		}
		if total > 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// ObjectFaults returns the total faults classified on the object.
func (a *Audit) ObjectFaults(id int) int {
	total := 0
	for _, n := range a.Faults[id] {
		total += n
	}
	return total
}

// Tolerable reports whether the execution stayed within an (f, t) budget in
// the sense of Definition 3: at most f faulty objects, at most t faults per
// faulty object (t = fault.Unbounded for no per-object bound).
func (a *Audit) Tolerable(f, t int) bool {
	if len(a.FaultyObjects()) > f {
		return false
	}
	if t == fault.Unbounded {
		return true
	}
	for _, id := range a.FaultyObjects() {
		if a.ObjectFaults(id) > t {
			return false
		}
	}
	return true
}

// String summarizes the audit.
func (a *Audit) String() string {
	return fmt.Sprintf("audit: %d CAS invocations, %d faulty objects, %d mismatches",
		a.Total, len(a.FaultyObjects()), len(a.Mismatches))
}

// AuditTrace classifies every CAS event of an execution trace and
// aggregates the result. The trace carries the injector's own fault label
// per event; any disagreement between label and classification is reported
// as a mismatch (a meta-check that the fault injector implements exactly
// the Φ′ it claims).
func AuditTrace(log *trace.Log) *Audit {
	a := &Audit{Faults: make(map[int]map[fault.Kind]int)}
	for _, e := range log.Events() {
		if e.Kind != trace.EventCAS {
			continue
		}
		a.Total++
		got := Classify(StateOf(e))
		if got != e.Fault {
			// Nonresponsive events never return, so they cannot be
			// classified from a completed invocation; tolerate the
			// label.
			if e.Fault == fault.Nonresponsive {
				continue
			}
			a.Mismatches = append(a.Mismatches, e)
			continue
		}
		if got == fault.None {
			continue
		}
		kinds := a.Faults[e.Object]
		if kinds == nil {
			kinds = make(map[fault.Kind]int)
			a.Faults[e.Object] = kinds
		}
		kinds[got]++
	}
	return a
}
