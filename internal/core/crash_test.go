package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
)

// Wait-freedom under fail-stop crashes (the §2 requirement the protocols
// are built for): survivors must decide — and agree — no matter where the
// other processes stop, even with faults active.
func TestProtocolsSurviveCrashes(t *testing.T) {
	type cfg struct {
		name   string
		proto  core.Protocol
		n      int
		faulty []int
		t      int
	}
	cases := []cfg{
		{"figure1 n=2", core.SingleCAS{}, 2, []int{0}, fault.Unbounded},
		{"figure2 f=1 n=4", core.NewFPlusOne(1), 4, []int{0}, fault.Unbounded},
		{"figure2 f=2 n=3", core.NewFPlusOne(2), 3, []int{0, 1}, fault.Unbounded},
		{"figure3 f=1 t=1 n=2", core.NewStaged(1, 1), 2, []int{0}, 1},
		{"figure3 f=2 t=1 n=3", core.NewStaged(2, 1), 3, []int{0, 1}, 1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			bound := c.proto.StepBound(c.n)
			for crashed := 0; crashed < c.n; crashed++ {
				for _, crashStep := range []int{0, 1, 2, bound / 2} {
					for seed := int64(0); seed < 8; seed++ {
						res, err := run.Consensus(run.Config{
							Protocol: c.proto,
							Inputs:   distinctInputs(c.n),
							Scheduler: sim.NewCrash(sim.NewRandom(seed),
								map[int]int{crashed: crashStep}),
							Budget: fault.NewFixedBudget(c.faulty, c.t),
							Policy: fault.WhenEffective(fault.Rate(fault.Overriding, 0.3, seed)),
						})
						if err != nil {
							t.Fatal(err)
						}
						// A crashed process is abandoned, not a
						// wait-freedom violation; survivors must
						// have decided consistently and validly.
						if !res.Verdict.OK() {
							t.Fatalf("crash p%d@%d seed %d: %s",
								crashed, crashStep, seed, res.Verdict)
						}
						decided := 0
						for i, ok := range res.Sim.Decided {
							if ok {
								decided++
							} else if i != crashed {
								t.Fatalf("crash p%d@%d seed %d: survivor p%d never decided",
									crashed, crashStep, seed, i)
							}
						}
						if decided < c.n-1 {
							t.Fatalf("crash p%d@%d seed %d: only %d deciders",
								crashed, crashStep, seed, decided)
						}
					}
				}
			}
		})
	}
}

// Crashing every process but one: the lone survivor decides its own view.
func TestLoneSurvivorDecides(t *testing.T) {
	proto := core.NewStaged(2, 1)
	res, err := run.Consensus(run.Config{
		Protocol: proto,
		Inputs:   distinctInputs(3),
		Scheduler: sim.NewCrash(sim.NewRoundRobin(),
			map[int]int{0: 1, 1: 1}),
		Budget: fault.NewFixedBudget([]int{0, 1}, 1),
		Policy: fault.WhenEffective(fault.Always(fault.Overriding)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sim.Decided[2] {
		t.Fatal("survivor must decide")
	}
	if !res.Verdict.OK() {
		t.Fatalf("verdict: %s", res.Verdict)
	}
}
