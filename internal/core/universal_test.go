package core_test

import (
	"sync"
	"testing"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
)

func newUniversal(n int, proto core.Protocol) *core.Universal {
	return core.NewUniversal(n, proto, func() core.Env {
		return atomicx.NewBank(proto.Objects())
	})
}

func TestUniversalSequential(t *testing.T) {
	u := newUniversal(2, core.SingleCAS{})
	for i := int64(0); i < 6; i++ {
		slot := u.Execute(0, core.EncodeCmd(0, i))
		if slot != int(i) {
			t.Errorf("command %d landed at slot %d", i, slot)
		}
	}
	if u.Len() != 6 {
		t.Errorf("Len = %d", u.Len())
	}
	snap := u.Snapshot()
	for i, cmd := range snap {
		_, payload := core.DecodeCmd(cmd)
		if payload != int64(i) {
			t.Errorf("slot %d holds payload %d", i, payload)
		}
	}
}

func TestUniversalGet(t *testing.T) {
	u := newUniversal(2, core.SingleCAS{})
	cmd := core.EncodeCmd(1, 9)
	slot := u.Execute(1, cmd)
	got, ok := u.Get(slot)
	if !ok || got != cmd {
		t.Fatalf("Get(%d) = %d,%v", slot, got, ok)
	}
	if _, ok := u.Get(slot + 1); ok {
		t.Error("undecided slot must not resolve")
	}
	if _, ok := u.Get(-1); ok {
		t.Error("negative slot must not resolve")
	}
}

func TestUniversalConcurrentTotalOrder(t *testing.T) {
	const n = 4
	const perProc = 12
	proto := core.NewFPlusOne(1)
	u := core.NewUniversal(n, proto, func() core.Env {
		return atomicx.NewFaultyBank(proto.Objects(),
			fault.NewFixedBudget([]int{0}, fault.Unbounded), 0.4, 31)
	})

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := int64(0); i < perProc; i++ {
				u.Execute(p, core.EncodeCmd(p, i))
			}
		}(p)
	}
	wg.Wait()

	total := n * perProc
	if u.Len() < total {
		t.Fatalf("decided prefix %d, want at least %d", u.Len(), total)
	}
	// Every command appears exactly once; helpers may also have decided
	// slots for commands, but never duplicated them.
	seen := map[int64]int{}
	for _, cmd := range u.Snapshot() {
		seen[cmd]++
	}
	for cmd, count := range seen {
		if count != 1 {
			t.Errorf("command %d decided into %d slots", cmd, count)
		}
	}
	if len(seen) != u.Len() {
		t.Errorf("%d distinct commands over %d slots", len(seen), u.Len())
	}
	// All submitted commands are present.
	for p := 0; p < n; p++ {
		for i := int64(0); i < perProc; i++ {
			if seen[core.EncodeCmd(p, i)] != 1 {
				t.Errorf("command (%d,%d) missing", p, i)
			}
		}
	}
	// Program order per process is preserved in the log.
	pos := map[int64]int{}
	for i, cmd := range u.Snapshot() {
		pos[cmd] = i
	}
	for p := 0; p < n; p++ {
		for i := int64(1); i < perProc; i++ {
			if pos[core.EncodeCmd(p, i)] <= pos[core.EncodeCmd(p, i-1)] {
				t.Errorf("process %d: op %d decided before op %d", p, i, i-1)
			}
		}
	}
}

func TestUniversalHelpingDecidesAnnouncedCommand(t *testing.T) {
	// A command announced by a process that never competes again is
	// still appended by the helpers: process 1 announces via Execute in
	// a goroutine racing process 0's stream; both finish, which already
	// exercises helping, but we additionally verify slot ownership —
	// slots ≡ 1 (mod 2) prioritize process 1's announcements.
	const stream = 16
	u := newUniversal(2, core.SingleCAS{})
	done := make(chan int, 1)
	go func() {
		done <- u.Execute(1, core.EncodeCmd(1, 0))
	}()
	for i := int64(0); i < stream; i++ {
		u.Execute(0, core.EncodeCmd(0, i))
	}
	slot := <-done
	if got, _ := u.Get(slot); got != core.EncodeCmd(1, 0) {
		t.Fatalf("announced command not at its slot: %d", got)
	}
}

func TestUniversalValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero procs":   func() { core.NewUniversal(0, core.SingleCAS{}, func() core.Env { return atomicx.NewBank(1) }) },
		"nil factory":  func() { core.NewUniversal(1, core.SingleCAS{}, nil) },
		"nil protocol": func() { core.NewUniversal(1, nil, func() core.Env { return atomicx.NewBank(1) }) },
		"bad proc": func() {
			u := newUniversal(2, core.SingleCAS{})
			u.Execute(5, core.EncodeCmd(0, 1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
