package core_test

import (
	"fmt"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
)

// The f-tolerant construction of Figure 2 on the deterministic simulator:
// three processes, one faulty object overriding on every opportunity.
func ExampleFPlusOne() {
	res, err := run.Consensus(run.Config{
		Protocol:  core.NewFPlusOne(1),
		Inputs:    []int64{10, 11, 12},
		Scheduler: sim.NewRoundRobin(),
		Budget:    fault.NewFixedBudget([]int{0}, fault.Unbounded),
		Policy:    fault.WhenEffective(fault.Always(fault.Overriding)),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict)
	// Output: OK [p0=10 p1=10 p2=10]
}

// The staged construction of Figure 3 runs unchanged on real atomics.
func ExampleStaged() {
	proto := core.NewStaged(1, 1)
	bank := atomicx.NewBank(proto.Objects())
	fmt.Println(proto.Decide(bank, 42))
	fmt.Println(proto.MaxStage())
	// Output:
	// 42
	// 5
}

// A consensus-ordered log: commands from one appender land in submission
// order.
func ExampleLog() {
	proto := core.SingleCAS{}
	log := core.NewLog(proto, func() core.Env {
		return atomicx.NewBank(proto.Objects())
	})
	log.Append(core.EncodeCmd(0, 7))
	log.Append(core.EncodeCmd(0, 8))
	for i := 0; i < log.Len(); i++ {
		cmd, _ := log.Get(i)
		_, payload := core.DecodeCmd(cmd)
		fmt.Println(i, payload)
	}
	// Output:
	// 0 7
	// 1 8
}

// Two-process consensus survives even a CAS object that ALWAYS overrides —
// Theorem 4 in four lines.
func ExampleSingleCAS() {
	res, err := run.Consensus(run.Config{
		Protocol:  core.SingleCAS{},
		Inputs:    []int64{1, 2},
		Scheduler: sim.NewRoundRobin(),
		Budget:    fault.NewBudget(1, fault.Unbounded),
		Policy:    fault.WhenEffective(fault.Always(fault.Overriding)),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict.Agreed)
	// Output: 1
}
