package core

import (
	"fmt"

	"repro/internal/word"
)

// Staged is the (f, t, f+1)-tolerant consensus of Figure 3 / Theorem 6: with
// at most f faulty CAS objects, at most t overriding faults per faulty
// object, and at most f+1 participating processes, it implements consensus
// using only f CAS objects — all of which may be faulty. Theorem 19 shows
// that no protocol with f objects handles f+2 processes, so the construction
// is tight, and combining both results places the faulty CAS at level f+1 of
// the Herlihy consensus hierarchy.
//
// The execution is divided into maxStage+1 stages, maxStage = t·(4f + f²).
// In each of the first maxStage stages a process tries to install its
// current decision estimate, paired with the stage number, into all f
// objects in order; in the final stage it installs ⟨output, maxStage⟩ into
// O_0. A process that discovers a later (or equal) stage adopts that value
// and stage. Because at most t·f faults can ever occur and each stage
// requires f successful writes, some window of 4f + f² consecutive writes is
// fault-free, and the paper's Claims 7–17 show every process converges to a
// single value inside that window.
//
// The code below is a line-by-line transcription of Figure 3. Two encoding
// details are worth noting:
//
//   - ⊥ plays the role of the pair "⟨—, −1⟩": word.Word reports stage −1
//     for ⊥, so the comparison old.stage ≥ s (line 8) behaves exactly as
//     the pseudocode intends, and line 13's "exp ← ⟨old.val, old.stage−1⟩"
//     produces ⊥ when old.stage = 0 (the content preceding stage 0 is the
//     initial value).
//   - Line 17's "exp.stage ← s" assigns a stage into the current exp; when
//     exp is ⊥ there is no value field to keep, and the process's own
//     output is the value it just installed, so the pair ⟨output, s⟩ is
//     used. (When exp ≠ ⊥ the field update is kept literally.)
type Staged struct {
	// F is the number of CAS objects, all of which may be faulty (f ≥ 1).
	F int
	// T is the maximum number of overriding faults per faulty object.
	T int
	// StageBudget, when positive, replaces the paper's maxStage bound
	// t·(4f + f²) with a custom stage count. The paper remarks that
	// "choosing an earlier maximal stage might work, but we chose to
	// concentrate on correctness and space complexity" (§4.3); the
	// ablation experiment E10 sweeps this knob to find the empirical
	// threshold. Protocols with a reduced budget are NOT covered by
	// Theorem 6's proof.
	StageBudget int64
}

// NewStaged returns the Figure 3 protocol for f objects and t faults per
// object.
func NewStaged(f, t int) Staged {
	if f < 1 {
		panic("core: staged protocol needs at least one object")
	}
	if t < 1 {
		panic("core: staged protocol needs a positive per-object fault bound")
	}
	p := Staged{F: f, T: t}
	if p.MaxStage() > word.MaxStage {
		panic(fmt.Sprintf("core: stage bound t·(4f+f²) = %d exceeds the register's stage field (%d)",
			p.MaxStage(), int64(word.MaxStage)))
	}
	return p
}

// NewStagedWithBudget returns the Figure 3 protocol with a custom stage
// budget in place of the paper's t·(4f + f²) (see Staged.StageBudget).
func NewStagedWithBudget(f, t int, stages int64) Staged {
	p := NewStaged(f, t)
	if stages < 1 {
		panic("core: stage budget must be positive")
	}
	p.StageBudget = stages
	return p
}

// MaxStage returns the stage bound: the paper's t·(4f + f²) (Figure 3,
// line 2), or the custom StageBudget when set.
func (p Staged) MaxStage() int64 {
	if p.StageBudget > 0 {
		return p.StageBudget
	}
	f := int64(p.F)
	return int64(p.T) * (4*f + f*f)
}

// Name implements Protocol.
func (p Staged) Name() string {
	if p.StageBudget > 0 {
		return fmt.Sprintf("figure3/staged(f=%d,t=%d,stages=%d)", p.F, p.T, p.StageBudget)
	}
	return fmt.Sprintf("figure3/staged(f=%d,t=%d)", p.F, p.T)
}

// Objects implements Protocol: f CAS objects.
func (p Staged) Objects() int { return p.F }

// MaxProcs implements Protocol: f+1 processes (Theorem 6; tight by
// Theorem 19).
func (p Staged) MaxProcs() int { return p.F + 1 }

// StepBound implements Protocol. The paper proves termination (wait-freedom)
// but does not state a closed-form step bound; the bound returned here is a
// generous over-approximation derived from the stage structure: every CAS
// either succeeds, adopts a later stage, or retries, and retries are charged
// to writes by other processes (at most n·(maxStage+2)·f successful writes
// exist) plus at most t faults per object. Experiment E3 records the
// empirical maxima, which are far below this bound.
func (p Staged) StepBound(n int) int {
	if n < 1 {
		n = 1
	}
	ms := p.MaxStage()
	perStage := int64(p.F) * int64(n+p.T+4)
	return int(4 * (ms + 2) * perStage)
}

// Decide implements Protocol. Line numbers refer to Figure 3 of the paper.
func (p Staged) Decide(env Env, input int64) int64 {
	ValidateInput(input)
	f := p.F
	maxStage := p.MaxStage()

	output := input    // line 2: output ← val
	exp := word.Bottom // line 2: exp ← ⊥
	s := int64(0)      // line 2: s ← 0

	for s < maxStage { // line 3
		for i := 0; i < f; i++ { // line 4: handling O_0 … O_{f−1}
			for { // line 5
				old := env.CAS(i, exp, word.Pack(output, s)) // line 6
				if old != exp {                              // line 7
					if old.Stage() >= s { // line 8: needs to update output
						output = old.Value() // line 9
						s = old.Stage()      // line 10
						if s == maxStage {   // line 11
							return output // line 12: the decided value
						}
						// line 13: exp ← ⟨old.val, old.stage − 1⟩;
						// stage −1 is the initial content ⊥.
						if old.Stage() == 0 {
							exp = word.Bottom
						} else {
							exp = word.Pack(old.Value(), old.Stage()-1)
						}
						break // line 14: no need to update O_i
					}
					exp = old // line 15: still needs to update O_i
				} else {
					break // line 16: a successful CAS execution
				}
			}
		}
		// line 17: exp.stage ← s (see the encoding note on ⊥ above)
		if exp.IsBottom() {
			exp = word.Pack(output, s)
		} else {
			exp = exp.WithStage(s)
		}
		s++ // line 18
	}

	for { // line 19: the final stage
		old := env.CAS(0, exp, word.Pack(output, maxStage)) // line 20
		if old != exp && old.Stage() < maxStage {           // line 21
			exp = old // line 22
		} else {
			break // line 23
		}
	}
	return output // line 24
}
