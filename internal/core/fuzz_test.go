package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
)

// FuzzStagedAgreement derives a protocol configuration and an execution
// (schedule + fault placement) from the fuzz input and asserts Theorem 6:
// no budget-respecting execution of the staged protocol at n = f+1 may
// violate consensus. Any crash or violation found by the fuzzer would be a
// transcription bug in Figure 3 or a soundness bug in the framework.
func FuzzStagedAgreement(f *testing.F) {
	f.Add(uint8(1), uint8(1), int64(1))
	f.Add(uint8(2), uint8(1), int64(99))
	f.Add(uint8(1), uint8(3), int64(-5))
	f.Add(uint8(3), uint8(2), int64(12345))
	f.Fuzz(func(t *testing.T, fRaw, tRaw uint8, seed int64) {
		fN := int(fRaw%3) + 1 // f ∈ 1..3
		tN := int(tRaw%3) + 1 // t ∈ 1..3
		proto := core.NewStaged(fN, tN)
		faulty := make([]int, fN)
		for i := range faulty {
			faulty[i] = i
		}
		inputs := make([]int64, fN+1)
		for i := range inputs {
			inputs[i] = int64(10 + i)
		}
		ce, err := explore.Sample(explore.Config{
			Protocol:        proto,
			Inputs:          inputs,
			FaultyObjects:   faulty,
			FaultsPerObject: tN,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ce.Verdict.OK() {
			t.Fatalf("f=%d t=%d seed=%d: %s\ntrace:\n%s",
				fN, tN, seed, ce.Verdict, ce.Trace)
		}
	})
}

// FuzzFPlusOneAgreement does the same for Figure 2 with arbitrary process
// counts and unbounded faults on the first f objects.
func FuzzFPlusOneAgreement(f *testing.F) {
	f.Add(uint8(1), uint8(3), int64(7))
	f.Add(uint8(2), uint8(5), int64(-1))
	f.Fuzz(func(t *testing.T, fRaw, nRaw uint8, seed int64) {
		fN := int(fRaw%4) + 1 // f ∈ 1..4
		n := int(nRaw%6) + 2  // n ∈ 2..7
		proto := core.NewFPlusOne(fN)
		faulty := make([]int, fN)
		for i := range faulty {
			faulty[i] = i
		}
		inputs := make([]int64, n)
		for i := range inputs {
			inputs[i] = int64(10 + i%3) // duplicates allowed
		}
		ce, err := explore.Sample(explore.Config{
			Protocol:        proto,
			Inputs:          inputs,
			FaultyObjects:   faulty,
			FaultsPerObject: -1, // unbounded
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ce.Verdict.OK() {
			t.Fatalf("f=%d n=%d seed=%d: %s", fN, n, seed, ce.Verdict)
		}
	})
}
