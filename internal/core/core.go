// Package core implements the paper's contribution: wait-free consensus
// protocols built from compare-and-swap objects that may manifest the
// overriding functional fault (Sections 2–4 of the paper).
//
// Four constructions are provided:
//
//   - SingleCAS: the classic single-object protocol of Herlihy, which the
//     paper shows (Figure 1 / Theorem 4) is (f, ∞, 2)-tolerant — for two
//     processes a single possibly-faulty CAS object suffices.
//   - FPlusOne: Figure 2 / Theorem 5 — an f-tolerant consensus for any
//     number of processes using f+1 CAS objects.
//   - Staged: Figure 3 / Theorem 6 — an (f, t, f+1)-tolerant consensus
//     using only f CAS objects, all of which may be faulty.
//   - SilentRetry: the Section 3.4 retry protocol tolerating a bounded
//     number of silent faults on a single object.
//
// Protocols are written against the minimal Env interface so the same code
// runs on the deterministic simulator (internal/object) and on real atomics
// (internal/atomicx).
//
// On top of the protocols, the package realizes Herlihy's universality
// theorem (the reason the paper studies consensus): Log is a consensus-
// ordered command log, Universal the wait-free universal construction
// (announce + helping), and Counter / KVStore are deterministic state
// machines replayed over the decided prefix — wait-free fault-tolerant
// objects built from faulty CAS.
package core

import (
	"fmt"

	"repro/internal/word"
)

// Env is the shared-memory environment a protocol instance runs against: a
// bank of CAS objects indexed 0..Len()-1, bound to the calling process. CAS
// executes one atomic compare-and-swap on object i and returns the old
// content (which is correct even under the overriding fault, Section 3.3).
// There is deliberately no read operation: the paper's CAS objects allow
// only CAS (Section 3.3).
//
// Per-step fault-observation contract. One Env.CAS invocation IS one
// shared-memory step — the unit both the paper's step bounds and the
// simulator's schedulers count. Every implementation must observe faults
// inside that single invocation:
//
//   - The fault decision (does this invocation deviate from Φ, and which
//     Φ′ it takes), the (f, t) budget accounting, and any trace event for
//     the step all happen atomically WITHIN the CAS call, before it
//     returns. Nothing about a step leaks out of its invocation: after CAS
//     returns, the budget is charged, the event is recorded, and the
//     register holds the step's final content.
//   - No functional fault fires BETWEEN invocations. A register changes
//     only while some process's CAS is in flight (data faults — see
//     object.CAS.Corrupt — are deliberately outside this contract: they
//     model an adversary writing between steps and are driven by
//     experiment code, never by an Env).
//   - Both execution forms rely on this: the goroutine-gated simulator
//     parks a process around each Invoke, and the compiled stepped runner
//     grants exactly one CAS per Stepper.Step. Either way the fault
//     pipeline of object.CAS.Apply (or the swap path of atomicx.Bank.CAS)
//     runs inside the granted step, so the two forms observe identical
//     faults at identical points.
//
// Audit of the two banks: internal/object charges ops and the budget inside
// CAS.Apply, which both Invoke (goroutine path) and the stepped env call
// within the granted step — compliant. internal/atomicx decides the fault
// and charges the budget under the bank's lock inside Bank.CAS before the
// swap; the charge is conservative (decision-time, even when the override
// turns out unobservable) but still strictly within the invocation —
// compliant.
type Env interface {
	CAS(i int, exp, new word.Word) word.Word
	Len() int
}

// Protocol is a consensus implementation from CAS objects. Implementations
// carry their fault-tolerance parameters and expose the resource and step
// bounds the paper proves.
type Protocol interface {
	// Name identifies the protocol in tables and traces.
	Name() string
	// Objects returns the number of CAS objects the protocol requires.
	Objects() int
	// MaxProcs returns the largest number of processes for which the
	// protocol is fault-tolerant per its theorem (0 means unbounded).
	// Running more processes is allowed — that is exactly how the
	// impossibility experiments exercise the lower bounds.
	MaxProcs() int
	// StepBound returns an upper bound on the shared-memory steps one
	// process takes when n processes participate (wait-freedom witness).
	StepBound(n int) int
	// Decide runs the protocol for the calling process with the given
	// input value (0..word.MaxValue) and returns the decided value.
	Decide(env Env, input int64) int64
}

// ValidateInput panics if the input value cannot be represented in a
// register word. Protocol inputs are caller-controlled, so this is the API
// boundary check.
func ValidateInput(input int64) {
	if input < 0 || input > word.MaxValue {
		panic(fmt.Sprintf("core: input %d out of range [0, %d]", input, word.MaxValue))
	}
}
