package core_test

import (
	"sync"
	"testing"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
)

func faultyEnvFactory(proto core.Protocol, seed int64) func() core.Env {
	var mu sync.Mutex
	s := seed
	return func() core.Env {
		mu.Lock()
		s++
		cur := s
		mu.Unlock()
		return atomicx.NewFaultyBank(proto.Objects(),
			fault.NewFixedBudget([]int{0}, fault.Unbounded), 0.4, cur)
	}
}

func TestCounterSequential(t *testing.T) {
	proto := core.SingleCAS{}
	c := core.NewCounter(1, proto, func() core.Env { return atomicx.NewBank(proto.Objects()) })
	for i := int64(1); i <= 5; i++ {
		c.Add(0, i)
	}
	if got := c.Value(); got != 15 {
		t.Errorf("Value = %d, want 15", got)
	}
	if c.Ops() != 5 {
		t.Errorf("Ops = %d, want 5", c.Ops())
	}
}

func TestCounterConcurrentOverFaultyCAS(t *testing.T) {
	const n = 3
	const perProc = 10
	proto := core.NewFPlusOne(1)
	c := core.NewCounter(n, proto, faultyEnvFactory(proto, 400))
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				c.Add(p, 1)
			}
		}(p)
	}
	wg.Wait()
	if got := c.Value(); got != n*perProc {
		t.Errorf("Value = %d, want %d", got, n*perProc)
	}
}

func TestCounterDeltaValidation(t *testing.T) {
	proto := core.SingleCAS{}
	c := core.NewCounter(1, proto, func() core.Env { return atomicx.NewBank(proto.Objects()) })
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range delta must panic")
		}
	}()
	c.Add(0, 5000)
}

func TestKVStoreSequential(t *testing.T) {
	proto := core.SingleCAS{}
	s := core.NewKVStore(1, proto, func() core.Env { return atomicx.NewBank(proto.Objects()) })
	s.Set(0, 1, 10)
	s.Set(0, 2, 20)
	s.Set(0, 1, 11) // overwrite

	if v, ok := s.Get(1); !ok || v != 11 {
		t.Errorf("Get(1) = %d,%v, want 11", v, ok)
	}
	if v, ok := s.Get(2); !ok || v != 20 {
		t.Errorf("Get(2) = %d,%v", v, ok)
	}
	if _, ok := s.Get(3); ok {
		t.Error("unset key must miss")
	}
	state := s.State()
	if len(state) != 2 || state[1] != 11 || state[2] != 20 {
		t.Errorf("State = %v", state)
	}
}

func TestKVStoreConcurrentLastWriterWins(t *testing.T) {
	const n = 3
	proto := core.NewFPlusOne(1)
	s := core.NewKVStore(n, proto, faultyEnvFactory(proto, 700))
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := int64(0); i < 8; i++ {
				s.Set(p, i%4, int64(p)*10+i)
			}
		}(p)
	}
	wg.Wait()
	// Every key 0..3 must hold SOME written value, and all replicas
	// (replays) agree because replay is a pure function of the log.
	a, b := s.State(), s.State()
	for k := int64(0); k < 4; k++ {
		if _, ok := a[k]; !ok {
			t.Errorf("key %d missing", k)
		}
		if a[k] != b[k] {
			t.Errorf("replays disagree at key %d", k)
		}
	}
}

func TestKVStoreValidation(t *testing.T) {
	proto := core.SingleCAS{}
	s := core.NewKVStore(1, proto, func() core.Env { return atomicx.NewBank(proto.Objects()) })
	for name, fn := range map[string]func(){
		"key range":   func() { s.Set(0, 200, 1) },
		"value range": func() { s.Set(0, 1, 200) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
