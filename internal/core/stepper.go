package core

import "repro/internal/word"

// This file is the compiled execution form of the protocols: each Decide
// loop is lowered to an explicitly resumable state machine (a Stepper) that
// a driver advances one shared-memory step at a time on its own goroutine.
// The goroutine-gated simulator remains the reference semantics; a Stepper
// must be step-for-step equivalent to its protocol's Decide (same CAS
// arguments in the same order, same decision), which the differential
// checker (explore.CrossCheck) and FuzzCompiledVsInterpreted enforce.
//
// The Stepper contract mirrors the simulator's step model exactly:
//
//   - Begin performs no shared-memory operation. It validates the input and
//     returns the machine's initial State (pure local computation).
//   - Each Step call performs EXACTLY ONE env.CAS invocation — the one
//     atomic step the scheduler granted — plus local computation, and then
//     returns. A Step must not loop over CAS calls: retry loops in the
//     pseudocode become repeated Step calls with the loop position carried
//     in State.
//   - A Step that returns done=true has performed its final CAS in the same
//     call (the paper's protocols decide from the value that CAS returned;
//     the decision is local computation after the step).
//   - Between two Step calls of one process, other processes may take
//     arbitrarily many steps and faults may fire: a Stepper may assume
//     NOTHING about shared state across Step boundaries beyond what its own
//     CAS return values told it. Everything it needs must live in State.
//
// State deliberately holds the union of every machine's registers rather
// than per-protocol types: drivers replay millions of executions and store
// one State per process, so a single flat struct keeps the hot path free of
// interface boxing and per-protocol allocation.

// State is the resumable register file of one protocol instance: the
// program counter plus the handful of locals the four constructions need.
// A State is created by Stepper.Begin and mutated in place by Stepper.Step;
// it is meaningful only to the Stepper that created it.
type State struct {
	// PC is the program counter: which switch arm Step resumes in.
	PC int
	// I is the object index register (Figures 2 and 3's loop variable i).
	I int
	// S is the stage register (Figure 3's s).
	S int64
	// Out is the current decision estimate (Figures 2 and 3's output).
	Out int64
	// Exp is the expected-content register (Figure 3's exp).
	Exp word.Word
	// Val is the packed input value (Figures 1 and 2's val).
	Val word.Word
}

// Stepper is the compiled form of a Protocol: a state machine whose Step
// performs exactly one shared-memory CAS per call. See the contract above.
type Stepper interface {
	// Begin validates the input and returns the initial machine state.
	// It performs no shared-memory operation.
	Begin(input int64) State
	// Step advances the machine by one atomic step against env. It returns
	// done=true with the decided value once the process has decided; the
	// machine must not be stepped further after that.
	Step(st *State, env Env) (done bool, decided int64)
	// Pending reports the CAS the next Step call will issue from st — the
	// object index and the exp/new arguments — without performing it. It is
	// a pure function of st: the exploration engine uses it to compute the
	// independence relation for partial-order reduction, so it must return
	// exactly the arguments the next Step passes to env.CAS.
	Pending(st *State) (obj int, exp, new word.Word)
	// Footprint reports the inclusive object-index interval [lo, hi] the
	// machine may still touch from st, over its whole remaining execution.
	// A sound over-approximation is required (the persistent-set pruner
	// treats disjoint footprints as permanently independent); the four
	// paper machines return exact intervals.
	Footprint(st *State) (lo, hi int)
}

// Steppable is implemented by protocols that provide a compiled form.
type Steppable interface {
	Compile() Stepper
}

// Compile returns the compiled form of the protocol, or ok=false when the
// protocol provides none (drivers then fall back to the goroutine-gated
// reference path).
func Compile(p Protocol) (Stepper, bool) {
	s, ok := p.(Steppable)
	if !ok {
		return nil, false
	}
	return s.Compile(), true
}

// singleStepper is the Figure 1 machine: a single CAS decides.
type singleStepper struct{}

// Compile implements Steppable.
func (SingleCAS) Compile() Stepper { return singleStepper{} }

// Begin implements Stepper.
func (singleStepper) Begin(input int64) State {
	ValidateInput(input)
	return State{Out: input, Val: word.FromValue(input)}
}

// Step implements Stepper: the one CAS of Figure 1, deciding on its result.
func (singleStepper) Step(st *State, env Env) (bool, int64) {
	old := env.CAS(0, word.Bottom, st.Val)
	if !old.IsBottom() {
		return true, old.Value()
	}
	return true, st.Out
}

// Pending implements Stepper: Figure 1's only CAS.
func (singleStepper) Pending(st *State) (int, word.Word, word.Word) {
	return 0, word.Bottom, st.Val
}

// Footprint implements Stepper: the single object.
func (singleStepper) Footprint(*State) (int, int) { return 0, 0 }

// fPlusOneStepper is the Figure 2 machine: one CAS per object in order,
// adopting any non-⊥ content seen; the pass over object f decides.
type fPlusOneStepper struct {
	f int
}

// Compile implements Steppable.
func (p FPlusOne) Compile() Stepper { return fPlusOneStepper{f: p.F} }

// Begin implements Stepper. Val carries the running output word (Figure 2's
// output), I the object index.
func (fPlusOneStepper) Begin(input int64) State {
	ValidateInput(input)
	return State{Val: word.FromValue(input)}
}

// Step implements Stepper: one iteration of Figure 2's loop body.
func (m fPlusOneStepper) Step(st *State, env Env) (bool, int64) {
	old := env.CAS(st.I, word.Bottom, st.Val)
	if !old.IsBottom() {
		st.Val = old
	}
	st.I++
	if st.I > m.f {
		return true, st.Val.Value()
	}
	return false, 0
}

// Pending implements Stepper: the next pass's CAS on object I.
func (fPlusOneStepper) Pending(st *State) (int, word.Word, word.Word) {
	return st.I, word.Bottom, st.Val
}

// Footprint implements Stepper: objects I..f remain to be visited.
func (m fPlusOneStepper) Footprint(st *State) (int, int) { return st.I, m.f }

// silentStepper is the Section 3.4 retry machine: CAS(O, ⊥, val) until a
// non-⊥ old value appears.
type silentStepper struct{}

// Compile implements Steppable.
func (SilentRetry) Compile() Stepper { return silentStepper{} }

// Begin implements Stepper.
func (silentStepper) Begin(input int64) State {
	ValidateInput(input)
	return State{Val: word.FromValue(input)}
}

// Step implements Stepper: one retry of the Section 3.4 loop.
func (silentStepper) Step(st *State, env Env) (bool, int64) {
	old := env.CAS(0, word.Bottom, st.Val)
	if !old.IsBottom() {
		return true, old.Value()
	}
	return false, 0
}

// Pending implements Stepper: every retry issues the same CAS.
func (silentStepper) Pending(st *State) (int, word.Word, word.Word) {
	return 0, word.Bottom, st.Val
}

// Footprint implements Stepper: the single object.
func (silentStepper) Footprint(*State) (int, int) { return 0, 0 }

// stagedStepper is the Figure 3 machine. Its two program counters cover the
// protocol's two CAS sites: pcStage is line 6 (the per-object install loop
// inside the stage loop), pcFinal is line 20 (the final-stage install on
// O_0). All the control flow between two CAS invocations — retry versus
// adopt versus advance (lines 7–16), the end-of-stage bookkeeping (lines
// 17–18), and the stage-loop exit into the final stage (line 19) — is local
// computation and therefore folded into the Step that performed the
// preceding CAS.
type stagedStepper struct {
	f        int
	maxStage int64
}

const (
	pcStage = 0 // Figure 3 line 6: CAS(O_i, exp, ⟨output, s⟩)
	pcFinal = 1 // Figure 3 line 20: CAS(O_0, exp, ⟨output, maxStage⟩)
)

// Compile implements Steppable.
func (p Staged) Compile() Stepper { return stagedStepper{f: p.F, maxStage: p.MaxStage()} }

// Begin implements Stepper, encoding Figure 3 line 2: output ← val,
// exp ← ⊥, s ← 0, starting at the first object of the first stage.
func (stagedStepper) Begin(input int64) State {
	ValidateInput(input)
	return State{PC: pcStage, Out: input, Exp: word.Bottom}
}

// Step implements Stepper. Line numbers refer to Figure 3 of the paper; the
// transcription mirrors Staged.Decide branch for branch so the two forms
// issue identical CAS sequences.
func (m stagedStepper) Step(st *State, env Env) (bool, int64) {
	if st.PC == pcFinal {
		old := env.CAS(0, st.Exp, word.Pack(st.Out, m.maxStage)) // line 20
		if old != st.Exp && old.Stage() < m.maxStage {           // line 21
			st.Exp = old // line 22
			return false, 0
		}
		return true, st.Out // lines 23–24
	}

	old := env.CAS(st.I, st.Exp, word.Pack(st.Out, st.S)) // line 6
	if old != st.Exp {                                    // line 7
		if old.Stage() < st.S { // line 8 (negated)
			st.Exp = old // line 15: still needs to update O_i
			return false, 0
		}
		st.Out = old.Value() // line 9
		st.S = old.Stage()   // line 10
		if st.S == m.maxStage {
			return true, st.Out // lines 11–12
		}
		// line 13: exp ← ⟨old.val, old.stage − 1⟩; stage −1 is ⊥.
		if old.Stage() == 0 {
			st.Exp = word.Bottom
		} else {
			st.Exp = word.Pack(old.Value(), old.Stage()-1)
		}
		// line 14: no need to update O_i — fall through to the next object.
	}
	// Line 16 (successful CAS) joins here: advance to the next object, and
	// at the end of the pass run the end-of-stage bookkeeping.
	st.I++
	if st.I < m.f {
		return false, 0
	}
	st.I = 0
	// line 17: exp.stage ← s (⊥ has no value field; the process's own
	// output is the value it just installed — see the encoding note in
	// staged.go).
	if st.Exp.IsBottom() {
		st.Exp = word.Pack(st.Out, st.S)
	} else {
		st.Exp = st.Exp.WithStage(st.S)
	}
	st.S++                  // line 18
	if st.S >= m.maxStage { // line 3 (loop exit)
		st.PC = pcFinal
	}
	return false, 0
}

// Pending implements Stepper: line 20's final install or line 6's
// per-object install, depending on the program counter.
func (m stagedStepper) Pending(st *State) (int, word.Word, word.Word) {
	if st.PC == pcFinal {
		return 0, st.Exp, word.Pack(st.Out, m.maxStage)
	}
	return st.I, st.Exp, word.Pack(st.Out, st.S)
}

// Footprint implements Stepper: the stage loop sweeps O_0..O_{f-1} and the
// final stage lands on O_0, so the whole remaining execution stays inside
// [0, f-1] (pcFinal narrows to O_0 alone).
func (m stagedStepper) Footprint(st *State) (int, int) {
	if st.PC == pcFinal {
		return 0, 0
	}
	return 0, m.f - 1
}
