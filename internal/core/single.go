package core

import "repro/internal/word"

// SingleCAS is the classic consensus protocol from one CAS object
// (Herlihy 1991), reproduced as Figure 1 of the paper:
//
//	decide(val):
//	    old ← CAS(O, ⊥, val)
//	    if old ≠ ⊥ then return old
//	    else return val
//
// Without faults it solves consensus for any number of processes (the
// consensus number of CAS is ∞). Theorem 4 shows it remains correct for two
// processes even when the object manifests unboundedly many overriding
// faults — the returned old value is correct even on a faulty execution, and
// with only two processes that is enough. Theorem 18 implies it is NOT
// fault-tolerant for three or more processes; experiment E4 exhibits the
// violating execution.
type SingleCAS struct{}

// Name implements Protocol.
func (SingleCAS) Name() string { return "figure1/single-cas" }

// Objects implements Protocol: one CAS object.
func (SingleCAS) Objects() int { return 1 }

// MaxProcs implements Protocol: fault-tolerant for two processes
// (Theorem 4). Fault-free it handles any number.
func (SingleCAS) MaxProcs() int { return 2 }

// StepBound implements Protocol: a single CAS step.
func (SingleCAS) StepBound(int) int { return 1 }

// Decide implements Protocol.
func (SingleCAS) Decide(env Env, input int64) int64 {
	ValidateInput(input)
	old := env.CAS(0, word.Bottom, word.FromValue(input))
	if !old.IsBottom() {
		return old.Value()
	}
	return input
}
