package core

import (
	"fmt"

	"repro/internal/word"
)

// FPlusOne is the f-tolerant consensus of Figure 2 / Theorem 5: given at
// most f faulty CAS objects — each with an unbounded number of overriding
// faults — it implements consensus for any number of processes using f+1
// CAS objects:
//
//	decide(val):
//	    output ← val
//	    for i = 0 to f do
//	        old ← CAS(O_i, ⊥, output)
//	        if old ≠ ⊥ then output ← old
//	    return output
//
// Correctness hinges on at least one object being non-faulty: the first
// value written to a non-faulty object sticks, and every process adopts it
// when passing that object. Theorem 18 shows f+1 objects are necessary, so
// the construction is tight.
type FPlusOne struct {
	// F is the maximum number of faulty objects tolerated (f ≥ 1).
	F int
}

// NewFPlusOne returns the Figure 2 protocol tolerating f faulty objects.
func NewFPlusOne(f int) FPlusOne {
	if f < 0 {
		panic("core: negative fault bound")
	}
	return FPlusOne{F: f}
}

// Name implements Protocol.
func (p FPlusOne) Name() string { return fmt.Sprintf("figure2/f-plus-one(f=%d)", p.F) }

// Objects implements Protocol: f+1 CAS objects.
func (p FPlusOne) Objects() int { return p.F + 1 }

// MaxProcs implements Protocol: unbounded (the construction is
// (f, ∞, ∞)-tolerant).
func (p FPlusOne) MaxProcs() int { return 0 }

// StepBound implements Protocol: exactly f+1 CAS steps.
func (p FPlusOne) StepBound(int) int { return p.F + 1 }

// Decide implements Protocol. It is a literal transcription of Figure 2.
func (p FPlusOne) Decide(env Env, input int64) int64 {
	ValidateInput(input)
	output := word.FromValue(input)
	for i := 0; i <= p.F; i++ {
		old := env.CAS(i, word.Bottom, output)
		if !old.IsBottom() {
			output = old
		}
	}
	return output.Value()
}
