package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/word"
)

func TestFPlusOneToleratesMixedFaultKinds(t *testing.T) {
	// Definition 3's discussion allows a mix of functional faults across
	// objects. Figure 2's consistency proof relies only on the one
	// non-faulty object, so it tolerates f faulty objects even when they
	// deviate toward DIFFERENT relaxed postconditions: object 0
	// overriding, object 1 silent.
	proto := core.NewFPlusOne(2) // 3 objects; 0 and 1 faulty
	mixed := fault.PerObject(map[int]fault.Policy{
		0: fault.WhenEffective(fault.Always(fault.Overriding)),
		1: fault.WhenEffective(fault.Always(fault.Silent)),
	})
	for seed := int64(0); seed < 40; seed++ {
		res, err := run.Consensus(run.Config{
			Protocol:  proto,
			Inputs:    []int64{10, 11, 12, 13},
			Scheduler: sim.NewRandom(seed),
			Budget:    fault.NewFixedBudget([]int{0, 1}, fault.Unbounded),
			Policy:    mixed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verdict.OK() {
			t.Fatalf("seed %d: mixed faults broke Figure 2: %s", seed, res.Verdict)
		}
	}
}

func TestArbitraryFaultBreaksValidity(t *testing.T) {
	// The §3.4 taxonomy's sharpest line: an overriding fault can only
	// ever write operation-supplied values, so validity survives any
	// overriding budget (experiment E9). An ARBITRARY fault can write a
	// value that is nobody's input — and one such fault makes Figure 2
	// decide a phantom value, violating validity itself.
	phantom := word.FromValue(99) // not an input of any process
	policy := fault.OnObjects(fault.PolicyFunc(func(op fault.Op) fault.Proposal {
		return fault.Proposal{Kind: fault.Arbitrary, Write: phantom}
	}), 0)

	violations := 0
	for seed := int64(0); seed < 40; seed++ {
		res, err := run.Consensus(run.Config{
			Protocol:  core.NewFPlusOne(1),
			Inputs:    []int64{10, 11, 12},
			Scheduler: sim.NewRandom(seed),
			Budget:    fault.NewFixedBudget([]int{0}, 1),
			Policy:    policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict.Violation == run.ViolationValidity {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("one arbitrary fault never broke validity in 40 runs; the taxonomy demo has no teeth")
	}
}

func TestMixedFaultsActuallyFired(t *testing.T) {
	// The mixed-tolerance test above is only meaningful if both kinds
	// genuinely fire; verify on one traced run.
	proto := core.NewFPlusOne(2)
	budget := fault.NewFixedBudget([]int{0, 1}, fault.Unbounded)
	mixed := fault.PerObject(map[int]fault.Policy{
		0: fault.WhenEffective(fault.Always(fault.Overriding)),
		1: fault.WhenEffective(fault.Always(fault.Silent)),
	})
	res, err := run.Consensus(run.Config{
		Protocol:  proto,
		Inputs:    []int64{10, 11, 12, 13},
		Scheduler: sim.NewRoundRobin(),
		Budget:    budget,
		Policy:    mixed,
		Trace:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawOverride, sawSilent bool
	for _, e := range res.Sim.Log.Faults() {
		switch e.Fault {
		case fault.Overriding:
			sawOverride = true
		case fault.Silent:
			sawSilent = true
		}
	}
	if !sawOverride || !sawSilent {
		t.Errorf("mixed run fired override=%v silent=%v; want both\n%s",
			sawOverride, sawSilent, res.Sim.Log)
	}
}
