package core

import (
	"fmt"
	"sync"
)

// Log is a replicated command log ordered by consensus — the classic
// application the paper's introduction motivates (blockchain, reliable
// distributed storage): each slot of the log is decided by one single-shot
// consensus instance built from (possibly faulty) CAS objects, so the log
// stays consistent across appenders even when the underlying CAS objects
// manifest overriding faults within the protocol's (f, t, n) tolerance.
//
// Herlihy's universality result (Section 2 of the paper) says consensus
// objects implement any wait-free object; Log is the standard state-machine
// instance of that construction. Append is lock-free rather than wait-free:
// an appender that loses a slot helps decide it and retries on the next —
// bounded in practice, unbounded only under perpetual contention.
//
// Commands must be unique across appenders (an appender recognizes victory
// by seeing its own command decided); EncodeCmd packs a proposer id and a
// payload into a unique command word.
type Log struct {
	proto  Protocol
	newEnv func() Env

	mu      sync.Mutex
	slots   []*logSlot
	decided []int64 // cache of agreed values, index-aligned with slots
	prefix  int     // length of the known-decided prefix
}

type logSlot struct {
	env Env

	mu   sync.Mutex
	done bool
	val  int64
}

// NewLog builds a log whose slots run the given protocol over environments
// produced by newEnv (one fresh environment — typically an atomicx bank,
// possibly faulty — per slot). The number of concurrent appenders must not
// exceed the protocol's MaxProcs (0 = unbounded).
func NewLog(proto Protocol, newEnv func() Env) *Log {
	if proto == nil || newEnv == nil {
		panic("core: NewLog needs a protocol and an environment factory")
	}
	return &Log{proto: proto, newEnv: newEnv}
}

// slot returns the i-th slot, growing the log as needed.
func (l *Log) slot(i int) *logSlot {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.slots) <= i {
		l.slots = append(l.slots, &logSlot{env: l.newEnv()})
		l.decided = append(l.decided, -1)
	}
	return l.slots[i]
}

// decide runs (or joins) the slot's consensus with the given proposal and
// returns the agreed value.
func (s *logSlot) decide(proto Protocol, proposal int64) int64 {
	// Fast path: already known decided (every consensus participant
	// observed the same value, so caching is sound).
	s.mu.Lock()
	if s.done {
		v := s.val
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()

	v := proto.Decide(s.env, proposal)

	s.mu.Lock()
	if !s.done {
		s.done = true
		s.val = v
	}
	v = s.val
	s.mu.Unlock()
	return v
}

// Append proposes cmd for the earliest undecided slot, retrying on later
// slots until cmd wins one, and returns the index it was decided into.
// Commands are unique and proposed only by their own appender, so slots in
// the already-decided prefix can never hold cmd and are skipped.
func (l *Log) Append(cmd int64) int {
	ValidateInput(cmd)
	l.mu.Lock()
	start := l.prefix
	l.mu.Unlock()
	for i := start; ; i++ {
		s := l.slot(i)
		dec := s.decide(l.proto, cmd)
		l.mu.Lock()
		if l.decided[i] < 0 {
			l.decided[i] = dec
			for l.prefix < len(l.decided) && l.decided[l.prefix] >= 0 {
				l.prefix++
			}
		}
		l.mu.Unlock()
		if dec == cmd {
			return i
		}
	}
}

// Get returns the decided command of slot i, if that slot is known decided.
func (l *Log) Get(i int) (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.decided) || l.decided[i] < 0 {
		return 0, false
	}
	return l.decided[i], true
}

// Len returns the number of slots known decided from the start of the log.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.prefix
}

// Snapshot returns the decided prefix of the log.
func (l *Log) Snapshot() []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int64
	for _, v := range l.decided {
		if v < 0 {
			break
		}
		out = append(out, v)
	}
	return out
}

const cmdPayloadBits = 23

// MaxCmdPayload is the largest payload EncodeCmd accepts.
const MaxCmdPayload = 1<<cmdPayloadBits - 1

// EncodeCmd packs a proposer id (0..255) and a payload (0..MaxCmdPayload)
// into a command value that is unique per (proposer, payload) pair and fits
// a register word.
func EncodeCmd(proposer int, payload int64) int64 {
	if proposer < 0 || proposer > 255 {
		panic(fmt.Sprintf("core: proposer %d out of range [0,255]", proposer))
	}
	if payload < 0 || payload > MaxCmdPayload {
		panic(fmt.Sprintf("core: payload %d out of range [0,%d]", payload, MaxCmdPayload))
	}
	return int64(proposer)<<cmdPayloadBits | payload
}

// DecodeCmd unpacks a command produced by EncodeCmd.
func DecodeCmd(cmd int64) (proposer int, payload int64) {
	return int(cmd >> cmdPayloadBits), cmd & MaxCmdPayload
}
