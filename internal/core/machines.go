package core

import (
	"fmt"
	"sync"
)

// This file makes Herlihy's universality theorem concrete: ANY sequential
// object can be made wait-free and fault-tolerant by layering its state
// machine over the Universal construction (which in turn runs on possibly
// faulty CAS objects). Counter and KVStore are the two classic exhibits.
//
// Determinism is the only requirement on the state machine: every process
// replays the same decided command prefix, so all replicas compute the same
// state (the replicatedlog example shows the same discipline end to end).

// opKind discriminates the commands of the machines below inside the
// command payload: 1 payload bit for the kind leaves 22 bits of argument.
const (
	opCounterAdd = 0
	opKVSet      = 1
)

// machineCmd packs (kind, argument) into a command payload.
func machineCmd(kind int, arg int64) int64 {
	return int64(kind)<<22 | (arg & (1<<22 - 1))
}

func splitMachineCmd(payload int64) (kind int, arg int64) {
	return int(payload >> 22), payload & (1<<22 - 1)
}

// Counter is a wait-free fault-tolerant counter: Add operations are ordered
// by consensus, and Value replays the decided prefix. Multiple processes
// (ids 0..n-1, at most the protocol's MaxProcs) may Add concurrently.
type Counter struct {
	u *Universal

	mu   sync.Mutex
	seqs []int64 // per-process command sequence numbers
}

// NewCounter builds a counter for n processes over the given consensus
// protocol and environment factory.
func NewCounter(n int, proto Protocol, newEnv func() Env) *Counter {
	return &Counter{u: NewUniversal(n, proto, newEnv), seqs: make([]int64, n)}
}

// Add appends an increment of delta (0..1023) by the given process.
func (c *Counter) Add(proc int, delta int64) {
	if delta < 0 || delta > 1023 {
		panic(fmt.Sprintf("core: counter delta %d out of range [0,1023]", delta))
	}
	c.mu.Lock()
	seq := c.seqs[proc]
	c.seqs[proc]++
	c.mu.Unlock()
	if seq > 4095 {
		panic("core: counter sequence space exhausted (4096 ops/process)")
	}
	// The sequence number makes the command unique; the delta rides in
	// the low bits. arg layout: seq(12 bits) | delta(10 bits).
	c.u.Execute(proc, EncodeCmd(proc, machineCmd(opCounterAdd, seq<<10|delta)))
}

// Value replays the decided prefix and returns the counter value.
func (c *Counter) Value() int64 {
	var total int64
	for _, cmd := range c.u.Snapshot() {
		_, payload := DecodeCmd(cmd)
		kind, arg := splitMachineCmd(payload)
		if kind == opCounterAdd {
			total += arg & 1023
		}
	}
	return total
}

// Ops returns the number of decided operations.
func (c *Counter) Ops() int { return c.u.Len() }

// KVStore is a wait-free fault-tolerant key-value store (last-writer-wins
// per key, writes totally ordered by consensus).
type KVStore struct {
	u *Universal

	mu   sync.Mutex
	seqs []int64
}

// NewKVStore builds a store for n processes.
func NewKVStore(n int, proto Protocol, newEnv func() Env) *KVStore {
	return &KVStore{u: NewUniversal(n, proto, newEnv), seqs: make([]int64, n)}
}

// Set writes value (0..127) under key (0..127) on behalf of proc.
func (s *KVStore) Set(proc int, key, value int64) {
	if key < 0 || key > 127 || value < 0 || value > 127 {
		panic(fmt.Sprintf("core: kv (%d,%d) out of range [0,127]", key, value))
	}
	s.mu.Lock()
	seq := s.seqs[proc]
	s.seqs[proc]++
	s.mu.Unlock()
	if seq > 255 {
		panic("core: kv sequence space exhausted (256 ops/process)")
	}
	// arg layout: seq(8) | key(7) | value(7).
	arg := seq<<14 | key<<7 | value
	s.u.Execute(proc, EncodeCmd(proc, machineCmd(opKVSet, arg)))
}

// Get replays the decided prefix and returns the latest value for key.
func (s *KVStore) Get(key int64) (int64, bool) {
	var val int64
	found := false
	for _, cmd := range s.u.Snapshot() {
		_, payload := DecodeCmd(cmd)
		kind, arg := splitMachineCmd(payload)
		if kind != opKVSet {
			continue
		}
		k := arg >> 7 & 127
		if k == key {
			val = arg & 127
			found = true
		}
	}
	return val, found
}

// State replays the decided prefix into a full key→value map.
func (s *KVStore) State() map[int64]int64 {
	state := make(map[int64]int64)
	for _, cmd := range s.u.Snapshot() {
		_, payload := DecodeCmd(cmd)
		kind, arg := splitMachineCmd(payload)
		if kind == opKVSet {
			state[arg>>7&127] = arg & 127
		}
	}
	return state
}
