package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Universal is Herlihy's wait-free universal construction instantiated over
// this package's consensus protocols: the result the paper leans on when it
// calls consensus "universal" (Sections 1–2). Unlike Log.Append — which can
// in principle lose every slot under perpetual contention — Execute is
// wait-free via helping: every process announces its pending command, and
// slot L gives priority to the announced command of process L mod n, so any
// command is decided within n slots of its announcement no matter how the
// scheduler behaves.
//
// Each slot is one single-shot consensus instance built from (possibly
// faulty) CAS objects; the construction therefore inherits the (f, t, n)
// fault tolerance of the protocol it is instantiated with.
//
// Commands must be unique across all Execute calls (use EncodeCmd).
type Universal struct {
	n      int
	proto  Protocol
	newEnv func() Env

	// announce[i] holds process i's pending command, or -1.
	announce []atomic.Int64

	mu      sync.Mutex
	slots   []*logSlot
	decided []int64
	prefix  int           // length of the decided prefix (maintained incrementally)
	applied map[int64]int // command -> slot index
}

// NewUniversal builds a universal object for n processes (ids 0..n-1) whose
// slots run the given protocol over environments from newEnv. As with every
// construction in this package, n must not exceed the protocol's MaxProcs
// for its fault tolerance to apply.
func NewUniversal(n int, proto Protocol, newEnv func() Env) *Universal {
	if n < 1 {
		panic("core: universal object needs at least one process")
	}
	if proto == nil || newEnv == nil {
		panic("core: NewUniversal needs a protocol and an environment factory")
	}
	u := &Universal{
		n:        n,
		proto:    proto,
		newEnv:   newEnv,
		announce: make([]atomic.Int64, n),
		applied:  make(map[int64]int),
	}
	for i := range u.announce {
		u.announce[i].Store(-1)
	}
	return u
}

// length returns the decided prefix length.
func (u *Universal) length() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.prefix
}

func (u *Universal) slot(i int) *logSlot {
	u.mu.Lock()
	defer u.mu.Unlock()
	for len(u.slots) <= i {
		u.slots = append(u.slots, &logSlot{env: u.newEnv()})
		u.decided = append(u.decided, -1)
	}
	return u.slots[i]
}

func (u *Universal) record(i int, cmd int64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.decided[i] < 0 {
		u.decided[i] = cmd
		if _, dup := u.applied[cmd]; !dup {
			u.applied[cmd] = i
		}
		for u.prefix < len(u.decided) && u.decided[u.prefix] >= 0 {
			u.prefix++
		}
	}
}

// appliedAt returns the slot a command was decided into, if any.
func (u *Universal) appliedAt(cmd int64) (int, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	i, ok := u.applied[cmd]
	return i, ok
}

// Execute appends cmd for process proc and returns the slot it was decided
// into. The helping discipline makes it wait-free: every slot L whose
// proposers all read announce[L mod n] after this call's announcement
// decides this command, and at most one slot per concurrently lagging
// process can be lost to a stale proposal — so the number of slots one call
// competes for is bounded by the backlog at call time plus O(n).
func (u *Universal) Execute(proc int, cmd int64) int {
	ValidateInput(cmd)
	if proc < 0 || proc >= u.n {
		panic(fmt.Sprintf("core: process %d out of range [0,%d)", proc, u.n))
	}
	u.announce[proc].Store(cmd)
	defer u.announce[proc].CompareAndSwap(cmd, -1)

	for {
		if i, ok := u.appliedAt(cmd); ok {
			return i
		}
		L := u.length()

		// Helping: slot L belongs to process L mod n. If that process
		// has announced a not-yet-applied command, everyone proposes
		// it; otherwise propose our own.
		proposal := cmd
		if helped := u.announce[L%u.n].Load(); helped >= 0 {
			if _, done := u.appliedAt(helped); !done {
				proposal = helped
			}
		}

		s := u.slot(L)
		dec := s.decide(u.proto, proposal)
		u.record(L, dec)
	}
}

// Get returns the decided command of slot i, if known.
func (u *Universal) Get(i int) (int64, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if i < 0 || i >= len(u.decided) || u.decided[i] < 0 {
		return 0, false
	}
	return u.decided[i], true
}

// Len returns the decided prefix length.
func (u *Universal) Len() int { return u.length() }

// Snapshot returns the decided prefix of the command sequence.
func (u *Universal) Snapshot() []int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	var out []int64
	for _, v := range u.decided {
		if v < 0 {
			break
		}
		out = append(out, v)
	}
	return out
}
