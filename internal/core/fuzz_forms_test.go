package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
)

// FuzzCompiledVsInterpreted drives random (protocol, schedule, fault) triples
// through both execution forms — the goroutine-gated reference simulator and
// the compiled Stepper machines — and fails on any divergence in decisions,
// per-process step counts, stall/stop status, verdicts, or the full trace
// event log. It is the randomized complement of the exhaustive
// explore.CrossCheck sweep: the sweep certifies small configurations
// completely, the fuzzer hunts for divergence in corners the sweep's fixed
// configurations never reach (adversarial halts, byte-shaped interleavings,
// every fault kind including nonresponsive stalls).
func FuzzCompiledVsInterpreted(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(0), []byte{0, 1, 0, 1}, []byte{1, 0})
	f.Add(uint8(3), uint8(1), uint8(0), []byte{1, 1, 0, 0, 2}, []byte{1, 1, 1})
	f.Add(uint8(5), uint8(1), uint8(1), []byte{0, 0, 0, 0, 0, 0}, []byte{1, 1, 1, 1})
	f.Add(uint8(4), uint8(2), uint8(2), []byte{2, 1, 0, 2, 1, 0}, []byte{0, 1, 0, 1})
	f.Add(uint8(1), uint8(2), uint8(3), []byte{0, 1, 2, 0xff}, []byte{1})
	f.Fuzz(func(t *testing.T, protoSel, nSel, kindSel uint8, sched, faults []byte) {
		proto := fuzzProtocol(protoSel)
		kind := fuzzKind(kindSel)
		n := 1 + int(nSel%3)
		inputs := make([]int64, n)
		for i := range inputs {
			inputs[i] = int64(10 + i)
		}

		ires, ierr := fuzzRun(proto, inputs, kind, sched, faults, run.ExecInterpreted)
		cres, cerr := fuzzRun(proto, inputs, kind, sched, faults, run.ExecCompiled)
		if (ierr == nil) != (cerr == nil) || (ierr != nil && ierr.Error() != cerr.Error()) {
			t.Fatalf("errors diverge: interpreted %v, compiled %v", ierr, cerr)
		}
		if ierr != nil {
			return
		}

		iv, cv := ires.Verdict, cres.Verdict
		if iv.Violation != cv.Violation || iv.Detail != cv.Detail ||
			iv.Agreed != cv.Agreed || iv.Stopped != cv.Stopped ||
			!reflect.DeepEqual(iv.Decided, cv.Decided) ||
			!reflect.DeepEqual(iv.Decisions, cv.Decisions) {
			t.Fatalf("verdicts diverge:\ninterpreted: %s (stopped=%v)\ncompiled:    %s (stopped=%v)",
				iv.String(), iv.Stopped, cv.String(), cv.Stopped)
		}
		if !reflect.DeepEqual(ires.Sim.Steps, cres.Sim.Steps) {
			t.Fatalf("step counts diverge: interpreted %v, compiled %v",
				ires.Sim.Steps, cres.Sim.Steps)
		}
		if !reflect.DeepEqual(ires.Sim.Stalled, cres.Sim.Stalled) {
			t.Fatalf("stalls diverge: interpreted %v, compiled %v",
				ires.Sim.Stalled, cres.Sim.Stalled)
		}
		iev, cev := ires.Sim.Log.Events(), cres.Sim.Log.Events()
		if len(iev) != len(cev) {
			t.Fatalf("trace lengths diverge: interpreted %d events, compiled %d", len(iev), len(cev))
		}
		for i := range iev {
			if iev[i] != cev[i] {
				t.Fatalf("trace event %d diverges:\ninterpreted: %s\ncompiled:    %s",
					i, iev[i], cev[i])
			}
		}
	})
}

// fuzzRun executes one form. The scheduler and policy are rebuilt from the
// same bytes for each form, so both consume identical decision streams.
func fuzzRun(proto core.Protocol, inputs []int64, kind fault.Kind, sched, faults []byte, mode run.ExecMode) (*run.Result, error) {
	ids := make([]int, proto.Objects())
	for i := range ids {
		ids[i] = i
	}
	return run.Consensus(run.Config{
		Protocol:  proto,
		Inputs:    inputs,
		Scheduler: &byteSched{bytes: sched},
		Budget:    fault.NewFixedBudget(ids, 2),
		Policy:    bytePolicy(kind, faults),
		Trace:     true,
		Exec:      mode,
	})
}

func fuzzProtocol(sel uint8) core.Protocol {
	switch sel % 6 {
	case 0:
		return core.SingleCAS{}
	case 1:
		return core.NewFPlusOne(1)
	case 2:
		return core.NewFPlusOne(2)
	case 3:
		return core.NewStaged(1, 1)
	case 4:
		return core.NewStaged(2, 1)
	default:
		return core.NewSilentRetry(2)
	}
}

func fuzzKind(sel uint8) fault.Kind {
	switch sel % 4 {
	case 0:
		return fault.Overriding
	case 1:
		return fault.Silent
	case 2:
		return fault.Invisible
	default:
		return fault.Nonresponsive
	}
}

// byteSched picks among enabled processes by consuming one byte per step;
// 0xff is the adversarial halt, byte exhaustion falls back to the lowest
// enabled id (deterministically, so both forms see the same tail).
type byteSched struct {
	bytes []byte
	pos   int
}

// Next implements sim.Scheduler.
func (s *byteSched) Next(enabled []int) (int, bool) {
	if s.pos >= len(s.bytes) {
		return enabled[0], true
	}
	b := s.bytes[s.pos]
	s.pos++
	if b == 0xff {
		return 0, false
	}
	return enabled[int(b)%len(enabled)], true
}

// bytePolicy proposes the given fault kind on invocations whose next byte is
// odd; byte exhaustion means no further faults.
func bytePolicy(kind fault.Kind, bytes []byte) fault.Policy {
	pos := 0
	return fault.PolicyFunc(func(fault.Op) fault.Proposal {
		if pos >= len(bytes) {
			return fault.NoFault
		}
		b := bytes[pos]
		pos++
		if b&1 == 1 {
			return fault.Proposal{Kind: kind}
		}
		return fault.NoFault
	})
}
