package core_test

import (
	"sync"
	"testing"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/fault"
)

func newReliableLog(proto core.Protocol) *core.Log {
	return core.NewLog(proto, func() core.Env {
		return atomicx.NewBank(proto.Objects())
	})
}

func TestLogSingleAppender(t *testing.T) {
	l := newReliableLog(core.SingleCAS{})
	for i := int64(0); i < 5; i++ {
		idx := l.Append(core.EncodeCmd(0, i))
		if idx != int(i) {
			t.Errorf("append %d landed at %d", i, idx)
		}
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d, want 5", l.Len())
	}
	for i := 0; i < 5; i++ {
		v, ok := l.Get(i)
		if !ok {
			t.Fatalf("slot %d unknown", i)
		}
		p, payload := core.DecodeCmd(v)
		if p != 0 || payload != int64(i) {
			t.Errorf("slot %d = (%d,%d)", i, p, payload)
		}
	}
}

func TestLogGetUnknownSlot(t *testing.T) {
	l := newReliableLog(core.SingleCAS{})
	if _, ok := l.Get(0); ok {
		t.Error("empty log must not know slot 0")
	}
	if _, ok := l.Get(-1); ok {
		t.Error("negative index must not resolve")
	}
}

func TestLogConcurrentAppendersTotalOrder(t *testing.T) {
	// Several goroutines append concurrently through faulty-CAS
	// consensus; every command must land in exactly one slot and all
	// appends must be present.
	proto := core.NewFPlusOne(1)
	l := core.NewLog(proto, func() core.Env {
		return atomicx.NewFaultyBank(proto.Objects(),
			fault.NewFixedBudget([]int{0}, fault.Unbounded), 0.4, 99)
	})

	const appenders = 4
	const perAppender = 10
	var wg sync.WaitGroup
	indices := make([][]int, appenders)
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := int64(0); i < perAppender; i++ {
				idx := l.Append(core.EncodeCmd(a, i))
				indices[a] = append(indices[a], idx)
			}
		}(a)
	}
	wg.Wait()

	total := appenders * perAppender
	if l.Len() != total {
		t.Fatalf("log length %d, want %d", l.Len(), total)
	}
	seen := map[int64]int{}
	for i := 0; i < total; i++ {
		v, ok := l.Get(i)
		if !ok {
			t.Fatalf("slot %d undecided", i)
		}
		seen[v]++
	}
	if len(seen) != total {
		t.Fatalf("log holds %d distinct commands, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("command %d appears %d times", v, n)
		}
	}
	// Per-appender indices are strictly increasing (program order holds).
	for a := 0; a < appenders; a++ {
		for i := 1; i < len(indices[a]); i++ {
			if indices[a][i] <= indices[a][i-1] {
				t.Errorf("appender %d indices not increasing: %v", a, indices[a])
			}
		}
	}
}

func TestLogSnapshotPrefix(t *testing.T) {
	l := newReliableLog(core.SingleCAS{})
	l.Append(core.EncodeCmd(0, 1))
	l.Append(core.EncodeCmd(0, 2))
	snap := l.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot length %d", len(snap))
	}
}

func TestEncodeDecodeCmd(t *testing.T) {
	for _, c := range []struct {
		proposer int
		payload  int64
	}{{0, 0}, {3, 17}, {255, core.MaxCmdPayload}} {
		cmd := core.EncodeCmd(c.proposer, c.payload)
		p, v := core.DecodeCmd(cmd)
		if p != c.proposer || v != c.payload {
			t.Errorf("EncodeCmd(%d,%d) round-tripped to (%d,%d)", c.proposer, c.payload, p, v)
		}
	}
}

func TestEncodeCmdUniqueAcrossProposers(t *testing.T) {
	a := core.EncodeCmd(1, 5)
	b := core.EncodeCmd(2, 5)
	if a == b {
		t.Error("same payload from different proposers must differ")
	}
}

func TestEncodeCmdValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"proposer -1":   func() { core.EncodeCmd(-1, 0) },
		"proposer 256":  func() { core.EncodeCmd(256, 0) },
		"payload -1":    func() { core.EncodeCmd(0, -1) },
		"payload large": func() { core.EncodeCmd(0, core.MaxCmdPayload+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewLogValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil factory must panic")
		}
	}()
	core.NewLog(core.SingleCAS{}, nil)
}
