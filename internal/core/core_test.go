package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
)

func distinctInputs(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(10 + i)
	}
	return in
}

// mustOK runs one execution and fails the test on any consensus violation.
func mustOK(t *testing.T, cfg run.Config) *run.Result {
	t.Helper()
	res, err := run.Consensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK() {
		t.Fatalf("%s: %s", cfg.Protocol.Name(), res.Verdict)
	}
	return res
}

func TestSingleCASFaultFreeAnyProcs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for seed := int64(0); seed < 5; seed++ {
			mustOK(t, run.Config{
				Protocol:  core.SingleCAS{},
				Inputs:    distinctInputs(n),
				Scheduler: sim.NewRandom(seed),
			})
		}
	}
}

func TestSingleCASTwoProcsUnboundedOverriding(t *testing.T) {
	// Theorem 4: one CAS object with unboundedly many overriding faults
	// still solves consensus for two processes.
	for seed := int64(0); seed < 50; seed++ {
		mustOK(t, run.Config{
			Protocol:  core.SingleCAS{},
			Inputs:    distinctInputs(2),
			Scheduler: sim.NewRandom(seed),
			Budget:    fault.NewBudget(1, fault.Unbounded),
			Policy:    fault.Always(fault.Overriding),
		})
	}
}

func TestSingleCASThreeProcsOverridingViolation(t *testing.T) {
	// Theorem 18 witness: with three processes and unbounded overriding
	// faults, the sequential schedule p0, p1, p2 makes p2 adopt p1's
	// input while p0 and p1 decided p0's — a consistency violation.
	res, err := run.Consensus(run.Config{
		Protocol:  core.SingleCAS{},
		Inputs:    distinctInputs(3),
		Scheduler: sim.NewScript(0, 1, 2),
		Budget:    fault.NewBudget(1, fault.Unbounded),
		Policy:    fault.Always(fault.Overriding),
		Trace:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Violation != run.ViolationConsistency {
		t.Fatalf("verdict = %s, want consistency violation\ntrace:\n%s",
			res.Verdict, res.Sim.Log)
	}
}

func TestFPlusOneFaultFree(t *testing.T) {
	for _, f := range []int{0, 1, 2, 4} {
		for _, n := range []int{1, 2, 3, 6} {
			mustOK(t, run.Config{
				Protocol:  core.NewFPlusOne(f),
				Inputs:    distinctInputs(n),
				Scheduler: sim.NewRoundRobin(),
			})
		}
	}
}

func TestFPlusOneToleratesFFaultyObjects(t *testing.T) {
	// Theorem 5: with at most f of the f+1 objects faulty (unbounded
	// overriding faults), consensus holds for any process count. We make
	// the adversary as strong as allowed: f objects always override when
	// observable.
	for _, f := range []int{1, 2, 3} {
		for _, n := range []int{2, 3, 5} {
			for seed := int64(0); seed < 20; seed++ {
				// Fault the first f objects; object f stays correct.
				faulty := make([]int, f)
				for i := range faulty {
					faulty[i] = i
				}
				mustOK(t, run.Config{
					Protocol:  core.NewFPlusOne(f),
					Inputs:    distinctInputs(n),
					Scheduler: sim.NewRandom(seed),
					Budget:    fault.NewFixedBudget(faulty, fault.Unbounded),
					Policy:    fault.Always(fault.Overriding),
				})
			}
		}
	}
}

func TestFPlusOneToleratesAnyFaultySubset(t *testing.T) {
	// The faulty subset is adversarial: any f of the f+1 objects.
	f := 2
	subsets := [][]int{{0, 1}, {0, 2}, {1, 2}}
	for _, sub := range subsets {
		for seed := int64(0); seed < 10; seed++ {
			mustOK(t, run.Config{
				Protocol:  core.NewFPlusOne(f),
				Inputs:    distinctInputs(4),
				Scheduler: sim.NewRandom(seed),
				Budget:    fault.NewFixedBudget(sub, fault.Unbounded),
				Policy:    fault.Always(fault.Overriding),
			})
		}
	}
}

func TestFPlusOneStepCountExact(t *testing.T) {
	// Figure 2 takes exactly f+1 CAS steps per process.
	f := 3
	res := mustOK(t, run.Config{
		Protocol:  core.NewFPlusOne(f),
		Inputs:    distinctInputs(4),
		Scheduler: sim.NewRoundRobin(),
	})
	for i, s := range res.Sim.Steps {
		if s != f+1 {
			t.Errorf("process %d took %d steps, want %d", i, s, f+1)
		}
	}
}

func TestStagedFaultFree(t *testing.T) {
	for _, f := range []int{1, 2, 3} {
		for _, t2 := range []int{1, 2} {
			proto := core.NewStaged(f, t2)
			for _, n := range []int{1, 2, f + 1} {
				mustOK(t, run.Config{
					Protocol:  proto,
					Inputs:    distinctInputs(n),
					Scheduler: sim.NewRoundRobin(),
				})
			}
		}
	}
}

func TestStagedToleratesBoundedFaultsAllObjectsFaulty(t *testing.T) {
	// Theorem 6: f objects, all faulty with at most t overriding faults
	// each, n = f+1 processes.
	for _, f := range []int{1, 2} {
		for _, tt := range []int{1, 2} {
			proto := core.NewStaged(f, tt)
			allObjs := make([]int, f)
			for i := range allObjs {
				allObjs[i] = i
			}
			for seed := int64(0); seed < 25; seed++ {
				mustOK(t, run.Config{
					Protocol:  proto,
					Inputs:    distinctInputs(f + 1),
					Scheduler: sim.NewRandom(seed),
					Budget:    fault.NewFixedBudget(allObjs, tt),
					Policy:    fault.WhenEffective(fault.Always(fault.Overriding)),
				})
			}
		}
	}
}

func TestStagedSoloDecidesOwnInput(t *testing.T) {
	proto := core.NewStaged(2, 1)
	res := mustOK(t, run.Config{
		Protocol:  proto,
		Inputs:    []int64{42},
		Scheduler: sim.NewRoundRobin(),
	})
	if got := res.Verdict.Agreed.Value(); got != 42 {
		t.Errorf("solo run decided %d, want 42", got)
	}
	// Solo, fault-free: one CAS per object per stage, plus the final CAS.
	want := int(proto.MaxStage())*proto.F + 1
	if res.Sim.Steps[0] != want {
		t.Errorf("solo steps = %d, want %d", res.Sim.Steps[0], want)
	}
}

func TestStagedMaxStageFormula(t *testing.T) {
	cases := []struct {
		f, t int
		want int64
	}{
		{1, 1, 5},  // 1·(4+1)
		{2, 1, 12}, // 1·(8+4)
		{3, 2, 42}, // 2·(12+9)
		{4, 3, 96}, // 3·(16+16)
	}
	for _, c := range cases {
		p := core.NewStaged(c.f, c.t)
		if got := p.MaxStage(); got != c.want {
			t.Errorf("MaxStage(f=%d,t=%d) = %d, want %d", c.f, c.t, got, c.want)
		}
	}
}

func TestStagedLateAdopterAgreesAfterFault(t *testing.T) {
	// The tightness anecdote from Section 4.1/4.3 for f=1, n=2: p0 runs
	// solo to completion deciding v0; p1's first CAS overrides the final
	// content but returns it, so p1 adopts v0 at maxStage and agrees.
	proto := core.NewStaged(1, 1)
	res := mustOK(t, run.Config{
		Protocol:  proto,
		Inputs:    []int64{10, 11},
		Scheduler: sim.NewSolo(0, 1),
		Budget:    fault.NewFixedBudget([]int{0}, 1),
		Policy:    fault.WhenEffective(fault.Always(fault.Overriding)),
	})
	if got := res.Verdict.Agreed.Value(); got != 10 {
		t.Errorf("agreed on %d, want p0's input 10", got)
	}
}

func TestStagedWithBudgetOverridesMaxStage(t *testing.T) {
	p := core.NewStagedWithBudget(2, 1, 3)
	if p.MaxStage() != 3 {
		t.Errorf("MaxStage = %d, want 3", p.MaxStage())
	}
	if p.Name() == core.NewStaged(2, 1).Name() {
		t.Error("budgeted variant must carry the budget in its name")
	}
	// Zero budget keeps the paper bound.
	if core.NewStaged(2, 1).MaxStage() != 12 {
		t.Errorf("paper bound = %d, want 12", core.NewStaged(2, 1).MaxStage())
	}
}

func TestStagedWithBudgetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive budget must panic")
		}
	}()
	core.NewStagedWithBudget(1, 1, 0)
}

func TestStagedWithBudgetStillDecides(t *testing.T) {
	// A reduced budget keeps validity/wait-freedom in all cases and, at
	// n=2, consistency too (the two-process anomaly; see E10).
	proto := core.NewStagedWithBudget(1, 1, 2)
	for seed := int64(0); seed < 20; seed++ {
		mustOK(t, run.Config{
			Protocol:  proto,
			Inputs:    distinctInputs(2),
			Scheduler: sim.NewRandom(seed),
			Budget:    fault.NewFixedBudget([]int{0}, 1),
			Policy:    fault.WhenEffective(fault.Always(fault.Overriding)),
		})
	}
}

func TestSilentRetryBoundedFaults(t *testing.T) {
	for _, b := range []int{1, 2, 4} {
		for _, n := range []int{1, 2, 3} {
			for seed := int64(0); seed < 10; seed++ {
				mustOK(t, run.Config{
					Protocol:  core.NewSilentRetry(b),
					Inputs:    distinctInputs(n),
					Scheduler: sim.NewRandom(seed),
					Budget:    fault.NewFixedBudget([]int{0}, b),
					Policy:    fault.Always(fault.Silent),
				})
			}
		}
	}
}

func TestSilentRetryUnboundedFaultsLosesLiveness(t *testing.T) {
	// Section 3.4: with unboundedly many silent faults no process ever
	// lands a write, so the protocol never terminates.
	res, err := run.Consensus(run.Config{
		Protocol:  core.NewSilentRetry(3), // believes B=3, reality is ∞
		Inputs:    distinctInputs(2),
		Scheduler: sim.NewRoundRobin(),
		Budget:    fault.NewFixedBudget([]int{0}, fault.Unbounded),
		Policy:    fault.Always(fault.Silent),
		StepLimit: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Violation != run.ViolationWaitFreedom {
		t.Fatalf("verdict = %s, want wait-freedom violation", res.Verdict)
	}
}

func TestProtocolMetadata(t *testing.T) {
	cases := []struct {
		p        core.Protocol
		objects  int
		maxProcs int
	}{
		{core.SingleCAS{}, 1, 2},
		{core.NewFPlusOne(3), 4, 0},
		{core.NewStaged(2, 1), 2, 3},
		{core.NewSilentRetry(2), 1, 0},
	}
	for _, c := range cases {
		if got := c.p.Objects(); got != c.objects {
			t.Errorf("%s Objects = %d, want %d", c.p.Name(), got, c.objects)
		}
		if got := c.p.MaxProcs(); got != c.maxProcs {
			t.Errorf("%s MaxProcs = %d, want %d", c.p.Name(), got, c.maxProcs)
		}
		if c.p.Name() == "" {
			t.Error("empty protocol name")
		}
		if c.p.StepBound(4) <= 0 {
			t.Errorf("%s StepBound must be positive", c.p.Name())
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"FPlusOne(-1)":    func() { core.NewFPlusOne(-1) },
		"Staged overflow": func() { core.NewStaged(100000, 100000) },
		"Staged(0,1)":     func() { core.NewStaged(0, 1) },
		"Staged(1,0)":     func() { core.NewStaged(1, 0) },
		"SilentRetry(-1)": func() { core.NewSilentRetry(-1) },
		"bad input":       func() { core.ValidateInput(-5) },
		"overflow input":  func() { core.ValidateInput(1 << 40) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAllProtocolsEqualInputs(t *testing.T) {
	// When every process proposes the same value, that value must win
	// (validity forces it).
	protos := []core.Protocol{
		core.SingleCAS{},
		core.NewFPlusOne(2),
		core.NewStaged(2, 1),
		core.NewSilentRetry(1),
	}
	for _, p := range protos {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			res := mustOK(t, run.Config{
				Protocol:  p,
				Inputs:    []int64{7, 7, 7},
				Scheduler: sim.NewRandom(3),
			})
			if res.Verdict.Agreed.Value() != 7 {
				t.Errorf("agreed = %s, want 7", res.Verdict.Agreed)
			}
		})
	}
}

func TestStagedManySeedsManyConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, cfg := range []struct{ f, t int }{{1, 1}, {1, 3}, {2, 1}, {3, 1}} {
		proto := core.NewStaged(cfg.f, cfg.t)
		allObjs := make([]int, cfg.f)
		for i := range allObjs {
			allObjs[i] = i
		}
		name := fmt.Sprintf("f=%d,t=%d", cfg.f, cfg.t)
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 60; seed++ {
				mustOK(t, run.Config{
					Protocol:  proto,
					Inputs:    distinctInputs(cfg.f + 1),
					Scheduler: sim.NewRandom(seed),
					Budget:    fault.NewFixedBudget(allObjs, cfg.t),
					Policy:    fault.WhenEffective(fault.Rate(fault.Overriding, 0.4, seed)),
				})
			}
		})
	}
}
