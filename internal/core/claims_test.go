package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

// The paper's consistency proof for Figure 3 rests on a chain of claims
// about executions (Claims 7–17). These tests check the *checkable* ones as
// trace invariants over many adversarial random executions — a second,
// independent line of evidence that the transcription implements the
// protocol whose properties the paper proves.

// stagedTrace runs one staged execution and returns its event log.
func stagedTrace(t *testing.T, f, tt int, seed int64) *trace.Log {
	t.Helper()
	allObjs := make([]int, f)
	for i := range allObjs {
		allObjs[i] = i
	}
	res, err := run.Consensus(run.Config{
		Protocol:  core.NewStaged(f, tt),
		Inputs:    distinctInputs(f + 1),
		Scheduler: sim.NewRandom(seed),
		Budget:    fault.NewFixedBudget(allObjs, tt),
		Policy:    fault.WhenEffective(fault.Rate(fault.Overriding, 0.4, seed)),
		Trace:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK() {
		t.Fatalf("seed %d: %s", seed, res.Verdict)
	}
	return res.Sim.Log
}

func forEachStagedTrace(t *testing.T, visit func(f, tt int, seed int64, log *trace.Log)) {
	t.Helper()
	for _, cfg := range []struct{ f, t int }{{1, 1}, {2, 1}, {2, 2}} {
		for seed := int64(0); seed < 30; seed++ {
			visit(cfg.f, cfg.t, seed, stagedTrace(t, cfg.f, cfg.t, seed))
		}
	}
}

// Claim 7: every value written to any object (and hence every output) is
// the input of some process, and stages lie in [0, maxStage].
func TestClaim7WritesCarryInputsAndLegalStages(t *testing.T) {
	forEachStagedTrace(t, func(f, tt int, seed int64, log *trace.Log) {
		maxStage := core.NewStaged(f, tt).MaxStage()
		inputs := map[int64]bool{}
		for _, in := range distinctInputs(f + 1) {
			inputs[in] = true
		}
		for _, e := range log.Events() {
			if e.Kind != trace.EventCAS || !e.Wrote() {
				continue
			}
			if !inputs[e.Post.Value()] {
				t.Fatalf("f=%d t=%d seed=%d: wrote non-input value %s", f, tt, seed, e.Post)
			}
			if s := e.Post.Stage(); s < 0 || s > maxStage {
				t.Fatalf("f=%d t=%d seed=%d: wrote illegal stage %d", f, tt, seed, s)
			}
		}
	})
}

// Claim 13 (contrapositive, checkable form): every successful NON-FAULTY
// write strictly increases the object's stage. Only overriding writes may
// install an older-or-equal stage.
func TestClaim13NonFaultyWritesRaiseStages(t *testing.T) {
	forEachStagedTrace(t, func(f, tt int, seed int64, log *trace.Log) {
		for _, e := range log.Events() {
			if e.Kind != trace.EventCAS || !e.Wrote() || e.Fault != fault.None {
				continue
			}
			if e.Post.Stage() <= e.Pre.Stage() {
				t.Fatalf("f=%d t=%d seed=%d: non-faulty write lowered stage: %s",
					f, tt, seed, e)
			}
		}
	})
}

// Claim 8: each process's written stage never decreases over its own steps.
func TestClaim8PerProcessStagesMonotone(t *testing.T) {
	forEachStagedTrace(t, func(f, tt int, seed int64, log *trace.Log) {
		last := map[int]int64{}
		for _, e := range log.Events() {
			if e.Kind != trace.EventCAS {
				continue
			}
			s := e.New.Stage()
			if prev, ok := last[e.Proc]; ok && s < prev {
				t.Fatalf("f=%d t=%d seed=%d: p%d wrote stage %d after %d",
					f, tt, seed, e.Proc, s, prev)
			}
			last[e.Proc] = s
		}
	})
}

// Claim 9 (first half): a process attempts stage s on object i only after
// stage s was attempted on every lower-indexed object — writes sweep the
// objects in order within a stage.
func TestClaim9StagesSweepObjectsInOrder(t *testing.T) {
	forEachStagedTrace(t, func(f, tt int, seed int64, log *trace.Log) {
		if f == 1 {
			return // vacuous with one object
		}
		maxStage := core.NewStaged(f, tt).MaxStage()
		// written[s][i] = some process wrote ⟨·, s⟩ to O_i.
		written := map[int64]map[int]bool{}
		for _, e := range log.Events() {
			if e.Kind != trace.EventCAS || !e.Wrote() {
				continue
			}
			s := e.Post.Stage()
			if s == maxStage {
				continue // the final stage touches only O_0 by design
			}
			if written[s] == nil {
				written[s] = map[int]bool{}
			}
			written[s][e.Object] = true
			for k := 0; k < e.Object; k++ {
				if !written[s][k] {
					t.Fatalf("f=%d t=%d seed=%d: stage %d reached O%d before O%d\n%s",
						f, tt, seed, s, e.Object, k, log)
				}
			}
		}
	})
}

// The audit ties it together: every staged execution stays within its
// declared (f, t) budget and every event classifies cleanly.
func TestStagedExecutionsAuditClean(t *testing.T) {
	forEachStagedTrace(t, func(f, tt int, seed int64, log *trace.Log) {
		a := spec.AuditTrace(log)
		if len(a.Mismatches) != 0 {
			t.Fatalf("f=%d t=%d seed=%d: %d classification mismatches", f, tt, seed, len(a.Mismatches))
		}
		if !a.Tolerable(f, tt) {
			t.Fatalf("f=%d t=%d seed=%d: execution exceeded its budget: %s", f, tt, seed, a)
		}
	})
}
