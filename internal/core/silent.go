package core

import (
	"fmt"

	"repro/internal/word"
)

// SilentRetry tolerates the silent CAS fault of Section 3.4 — the new value
// is not written even though the register content equals the expected value
// — on a single CAS object, provided the total number of faults is bounded.
// As the paper observes, "each process can execute the original protocol
// presented in [26], until one process succeeds and an output is chosen":
//
//	decide(val):
//	    repeat
//	        old ← CAS(O, ⊥, val)
//	        if old ≠ ⊥ then return old
//	    forever
//
// A silent fault leaves the register at ⊥ and returns ⊥ (the old value is
// correct), so a process simply retries. After at most B faults some write
// lands, every later CAS observes a non-⊥ content, and all processes adopt
// the first landed value. With an unbounded number of faults the loop never
// terminates — the paper's liveness counterexample, demonstrated in
// experiment E7.
type SilentRetry struct {
	// B is the bound on the total number of silent faults on the object.
	B int
}

// NewSilentRetry returns the retry protocol tolerating B silent faults.
func NewSilentRetry(b int) SilentRetry {
	if b < 0 {
		panic("core: negative fault bound")
	}
	return SilentRetry{B: b}
}

// Name implements Protocol.
func (p SilentRetry) Name() string { return fmt.Sprintf("silent-retry(B=%d)", p.B) }

// Objects implements Protocol: one CAS object.
func (p SilentRetry) Objects() int { return 1 }

// MaxProcs implements Protocol: unbounded.
func (p SilentRetry) MaxProcs() int { return 0 }

// StepBound implements Protocol: a process retries only while the register
// is ⊥, which can persist through at most B faulted writes plus its own
// first successful write, observed one step later.
func (p SilentRetry) StepBound(int) int { return p.B + 2 }

// Decide implements Protocol.
func (p SilentRetry) Decide(env Env, input int64) int64 {
	ValidateInput(input)
	val := word.FromValue(input)
	for {
		old := env.CAS(0, word.Bottom, val)
		if !old.IsBottom() {
			return old.Value()
		}
		// old = ⊥: either our write landed (the next CAS will observe
		// it) or a silent fault swallowed it (retry).
	}
}
