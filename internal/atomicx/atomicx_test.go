package atomicx

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/word"
)

func TestBankBasicCAS(t *testing.T) {
	b := NewBank(2)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	old := b.CAS(0, word.Bottom, word.FromValue(1))
	if old != word.Bottom {
		t.Errorf("old = %s, want ⊥", old)
	}
	old = b.CAS(0, word.Bottom, word.FromValue(2))
	if old != word.FromValue(1) {
		t.Errorf("old = %s, want 1 (failed CAS returns current)", old)
	}
	if got := b.Snapshot()[0]; got != word.FromValue(1) {
		t.Errorf("content = %s, want 1", got)
	}
	if b.Ops() != 2 {
		t.Errorf("ops = %d, want 2", b.Ops())
	}
}

func TestBankReset(t *testing.T) {
	b := NewBank(2)
	b.CAS(0, word.Bottom, word.FromValue(1))
	b.Reset()
	for i, w := range b.Snapshot() {
		if w != word.Bottom {
			t.Errorf("object %d not reset: %s", i, w)
		}
	}
}

func TestConcurrentCASExactlyOneWinner(t *testing.T) {
	// Classic linearizability smoke test: many goroutines race one CAS
	// slot; exactly one sees ⊥.
	for trial := 0; trial < 50; trial++ {
		b := NewBank(1)
		const n = 8
		winners := make(chan int, n)
		var wg sync.WaitGroup
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if b.CAS(0, word.Bottom, word.FromValue(int64(g+1))).IsBottom() {
					winners <- g
				}
			}(g)
		}
		wg.Wait()
		close(winners)
		count := 0
		for range winners {
			count++
		}
		if count != 1 {
			t.Fatalf("trial %d: %d winners, want exactly 1", trial, count)
		}
	}
}

func TestFaultyBankInjectsOverrides(t *testing.T) {
	b := NewFaultyBank(1, fault.NewBudget(1, fault.Unbounded), 1.0, 42)
	b.CAS(0, word.Bottom, word.FromValue(1)) // unobservable (register was ⊥)
	old := b.CAS(0, word.Bottom, word.FromValue(2))
	if old != word.FromValue(1) {
		t.Errorf("old = %s, want 1 (Φ′ keeps old correct)", old)
	}
	if got := b.Snapshot()[0]; got != word.FromValue(2) {
		t.Errorf("content = %s, want 2 (override writes)", got)
	}
	if b.Faults() != 1 {
		t.Errorf("observable faults = %d, want 1", b.Faults())
	}
}

func TestFaultyBankRespectsBudget(t *testing.T) {
	budget := fault.NewBudget(1, 1)
	b := NewFaultyBank(1, budget, 1.0, 7)
	for i := int64(1); i <= 10; i++ {
		b.CAS(0, word.Bottom, word.FromValue(i))
	}
	if budget.TotalFaults() > 1 {
		t.Errorf("budget overcharged: %d", budget.TotalFaults())
	}
	if b.Faults() > 1 {
		t.Errorf("observable faults = %d, exceeds t=1", b.Faults())
	}
}

func TestFaultyBankZeroRateIsCorrect(t *testing.T) {
	b := NewFaultyBank(1, fault.NewBudget(1, fault.Unbounded), 0.0, 1)
	b.CAS(0, word.Bottom, word.FromValue(1))
	b.CAS(0, word.Bottom, word.FromValue(2))
	if b.Faults() != 0 {
		t.Errorf("faults = %d, want 0", b.Faults())
	}
	if got := b.Snapshot()[0]; got != word.FromValue(1) {
		t.Errorf("content = %s, want 1", got)
	}
}

func TestProtocolsRunOnRealAtomics(t *testing.T) {
	// The same core protocols run unchanged on the atomic substrate:
	// goroutines race a consensus instance and must agree on someone's
	// input. Figure 2 with one genuinely faulty object.
	for trial := 0; trial < 30; trial++ {
		proto := core.NewFPlusOne(1)
		bank := NewFaultyBank(proto.Objects(), fault.NewFixedBudget([]int{0}, fault.Unbounded), 0.5, int64(trial))
		const n = 4
		results := make([]int64, n)
		var wg sync.WaitGroup
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = proto.Decide(bank, int64(100+g))
			}(g)
		}
		wg.Wait()
		for g := 1; g < n; g++ {
			if results[g] != results[0] {
				t.Fatalf("trial %d: goroutine %d decided %d, goroutine 0 decided %d",
					trial, g, results[g], results[0])
			}
		}
		if results[0] < 100 || results[0] >= 100+n {
			t.Fatalf("trial %d: decided %d, not a participant input", trial, results[0])
		}
	}
}

func TestStagedOnRealAtomicsWithFaults(t *testing.T) {
	// Figure 3 on real atomics: f=2 objects, both may fault with t=1,
	// n=3 goroutines.
	for trial := 0; trial < 20; trial++ {
		proto := core.NewStaged(2, 1)
		bank := NewFaultyBank(proto.Objects(),
			fault.NewFixedBudget([]int{0, 1}, 1), 0.3, int64(trial))
		const n = 3
		results := make([]int64, n)
		var wg sync.WaitGroup
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = proto.Decide(bank, int64(100+g))
			}(g)
		}
		wg.Wait()
		for g := 1; g < n; g++ {
			if results[g] != results[0] {
				t.Fatalf("trial %d: disagreement %v", trial, results)
			}
		}
	}
}

func TestBankSatisfiesEnvInterface(t *testing.T) {
	var _ core.Env = NewBank(1)
}
