// Package atomicx is the real-hardware substrate: a bank of CAS objects
// backed by sync/atomic words, with overriding-fault injection, runnable by
// ordinary goroutines. It implements the same environment interface as the
// deterministic simulator, so the protocols in internal/core run unchanged
// on real atomics — this is what the benchmarks and the runnable examples
// use.
//
// Fault injection on real atomics exploits a pleasant identity: the
// overriding fault of Section 3.3 — "the new value is written even if the
// register content differs from the expected value, and the correct old
// value is returned" — is exactly an unconditional atomic exchange. A
// faulty CAS execution is therefore a single atomic.Swap, preserving both
// atomicity and the relaxed postcondition Φ′ bit-for-bit.
package atomicx

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/word"
)

// Bank is a set of atomic CAS registers shared by any number of goroutines.
type Bank struct {
	words []atomic.Uint64

	mu     sync.Mutex
	rng    *rand.Rand
	rate   float64
	budget *fault.Budget

	faults atomic.Int64
	ops    atomic.Int64
}

// NewBank returns n fault-free atomic CAS objects initialized to ⊥.
func NewBank(n int) *Bank {
	return &Bank{words: make([]atomic.Uint64, n)}
}

// NewFaultyBank returns n atomic CAS objects where each CAS invocation
// independently manifests an overriding fault with probability rate,
// subject to the (f, t) budget. The seed makes fault decisions repeatable
// for a fixed interleaving (the interleaving itself is up to the Go
// scheduler — this is the real-concurrency substrate, not the simulator).
func NewFaultyBank(n int, budget *fault.Budget, rate float64, seed int64) *Bank {
	return &Bank{
		words:  make([]atomic.Uint64, n),
		rng:    rand.New(rand.NewSource(seed)),
		rate:   rate,
		budget: budget,
	}
}

// Len returns the number of objects.
func (b *Bank) Len() int { return len(b.words) }

// Bind returns the bank as seen by one process. On real atomics the calling
// goroutine is the process, so the simulator handle is ignored (nil is
// fine); the bank itself is the environment. Bind exists so both substrates
// satisfy the same run.Bank interface.
func (b *Bank) Bind(_ *sim.Proc) core.Env { return b }

// Contents returns the current register contents (an alias of Snapshot,
// matching the simulator bank's monitor-side accessor).
func (b *Bank) Contents() []word.Word { return b.Snapshot() }

// Faults returns the number of overriding faults injected so far.
func (b *Bank) Faults() int64 { return b.faults.Load() }

// Ops returns the number of CAS invocations executed so far.
func (b *Bank) Ops() int64 { return b.ops.Load() }

// Reset restores every register to ⊥ (for benchmark iterations). Not safe
// to call concurrently with CAS.
func (b *Bank) Reset() {
	for i := range b.words {
		b.words[i].Store(uint64(word.Bottom))
	}
}

// shouldFault decides whether this invocation overrides, charging the
// budget under the bank's lock.
func (b *Bank) shouldFault(obj int) bool {
	if b.rng == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng.Float64() >= b.rate {
		return false
	}
	if b.budget != nil {
		if !b.budget.Admits(obj) {
			return false
		}
		b.budget.Charge(obj)
	}
	return true
}

// CAS executes one compare-and-swap on object i and returns the old value.
// The caller's goroutine id is irrelevant (the Env interface's process
// binding is implicit), so Bank itself satisfies core.Env.
func (b *Bank) CAS(i int, exp, new word.Word) word.Word {
	b.ops.Add(1)

	// A faulty execution is an unconditional exchange: the new value is
	// written regardless of the comparison, and the displaced (correct)
	// old value is returned — atomic.Swap is Φ′ in one instruction.
	//
	// The fault decision is made before looking at the register so that
	// a decision + swap pair cannot be "aimed" using information no
	// hardware comparator glitch would have. The budget is charged at
	// decision time even when the override turns out unobservable (the
	// comparison would have succeeded anyway): under real concurrency the
	// register can change between any read and the swap, so observability
	// cannot be pre-checked atomically. Charging early is conservative —
	// the adversary gets at most, never more than, its (f, t) budget —
	// while the faults counter reports only the observable Φ-violations.
	if b.shouldFault(i) {
		old := word.Word(b.words[i].Swap(uint64(new)))
		if old != exp {
			// Observable: a genuine ⟨CAS, Φ′⟩-fault.
			b.faults.Add(1)
		}
		return old
	}

	// Correct CAS returning the old value, built from the stdlib's
	// boolean CompareAndSwap: a failed comparison is linearized at the
	// Load; a successful one at the CompareAndSwap.
	for {
		cur := word.Word(b.words[i].Load())
		if cur != exp {
			return cur
		}
		if b.words[i].CompareAndSwap(uint64(exp), uint64(new)) {
			return exp
		}
	}
}

// Snapshot returns the current register contents (not atomic across
// objects; for reporting only).
func (b *Bank) Snapshot() []word.Word {
	out := make([]word.Word, len(b.words))
	for i := range b.words {
		out[i] = word.Word(b.words[i].Load())
	}
	return out
}
