// Package store persists exploration runs so they survive deadlines,
// crashes, and redeployments: a run directory holds an immutable manifest
// (what is being explored, hashed so a resumed run refuses mismatched
// settings) and a sequence of atomic checkpoints (the work-stealing frontier,
// the dedup shards, and the aggregated outcome so far).
//
// Every write is crash-safe: the file is written to a temporary name in the
// run directory, fsync'd, renamed over the target, and the directory is
// fsync'd — a torn write can lose at most the newest checkpoint, never
// corrupt an existing one.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dedup"
	"repro/internal/obs"
)

// FormatVersion identifies the checkpoint format; a store written by a
// different version refuses to resume.
const FormatVersion = 1

const (
	manifestFile   = "manifest.json"
	checkpointFile = "checkpoint.json"
)

// Manifest pins down what a run directory explores. Every field that
// influences the shape or outcome of the exploration participates in the
// settings hash; fields that only change how fast the answer is found
// (worker count, dedup, execution cap) are recorded for inspection but may
// vary across resumes.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Engine        string `json:"engine"`
	CreatedAt     string `json:"created_at,omitempty"`

	Protocol        string  `json:"protocol"`
	Objects         int     `json:"objects"`
	Inputs          []int64 `json:"inputs"`
	FaultyObjects   []int   `json:"faulty_objects"`
	FaultsPerObject int     `json:"faults_per_object"`
	Kind            string  `json:"kind"`
	StepLimit       int     `json:"step_limit"`
	Exhaustive      bool    `json:"exhaustive"`
	// Exec is the resolved execution form ("compiled" or "interpreted").
	// It is hashed: the forms are equivalent by construction, but a
	// checkpoint is a claim about what a specific engine explored, so a
	// resume must re-run the engine that made the claim.
	Exec string `json:"exec,omitempty"`

	// Advisory (not hashed): tuning that does not change the verdict.
	MaxExecutions int  `json:"max_executions"`
	Dedup         bool `json:"dedup"`

	// Extra carries driver-specific reconstruction data (e.g. the CLI
	// flags that built the protocol). Not hashed.
	Extra map[string]string `json:"extra,omitempty"`

	// SettingsHash is the hash of the verdict-relevant fields above,
	// filled in by Create and verified on resume.
	SettingsHash string `json:"settings_hash"`
}

// Hash computes the settings hash over the verdict-relevant fields.
func (m *Manifest) Hash() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|%s|%d|%v|%v|%d|%s|%d|%v|%s",
		m.FormatVersion, m.Protocol, m.Objects, m.Inputs,
		m.FaultyObjects, m.FaultsPerObject, m.Kind, m.StepLimit, m.Exhaustive,
		m.Exec)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Task is one unexplored region of the execution tree: the subtree rooted
// at Path, backtracking no shallower than Floor (Floor < len(Path) marks an
// in-progress enumeration whose positions below Floor are not yet
// exhausted).
type Task struct {
	Path  []int `json:"path"`
	Floor int   `json:"floor"`
}

// Checkpoint is one atomic snapshot of an exploration in flight.
type Checkpoint struct {
	Seq  int  `json:"seq"`
	Done bool `json:"done"` // the exploration finished; Tasks is empty

	Executions   int64 `json:"executions"`
	Violations   int64 `json:"violations"`
	MaxProcSteps int   `json:"max_proc_steps"`
	MaxFaults    int   `json:"max_faults"`
	Capped       bool  `json:"capped"`

	// BestPath is the canonical violating choice path found so far (nil
	// when none): replaying it reconstructs the counterexample.
	BestPath []int `json:"best_path,omitempty"`
	// BestLen is the schedule length of the best violation (exhaustive
	// mode's minimality metric).
	BestLen int `json:"best_len,omitempty"`
	// FirstViolationNS is the wall-clock latency to the first violation.
	FirstViolationNS int64 `json:"first_violation_ns,omitempty"`
	// ElapsedNS accumulates exploration wall-clock across resumes.
	ElapsedNS int64 `json:"elapsed_ns"`

	Tasks []Task        `json:"tasks"`
	Dedup []dedup.Entry `json:"dedup,omitempty"`
}

// Store is an open run directory.
type Store struct {
	dir      string
	manifest Manifest
	cp       *Checkpoint
	seq      int

	// Observability, attached via Instrument; all nil-safe.
	events    *obs.Log
	saves     *obs.Counter
	saveBytes *obs.Counter
	saveMS    *obs.Histogram
}

// Instrument attaches observability to the store: checkpoint save counts,
// serialized bytes, and write latency on the registry
// (store.checkpoint.saves / .bytes / .write_ms), and a checkpoint.write
// event per successful Save on the event log. Either argument may be nil.
func (s *Store) Instrument(reg *obs.Registry, events *obs.Log) {
	s.events = events
	if reg != nil {
		s.saves = reg.Counter("store.checkpoint.saves")
		s.saveBytes = reg.Counter("store.checkpoint.bytes")
		s.saveMS = reg.Histogram("store.checkpoint.write_ms",
			0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)
	}
}

// ErrMismatch reports that a run directory's manifest does not match the
// settings of the exploration trying to resume it.
var ErrMismatch = errors.New("store: run settings do not match the manifest")

// Create initializes a new run directory with the given manifest. It fails
// if the directory already contains a manifest — resuming must go through
// Open so the settings check cannot be bypassed.
func Create(dir string, m Manifest) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err == nil {
		return nil, fmt.Errorf("store: %s already holds a run (resume it, or choose a fresh directory)", dir)
	}
	m.FormatVersion = FormatVersion
	m.SettingsHash = m.Hash()
	if m.CreatedAt == "" {
		m.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(dir, manifestFile, data); err != nil {
		return nil, err
	}
	return &Store{dir: dir, manifest: m}, nil
}

// Open loads an existing run directory: its manifest and, when present, the
// latest checkpoint.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("store: %s holds no run manifest: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest in %s: %w", dir, err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("store: %s uses checkpoint format %d, this binary writes %d",
			dir, m.FormatVersion, FormatVersion)
	}
	if got := m.Hash(); got != m.SettingsHash {
		return nil, fmt.Errorf("store: manifest hash mismatch in %s (recorded %s, computed %s)",
			dir, m.SettingsHash, got)
	}
	s := &Store{dir: dir, manifest: m}

	cpData, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// A manifest without a checkpoint: the run died before its first
		// snapshot; resume restarts from the root.
	case err != nil:
		return nil, fmt.Errorf("store: %w", err)
	default:
		var cp Checkpoint
		if err := json.Unmarshal(cpData, &cp); err != nil {
			return nil, fmt.Errorf("store: corrupt checkpoint in %s: %w", dir, err)
		}
		s.cp = &cp
		s.seq = cp.Seq
	}
	return s, nil
}

// Dir returns the run directory path.
func (s *Store) Dir() string { return s.dir }

// Manifest returns the run's manifest.
func (s *Store) Manifest() Manifest { return s.manifest }

// Checkpoint returns the latest checkpoint loaded by Open, or nil for a
// fresh run.
func (s *Store) Checkpoint() *Checkpoint { return s.cp }

// Verify checks that the given manifest describes the same exploration as
// the stored one, returning ErrMismatch with the differing hash otherwise.
func (s *Store) Verify(m Manifest) error {
	m.FormatVersion = FormatVersion
	if got, want := m.Hash(), s.manifest.SettingsHash; got != want {
		return fmt.Errorf("%w: settings hash %s, run was created with %s", ErrMismatch, got, want)
	}
	return nil
}

// Save atomically persists a checkpoint, assigning it the next sequence
// number. The previous checkpoint is intact until the rename commits.
func (s *Store) Save(cp *Checkpoint) error {
	start := time.Now()
	s.seq++
	cp.Seq = s.seq
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(s.dir, checkpointFile, data); err != nil {
		return err
	}
	ms := float64(time.Since(start).Microseconds()) / 1000
	if s.saves != nil {
		s.saves.Inc()
		s.saveBytes.Add(int64(len(data)))
		s.saveMS.Observe(ms)
	}
	s.events.Emit(obs.Info, "checkpoint.write", map[string]any{
		"seq": cp.Seq, "bytes": len(data), "tasks": len(cp.Tasks),
		"dedup_entries": len(cp.Dedup), "ms": ms, "done": cp.Done,
	})
	return nil
}

// writeFileAtomic writes name under dir crash-safely: temp file in the same
// directory, fsync, rename, directory fsync.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename

	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
