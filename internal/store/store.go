// Package store persists exploration runs so they survive deadlines,
// crashes, and redeployments: a run directory holds an immutable manifest
// (what is being explored, hashed so a resumed run refuses mismatched
// settings) and a sequence of atomic checkpoints (the work-stealing frontier,
// the dedup shards, and the aggregated outcome so far).
//
// Every write is crash-safe: the file is written to a temporary name in the
// run directory, fsync'd, renamed over the target, and the directory is
// fsync'd — a torn write can lose at most the newest checkpoint, never
// corrupt an existing one.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/dedup"
	"repro/internal/obs"
)

// FormatVersion identifies the checkpoint format; a store written by a
// different version refuses to resume.
const FormatVersion = 1

const (
	manifestFile   = "manifest.json"
	checkpointFile = "checkpoint.json"
	lockFile       = "owner.json"
	obsDirName     = "obs"
)

// Manifest pins down what a run directory explores. Every field that
// influences the shape or outcome of the exploration participates in the
// settings hash; fields that only change how fast the answer is found
// (worker count, dedup, execution cap) are recorded for inspection but may
// vary across resumes.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Engine        string `json:"engine"`
	CreatedAt     string `json:"created_at,omitempty"`

	Protocol        string  `json:"protocol"`
	Objects         int     `json:"objects"`
	Inputs          []int64 `json:"inputs"`
	FaultyObjects   []int   `json:"faulty_objects"`
	FaultsPerObject int     `json:"faults_per_object"`
	Kind            string  `json:"kind"`
	StepLimit       int     `json:"step_limit"`
	Exhaustive      bool    `json:"exhaustive"`
	// Exec is the resolved execution form ("compiled" or "interpreted").
	// It is hashed: the forms are equivalent by construction, but a
	// checkpoint is a claim about what a specific engine explored, so a
	// resume must re-run the engine that made the claim.
	Exec string `json:"exec,omitempty"`
	// Reduce is the partial-order reduction mode ("on" or "aggressive";
	// empty means off). It is hashed when set: reduced choice paths are
	// coordinates in a reduced tree, so a checkpointed frontier or a ledger
	// task is only meaningful to an engine running the same reduction. The
	// empty/off value contributes nothing to the hash, so run directories
	// from before reduction existed still verify.
	Reduce string `json:"reduce,omitempty"`

	// Advisory (not hashed): tuning that does not change the verdict.
	MaxExecutions int  `json:"max_executions"`
	Dedup         bool `json:"dedup"`

	// LedgerEpoch identifies the ledger incarnation when the run directory
	// doubles as a multi-process work ledger (see internal/ledger): the
	// creating participant stamps it from the ledger marker so a finalize
	// can be matched to the worker fleet that produced it. Zero for
	// single-process runs. Advisory (not hashed): joining workers verify
	// the hashed settings, the epoch only identifies the fleet.
	LedgerEpoch int64 `json:"ledger_epoch,omitempty"`

	// Extra carries driver-specific reconstruction data (e.g. the CLI
	// flags that built the protocol). Not hashed.
	Extra map[string]string `json:"extra,omitempty"`

	// SettingsHash is the hash of the verdict-relevant fields above,
	// filled in by Create and verified on resume.
	SettingsHash string `json:"settings_hash"`
}

// Hash computes the settings hash over the verdict-relevant fields.
func (m *Manifest) Hash() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|%s|%d|%v|%v|%d|%s|%d|%v|%s",
		m.FormatVersion, m.Protocol, m.Objects, m.Inputs,
		m.FaultyObjects, m.FaultsPerObject, m.Kind, m.StepLimit, m.Exhaustive,
		m.Exec)
	if m.Reduce != "" && m.Reduce != "off" {
		fmt.Fprintf(h, "|reduce=%s", m.Reduce)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Task is one unexplored region of the execution tree: the subtree rooted
// at Path, backtracking no shallower than Floor (Floor < len(Path) marks an
// in-progress enumeration whose positions below Floor are not yet
// exhausted).
type Task struct {
	Path  []int `json:"path"`
	Floor int   `json:"floor"`
}

// Checkpoint is one atomic snapshot of an exploration in flight.
type Checkpoint struct {
	Seq  int  `json:"seq"`
	Done bool `json:"done"` // the exploration finished; Tasks is empty

	Executions   int64 `json:"executions"`
	Violations   int64 `json:"violations"`
	MaxProcSteps int   `json:"max_proc_steps"`
	MaxFaults    int   `json:"max_faults"`
	Capped       bool  `json:"capped"`

	// BestPath is the canonical violating choice path found so far (nil
	// when none): replaying it reconstructs the counterexample.
	BestPath []int `json:"best_path,omitempty"`
	// BestLen is the schedule length of the best violation (exhaustive
	// mode's minimality metric).
	BestLen int `json:"best_len,omitempty"`
	// FirstViolationNS is the wall-clock latency to the first violation.
	FirstViolationNS int64 `json:"first_violation_ns,omitempty"`
	// ElapsedNS accumulates exploration wall-clock across resumes.
	ElapsedNS int64 `json:"elapsed_ns"`

	Tasks []Task        `json:"tasks"`
	Dedup []dedup.Entry `json:"dedup,omitempty"`
}

// Store is an open run directory.
type Store struct {
	dir      string
	manifest Manifest
	cp       *Checkpoint
	seq      int
	locked   bool // this handle holds the owner lock; Close releases it

	// Observability, attached via Instrument; all nil-safe.
	events    *obs.Log
	saves     *obs.Counter
	saveBytes *obs.Counter
	saveMS    *obs.Histogram
}

// Instrument attaches observability to the store: checkpoint save counts,
// serialized bytes, and write latency on the registry
// (store.checkpoint.saves / .bytes / .write_ms), and a checkpoint.write
// event per successful Save on the event log. Either argument may be nil.
func (s *Store) Instrument(reg *obs.Registry, events *obs.Log) {
	s.events = events
	if reg != nil {
		s.saves = reg.Counter("store.checkpoint.saves")
		s.saveBytes = reg.Counter("store.checkpoint.bytes")
		s.saveMS = reg.Histogram("store.checkpoint.write_ms",
			0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)
	}
}

// ErrMismatch reports that a run directory's manifest does not match the
// settings of the exploration trying to resume it.
var ErrMismatch = errors.New("store: run settings do not match the manifest")

// ErrLocked reports that a run directory is exclusively held by another live
// process. Match with errors.Is; the concrete *LockedError carries the
// holder's identity.
var ErrLocked = errors.New("store: run directory is held by another live process")

// LockedError is the typed form of ErrLocked: opening a run directory whose
// owner lock names a process that is still alive.
type LockedError struct {
	Dir   string // the run directory
	PID   int    // the live holder
	Since string // when the holder took the lock (RFC3339)
}

func (e *LockedError) Error() string {
	return fmt.Sprintf("store: %s is held by live process %d (since %s); use a ledger run for multi-process access", e.Dir, e.PID, e.Since)
}

func (e *LockedError) Unwrap() error { return ErrLocked }

// ownerLock is the on-disk owner record. The epoch disambiguates PID reuse
// across reboots well enough for an advisory lock: a stale lock whose PID is
// dead is silently replaced.
type ownerLock struct {
	PID       int    `json:"pid"`
	Epoch     int64  `json:"epoch"` // unix nanoseconds at acquisition
	CreatedAt string `json:"created_at"`
}

// acquireLock takes the run directory's exclusive owner lock. A lock held by
// this same process is reused (sequential Create→Open in one process is
// normal); a lock whose PID is dead is replaced; a lock whose PID is alive
// yields *LockedError.
func acquireLock(dir string) error {
	for attempt := 0; attempt < 3; attempt++ {
		rec := ownerLock{
			PID:       os.Getpid(),
			Epoch:     time.Now().UnixNano(),
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
		}
		data, err := json.Marshal(&rec)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		err = CreateExclusive(dir, lockFile, data)
		if err == nil {
			return nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return err
		}
		held, err := os.ReadFile(filepath.Join(dir, lockFile))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // released between link and read; retry
			}
			return fmt.Errorf("store: %w", err)
		}
		var cur ownerLock
		if err := json.Unmarshal(held, &cur); err != nil || cur.PID == 0 {
			// Corrupt lock: replace it rather than brick the run dir.
			os.Remove(filepath.Join(dir, lockFile))
			continue
		}
		if cur.PID == os.Getpid() {
			return nil // our own lock (earlier handle in this process)
		}
		if pidAlive(cur.PID) {
			return &LockedError{Dir: dir, PID: cur.PID, Since: cur.CreatedAt}
		}
		// Stale lock from a dead process (e.g. SIGKILL): replace it.
		os.Remove(filepath.Join(dir, lockFile))
	}
	return fmt.Errorf("store: could not acquire owner lock in %s (lock churn)", dir)
}

// pidAlive reports whether a process with the given PID exists. Signal 0
// probes without delivering; EPERM still proves existence.
func pidAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

// Close releases the owner lock taken by Create/Open. Shared handles and
// already-closed handles are no-ops. The run directory's contents are
// unaffected — every write was already durable when Save returned.
func (s *Store) Close() error {
	if !s.locked {
		return nil
	}
	s.locked = false
	if err := os.Remove(filepath.Join(s.dir, lockFile)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Create initializes a new run directory with the given manifest and takes
// its exclusive owner lock (release with Close). It fails if the directory
// already contains a manifest — resuming must go through Open so the
// settings check cannot be bypassed.
func Create(dir string, m Manifest) (*Store, error) {
	return create(dir, m, true)
}

// CreateShared is Create without the exclusive owner lock, for cooperating
// ledger participants that intentionally share the run directory. The
// manifest commit is link-exclusive, so racing creators resolve to exactly
// one winner; losers get an error and should OpenShared + Verify instead.
func CreateShared(dir string, m Manifest) (*Store, error) {
	return create(dir, m, false)
}

func create(dir string, m Manifest, lock bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Durability: the rename discipline inside writeFileAtomic fsyncs the
	// run directory, but the run directory's own creation lives in its
	// parent — sync that too, or a crash can lose the whole run dir entry.
	if err := syncDir(filepath.Dir(dir)); err != nil {
		return nil, err
	}
	m.FormatVersion = FormatVersion
	m.SettingsHash = m.Hash()
	if m.CreatedAt == "" {
		m.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := CreateExclusive(dir, manifestFile, data); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("store: %s already holds a run (resume it, or choose a fresh directory): %w", dir, fs.ErrExist)
		}
		return nil, err
	}
	s := &Store{dir: dir, manifest: m}
	if lock {
		if err := acquireLock(dir); err != nil {
			return nil, err
		}
		s.locked = true
	}
	return s, nil
}

// Open loads an existing run directory — its manifest and, when present, the
// latest checkpoint — and takes its exclusive owner lock. A directory held
// by another live process yields *LockedError (errors.Is ErrLocked) instead
// of silently sharing mutable checkpoint state.
func Open(dir string) (*Store, error) {
	return open(dir, true)
}

// OpenShared is Open without the exclusive owner lock, for cooperating
// ledger participants and read-only inspectors (progress, finalize).
func OpenShared(dir string) (*Store, error) {
	return open(dir, false)
}

func open(dir string, lock bool) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("store: %s holds no run manifest: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest in %s: %w", dir, err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("store: %s uses checkpoint format %d, this binary writes %d",
			dir, m.FormatVersion, FormatVersion)
	}
	if got := m.Hash(); got != m.SettingsHash {
		return nil, fmt.Errorf("store: manifest hash mismatch in %s (recorded %s, computed %s)",
			dir, m.SettingsHash, got)
	}
	s := &Store{dir: dir, manifest: m}
	if lock {
		if err := acquireLock(dir); err != nil {
			return nil, err
		}
		s.locked = true
	}

	cpData, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// A manifest without a checkpoint: the run died before its first
		// snapshot; resume restarts from the root.
	case err != nil:
		s.Close()
		return nil, fmt.Errorf("store: %w", err)
	default:
		var cp Checkpoint
		if err := json.Unmarshal(cpData, &cp); err != nil {
			s.Close()
			return nil, fmt.Errorf("store: corrupt checkpoint in %s: %w", dir, err)
		}
		s.cp = &cp
		s.seq = cp.Seq
	}
	return s, nil
}

// Dir returns the run directory path.
func (s *Store) Dir() string { return s.dir }

// Manifest returns the run's manifest.
func (s *Store) Manifest() Manifest { return s.manifest }

// Checkpoint returns the latest checkpoint loaded by Open, or nil for a
// fresh run.
func (s *Store) Checkpoint() *Checkpoint { return s.cp }

// Verify checks that the given manifest describes the same exploration as
// the stored one, returning ErrMismatch with the differing hash otherwise.
func (s *Store) Verify(m Manifest) error {
	m.FormatVersion = FormatVersion
	if got, want := m.Hash(), s.manifest.SettingsHash; got != want {
		return fmt.Errorf("%w: settings hash %s, run was created with %s", ErrMismatch, got, want)
	}
	return nil
}

// Save atomically persists a checkpoint, assigning it the next sequence
// number. The previous checkpoint is intact until the rename commits.
func (s *Store) Save(cp *Checkpoint) error {
	start := time.Now()
	s.seq++
	cp.Seq = s.seq
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(s.dir, checkpointFile, data); err != nil {
		return err
	}
	ms := float64(time.Since(start).Microseconds()) / 1000
	if s.saves != nil {
		s.saves.Inc()
		s.saveBytes.Add(int64(len(data)))
		s.saveMS.Observe(ms)
	}
	s.events.Emit(obs.Info, "checkpoint.write", map[string]any{
		"seq": cp.Seq, "bytes": len(data), "tasks": len(cp.Tasks),
		"dedup_entries": len(cp.Dedup), "ms": ms, "done": cp.Done,
	})
	return nil
}

// writeFileAtomic writes name under dir crash-safely: temp file in the same
// directory, fsync, rename, directory fsync.
func writeFileAtomic(dir, name string, data []byte) error {
	tmpName, err := writeTemp(dir, name, data)
	if err != nil {
		return err
	}
	defer os.Remove(tmpName) // no-op after a successful rename
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// WriteFileAtomic is the exported form of the store's crash-safe write
// discipline (temp file, fsync, rename, directory fsync) for subsystems
// layered over the run directory, e.g. the work ledger's lease renewals.
// The rename replaces any existing file.
func WriteFileAtomic(dir, name string, data []byte) error {
	return writeFileAtomic(dir, name, data)
}

// CreateExclusive commits name under dir if and only if no file with that
// name exists, with the same durability as WriteFileAtomic: the content is
// written and fsync'd to a temp file, then hard-linked to the target — link
// is atomic and fails with fs.ErrExist when the target appeared first, so N
// racing processes resolve to exactly one winner whose content is complete.
func CreateExclusive(dir, name string, data []byte) error {
	tmpName, err := writeTemp(dir, name, data)
	if err != nil {
		return err
	}
	defer os.Remove(tmpName)
	if err := os.Link(tmpName, filepath.Join(dir, name)); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return fmt.Errorf("store: %s: %w", name, fs.ErrExist)
		}
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// writeTemp writes data to a fresh temp file in dir, fsync'd and closed,
// returning its path. The caller commits it by rename or link.
func writeTemp(dir, name string, data []byte) (string, error) {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("store: %w", err)
	}
	return tmpName, nil
}

// ObsDir returns (creating if needed) the run directory's observability
// subdirectory, where ledger workers publish their fleet snapshots
// (worker-<id>.json) beside the manifest and the ledger itself.
func ObsDir(runDir string) (string, error) {
	dir := filepath.Join(runDir, obsDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	return dir, nil
}

// WorkerSnapshotName is the file-name convention for one worker's fleet
// snapshot under ObsDir. Worker ids follow the ledger's owner rules (no
// path separators), so the name is always a single path element.
func WorkerSnapshotName(worker string) string {
	return "worker-" + worker + ".json"
}

// ListWorkerSnapshots returns the sorted paths of every published worker
// snapshot in runDir's obs directory. A run with no obs directory (no
// snapshot-publishing worker ever joined) lists empty, not an error.
func ListWorkerSnapshots(runDir string) ([]string, error) {
	dir := filepath.Join(runDir, obsDirName)
	ents, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var paths []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "worker-") && strings.HasSuffix(name, ".json") &&
			!strings.Contains(name, ".tmp") {
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	return paths, nil
}

// syncDir fsyncs a directory so a just-committed rename or link survives a
// crash: the data was durable before the commit, the directory entry is
// durable after this.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
