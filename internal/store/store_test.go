package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dedup"
)

func testManifest() Manifest {
	return Manifest{
		Engine:          "explore.Engine/test",
		Protocol:        "figure3/staged(f=1,t=1)",
		Objects:         1,
		Inputs:          []int64{10, 11},
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
		Kind:            "overriding",
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	if s.Checkpoint() != nil {
		t.Fatal("fresh store has a checkpoint")
	}

	cp := &Checkpoint{
		Executions: 42,
		Tasks:      []Task{{Path: []int{1, 0}, Floor: 1}, {Path: nil, Floor: 0}},
		Dedup:      []dedup.Entry{{Hi: 1, Lo: 2, Path: []int{0}}},
		BestPath:   []int{0, 1, 1},
	}
	if err := s.Save(cp); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(cp); err != nil {
		t.Fatal(err)
	}

	o, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := o.Checkpoint()
	if got == nil {
		t.Fatal("no checkpoint loaded")
	}
	if got.Seq != 2 || got.Executions != 42 {
		t.Fatalf("checkpoint = %+v", got)
	}
	if len(got.Tasks) != 2 || got.Tasks[0].Floor != 1 {
		t.Fatalf("tasks = %+v", got.Tasks)
	}
	if len(got.Dedup) != 1 || got.Dedup[0].Hi != 1 {
		t.Fatalf("dedup = %+v", got.Dedup)
	}
	if o.Manifest().SettingsHash == "" {
		t.Fatal("manifest hash not recorded")
	}
	// A subsequent Save continues the sequence.
	if err := o.Save(&Checkpoint{}); err != nil {
		t.Fatal(err)
	}
	o2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Checkpoint().Seq != 3 {
		t.Fatalf("seq = %d, want 3", o2.Checkpoint().Seq)
	}
}

func TestCreateRefusesExistingRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	if _, err := Create(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, testManifest()); err == nil {
		t.Fatal("Create over an existing run must fail")
	}
}

func TestVerifyMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(testManifest()); err != nil {
		t.Fatalf("matching manifest rejected: %v", err)
	}
	changed := testManifest()
	changed.Inputs = []int64{10, 11, 12}
	if err := s.Verify(changed); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
	// Tuning fields do not participate in the hash.
	tuned := testManifest()
	tuned.MaxExecutions = 999
	tuned.Dedup = true
	if err := s.Verify(tuned); err != nil {
		t.Fatalf("tuning-only change rejected: %v", err)
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	_ = s

	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m.Inputs = []int64{1, 2, 3} // tamper without rehashing
	tampered, _ := json.Marshal(&m)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("err = %v, want hash mismatch", err)
	}
}

func TestOpenRejectsFutureFormat(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	if _, err := Create(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "manifest.json"))
	var m Manifest
	_ = json.Unmarshal(data, &m)
	m.FormatVersion = FormatVersion + 1
	tampered, _ := json.Marshal(&m)
	os.WriteFile(filepath.Join(dir, "manifest.json"), tampered, 0o644)
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("err = %v, want format rejection", err)
	}
}

// TestOpenRefusesLiveOwner: a run directory whose owner lock names a live
// process must be refused with the typed ErrLocked, not silently shared —
// two processes checkpointing into one directory would corrupt both runs.
func TestOpenRefusesLiveOwner(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	if _, err := Create(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	// Forge the lock as another live process: PID 1 always exists.
	rec, _ := json.Marshal(&ownerLock{PID: 1, CreatedAt: "2026-01-01T00:00:00Z"})
	if err := os.WriteFile(filepath.Join(dir, lockFile), rec, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v, want ErrLocked", err)
	}
	var le *LockedError
	if !errors.As(err, &le) || le.PID != 1 {
		t.Fatalf("err = %#v, want *LockedError naming PID 1", err)
	}
	// Shared handles never contend for the lock.
	if _, err := OpenShared(dir); err != nil {
		t.Fatalf("OpenShared under a foreign lock: %v", err)
	}
}

// TestOpenReplacesDeadOwnerLock: a lock left by a SIGKILLed process (its PID
// no longer exists) is stale debris, not a live claim; Open replaces it.
func TestOpenReplacesDeadOwnerLock(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	if _, err := Create(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	// A PID above the kernel's default pid_max cannot name a live process.
	rec, _ := json.Marshal(&ownerLock{PID: 1 << 30, CreatedAt: "2026-01-01T00:00:00Z"})
	if err := os.WriteFile(filepath.Join(dir, lockFile), rec, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open over a dead owner's lock: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	s, err := Create(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Save(&Checkpoint{Executions: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 3 {
		t.Fatalf("run dir holds %d files, want manifest + checkpoint + owner lock", len(entries))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("run dir holds %d files after Close, want manifest + checkpoint", len(entries))
	}
}
