// Package obs is the repository's dependency-free observability layer:
// named atomic counters, gauges, and bounded histograms collected in a
// Registry with a cheap JSON-ready Snapshot (metrics.go), a run-scoped
// structured event log written as JSONL with levels and monotonic
// timestamps (events.go), a live-introspection HTTP handler serving the
// snapshot, the latest progress, and net/http/pprof (http.go), and a
// machine-readable final run report (report.go).
//
// The package imports nothing outside the standard library and nothing
// from the rest of the repository, so every internal package — the
// exploration engine, the dedup cache, the run store, the experiment
// harness — can thread it through without import cycles.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically *accounted* atomic counter: Add accepts
// negative deltas so reservation patterns (claim an execution against a
// cap, release it when the replay turns out to be pruned) stay exact.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas release prior reservations).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// CompareAndSwap atomically replaces old with new. It exposes the
// reservation idiom — load, check against a cap, claim — without a
// second shadow counter next to the metric.
func (c *Counter) CompareAndSwap(old, new int64) bool { return c.v.CompareAndSwap(old, new) }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a bounded histogram over float64 observations: a fixed,
// ascending list of bucket upper bounds (inclusive, Prometheus "le"
// convention) plus one overflow bucket for observations above the last
// bound. Observations are lock-free; NaN observations are dropped (they
// carry no position on the axis), +Inf lands in the overflow bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

// NewHistogram returns a histogram with the given ascending upper bounds.
// It panics on empty or unsorted bounds — histogram shapes are static
// configuration, not data.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram with no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
	casFloat(&h.min, v, func(cur, v float64) bool { return v < cur })
	casFloat(&h.max, v, func(cur, v float64) bool { return v > cur })
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func casFloat(bits *atomic.Uint64, v float64, better func(cur, v float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old), v) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// observations may straddle the copy; each bucket is individually exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
	}
	return s
}

// HistogramSnapshot is the JSON-safe rendering of a histogram: bucket
// upper bounds plus per-bucket counts, where Counts has one more entry
// than Bounds — the overflow bucket (observations above the last bound).
// Infinities never appear in the encoding, so the snapshot always
// marshals.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket, clamped to the observed [Min, Max]. An
// empty histogram yields 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var seen int64
	for i, n := range s.Counts {
		if float64(seen+n) < rank {
			seen += n
			continue
		}
		lo := s.Min
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Max
		if i < len(s.Bounds) && s.Bounds[i] < hi {
			hi = s.Bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		if n == 0 {
			return hi
		}
		frac := (rank - float64(seen)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return s.Max
}

// Registry is a named collection of metrics. Lookups are get-or-create
// and idempotent: asking for the same name and kind returns the same
// metric, so independent layers can share counters by name alone.
// Registering one name as two different kinds panics — metric names are
// static configuration.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		r.checkFree(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.checkFree(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Func registers (or replaces) a derived gauge computed at snapshot time.
// fn must be safe for concurrent use and must not call back into the
// registry.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; !ok {
		r.checkFree(name, "func")
	}
	r.funcs[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls for the same name ignore the bounds
// and return the existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		r.checkFree(name, "histogram")
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// checkFree panics if name is already taken by another metric kind.
// Callers hold r.mu.
func (r *Registry) checkFree(name, kind string) {
	for taken, m := range map[string]bool{
		"counter":   r.counters[name] != nil,
		"gauge":     r.gauges[name] != nil,
		"func":      r.funcs[name] != nil,
		"histogram": r.hists[name] != nil,
	} {
		if m && taken != kind {
			panic("obs: metric " + name + " already registered as a " + taken)
		}
	}
}

// Snapshot is a point-in-time copy of every registered metric, shaped for
// JSON encoding. Derived (Func) gauges are folded into Gauges.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric. It is cheap — one lock acquisition and
// atomic loads — so callers may snapshot on every progress tick.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, fn := range r.funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
