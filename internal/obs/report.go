package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ReportSchema identifies the report format; consumers (scripts/bench.sh,
// dashboards) key on it before trusting any field.
const ReportSchema = "modelcheck-report/v1"

// Report is the machine-readable final run report written by
// `modelcheck -report out.json`: the verdict, the counterexample if one
// was found, the full metric snapshot, and the event-log type counts. It
// replaces stderr scraping as the interface between a run and the bench
// pipeline.
type Report struct {
	// Schema is always ReportSchema.
	Schema string `json:"schema"`
	// Run records the settings that produced the run (protocol, n, f, t,
	// fault kind, workers, ...), as flat strings for easy diffing.
	Run map[string]string `json:"run,omitempty"`
	// Verdict is the run outcome.
	Verdict Verdict `json:"verdict"`
	// Counterexample carries the violating execution when one was found
	// (driver-defined shape; modelcheck writes path/schedule/violation).
	Counterexample any `json:"counterexample,omitempty"`
	// Metrics is the full registry snapshot at the end of the run.
	Metrics Snapshot `json:"metrics"`
	// Events counts the event-log records written, per type.
	Events map[string]int64 `json:"events,omitempty"`
	// Fleet, for ledger finalizes, embeds the fleet observability view
	// (schema modelcheck-fleet-report/v1: per-worker liveness, merged
	// metrics, anomalies). Typed any so obs stays dependency-free; the
	// concrete shape is internal/obs/fleet.View.
	Fleet any `json:"fleet,omitempty"`
}

// Verdict is the outcome section of a Report.
type Verdict struct {
	// Result is "verified", "violation", or "incomplete" (cap or deadline
	// hit before the tree was exhausted).
	Result string `json:"result"`
	// Complete reports a full enumeration of the execution tree.
	Complete bool `json:"complete"`
	// Executions is the number of completed replays.
	Executions int64 `json:"executions"`
	// Violations is the number of violating executions seen.
	Violations int64 `json:"violations"`
	// Workers is the engine's parallelism.
	Workers int `json:"workers"`
	// MaxProcSteps and MaxFaults are the per-run extremes observed.
	MaxProcSteps int `json:"max_proc_steps"`
	MaxFaults    int `json:"max_faults"`
	// ElapsedNS is the exploration wall clock (across resumes).
	ElapsedNS int64 `json:"elapsed_ns"`
	// FirstViolationNS is the latency to the first violation (0 if none).
	FirstViolationNS int64 `json:"first_violation_ns,omitempty"`
	// Violation names the violated requirement ("" when none).
	Violation string `json:"violation,omitempty"`
}

// Validate checks the report against its documented schema: the schema
// tag, a known result string, internally consistent counts, and — when
// per-worker execution counters are present — that they sum to the
// reported Executions (restored checkpoint executions accounted via the
// explore.executions.restored counter).
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("obs: report schema %q, want %q", r.Schema, ReportSchema)
	}
	switch r.Verdict.Result {
	case "verified", "violation", "incomplete":
	default:
		return fmt.Errorf("obs: unknown verdict result %q", r.Verdict.Result)
	}
	if r.Verdict.Result == "violation" && r.Verdict.Violations == 0 {
		return fmt.Errorf("obs: violation verdict with zero violations")
	}
	if r.Verdict.Executions < 0 {
		return fmt.Errorf("obs: negative executions %d", r.Verdict.Executions)
	}
	var workerSum int64
	var haveWorkers bool
	for name, v := range r.Metrics.Counters {
		if strings.HasPrefix(name, "explore.worker.") && strings.HasSuffix(name, ".executions") {
			workerSum += v
			haveWorkers = true
		}
	}
	if haveWorkers {
		workerSum += r.Metrics.Counters["explore.executions.restored"]
		if workerSum != r.Verdict.Executions {
			return fmt.Errorf("obs: per-worker executions sum to %d, verdict reports %d",
				workerSum, r.Verdict.Executions)
		}
	}
	return nil
}

// WriteReport validates the report and writes it, pretty-printed, to path.
func WriteReport(path string, r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
