package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/store"
)

// synthetic fleet fixture: one healthy fast worker, one stale worker, one
// slow straggler holding a claim past 5×TTL, plus an expired and a
// nearly-expired lease — every Build anomaly rule fires exactly once.
const ttl = time.Second

var now = time.Unix(100, 0)

func worker(id string, heartbeatAge, uptime time.Duration, execs int64, claim *obs.ClaimInfo) *obs.WorkerSnapshot {
	reg := obs.NewRegistry()
	reg.Counter("explore.executions").Add(execs)
	hb := now.Add(-heartbeatAge)
	return &obs.WorkerSnapshot{
		Schema:            obs.WorkerSnapshotSchema,
		Worker:            id,
		PID:               1000,
		LedgerEpoch:       1,
		StartedUnixNano:   hb.Add(-uptime).UnixNano(),
		HeartbeatUnixNano: hb.UnixNano(),
		Claim:             claim,
		Metrics:           reg.Snapshot(),
	}
}

func syntheticView() *View {
	st := &ledger.RunStatus{
		LedgerEpoch: 1,
		LeaseTTLNS:  int64(ttl),
		LeasesLive:  1, LeasesExpired: 1,
		Leases: []ledger.LeaseStatus{
			{ID: "0001", Owner: "worker-b", Epoch: 1, Expired: true,
				ExpiresUnixNano: now.Add(-2 * time.Second).UnixNano()},
			{ID: "0002", Owner: "worker-c", Epoch: 1,
				ExpiresUnixNano: now.Add(ttl / 8).UnixNano()},
		},
		MergedExecutions: 900,
	}
	snaps := []*obs.WorkerSnapshot{
		// listed out of order on purpose: Build must sort by worker id
		worker("worker-c", 100*time.Millisecond, 10*time.Second, 20, &obs.ClaimInfo{
			ID: "0002", Epoch: 1,
			StartedUnixNano:      now.Add(-6 * time.Second).UnixNano(),
			LeaseExpiresUnixNano: now.Add(ttl / 8).UnixNano(),
		}),
		worker("worker-a", 100*time.Millisecond, 10*time.Second, 1000, nil),
		worker("worker-b", 2*time.Second, 5*time.Second, 100, nil),
	}
	return Build("run", st, snaps, now)
}

func anomaliesByRule(v *View) map[string][]Anomaly {
	m := map[string][]Anomaly{}
	for _, a := range v.Anomalies {
		m[a.Rule] = append(m[a.Rule], a)
	}
	return m
}

func TestBuildLivenessAndMerge(t *testing.T) {
	v := syntheticView()
	if v.Schema != ReportSchema || v.LeaseTTLNS != int64(ttl) {
		t.Errorf("schema/ttl = %q/%d", v.Schema, v.LeaseTTLNS)
	}
	if len(v.Workers) != 3 || v.Live != 2 || v.Stale != 1 {
		t.Fatalf("workers = %d (live %d, stale %d)", len(v.Workers), v.Live, v.Stale)
	}
	for i, want := range []string{"worker-a", "worker-b", "worker-c"} {
		if v.Workers[i].Worker != want {
			t.Errorf("workers[%d] = %s, want %s (sorted)", i, v.Workers[i].Worker, want)
		}
	}
	a, b, c := v.Workers[0], v.Workers[1], v.Workers[2]
	if a.Stale || !b.Stale || c.Stale {
		t.Errorf("staleness = %v/%v/%v, want live/STALE/live", a.Stale, b.Stale, c.Stale)
	}
	if a.Rate != 100 {
		t.Errorf("a.Rate = %v, want 100/sec (1000 executions over 10s uptime)", a.Rate)
	}
	if c.Claim == nil || c.ClaimAgeNS != int64(6*time.Second) {
		t.Errorf("c claim age = %d", c.ClaimAgeNS)
	}
	if v.Merged.Counters["explore.executions"] != 1120 {
		t.Errorf("merged executions = %d, want 1120", v.Merged.Counters["explore.executions"])
	}
}

func TestBuildAnomalyRules(t *testing.T) {
	v := syntheticView()
	rules := anomaliesByRule(v)
	for rule, wantWorker := range map[string]string{
		RuleWorkerStale:     "worker-b",
		RuleLeaseExpired:    "worker-b",
		RuleLeaseNearExpiry: "worker-c",
		RuleClaimLong:       "worker-c",
		RuleRateSkew:        "worker-c", // slowest live worker is named
	} {
		got := rules[rule]
		if len(got) != 1 {
			t.Errorf("rule %s fired %d times, want 1: %+v", rule, len(got), got)
			continue
		}
		if got[0].Worker != wantWorker {
			t.Errorf("rule %s names %s, want %s", rule, got[0].Worker, wantWorker)
		}
	}
	if len(v.Anomalies) != 5 {
		t.Errorf("anomalies = %d, want exactly 5: %+v", len(v.Anomalies), v.Anomalies)
	}
}

// TestBuildQuietFleet: a healthy fleet — fresh heartbeats, comparable
// rates, no troubled leases — yields zero anomalies.
func TestBuildQuietFleet(t *testing.T) {
	st := &ledger.RunStatus{LedgerEpoch: 1, LeaseTTLNS: int64(ttl)}
	snaps := []*obs.WorkerSnapshot{
		worker("a", 100*time.Millisecond, 10*time.Second, 500, nil),
		worker("b", 200*time.Millisecond, 10*time.Second, 400, nil),
	}
	v := Build("run", st, snaps, now)
	if len(v.Anomalies) != 0 {
		t.Errorf("quiet fleet flagged: %+v", v.Anomalies)
	}
	if v.Live != 2 || v.Stale != 0 {
		t.Errorf("live/stale = %d/%d", v.Live, v.Stale)
	}
}

// TestBuildRateSkewIgnoresStale: a frozen heartbeat makes a stale worker's
// rate an artifact; only live workers may trip the skew rule.
func TestBuildRateSkewIgnoresStale(t *testing.T) {
	st := &ledger.RunStatus{LedgerEpoch: 1, LeaseTTLNS: int64(ttl)}
	snaps := []*obs.WorkerSnapshot{
		worker("fast", 100*time.Millisecond, 10*time.Second, 1000, nil),
		worker("frozen", 10*time.Second, 10*time.Second, 10, nil), // stale, rate 1/sec
	}
	v := Build("run", st, snaps, now)
	if rules := anomaliesByRule(v); len(rules[RuleRateSkew]) != 0 {
		t.Errorf("rate skew against a stale worker: %+v", rules[RuleRateSkew])
	}
}

func TestDashboardRendering(t *testing.T) {
	v := syntheticView()
	d := v.Dashboard()
	for _, want := range []string{
		"ledger epoch 1", "lease TTL 1s",
		"workers: 2 live, 1 stale",
		"worker-b", "STALE",
		"claim 0002@e1",
		"merged: 1120 executions",
		"anomalies: 5",
		"[" + RuleWorkerStale + "]", "[" + RuleRateSkew + "]",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("dashboard missing %q:\n%s", want, d)
		}
	}

	quiet := Build("run", &ledger.RunStatus{LeaseTTLNS: int64(ttl)}, nil, now)
	if d := quiet.Dashboard(); !strings.Contains(d, "anomalies: none") {
		t.Errorf("quiet dashboard:\n%s", d)
	}
}

// TestLoadNoLedger: fleet status of a directory that never hosted a ledger
// is ledger.ErrNoLedger, so the CLI can say so instead of rendering an
// empty fleet.
func TestLoadNoLedger(t *testing.T) {
	if _, err := Load(t.TempDir()); !errors.Is(err, ledger.ErrNoLedger) {
		t.Errorf("Load on a bare directory = %v, want ErrNoLedger", err)
	}
}

// TestLoadFlagsUnreadableSnapshots: debris in <run>/obs must surface as a
// snapshot-unreadable anomaly, not kill the whole view.
func TestLoadFlagsUnreadableSnapshots(t *testing.T) {
	runDir := t.TempDir()
	if _, _, err := ledger.Join(runDir, "w", time.Second); err != nil {
		t.Fatal(err)
	}
	dir, err := store.ObsDir(runDir)
	if err != nil {
		t.Fatal(err)
	}
	ws := &obs.WorkerSnapshot{
		Schema: obs.WorkerSnapshotSchema, Worker: "w", PID: 1,
		HeartbeatUnixNano: time.Now().UnixNano(),
		Metrics:           obs.NewRegistry().Snapshot(),
	}
	data, err := ws.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, store.WorkerSnapshotName("w")), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "worker-junk.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	v, err := Load(runDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Workers) != 1 || v.Workers[0].Worker != "w" {
		t.Fatalf("workers = %+v", v.Workers)
	}
	rules := anomaliesByRule(v)
	if len(rules[RuleSnapshotUnreadable]) != 1 {
		t.Errorf("unreadable anomalies = %+v", v.Anomalies)
	}
}

// TestStatusCache: within maxAge every caller gets the same status without
// rescanning; after expiry the next call observes fresh ledger state.
func TestStatusCache(t *testing.T) {
	runDir := t.TempDir()
	if _, _, err := ledger.Join(runDir, "w", time.Second); err != nil {
		t.Fatal(err)
	}
	c := NewStatusCache(runDir, 200*time.Millisecond)
	st1, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Error("second read within maxAge rescanned")
	}
	time.Sleep(250 * time.Millisecond)
	st3, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st3 == st1 {
		t.Error("read after maxAge still served the stale pointer")
	}
}

// TestStatusCacheCachesErrors: a missing ledger must not turn every
// progress tick into a directory scan; the error is memoized too.
func TestStatusCacheCachesErrors(t *testing.T) {
	c := NewStatusCache(t.TempDir(), time.Minute)
	_, err1 := c.Status()
	if !errors.Is(err1, ledger.ErrNoLedger) {
		t.Fatalf("err = %v", err1)
	}
	if _, err2 := c.Status(); !errors.Is(err2, ledger.ErrNoLedger) {
		t.Errorf("cached err = %v", err2)
	}
}

// TestAttachEndpoints: /fleet serves the JSON view, /fleet/dashboard the
// text rendering, and both answer 503 when the run has no ledger.
func TestAttachEndpoints(t *testing.T) {
	runDir := t.TempDir()
	if _, _, err := ledger.Join(runDir, "w", time.Second); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	Attach(mux, runDir)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("/fleet: %v", err)
	}
	if v.Schema != ReportSchema || v.Ledger == nil {
		t.Errorf("/fleet view = %+v", v)
	}

	resp, err = http.Get(srv.URL + "/fleet/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "fleet "+runDir) {
		t.Errorf("/fleet/dashboard:\n%s", body[:n])
	}

	bare := http.NewServeMux()
	Attach(bare, t.TempDir())
	bareSrv := httptest.NewServer(bare)
	defer bareSrv.Close()
	resp, err = http.Get(bareSrv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/fleet without a ledger: %d, want 503", resp.StatusCode)
	}
}
