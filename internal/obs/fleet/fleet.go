// Package fleet aggregates a distributed exploration's per-worker
// observability into one view. Each ledger worker periodically publishes
// an atomic snapshot of itself — registry dump, heartbeat, current claim —
// into the shared run directory (<run>/obs/worker-<id>.json, written by
// the engine's snapshot publisher via store.WriteFileAtomic); this package
// merges those snapshots with the ledger's own read-only RunStatus into a
// fleet View: summed counters, merged histograms, per-worker liveness
// derived from heartbeat age vs the lease TTL, and flagged anomalies
// (stale workers, leases near expiry, claim-duration outliers, throughput
// skew).
//
// The aggregation is entirely file-based: it needs no worker alive and no
// network, so the same View backs three consumers — the /fleet and
// /fleet/dashboard endpoints on a live worker's obs.Handler, the one-shot
// `modelcheck -fleet-status` CLI, and the fleet section embedded into the
// finalize report.
package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/store"
)

// ReportSchema identifies the fleet view format (also the schema of the
// "fleet" section a ledger finalize embeds into its -report).
const ReportSchema = "modelcheck-fleet-report/v1"

// Anomaly rule names. Each names one observable failure of fleet health;
// Detail carries the human-readable specifics.
const (
	// RuleWorkerStale: a worker's snapshot heartbeat is older than the
	// lease TTL — the process is dead, stopped, or starved. Its claims
	// are about to be (or already were) reaped.
	RuleWorkerStale = "worker-stale"
	// RuleLeaseExpired: a lease sits past its deadline with no result —
	// its subtree is unclaimable until a surviving worker reaps it.
	RuleLeaseExpired = "lease-expired"
	// RuleLeaseNearExpiry: a live lease is within TTL/4 of its deadline.
	// Healthy holders renew at TTL/3 and so never drop below 2·TTL/3
	// remaining; a shrinking margin means missed renewals.
	RuleLeaseNearExpiry = "lease-near-expiry"
	// RuleClaimLong: a worker has held one claim for more than 5× the
	// TTL — a straggler subtree that will gate the drain.
	RuleClaimLong = "claim-long"
	// RuleRateSkew: among live workers the fastest outpaces the slowest
	// by more than 4× — a load-balance or host-health imbalance.
	RuleRateSkew = "rate-skew"
	// RuleSnapshotUnreadable: a worker-<id>.json exists but does not
	// decode — wrong schema or foreign debris in the obs directory.
	RuleSnapshotUnreadable = "snapshot-unreadable"
)

// Anomaly is one flagged fleet-health finding.
type Anomaly struct {
	Rule   string `json:"rule"`
	Worker string `json:"worker,omitempty"`
	Claim  string `json:"claim,omitempty"`
	Detail string `json:"detail"`
}

// Worker is one participant's row in the fleet view.
type Worker struct {
	Worker string `json:"worker"`
	PID    int    `json:"pid"`
	// Stale reports a heartbeat older than the lease TTL.
	Stale          bool  `json:"stale"`
	HeartbeatAgeNS int64 `json:"heartbeat_age_ns"`
	UptimeNS       int64 `json:"uptime_ns"`
	// Executions and Violations are this worker's registry counters
	// (explore.executions / explore.violations) at its last heartbeat.
	Executions int64 `json:"executions"`
	Violations int64 `json:"violations"`
	// Rate is executions per second over the worker's uptime.
	Rate float64 `json:"rate"`
	// Claim is the subtree the worker was enumerating at its last
	// heartbeat (nil between claims), ClaimAgeNS how long it has held it.
	Claim      *obs.ClaimInfo `json:"claim,omitempty"`
	ClaimAgeNS int64          `json:"claim_age_ns,omitempty"`
}

// View is the merged fleet picture at one instant.
type View struct {
	Schema            string `json:"schema"`
	RunDir            string `json:"run_dir"`
	GeneratedUnixNano int64  `json:"generated_unix_nano"`
	LedgerEpoch       int64  `json:"ledger_epoch"`
	LeaseTTLNS        int64  `json:"lease_ttl_ns"`
	// Workers lists every published snapshot, sorted by worker id; Live
	// and Stale partition them by heartbeat age vs TTL.
	Workers []Worker `json:"workers"`
	Live    int      `json:"live"`
	Stale   int      `json:"stale"`
	// Merged is the fleet-wide metric fold over every worker snapshot
	// (obs.MergeSnapshots: counters summed, same-shape histograms merged).
	Merged obs.Snapshot `json:"merged"`
	// Ledger is the run's read-only ledger status: pending tasks, lease
	// liveness, and the merged totals over published results — the
	// authoritative execution count (worker counters also tally claims
	// that were later fenced and re-run).
	Ledger    *ledger.RunStatus `json:"ledger"`
	Anomalies []Anomaly         `json:"anomalies,omitempty"`
}

// Load builds the fleet view of runDir from its published worker
// snapshots and ledger status. It never mutates the run directory and
// needs no live worker; a run whose ledger marker is missing fails with
// ledger.ErrNoLedger.
func Load(runDir string) (*View, error) {
	st, err := ledger.Status(runDir)
	if err != nil {
		return nil, err
	}
	paths, err := store.ListWorkerSnapshots(runDir)
	if err != nil {
		return nil, err
	}
	var snaps []*obs.WorkerSnapshot
	var unreadable []Anomaly
	for _, p := range paths {
		ws, err := obs.LoadSnapshot(p)
		if err != nil {
			unreadable = append(unreadable, Anomaly{
				Rule: RuleSnapshotUnreadable, Detail: err.Error(),
			})
			continue
		}
		snaps = append(snaps, ws)
	}
	v := Build(runDir, st, snaps, time.Now())
	v.Anomalies = append(v.Anomalies, unreadable...)
	return v, nil
}

// Build folds the ledger status and worker snapshots into a View at the
// given instant. Pure — no filesystem, no clock — so every anomaly rule is
// testable with synthetic inputs.
func Build(runDir string, st *ledger.RunStatus, snaps []*obs.WorkerSnapshot, now time.Time) *View {
	ttl := time.Duration(st.LeaseTTLNS)
	if ttl <= 0 {
		ttl = ledger.DefaultTTL
	}
	v := &View{
		Schema:            ReportSchema,
		RunDir:            runDir,
		GeneratedUnixNano: now.UnixNano(),
		LedgerEpoch:       st.LedgerEpoch,
		LeaseTTLNS:        int64(ttl),
		Ledger:            st,
	}

	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Worker < snaps[j].Worker })
	metrics := make([]obs.Snapshot, 0, len(snaps))
	for _, ws := range snaps {
		w := Worker{
			Worker:         ws.Worker,
			PID:            ws.PID,
			HeartbeatAgeNS: now.UnixNano() - ws.HeartbeatUnixNano,
			UptimeNS:       ws.HeartbeatUnixNano - ws.StartedUnixNano,
			Executions:     ws.Metrics.Counters["explore.executions"],
			Violations:     ws.Metrics.Counters["explore.violations"],
			Claim:          ws.Claim,
		}
		w.Stale = w.HeartbeatAgeNS > int64(ttl)
		if secs := float64(w.UptimeNS) / float64(time.Second); secs > 0 {
			w.Rate = float64(w.Executions) / secs
		}
		if ws.Claim != nil {
			w.ClaimAgeNS = now.UnixNano() - ws.Claim.StartedUnixNano
		}
		if w.Stale {
			v.Stale++
			v.Anomalies = append(v.Anomalies, Anomaly{
				Rule: RuleWorkerStale, Worker: w.Worker,
				Detail: fmt.Sprintf("heartbeat %s old (TTL %s)",
					time.Duration(w.HeartbeatAgeNS).Round(time.Millisecond), ttl),
			})
		} else {
			v.Live++
		}
		if w.ClaimAgeNS > 5*int64(ttl) {
			v.Anomalies = append(v.Anomalies, Anomaly{
				Rule: RuleClaimLong, Worker: w.Worker, Claim: ws.Claim.ID,
				Detail: fmt.Sprintf("claim held %s (> 5×TTL %s)",
					time.Duration(w.ClaimAgeNS).Round(time.Millisecond), ttl),
			})
		}
		v.Workers = append(v.Workers, w)
		metrics = append(metrics, ws.Metrics)
	}
	v.Merged = obs.MergeSnapshots(metrics...)

	for _, ls := range st.Leases {
		if ls.Expired {
			v.Anomalies = append(v.Anomalies, Anomaly{
				Rule: RuleLeaseExpired, Worker: ls.Owner, Claim: ls.ID,
				Detail: fmt.Sprintf("lease expired %s ago, subtree awaiting reap",
					time.Duration(now.UnixNano()-ls.ExpiresUnixNano).Round(time.Millisecond)),
			})
			continue
		}
		if left := ls.ExpiresUnixNano - now.UnixNano(); left < int64(ttl)/4 {
			v.Anomalies = append(v.Anomalies, Anomaly{
				Rule: RuleLeaseNearExpiry, Worker: ls.Owner, Claim: ls.ID,
				Detail: fmt.Sprintf("lease expires in %s (< TTL/4 of %s); renewals are being missed",
					time.Duration(left).Round(time.Millisecond), ttl),
			})
		}
	}

	// Rate skew compares live workers only (a stale worker's rate is an
	// artifact of its frozen heartbeat) and needs at least two of them.
	var fastest, slowest *Worker
	for i := range v.Workers {
		w := &v.Workers[i]
		if w.Stale || w.Rate <= 0 {
			continue
		}
		if fastest == nil || w.Rate > fastest.Rate {
			fastest = w
		}
		if slowest == nil || w.Rate < slowest.Rate {
			slowest = w
		}
	}
	if fastest != nil && slowest != nil && fastest != slowest && fastest.Rate > 4*slowest.Rate {
		v.Anomalies = append(v.Anomalies, Anomaly{
			Rule: RuleRateSkew, Worker: slowest.Worker,
			Detail: fmt.Sprintf("%s runs %.0f executions/sec, %s only %.0f (> 4× skew)",
				fastest.Worker, fastest.Rate, slowest.Worker, slowest.Rate),
		})
	}
	return v
}

// Dashboard renders the view as the human-readable text served at
// /fleet/dashboard and printed by `modelcheck -fleet-status`.
func (v *View) Dashboard() string {
	var b strings.Builder
	ttl := time.Duration(v.LeaseTTLNS)
	fmt.Fprintf(&b, "fleet %s (ledger epoch %d, lease TTL %s)\n", v.RunDir, v.LedgerEpoch, ttl)
	if st := v.Ledger; st != nil {
		fmt.Fprintf(&b, "ledger: %d task(s) pending, %d live / %d expired lease(s), %d result(s) merged (%d executions, %d violations), drained: %v\n",
			st.TasksPending, st.LeasesLive, st.LeasesExpired, st.Results,
			st.MergedExecutions, st.MergedViolations, st.Drained)
	}
	fmt.Fprintf(&b, "workers: %d live, %d stale\n", v.Live, v.Stale)
	for _, w := range v.Workers {
		state := "live"
		if w.Stale {
			state = "STALE"
		}
		fmt.Fprintf(&b, "  %-20s %-5s pid %-7d heartbeat %8s ago  %10d executions  %8.0f/sec",
			w.Worker, state, w.PID,
			time.Duration(w.HeartbeatAgeNS).Round(time.Millisecond),
			w.Executions, w.Rate)
		if w.Claim != nil {
			fmt.Fprintf(&b, "  claim %s@e%d for %s",
				w.Claim.ID, w.Claim.Epoch, time.Duration(w.ClaimAgeNS).Round(time.Millisecond))
		}
		b.WriteByte('\n')
	}
	if execs, ok := v.Merged.Counters["explore.executions"]; ok {
		fmt.Fprintf(&b, "merged: %d executions, %d violations across %d snapshot(s)\n",
			execs, v.Merged.Counters["explore.violations"], len(v.Workers))
	}
	if len(v.Anomalies) == 0 {
		b.WriteString("anomalies: none\n")
	} else {
		fmt.Fprintf(&b, "anomalies: %d\n", len(v.Anomalies))
		for _, a := range v.Anomalies {
			fmt.Fprintf(&b, "  [%s]", a.Rule)
			if a.Worker != "" {
				fmt.Fprintf(&b, " worker %s", a.Worker)
			}
			if a.Claim != "" {
				fmt.Fprintf(&b, " claim %s", a.Claim)
			}
			fmt.Fprintf(&b, ": %s\n", a.Detail)
		}
	}
	return b.String()
}

// StatusCache memoizes ledger.Status for consumers that poll it — the
// -progress fleet line ticks every couple of seconds, and a full Status is
// a directory scan that grows with task and result count. Within maxAge
// every caller gets the cached status; after it, the first caller rescans.
type StatusCache struct {
	dir    string
	maxAge time.Duration

	mu  sync.Mutex
	at  time.Time
	st  *ledger.RunStatus
	err error
}

// NewStatusCache returns a cache over runDir's ledger status, serving
// reads up to maxAge old (0 means one second).
func NewStatusCache(runDir string, maxAge time.Duration) *StatusCache {
	if maxAge <= 0 {
		maxAge = time.Second
	}
	return &StatusCache{dir: runDir, maxAge: maxAge}
}

// Status returns the (possibly cached) ledger status. Errors are cached
// for the same maxAge — a torn-down ledger must not turn every progress
// tick back into a directory scan.
func (c *StatusCache) Status() (*ledger.RunStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.at.IsZero() && time.Since(c.at) < c.maxAge {
		return c.st, c.err
	}
	c.st, c.err = ledger.Status(c.dir)
	c.at = time.Now()
	return c.st, c.err
}

// Attach registers the fleet endpoints on a live worker's obs.Handler mux:
//
//	/fleet            the View as JSON
//	/fleet/dashboard  the View as Dashboard() text
//
// Both rebuild the view from the run directory per request — the files are
// the source of truth, so every worker serves the same fleet regardless of
// which one answers. A run whose ledger is missing answers 503.
func Attach(mux *http.ServeMux, runDir string) {
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		v, err := Load(runDir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		obs.WriteHTTPJSON(w, v)
	})
	mux.HandleFunc("/fleet/dashboard", func(w http.ResponseWriter, r *http.Request) {
		v, err := Load(runDir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, v.Dashboard()) //nolint:errcheck // a failed write is the client's problem
	})
}
