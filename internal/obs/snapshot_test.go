package obs

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleSnapshot() *WorkerSnapshot {
	reg := NewRegistry()
	reg.Counter("explore.executions").Add(42)
	reg.Counter("explore.violations").Add(1)
	reg.Gauge("explore.workers").Set(4)
	h := reg.Histogram("explore.claim.paths", 1, 2, 4, 8)
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	return &WorkerSnapshot{
		Schema:            WorkerSnapshotSchema,
		Worker:            "worker-a",
		PID:               12345,
		LedgerEpoch:       2,
		StartedUnixNano:   1_000,
		HeartbeatUnixNano: 2_000,
		Claim: &ClaimInfo{
			ID: "0041", Epoch: 3, StartedUnixNano: 1_500, LeaseExpiresUnixNano: 7_000,
		},
		Metrics: reg.Snapshot(),
	}
}

// TestWorkerSnapshotRoundTrip: Encode and LoadSnapshot are inverses, so a
// fleet reader reconstructs exactly what the worker published — registry
// counters, histogram buckets, claim, and all.
func TestWorkerSnapshotRoundTrip(t *testing.T) {
	ws := sampleSnapshot()
	data, err := ws.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "worker-a.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ws) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, ws)
	}
	if got.Metrics.Counters["explore.executions"] != 42 {
		t.Errorf("executions = %d", got.Metrics.Counters["explore.executions"])
	}
	h := got.Metrics.Histograms["explore.claim.paths"]
	if h.Count != 3 || h.Counts[len(h.Counts)-1] != 1 {
		t.Errorf("histogram through JSON: %+v", h)
	}
}

// TestWorkerSnapshotValidate: a snapshot that lies about its schema, lacks
// a worker id, or never heartbeat must be rejected at both encode and load.
func TestWorkerSnapshotValidate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*WorkerSnapshot)
	}{
		{"wrong schema", func(ws *WorkerSnapshot) { ws.Schema = "modelcheck-worker/v0" }},
		{"empty worker", func(ws *WorkerSnapshot) { ws.Worker = "" }},
		{"zero heartbeat", func(ws *WorkerSnapshot) { ws.HeartbeatUnixNano = 0 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ws := sampleSnapshot()
			tc.mutate(ws)
			if _, err := ws.Encode(); err == nil {
				t.Error("Encode accepted an invalid snapshot")
			}
		})
	}
}

// TestLoadSnapshotRejectsDebris: missing files and non-snapshot JSON both
// fail loudly — the fleet aggregator turns these into anomalies, not rows.
func TestLoadSnapshotRejectsDebris(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSnapshot(filepath.Join(dir, "worker-x.json")); err == nil {
		t.Error("loaded a missing snapshot")
	}
	bad := filepath.Join(dir, "worker-y.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(bad); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt snapshot error = %v", err)
	}
	foreign := filepath.Join(dir, "worker-z.json")
	if err := os.WriteFile(foreign, []byte(`{"schema":"something-else/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(foreign); err == nil {
		t.Error("loaded a foreign-schema snapshot")
	}
}

// TestHistogramBoundEdges pins the bucket convention the fleet merge
// depends on: bounds are inclusive upper edges (Prometheus "le"), values
// above the last bound and +Inf land in the overflow bucket, NaN is
// dropped entirely.
func TestHistogramBoundEdges(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	h.Observe(0.5)          // below first bound -> bucket 0
	h.Observe(1)            // exactly on a bound is inclusive -> bucket 0
	h.Observe(2)            // -> bucket 1
	h.Observe(4)            // exactly the last bound -> bucket 2, not overflow
	h.Observe(4.0001)       // just above -> overflow
	h.Observe(math.Inf(1))  // +Inf -> overflow
	h.Observe(math.NaN())   // dropped
	h.Observe(math.Inf(-1)) // -Inf -> bucket 0

	s := h.Snapshot()
	wantCounts := []int64{3, 1, 1, 2}
	if !reflect.DeepEqual(s.Counts, wantCounts) {
		t.Errorf("counts = %v, want %v", s.Counts, wantCounts)
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7 (NaN dropped)", s.Count)
	}
	if !math.IsInf(s.Min, -1) || !math.IsInf(s.Max, 1) {
		t.Errorf("extremes = [%v, %v]", s.Min, s.Max)
	}
}

// TestMergeSnapshots: counters and gauges sum by name; histograms with
// identical bounds merge bucket-wise with Min/Max folded over workers that
// observed anything.
func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	a.Counter("explore.executions").Add(10)
	a.Counter("only.a").Add(1)
	a.Gauge("explore.workers").Set(2)
	ha := a.Histogram("depth", 1, 2, 4)
	ha.Observe(1)
	ha.Observe(3)

	b := NewRegistry()
	b.Counter("explore.executions").Add(32)
	b.Gauge("explore.workers").Set(3)
	hb := b.Histogram("depth", 1, 2, 4)
	hb.Observe(0.5)
	hb.Observe(9)

	m := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if m.Counters["explore.executions"] != 42 || m.Counters["only.a"] != 1 {
		t.Errorf("counters = %v", m.Counters)
	}
	if m.Gauges["explore.workers"] != 5 {
		t.Errorf("gauges = %v", m.Gauges)
	}
	h, ok := m.Histograms["depth"]
	if !ok {
		t.Fatal("depth histogram missing from merge")
	}
	if h.Count != 4 || h.Sum != 13.5 {
		t.Errorf("merged count/sum = %d/%v", h.Count, h.Sum)
	}
	if want := []int64{2, 0, 1, 1}; !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("merged counts = %v, want %v", h.Counts, want)
	}
	if h.Min != 0.5 || h.Max != 9 {
		t.Errorf("merged extremes = [%v, %v], want [0.5, 9]", h.Min, h.Max)
	}
}

// TestMergeSnapshotsEmptySide: an idle worker's zero-valued histogram
// extremes must not clamp the fleet's Min/Max.
func TestMergeSnapshotsEmptySide(t *testing.T) {
	busy := NewRegistry()
	h := busy.Histogram("depth", 1, 2)
	h.Observe(1.5)
	idle := NewRegistry()
	idle.Histogram("depth", 1, 2) // registered, never observed

	for _, order := range [][]Snapshot{
		{busy.Snapshot(), idle.Snapshot()},
		{idle.Snapshot(), busy.Snapshot()},
	} {
		m := MergeSnapshots(order...)
		got := m.Histograms["depth"]
		if got.Count != 1 || got.Min != 1.5 || got.Max != 1.5 {
			t.Errorf("merge with empty side: %+v", got)
		}
	}
}

// TestMergeSnapshotsMismatchedBounds: two shapes cannot be summed honestly,
// so a histogram whose bounds disagree across workers is omitted — from
// every snapshot, including ones seen after the mismatch.
func TestMergeSnapshotsMismatchedBounds(t *testing.T) {
	a := NewRegistry()
	a.Histogram("depth", 1, 2, 4).Observe(1)
	a.Histogram("keep", 10).Observe(5)
	b := NewRegistry()
	b.Histogram("depth", 1, 2, 8).Observe(1)
	c := NewRegistry()
	c.Histogram("depth", 1, 2, 4).Observe(2)

	m := MergeSnapshots(a.Snapshot(), b.Snapshot(), c.Snapshot())
	if _, ok := m.Histograms["depth"]; ok {
		t.Error("mismatched-bounds histogram survived the merge")
	}
	if m.Histograms["keep"].Count != 1 {
		t.Errorf("unrelated histogram lost: %+v", m.Histograms)
	}
}

// TestMergeSnapshotsDoesNotAliasInputs: the merge must deep-copy bucket
// slices — mutating the merged view must never write through to a worker's
// snapshot (or vice versa).
func TestMergeSnapshotsDoesNotAliasInputs(t *testing.T) {
	a := NewRegistry()
	a.Histogram("depth", 1, 2).Observe(1)
	in := a.Snapshot()
	m := MergeSnapshots(in)
	m.Histograms["depth"].Counts[0] = 99
	if in.Histograms["depth"].Counts[0] == 99 {
		t.Error("merged histogram aliases the input's bucket slice")
	}
}
