package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// WorkerSnapshotSchema identifies the per-worker fleet snapshot format;
// the fleet aggregator keys on it before trusting any field.
const WorkerSnapshotSchema = "modelcheck-worker/v1"

// ClaimInfo describes the ledger claim a worker currently holds. Together
// with the worker id and ledger epoch it is the correlation key that lets
// one subtree's lifecycle be followed across processes: the same (claim id,
// epoch) pair appears in the claim.* events, the "claim" trace spans, and
// the ledger's own task/lease/result records.
type ClaimInfo struct {
	// ID is the ledger task id of the claimed subtree.
	ID string `json:"id"`
	// Epoch is the claim's fencing epoch; a reclaimed subtree reappears
	// at Epoch+1 under a different owner.
	Epoch int64 `json:"epoch"`
	// StartedUnixNano is when this worker acquired the claim.
	StartedUnixNano int64 `json:"started_unix_nano"`
	// LeaseExpiresUnixNano is the lease expiry as of the last renewal.
	LeaseExpiresUnixNano int64 `json:"lease_expires_unix_nano"`
}

// WorkerSnapshot is one ledger worker's periodically published view of
// itself: its full registry dump plus a heartbeat and its current claim.
// Workers write it atomically into the shared run directory
// (<run>/obs/worker-<id>.json, see store.WorkerSnapshotName), so any
// process — another worker, a one-shot `modelcheck -fleet-status`, a
// dashboard — can reconstruct the fleet without talking to the workers.
type WorkerSnapshot struct {
	// Schema is always WorkerSnapshotSchema.
	Schema string `json:"schema"`
	// Worker is the ledger participant id (the -worker-id flag).
	Worker string `json:"worker"`
	// PID is the publishing process, for ps(1) correlation.
	PID int `json:"pid"`
	// LedgerEpoch identifies the ledger incarnation the worker joined.
	LedgerEpoch int64 `json:"ledger_epoch"`
	// StartedUnixNano is when the worker's exploration began.
	StartedUnixNano int64 `json:"started_unix_nano"`
	// HeartbeatUnixNano is when this snapshot was taken; its age against
	// the lease TTL is the fleet's liveness signal.
	HeartbeatUnixNano int64 `json:"heartbeat_unix_nano"`
	// Claim is the subtree this worker is enumerating right now (nil
	// between claims).
	Claim *ClaimInfo `json:"claim,omitempty"`
	// Metrics is the worker's full registry snapshot.
	Metrics Snapshot `json:"metrics"`
}

// Validate checks the snapshot against its documented schema.
func (ws *WorkerSnapshot) Validate() error {
	if ws.Schema != WorkerSnapshotSchema {
		return fmt.Errorf("obs: worker snapshot schema %q, want %q", ws.Schema, WorkerSnapshotSchema)
	}
	if ws.Worker == "" {
		return fmt.Errorf("obs: worker snapshot with no worker id")
	}
	if ws.HeartbeatUnixNano == 0 {
		return fmt.Errorf("obs: worker snapshot %s has no heartbeat", ws.Worker)
	}
	return nil
}

// Encode validates and marshals the snapshot for atomic publication.
func (ws *WorkerSnapshot) Encode() ([]byte, error) {
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(ws, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return append(data, '\n'), nil
}

// LoadSnapshot reads and validates one published worker snapshot. Because
// publishers write via the store's atomic rename discipline, a reader never
// sees a torn file — only a missing one (worker not yet published) or a
// stale one (heartbeat age tells).
func LoadSnapshot(path string) (*WorkerSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	var ws WorkerSnapshot
	if err := json.Unmarshal(data, &ws); err != nil {
		return nil, fmt.Errorf("obs: corrupt worker snapshot %s: %w", path, err)
	}
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	return &ws, nil
}

// MergeSnapshots folds per-worker registry snapshots into one fleet-wide
// snapshot: counters and gauges are summed by name (per-worker gauges are
// capacity-style — explore.workers sums to the fleet's total parallelism),
// and histograms with identical bounds are merged bucket-by-bucket with
// Min/Max folded over the workers that observed anything. A histogram name
// whose bounds disagree across workers is omitted from the merge — two
// shapes cannot be summed honestly — rather than silently misbinned.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	m := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	mismatched := map[string]bool{}
	for _, s := range snaps {
		for name, v := range s.Counters {
			m.Counters[name] += v
		}
		for name, v := range s.Gauges {
			m.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			if mismatched[name] {
				continue
			}
			cur, ok := m.Histograms[name]
			if !ok {
				m.Histograms[name] = copyHistogram(h)
				continue
			}
			merged, ok := mergeHistograms(cur, h)
			if !ok {
				mismatched[name] = true
				delete(m.Histograms, name)
				continue
			}
			m.Histograms[name] = merged
		}
	}
	return m
}

func copyHistogram(h HistogramSnapshot) HistogramSnapshot {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Counts = append([]int64(nil), h.Counts...)
	return h
}

// mergeHistograms folds b into a copy of a. false means the bounds (or
// bucket layouts) disagree and the pair cannot be merged.
func mergeHistograms(a, b HistogramSnapshot) (HistogramSnapshot, bool) {
	if len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) {
		return HistogramSnapshot{}, false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return HistogramSnapshot{}, false
		}
	}
	m := copyHistogram(a)
	for i := range b.Counts {
		m.Counts[i] += b.Counts[i]
	}
	m.Count += b.Count
	m.Sum += b.Sum
	// Min/Max are meaningful only where something was observed: an empty
	// worker's zero-valued extremes must not clamp the fleet's.
	switch {
	case a.Count == 0:
		m.Min, m.Max = b.Min, b.Max
	case b.Count == 0:
		// keep a's extremes
	default:
		if b.Min < m.Min {
			m.Min = b.Min
		}
		if b.Max > m.Max {
			m.Max = b.Max
		}
	}
	return m, true
}
