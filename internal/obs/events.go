package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level grades event severity. The log drops events below its minimum
// level, so hot-path instrumentation (per-prune, per-donation) can emit at
// Debug unconditionally and cost one branch when the level filters it out.
type Level int8

const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String returns the lower-case level name.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel converts a level name to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return Debug, nil
	case "info":
		return Info, nil
	case "warn":
		return Warn, nil
	case "error":
		return Error, nil
	default:
		return 0, fmt.Errorf("obs: unknown event level %q (debug|info|warn|error)", s)
	}
}

// Event is one JSONL record of the run event log. T is the monotonic time
// since the log was created — wall-clock-free, so two events always order
// correctly even across clock adjustments.
type Event struct {
	T      int64          `json:"t_ns"`
	Level  string         `json:"level"`
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Log is a run-scoped structured event log: one JSON object per line,
// levels, monotonic timestamps, and per-type counts for the final report.
// All methods are safe for concurrent use and safe on a nil *Log (they do
// nothing), so instrumentation threads through unconditionally.
type Log struct {
	mu     sync.Mutex
	w      *bufio.Writer
	enc    *json.Encoder
	min    Level
	start  time.Time
	counts map[string]int64
	err    error
}

// NewLog returns a log writing JSONL records at or above min to w.
func NewLog(w io.Writer, min Level) *Log {
	bw := bufio.NewWriter(w)
	return &Log{
		w:      bw,
		enc:    json.NewEncoder(bw),
		min:    min,
		start:  time.Now(),
		counts: make(map[string]int64),
	}
}

// Enabled reports whether events at the given level would be written.
func (l *Log) Enabled(level Level) bool { return l != nil && level >= l.min }

// Emit writes one event. fields may be nil; values must be JSON-encodable
// (the standard scalar/slice/map types the callers use). Events below the
// log's minimum level are dropped without allocation beyond the call.
func (l *Log) Emit(level Level, typ string, fields map[string]any) {
	if !l.Enabled(level) {
		return
	}
	e := Event{
		T:      time.Since(l.start).Nanoseconds(),
		Level:  level.String(),
		Type:   typ,
		Fields: fields,
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.counts[typ]++
	if l.err == nil {
		l.err = l.enc.Encode(&e)
	}
}

// Counts returns a copy of the per-type counts of events written so far.
// Nil on a nil log.
func (l *Log) Counts() map[string]int64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

// Flush drains the buffer and returns the first write or encode error the
// log has seen, if any.
func (l *Log) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}
