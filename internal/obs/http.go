package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns the live-introspection mux:
//
//	/metrics   JSON Snapshot of the registry (expvar-style: one GET, one
//	           self-describing JSON document)
//	/progress  JSON of whatever progress() returns (the engine's latest
//	           Progress report); 204 when progress is nil or returns nil
//	/healthz   liveness probe: 200 with uptime and whether a verdict is
//	           in progress — distinct from /metrics so fleet probes and
//	           load balancers never parse a metric snapshot to ask
//	           "is it up?"
//	/pprof/    the standard net/http/pprof handlers (index, profile,
//	           heap, goroutine, trace, ...), re-rooted under /pprof/
//	/debug/trace  on-demand runtime execution trace capture
//	           (?seconds=N, default 1) — loadable in go tool trace
//	           and in Perfetto
//
// The handler holds no locks across requests: /metrics snapshots the
// registry, /progress and /healthz call progress() once.
func Handler(reg *Registry, progress func() any) *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// "In progress" means the run has produced at least one progress
		// report — the engine's ticker is alive and a verdict is being
		// worked toward (or was just reached; the handler outlives the run
		// only by the shutdown grace).
		inProgress := false
		if progress != nil {
			inProgress = progress() != nil
		}
		writeJSON(w, map[string]any{
			"status":              "ok",
			"uptime_ns":           time.Since(start).Nanoseconds(),
			"verdict_in_progress": inProgress,
		})
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		var v any
		if progress != nil {
			v = progress()
		}
		if v == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, v)
	})
	// net/http/pprof expects to live under /debug/pprof/; rewrite the
	// shorter /pprof/ prefix so the index's relative links keep working.
	mux.HandleFunc("/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/pprof/profile", pprof.Profile)
	mux.HandleFunc("/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/pprof/trace", pprof.Trace)
	mux.HandleFunc("/pprof/", func(w http.ResponseWriter, r *http.Request) {
		r.URL.Path = "/debug/pprof/" + strings.TrimPrefix(r.URL.Path, "/pprof/")
		pprof.Index(w, r)
	})
	mux.HandleFunc("/debug/trace", pprof.Trace)
	return mux
}

// WriteHTTPJSON renders v as indented JSON with the JSON content type —
// the same rendering /metrics and /progress use, exported so subsystems
// that attach routes to the mux (the fleet endpoints) match the handler's
// house style.
func WriteHTTPJSON(w http.ResponseWriter, v any) { writeJSON(w, v) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a failed write is the client's problem
}

// Serve starts an HTTP server for h on addr (":0" picks a free port) and
// returns the bound address and a shutdown function. The server runs until
// shutdown is called; serving errors after shutdown are discarded.
func Serve(addr string, h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // Close below surfaces real errors as ErrServerClosed
	return ln.Addr().String(), srv.Close, nil
}
