package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func validReport() *Report {
	return &Report{
		Schema: ReportSchema,
		Run:    map[string]string{"proto": "figure3"},
		Verdict: Verdict{
			Result:     "verified",
			Complete:   true,
			Executions: 10,
			Workers:    2,
		},
		Metrics: Snapshot{
			Counters: map[string]int64{
				"explore.worker.0.executions": 6,
				"explore.worker.1.executions": 4,
			},
		},
	}
}

func TestReportValidate(t *testing.T) {
	if err := validReport().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	r := validReport()
	r.Schema = "nope"
	if r.Validate() == nil {
		t.Error("bad schema accepted")
	}

	r = validReport()
	r.Verdict.Result = "maybe"
	if r.Validate() == nil {
		t.Error("unknown result accepted")
	}

	r = validReport()
	r.Metrics.Counters["explore.worker.1.executions"] = 5
	if r.Validate() == nil {
		t.Error("per-worker sum mismatch accepted")
	}

	// Restored executions from a resumed checkpoint count toward the total.
	r = validReport()
	r.Verdict.Executions = 15
	r.Metrics.Counters["explore.executions.restored"] = 5
	if err := r.Validate(); err != nil {
		t.Errorf("restored executions not accounted: %v", err)
	}

	r = validReport()
	r.Verdict.Result = "violation"
	if r.Validate() == nil {
		t.Error("violation verdict with zero violations accepted")
	}
}

func TestWriteReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteReport(path, validReport()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("round-tripped report invalid: %v", err)
	}
	if r.Verdict.Executions != 10 || r.Metrics.Counters["explore.worker.0.executions"] != 6 {
		t.Errorf("round trip lost data: %+v", r)
	}
}

func TestWriteReportRefusesInvalid(t *testing.T) {
	r := validReport()
	r.Schema = "bad"
	path := filepath.Join(t.TempDir(), "report.json")
	if WriteReport(path, r) == nil {
		t.Fatal("invalid report written")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("file created for invalid report")
	}
}
