package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLogEmitJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(&buf, Info)
	l.Emit(Info, "run.start", map[string]any{"workers": 4})
	l.Emit(Debug, "dedup.prune", nil) // below level: dropped
	l.Emit(Warn, "checkpoint.slow", map[string]any{"ms": 120.5})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var last int64 = -1
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		if e.T < last {
			t.Errorf("timestamps not monotonic: %d after %d", e.T, last)
		}
		last = e.T
	}
	var first Event
	json.Unmarshal([]byte(lines[0]), &first)
	if first.Type != "run.start" || first.Level != "info" {
		t.Errorf("first event = %+v", first)
	}
	if first.Fields["workers"] != float64(4) {
		t.Errorf("fields = %v", first.Fields)
	}

	counts := l.Counts()
	if counts["run.start"] != 1 || counts["checkpoint.slow"] != 1 || counts["dedup.prune"] != 0 {
		t.Errorf("counts = %v", counts)
	}
}

func TestLogNilSafe(t *testing.T) {
	var l *Log
	l.Emit(Error, "anything", nil) // must not panic
	if l.Enabled(Error) {
		t.Error("nil log reports Enabled")
	}
	if l.Counts() != nil {
		t.Error("nil log has counts")
	}
	if l.Flush() != nil {
		t.Error("nil log flush errored")
	}
}

func TestLogConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(&buf, Debug)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				l.Emit(Debug, "tick", map[string]any{"worker": w})
			}
		}(w)
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1000 {
		t.Fatalf("got %d lines, want 1000", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved write produced invalid JSON: %q", line)
		}
	}
	if l.Counts()["tick"] != 1000 {
		t.Errorf("counts = %v", l.Counts())
	}
}

func TestParseLevel(t *testing.T) {
	for _, c := range []struct {
		s  string
		l  Level
		ok bool
	}{{"debug", Debug, true}, {"info", Info, true}, {"warn", Warn, true}, {"error", Error, true}, {"nope", 0, false}} {
		l, err := ParseLevel(c.s)
		if (err == nil) != c.ok || l != c.l {
			t.Errorf("ParseLevel(%q) = %v, %v", c.s, l, err)
		}
	}
}
