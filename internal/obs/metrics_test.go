package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterReservation(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(3)
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if !c.CompareAndSwap(4, 5) {
		t.Fatal("CAS 4->5 failed")
	}
	if c.CompareAndSwap(4, 9) {
		t.Fatal("stale CAS succeeded")
	}
	c.Add(-2) // release a reservation
	if got := c.Load(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same counter name returned different metrics")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same gauge name returned different metrics")
	}
	if r.Histogram("h", 1, 2) != r.Histogram("h", 5, 6) {
		t.Error("same histogram name returned different metrics")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

// TestHistogramBucketBoundaries pins down the inclusive-upper-bound ("le")
// convention: a value equal to a bound lands in that bound's bucket, a
// value above every bound lands in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	cases := []struct {
		v      float64
		bucket int
	}{
		{-1, 0},              // below the first bound
		{0, 0},               //
		{1, 0},               // exactly on a bound: inclusive
		{1.0000001, 1},       // just above a bound
		{2, 1},               //
		{4.9, 2},             //
		{5, 2},               // last finite bound, inclusive
		{5.1, 3},             // overflow
		{math.Inf(1), 3},     // +Inf overflows
		{math.Inf(-1), 0},    // -Inf in the first bucket
		{math.MaxFloat64, 3}, //
	}
	for _, c := range cases {
		before := h.Snapshot().Counts[c.bucket]
		h.Observe(c.v)
		after := h.Snapshot().Counts[c.bucket]
		if after != before+1 {
			t.Errorf("Observe(%v): bucket %d went %d -> %d, want +1", c.v, c.bucket, before, after)
		}
	}
	s := h.Snapshot()
	if s.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", s.Count, len(cases))
	}
	var sum int64
	for _, n := range s.Counts {
		sum += n
	}
	if sum != s.Count {
		t.Errorf("bucket counts sum to %d, total is %d", sum, s.Count)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(math.NaN())
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("NaN was recorded: %+v", s)
	}
}

func TestHistogramMinMaxSum(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []float64{3, 7, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Min != 3 || s.Max != 50 || s.Sum != 60 {
		t.Errorf("min/max/sum = %v/%v/%v, want 3/50/60", s.Min, s.Max, s.Sum)
	}
}

func TestHistogramEmptySnapshotMarshals(t *testing.T) {
	// An empty histogram must not leak the +/-Inf min/max seeds into JSON
	// (encoding/json rejects infinities).
	s := NewHistogram(1).Snapshot()
	if s.Min != 0 || s.Max != 0 {
		t.Errorf("empty min/max = %v/%v, want 0/0", s.Min, s.Max)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 2 || q > 6 {
		t.Errorf("p50 = %v, want within [2, 6]", q)
	}
	if q := s.Quantile(0); q != s.Min {
		t.Errorf("p0 = %v, want min %v", q, s.Min)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("p100 = %v, want max %v", q, s.Max)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestRegistrySnapshotConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", 1, 10, 100)
	r.Func("f", func() int64 { return c.Load() })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 4000 || s.Gauges["f"] != 4000 {
		t.Errorf("counter = %d, func gauge = %d, want 4000", s.Counters["c"], s.Gauges["f"])
	}
	if s.Histograms["h"].Count != 4000 {
		t.Errorf("histogram count = %d, want 4000", s.Histograms["h"].Count)
	}
}
