package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerMetricsAndProgress(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("explore.executions").Add(7)
	reg.Histogram("explore.frontier.depth", 1, 2, 4).Observe(3)
	srv := httptest.NewServer(Handler(reg, func() any {
		return map[string]any{"executions": 7}
	}))
	defer srv.Close()

	code, body := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v\n%s", err, body)
	}
	if snap.Counters["explore.executions"] != 7 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Histograms["explore.frontier.depth"].Count != 1 {
		t.Errorf("histogram missing: %+v", snap.Histograms)
	}

	code, body = get(t, srv.URL+"/progress")
	if code != 200 || !strings.Contains(body, `"executions": 7`) {
		t.Errorf("/progress: %d\n%s", code, body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	var latest any
	srv := httptest.NewServer(Handler(NewRegistry(), func() any { return latest }))
	defer srv.Close()

	check := func(wantInProgress bool) {
		t.Helper()
		code, body := get(t, srv.URL+"/healthz")
		if code != 200 {
			t.Fatalf("/healthz: %d", code)
		}
		var h struct {
			Status     string `json:"status"`
			UptimeNS   int64  `json:"uptime_ns"`
			InProgress bool   `json:"verdict_in_progress"`
		}
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
		}
		if h.Status != "ok" || h.UptimeNS <= 0 {
			t.Errorf("healthz = %+v", h)
		}
		if h.InProgress != wantInProgress {
			t.Errorf("verdict_in_progress = %v, want %v", h.InProgress, wantInProgress)
		}
	}
	check(false) // no progress report yet
	latest = map[string]any{"executions": 1}
	check(true)
}

func TestHandlerHealthzNilProgress(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	code, body := get(t, srv.URL+"/healthz")
	if code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/healthz without progress: %d\n%s", code, body)
	}
}

func TestHandlerProgressNil(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	if code, _ := get(t, srv.URL+"/progress"); code != http.StatusNoContent {
		t.Errorf("/progress without a source: %d, want 204", code)
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	code, body := get(t, srv.URL+"/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/pprof/ index: %d\n%.200s", code, body)
	}
	code, body = get(t, srv.URL+"/pprof/goroutine?debug=1")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/pprof/goroutine: %d\n%.200s", code, body)
	}
}

func TestServePicksPort(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0", Handler(NewRegistry(), nil))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if code, _ := get(t, "http://"+addr+"/metrics"); code != 200 {
		t.Errorf("/metrics on %s: %d", addr, code)
	}
}
