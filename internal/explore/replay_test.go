package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

func TestReplayReproducesCounterexample(t *testing.T) {
	cfg := Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	}
	out, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("expected a violation to replay")
	}

	re, err := Replay(cfg, out.Violation.Path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Verdict.Violation != out.Violation.Verdict.Violation {
		t.Errorf("replay verdict %s, original %s", re.Verdict.Violation, out.Violation.Verdict.Violation)
	}
	if len(re.Schedule) != len(out.Violation.Schedule) {
		t.Fatalf("replay schedule length %d, original %d", len(re.Schedule), len(out.Violation.Schedule))
	}
	for i := range re.Schedule {
		if re.Schedule[i] != out.Violation.Schedule[i] {
			t.Fatalf("replay schedule diverged at %d: %v vs %v",
				i, re.Schedule, out.Violation.Schedule)
		}
	}
	// Event-for-event identical traces.
	a, b := re.Trace.Events(), out.Violation.Trace.Events()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d differs:\n got %s\nwant %s", i, a[i], b[i])
		}
	}
}

func TestReplayEmptyPathIsFirstExecution(t *testing.T) {
	cfg := Config{
		Protocol: core.SingleCAS{},
		Inputs:   inputs(2),
	}
	ce, err := Replay(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ce.Verdict.OK() {
		t.Errorf("first fault-free execution must be OK: %s", ce.Verdict)
	}
	if len(ce.Schedule) == 0 {
		t.Error("replay must record a schedule")
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(Config{Inputs: inputs(1)}, nil); err == nil {
		t.Error("missing protocol must error")
	}
	if _, err := Replay(Config{Protocol: core.SingleCAS{}}, nil); err == nil {
		t.Error("missing inputs must error")
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	}
	path := []int{1, 0, 1} // arbitrary prefix into the tree
	a, err := Replay(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatalf("trace lengths differ across replays: %d vs %d", a.Trace.Len(), b.Trace.Len())
	}
	for i, e := range a.Trace.Events() {
		if e != b.Trace.Events()[i] {
			t.Fatalf("replays diverged at event %d", i)
		}
	}
}
