package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/run"
	"repro/internal/trace"
	"repro/internal/trace/export"
)

// Tracer captures executions of an engine run as durable trace artifacts in
// a directory (which may be a run-store directory, so traces live next to
// the checkpoints): every violating execution is written as a trace/v1
// JSONL file plus a Perfetto-loadable JSON timeline, passing executions are
// sampled 1-in-N, and the engine's wall-clock spans (worker tasks,
// checkpoint writes) are sealed into a spans file on Close.
//
// A Tracer is safe for concurrent use by the engine's workers. File
// sequence numbers continue past any files already in the directory, so
// several explorations (an experiment sweep, a resumed run) can share one
// trace directory without clobbering each other.
type Tracer struct {
	dir     string
	sampleN int64
	runMeta map[string]string
	rec     *trace.Recorder

	seq    atomic.Int64 // file sequence, shared by all artifact kinds
	passes atomic.Int64 // passing executions seen (sampling clock)

	violations atomic.Int64 // violating executions captured
	samples    atomic.Int64 // passing executions captured
	skipped    atomic.Int64 // violating executions beyond the capture cap

	// Captures are written by one background goroutine: the exploration
	// workers only clone the execution (which counterexample already did)
	// and enqueue it, so file creation and JSON encoding overlap with
	// replays instead of stalling them. Close drains the queue before
	// sealing the spans, so every enqueued capture is durable when Close
	// returns. The first write error is sticky: later captures and Close
	// report it (the queue keeps draining without writing).
	work chan captureJob
	done chan struct{}
	werr atomic.Pointer[error]

	mu     sync.Mutex // guards closed (capture enqueue vs Close)
	closed bool
}

// captureJob is one queued trace artifact pair (trace/v1 + Perfetto).
type captureJob struct {
	base string
	x    *export.Execution
}

// MaxViolationCaptures bounds how many violating executions one Tracer
// writes out. Exhaustive explorations of an impossibility configuration can
// visit millions of violating leaves; the cap keeps the directory bounded
// while Summary reports how many captures were skipped.
const MaxViolationCaptures = 64

// fileSeq matches the numeric sequence in artifact names
// (violation-000003.jsonl, sample-000007.perfetto.json, spans-000009.jsonl).
var fileSeq = regexp.MustCompile(`-(\d+)\.(?:jsonl|perfetto\.json)$`)

// NewTracer opens (creating if needed) dir as a trace directory. sampleN
// picks the passing-execution sampling rate: every sampleN-th passing
// execution is captured (0 disables passing-run capture; violations are
// always captured). runMeta is the flat settings map sealed into every
// trace header so `modelcheck -explain` can reconstruct the configuration
// from the file alone.
func NewTracer(dir string, sampleN int, runMeta map[string]string) (*Tracer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("explore: trace dir: %w", err)
	}
	t := &Tracer{
		dir:     dir,
		sampleN: int64(sampleN),
		runMeta: runMeta,
		rec:     trace.NewRecorder(0),
		work:    make(chan captureJob, 64),
		done:    make(chan struct{}),
	}
	// Continue numbering past whatever is already there.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("explore: trace dir: %w", err)
	}
	for _, e := range entries {
		if m := fileSeq.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.ParseInt(m[1], 10, 64); err == nil && n > t.seq.Load() {
				t.seq.Store(n)
			}
		}
	}
	go t.writeLoop()
	return t, nil
}

// writeLoop is the single capture writer: it drains the queue, writing each
// capture as a trace/v1 file plus its Perfetto rendering. After a write
// error it keeps draining (so enqueuers never block on a dead tracer) but
// writes nothing further; the error surfaces on the next capture and Close.
func (t *Tracer) writeLoop() {
	defer close(t.done)
	for job := range t.work {
		if t.werr.Load() != nil {
			continue
		}
		if err := export.WriteExecution(filepath.Join(t.dir, job.base+".jsonl"), job.x); err != nil {
			t.werr.CompareAndSwap(nil, &err)
			continue
		}
		if err := export.WritePerfetto(filepath.Join(t.dir, job.base+".perfetto.json"), job.x); err != nil {
			t.werr.CompareAndSwap(nil, &err)
		}
	}
}

// err returns the sticky first write error of the background writer.
func (t *Tracer) err() error {
	if p := t.werr.Load(); p != nil {
		return *p
	}
	return nil
}

// Dir returns the trace directory.
func (t *Tracer) Dir() string { return t.dir }

// Recorder returns the wall-clock span recorder the engine feeds.
// Nil-safe: a nil Tracer yields a nil (no-op) recorder.
func (t *Tracer) Recorder() *trace.Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// sampleHit reports whether this passing execution is the 1-in-N sample.
func (t *Tracer) sampleHit() bool {
	if t == nil || t.sampleN <= 0 {
		return false
	}
	return t.passes.Add(1)%t.sampleN == 0
}

// captureViolation writes the violating execution (always, up to the cap).
func (t *Tracer) captureViolation(worker int, path []int, ce *Counterexample) error {
	if t.violations.Load() >= MaxViolationCaptures {
		t.skipped.Add(1)
		return nil
	}
	if err := t.capture("violation", worker, path, ce); err != nil {
		return err
	}
	t.violations.Add(1)
	return nil
}

// captureSample writes one sampled passing execution.
func (t *Tracer) captureSample(worker int, path []int, ce *Counterexample) error {
	if err := t.capture("sample", worker, path, ce); err != nil {
		return err
	}
	t.samples.Add(1)
	return nil
}

func (t *Tracer) capture(kind string, worker int, path []int, ce *Counterexample) error {
	verdict := "ok"
	if !ce.Verdict.OK() {
		verdict = string(ce.Verdict.Violation)
	}
	x := &export.Execution{
		Meta: export.Meta{
			Kind:     "execution",
			Run:      t.runMeta,
			Worker:   worker,
			Path:     append([]int(nil), path...),
			Schedule: append([]int(nil), ce.Schedule...),
			Inputs:   append([]int64(nil), ce.Inputs...),
			Verdict:  verdict,
			Detail:   ce.Verdict.Detail,
		},
		Events: ce.Trace.Events(),
	}
	base := fmt.Sprintf("%s-%06d", kind, t.seq.Add(1))
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("explore: capture after tracer close")
	}
	// A full queue blocks here (bounded memory); the writer never takes
	// t.mu, so it keeps draining and the send always completes.
	t.work <- captureJob{base: base, x: x}
	return t.err()
}

// Close drains the capture queue, seals the run's wall-clock spans into
// spans-NNNNNN.jsonl (plus its Perfetto rendering), and refuses further
// captures. Close is idempotent.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	close(t.work)
	<-t.done
	if err := t.err(); err != nil {
		return err
	}
	spans := t.rec.Spans()
	if len(spans) == 0 {
		return nil
	}
	x := &export.Execution{
		Meta: export.Meta{
			Kind:   "spans",
			Run:    t.runMeta,
			Worker: -1,
		},
		Spans:        spans,
		DroppedSpans: t.rec.Dropped(),
	}
	base := fmt.Sprintf("spans-%06d", t.seq.Add(1))
	if err := export.WriteExecution(filepath.Join(t.dir, base+".jsonl"), x); err != nil {
		return err
	}
	return export.WritePerfetto(filepath.Join(t.dir, base+".perfetto.json"), x)
}

// TracerSummary reports what a Tracer captured.
type TracerSummary struct {
	Dir        string
	Violations int64 // violating executions written
	Samples    int64 // sampled passing executions written
	Skipped    int64 // violating executions beyond MaxViolationCaptures
	Spans      int   // wall-clock spans recorded so far
}

// Summary returns the capture counts (zero value on a nil Tracer).
func (t *Tracer) Summary() TracerSummary {
	if t == nil {
		return TracerSummary{}
	}
	return TracerSummary{
		Dir:        t.dir,
		Violations: t.violations.Load(),
		Samples:    t.samples.Load(),
		Skipped:    t.skipped.Load(),
		Spans:      len(t.rec.Spans()),
	}
}

// NewTracerFor builds a Tracer from the unified settings: the trace
// directory and sampling rate come from run.WithTraceDir, the sealed run
// meta from run.MetaFromSettings.
func NewTracerFor(s *run.Settings) (*Tracer, error) {
	return NewTracer(s.TraceDir, s.TraceSample, run.MetaFromSettings(s))
}
