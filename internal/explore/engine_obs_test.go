package explore

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/store"
)

// sumWorkerCounters adds up the per-worker counters with the given suffix
// (e.g. ".executions") in a metric snapshot.
func sumWorkerCounters(s obs.Snapshot, suffix string) int64 {
	var sum int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "explore.worker.") && strings.HasSuffix(name, suffix) {
			sum += v
		}
	}
	return sum
}

// TestEngineMetricsWorkerSumInvariant: the per-worker execution counters
// plus the restored count must sum to the reported Executions — the
// invariant the report schema validates — including with dedup on, where
// pruned replays release their claims on both the total and the worker
// counter.
func TestEngineMetricsWorkerSumInvariant(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: 1,
	}
	for name, dedupOn := range map[string]bool{"plain": false, "dedup": true} {
		t.Run(name, func(t *testing.T) {
			reg := obs.NewRegistry()
			eng := &Engine{Workers: 4, Dedup: dedupOn, Metrics: reg}
			out, err := eng.Check(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := reg.Snapshot()
			if got := s.Counters["explore.executions"]; got != int64(out.Executions) {
				t.Errorf("explore.executions = %d, Outcome.Executions = %d", got, out.Executions)
			}
			workerSum := sumWorkerCounters(s, ".executions") + s.Counters["explore.executions.restored"]
			if workerSum != int64(out.Executions) {
				t.Errorf("per-worker executions sum to %d, want %d", workerSum, out.Executions)
			}
			if got := s.Counters["explore.frontier.donations"]; got != out.Donations {
				t.Errorf("donations counter = %d, Outcome.Donations = %d", got, out.Donations)
			}
			if got := s.Counters["explore.frontier.steals"]; got != out.Steals {
				t.Errorf("steals counter = %d, Outcome.Steals = %d", got, out.Steals)
			}
			if stealSum := sumWorkerCounters(s, ".steals"); stealSum != out.Steals {
				t.Errorf("per-worker steals sum to %d, want %d", stealSum, out.Steals)
			}
			if out.Steals == 0 {
				t.Error("no steals recorded; even the root task is claimed from the frontier")
			}
			if s.Gauges["explore.workers"] != 4 {
				t.Errorf("explore.workers gauge = %d, want 4", s.Gauges["explore.workers"])
			}
			if h, ok := s.Histograms["explore.frontier.depth"]; !ok || h.Count == 0 {
				t.Error("frontier depth histogram missing or empty")
			}
			if dedupOn {
				if s.Counters["explore.dedup.prunes"] == 0 {
					t.Error("dedup run recorded no prunes")
				}
				if s.Gauges["dedup.states"] == 0 {
					t.Error("dedup.states gauge not registered or zero")
				}
			}
		})
	}
}

// TestEngineSharedRegistryRunScoped: a registry may outlive one run (the
// harness points a whole experiment sweep at the same one). The registry
// must read cumulatively, while each run's cap, Outcome, and checkpoints
// stay run-scoped — the first run's executions must not count against the
// second run's cap.
func TestEngineSharedRegistryRunScoped(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: 1,
	}
	ref, err := (&Engine{Workers: 2}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	eng := &Engine{Workers: 2, Metrics: reg}
	first, err := eng.Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The second run would be capped immediately if the first run's
	// executions leaked into its cap accounting.
	capped := cfg
	capped.MaxExecutions = ref.Executions
	second, err := eng.Check(context.Background(), capped)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executions != ref.Executions || second.Executions != ref.Executions {
		t.Errorf("shared-registry executions = %d then %d, want %d both times",
			first.Executions, second.Executions, ref.Executions)
	}
	if !second.Complete {
		t.Error("second run reported incomplete: prior run leaked into its cap")
	}
	if got := reg.Snapshot().Counters["explore.executions"]; got != int64(2*ref.Executions) {
		t.Errorf("cumulative registry counter = %d, want %d", got, 2*ref.Executions)
	}
}

// TestEngineEventLog: a run with an event log emits a parseable JSONL
// stream framed by run.start and run.done, and a violating run records
// violation.found events.
func TestEngineEventLog(t *testing.T) {
	cfg := Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	}
	var buf bytes.Buffer
	log := obs.NewLog(&buf, obs.Debug)
	eng := &Engine{Workers: 4, Events: log}
	out, err := eng.Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("expected a violation")
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var types []string
	var lastT int64 = -1
	for i, line := range lines {
		var e struct {
			T      int64          `json:"t_ns"`
			Level  string         `json:"level"`
			Type   string         `json:"type"`
			Fields map[string]any `json:"fields"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if e.T < lastT {
			t.Errorf("line %d: timestamp %d before previous %d", i, e.T, lastT)
		}
		lastT = e.T
		types = append(types, e.Type)
	}
	if types[0] != "run.start" {
		t.Errorf("first event = %q, want run.start", types[0])
	}
	if types[len(types)-1] != "run.done" {
		t.Errorf("last event = %q, want run.done", types[len(types)-1])
	}
	counts := log.Counts()
	if counts["run.start"] != 1 || counts["run.done"] != 1 {
		t.Errorf("lifecycle counts = %v", counts)
	}
	if counts["violation.found"] == 0 {
		t.Error("violating run logged no violation.found events")
	}
}

// TestEngineMetricsResumeRestored: after a capped run resumes, the fresh
// registry accounts the checkpoint's executions under
// explore.executions.restored, keeping the worker-sum invariant across
// process boundaries.
func TestEngineMetricsResumeRestored(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: fault.Unbounded,
	}
	dir := filepath.Join(t.TempDir(), "run")
	m, err := ManifestFor(cfg, false, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}

	capped := cfg
	capped.MaxExecutions = 500
	first, err := (&Engine{Workers: 4, Store: st}).Check(context.Background(), capped)
	if err != nil {
		t.Fatal(err)
	}
	if first.Complete {
		t.Fatalf("capped run completed in %d executions; cap too high for this test", first.Executions)
	}

	st, err = store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	log := obs.NewLog(&buf, obs.Debug)
	out, err := (&Engine{Workers: 4, Store: st, Metrics: reg, Events: log}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("resumed run incomplete after %d executions", out.Executions)
	}
	s := reg.Snapshot()
	restored := s.Counters["explore.executions.restored"]
	if restored == 0 {
		t.Error("resume recorded no restored executions")
	}
	if sum := sumWorkerCounters(s, ".executions") + restored; sum != int64(out.Executions) {
		t.Errorf("worker sum + restored = %d, want %d", sum, out.Executions)
	}
	if log.Counts()["checkpoint.restore"] != 1 {
		t.Errorf("checkpoint.restore events = %d, want 1", log.Counts()["checkpoint.restore"])
	}
}

// TestEngineProgressDepthQuantiles: progress reports carry frontier-depth
// quantiles from the depth histogram, and the quantiles are ordered. The
// histogram only fills once workers donate subtrees, so the depth fields
// may legitimately be zero early in a run — the invariant is ordering and
// non-negativity, plus that reports flow at all.
func TestEngineProgressDepthQuantiles(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: 1,
		// The goroutine form keeps this sweep slow enough for the 1ms
		// progress ticker to fire before the run completes.
		Exec: run.ExecInterpreted,
	}
	var (
		mu      sync.Mutex
		reports []Progress
	)
	eng := &Engine{
		Workers:       4,
		ProgressEvery: time.Millisecond,
		Progress: func(p Progress) {
			mu.Lock()
			reports = append(reports, p)
			mu.Unlock()
		},
	}
	out, err := eng.Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("exploration did not complete: %+v", out)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) == 0 {
		t.Fatal("no progress reports delivered")
	}
	sawDepth := false
	for _, p := range reports {
		if p.DepthP50 < 0 || p.DepthP99 < p.DepthP50 {
			t.Errorf("quantiles disordered: p50=%v p99=%v", p.DepthP50, p.DepthP99)
		}
		if p.DepthP99 > 0 {
			sawDepth = true
		}
	}
	if out.Donations > 0 && !sawDepth {
		t.Logf("donations=%d but no report carried depth quantiles (timing)", out.Donations)
	}
}
