package explore

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestDedupStatsLeafAccounting pins the dedup effectiveness accounting on a
// known sweep (the fully enumerable staged f=1 workload): LeafLookups counts
// replays (one per completed or pruned execution, not one per step), Hits
// counts pruned replays, and HitRate is Hits/LeafLookups — the one
// replay-level pair every surface (CLI, gauges, bench) reports. The old
// formula divided prunes by per-step Visit calls — nearly all of them
// Revisits of the worker's own prefix — and reported a 60%-savings run as a
// 1% hit rate; a later counter ("executions saved") double-reported Hits
// under a name that promised pruned subtree leaves, which are unknowable
// without exploring them (leaf-level savings are measured by bench.sh as
// plain-vs-dedup Executions instead).
func TestDedupStatsLeafAccounting(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: fault.Unbounded,
		MaxExecutions:   1_000_000,
	}
	reg := obs.NewRegistry()
	out, err := (&Engine{Workers: 1, Dedup: true, Metrics: reg}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || !out.OK() {
		t.Fatalf("complete=%v violation=%v", out.Complete, out.Violation)
	}
	st := out.Dedup
	if st == nil {
		t.Fatal("no dedup stats")
	}
	if st.Hits == 0 {
		t.Fatal("sweep with known state convergence pruned no replays")
	}
	// Every replay — completed or pruned — is one leaf lookup, and a pruned
	// replay halts at its first Prune decision, so leaf lookups partition
	// exactly into completed executions and hits.
	if want := int64(out.Executions) + st.Hits; st.LeafLookups != want {
		t.Errorf("LeafLookups = %d, want executions+hits = %d", st.LeafLookups, want)
	}
	if got, want := st.HitRate(), float64(st.Hits)/float64(st.LeafLookups); got != want {
		t.Errorf("HitRate() = %v, want hits/leaf-lookups = %v", got, want)
	}
	if st.HitRate() < 0.1 || st.HitRate() >= 1 {
		t.Errorf("HitRate() = %v, implausible for the known sweep", st.HitRate())
	}
	// The per-step ratio is the misreporting bug: the honest rate must be
	// far above it (Lookups counts every scheduling decision).
	if oldRate := float64(st.Hits) / float64(st.Lookups); st.HitRate() < 5*oldRate {
		t.Errorf("HitRate() = %v, not meaningfully above the per-step ratio %v", st.HitRate(), oldRate)
	}
	// The engine's prune site and the set's counters agree, and the gauges
	// are live on the registry.
	s := reg.Snapshot()
	if got := s.Counters["explore.dedup.prunes"]; got != st.Hits {
		t.Errorf("explore.dedup.prunes = %d, Hits = %d", got, st.Hits)
	}
	if s.Gauges["dedup.hits"] != st.Hits {
		t.Errorf("dedup.hits gauge = %d, want %d", s.Gauges["dedup.hits"], st.Hits)
	}
	if s.Gauges["dedup.leaf_lookups"] != st.LeafLookups {
		t.Errorf("dedup.leaf_lookups gauge = %d, want %d", s.Gauges["dedup.leaf_lookups"], st.LeafLookups)
	}
	// The retired "executions saved" surfaces must stay gone: the counter
	// was Hits wearing a subtree-leaves name.
	if _, ok := s.Gauges["dedup.executions_saved"]; ok {
		t.Error("dedup.executions_saved gauge resurfaced")
	}
}

// TestEngineCapExactUnderDedup is the regression test for the capped-latch
// race: a prune used to claim an execution and release it after the cap
// check, so a run whose cap equals its own completed-execution count could
// latch `capped` (and print "incomplete") spuriously. With the lease ledger
// a pruned replay never touches the cap, so the cap binds exactly on
// completed executions.
func TestEngineCapExactUnderDedup(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: fault.Unbounded,
		MaxExecutions:   1_000_000,
	}
	full, err := (&Engine{Workers: 1, Dedup: true}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete || full.Dedup.Hits == 0 {
		t.Fatalf("reference run: complete=%v hits=%d; need a completing sweep with prunes",
			full.Complete, full.Dedup.Hits)
	}
	// Same deterministic single-worker run, cap set to exactly its size:
	// it must still complete with exactly that many executions.
	capped := cfg
	capped.MaxExecutions = full.Executions
	out, err := (&Engine{Workers: 1, Dedup: true}).Check(context.Background(), capped)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || out.Executions != full.Executions {
		t.Errorf("cap == run size: complete=%v executions=%d, want complete with %d — capped latch fired on a pruned replay",
			out.Complete, out.Executions, full.Executions)
	}
}

// TestEngineCancelMidLeaseWorkerSum: cancellation strikes while workers sit
// on partially spent leases; the flush on the abandon path must still settle
// every locally tallied execution, so the per-worker counters plus the
// restored count sum to the reported total — the invariant the
// modelcheck-report/v1 validator checks. Run under -race via scripts/check.sh.
func TestEngineCancelMidLeaseWorkerSum(t *testing.T) {
	cfg := benchConfig()
	cfg.MaxExecutions = 1_000_000
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	out, err := (&Engine{Workers: 4, LeaseSize: 16, Metrics: reg}).Check(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Complete {
		t.Error("cancelled run reported complete")
	}
	s := reg.Snapshot()
	if got := s.Counters["explore.executions"]; got != int64(out.Executions) {
		t.Errorf("explore.executions = %d, Outcome.Executions = %d", got, out.Executions)
	}
	sum := sumWorkerCounters(s, ".executions") + s.Counters["explore.executions.restored"]
	if sum != int64(out.Executions) {
		t.Errorf("worker sum + restored = %d, want %d — a lease was lost or double-counted on cancellation", sum, out.Executions)
	}
}

// TestEngineResumeAcrossLeaseBoundary: with LeaseSize 1 the interrupted
// worker crosses a lease boundary between its two executions — flushing its
// local tallies, publishing its chooser position, and re-acquiring from the
// cap pool — before the cap stops it. The checkpoint written at that point
// must let a resumed run (different worker count, different lease size)
// reproduce the identical verdict and canonical counterexample of an
// uninterrupted run, even though the throttled publish means the slot held a
// position at most one lease old.
func TestEngineResumeAcrossLeaseBoundary(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(3),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: fault.Unbounded,
		MaxExecutions:   50_000,
	}
	ref, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.OK() {
		t.Fatal("reference run found no violation")
	}

	dir := filepath.Join(t.TempDir(), "run")
	interrupted := cfg
	interrupted.MaxExecutions = 2 // below the violation at execution 3
	m, err := ManifestFor(interrupted, false, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := (&Engine{Workers: 1, LeaseSize: 1, Store: st}).Check(context.Background(), interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete || out.Executions != interrupted.MaxExecutions {
		t.Fatalf("interrupted run: complete=%v executions=%d, want capped at exactly %d",
			out.Complete, out.Executions, interrupted.MaxExecutions)
	}
	if !out.OK() {
		t.Fatal("interrupted run already found the violation; lower the cap")
	}

	st, err = store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := (&Engine{Workers: 2, LeaseSize: 8, Store: st}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.OK() {
		t.Fatal("resumed run found no violation")
	}
	if !reflect.DeepEqual(resumed.Violation.Path, ref.Violation.Path) {
		t.Errorf("violation path = %v, want %v", resumed.Violation.Path, ref.Violation.Path)
	}
	if !reflect.DeepEqual(resumed.Violation.Schedule, ref.Violation.Schedule) {
		t.Errorf("schedule = %v, want %v", resumed.Violation.Schedule, ref.Violation.Schedule)
	}
	if resumed.Violation.Verdict.Violation != ref.Violation.Verdict.Violation {
		t.Errorf("verdict = %v, want %v", resumed.Violation.Verdict.Violation, ref.Violation.Verdict.Violation)
	}
}

// TestReplayAllocsPerExecution pins the hot-path allocation budget: with the
// arena, the pooled execState, and the interned dedup store, a replay
// allocates near nothing — the ~84 heap objects per leaf the old runOnce
// built (bank, closures, channels, trace log, schedule, goroutines) are what
// made parallel workers fight the allocator instead of exploring.
func TestReplayAllocsPerExecution(t *testing.T) {
	cfg := benchConfig()
	cfg.MaxExecutions = 512
	if _, err := Check(cfg); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		out, err := Check(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out.Executions != cfg.MaxExecutions {
			t.Fatalf("executions = %d, want %d", out.Executions, cfg.MaxExecutions)
		}
	})
	perExec := allocs / float64(cfg.MaxExecutions)
	t.Logf("allocs/op = %.0f over %d executions = %.3f allocs/execution", allocs, cfg.MaxExecutions, perExec)
	if perExec > 2 {
		t.Errorf("allocs per execution = %.2f, want <= 2 (per-leaf allocations crept back into the replay path)", perExec)
	}
}
