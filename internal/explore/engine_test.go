package explore

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
)

var workerCounts = []int{1, 2, 4, 8}

// TestEngineMatchesSequentialComplete: on configurations whose tree is fully
// enumerable, the engine must reproduce the sequential checker's outcome —
// same execution count, completeness, and observed maxima — for every worker
// count.
func TestEngineMatchesSequentialComplete(t *testing.T) {
	configs := map[string]Config{
		"single-cas-fault-free": {
			Protocol: core.SingleCAS{},
			Inputs:   inputs(2),
		},
		"single-cas-unbounded-faults": {
			Protocol:        core.SingleCAS{},
			Inputs:          inputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		},
		"staged-f1-t1": {
			Protocol:        core.NewStaged(1, 1),
			Inputs:          inputs(2),
			FaultyObjects:   []int{0, 1, 2},
			FaultsPerObject: 1,
		},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			seq, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Complete || !seq.OK() {
				t.Fatalf("reference run: complete=%v violation=%v", seq.Complete, seq.Violation)
			}
			for _, w := range workerCounts {
				eng := &Engine{Workers: w}
				out, err := eng.Check(context.Background(), cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if out.Executions != seq.Executions {
					t.Errorf("workers=%d: executions = %d, want %d", w, out.Executions, seq.Executions)
				}
				if !out.Complete || !out.OK() {
					t.Errorf("workers=%d: complete=%v violation=%v", w, out.Complete, out.Violation)
				}
				if out.MaxProcSteps != seq.MaxProcSteps || out.MaxFaults != seq.MaxFaults {
					t.Errorf("workers=%d: maxima = (%d,%d), want (%d,%d)",
						w, out.MaxProcSteps, out.MaxFaults, seq.MaxProcSteps, seq.MaxFaults)
				}
				if out.Workers != w {
					t.Errorf("workers=%d: Outcome.Workers = %d", w, out.Workers)
				}
			}
		})
	}
}

// TestEngineCanonicalCounterexample: on violating configurations the engine
// must report the lexicographically least violating path — the exact
// counterexample the sequential checker finds first — for every worker count.
func TestEngineCanonicalCounterexample(t *testing.T) {
	configs := map[string]Config{
		"single-cas-3procs": {
			Protocol:        core.SingleCAS{},
			Inputs:          inputs(3),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		},
		"staged-f1-t1-3procs": {
			Protocol:        core.NewStaged(1, 1),
			Inputs:          inputs(3),
			FaultyObjects:   []int{0, 1, 2},
			FaultsPerObject: fault.Unbounded,
			MaxExecutions:   50_000,
		},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			seq, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if seq.OK() {
				t.Fatal("reference run found no violation")
			}
			for _, w := range workerCounts {
				eng := &Engine{Workers: w}
				out, err := eng.Check(context.Background(), cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if out.OK() {
					t.Fatalf("workers=%d: no violation found", w)
				}
				if !reflect.DeepEqual(out.Violation.Path, seq.Violation.Path) {
					t.Errorf("workers=%d: violation path = %v, want %v",
						w, out.Violation.Path, seq.Violation.Path)
				}
				if !reflect.DeepEqual(out.Violation.Schedule, seq.Violation.Schedule) {
					t.Errorf("workers=%d: schedule = %v, want %v",
						w, out.Violation.Schedule, seq.Violation.Schedule)
				}
				if out.Violation.Verdict.Violation != seq.Violation.Verdict.Violation {
					t.Errorf("workers=%d: verdict = %v, want %v",
						w, out.Violation.Verdict.Violation, seq.Violation.Verdict.Violation)
				}
				if out.ViolationLatency <= 0 {
					t.Errorf("workers=%d: violation latency not recorded", w)
				}
			}
		})
	}
}

// TestEngineFindMinimalDeterministic: Exhaustive mode enumerates the complete
// tree (deterministic execution count) and selects the shortest-schedule
// counterexample, matching the sequential FindMinimal for every worker count.
func TestEngineFindMinimalDeterministic(t *testing.T) {
	cfg := Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	}
	best, seq, err := FindMinimal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || !seq.Complete {
		t.Fatalf("reference FindMinimal: best=%v complete=%v", best, seq.Complete)
	}
	for _, w := range workerCounts {
		eng := &Engine{Workers: w}
		ce, out, err := eng.FindMinimal(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ce == nil {
			t.Fatalf("workers=%d: no counterexample", w)
		}
		if out.Executions != seq.Executions {
			t.Errorf("workers=%d: executions = %d, want %d", w, out.Executions, seq.Executions)
		}
		if !out.Complete {
			t.Errorf("workers=%d: exhaustive run not complete", w)
		}
		if len(ce.Schedule) != len(best.Schedule) {
			t.Errorf("workers=%d: schedule length = %d, want %d", w, len(ce.Schedule), len(best.Schedule))
		}
		if !reflect.DeepEqual(ce.Path, best.Path) {
			t.Errorf("workers=%d: minimal path = %v, want %v", w, ce.Path, best.Path)
		}
	}
}

// TestEngineExecutionCap: the atomic claim protocol must make a capped run
// stop at exactly the cap, independent of worker count.
func TestEngineExecutionCap(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: 1,
		MaxExecutions:   500,
	}
	for _, w := range workerCounts {
		eng := &Engine{Workers: w}
		out, err := eng.Check(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if out.Executions != cfg.MaxExecutions {
			t.Errorf("workers=%d: executions = %d, want exactly %d", w, out.Executions, cfg.MaxExecutions)
		}
		if out.Complete {
			t.Errorf("workers=%d: capped run reported complete", w)
		}
	}
}

// TestEngineDeadline: a context deadline must stop a large exploration
// promptly and surface as the returned error alongside the partial outcome.
func TestEngineDeadline(t *testing.T) {
	cfg := Config{
		// staged(2,1) with 3 processes: millions of executions — far more
		// than fits in the deadline.
		Protocol:        core.NewStaged(2, 1),
		Inputs:          inputs(3),
		FaultyObjects:   []int{0, 1, 2, 3, 4},
		FaultsPerObject: 1,
		MaxExecutions:   100_000_000,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	eng := &Engine{Workers: 4}
	out, err := eng.Check(ctx, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("engine took %v to honor a 100ms deadline", elapsed)
	}
	if out == nil {
		t.Fatal("no partial outcome returned")
	}
	if out.Executions == 0 {
		t.Error("no executions completed before the deadline")
	}
	if out.Complete {
		t.Error("interrupted run reported complete")
	}
}

// TestEngineImmediateCancel: a context cancelled before Check starts must
// return without exploring.
func TestEngineImmediateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := &Engine{Workers: 2}
	out, err := eng.Check(ctx, Config{
		Protocol: core.SingleCAS{},
		Inputs:   inputs(2),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if out == nil || out.Complete {
		t.Fatalf("want incomplete partial outcome, got %+v", out)
	}
}

// TestEngineProgressReports: the throughput reporter must deliver reports
// with monotone execution counts while a long run is in flight.
func TestEngineProgressReports(t *testing.T) {
	var reports []Progress
	eng := &Engine{
		Workers:       2,
		ProgressEvery: 10 * time.Millisecond,
		Progress:      func(p Progress) { reports = append(reports, p) },
	}
	out, err := eng.Check(context.Background(), Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatal("enumeration must complete")
	}
	if len(reports) == 0 {
		t.Skip("run finished before the first report tick")
	}
	last := int64(0)
	for _, p := range reports {
		if p.Executions < last {
			t.Fatalf("execution count went backwards: %d after %d", p.Executions, last)
		}
		last = p.Executions
	}
}

// TestEngineCheckWithOptions: the unified options front door must drive the
// engine end to end.
func TestEngineCheckWithOptions(t *testing.T) {
	out, err := CheckWith(context.Background(),
		run.WithProtocol(core.SingleCAS{}),
		run.WithDistinctInputs(2),
		run.WithAllObjectsFaulty(fault.Unbounded),
		run.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || !out.OK() {
		t.Fatalf("complete=%v violation=%v", out.Complete, out.Violation)
	}
	if out.Workers != 2 {
		t.Errorf("workers = %d, want 2", out.Workers)
	}
}

// TestEngineSubsetSweep: the engine subset sweep must agree with the
// sequential CheckAllSubsets.
func TestEngineSubsetSweep(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultsPerObject: 1,
	}
	seq, err := CheckAllSubsets(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 4}
	par, err := eng.CheckAllSubsets(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if par.Executions != seq.Executions || par.Complete != seq.Complete {
		t.Errorf("engine sweep = (%d, %v), sequential = (%d, %v)",
			par.Executions, par.Complete, seq.Executions, seq.Complete)
	}
	if (par.Violation == nil) != (seq.Violation == nil) {
		t.Errorf("violation mismatch: engine=%v sequential=%v", par.Violation, seq.Violation)
	}
}
