package explore

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/store"
)

// TestEngineFleetSnapshotsMergeMatchesSingleProcess: two snapshot-publishing
// ledger participants sweep one tree; the fleet-merged worker counters, the
// ledger's merged result count, and the fleet view's totals must all equal
// the single-process execution count — the fleet dashboard never disagrees
// with the verdict.
func TestEngineFleetSnapshotsMergeMatchesSingleProcess(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: fault.Unbounded,
	}
	seq, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}

	runDir := t.TempDir()
	// A generous TTL: renewals at TTL/3 never miss in-process, so no claim
	// is fenced and the worker counters tally each execution exactly once.
	const ttl = time.Second
	regs := make([]*obs.Registry, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		owner := string(rune('a' + i))
		l, _, err := ledger.Join(runDir, "worker-"+owner, ttl)
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		regs[i] = obs.NewRegistry()
		wg.Add(1)
		go func(i int, l *ledger.Ledger) {
			defer wg.Done()
			eng := &Engine{Workers: 2, Ledger: l, Metrics: regs[i], FleetSnapshots: true}
			_, errs[i] = eng.Check(context.Background(), cfg)
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("participant %d: %v", i, err)
		}
	}
	out, _, err := FinalizeLedger(cfg, runDir, false)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if out.Executions != seq.Executions {
		t.Fatalf("merged executions = %d, want %d", out.Executions, seq.Executions)
	}

	// Both workers published a final snapshot on exit, claim or no claim.
	paths, err := store.ListWorkerSnapshots(runDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("snapshots = %v, want 2", paths)
	}
	var metrics []obs.Snapshot
	for _, p := range paths {
		ws, err := obs.LoadSnapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		if ws.LedgerEpoch == 0 || ws.PID == 0 {
			t.Errorf("snapshot %s: epoch %d pid %d", ws.Worker, ws.LedgerEpoch, ws.PID)
		}
		metrics = append(metrics, ws.Metrics)
	}
	merged := obs.MergeSnapshots(metrics...)
	if got := merged.Counters["explore.executions"]; got != int64(seq.Executions) {
		t.Errorf("fleet-merged executions = %d, want %d (single process)", got, seq.Executions)
	}

	view, err := fleet.Load(runDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Workers) != 2 {
		t.Fatalf("fleet view workers = %+v", view.Workers)
	}
	if got := view.Merged.Counters["explore.executions"]; got != int64(seq.Executions) {
		t.Errorf("view merged executions = %d, want %d", got, seq.Executions)
	}
	if view.Ledger == nil || view.Ledger.MergedExecutions != int64(seq.Executions) {
		t.Errorf("view ledger status = %+v, want merged executions %d", view.Ledger, seq.Executions)
	}
}

// TestEngineFleetClaimEventsCorrelate: a participant's event log carries the
// claim lifecycle keyed by (claim id, epoch, worker, ledger epoch) — every
// acquire is settled by exactly one release with a disposition, and the
// "claim" trace spans carry the same correlation keys via Annotate.
func TestEngineFleetClaimEventsCorrelate(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: 1,
	}
	runDir := t.TempDir()
	l, _, err := ledger.Join(runDir, "w0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ev := obs.NewLog(&buf, obs.Debug)
	tr, err := NewTracer(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 2, Ledger: l, Events: ev, Tracer: tr, FleetSnapshots: true}
	if _, err := eng.Check(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := ev.Flush(); err != nil {
		t.Fatal(err)
	}

	type event struct {
		Type   string         `json:"type"`
		Fields map[string]any `json:"fields"`
	}
	acquired := map[string]bool{} // "claim@epoch" -> settled
	var publishes int
	key := func(f map[string]any) string {
		return f["claim"].(string) + "@" + fmt.Sprint(f["epoch"])
	}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var e event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		switch e.Type {
		case "claim.acquire":
			id := key(e.Fields)
			if e.Fields["worker"] != "w0" || e.Fields["ledger_epoch"].(float64) != float64(l.Epoch()) {
				t.Errorf("acquire keys: %v", e.Fields)
			}
			if _, dup := acquired[id]; dup {
				t.Errorf("claim %s acquired twice by one process", id)
			}
			acquired[id] = false
		case "claim.release":
			id := key(e.Fields)
			settled, ok := acquired[id]
			if !ok || settled {
				t.Errorf("release without open acquire: %v", e.Fields)
			}
			acquired[id] = true
			if d := e.Fields["disposition"]; d == "published" {
				publishes++
			} else if d != "abandoned" && d != "fenced" {
				t.Errorf("disposition = %v", d)
			}
		}
	}
	if len(acquired) == 0 || publishes == 0 {
		t.Fatalf("claims acquired = %d, published = %d; want both > 0", len(acquired), publishes)
	}
	for id, settled := range acquired {
		if !settled {
			t.Errorf("claim %s never released", id)
		}
	}

	var claimSpans int
	for _, s := range tr.Recorder().Spans() {
		if s.Args["worker"] != "w0" || s.Args["ledger_epoch"] != l.Epoch() {
			t.Errorf("span %s lacks fleet identity: %v", s.Name, s.Args)
		}
		if s.Name == "claim" {
			claimSpans++
			if s.Cat != "ledger" || s.Args["claim"] == nil || s.Args["disposition"] == nil {
				t.Errorf("claim span args: %+v", s)
			}
		}
	}
	if claimSpans != len(acquired) {
		t.Errorf("claim spans = %d, want one per claim (%d)", claimSpans, len(acquired))
	}
}
