// Package explore is a bounded, exhaustive model checker for consensus
// executions in the functional-fault model.
//
// An execution of the simulator is a pure function of the protocol, the
// inputs, the scheduler's choices, and the fault choices (Definition 1
// faults fire only at operation boundaries, so a binary choice per
// admissible, observable CAS captures the entire adversary). The checker
// therefore enumerates the execution tree by stateless replay: each run is
// driven by a choice path; after the run, the deepest branch point with an
// untaken alternative is advanced (depth-first, odometer style) and the
// execution is replayed from scratch. Wait-freedom of the protocols makes
// every path finite, so for small configurations the enumeration is
// complete — an empirical proof of the paper's possibility theorems, and a
// counterexample finder for its impossibility theorems.
package explore

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dedup"
	"repro/internal/fault"
	"repro/internal/ledger"
	"repro/internal/object"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/word"
)

// Config describes the space of executions to explore.
//
// Deprecated: new code should describe explorations with the unified
// functional options (CheckWith and the run.With... constructors); Config
// remains as a thin shim for one release.
type Config struct {
	// Protocol under test. Required.
	Protocol core.Protocol
	// Inputs holds one input per process. Required.
	Inputs []int64
	// FaultyObjects is the set of object ids the adversary may fault
	// (the paper's "at most f faulty objects", committed up front).
	// Empty means fault-free exploration.
	FaultyObjects []int
	// FaultsPerObject is the per-object fault bound t (fault.Unbounded
	// for t = ∞). Ignored when FaultyObjects is empty.
	FaultsPerObject int
	// Kind is the functional fault to inject; Overriding and Silent are
	// supported (the two one-sided branch faults of Sections 3.3–3.4).
	// Defaults to Overriding.
	Kind fault.Kind
	// FixedPolicy, when non-nil, replaces the checker's per-invocation
	// fault choices with a deterministic policy (still subject to the
	// budget), so only scheduling is explored. The reduced model of
	// Theorem 18 — one process whose CAS executions are always faulty —
	// is expressed this way.
	FixedPolicy fault.Policy
	// MaxExecutions caps the enumeration. 0 means DefaultMaxExecutions.
	MaxExecutions int
	// StepLimit overrides the protocol's per-process step bound.
	StepLimit int
	// Exec selects the execution form: the compiled step machines or the
	// goroutine-gated reference simulator (default run.ExecAuto — compiled
	// whenever the protocol provides a core.Stepper). Both forms enumerate
	// identical trees with identical verdicts and counterexamples.
	Exec run.ExecMode
	// Reduce selects the partial-order reduction mode (default
	// run.ReduceOff): run.ReduceSafe prunes schedule branches via sleep
	// sets and process-symmetry canonicalization while preserving the
	// verdict and the lexicographically least counterexample;
	// run.ReduceAggressive additionally restricts branch points to
	// persistent sets computed from the step machines' object footprints
	// (verdict-preserving only, and requires the compiled form).
	Reduce run.ReduceMode
}

// DefaultMaxExecutions bounds the enumeration when Config.MaxExecutions is 0.
const DefaultMaxExecutions = 200_000

// Counterexample is a violating execution, replayable via its Path (with
// the same Config) or its Schedule (with a sim.Script and scripted faults).
type Counterexample struct {
	// Path is the choice sequence driving the violating execution.
	Path []int
	// Schedule is the sequence of process ids granted steps, in order.
	Schedule []int
	// Verdict describes the violated requirement.
	Verdict run.Verdict
	// Trace is the full event log of the violating execution.
	Trace *trace.Log
	// Inputs are the process inputs of the execution.
	Inputs []int64
}

func (c *Counterexample) String() string {
	return fmt.Sprintf("counterexample (%d steps): %s\nschedule: %v\ntrace:\n%s",
		len(c.Schedule), c.Verdict.String(), c.Schedule, c.Trace)
}

// Outcome summarizes an exploration.
type Outcome struct {
	// Executions is the number of complete executions enumerated.
	Executions int
	// Complete reports that the entire execution tree was enumerated
	// (no violation found and the cap was not hit).
	Complete bool
	// Violation is the first violating execution found, or nil.
	Violation *Counterexample
	// MaxProcSteps is the largest per-process step count observed.
	MaxProcSteps int
	// MaxFaults is the largest total fault count observed in a run.
	MaxFaults int
	// Workers is the number of parallel workers used (1 for the
	// sequential checker).
	Workers int
	// Elapsed is the wall-clock duration of the exploration (engine runs
	// only; zero for the sequential checker).
	Elapsed time.Duration
	// ViolationLatency is the wall-clock time until the first violating
	// execution was replayed (engine runs only; zero if none was found).
	ViolationLatency time.Duration
	// Donations is the number of subtree tasks workers carved off and
	// pushed to the frontier for others to claim (engine runs only).
	Donations int64
	// Steals is the number of tasks claimed from the shared frontier
	// (engine runs only).
	Steals int64
	// Dedup holds the state-cache counters of a deduplicated engine run
	// (nil when deduplication was off).
	Dedup *dedup.Stats
	// ReducePrunes is the number of sleep-blocked subtrees the partial-order
	// reducer cut (engine runs only; zero with reduction off).
	ReducePrunes int64
}

// OK reports that no violation was found.
func (o *Outcome) OK() bool { return o.Violation == nil }

// chooser drives one replayed execution along a fixed decision prefix,
// extending it with first-branch (0) decisions and recording each branch
// point's arity for backtracking.
type chooser struct {
	path  []int
	arity []int
	pos   int
	// lb is the backtracking floor: next never retracts a choice at a
	// position below lb. The sequential checker uses lb = 0 (the whole
	// tree); an engine worker owns the subtree rooted at its prefix and
	// sets lb = len(prefix).
	lb int
}

func (c *chooser) choose(n int) int {
	if n < 1 {
		panic("explore: choose with no alternatives")
	}
	if c.pos == len(c.path) {
		c.path = append(c.path, 0)
	}
	pick := c.path[c.pos]
	if pick >= n {
		// The prefix came from a previous run whose tree shape matched
		// up to here; a deterministic system never shrinks an arity on
		// the same prefix.
		panic(fmt.Sprintf("explore: stale choice %d of %d at position %d", pick, n, c.pos))
	}
	c.arity = append(c.arity, n)
	c.pos++
	return pick
}

// next advances the path depth-first: it truncates to the deepest branch
// point with an untaken alternative and increments it. It returns false when
// the subtree above the backtracking floor is exhausted.
func (c *chooser) next() bool {
	i := len(c.path) - 1
	for i >= c.lb && c.path[i]+1 >= c.arity[i] {
		i--
	}
	if i < c.lb {
		return false
	}
	c.path = c.path[:i+1]
	c.path[i]++
	return true
}

// donate carves off every untaken alternative at the shallowest branch point
// at or above the backtracking floor and returns them as ONE subtree task
// (path = the next untaken alternative, floor = the branch position, so the
// recipient's own backtracking enumerates the remaining alternatives),
// excluding them from this chooser's enumeration. It returns ok=false when
// the remaining subtree has no branch point to split. This is the
// work-sharing primitive of the parallel engine, applied shallowest-first so
// a donation is the largest subtree the worker can give away; consolidating
// the alternatives into one task (rather than one task per alternative)
// keeps donated subtrees big enough to amortize the recipient's cap lease
// and publish cadence.
//
// donate must be called right after a replay, while the recorded arities
// describe the current path. Because d is the shallowest branch point with
// untaken alternatives, every position above it is exhausted for good (the
// tree is deterministic), so raising the floor past d excludes exactly the
// donated subtree from this worker's future backtracking.
func (c *chooser) donate() (path []int, floor int, ok bool) {
	for d := c.lb; d < len(c.arity) && d < len(c.path); d++ {
		if c.path[d]+1 >= c.arity[d] {
			continue
		}
		p := make([]int, d+1)
		copy(p, c.path[:d])
		p[d] = c.path[d] + 1
		c.lb = d + 1
		return p, d, true
	}
	return nil, 0, false
}

// observable reports whether injecting the fault kind on this invocation
// would violate the CAS postconditions Φ (Definition 1); unobservable
// injections are not faults and would only bloat the tree.
func observable(kind fault.Kind, op fault.Op) bool {
	switch kind {
	case fault.Overriding:
		return op.Current != op.Exp && op.New != op.Current
	case fault.Silent:
		return op.Current == op.Exp && op.New != op.Current
	default:
		return false
	}
}

// prepare validates the configuration and resolves the effective fault
// kind, execution cap, and execution form — shared by the sequential
// checker and the parallel engine.
func (cfg *Config) prepare() (kind fault.Kind, cap int, compiled bool, err error) {
	if cfg.Protocol == nil {
		return 0, 0, false, fmt.Errorf("explore: no protocol")
	}
	if len(cfg.Inputs) == 0 {
		return 0, 0, false, fmt.Errorf("explore: no inputs")
	}
	kind = cfg.Kind
	if kind == fault.None {
		kind = fault.Overriding
	}
	if cfg.FixedPolicy == nil && kind != fault.Overriding && kind != fault.Silent {
		return 0, 0, false, fmt.Errorf("explore: unsupported fault kind %v", kind)
	}
	compiled, err = run.ResolveExec(cfg.Exec, cfg.Protocol)
	if err != nil {
		return 0, 0, false, err
	}
	if cfg.Reduce != run.ReduceOff {
		if cfg.FixedPolicy != nil {
			// The reducer's independence relation reasons about the
			// checker's own fault branches (observable ∧ admitted); an
			// opaque policy could fire faults the purity predicate does
			// not see.
			return 0, 0, false, fmt.Errorf("explore: partial-order reduction requires the checker's own fault policy, not FixedPolicy")
		}
		if cfg.Reduce == run.ReduceAggressive && !compiled {
			return 0, 0, false, fmt.Errorf("explore: aggressive reduction needs object footprints from the compiled step machines; %s has no Stepper or the interpreted form was forced", cfg.Protocol.Name())
		}
		if len(cfg.Inputs) > 64 {
			// The reducer's sleep and persistent sets are process bitmasks.
			return 0, 0, false, fmt.Errorf("explore: partial-order reduction supports at most 64 processes, got %d", len(cfg.Inputs))
		}
	}
	cap = cfg.MaxExecutions
	if cap <= 0 {
		cap = DefaultMaxExecutions
	}
	return kind, cap, compiled, nil
}

// ConfigFrom converts the unified settings to an exploration Config.
func ConfigFrom(s *run.Settings) Config {
	return Config{
		Protocol:        s.Protocol,
		Inputs:          s.Inputs,
		FaultyObjects:   s.FaultyObjects,
		FaultsPerObject: s.FaultsPerObject,
		Kind:            s.Kind,
		FixedPolicy:     s.Policy,
		MaxExecutions:   s.MaxExecutions,
		StepLimit:       s.StepLimit,
		Exec:            s.Exec,
		Reduce:          s.Reduce,
	}
}

// CheckWith explores the execution space described by the unified run.With...
// options — the one way executions are constructed across the packages. The
// exploration runs on the parallel engine with the configured worker count
// (run.WithWorkers; default GOMAXPROCS) and honors ctx cancellation.
//
// run.WithCheckpoint creates a run store and checkpoints into it;
// run.WithResume opens an existing run store, refuses mismatched settings
// (store.ErrMismatch), and continues the stored exploration. run.WithDedup
// turns on state deduplication. run.WithTraceDir captures durable execution
// traces (the tracer is created and sealed inside this call).
func CheckWith(ctx context.Context, opts ...run.Option) (*Outcome, error) {
	s := run.NewSettings(opts...)
	eng := &Engine{
		Workers:         s.Workers,
		Dedup:           s.Dedup,
		CheckpointEvery: s.CheckpointEvery,
		Metrics:         s.Metrics,
		Events:          s.Events,
	}
	cfg := ConfigFrom(s)
	switch {
	case s.LedgerDir != "":
		if s.Resume != "" || s.CheckpointDir != "" {
			return nil, fmt.Errorf("explore: the work ledger is the durable state of a distributed run; it cannot be combined with checkpointing or resume")
		}
		l, err := JoinLedger(cfg, s, eng.Exhaustive, eng.Dedup)
		if err != nil {
			return nil, err
		}
		eng.Ledger = l
	case s.Resume != "":
		st, err := store.Open(s.Resume)
		if err != nil {
			return nil, err
		}
		m, err := ManifestFor(cfg, eng.Exhaustive, eng.Dedup)
		if err != nil {
			st.Close()
			return nil, err
		}
		if err := st.Verify(m); err != nil {
			st.Close()
			return nil, err
		}
		eng.Store = st
	case s.CheckpointDir != "":
		m, err := ManifestFor(cfg, eng.Exhaustive, eng.Dedup)
		if err != nil {
			return nil, err
		}
		st, err := store.Create(s.CheckpointDir, m)
		if err != nil {
			return nil, err
		}
		eng.Store = st
	}
	if s.TraceDir != "" {
		tr, err := NewTracerFor(s)
		if err != nil {
			if eng.Store != nil {
				eng.Store.Close()
			}
			return nil, err
		}
		eng.Tracer = tr
	}
	out, err := eng.Check(ctx, cfg)
	if cerr := eng.Tracer.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if eng.Store != nil {
		// Release the run-directory owner lock so a later process (or a
		// resume) is not refused while this one lingers.
		if cerr := eng.Store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return out, err
}

// WorkerIDFor returns the effective ledger participant id for the settings:
// the configured WorkerID, or the canonical "host:pid" default.
func WorkerIDFor(s *run.Settings) string {
	if s.WorkerID != "" {
		return s.WorkerID
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// JoinLedger joins (or creates) the work ledger in s.LedgerDir and binds the
// run directory to these settings: the first participant commits a manifest
// carrying the ledger epoch; every later participant must present identical
// settings and is refused (store.ErrMismatch) otherwise — two processes
// silently sweeping different execution spaces into one ledger would merge
// to garbage.
func JoinLedger(cfg Config, s *run.Settings, exhaustive, dedup bool) (*ledger.Ledger, error) {
	l, _, err := ledger.Join(s.LedgerDir, WorkerIDFor(s), s.LeaseTTL)
	if err != nil {
		return nil, err
	}
	m, err := ManifestFor(cfg, exhaustive, dedup)
	if err != nil {
		return nil, err
	}
	m.LedgerEpoch = l.Epoch()
	st, err := store.CreateShared(s.LedgerDir, m)
	if errors.Is(err, fs.ErrExist) {
		if st, err = store.OpenShared(s.LedgerDir); err != nil {
			return nil, err
		}
		if verr := st.Verify(m); verr != nil {
			st.Close()
			return nil, verr
		}
	} else if err != nil {
		return nil, err
	}
	st.Close()
	return l, nil
}

// Check exhaustively explores the execution tree and returns the outcome.
// It is the sequential reference implementation: the parallel Engine
// enumerates the same leaves and is checked against it.
func Check(cfg Config) (*Outcome, error) {
	kind, cap, compiled, err := cfg.prepare()
	if err != nil {
		return nil, err
	}

	out := &Outcome{Workers: 1}
	c := &chooser{}
	es := newExecState(cfg, kind, compiled, c, nil)
	defer es.close()
	for out.Executions < cap {
		c.arity = c.arity[:0]
		c.pos = 0
		verdict, stats, pruned, err := es.runLeaf(context.Background())
		if err != nil {
			return nil, err
		}
		if pruned {
			// Sleep-blocked node (reduction): the whole subtree below the
			// pruned prefix is covered below an earlier sibling. Backtrack
			// past it without counting an execution.
			if es.prunedAt <= c.lb {
				out.Complete = true
				return out, nil
			}
			c.path = c.path[:es.prunedAt]
			c.arity = c.arity[:es.prunedAt]
			if !c.next() {
				out.Complete = true
				return out, nil
			}
			continue
		}
		out.Executions++
		if stats.maxSteps > out.MaxProcSteps {
			out.MaxProcSteps = stats.maxSteps
		}
		if stats.faults > out.MaxFaults {
			out.MaxFaults = stats.faults
		}
		if !verdict.OK() {
			out.Violation = es.counterexample(verdict)
			return out, nil
		}
		if !c.next() {
			out.Complete = true
			return out, nil
		}
	}
	return out, nil
}

type runStats struct {
	maxSteps int
	faults   int
}

// execState is the reusable replay machinery of one enumeration loop (one
// sequential Check, or one engine worker): the fault budget, the object
// bank, the simulator arena with its pre-bound programs, the trace log, the
// schedule buffer, and the verdict evaluator. All of it is allocated once
// and reset per leaf — replaying a leaf used to allocate ~84 objects
// (closures, bank, channels, goroutines, slices); at millions of leaves the
// allocator and scheduler churn dominated the engine's profile and made
// worker scaling negative.
type execState struct {
	cfg  Config
	kind fault.Kind
	c    *chooser
	dh   *dedupHandle // nil without dedup
	red  *reducer     // nil without partial-order reduction

	// tracker is the single canonical-state observer of the replay,
	// present whenever dedup or reduction is on (shared by both).
	tracker *dedup.Tracker
	// prunedAt records where the current replay halted early (-1 if it ran
	// to its end): the dedup set claimed the state for a smaller path, or
	// the reducer found the node sleep-blocked (pruneSleep tells which).
	prunedAt   int
	pruneSleep bool

	budget   *fault.Budget
	bank     *object.Bank
	log      *trace.Log
	schedule []int
	eval     *run.Evaluator

	// Goroutine-gated reference form (compiled == false).
	arena  *sim.Arena
	simCfg sim.Config

	// Compiled form (compiled == true): the protocol's step machines on
	// the single-goroutine stepped runner.
	compiled   bool
	stepped    *sim.Stepped
	steppedCfg sim.SteppedConfig
}

// newExecState builds the replay machinery for one enumeration loop driven
// by the given chooser. compiled must come from Config.prepare (callers may
// not request a compiled form the protocol does not provide). Callers must
// close the state to release the arena's goroutines (a no-op on the
// compiled path, which holds none).
func newExecState(cfg Config, kind fault.Kind, compiled bool, c *chooser, dh *dedupHandle) *execState {
	es := &execState{cfg: cfg, kind: kind, compiled: compiled, c: c, dh: dh}
	es.budget = fault.NewFixedBudget(cfg.FaultyObjects, cfg.FaultsPerObject)
	policy := cfg.FixedPolicy
	if policy == nil {
		policy = fault.PolicyFunc(func(op fault.Op) fault.Proposal {
			if !es.budget.Admits(op.Object) || !observable(es.kind, op) {
				return fault.NoFault
			}
			if es.c.choose(2) == 1 {
				return fault.Proposal{Kind: es.kind}
			}
			return fault.NoFault
		})
	}
	es.bank = object.NewBank(cfg.Protocol.Objects(), es.budget, policy)
	es.log = trace.New()
	es.eval = run.NewEvaluator(cfg.Inputs)

	limit := cfg.StepLimit
	if limit <= 0 {
		limit = cfg.Protocol.StepBound(len(cfg.Inputs))
	}
	if dh != nil {
		es.tracker = dh.tracker
	}
	if cfg.Reduce != run.ReduceOff {
		if es.tracker == nil {
			es.tracker = dedup.NewTracker(cfg.Protocol.Objects(), cfg.Inputs, true)
		}
		es.red = newReducer(cfg.Reduce, kind, len(cfg.Inputs), es.tracker, es.budget)
	}
	var observer func(trace.Event)
	if es.tracker != nil {
		observer = es.tracker.Observe
	}
	if compiled {
		stepper, ok := core.Compile(cfg.Protocol)
		if !ok {
			panic(fmt.Sprintf("explore: compiled execution of %s, which has no Stepper", cfg.Protocol.Name()))
		}
		prog := run.NewSteppedExec(stepper, es.bank, cfg.Inputs)
		if es.red != nil {
			es.red.pendingOf = prog.Pending
			es.red.footprintOf = prog.Footprint
		}
		es.stepped = sim.NewStepped(len(cfg.Inputs))
		es.steppedCfg = sim.SteppedConfig{
			Procs:     len(cfg.Inputs),
			Program:   prog,
			Scheduler: sim.SchedulerFunc(es.schedNext),
			StepLimit: limit,
			Log:       es.log,
			Observer:  observer,
		}
		return es
	}
	es.arena = sim.NewArena(len(cfg.Inputs))
	if es.red != nil {
		es.red.pendingOf = es.arena.Pending
	}
	es.simCfg = sim.Config{
		Programs:  run.BoundPrograms(cfg.Protocol, es.bank, cfg.Inputs, es.arena.Procs()),
		Scheduler: sim.SchedulerFunc(es.schedNext),
		StepLimit: limit,
		Log:       es.log,
		Observer:  observer,
	}
	return es
}

// schedNext is the replay scheduler: it folds the previous step into the
// reducer (when on), consults the dedup set (when on) before consuming each
// scheduling decision, then follows the choice path through the branch
// alternatives this node exposes — the enabled set, or the reducer's
// filtered candidate set.
func (es *execState) schedNext(enabled []int) (int, bool) {
	c := es.c
	if es.red != nil {
		es.red.advance()
	}
	if es.dh != nil {
		fp := es.tracker.Fingerprint()
		if es.red != nil {
			// Same state, different sleep set ⇒ different explored
			// successors; only identical pairs may merge.
			fp = es.red.salt(fp)
		}
		if es.dh.set.Visit(fp, c.path[:c.pos]) == dedup.Prune {
			es.prunedAt = c.pos
			es.pruneSleep = false
			return 0, false
		}
	}
	if es.red == nil {
		pick := enabled[0]
		if len(enabled) > 1 {
			pick = enabled[c.choose(len(enabled))]
		}
		es.schedule = append(es.schedule, pick)
		return pick, true
	}
	cand := es.red.candidates(enabled)
	if len(cand) == 0 {
		// Sleep-blocked: every continuation from this node is covered
		// below an earlier sibling.
		es.prunedAt = c.pos
		es.pruneSleep = true
		return 0, false
	}
	idx := 0
	if len(cand) > 1 {
		idx = c.choose(len(cand))
	}
	pick := cand[idx]
	es.red.chose(cand, idx)
	es.schedule = append(es.schedule, pick)
	return pick, true
}

// close releases the arena's process goroutines (no-op on the compiled
// path, which runs on the calling goroutine).
func (es *execState) close() {
	if es.arena != nil {
		es.arena.Close()
	}
}

// runLeaf replays one execution along the chooser's path, reusing the
// execState's machinery. When dedup or reduction is on and the replay
// reaches a state already claimed by a lexicographically smaller path (or a
// sleep-blocked node), it halts early and reports pruned=true (es.prunedAt
// records where, es.pruneSleep which mechanism); the replay is then neither
// evaluated nor counted — any violation visible in the halted prefix also
// appears below a smaller path.
//
// The returned verdict borrows slices owned by the arena and the execState;
// callers retaining a leaf (violations, trace samples) must go through
// counterexample, which clones everything.
func (es *execState) runLeaf(ctx context.Context) (run.Verdict, runStats, bool, error) {
	es.budget.Reset()
	es.bank.Reset()
	es.log.Reset()
	es.schedule = es.schedule[:0]
	es.prunedAt = -1
	if es.tracker != nil {
		es.tracker.Reset()
	}
	if es.red != nil {
		es.red.reset()
	}

	var res *sim.Result
	var err error
	if es.compiled {
		res, err = es.stepped.Run(ctx, es.steppedCfg)
	} else {
		res, err = es.arena.Run(ctx, es.simCfg)
	}
	if err != nil && res == nil {
		return run.Verdict{}, runStats{}, false, err
	}
	if err != nil && !errors.Is(err, sim.ErrWaitFreedom) {
		// Cancellation (or any future partial-result condition): the
		// truncated execution must not be evaluated as if it completed.
		return run.Verdict{}, runStats{}, false, err
	}
	if es.prunedAt >= 0 {
		return run.Verdict{}, runStats{}, true, nil
	}

	stats := runStats{faults: es.budget.TotalFaults()}
	for _, s := range res.Steps {
		if s > stats.maxSteps {
			stats.maxSteps = s
		}
	}
	return es.eval.Evaluate(res, err), stats, false, nil
}

// counterexample snapshots the most recent runLeaf as a self-contained
// Counterexample: the path, schedule, trace, and verdict slices are cloned,
// so the record stays valid while the execState keeps replaying.
func (es *execState) counterexample(verdict run.Verdict) *Counterexample {
	verdict.Decisions = append([]word.Word(nil), verdict.Decisions...)
	verdict.Decided = append([]bool(nil), verdict.Decided...)
	return &Counterexample{
		Path:     append([]int(nil), es.c.path...),
		Schedule: append([]int(nil), es.schedule...),
		Verdict:  verdict,
		Trace:    es.log.Clone(),
		Inputs:   es.cfg.Inputs,
	}
}
