package explore

import (
	"context"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/store"
	"repro/internal/trace/export"
)

// TestCheckpointRefusesExecFormMismatch: a checkpoint is a claim about what
// a specific engine explored, so a run directory created under one execution
// form refuses to resume under the other (store.ErrMismatch) — in both
// directions.
func TestCheckpointRefusesExecFormMismatch(t *testing.T) {
	for _, tc := range []struct {
		name            string
		created, resume run.ExecMode
	}{
		{"compiled-refuses-interpreted", run.ExecCompiled, run.ExecInterpreted},
		{"interpreted-refuses-compiled", run.ExecInterpreted, run.ExecCompiled},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := benchConfig()
			cfg.Exec = tc.created
			m, err := ManifestFor(cfg, false, false)
			if err != nil {
				t.Fatal(err)
			}
			st, err := store.Create(filepath.Join(t.TempDir(), "run"), m)
			if err != nil {
				t.Fatal(err)
			}

			same, err := ManifestFor(cfg, false, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Verify(same); err != nil {
				t.Fatalf("same form must verify: %v", err)
			}

			cfg.Exec = tc.resume
			other, err := ManifestFor(cfg, false, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Verify(other); !errors.Is(err, store.ErrMismatch) {
				t.Fatalf("Verify under the other form = %v, want store.ErrMismatch", err)
			}
		})
	}
}

// TestExplainRefusesExecFormMismatch (the -explain bugfix): a capture must
// be replayed through the execution form that produced it — verifying a
// compiled capture on the goroutine path would silently prove the wrong
// thing. Captures without an exec entry (predating the compiled form) are
// replayed under whatever the configuration resolves.
func TestExplainRefusesExecFormMismatch(t *testing.T) {
	cfg := benchConfig()
	cfg.Exec = run.ExecInterpreted
	x := &export.Execution{Meta: export.Meta{Kind: "execution", Run: map[string]string{"exec": "compiled"}}}
	err := checkExecForm(cfg, x.Meta.Run)
	if err == nil {
		t.Fatal("compiled capture replayed on the interpreted path without refusal")
	}
	if !strings.Contains(err.Error(), "captured by the compiled engine") ||
		!strings.Contains(err.Error(), "-engine compiled") {
		t.Errorf("refusal must name both forms and the fix, got: %v", err)
	}

	cfg.Exec = run.ExecCompiled
	if err := checkExecForm(cfg, map[string]string{"exec": "interpreted"}); err == nil {
		t.Error("interpreted capture replayed on the compiled path without refusal")
	}
	if err := checkExecForm(cfg, map[string]string{"exec": "compiled"}); err != nil {
		t.Errorf("matching form refused: %v", err)
	}
	if err := checkExecForm(cfg, map[string]string{}); err != nil {
		t.Errorf("legacy capture without exec entry refused: %v", err)
	}
}

// TestExplainFileAsFormOverride drives the refusal end to end through a real
// capture file, the way `modelcheck -engine X -explain` reaches it: an
// explicit override contradicting the recorded form is refused, the matching
// override and the auto default both replay.
func TestExplainFileAsFormOverride(t *testing.T) {
	dir := t.TempDir()
	out, err := CheckWith(context.Background(),
		violatingOpts(run.WithTraceDir(dir, 0))...)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("expected a violation")
	}
	cap := globOne(t, dir, "violation-*.jsonl")

	x, err := export.ReadFile(cap)
	if err != nil {
		t.Fatal(err)
	}
	recorded := x.Meta.Run["exec"]
	if recorded != "compiled" && recorded != "interpreted" {
		t.Fatalf("capture records exec=%q, want compiled or interpreted", recorded)
	}
	other := run.ExecCompiled
	same := run.ExecInterpreted
	if recorded == "compiled" {
		other, same = same, other
	}

	if err := ExplainFileAs(io.Discard, cap, other); err == nil {
		t.Errorf("replaying a %s capture under the other form must be refused", recorded)
	} else if !strings.Contains(err.Error(), recorded) {
		t.Errorf("refusal must name the recorded form %q, got: %v", recorded, err)
	}
	if err := ExplainFileAs(io.Discard, cap, same); err != nil {
		t.Errorf("matching override refused: %v", err)
	}
	if err := ExplainFileAs(io.Discard, cap, run.ExecAuto); err != nil {
		t.Errorf("auto (defer to the recording) refused: %v", err)
	}
}

// TestEngineCancelMidLeaseWorkerSumCompiled is the stepped-runner variant of
// TestEngineCancelMidLeaseWorkerSum: cancellation strikes workers mid-lease
// while every leaf runs through the compiled stepped runner (pinned
// explicitly so a future default change cannot silently downgrade the
// coverage), and the per-worker counters plus the restored count must still
// sum to the reported total. Run under -race via scripts/check.sh.
func TestEngineCancelMidLeaseWorkerSumCompiled(t *testing.T) {
	cfg := benchConfig()
	cfg.Exec = run.ExecCompiled
	cfg.MaxExecutions = 1_000_000
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	out, err := (&Engine{Workers: 4, LeaseSize: 16, Metrics: reg}).Check(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Complete {
		t.Error("cancelled run reported complete")
	}
	s := reg.Snapshot()
	if got := s.Counters["explore.executions"]; got != int64(out.Executions) {
		t.Errorf("explore.executions = %d, Outcome.Executions = %d", got, out.Executions)
	}
	sum := sumWorkerCounters(s, ".executions") + s.Counters["explore.executions.restored"]
	if sum != int64(out.Executions) {
		t.Errorf("worker sum + restored = %d, want %d — a lease was lost or double-counted on cancellation", sum, out.Executions)
	}
}

// TestEngineFormsAgreeOnCoveringSlab pins that the two forms produce the
// identical Outcome on the capped covering slab the benchmarks use — same
// execution count, same canonical counterexample — through the full engine
// (workers, leases, frontier), not just the leaf-level CrossCheck.
func TestEngineFormsAgreeOnCoveringSlab(t *testing.T) {
	cfg := benchConfig()
	cfg.Exec = run.ExecInterpreted
	ref, err := (&Engine{Workers: 2}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exec = run.ExecCompiled
	got, err := (&Engine{Workers: 2}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Executions != ref.Executions || got.Complete != ref.Complete ||
		got.MaxProcSteps != ref.MaxProcSteps || got.MaxFaults != ref.MaxFaults {
		t.Fatalf("outcomes diverge: compiled {execs=%d complete=%v steps=%d faults=%d}, interpreted {execs=%d complete=%v steps=%d faults=%d}",
			got.Executions, got.Complete, got.MaxProcSteps, got.MaxFaults,
			ref.Executions, ref.Complete, ref.MaxProcSteps, ref.MaxFaults)
	}
	if (got.Violation == nil) != (ref.Violation == nil) {
		t.Fatalf("violation presence diverges: compiled %v, interpreted %v",
			got.Violation != nil, ref.Violation != nil)
	}
	if got.Violation != nil {
		if want := ref.Violation.Path; len(got.Violation.Path) != len(want) {
			t.Errorf("canonical violation path = %v, want %v", got.Violation.Path, want)
		} else {
			for i := range want {
				if got.Violation.Path[i] != want[i] {
					t.Errorf("canonical violation path = %v, want %v", got.Violation.Path, want)
					break
				}
			}
		}
	}
}
