package explore

import (
	"context"
	"fmt"
	"reflect"

	"repro/internal/run"
)

// CrossReport is the outcome of a compiled-vs-interpreted differential
// sweep.
type CrossReport struct {
	// Executions is the number of leaves both forms replayed.
	Executions int
	// Complete reports the full tree was enumerated (no divergence and the
	// cap was not hit).
	Complete bool
	// Diverged reports the forms disagreed; Path and Detail then identify
	// the lexicographically first diverging leaf and what differed.
	Diverged bool
	Path     []int
	Detail   string
}

// CrossCheck enumerates the execution tree leaf for leaf through BOTH
// execution forms — the goroutine-gated reference simulator and the
// compiled step machines — and compares every observable of every leaf:
// the extended choice path, the schedule, the verdict (violation, detail,
// decisions), the per-process step counts, the fault tally, and the full
// trace event log. The enumeration is driven by the interpreted form (the
// reference), in its depth-first order, so the first divergence reported is
// the lexicographically least one; on a clean sweep both forms necessarily
// agree on the lex-least counterexample and on completeness.
//
// The protocol must provide a Stepper (run.ExecCompiled would refuse it
// otherwise); dedup and fixed policies are outside CrossCheck's scope —
// it exists to certify the compiled form against the reference, and does so
// over the checker's own choice-driven fault policy.
func CrossCheck(cfg Config) (*CrossReport, error) {
	icfg := cfg
	icfg.Exec = run.ExecInterpreted
	ccfg := cfg
	ccfg.Exec = run.ExecCompiled
	kind, cap, _, err := icfg.prepare()
	if err != nil {
		return nil, err
	}
	if _, _, _, err := ccfg.prepare(); err != nil {
		return nil, err
	}
	if cfg.FixedPolicy != nil {
		return nil, fmt.Errorf("explore: CrossCheck drives the checker's own fault policy, not FixedPolicy")
	}

	ic := &chooser{}
	ies := newExecState(icfg, kind, false, ic, nil)
	defer ies.close()
	cc := &chooser{}
	ces := newExecState(ccfg, kind, true, cc, nil)
	defer ces.close()

	rep := &CrossReport{}
	for rep.Executions < cap {
		ic.arity = ic.arity[:0]
		ic.pos = 0
		iv, istats, _, err := ies.runLeaf(context.Background())
		if err != nil {
			return nil, fmt.Errorf("explore: crosscheck: interpreted leaf %v: %w", ic.path, err)
		}

		// Replay the same leaf through the compiled form: seed its chooser
		// with the reference's full extended path. An equivalent compiled
		// run consumes exactly those choices; a structural divergence
		// (different arity on the same prefix) surfaces as the chooser's
		// stale-choice panic, which is caught and reported.
		cc.path = append(cc.path[:0], ic.path...)
		cc.arity = cc.arity[:0]
		cc.pos = 0
		cv, cstats, err := crossLeaf(ces)
		rep.Executions++
		if err != nil {
			rep.Diverged = true
			rep.Path = append([]int(nil), ic.path...)
			rep.Detail = err.Error()
			return rep, nil
		}
		if diff := diffLeaf(ies, ces, iv, cv, istats, cstats, ic, cc); diff != "" {
			rep.Diverged = true
			rep.Path = append([]int(nil), ic.path...)
			rep.Detail = diff
			return rep, nil
		}
		if !ic.next() {
			rep.Complete = true
			return rep, nil
		}
	}
	return rep, nil
}

// crossLeaf replays one leaf on the compiled execState, converting a
// chooser stale-choice panic (the compiled form branching where the
// reference did not) into a divergence error instead of crashing the sweep.
func crossLeaf(es *execState) (v run.Verdict, stats runStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compiled form diverged structurally: %v", r)
		}
	}()
	v, stats, _, err = es.runLeaf(context.Background())
	if err != nil {
		err = fmt.Errorf("compiled leaf failed: %w", err)
	}
	return v, stats, err
}

// diffLeaf compares every observable of one leaf across the two forms and
// describes the first difference ("" when identical).
func diffLeaf(ies, ces *execState, iv, cv run.Verdict, istats, cstats runStats, ic, cc *chooser) string {
	if cc.pos != len(ic.path) || len(cc.path) != len(ic.path) {
		return fmt.Sprintf("choice path: interpreted used %v, compiled consumed %d of %v",
			ic.path, cc.pos, cc.path)
	}
	if !reflect.DeepEqual(ies.schedule, ces.schedule) {
		return fmt.Sprintf("schedule: interpreted %v, compiled %v", ies.schedule, ces.schedule)
	}
	if iv.Violation != cv.Violation || iv.Detail != cv.Detail {
		return fmt.Sprintf("verdict: interpreted %s, compiled %s", iv.String(), cv.String())
	}
	if iv.Agreed != cv.Agreed || iv.Stopped != cv.Stopped ||
		!reflect.DeepEqual(iv.Decided, cv.Decided) || !reflect.DeepEqual(iv.Decisions, cv.Decisions) {
		return fmt.Sprintf("decisions: interpreted %s (stopped=%v), compiled %s (stopped=%v)",
			iv.String(), iv.Stopped, cv.String(), cv.Stopped)
	}
	if istats != cstats {
		return fmt.Sprintf("stats: interpreted maxSteps=%d faults=%d, compiled maxSteps=%d faults=%d",
			istats.maxSteps, istats.faults, cstats.maxSteps, cstats.faults)
	}
	if diff := diffEvents(ies.log.Events(), ces.log.Events()); diff != "" {
		return "trace: " + diff
	}
	return ""
}
