package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/word"
)

// TestCompiledMatchesInterpreted is the equivalence gate of the compiled
// execution form (scripts/check.sh runs it by name): for every protocol
// with a Stepper, a full covering sweep — n = 2 processes, f = 1 faulty
// object, unbounded faults per object — is enumerated leaf for leaf through
// both forms, comparing verdicts, schedules, decisions, step counts, fault
// tallies, and complete trace logs. Any divergence fails with the
// lexicographically least diverging leaf.
func TestCompiledMatchesInterpreted(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"single-cas", Config{
			Protocol:        core.SingleCAS{},
			Inputs:          inputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		}},
		{"f-plus-one", Config{
			Protocol:        core.NewFPlusOne(1),
			Inputs:          inputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		}},
		{"staged", Config{
			Protocol:        core.NewStaged(1, 1),
			Inputs:          inputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		}},
		{"silent-retry", Config{
			Protocol:        core.NewSilentRetry(1),
			Inputs:          inputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
			Kind:            fault.Silent,
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.MaxExecutions = 2_000_000
			rep, err := CrossCheck(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Diverged {
				t.Fatalf("forms diverged after %d executions at leaf %v:\n%s",
					rep.Executions, rep.Path, rep.Detail)
			}
			if !rep.Complete {
				t.Fatalf("sweep hit the %d-execution cap before completing (%d executions)",
					cfg.MaxExecutions, rep.Executions)
			}
			t.Logf("%s: %d executions identical under both forms", tc.name, rep.Executions)
		})
	}
}

// TestCrossCheckDetectsDivergence pins that the differential checker is not
// vacuous: a protocol whose Stepper deliberately disagrees with its Decide
// must be flagged.
func TestCrossCheckDetectsDivergence(t *testing.T) {
	cfg := Config{
		Protocol:        brokenProtocol{},
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
		MaxExecutions:   10_000,
	}
	rep, err := CrossCheck(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diverged {
		t.Fatalf("broken stepper not flagged: %+v", rep)
	}
	if len(rep.Path) == 0 && rep.Executions != 1 {
		t.Errorf("divergence not pinned to a leaf: %+v", rep)
	}
}

// brokenProtocol is SingleCAS with a Stepper that decides its own input
// instead of the CAS winner — a seeded equivalence bug.
type brokenProtocol struct {
	core.SingleCAS
}

func (brokenProtocol) Compile() core.Stepper { return brokenStepper{} }

type brokenStepper struct{}

func (brokenStepper) Begin(input int64) core.State {
	core.ValidateInput(input)
	return core.State{Out: input}
}

func (brokenStepper) Step(st *core.State, env core.Env) (bool, int64) {
	env.CAS(0, 0, 0) // wrong arguments: never installs the input
	return true, st.Out
}

func (brokenStepper) Pending(*core.State) (int, word.Word, word.Word) { return 0, 0, 0 }

func (brokenStepper) Footprint(*core.State) (int, int) { return 0, 0 }
