package explore_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/explore"
)

// Exhaustively verify Theorem 6's smallest instance: Figure 3 with one
// object, one tolerated fault, two processes — every schedule, every fault
// placement.
func ExampleCheck() {
	out, err := explore.Check(explore.Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          []int64{10, 11},
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Complete, out.OK(), out.Executions)
	// Output: true true 4356
}

// The same protocol with one process too many: the checker exhibits the
// violation Theorem 19 predicts.
func ExampleCheck_impossibility() {
	out, err := explore.Check(explore.Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          []int64{10, 11, 12},
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(out.OK(), out.Violation.Verdict.Violation)
	// Output: false consistency
}

// Seeded randomized stress for configurations whose trees are too large to
// enumerate.
func ExampleStress() {
	out, err := explore.Stress(explore.Config{
		Protocol:        core.NewStaged(2, 1),
		Inputs:          []int64{10, 11, 12},
		FaultyObjects:   []int{0, 1},
		FaultsPerObject: 1,
	}, 100, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Runs, out.Violations)
	// Output: 100 0
}
