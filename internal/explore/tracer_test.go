package explore

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/trace/export"
)

// violatingOpts is the smallest known-violating configuration: the staged
// protocol beyond its tolerance bound (f=1 faulty objects per stage with
// t=1 faults each, three processes).
func violatingOpts(extra ...run.Option) []run.Option {
	return append([]run.Option{
		run.WithProtocol(core.NewStaged(1, 1)),
		run.WithDistinctInputs(3),
		run.WithAllObjectsFaulty(1),
		run.WithFaultKind(fault.Overriding),
	}, extra...)
}

func globOne(t *testing.T, dir, pattern string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("glob %s: got %v, want exactly one match", pattern, matches)
	}
	return matches[0]
}

// TestTraceRoundTrip is the end-to-end contract of the tracing subsystem:
// an exploration with tracing on writes a violation capture whose recorded
// choice path, replayed under the configuration rebuilt from the file's own
// meta, reproduces the identical event sequence and the same verdict.
func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out, err := CheckWith(context.Background(),
		violatingOpts(run.WithTraceDir(dir, 0), run.WithWorkers(2))...)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("expected a violation from the over-budget staged config")
	}

	x, err := export.ReadFile(globOne(t, dir, "violation-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if x.Meta.Verdict != string(run.ViolationConsistency) {
		t.Errorf("captured verdict = %q, want consistency", x.Meta.Verdict)
	}

	// Rebuild the configuration from the trace header alone, as
	// `modelcheck -explain` does, and replay the recorded path.
	s, err := run.SettingsFromMeta(x.Meta.Run, x.Meta.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := Replay(ConfigFrom(s), x.Meta.Path)
	if err != nil {
		t.Fatal(err)
	}
	replayed := ce.Trace.Events()
	if len(replayed) != len(x.Events) {
		t.Fatalf("replay produced %d events, capture holds %d", len(replayed), len(x.Events))
	}
	for i := range replayed {
		if replayed[i] != x.Events[i] {
			t.Errorf("event %d deviates:\n  capture: %+v\n  replay : %+v", i, x.Events[i], replayed[i])
		}
	}
	if string(ce.Verdict.Violation) != x.Meta.Verdict {
		t.Errorf("replay verdict %q != captured %q", ce.Verdict.Violation, x.Meta.Verdict)
	}

	// The engine's wall-clock spans must have been sealed on Close: the
	// spans file parses without ErrTruncated and holds at least the
	// worker task spans.
	sp, err := export.ReadFile(globOne(t, dir, "spans-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Meta.Kind != "spans" || len(sp.Spans) == 0 {
		t.Errorf("spans file: kind %q, %d spans", sp.Meta.Kind, len(sp.Spans))
	}

	// Every capture also gets a Perfetto rendering.
	if _, err := os.Stat(globOne(t, dir, "violation-*.perfetto.json")); err != nil {
		t.Error(err)
	}
}

// TestTraceExplain: the explainer must replay the capture, verify it, and
// narrate the faulty CAS and the tolerance bound.
func TestTraceExplain(t *testing.T) {
	dir := t.TempDir()
	out, err := CheckWith(context.Background(),
		violatingOpts(run.WithTraceDir(dir, 0))...)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("expected a violation")
	}
	var buf bytes.Buffer
	if err := ExplainFile(&buf, globOne(t, dir, "violation-*.jsonl")); err != nil {
		t.Fatalf("explain: %v\n%s", err, buf.String())
	}
	got := buf.String()
	for _, want := range []string{
		"replay", "verified", "consistency", "mis-fired", "tolerance bound", "Theorem",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("explanation lacks %q:\n%s", want, got)
		}
	}
}

// TestExplainRejectsSpansFile: the explainer only explains executions.
func TestExplainRejectsSpansFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := CheckWith(context.Background(),
		violatingOpts(run.WithTraceDir(dir, 0))...); err != nil {
		t.Fatal(err)
	}
	err := ExplainFile(&bytes.Buffer{}, globOne(t, dir, "spans-*.jsonl"))
	if err == nil {
		t.Error("explaining a spans file must fail")
	}
}

// TestTracerSampling: with sampling on and a passing configuration, some
// passing executions are captured and marked verdict "ok".
func TestTracerSampling(t *testing.T) {
	dir := t.TempDir()
	out, err := CheckWith(context.Background(),
		run.WithProtocol(core.NewStaged(1, 1)),
		run.WithDistinctInputs(2),
		run.WithAllObjectsFaulty(1),
		run.WithTraceDir(dir, 25),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || !out.OK() {
		t.Fatalf("reference config must pass: complete=%v violation=%v", out.Complete, out.Violation)
	}
	samples, err := filepath.Glob(filepath.Join(dir, "sample-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("sampling 1-in-25 captured nothing")
	}
	x, err := export.ReadFile(samples[0])
	if err != nil {
		t.Fatal(err)
	}
	if x.Meta.Verdict != "ok" {
		t.Errorf("sampled execution verdict = %q, want ok", x.Meta.Verdict)
	}
	if len(x.Events) == 0 {
		t.Error("sampled execution has no events")
	}
}

// TestTracerSequenceContinues: a tracer opened over a directory with
// existing artifacts numbers new files past them, so resumed runs and
// sweeps never clobber earlier captures.
func TestTracerSequenceContinues(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "violation-000007.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := CheckWith(context.Background(),
		violatingOpts(run.WithTraceDir(dir, 0))...)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("expected a violation")
	}
	if _, err := os.Stat(filepath.Join(dir, "violation-000008.jsonl")); err != nil {
		t.Errorf("new capture must continue numbering past 000007: %v", err)
	}
}

// TestTracerSummaryAndClose: capture counters, idempotent Close, and the
// refusal to capture after Close.
func TestTracerSummaryAndClose(t *testing.T) {
	dir := t.TempDir()
	tr, err := NewTracer(dir, 0, map[string]string{"proto": "figure3"})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := Replay(ConfigFrom(run.NewSettings(violatingOpts()...)), []int{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.captureViolation(3, ce.Path, ce); err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if sum.Violations != 1 || sum.Samples != 0 || sum.Skipped != 0 {
		t.Errorf("summary = %+v", sum)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := tr.captureViolation(0, ce.Path, ce); err == nil {
		t.Error("capture after Close must fail")
	}

	// Nil tracer: everything is a no-op.
	var nilTr *Tracer
	if nilTr.Recorder() != nil || nilTr.sampleHit() || nilTr.Close() != nil {
		t.Error("nil tracer must be inert")
	}
	if s := nilTr.Summary(); s.Violations != 0 {
		t.Errorf("nil summary = %+v", s)
	}
}
