package explore

import (
	"sync"
	"sync/atomic"
)

// frontier is the shared pool of unexplored subtree roots, each identified
// by a choice-path prefix. Workers pop the most recently pushed prefix
// (LIFO keeps the pool depth-first and therefore small) and donate subtrees
// back when the pool runs low, so work granularity adapts to the shape of
// the execution tree: a deep skinny tree stays one chunk, a bushy tree
// fans out immediately.
type frontier struct {
	mu     sync.Mutex
	wait   sync.Cond
	stack  [][]int
	busy   int  // workers holding a popped prefix
	closed bool // drained (or aborted): all pops fail from now on

	// size mirrors len(stack) so starving() needs no lock on the replay
	// hot path.
	size atomic.Int64
}

func newFrontier(root []int) *frontier {
	f := &frontier{stack: [][]int{root}}
	f.wait.L = &f.mu
	f.size.Store(1)
	return f
}

// push adds subtree roots to the pool.
func (f *frontier) push(prefixes [][]int) {
	if len(prefixes) == 0 {
		return
	}
	f.mu.Lock()
	f.stack = append(f.stack, prefixes...)
	f.size.Store(int64(len(f.stack)))
	f.mu.Unlock()
	f.wait.Broadcast()
}

// pop blocks until a prefix is available and claims it. It returns ok=false
// when the exploration is over: every prefix was processed and no busy
// worker remains to donate more, or the frontier was aborted.
func (f *frontier) pop() ([]int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil, false
		}
		if n := len(f.stack); n > 0 {
			p := f.stack[n-1]
			f.stack = f.stack[:n-1]
			f.size.Store(int64(n - 1))
			f.busy++
			return p, true
		}
		if f.busy == 0 {
			// Nobody is working, nobody can donate: drained.
			f.closed = true
			f.wait.Broadcast()
			return nil, false
		}
		f.wait.Wait()
	}
}

// done releases a claim taken by pop.
func (f *frontier) done() {
	f.mu.Lock()
	f.busy--
	idle := f.busy == 0 && len(f.stack) == 0
	f.mu.Unlock()
	if idle {
		f.wait.Broadcast()
	}
}

// abort unblocks all waiters and fails every future pop.
func (f *frontier) abort() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.wait.Broadcast()
}

// starving reports that the pool has fewer pending prefixes than the low
//-water mark, asking busy workers to donate a subtree.
func (f *frontier) starving(lowWater int) bool {
	return f.size.Load() < int64(lowWater)
}

// pending returns the number of queued subtree roots (for progress reports).
func (f *frontier) pending() int {
	return int(f.size.Load())
}
