package explore

import (
	"sync"
	"sync/atomic"
)

// task is one unexplored region of the execution tree: the subtree rooted at
// path, enumerated with backtracking floor `floor`. A freshly donated task
// has floor == len(path)-1: it starts at the donor's next untaken
// alternative and its own backtracking at the floor position enumerates the
// remaining alternatives of that branch point (one consolidated task per
// donation, so donated subtrees stay large). A task checkpointed
// mid-enumeration keeps the worker's current position as path with the
// original floor, so resuming it revisits the leaves the worker had not
// finished.
type task struct {
	path  []int
	floor int
}

// frontier is the shared pool of unexplored tasks. Workers pop the most
// recently pushed task (LIFO keeps the pool depth-first and therefore small)
// and donate subtrees back when the pool runs low, so work granularity
// adapts to the shape of the execution tree: a deep skinny tree stays one
// chunk, a bushy tree fans out immediately.
//
// For crash-safe checkpointing the frontier also tracks, per worker, the
// task it currently holds (a slot, assigned under the frontier lock inside
// pop so no task is ever in flight unaccounted). snapshot returns the queued
// tasks plus every claimed slot — together they cover all unfinished work at
// the moment of the call.
type frontier struct {
	mu     sync.Mutex
	wait   sync.Cond
	stack  []task
	busy   int  // workers holding a popped task
	closed bool // drained (or aborted): all pops fail from now on

	slots []slot

	// size mirrors len(stack) so starving() needs no lock on the replay
	// hot path.
	size atomic.Int64
}

// slot is one worker's claimed task, updated as the worker's enumeration
// progresses. Lock ordering: frontier.mu before slot.mu, never the reverse.
type slot struct {
	mu     sync.Mutex
	active bool
	path   []int
	floor  int
}

func (s *slot) set(t task) {
	s.mu.Lock()
	s.active = true
	s.path = append(s.path[:0], t.path...)
	s.floor = t.floor
	s.mu.Unlock()
}

func (s *slot) clear() {
	s.mu.Lock()
	s.active = false
	s.mu.Unlock()
}

func newFrontier(tasks []task, workers int) *frontier {
	f := &frontier{stack: tasks, slots: make([]slot, workers)}
	f.wait.L = &f.mu
	f.size.Store(int64(len(tasks)))
	return f
}

// push adds tasks to the pool.
func (f *frontier) push(tasks []task) {
	if len(tasks) == 0 {
		return
	}
	f.mu.Lock()
	f.stack = append(f.stack, tasks...)
	f.size.Store(int64(len(f.stack)))
	f.mu.Unlock()
	f.wait.Broadcast()
}

// pop blocks until a task is available and claims it into worker w's slot.
// It returns ok=false when the exploration is over: every task was processed
// and no busy worker remains to donate more, or the frontier was aborted.
func (f *frontier) pop(w int) (task, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return task{}, false
		}
		if n := len(f.stack); n > 0 {
			t := f.stack[n-1]
			f.stack = f.stack[:n-1]
			f.size.Store(int64(n - 1))
			f.busy++
			f.slots[w].set(t)
			return t, true
		}
		if f.busy == 0 {
			// Nobody is working, nobody can donate: drained.
			f.closed = true
			f.wait.Broadcast()
			return task{}, false
		}
		f.wait.Wait()
	}
}

// publish records worker w's enumeration progress: the subtree rooted at
// path (floor = backtracking floor) is what remains of its claimed task.
// Callers must publish only *after* pushing any donation carved from the
// task, so a snapshot between the two covers the donated subtrees twice
// rather than never.
func (f *frontier) publish(w int, path []int, floor int) {
	s := &f.slots[w]
	s.mu.Lock()
	s.path = append(s.path[:0], path...)
	s.floor = floor
	s.mu.Unlock()
}

// done releases the claim taken by pop. finished reports that the task's
// subtree was fully enumerated (or is covered elsewhere); an abandoned task
// — cancellation, execution cap — stays in the slot so snapshot still
// accounts for it.
func (f *frontier) done(w int, finished bool) {
	if finished {
		f.slots[w].clear()
	}
	f.mu.Lock()
	f.busy--
	idle := f.busy == 0 && len(f.stack) == 0
	f.mu.Unlock()
	if idle {
		f.wait.Broadcast()
	}
}

// abort unblocks all waiters and fails every future pop. Queued tasks stay
// in the stack so a post-abort snapshot still covers them.
func (f *frontier) abort() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.wait.Broadcast()
}

// snapshot returns every unfinished task: the queued stack plus all claimed
// slots, deep-copied so callers may serialize them while workers continue.
func (f *frontier) snapshot() []task {
	f.mu.Lock()
	out := make([]task, 0, len(f.stack)+len(f.slots))
	for _, t := range f.stack {
		out = append(out, task{path: append([]int(nil), t.path...), floor: t.floor})
	}
	f.mu.Unlock()
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		if s.active {
			out = append(out, task{path: append([]int(nil), s.path...), floor: s.floor})
		}
		s.mu.Unlock()
	}
	return out
}

// takeOldest removes the OLDEST queued task — the shallowest root, i.e. the
// largest subtree on offer — for export to the multi-process work ledger.
// The exporter counts as busy until settleExport, so the frontier cannot
// report drained while the task is in flight between pool and ledger (a
// worker publishing its claim's result must never leave an in-flight task
// uncovered).
func (f *frontier) takeOldest() (task, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || len(f.stack) == 0 {
		return task{}, false
	}
	t := f.stack[0]
	copy(f.stack, f.stack[1:])
	f.stack = f.stack[:len(f.stack)-1]
	f.size.Store(int64(len(f.stack)))
	f.busy++
	return t, true
}

// settleExport completes a takeOldest: returned is nil when the task was
// committed to the ledger, or the task itself when the export failed and it
// must go back to the local pool.
func (f *frontier) settleExport(returned *task) {
	f.mu.Lock()
	if returned != nil {
		f.stack = append(f.stack, *returned)
		f.size.Store(int64(len(f.stack)))
	}
	f.busy--
	f.mu.Unlock()
	f.wait.Broadcast()
}

// starving reports that the pool has fewer pending tasks than the low-water
// mark, asking busy workers to donate a subtree.
func (f *frontier) starving(lowWater int) bool {
	return f.size.Load() < int64(lowWater)
}

// pending returns the number of queued tasks (for progress reports).
func (f *frontier) pending() int {
	return int(f.size.Load())
}
