package explore

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
)

// benchConfig is the E5-style covering sweep workload: the staged protocol
// for f=2 with three processes and every stage object faultable once — the
// configuration whose covering adversary breaks agreement at n = f+2. Its
// execution tree has millions of leaves, so each iteration explores a fixed
// 4096-execution slab (the cap is claimed atomically, so the work per
// iteration is identical for every worker count).
func benchConfig() Config {
	proto := core.NewStaged(2, 1)
	objects := proto.Objects()
	faulty := make([]int, objects)
	for i := range faulty {
		faulty[i] = i
	}
	return Config{
		Protocol:        proto,
		Inputs:          inputs(3),
		FaultyObjects:   faulty,
		FaultsPerObject: 1,
		MaxExecutions:   4096,
	}
}

// BenchmarkEngineCoveringSweep measures exploration throughput of the
// parallel engine across worker counts. On a multicore machine the
// paths/sec metric scales near-linearly up to the core count, because
// replays are stateless and share only the frontier and the atomic
// execution counter.
func BenchmarkEngineCoveringSweep(b *testing.B) {
	cfg := benchConfig()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := &Engine{Workers: w}
			var execs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := eng.Check(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if out.Executions != cfg.MaxExecutions {
					b.Fatalf("executions = %d, want %d", out.Executions, cfg.MaxExecutions)
				}
				execs += int64(out.Executions)
			}
			b.StopTimer()
			b.ReportMetric(float64(execs)/b.Elapsed().Seconds(), "paths/sec")
		})
	}
}

// BenchmarkEngineDedupSweep measures the state-dedup cache on a completely
// enumerable workload: the staged f=1 protocol with two processes and
// unbounded overriding faults on every object. Equal canonical states
// recur across interleavings here, so the deduplicated run finishes the
// same verification in roughly a third of the replays; the executions and
// hitrate metrics make the reduction visible next to the dedup=off row.
func BenchmarkEngineDedupSweep(b *testing.B) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: fault.Unbounded,
		MaxExecutions:   1_000_000,
	}
	for _, dedupOn := range []bool{false, true} {
		b.Run(fmt.Sprintf("dedup=%v", dedupOn), func(b *testing.B) {
			var execs, hits, leafLookups int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := &Engine{Workers: 4, Dedup: dedupOn}
				out, err := eng.Check(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !out.Complete || !out.OK() {
					b.Fatalf("complete=%v violation=%v", out.Complete, out.Violation)
				}
				execs += int64(out.Executions)
				if out.Dedup != nil {
					hits += out.Dedup.Hits
					leafLookups += out.Dedup.LeafLookups
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(execs)/float64(b.N), "executions")
			b.ReportMetric(float64(execs)/b.Elapsed().Seconds(), "paths/sec")
			if leafLookups > 0 {
				// Hits over per-replay lookups — the fraction of replays
				// the cache pruned, comparable to the executions delta
				// against the dedup=off row.
				b.ReportMetric(float64(hits)/float64(leafLookups), "hitrate")
			}
		})
	}
}

// BenchmarkEngineReduceSweep measures dynamic partial-order reduction
// against the dedup-only baseline on a completely enumerable covering
// sweep: figure2's f+1 construction for f=1 with four processes and
// unbounded overriding faults on its first object. Both rows verify the
// same space completely; the reduce=on row replays ~3x fewer leaves —
// sleep sets cut commuting interleavings the state cache cannot see (the
// cache only merges identical canonical states, sleep sets also kill
// same-verdict permutations that never revisit a state). One worker keeps
// the executions metric exactly reproducible; scripts/bench.sh records both
// rows as por_reduction in BENCH_explore.json and scripts/check.sh gates
// the ratio at ≥ 3x.
func BenchmarkEngineReduceSweep(b *testing.B) {
	cfg := Config{
		Protocol:        core.NewFPlusOne(1),
		Inputs:          inputs(4),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
		MaxExecutions:   4_000_000,
	}
	for _, mode := range []run.ReduceMode{run.ReduceOff, run.ReduceSafe} {
		b.Run("reduce="+mode.String(), func(b *testing.B) {
			var execs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Reduce = mode
				eng := &Engine{Workers: 1, Dedup: true}
				out, err := eng.Check(context.Background(), c)
				if err != nil {
					b.Fatal(err)
				}
				if !out.Complete || !out.OK() {
					b.Fatalf("complete=%v violation=%v", out.Complete, out.Violation)
				}
				execs += int64(out.Executions)
			}
			b.StopTimer()
			b.ReportMetric(float64(execs)/float64(b.N), "executions")
			b.ReportMetric(float64(execs)/b.Elapsed().Seconds(), "paths/sec")
		})
	}
}

// BenchmarkExecFormCoveringSweep compares the two execution forms on the
// 4096-execution covering-sweep slab with a single worker, so the ratio
// isolates per-execution cost: form=compiled drives the core.Stepper
// machines through the stepped runner's tight loop (zero goroutine hops),
// form=goroutine the goroutine-gated reference simulator (two channel
// handshakes per step). scripts/bench.sh records the min-of-5 ratio as
// compiled_speedup in BENCH_explore.json; scripts/check.sh gates it at ≥ 2×.
func BenchmarkExecFormCoveringSweep(b *testing.B) {
	for _, form := range []struct {
		name string
		mode run.ExecMode
	}{
		{"form=compiled", run.ExecCompiled},
		{"form=goroutine", run.ExecInterpreted},
	} {
		b.Run(form.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Exec = form.mode
			eng := &Engine{Workers: 1}
			var execs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := eng.Check(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if out.Executions != cfg.MaxExecutions {
					b.Fatalf("executions = %d, want %d", out.Executions, cfg.MaxExecutions)
				}
				execs += int64(out.Executions)
			}
			b.StopTimer()
			b.ReportMetric(float64(execs)/b.Elapsed().Seconds(), "paths/sec")
		})
	}
}

// BenchmarkSequentialCoveringSweep is the baseline for the engine benchmark:
// the sequential reference checker on the same 4096-execution slab.
func BenchmarkSequentialCoveringSweep(b *testing.B) {
	cfg := benchConfig()
	var execs int64
	for i := 0; i < b.N; i++ {
		out, err := Check(cfg)
		if err != nil {
			b.Fatal(err)
		}
		execs += int64(out.Executions)
	}
	b.StopTimer()
	b.ReportMetric(float64(execs)/b.Elapsed().Seconds(), "paths/sec")
}

// BenchmarkEngineTracedCoveringSweep is the covering-sweep workload with
// the tracing subsystem live: worker-task spans recorded and one in 1024
// passing executions captured to disk as trace/v1 + Perfetto files. The
// ns/op delta against BenchmarkEngineCoveringSweep/workers=4 is the
// tracing overhead; scripts/bench.sh records the fraction in
// BENCH_explore.json with a 15% budget.
func BenchmarkEngineTracedCoveringSweep(b *testing.B) {
	cfg := benchConfig()
	b.Run("workers=4", func(b *testing.B) {
		dir := b.TempDir()
		meta := map[string]string{"proto": "figure3", "f": "2", "t": "1", "n": "3"}
		var execs int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr, err := NewTracer(dir, 1024, meta)
			if err != nil {
				b.Fatal(err)
			}
			eng := &Engine{Workers: 4, Tracer: tr}
			out, err := eng.Check(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				b.Fatal(err)
			}
			if out.Executions != cfg.MaxExecutions {
				b.Fatalf("executions = %d, want %d", out.Executions, cfg.MaxExecutions)
			}
			execs += int64(out.Executions)
		}
		b.StopTimer()
		b.ReportMetric(float64(execs)/b.Elapsed().Seconds(), "paths/sec")
	})
}
