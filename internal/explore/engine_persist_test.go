package explore

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/store"
)

// TestEngineDedupMatchesPlain: on fully enumerable fault-free and faulty
// configurations, a deduplicated run must reach the same verdict as the
// plain engine while completing strictly fewer replays — pruned subtrees are
// exactly the ones whose root state a smaller path already covered.
func TestEngineDedupMatchesPlain(t *testing.T) {
	configs := map[string]Config{
		"staged-f1-t1": {
			Protocol:        core.NewStaged(1, 1),
			Inputs:          inputs(2),
			FaultyObjects:   []int{0, 1, 2},
			FaultsPerObject: 1,
		},
		"staged-f1-unbounded": {
			Protocol:        core.NewStaged(1, 1),
			Inputs:          inputs(2),
			FaultyObjects:   []int{0, 1, 2},
			FaultsPerObject: fault.Unbounded,
			MaxExecutions:   1_000_000,
		},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			plain, err := (&Engine{Workers: 4}).Check(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !plain.Complete || !plain.OK() {
				t.Fatalf("reference run: complete=%v violation=%v", plain.Complete, plain.Violation)
			}
			for _, w := range workerCounts {
				eng := &Engine{Workers: w, Dedup: true}
				out, err := eng.Check(context.Background(), cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !out.Complete || !out.OK() {
					t.Errorf("workers=%d: complete=%v violation=%v", w, out.Complete, out.Violation)
				}
				if out.Dedup == nil {
					t.Fatalf("workers=%d: no dedup stats on a dedup run", w)
				}
				if out.Executions >= plain.Executions {
					t.Errorf("workers=%d: dedup explored %d executions, plain %d — no reduction",
						w, out.Executions, plain.Executions)
				}
				if out.Dedup.Hits == 0 {
					t.Errorf("workers=%d: dedup reported zero hits over %d lookups",
						w, out.Dedup.Lookups)
				}
			}
		})
	}
}

// TestEngineDedupCanonicalCounterexample: deduplication keeps only the
// lexicographically least path per state, so the canonical (lex-least)
// counterexample must survive pruning exactly — for every worker count.
func TestEngineDedupCanonicalCounterexample(t *testing.T) {
	cfg := Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	}
	seq, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.OK() {
		t.Fatal("reference run found no violation")
	}
	for _, w := range workerCounts {
		eng := &Engine{Workers: w, Dedup: true}
		out, err := eng.Check(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if out.OK() {
			t.Fatalf("workers=%d: no violation found", w)
		}
		if !reflect.DeepEqual(out.Violation.Path, seq.Violation.Path) {
			t.Errorf("workers=%d: violation path = %v, want %v", w, out.Violation.Path, seq.Violation.Path)
		}
		if !reflect.DeepEqual(out.Violation.Schedule, seq.Violation.Schedule) {
			t.Errorf("workers=%d: schedule = %v, want %v", w, out.Violation.Schedule, seq.Violation.Schedule)
		}
		if out.Violation.Verdict.Violation != seq.Violation.Verdict.Violation {
			t.Errorf("workers=%d: verdict = %v, want %v",
				w, out.Violation.Verdict.Violation, seq.Violation.Verdict.Violation)
		}
	}
}

// TestEngineDedupExhaustive: in Exhaustive mode the minimal (shortest
// schedule, lex tie-break) counterexample must also survive deduplication:
// two paths reaching the same state have equal schedule lengths, so the
// pruned copy of any violation is never shorter than the kept one.
func TestEngineDedupExhaustive(t *testing.T) {
	cfg := Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	}
	best, _, err := FindMinimal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		eng := &Engine{Workers: w, Dedup: true}
		ce, _, err := eng.FindMinimal(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ce == nil {
			t.Fatalf("workers=%d: no counterexample", w)
		}
		if len(ce.Schedule) != len(best.Schedule) {
			t.Errorf("workers=%d: schedule length = %d, want %d", w, len(ce.Schedule), len(best.Schedule))
		}
		if !reflect.DeepEqual(ce.Path, best.Path) {
			t.Errorf("workers=%d: minimal path = %v, want %v", w, ce.Path, best.Path)
		}
	}
}

// TestEngineDedupRejectsFixedPolicy: a fixed fault policy is an opaque,
// possibly stateful closure, incompatible with state fingerprints and
// checkpointed replay.
func TestEngineDedupRejectsFixedPolicy(t *testing.T) {
	cfg := Config{
		Protocol:    core.SingleCAS{},
		Inputs:      inputs(2),
		FixedPolicy: fault.PolicyFunc(func(fault.Op) fault.Proposal { return fault.NoFault }),
	}
	if _, err := (&Engine{Dedup: true}).Check(context.Background(), cfg); err == nil {
		t.Fatal("dedup with FixedPolicy must be rejected")
	}
	st, err := store.Create(filepath.Join(t.TempDir(), "run"), store.Manifest{Protocol: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Engine{Store: st}).Check(context.Background(), cfg); err == nil {
		t.Fatal("checkpointing with FixedPolicy must be rejected")
	}
}

// TestEngineInterruptedResume: an exploration killed repeatedly by short
// deadlines mid-enumeration and resumed from its run directory must reach
// the identical verdict as an uninterrupted run. The workload enumerates
// ~59k executions completely (no violation), so the resumed runs must stitch
// the checkpointed frontier back together without losing a single subtree —
// any lost task would surface as a premature "complete". Exercised with and
// without deduplication.
func TestEngineInterruptedResume(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: fault.Unbounded,
		MaxExecutions:   1_000_000,
	}
	ref, err := (&Engine{Workers: 4}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Complete || !ref.OK() {
		t.Fatalf("reference run: complete=%v violation=%v", ref.Complete, ref.Violation)
	}

	for name, dedupOn := range map[string]bool{"plain": false, "dedup": true} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "run")
			m, err := ManifestFor(cfg, false, dedupOn)
			if err != nil {
				t.Fatal(err)
			}
			st, err := store.Create(dir, m)
			if err != nil {
				t.Fatal(err)
			}

			var out *Outcome
			interrupted := 0
			for attempt := 0; ; attempt++ {
				if attempt > 100 {
					t.Fatal("exploration made no progress across 100 resumes")
				}
				eng := &Engine{Workers: 4, Dedup: dedupOn, Store: st, CheckpointEvery: 5 * time.Millisecond}
				runCtx := context.Background()
				var cancel context.CancelFunc
				if interrupted < 3 {
					// First attempts: die young, mid-enumeration.
					runCtx, cancel = context.WithTimeout(runCtx, 30*time.Millisecond)
				}
				out, err = eng.Check(runCtx, cfg)
				if cancel != nil {
					cancel()
				}
				if err == nil {
					break
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatal(err)
				}
				interrupted++
				if st, err = store.Open(dir); err != nil {
					t.Fatal(err)
				}
			}
			if interrupted == 0 {
				t.Log("run completed before the first deadline; resume path not exercised")
			}
			if !out.Complete || !out.OK() {
				t.Fatalf("resumed run: complete=%v violation=%v", out.Complete, out.Violation)
			}
			if out.Elapsed <= 0 {
				t.Error("resumed run lost its accumulated elapsed time")
			}

			// The final checkpoint is marked done; re-running against it
			// replays the stored outcome without re-exploring.
			st, err = store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cp := st.Checkpoint()
			if cp == nil || !cp.Done {
				t.Fatalf("final checkpoint = %+v, want done", cp)
			}
			again, err := (&Engine{Workers: 4, Dedup: dedupOn, Store: st}).Check(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !again.Complete || !again.OK() {
				t.Errorf("re-resumed done run: complete=%v violation=%v", again.Complete, again.Violation)
			}
			if again.Executions != out.Executions {
				t.Errorf("done-run resume executions = %d, want stored %d", again.Executions, out.Executions)
			}
		})
	}
}

// TestEngineInterruptedResumeFindsViolation: an exploration interrupted
// before it reaches the violating region of the tree (deterministically, via
// an execution cap below the violation's position) must, once resumed, report
// the identical lex-least counterexample as an uninterrupted run.
func TestEngineInterruptedResumeFindsViolation(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(3),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: fault.Unbounded,
		MaxExecutions:   50_000,
	}
	ref, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.OK() {
		t.Fatal("reference run found no violation")
	}

	dir := filepath.Join(t.TempDir(), "run")
	interruptedCfg := cfg
	interruptedCfg.MaxExecutions = 2 // dies before the violating execution
	m, err := ManifestFor(interruptedCfg, false, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := (&Engine{Workers: 1, Store: st}).Check(context.Background(), interruptedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatal("interrupted run already found the violation; lower the cap")
	}

	st, err = store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := (&Engine{Workers: 1, Store: st}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.OK() {
		t.Fatal("resumed run found no violation")
	}
	if !reflect.DeepEqual(resumed.Violation.Path, ref.Violation.Path) {
		t.Errorf("violation path = %v, want %v", resumed.Violation.Path, ref.Violation.Path)
	}
	if !reflect.DeepEqual(resumed.Violation.Schedule, ref.Violation.Schedule) {
		t.Errorf("schedule = %v, want %v", resumed.Violation.Schedule, ref.Violation.Schedule)
	}
	if resumed.Violation.Verdict.Violation != ref.Violation.Verdict.Violation {
		t.Errorf("verdict = %v, want %v", resumed.Violation.Verdict.Violation, ref.Violation.Verdict.Violation)
	}
}

// TestEngineResumeCappedRun: the execution cap is advisory (not part of the
// settings hash), so a capped run can resume with a higher cap and finish
// the enumeration it was cut off from.
func TestEngineResumeCappedRun(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0, 1, 2},
		FaultsPerObject: 1,
	}
	full, err := (&Engine{Workers: 2}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete {
		t.Fatalf("reference enumeration incomplete: %+v", full)
	}

	dir := filepath.Join(t.TempDir(), "run")
	capped := cfg
	capped.MaxExecutions = full.Executions / 3
	m, err := ManifestFor(capped, false, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := (&Engine{Workers: 2, Store: st}).Check(context.Background(), capped)
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete || out.Executions != capped.MaxExecutions {
		t.Fatalf("capped run: complete=%v executions=%d", out.Complete, out.Executions)
	}

	st, err = store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp := st.Checkpoint(); cp == nil || cp.Done || len(cp.Tasks) == 0 {
		t.Fatalf("capped checkpoint = %+v, want unfinished tasks", cp)
	}
	// The uncapped settings hash equals the capped one: resume is allowed.
	m2, err := ManifestFor(cfg, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(m2); err != nil {
		t.Fatal(err)
	}
	resumed, err := (&Engine{Workers: 2, Store: st}).Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete || !resumed.OK() {
		t.Fatalf("resumed run: complete=%v violation=%v", resumed.Complete, resumed.Violation)
	}
}

// TestEngineCheckWithPersistence: the options front door must create a run
// store, refuse to resume it under mismatched settings (store.ErrMismatch),
// and resume it under matching ones.
func TestEngineCheckWithPersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	base := []run.Option{
		run.WithProtocol(core.NewStaged(1, 1)),
		run.WithDistinctInputs(2),
		run.WithAllObjectsFaulty(1),
		run.WithWorkers(2),
		run.WithDedup(),
	}
	out, err := CheckWith(context.Background(), append(base, run.WithCheckpoint(dir, 0))...)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || !out.OK() {
		t.Fatalf("complete=%v violation=%v", out.Complete, out.Violation)
	}

	// Same directory, different inputs: refused.
	_, err = CheckWith(context.Background(),
		run.WithProtocol(core.NewStaged(1, 1)),
		run.WithDistinctInputs(3),
		run.WithAllObjectsFaulty(1),
		run.WithResume(dir),
	)
	if !errors.Is(err, store.ErrMismatch) {
		t.Fatalf("err = %v, want store.ErrMismatch", err)
	}

	// Matching settings: resumes (and, being done, just replays the result).
	again, err := CheckWith(context.Background(), append(base, run.WithResume(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Complete || !again.OK() {
		t.Fatalf("resumed: complete=%v violation=%v", again.Complete, again.Violation)
	}
	if again.Executions != out.Executions {
		t.Errorf("done-run resume executions = %d, want stored %d", again.Executions, out.Executions)
	}

	// Checkpointing into an occupied directory is refused.
	if _, err := CheckWith(context.Background(), append(base, run.WithCheckpoint(dir, 0))...); err == nil {
		t.Fatal("WithCheckpoint over an existing run must fail")
	}
}
