package explore

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/trace/export"
)

// Explain verifies a captured execution trace against the configuration and
// renders a human-readable narrative of what happened: which CAS
// invocations mis-fired and which relaxed postcondition Φ′ each deviation
// took, what every process decided, whether the fault pattern stayed within
// the committed (f, t) budget, and which theorem's tolerance bound the
// execution confirms or escapes.
//
// Verification is by replay: the trace's choice path is re-executed through
// the deterministic simulator and the recorded events are compared
// event-for-event with the replayed ones. A trace that does not reproduce —
// wrong configuration, corrupted file, stale capture — is refused with the
// first diverging event.
func Explain(w io.Writer, cfg Config, x *export.Execution) error {
	if x.Meta.Kind != "execution" {
		return fmt.Errorf("explore: cannot explain a %q trace (need an execution capture)", x.Meta.Kind)
	}
	if len(x.Events) == 0 {
		return fmt.Errorf("explore: trace holds no events")
	}
	if err := checkExecForm(cfg, x.Meta.Run); err != nil {
		return err
	}
	if err := checkReduceMode(cfg, x.Meta.Run); err != nil {
		return err
	}
	ce, err := Replay(cfg, x.Meta.Path)
	if err != nil {
		return fmt.Errorf("explore: explain: replay: %w", err)
	}
	replayed := ce.Trace.Events()
	if diff := diffEvents(x.Events, replayed); diff != "" {
		return fmt.Errorf("explore: explain: trace does not reproduce under this configuration: %s", diff)
	}
	verdict := "ok"
	if !ce.Verdict.OK() {
		verdict = string(ce.Verdict.Violation)
	}
	if x.Meta.Verdict != "" && verdict != x.Meta.Verdict {
		return fmt.Errorf("explore: explain: replay verdict %q, trace records %q", verdict, x.Meta.Verdict)
	}

	audit := spec.AuditTrace(ce.Trace)
	fmt.Fprintf(w, "configuration : %s\n", describeSettings(cfg, x.Meta.Run))
	fmt.Fprintf(w, "replay        : verified — %d events identical, verdict %s\n", len(replayed), verdict)
	if !ce.Verdict.OK() {
		fmt.Fprintf(w, "violation     : %s — %s\n", ce.Verdict.Violation, ce.Verdict.Detail)
	}
	fmt.Fprintf(w, "schedule      : %v\n", ce.Schedule)

	fmt.Fprintf(w, "\nwhat happened:\n")
	for _, e := range x.Events {
		if e.Kind == trace.EventCAS && e.Fault != fault.None {
			fmt.Fprintf(w, "  %s\n", explainFault(e))
		}
	}
	decided := false
	for _, e := range x.Events {
		if e.Kind == trace.EventDecide {
			decided = true
			fmt.Fprintf(w, "  step %3d: p%d decided %s\n", e.Index, e.Proc, e.Value)
		}
	}
	if !decided {
		fmt.Fprintf(w, "  no process decided\n")
	}

	fmt.Fprintf(w, "\nfault budget:\n  %s\n", describeAudit(audit))
	fmt.Fprintf(w, "\ntolerance bound:\n  %s\n", toleranceNarrative(cfg, audit, ce.Verdict.OK()))
	return nil
}

// ExplainFile explains the trace/v1 file at path, reconstructing the
// configuration from the trace's own sealed run meta; the capture replays
// through the execution form that produced it.
func ExplainFile(w io.Writer, path string) error {
	return ExplainFileAs(w, path, run.ExecAuto)
}

// ExplainFileAs is ExplainFile with an explicit execution-form override:
// run.ExecAuto defers to the form recorded in the capture, while any other
// mode replaces it — and Explain refuses the replay if the override
// contradicts the recording, because a replay is only evidence about the
// engine that actually ran.
func ExplainFileAs(w io.Writer, path string, mode run.ExecMode) error {
	x, err := export.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := run.SettingsFromMeta(x.Meta.Run, x.Meta.Inputs)
	if err != nil {
		return fmt.Errorf("%w (trace %s)", err, path)
	}
	if mode != run.ExecAuto {
		s.Exec = mode
	}
	fmt.Fprintf(w, "trace         : %s (%s, captured by worker %d)\n", path, x.Meta.Schema, x.Meta.Worker)
	return Explain(w, ConfigFrom(s), x)
}

// checkExecForm refuses to verify a capture under a different execution
// form than the one that produced it. The two forms are equivalent by
// construction (explore.CrossCheck certifies them), but a replay is only
// evidence about the engine that actually ran — verifying a compiled
// capture on the goroutine path (or vice versa) would silently prove the
// wrong thing. Captures that predate the compiled form carry no exec entry
// and replay under whatever form the configuration resolves to.
func checkExecForm(cfg Config, meta map[string]string) error {
	recorded := meta["exec"]
	if recorded == "" {
		return nil
	}
	compiled, err := run.ResolveExec(cfg.Exec, cfg.Protocol)
	if err != nil {
		return fmt.Errorf("explore: explain: %w", err)
	}
	if resolved := run.ExecLabel(compiled); resolved != recorded {
		return fmt.Errorf("explore: explain: trace was captured by the %s engine but this configuration replays %s; rerun with the matching execution form (-engine %s)",
			recorded, resolved, recorded)
	}
	return nil
}

// checkReduceMode refuses to verify a capture under a different
// partial-order reduction mode than the one that produced it: reduced
// choice paths are coordinates in the reduced tree, so replaying one under
// another mode consumes the wrong branch alternatives. Captures from before
// reduction existed carry no reduce entry and replay with reduction off.
func checkReduceMode(cfg Config, meta map[string]string) error {
	recorded := meta["reduce"]
	if recorded == "" {
		recorded = run.ReduceOff.String()
	}
	if resolved := cfg.Reduce.String(); resolved != recorded {
		return fmt.Errorf("explore: explain: trace was captured with reduction %s but this configuration replays with %s; rerun with the matching reduction mode (-reduce %s)",
			recorded, resolved, recorded)
	}
	return nil
}

// diffEvents compares the recorded and replayed event sequences and
// describes the first divergence ("" when identical).
func diffEvents(want, got []trace.Event) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return fmt.Sprintf("event %d differs:\n  trace:  %s\n  replay: %s", i, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		return fmt.Sprintf("trace records %d events, replay produced %d", len(want), len(got))
	}
	return ""
}

// explainFault narrates one faulty CAS step: what was observed, what the
// sequential specification Φ demanded, and which relaxed postcondition Φ′
// the deviation satisfies instead.
func explainFault(e trace.Event) string {
	st := spec.StateOf(e)
	var b strings.Builder
	fmt.Fprintf(&b, "step %3d: p%d's CAS(O%d, exp=%s, new=%s) mis-fired with a fault of kind %s — ",
		e.Index, e.Proc, e.Object, e.Exp, e.New, strings.ToUpper(e.Fault.String()))
	switch spec.Classify(st) {
	case fault.Overriding:
		fmt.Fprintf(&b, "the register held %s (≠ exp), so Φ demands it stay %s with old=%s; instead %s was written. "+
			"The deviation satisfies Φ′_overriding (R = new ∧ old = R′): the comparison branch was overridden.",
			e.Pre, e.Pre, e.Pre, e.Post)
	case fault.Silent:
		fmt.Fprintf(&b, "the register held %s (= exp), so Φ demands %s be written with old=%s; instead the write was dropped and the register stayed %s. "+
			"The deviation satisfies Φ′_silent (R = R′ ∧ old = R′): the successful branch fired silently.",
			e.Pre, e.New, e.Pre, e.Post)
	case fault.Invisible:
		fmt.Fprintf(&b, "the write behaviour followed Φ but the returned old value %s is wrong (the register held %s). "+
			"The deviation satisfies Φ′_invisible.", e.Old, e.Pre)
	default:
		fmt.Fprintf(&b, "observed %s, wrote %s, returned old=%s — outside every structured Φ′ (arbitrary).",
			e.Pre, e.Post, e.Old)
	}
	return b.String()
}

// describeSettings renders the configuration line from the live Config,
// cross-labelled with the trace's sealed meta when available.
func describeSettings(cfg Config, meta map[string]string) string {
	proto := meta["proto"]
	if proto == "" {
		proto = cfg.Protocol.Name()
	}
	kind := cfg.Kind
	if kind == fault.None {
		kind = fault.Overriding
	}
	return fmt.Sprintf("%s (%s), %d processes, inputs %v, %s faults on objects %v (t=%s)",
		proto, cfg.Protocol.Name(), len(cfg.Inputs), cfg.Inputs, kind,
		cfg.FaultyObjects, perObjectLabel(cfg.FaultsPerObject))
}

func perObjectLabel(t int) string {
	if t == fault.Unbounded {
		return "∞"
	}
	return fmt.Sprintf("%d", t)
}

// describeAudit renders the Definition 2/3 account of the execution.
func describeAudit(a *spec.Audit) string {
	ids := a.FaultyObjects()
	sort.Ints(ids)
	if len(ids) == 0 {
		return fmt.Sprintf("%d CAS invocations audited, no faults manifested", a.Total)
	}
	parts := make([]string, len(ids))
	total := 0
	for i, id := range ids {
		n := a.ObjectFaults(id)
		total += n
		parts[i] = fmt.Sprintf("O%d: %d", id, n)
	}
	s := fmt.Sprintf("%d CAS invocations audited, %d faults on %d objects (%s)",
		a.Total, total, len(ids), strings.Join(parts, ", "))
	if len(a.Mismatches) > 0 {
		s += fmt.Sprintf(" — %d classification mismatches (framework bug!)", len(a.Mismatches))
	}
	return s
}

// toleranceNarrative places the execution against the paper's tolerance
// bounds: which theorem the configuration lives under and whether the
// observed fault pattern stayed inside or escaped its (f, t) budget.
func toleranceNarrative(cfg Config, a *spec.Audit, ok bool) string {
	n := len(cfg.Inputs)
	switch p := cfg.Protocol.(type) {
	case core.Staged:
		within := a.Tolerable(p.F, p.T)
		if n > p.F+1 {
			return fmt.Sprintf("Theorem 6's staged protocol tolerates (f=%d, t=%d) functional faults only for n ≤ f+1 = %d processes; "+
				"this run uses n=%d — the Theorem 19 impossibility regime (n ≥ f+2), where no f-object protocol tolerates t ≥ 1 faults per object, so a violating execution must exist.",
				p.F, p.T, p.F+1, n)
		}
		if within && !ok {
			return fmt.Sprintf("the execution stays within Theorem 6's (f=%d, t=%d) budget yet violates — this would contradict Theorem 6 and indicates a framework bug.", p.F, p.T)
		}
		if within {
			return fmt.Sprintf("the execution stays within Theorem 6's (f=%d, t=%d) budget, which the staged protocol tolerates for n=%d ≤ f+1.", p.F, p.T, n)
		}
		return fmt.Sprintf("the adversary exceeded Theorem 6's (f=%d, t=%d) budget — outside the staged protocol's tolerance claim.", p.F, p.T)
	case core.SingleCAS:
		if n <= 2 {
			return "Theorem 4: the single-CAS protocol solves consensus for n=2 processes under one overriding-faulty object; a violation here would contradict it."
		}
		return fmt.Sprintf("Theorem 18: with n=%d ≥ 3 processes, one faulty CAS object already admits violating executions of the single-CAS protocol.", n)
	case core.FPlusOne:
		used := len(a.FaultyObjects())
		if used > p.F {
			return fmt.Sprintf("Theorem 5's f+1-object protocol tolerates at most f=%d faulty objects; this execution manifested faults on %d objects — outside the bound.", p.F, used)
		}
		return fmt.Sprintf("Theorem 5: the f+1-object protocol (f=%d) tolerates this execution's %d faulty objects with unbounded faults each.", p.F, used)
	case core.SilentRetry:
		return fmt.Sprintf("silent-fault regime (Section 3.4): the retrying protocol decides provided each object suffers at most B=%d silent faults; beyond that, wait-freedom is lost, not safety.", p.B)
	default:
		return "no tolerance theorem is on file for this protocol."
	}
}
