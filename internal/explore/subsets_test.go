package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
)

func TestSubsetsEnumeration(t *testing.T) {
	got := Subsets(3, 2)
	want := [][]int{{0, 1}, {0, 2}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("Subsets(3,2) = %v", got)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("Subsets(3,2) = %v, want %v", got, want)
			}
		}
	}
	if len(Subsets(4, 0)) != 1 {
		t.Error("one empty subset expected for k=0")
	}
	if Subsets(2, 3) != nil {
		t.Error("k > n must yield nil")
	}
	if Subsets(2, -1) != nil {
		t.Error("negative k must yield nil")
	}
	if len(Subsets(5, 5)) != 1 {
		t.Error("k = n must yield the full set only")
	}
}

func TestSubsetsCounts(t *testing.T) {
	// C(6,3) = 20.
	if got := len(Subsets(6, 3)); got != 20 {
		t.Errorf("C(6,3) = %d, want 20", got)
	}
}

func TestCheckAllSubsetsTheorem5(t *testing.T) {
	// Theorem 5 with the faulty set fully quantified: EVERY choice of 1
	// faulty object among Figure 2's 2 objects verifies exhaustively.
	out, err := CheckAllSubsets(Config{
		Protocol:        core.NewFPlusOne(1),
		Inputs:          inputs(2),
		FaultsPerObject: fault.Unbounded,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || !out.OK() {
		t.Fatalf("complete=%v violation=%v", out.Complete, out.Violation)
	}
}

func TestCheckAllSubsetsFindsViolation(t *testing.T) {
	// Both objects faulty (f = objects): Theorem 18 territory at n=3.
	out, err := CheckAllSubsets(Config{
		Protocol:        core.NewFPlusOne(1),
		Inputs:          inputs(3),
		FaultsPerObject: fault.Unbounded,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("all-faulty subset must produce a violation")
	}
}

func TestCheckAllSubsetsValidation(t *testing.T) {
	if _, err := CheckAllSubsets(Config{}, 1); err == nil {
		t.Error("missing protocol must error")
	}
	if _, err := CheckAllSubsets(Config{Protocol: core.SingleCAS{}, Inputs: inputs(2)}, 5); err == nil {
		t.Error("oversized subset must error")
	}
}

func TestFindMinimalCounterexample(t *testing.T) {
	best, out, err := FindMinimal(Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("expected a violation")
	}
	if !out.Complete {
		t.Fatal("tiny tree must enumerate completely")
	}
	// The minimal Theorem 18 counterexample is the 3-step sequential
	// run: p0 wins, p1 overrides, p2 overrides.
	if len(best.Schedule) != 3 {
		t.Fatalf("minimal schedule length %d, want 3:\n%s", len(best.Schedule), best)
	}
	if best.Verdict.Violation != run.ViolationConsistency {
		t.Errorf("violation = %s", best.Verdict.Violation)
	}
}

func TestFindMinimalOnCleanConfig(t *testing.T) {
	best, out, err := FindMinimal(Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best != nil {
		t.Fatalf("clean config produced %s", best)
	}
	if !out.Complete {
		t.Fatal("must complete")
	}
}

func TestFindMinimalValidation(t *testing.T) {
	if _, _, err := FindMinimal(Config{Inputs: inputs(1)}); err == nil {
		t.Error("missing protocol must error")
	}
	if _, _, err := FindMinimal(Config{Protocol: core.SingleCAS{}}); err == nil {
		t.Error("missing inputs must error")
	}
	if _, _, err := FindMinimal(Config{Protocol: core.SingleCAS{}, Inputs: inputs(1), Kind: fault.Arbitrary}); err == nil {
		t.Error("unsupported kind must error")
	}
}
