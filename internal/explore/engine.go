package explore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dedup"
	"repro/internal/fault"
	"repro/internal/store"
)

// Engine is the parallel exploration engine: a frontier of choice-path
// prefixes sharded across workers, each worker running independent
// stateless replays (an execution is a pure function of protocol, inputs,
// and choice path, so subtrees explore with no shared state beyond the
// frontier and the aggregated outcome).
//
// Determinism guarantees, independent of worker count and scheduling:
//
//   - A complete enumeration visits every leaf exactly once, so Executions,
//     MaxProcSteps, and MaxFaults are identical for any Workers value.
//   - The reported Violation is canonical: the lexicographically least
//     violating choice path (default mode — the same counterexample the
//     sequential Check finds first), or the violation with the shortest
//     schedule, ties broken lexicographically (Exhaustive mode, matching
//     FindMinimal's notion of minimality, made deterministic).
//
// In default mode a found violation does not cancel the other workers
// outright; instead it becomes a pruning bound: subtrees lexicographically
// at or above the best violation are abandoned, so only the work needed to
// certify the canonical counterexample remains. Combined with
// context.Context cancellation threaded through sim.Run, workers stop
// promptly once nothing below the bound is left.
//
// With Dedup set, workers additionally fingerprint the canonical execution
// state before every scheduling decision and abandon subtrees rooted at a
// state already reached by a lexicographically smaller path (see package
// dedup for the canonicalization and the soundness argument). Deduplication
// preserves the verdict and the canonical counterexample exactly — only
// Executions becomes dependent on worker interleaving, since which of two
// racing paths reaches a shared state first is nondeterministic.
//
// With Store set, the engine periodically persists the frontier, the dedup
// set, and the aggregated outcome to the run directory, and primes itself
// from the stored checkpoint on start — an interrupted exploration resumed
// from its checkpoint reports the same verdict and counterexample as an
// uninterrupted one.
type Engine struct {
	// Workers is the number of parallel exploration workers; 0 means
	// GOMAXPROCS.
	Workers int
	// Exhaustive keeps enumerating after a violation (no pruning), so the
	// complete tree is visited and the minimal counterexample (shortest
	// schedule) is reported — the parallel analogue of FindMinimal.
	Exhaustive bool
	// Dedup prunes subtrees rooted at canonical execution states that a
	// lexicographically smaller path already reached.
	Dedup bool
	// Store, when non-nil, receives periodic crash-safe checkpoints and,
	// when it already holds one, seeds the exploration from it (resume).
	Store *store.Store
	// CheckpointEvery is the checkpoint period (default 5s). Ignored
	// without Store.
	CheckpointEvery time.Duration
	// Progress, when non-nil, receives periodic throughput reports.
	Progress func(Progress)
	// ProgressEvery is the reporting period (default 2s).
	ProgressEvery time.Duration
}

// Progress is one throughput report of a running exploration.
type Progress struct {
	// Executions is the number of replays completed so far.
	Executions int64
	// Rate is the recent throughput in paths per second.
	Rate float64
	// Frontier is the number of queued subtree roots.
	Frontier int
	// Violations is the number of violating executions seen so far.
	Violations int64
	// Elapsed is the wall-clock time since the exploration started
	// (including time accumulated before a resume).
	Elapsed time.Duration
	// Dedup holds the state-cache counters (zero value when the engine
	// runs without deduplication).
	Dedup dedup.Stats
}

// engineRun is the shared state of one Engine.Check invocation.
type engineRun struct {
	cfg         Config
	kind        fault.Kind
	cap         int
	stopOnFirst bool
	lowWater    int
	fr          *frontier
	set         *dedup.Set   // nil without dedup
	st          *store.Store // nil without checkpointing
	start       time.Time
	elapsed0    time.Duration // wall clock accumulated before a resume

	execs      atomic.Int64
	violations atomic.Int64
	capped     atomic.Bool
	// bound is the lex-least violating path found so far (pruning bound);
	// nil until a violation is seen or in Exhaustive mode.
	bound atomic.Pointer[[]int]

	mu        sync.Mutex
	best      *Counterexample
	firstAt   time.Duration
	maxSteps  int
	maxFaults int
	err       error
	cancel    context.CancelFunc
}

// Check explores the execution tree with the engine's worker pool. The
// returned Outcome matches the sequential Check on every deterministic
// field (see the Engine doc comment). When ctx is cancelled or its deadline
// passes, the partial outcome is returned together with ctx.Err().
func (e *Engine) Check(ctx context.Context, cfg Config) (*Outcome, error) {
	kind, cap, err := cfg.prepare()
	if err != nil {
		return nil, err
	}
	if cfg.FixedPolicy != nil && (e.Dedup || e.Store != nil) {
		// A fixed policy is an opaque closure that may carry state across
		// invocations; neither the state fingerprint nor a checkpointed
		// replay can reproduce it.
		return nil, fmt.Errorf("explore: dedup and checkpointing require the checker's own fault policy, not FixedPolicy")
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	r := &engineRun{
		cfg:         cfg,
		kind:        kind,
		cap:         cap,
		stopOnFirst: !e.Exhaustive,
		lowWater:    2 * workers,
		st:          e.Store,
		start:       time.Now(),
		cancel:      cancel,
	}
	if e.Dedup {
		r.set = dedup.NewSet(0)
	}
	tasks := []task{{}} // root: the empty prefix
	if r.st != nil {
		if cp := r.st.Checkpoint(); cp != nil {
			if tasks, err = r.prime(cp); err != nil {
				return nil, err
			}
		}
	}
	r.fr = newFrontier(tasks, workers)
	// pop blocks on a condition variable, not on ctx: translate
	// cancellation into a frontier abort so waiting workers wake up.
	go func() {
		<-ctx.Done()
		r.fr.abort()
	}()

	stopProgress := e.startProgress(r)
	stopCheckpoint := e.startCheckpoint(r)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(ctx, w)
		}(i)
	}
	wg.Wait()
	stopCheckpoint()
	stopProgress()

	r.mu.Lock()
	runErr, best := r.err, r.best
	maxSteps, maxFaults, firstAt := r.maxSteps, r.maxFaults, r.firstAt
	r.mu.Unlock()
	if runErr != nil {
		return nil, runErr
	}
	if r.st != nil {
		// Final checkpoint: marks the run done when nothing is left, or
		// records the surviving tasks of a cancelled/capped run. A failed
		// save fails the run — a silently stale checkpoint would resume
		// from the wrong frontier.
		if err := r.saveCheckpoint(ctx.Err() == nil); err != nil {
			return nil, fmt.Errorf("explore: final checkpoint: %w", err)
		}
	}
	out := &Outcome{
		Executions:       int(r.execs.Load()),
		Violation:        best,
		MaxProcSteps:     maxSteps,
		MaxFaults:        maxFaults,
		Workers:          workers,
		Elapsed:          r.elapsed0 + time.Since(r.start),
		ViolationLatency: firstAt,
	}
	if r.set != nil {
		st := r.set.Stats()
		out.Dedup = &st
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	out.Complete = !r.capped.Load() && (best == nil || e.Exhaustive)
	return out, nil
}

// prime seeds the run from a stored checkpoint: counters, the best
// counterexample (reconstructed by replaying its path), the dedup set, and
// the task list that covers all unfinished work.
func (r *engineRun) prime(cp *store.Checkpoint) ([]task, error) {
	r.execs.Store(cp.Executions)
	r.violations.Store(cp.Violations)
	r.maxSteps = cp.MaxProcSteps
	r.maxFaults = cp.MaxFaults
	r.firstAt = time.Duration(cp.FirstViolationNS)
	r.elapsed0 = time.Duration(cp.ElapsedNS)
	if len(cp.BestPath) > 0 {
		ce, err := Replay(r.cfg, cp.BestPath)
		if err != nil {
			return nil, fmt.Errorf("explore: resume: replaying stored counterexample: %w", err)
		}
		if ce.Verdict.OK() {
			return nil, fmt.Errorf("explore: resume: stored counterexample path %v no longer violates — the run directory does not match this configuration", cp.BestPath)
		}
		r.best = ce
		if r.stopOnFirst {
			p := ce.Path
			r.bound.Store(&p)
		}
	}
	if r.set != nil {
		r.set.Restore(cp.Dedup)
	}
	tasks := make([]task, len(cp.Tasks))
	for i, t := range cp.Tasks {
		tasks[i] = task{path: append([]int(nil), t.Path...), floor: t.Floor}
	}
	return tasks, nil
}

// FindMinimal is the parallel analogue of the package-level FindMinimal: it
// enumerates the complete tree (no early exit) and returns the violating
// execution with the shortest schedule (ties broken by lexicographic choice
// path, so the result is deterministic), or nil if none exists.
func (e *Engine) FindMinimal(ctx context.Context, cfg Config) (*Counterexample, *Outcome, error) {
	exhaustive := *e
	exhaustive.Exhaustive = true
	out, err := exhaustive.Check(ctx, cfg)
	if err != nil {
		return nil, out, err
	}
	return out.Violation, out, nil
}

// dedupHandle is one worker's deduplication state: the shared fingerprint
// set, the worker-local canonical-state tracker (reset per replay), and the
// position at which the current replay was pruned (-1 if it ran to its end).
type dedupHandle struct {
	set      *dedup.Set
	tracker  *dedup.Tracker
	prunedAt int
}

// worker pops subtree tasks and enumerates them until the frontier drains.
// A task that could not be finished (cancellation, execution cap, error)
// stays in the worker's frontier slot so the final checkpoint preserves it;
// the worker then exits rather than claim further tasks it cannot finish.
func (r *engineRun) worker(ctx context.Context, w int) {
	var dh *dedupHandle
	if r.set != nil {
		dh = &dedupHandle{
			set:     r.set,
			tracker: dedup.NewTracker(r.cfg.Protocol.Objects(), r.cfg.Inputs, true),
		}
	}
	for {
		t, ok := r.fr.pop(w)
		if !ok {
			return
		}
		if !r.runSubtree(ctx, w, t, dh) {
			r.fr.done(w, false)
			return
		}
		r.fr.done(w, true)
	}
}

// runSubtree enumerates the subtree task by stateless replay, donating
// sub-subtrees to the frontier whenever it runs low. It reports whether the
// task was finished: fully enumerated, or abandoned because no leaf below it
// can improve the canonical counterexample (bound pruning) or because its
// root state was already covered by a smaller path (dedup).
func (r *engineRun) runSubtree(ctx context.Context, w int, t task, dh *dedupHandle) bool {
	c := &chooser{path: t.path, lb: t.floor}
	var localSteps, localFaults int
	defer func() {
		r.mu.Lock()
		if localSteps > r.maxSteps {
			r.maxSteps = localSteps
		}
		if localFaults > r.maxFaults {
			r.maxFaults = localFaults
		}
		r.mu.Unlock()
	}()

	for {
		if ctx.Err() != nil {
			return false
		}
		if r.pruned(c.path) {
			// Replay visits leaves in lexicographic order, so once the
			// next path reaches the bound the rest of the subtree can
			// only contain larger counterexamples.
			return true
		}
		if !r.claim() {
			return false
		}
		r.fr.publish(w, c.path, c.lb)
		c.arity = c.arity[:0]
		c.pos = 0
		ce, verdict, stats, err := runOnce(ctx, r.cfg, r.kind, c, dh)
		if err != nil {
			if ctx.Err() == nil {
				r.fail(err)
			}
			return false
		}
		if dh != nil && dh.prunedAt >= 0 {
			// The replay reached a state some lex-smaller path already
			// covers: the subtree below the pruned prefix is redundant.
			// The claim is released — Executions counts completed replays.
			r.execs.Add(-1)
			if dh.prunedAt <= c.lb {
				return true // the whole task is covered elsewhere
			}
			c.path = c.path[:dh.prunedAt]
			c.arity = c.arity[:dh.prunedAt]
			if !c.next() {
				return true
			}
			continue
		}
		if stats.maxSteps > localSteps {
			localSteps = stats.maxSteps
		}
		if stats.faults > localFaults {
			localFaults = stats.faults
		}
		if !verdict.OK() {
			r.recordViolation(ce, c.path)
		}
		if r.fr.starving(r.lowWater) {
			if alts := c.donate(); alts != nil {
				// donate raised the chooser's floor past the donated
				// subtrees; push before the next publish so a snapshot
				// between the two covers the donations twice, never zero
				// times.
				ts := make([]task, len(alts))
				for i, p := range alts {
					ts[i] = task{path: p, floor: len(p)}
				}
				r.fr.push(ts)
			}
		}
		if !c.next() {
			return true
		}
	}
}

// claim reserves one execution against the cap.
func (r *engineRun) claim() bool {
	for {
		cur := r.execs.Load()
		if cur >= int64(r.cap) {
			r.capped.Store(true)
			return false
		}
		if r.execs.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// pruned reports that every leaf below the path is lexicographically at or
// above the current violation bound.
func (r *engineRun) pruned(path []int) bool {
	bound := r.bound.Load()
	if bound == nil {
		return false
	}
	return lexGE(path, *bound)
}

// lexGE compares a (possibly partial) choice path against a full leaf path:
// the partial path stands for its own first-fill extension (zeros), which
// orders before every longer continuation.
func lexGE(path, leaf []int) bool {
	for i := 0; i < len(path) && i < len(leaf); i++ {
		if path[i] != leaf[i] {
			return path[i] > leaf[i]
		}
	}
	return len(path) >= len(leaf)
}

// recordViolation merges one violating execution into the shared outcome,
// keeping the canonical counterexample and tightening the pruning bound.
func (r *engineRun) recordViolation(ce *Counterexample, path []int) {
	p := append([]int(nil), path...)
	ce.Path = p
	r.violations.Add(1)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.firstAt == 0 {
		r.firstAt = r.elapsed0 + time.Since(r.start)
	}
	if r.better(ce) {
		r.best = ce
		if r.stopOnFirst {
			r.bound.Store(&p)
		}
	}
}

// better decides whether the candidate replaces the current best violation:
// lexicographically least path in default mode (the sequential checker's
// first), shortest schedule with lexicographic tie-break in Exhaustive mode.
func (r *engineRun) better(cand *Counterexample) bool {
	if r.best == nil {
		return true
	}
	if !r.stopOnFirst && len(cand.Schedule) != len(r.best.Schedule) {
		return len(cand.Schedule) < len(r.best.Schedule)
	}
	return lexLess(cand.Path, r.best.Path)
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// fail records the first framework error and cancels the exploration.
func (r *engineRun) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancel()
}

// saveCheckpoint persists one snapshot of the run. The task snapshot is
// taken first: every counter, violation, and dedup entry read afterwards
// describes work that is either complete (and thus reflected in the
// snapshot's counters) or still covered by a snapshotted task — so a resume
// from any checkpoint re-explores a superset of the unfinished work and
// reaches the same verdict. final marks the run finished when no task
// survives (a cancelled or capped run keeps its tasks and stays resumable).
func (r *engineRun) saveCheckpoint(final bool) error {
	tasks := r.fr.snapshot()
	cp := &store.Checkpoint{
		Done:       final && len(tasks) == 0,
		Executions: r.execs.Load(),
		Violations: r.violations.Load(),
		Capped:     r.capped.Load(),
		ElapsedNS:  (r.elapsed0 + time.Since(r.start)).Nanoseconds(),
		Tasks:      make([]store.Task, len(tasks)),
	}
	for i, t := range tasks {
		cp.Tasks[i] = store.Task{Path: t.path, Floor: t.floor}
	}
	r.mu.Lock()
	cp.MaxProcSteps = r.maxSteps
	cp.MaxFaults = r.maxFaults
	cp.FirstViolationNS = int64(r.firstAt)
	if r.best != nil {
		cp.BestPath = append([]int(nil), r.best.Path...)
		cp.BestLen = len(r.best.Schedule)
	}
	r.mu.Unlock()
	if r.set != nil {
		cp.Dedup = r.set.Snapshot()
	}
	return r.st.Save(cp)
}

// startCheckpoint launches the periodic checkpoint writer and returns its
// stop function. A failed write fails the whole run: continuing with a stale
// checkpoint would make a later resume silently wrong.
func (e *Engine) startCheckpoint(r *engineRun) func() {
	if r.st == nil {
		return func() {}
	}
	every := e.CheckpointEvery
	if every <= 0 {
		every = 5 * time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if err := r.saveCheckpoint(false); err != nil {
					r.fail(fmt.Errorf("explore: checkpoint: %w", err))
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// startProgress launches the periodic throughput reporter and returns its
// stop function.
func (e *Engine) startProgress(r *engineRun) func() {
	if e.Progress == nil {
		return func() {}
	}
	every := e.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(every)
		defer tick.Stop()
		var lastExecs int64
		lastTime := r.start
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				execs := r.execs.Load()
				rate := float64(execs-lastExecs) / now.Sub(lastTime).Seconds()
				lastExecs, lastTime = execs, now
				p := Progress{
					Executions: execs,
					Rate:       rate,
					Frontier:   r.fr.pending(),
					Violations: r.violations.Load(),
					Elapsed:    r.elapsed0 + time.Since(r.start),
				}
				if r.set != nil {
					p.Dedup = r.set.Stats()
				}
				e.Progress(p)
			}
		}
	}()
	// Closing done stops the reporter; waiting for exited guarantees no
	// Progress callback is in flight after the stop function returns.
	return func() {
		close(done)
		<-exited
	}
}
