package explore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dedup"
	"repro/internal/fault"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/store"
)

// Engine is the parallel exploration engine: a frontier of choice-path
// prefixes sharded across workers, each worker running independent
// stateless replays (an execution is a pure function of protocol, inputs,
// and choice path, so subtrees explore with no shared state beyond the
// frontier and the aggregated outcome).
//
// Determinism guarantees, independent of worker count and scheduling:
//
//   - A complete enumeration visits every leaf exactly once, so Executions,
//     MaxProcSteps, and MaxFaults are identical for any Workers value.
//   - The reported Violation is canonical: the lexicographically least
//     violating choice path (default mode — the same counterexample the
//     sequential Check finds first), or the violation with the shortest
//     schedule, ties broken lexicographically (Exhaustive mode, matching
//     FindMinimal's notion of minimality, made deterministic).
//
// In default mode a found violation does not cancel the other workers
// outright; instead it becomes a pruning bound: subtrees lexicographically
// at or above the best violation are abandoned, so only the work needed to
// certify the canonical counterexample remains. Combined with
// context.Context cancellation threaded through sim.Run, workers stop
// promptly once nothing below the bound is left.
//
// With Dedup set, workers additionally fingerprint the canonical execution
// state before every scheduling decision and abandon subtrees rooted at a
// state already reached by a lexicographically smaller path (see package
// dedup for the canonicalization and the soundness argument). Deduplication
// preserves the verdict and the canonical counterexample exactly — only
// Executions becomes dependent on worker interleaving, since which of two
// racing paths reaches a shared state first is nondeterministic.
//
// With Store set, the engine periodically persists the frontier, the dedup
// set, and the aggregated outcome to the run directory, and primes itself
// from the stored checkpoint on start — an interrupted exploration resumed
// from its checkpoint reports the same verdict and counterexample as an
// uninterrupted one.
type Engine struct {
	// Workers is the number of parallel exploration workers; 0 means
	// GOMAXPROCS.
	Workers int
	// Exhaustive keeps enumerating after a violation (no pruning), so the
	// complete tree is visited and the minimal counterexample (shortest
	// schedule) is reported — the parallel analogue of FindMinimal.
	Exhaustive bool
	// Dedup prunes subtrees rooted at canonical execution states that a
	// lexicographically smaller path already reached.
	Dedup bool
	// Store, when non-nil, receives periodic crash-safe checkpoints and,
	// when it already holds one, seeds the exploration from it (resume).
	Store *store.Store
	// CheckpointEvery is the checkpoint period (default 5s). Ignored
	// without Store.
	CheckpointEvery time.Duration
	// Progress, when non-nil, receives periodic throughput reports.
	Progress func(Progress)
	// ProgressEvery is the reporting period (default 2s).
	ProgressEvery time.Duration
	// Metrics, when non-nil, is the registry the run's counters, gauges,
	// and histograms live on (see docs/MODEL.md for the metric names). The
	// engine is always registry-backed — when Metrics is nil it uses a
	// private registry — so Outcome and Progress are snapshot views of the
	// same counters a live /metrics endpoint reads.
	Metrics *obs.Registry
	// Events, when non-nil, receives the run's structured event log:
	// lifecycle, checkpoint writes/restores, violations at Info; frontier
	// donations and dedup prunes at Debug.
	Events *obs.Log
	// LeaseSize is the number of executions a worker reserves from the cap
	// in one batch (default DefaultLeaseSize). The lease is the engine's
	// shared-state amortization unit: workers touch the shared execution
	// counter, the frontier slot publish, and the maxima merge once per
	// lease instead of once per leaf. Larger leases cut cross-core traffic
	// further but make mid-run progress and checkpoint counters staler.
	LeaseSize int
	// Ledger, when non-nil, switches Check to distributed mode: instead of
	// seeding its frontier with the whole execution tree, the engine claims
	// subtree tasks from the multi-process work ledger, runs each claim with
	// its full in-process worker pool, publishes the claim's outcome at the
	// lease boundary, and exports surplus subtrees for other OS processes to
	// claim. Checkpointing (Store) is mutually exclusive with Ledger — the
	// ledger's published results ARE the durable state, and a worker crash
	// loses at most one lease of work. See internal/ledger and
	// Engine.FinalizeLedger.
	Ledger *ledger.Ledger
	// FleetSnapshots, with Ledger, periodically publishes this worker's
	// observability snapshot — registry dump, heartbeat, current claim —
	// into the shared run directory (<run>/obs/worker-<id>.json) at TTL/3,
	// so the fleet aggregator (internal/obs/fleet, `modelcheck
	// -fleet-status`, /fleet) can report per-worker liveness and merged
	// metrics without talking to any worker. Ignored without Ledger; a
	// failed publish is a warn event, never a run failure.
	FleetSnapshots bool
	// Tracer, when non-nil, captures executions as durable trace artifacts:
	// every violation (up to MaxViolationCaptures) and a 1-in-N sample of
	// passing runs are written as trace/v1 + Perfetto files, and the
	// engine's worker-task and checkpoint spans feed its recorder. The
	// caller owns the tracer's lifetime (Close seals the spans file).
	Tracer *Tracer
}

// Progress is one throughput report of a running exploration.
type Progress struct {
	// Executions is the number of replays completed so far.
	Executions int64
	// Rate is the recent throughput in paths per second.
	Rate float64
	// Frontier is the number of queued subtree roots.
	Frontier int
	// Violations is the number of violating executions seen so far.
	Violations int64
	// Elapsed is the wall-clock time since the exploration started
	// (including time accumulated before a resume).
	Elapsed time.Duration
	// Donations is the number of subtree tasks workers have carved off
	// and pushed to the frontier for others to claim.
	Donations int64
	// Steals is the number of tasks claimed from the shared frontier.
	Steals int64
	// Dedup holds the state-cache counters (zero value when the engine
	// runs without deduplication).
	Dedup dedup.Stats
	// DepthP50 and DepthP99 are quantiles of the root depth of tasks that
	// entered the frontier — how deep into the tree the parallelism cuts.
	DepthP50 float64
	DepthP99 float64
}

// DefaultLeaseSize is the per-worker execution-cap lease (Engine.LeaseSize).
const DefaultLeaseSize = 64

// runMetrics is the registry-backed counter set of one engine run. The
// execution counter is advanced in per-lease batches from each worker's
// local tally (the cap itself is enforced by the capPool ledger), so the
// registry sees exact totals at every lease boundary without a shared
// counter bounce on every replay.
type runMetrics struct {
	execs        *obs.Counter // completed replays (flushed per lease)
	restored     *obs.Counter // executions primed from a resumed checkpoint
	violations   *obs.Counter
	prunes       *obs.Counter // replays halted at an already-covered state
	reducePrunes *obs.Counter // replays halted at a sleep-blocked node
	donations    *obs.Counter // subtree tasks pushed to the frontier
	steals       *obs.Counter // tasks claimed from the frontier
	ckptSaves    *obs.Counter
	ckptMS       *obs.Histogram // full saveCheckpoint duration (snapshot+write)
	depth        *obs.Histogram // root depth of tasks entering the frontier

	workerExecs  []*obs.Counter
	workerSteals []*obs.Counter
	workerIdleNS []*obs.Counter // time blocked waiting for frontier work
}

// newRunMetrics registers the engine's metric set on the registry. Names
// are stable — docs/MODEL.md documents them as the observability schema.
func newRunMetrics(reg *obs.Registry, workers int) *runMetrics {
	m := &runMetrics{
		execs:        reg.Counter("explore.executions"),
		restored:     reg.Counter("explore.executions.restored"),
		violations:   reg.Counter("explore.violations"),
		prunes:       reg.Counter("explore.dedup.prunes"),
		reducePrunes: reg.Counter("explore.reduce.prunes"),
		donations:    reg.Counter("explore.frontier.donations"),
		steals:       reg.Counter("explore.frontier.steals"),
		ckptSaves:    reg.Counter("explore.checkpoint.saves"),
		ckptMS: reg.Histogram("explore.checkpoint.save_ms",
			0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000),
		depth: reg.Histogram("explore.frontier.depth",
			1, 2, 4, 8, 12, 16, 24, 32, 48, 64),
		workerExecs:  make([]*obs.Counter, workers),
		workerSteals: make([]*obs.Counter, workers),
		workerIdleNS: make([]*obs.Counter, workers),
	}
	for w := 0; w < workers; w++ {
		m.workerExecs[w] = reg.Counter(fmt.Sprintf("explore.worker.%d.executions", w))
		m.workerSteals[w] = reg.Counter(fmt.Sprintf("explore.worker.%d.steals", w))
		m.workerIdleNS[w] = reg.Counter(fmt.Sprintf("explore.worker.%d.idle_ns", w))
	}
	return m
}

// engineRun is the shared state of one Engine.Check invocation.
type engineRun struct {
	cfg         Config
	kind        fault.Kind
	compiled    bool
	cap         int
	stopOnFirst bool
	lowWater    int
	leaseSize   int64
	pool        *capPool
	fr          *frontier
	set         *dedup.Set   // nil without dedup
	st          *store.Store // nil without checkpointing
	tr          *Tracer      // nil without tracing
	start       time.Time
	elapsed0    time.Duration // wall clock accumulated before a resume

	m  *runMetrics
	ev *obs.Log // nil-safe
	// base holds each shared counter's value at run start. A registry may
	// outlive one run (the harness points every exploration of a sweep at
	// the same one), so the registry reads cumulatively while the cap,
	// Outcome, Progress, and checkpoints subtract the base to stay
	// run-scoped.
	base   struct{ execs, violations, donations, steals, reducePrunes int64 }
	capped atomic.Bool
	// bound is the lex-least violating path found so far (pruning bound);
	// nil until a violation is seen or in Exhaustive mode.
	bound atomic.Pointer[[]int]

	mu        sync.Mutex
	best      *Counterexample
	firstAt   time.Duration
	maxSteps  int
	maxFaults int
	err       error
	cancel    context.CancelFunc
}

// Check explores the execution tree with the engine's worker pool. The
// returned Outcome matches the sequential Check on every deterministic
// field (see the Engine doc comment). When ctx is cancelled or its deadline
// passes, the partial outcome is returned together with ctx.Err().
func (e *Engine) Check(ctx context.Context, cfg Config) (*Outcome, error) {
	if e.Ledger != nil {
		return e.checkLedger(ctx, cfg)
	}
	kind, cap, compiled, err := cfg.prepare()
	if err != nil {
		return nil, err
	}
	if cfg.FixedPolicy != nil && (e.Dedup || e.Store != nil) {
		// A fixed policy is an opaque closure that may carry state across
		// invocations; neither the state fingerprint nor a checkpointed
		// replay can reproduce it.
		return nil, fmt.Errorf("explore: dedup and checkpointing require the checker's own fault policy, not FixedPolicy")
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	reg := e.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	leaseSize := int64(e.LeaseSize)
	if leaseSize <= 0 {
		leaseSize = DefaultLeaseSize
	}
	r := &engineRun{
		cfg:         cfg,
		kind:        kind,
		compiled:    compiled,
		cap:         cap,
		stopOnFirst: !e.Exhaustive,
		lowWater:    2 * workers,
		leaseSize:   leaseSize,
		st:          e.Store,
		tr:          e.Tracer,
		start:       time.Now(),
		cancel:      cancel,
		m:           newRunMetrics(reg, workers),
		ev:          e.Events,
	}
	r.base.execs = r.m.execs.Load()
	r.base.violations = r.m.violations.Load()
	r.base.donations = r.m.donations.Load()
	r.base.steals = r.m.steals.Load()
	r.base.reducePrunes = r.m.reducePrunes.Load()
	reg.Gauge("explore.workers").Set(int64(workers))
	if e.Dedup {
		r.set = dedup.NewSet(0)
		r.set.Register(reg)
	}
	if r.st != nil {
		r.st.Instrument(reg, r.ev)
	}
	tasks := []task{{}} // root: the empty prefix
	resumed := false
	if r.st != nil {
		if cp := r.st.Checkpoint(); cp != nil {
			if tasks, err = r.prime(cp); err != nil {
				return nil, err
			}
			resumed = true
		}
	}
	// The cap ledger: what this process may still execute is the cap minus
	// whatever a resumed checkpoint already accounts for.
	capacity := int64(cap) - (r.m.execs.Load() - r.base.execs)
	if capacity < 0 {
		capacity = 0
	}
	r.pool = newCapPool(capacity)
	r.fr = newFrontier(tasks, workers)
	reg.Func("explore.frontier.pending", func() int64 { return int64(r.fr.pending()) })
	for _, t := range tasks {
		r.m.depth.Observe(float64(len(t.path)))
	}
	r.ev.Emit(obs.Info, "run.start", map[string]any{
		"workers": workers, "cap": cap, "dedup": e.Dedup,
		"checkpoint": r.st != nil, "resumed": resumed, "tasks": len(tasks),
	})
	// pop and acquire block on condition variables, not on ctx: translate
	// cancellation into frontier and cap-pool aborts so waiting workers
	// wake up.
	go func() {
		<-ctx.Done()
		r.fr.abort()
		r.pool.abort()
	}()

	stopProgress := e.startProgress(r)
	stopCheckpoint := e.startCheckpoint(r)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(ctx, w)
		}(i)
	}
	wg.Wait()
	stopCheckpoint()
	stopProgress()

	r.mu.Lock()
	runErr, best := r.err, r.best
	maxSteps, maxFaults, firstAt := r.maxSteps, r.maxFaults, r.firstAt
	r.mu.Unlock()
	if runErr != nil {
		return nil, runErr
	}
	if r.st != nil {
		// Final checkpoint: marks the run done when nothing is left, or
		// records the surviving tasks of a cancelled/capped run. A failed
		// save fails the run — a silently stale checkpoint would resume
		// from the wrong frontier.
		if err := r.saveCheckpoint(ctx.Err() == nil); err != nil {
			return nil, fmt.Errorf("explore: final checkpoint: %w", err)
		}
	}
	out := &Outcome{
		Executions:       int(r.m.execs.Load() - r.base.execs),
		Violation:        best,
		MaxProcSteps:     maxSteps,
		MaxFaults:        maxFaults,
		Workers:          workers,
		Elapsed:          r.elapsed0 + time.Since(r.start),
		ViolationLatency: firstAt,
		Donations:        r.m.donations.Load() - r.base.donations,
		Steals:           r.m.steals.Load() - r.base.steals,
		ReducePrunes:     r.m.reducePrunes.Load() - r.base.reducePrunes,
	}
	if r.set != nil {
		st := r.set.Stats()
		out.Dedup = &st
	}
	if err := ctx.Err(); err != nil {
		r.ev.Emit(obs.Warn, "run.done", map[string]any{
			"executions": out.Executions, "complete": false,
			"cancelled": true, "elapsed_ms": out.Elapsed.Milliseconds(),
		})
		return out, err
	}
	out.Complete = !r.capped.Load() && (best == nil || e.Exhaustive)
	r.ev.Emit(obs.Info, "run.done", map[string]any{
		"executions": out.Executions, "complete": out.Complete,
		"violations": r.m.violations.Load() - r.base.violations,
		"elapsed_ms": out.Elapsed.Milliseconds(),
	})
	return out, nil
}

// prime seeds the run from a stored checkpoint: counters, the best
// counterexample (reconstructed by replaying its path), the dedup set, and
// the task list that covers all unfinished work.
func (r *engineRun) prime(cp *store.Checkpoint) ([]task, error) {
	// The counters come from a fresh registry entry (or a run-scoped one),
	// so priming by Add keeps them exact; restored records how many of the
	// executions predate this process, which is what lets per-worker
	// counters still sum to the total after a resume.
	r.m.execs.Add(cp.Executions)
	r.m.restored.Add(cp.Executions)
	r.m.violations.Add(cp.Violations)
	r.maxSteps = cp.MaxProcSteps
	r.maxFaults = cp.MaxFaults
	r.firstAt = time.Duration(cp.FirstViolationNS)
	r.elapsed0 = time.Duration(cp.ElapsedNS)
	if len(cp.BestPath) > 0 {
		ce, err := Replay(r.cfg, cp.BestPath)
		if err != nil {
			return nil, fmt.Errorf("explore: resume: replaying stored counterexample: %w", err)
		}
		if ce.Verdict.OK() {
			return nil, fmt.Errorf("explore: resume: stored counterexample path %v no longer violates — the run directory does not match this configuration", cp.BestPath)
		}
		r.best = ce
		if r.stopOnFirst {
			p := ce.Path
			r.bound.Store(&p)
		}
	}
	if r.set != nil {
		r.set.Restore(cp.Dedup)
	}
	tasks := make([]task, len(cp.Tasks))
	for i, t := range cp.Tasks {
		tasks[i] = task{path: append([]int(nil), t.Path...), floor: t.Floor}
	}
	r.ev.Emit(obs.Info, "checkpoint.restore", map[string]any{
		"seq": cp.Seq, "executions": cp.Executions, "tasks": len(tasks),
		"dedup_entries": len(cp.Dedup), "best_path_len": len(cp.BestPath),
	})
	return tasks, nil
}

// FindMinimal is the parallel analogue of the package-level FindMinimal: it
// enumerates the complete tree (no early exit) and returns the violating
// execution with the shortest schedule (ties broken by lexicographic choice
// path, so the result is deterministic), or nil if none exists.
func (e *Engine) FindMinimal(ctx context.Context, cfg Config) (*Counterexample, *Outcome, error) {
	exhaustive := *e
	exhaustive.Exhaustive = true
	out, err := exhaustive.Check(ctx, cfg)
	if err != nil {
		return nil, out, err
	}
	return out.Violation, out, nil
}

// dedupHandle is one worker's deduplication state: the shared fingerprint
// set and the worker-local canonical-state tracker (reset per replay).
// Where the current replay was pruned lives on the execState (prunedAt),
// shared with the partial-order reducer.
type dedupHandle struct {
	set     *dedup.Set
	tracker *dedup.Tracker
}

// capPool is the execution-cap ledger: workers lease batches of executions
// instead of CAS-ing a shared counter per replay. Its invariant is
//
//	remaining + outstanding + consumed == capacity
//
// where consumed is the sum of all settled used counts. acquire returns
// (0, true) only on true exhaustion — remaining and outstanding both zero,
// so exactly capacity executions completed — which is what lets the engine
// latch `capped` without the old claim/release race: a dedup-pruned replay
// never touches the pool (its unit stays in the worker's lease), so the cap
// can no longer latch spuriously while the final count is under the cap.
type capPool struct {
	mu          sync.Mutex
	cond        *sync.Cond
	remaining   int64 // units not yet leased
	outstanding int64 // units leased to workers, not yet settled
	aborted     bool
}

func newCapPool(capacity int64) *capPool {
	p := &capPool{remaining: capacity}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquire leases up to max execution units. When the pool is drained but
// other workers still hold unsettled units, it blocks — those units may
// return (a worker's subtree can end before its lease is spent). This
// cannot deadlock: a worker only blocks here with zero unsettled units of
// its own (it settles before acquiring), so outstanding > 0 implies some
// worker is actively replaying and will settle. Returns (n>0, true) on
// success, (0, true) on exhaustion, (0, false) on abort.
func (p *capPool) acquire(max int64) (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.aborted {
			return 0, false
		}
		if p.remaining > 0 {
			n := min(max, p.remaining)
			p.remaining -= n
			p.outstanding += n
			return n, true
		}
		if p.outstanding == 0 {
			return 0, true
		}
		p.cond.Wait()
	}
}

// settle returns a lease to the ledger: used units are consumed for good,
// unused units go back to remaining for other workers to lease.
func (p *capPool) settle(used, unused int64) {
	if used == 0 && unused == 0 {
		return
	}
	p.mu.Lock()
	p.remaining += unused
	p.outstanding -= used + unused
	if p.remaining > 0 || p.outstanding == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// abort wakes all blocked acquirers; the exploration is being cancelled.
func (p *capPool) abort() {
	p.mu.Lock()
	p.aborted = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// workerLease is one worker's current slice of the execution cap: avail
// units may still be spent, used units are spent but not yet flushed to the
// shared counters.
type workerLease struct {
	avail int64
	used  int64
}

// flush publishes a worker's locally tallied executions to the shared
// metric counters and settles them with the cap pool. releaseUnused
// additionally returns the lease's unspent units (task exit: the worker is
// about to block on the frontier and must not sit on capacity other workers
// could spend). Flushing per lease instead of per leaf is what keeps the
// shared counters off the replay hot path; per-worker counters and the
// total advance in the same batch, so the report schema's worker-sum
// invariant (Σ worker executions + restored == total) holds at every flush
// boundary — in particular in every final report, even after cancellation
// mid-lease.
func (r *engineRun) flush(w int, l *workerLease, releaseUnused bool) {
	if l.used > 0 {
		r.m.execs.Add(l.used)
		r.m.workerExecs[w].Add(l.used)
	}
	var unused int64
	if releaseUnused {
		unused, l.avail = l.avail, 0
	}
	r.pool.settle(l.used, unused)
	l.used = 0
}

// mergeMaxima folds a worker's local step/fault maxima into the shared
// outcome. Called per lease boundary and at task exit, not per leaf.
func (r *engineRun) mergeMaxima(localSteps, localFaults int) {
	if localSteps == 0 && localFaults == 0 {
		return
	}
	r.mu.Lock()
	if localSteps > r.maxSteps {
		r.maxSteps = localSteps
	}
	if localFaults > r.maxFaults {
		r.maxFaults = localFaults
	}
	r.mu.Unlock()
}

// worker pops subtree tasks and enumerates them until the frontier drains.
// A task that could not be finished (cancellation, execution cap, error)
// stays in the worker's frontier slot so the final checkpoint preserves it;
// the worker then exits rather than claim further tasks it cannot finish.
//
// The replay machinery (chooser, execState with its arena, dedup tracker)
// is per-worker and lives for the worker's whole run — replays allocate
// nothing on their hot path.
func (r *engineRun) worker(ctx context.Context, w int) {
	var dh *dedupHandle
	if r.set != nil {
		dh = &dedupHandle{
			set:     r.set,
			tracker: dedup.NewTracker(r.cfg.Protocol.Objects(), r.cfg.Inputs, true),
		}
	}
	c := &chooser{}
	es := newExecState(r.cfg, r.kind, r.compiled, c, dh)
	defer es.close()
	var l workerLease
	for {
		idleStart := time.Now()
		t, ok := r.fr.pop(w)
		r.m.workerIdleNS[w].Add(time.Since(idleStart).Nanoseconds())
		if !ok {
			return
		}
		r.m.steals.Inc()
		r.m.workerSteals[w].Inc()
		finished := r.runSubtree(ctx, w, t, es, &l)
		// Settle before blocking on the frontier (or exiting): a worker
		// waiting for work must not sit on leased capacity.
		r.flush(w, &l, true)
		r.fr.done(w, finished)
		if !finished {
			return
		}
	}
}

// runSubtree enumerates the subtree task by stateless replay, donating
// sub-subtrees to the frontier whenever it runs low. It reports whether the
// task was finished: fully enumerated, or abandoned because no leaf below it
// can improve the canonical counterexample (bound pruning) or because its
// root state was already covered by a smaller path (dedup).
//
// Shared state is touched once per lease, not once per leaf: the cap pool,
// the metric counters, the frontier slot publish, and the maxima merge all
// amortize over LeaseSize replays. The slot path is therefore up to a lease
// stale, which is safe — a stale path lexicographically precedes the true
// position, so a checkpoint taken between publishes covers a superset of
// the remaining work (see docs/MODEL.md, "Performance model").
func (r *engineRun) runSubtree(ctx context.Context, w int, t task, es *execState, l *workerLease) bool {
	c := es.c
	c.path = append(c.path[:0], t.path...)
	c.arity = c.arity[:0]
	c.pos = 0
	c.lb = t.floor
	var localSteps, localFaults int
	var taskExecs int64
	spanStart := r.tr.Recorder().Begin()
	defer func() {
		r.tr.Recorder().End("task", "worker", w, -1, spanStart, map[string]any{
			"root_depth": len(t.path), "executions": taskExecs,
		})
		r.mergeMaxima(localSteps, localFaults)
	}()

	for {
		if ctx.Err() != nil {
			return false
		}
		if r.pruned(c.path) {
			// Replay visits leaves in lexicographic order, so once the
			// next path reaches the bound the rest of the subtree can
			// only contain larger counterexamples.
			return true
		}
		if l.avail == 0 {
			// Lease boundary: reconcile the spent lease, refresh the
			// slot's resume point, fold the maxima, and reserve the next
			// batch.
			r.flush(w, l, false)
			r.fr.publish(w, c.path, c.lb)
			r.mergeMaxima(localSteps, localFaults)
			n, ok := r.pool.acquire(r.leaseSize)
			if !ok {
				return false // cancelled; the slot keeps the task
			}
			if n == 0 {
				// True exhaustion: exactly cap executions completed.
				r.capped.Store(true)
				return false
			}
			l.avail = n
		}
		c.arity = c.arity[:0]
		c.pos = 0
		verdict, stats, pruned, err := es.runLeaf(ctx)
		if err != nil {
			if ctx.Err() == nil {
				r.fail(err)
			}
			return false
		}
		if r.set != nil {
			r.set.LeafLookup()
		}
		if pruned {
			// The replay halted at a redundant prefix — a state some
			// lex-smaller path already covers (dedup), or a sleep-blocked
			// node (reduction): the subtree below it proves nothing new.
			// No cap unit was spent — Executions counts completed
			// replays, and the pruned replay's unit stays in the lease.
			if es.pruneSleep {
				r.m.reducePrunes.Inc()
				r.ev.Emit(obs.Debug, "reduce.prune", map[string]any{
					"worker": w, "pos": es.prunedAt,
				})
			} else {
				r.m.prunes.Inc()
				r.ev.Emit(obs.Debug, "dedup.prune", map[string]any{
					"worker": w, "pos": es.prunedAt,
				})
			}
			if es.prunedAt <= c.lb {
				return true // the whole task is covered elsewhere
			}
			c.path = c.path[:es.prunedAt]
			c.arity = c.arity[:es.prunedAt]
			if !c.next() {
				return true
			}
			continue
		}
		l.avail--
		l.used++
		taskExecs++
		if stats.maxSteps > localSteps {
			localSteps = stats.maxSteps
		}
		if stats.faults > localFaults {
			localFaults = stats.faults
		}
		if !verdict.OK() {
			ce := es.counterexample(verdict)
			r.recordViolation(w, ce)
			if r.tr != nil {
				if err := r.tr.captureViolation(w, ce.Path, ce); err != nil {
					r.fail(fmt.Errorf("explore: trace capture: %w", err))
					return false
				}
			}
		} else if r.tr.sampleHit() {
			ce := es.counterexample(verdict)
			if err := r.tr.captureSample(w, ce.Path, ce); err != nil {
				r.fail(fmt.Errorf("explore: trace capture: %w", err))
				return false
			}
		}
		if r.fr.starving(r.lowWater) {
			if p, floor, ok := c.donate(); ok {
				// donate raised the chooser's floor past the donated
				// subtree; push before the next publish so a snapshot
				// between the two covers the donation twice, never zero
				// times.
				r.m.depth.Observe(float64(len(p)))
				r.m.donations.Inc()
				r.ev.Emit(obs.Debug, "frontier.donate", map[string]any{
					"worker": w, "tasks": 1, "depth": len(p),
				})
				r.fr.push([]task{{path: p, floor: floor}})
				r.fr.publish(w, c.path, c.lb)
			}
		}
		if !c.next() {
			return true
		}
	}
}

// pruned reports that every leaf below the path is lexicographically at or
// above the current violation bound.
func (r *engineRun) pruned(path []int) bool {
	bound := r.bound.Load()
	if bound == nil {
		return false
	}
	return lexGE(path, *bound)
}

// lexGE compares a (possibly partial) choice path against a full leaf path:
// the partial path stands for its own first-fill extension (zeros), which
// orders before every longer continuation.
func lexGE(path, leaf []int) bool {
	for i := 0; i < len(path) && i < len(leaf); i++ {
		if path[i] != leaf[i] {
			return path[i] > leaf[i]
		}
	}
	return len(path) >= len(leaf)
}

// recordViolation merges one violating execution into the shared outcome,
// keeping the canonical counterexample and tightening the pruning bound.
// ce must be self-contained (execState.counterexample): it is retained
// beyond the replay that produced it.
func (r *engineRun) recordViolation(w int, ce *Counterexample) {
	p := ce.Path
	r.m.violations.Inc()

	r.mu.Lock()
	if r.firstAt == 0 {
		r.firstAt = r.elapsed0 + time.Since(r.start)
	}
	improved := r.better(ce)
	if improved {
		r.best = ce
		if r.stopOnFirst {
			r.bound.Store(&p)
		}
	}
	r.mu.Unlock()
	r.ev.Emit(obs.Info, "violation.found", map[string]any{
		"worker": w, "path_len": len(p), "schedule_len": len(ce.Schedule),
		"violation": ce.Verdict.Violation, "improved": improved,
	})
}

// better decides whether the candidate replaces the current best violation:
// lexicographically least path in default mode (the sequential checker's
// first), shortest schedule with lexicographic tie-break in Exhaustive mode.
func (r *engineRun) better(cand *Counterexample) bool {
	if r.best == nil {
		return true
	}
	if !r.stopOnFirst && len(cand.Schedule) != len(r.best.Schedule) {
		return len(cand.Schedule) < len(r.best.Schedule)
	}
	return lexLess(cand.Path, r.best.Path)
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// fail records the first framework error and cancels the exploration.
func (r *engineRun) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancel()
}

// saveCheckpoint persists one snapshot of the run. The task snapshot is
// taken first: every counter, violation, and dedup entry read afterwards
// describes work that is either complete (and thus reflected in the
// snapshot's counters) or still covered by a snapshotted task — so a resume
// from any checkpoint re-explores a superset of the unfinished work and
// reaches the same verdict. final marks the run finished when no task
// survives (a cancelled or capped run keeps its tasks and stays resumable).
func (r *engineRun) saveCheckpoint(final bool) error {
	start := time.Now()
	tasks := r.fr.snapshot()
	cp := &store.Checkpoint{
		Done:       final && len(tasks) == 0,
		Executions: r.m.execs.Load() - r.base.execs,
		Violations: r.m.violations.Load() - r.base.violations,
		Capped:     r.capped.Load(),
		ElapsedNS:  (r.elapsed0 + time.Since(r.start)).Nanoseconds(),
		Tasks:      make([]store.Task, len(tasks)),
	}
	for i, t := range tasks {
		cp.Tasks[i] = store.Task{Path: t.path, Floor: t.floor}
	}
	r.mu.Lock()
	cp.MaxProcSteps = r.maxSteps
	cp.MaxFaults = r.maxFaults
	cp.FirstViolationNS = int64(r.firstAt)
	if r.best != nil {
		cp.BestPath = append([]int(nil), r.best.Path...)
		cp.BestLen = len(r.best.Schedule)
	}
	r.mu.Unlock()
	if r.set != nil {
		cp.Dedup = r.set.Snapshot()
	}
	spanStart := r.tr.Recorder().Begin()
	if err := r.st.Save(cp); err != nil {
		return err
	}
	r.tr.Recorder().End("checkpoint", "checkpoint", -1, -1, spanStart, map[string]any{
		"seq": r.m.ckptSaves.Load() + 1, "tasks": len(cp.Tasks),
		"executions": cp.Executions, "final": final,
	})
	r.m.ckptSaves.Inc()
	r.m.ckptMS.Observe(float64(time.Since(start).Microseconds()) / 1000)
	return nil
}

// startCheckpoint launches the periodic checkpoint writer and returns its
// stop function. A failed write fails the whole run: continuing with a stale
// checkpoint would make a later resume silently wrong.
func (e *Engine) startCheckpoint(r *engineRun) func() {
	if r.st == nil {
		return func() {}
	}
	every := e.CheckpointEvery
	if every <= 0 {
		every = 5 * time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if err := r.saveCheckpoint(false); err != nil {
					r.fail(fmt.Errorf("explore: checkpoint: %w", err))
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// startProgress launches the periodic throughput reporter and returns its
// stop function.
func (e *Engine) startProgress(r *engineRun) func() {
	if e.Progress == nil {
		return func() {}
	}
	every := e.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(every)
		defer tick.Stop()
		var lastExecs int64
		lastTime := r.start
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				execs := r.m.execs.Load() - r.base.execs
				rate := float64(execs-lastExecs) / now.Sub(lastTime).Seconds()
				lastExecs, lastTime = execs, now
				p := Progress{
					Executions: execs,
					Rate:       rate,
					Frontier:   r.fr.pending(),
					Violations: r.m.violations.Load() - r.base.violations,
					Elapsed:    r.elapsed0 + time.Since(r.start),
					Donations:  r.m.donations.Load() - r.base.donations,
					Steals:     r.m.steals.Load() - r.base.steals,
				}
				if r.set != nil {
					p.Dedup = r.set.Stats()
				}
				if snap := r.m.depth.Snapshot(); snap.Count > 0 {
					p.DepthP50 = snap.Quantile(0.5)
					p.DepthP99 = snap.Quantile(0.99)
				}
				e.Progress(p)
			}
		}
	}()
	// Closing done stops the reporter; waiting for exited guarantees no
	// Progress callback is in flight after the stop function returns.
	return func() {
		close(done)
		<-exited
	}
}
