package explore

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Engine is the parallel exploration engine: a frontier of choice-path
// prefixes sharded across workers, each worker running independent
// stateless replays (an execution is a pure function of protocol, inputs,
// and choice path, so subtrees explore with no shared state beyond the
// frontier and the aggregated outcome).
//
// Determinism guarantees, independent of worker count and scheduling:
//
//   - A complete enumeration visits every leaf exactly once, so Executions,
//     MaxProcSteps, and MaxFaults are identical for any Workers value.
//   - The reported Violation is canonical: the lexicographically least
//     violating choice path (default mode — the same counterexample the
//     sequential Check finds first), or the violation with the shortest
//     schedule, ties broken lexicographically (Exhaustive mode, matching
//     FindMinimal's notion of minimality, made deterministic).
//
// In default mode a found violation does not cancel the other workers
// outright; instead it becomes a pruning bound: subtrees lexicographically
// at or above the best violation are abandoned, so only the work needed to
// certify the canonical counterexample remains. Combined with
// context.Context cancellation threaded through sim.Run, workers stop
// promptly once nothing below the bound is left.
type Engine struct {
	// Workers is the number of parallel exploration workers; 0 means
	// GOMAXPROCS.
	Workers int
	// Exhaustive keeps enumerating after a violation (no pruning), so the
	// complete tree is visited and the minimal counterexample (shortest
	// schedule) is reported — the parallel analogue of FindMinimal.
	Exhaustive bool
	// Progress, when non-nil, receives periodic throughput reports.
	Progress func(Progress)
	// ProgressEvery is the reporting period (default 2s).
	ProgressEvery time.Duration
}

// Progress is one throughput report of a running exploration.
type Progress struct {
	// Executions is the number of replays completed so far.
	Executions int64
	// Rate is the recent throughput in paths per second.
	Rate float64
	// Frontier is the number of queued subtree roots.
	Frontier int
	// Violations is the number of violating executions seen so far.
	Violations int64
	// Elapsed is the wall-clock time since the exploration started.
	Elapsed time.Duration
}

// engineRun is the shared state of one Engine.Check invocation.
type engineRun struct {
	cfg         Config
	kind        fault.Kind
	cap         int
	stopOnFirst bool
	lowWater    int
	fr          *frontier
	start       time.Time

	execs      atomic.Int64
	violations atomic.Int64
	capped     atomic.Bool
	// bound is the lex-least violating path found so far (pruning bound);
	// nil until a violation is seen or in Exhaustive mode.
	bound atomic.Pointer[[]int]

	mu        sync.Mutex
	best      *Counterexample
	firstAt   time.Duration
	maxSteps  int
	maxFaults int
	err       error
	cancel    context.CancelFunc
}

// Check explores the execution tree with the engine's worker pool. The
// returned Outcome matches the sequential Check on every deterministic
// field (see the Engine doc comment). When ctx is cancelled or its deadline
// passes, the partial outcome is returned together with ctx.Err().
func (e *Engine) Check(ctx context.Context, cfg Config) (*Outcome, error) {
	kind, cap, err := cfg.prepare()
	if err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	r := &engineRun{
		cfg:         cfg,
		kind:        kind,
		cap:         cap,
		stopOnFirst: !e.Exhaustive,
		lowWater:    2 * workers,
		fr:          newFrontier(nil), // root: the empty prefix
		start:       time.Now(),
		cancel:      cancel,
	}
	// pop blocks on a condition variable, not on ctx: translate
	// cancellation into a frontier abort so waiting workers wake up.
	go func() {
		<-ctx.Done()
		r.fr.abort()
	}()

	stopProgress := e.startProgress(r)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.worker(ctx)
		}()
	}
	wg.Wait()
	stopProgress()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return nil, r.err
	}
	out := &Outcome{
		Executions:       int(r.execs.Load()),
		Violation:        r.best,
		MaxProcSteps:     r.maxSteps,
		MaxFaults:        r.maxFaults,
		Workers:          workers,
		Elapsed:          time.Since(r.start),
		ViolationLatency: r.firstAt,
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	out.Complete = !r.capped.Load() && (r.best == nil || e.Exhaustive)
	return out, nil
}

// FindMinimal is the parallel analogue of the package-level FindMinimal: it
// enumerates the complete tree (no early exit) and returns the violating
// execution with the shortest schedule (ties broken by lexicographic choice
// path, so the result is deterministic), or nil if none exists.
func (e *Engine) FindMinimal(ctx context.Context, cfg Config) (*Counterexample, *Outcome, error) {
	exhaustive := *e
	exhaustive.Exhaustive = true
	out, err := exhaustive.Check(ctx, cfg)
	if err != nil {
		return nil, out, err
	}
	return out.Violation, out, nil
}

// worker pops subtree roots and enumerates them until the frontier drains.
func (r *engineRun) worker(ctx context.Context) {
	for {
		prefix, ok := r.fr.pop()
		if !ok {
			return
		}
		r.runSubtree(ctx, prefix)
		r.fr.done()
	}
}

// runSubtree enumerates the subtree rooted at the given choice-path prefix
// by stateless replay, donating sub-subtrees to the frontier whenever it
// runs low.
func (r *engineRun) runSubtree(ctx context.Context, prefix []int) {
	c := &chooser{path: prefix, lb: len(prefix)}
	var localSteps, localFaults int
	defer func() {
		r.mu.Lock()
		if localSteps > r.maxSteps {
			r.maxSteps = localSteps
		}
		if localFaults > r.maxFaults {
			r.maxFaults = localFaults
		}
		r.mu.Unlock()
	}()

	for {
		if ctx.Err() != nil {
			return
		}
		if r.pruned(c.path) {
			// Replay visits leaves in lexicographic order, so once the
			// next path reaches the bound the rest of the subtree can
			// only contain larger counterexamples.
			return
		}
		if !r.claim() {
			return
		}
		c.arity = c.arity[:0]
		c.pos = 0
		ce, verdict, stats, err := runOnce(ctx, r.cfg, r.kind, c)
		if err != nil {
			if ctx.Err() == nil {
				r.fail(err)
			}
			return
		}
		if stats.maxSteps > localSteps {
			localSteps = stats.maxSteps
		}
		if stats.faults > localFaults {
			localFaults = stats.faults
		}
		if !verdict.OK() {
			r.recordViolation(ce, c.path)
		}
		if r.fr.starving(r.lowWater) {
			if alts := c.donate(); alts != nil {
				r.fr.push(alts)
			}
		}
		if !c.next() {
			return
		}
	}
}

// claim reserves one execution against the cap.
func (r *engineRun) claim() bool {
	for {
		cur := r.execs.Load()
		if cur >= int64(r.cap) {
			r.capped.Store(true)
			return false
		}
		if r.execs.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// pruned reports that every leaf below the path is lexicographically at or
// above the current violation bound.
func (r *engineRun) pruned(path []int) bool {
	bound := r.bound.Load()
	if bound == nil {
		return false
	}
	return lexGE(path, *bound)
}

// lexGE compares a (possibly partial) choice path against a full leaf path:
// the partial path stands for its own first-fill extension (zeros), which
// orders before every longer continuation.
func lexGE(path, leaf []int) bool {
	for i := 0; i < len(path) && i < len(leaf); i++ {
		if path[i] != leaf[i] {
			return path[i] > leaf[i]
		}
	}
	return len(path) >= len(leaf)
}

// recordViolation merges one violating execution into the shared outcome,
// keeping the canonical counterexample and tightening the pruning bound.
func (r *engineRun) recordViolation(ce *Counterexample, path []int) {
	p := append([]int(nil), path...)
	ce.Path = p
	r.violations.Add(1)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.firstAt == 0 {
		r.firstAt = time.Since(r.start)
	}
	if r.better(ce) {
		r.best = ce
		if r.stopOnFirst {
			r.bound.Store(&p)
		}
	}
}

// better decides whether the candidate replaces the current best violation:
// lexicographically least path in default mode (the sequential checker's
// first), shortest schedule with lexicographic tie-break in Exhaustive mode.
func (r *engineRun) better(cand *Counterexample) bool {
	if r.best == nil {
		return true
	}
	if !r.stopOnFirst && len(cand.Schedule) != len(r.best.Schedule) {
		return len(cand.Schedule) < len(r.best.Schedule)
	}
	return lexLess(cand.Path, r.best.Path)
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// fail records the first framework error and cancels the exploration.
func (r *engineRun) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancel()
}

// startProgress launches the periodic throughput reporter and returns its
// stop function.
func (e *Engine) startProgress(r *engineRun) func() {
	if e.Progress == nil {
		return func() {}
	}
	every := e.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(every)
		defer tick.Stop()
		var lastExecs int64
		lastTime := r.start
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				execs := r.execs.Load()
				rate := float64(execs-lastExecs) / now.Sub(lastTime).Seconds()
				lastExecs, lastTime = execs, now
				e.Progress(Progress{
					Executions: execs,
					Rate:       rate,
					Frontier:   r.fr.pending(),
					Violations: r.violations.Load(),
					Elapsed:    time.Since(r.start),
				})
			}
		}
	}()
	// Closing done stops the reporter; waiting for exited guarantees no
	// Progress callback is in flight after the stop function returns.
	return func() {
		close(done)
		<-exited
	}
}
