package explore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dedup"
	"repro/internal/fault"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/store"
)

// exportLowWater is the ledger-side starvation threshold: while fewer
// unclaimed tasks than this are on offer, claim holders export subtrees so
// joining processes find work quickly.
const exportLowWater = 4

// checkLedger is Check in distributed mode: a claim loop over the work
// ledger. Each claimed subtree runs as its own engineRun (full in-process
// worker pool, fresh violation bound, fresh frontier seeded with the
// claim), flanked by a renewal heartbeat (TTL/3) and an export pump that
// offers surplus frontier tasks to other processes. The claim's outcome is
// published exactly at the lease boundary: Release on success, Abandon on
// cancellation or cap exhaustion, silent discard when fenced — so merged
// counts stay exact whatever this process's fate.
//
// The returned Outcome describes THIS process's contribution (its
// executions, its best counterexample candidate); the global verdict is
// the ledger merge (FinalizeLedger), identical to a single-process run.
func (e *Engine) checkLedger(ctx context.Context, cfg Config) (*Outcome, error) {
	kind, cap, compiled, err := cfg.prepare()
	if err != nil {
		return nil, err
	}
	if cfg.FixedPolicy != nil {
		return nil, fmt.Errorf("explore: the ledger requires the checker's own fault policy, not FixedPolicy")
	}
	if e.Store != nil {
		return nil, fmt.Errorf("explore: Ledger and Store are mutually exclusive — published results are the ledger's durable state")
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reg := e.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	leaseSize := int64(e.LeaseSize)
	if leaseSize <= 0 {
		leaseSize = DefaultLeaseSize
	}
	m := newRunMetrics(reg, workers)
	reg.Gauge("explore.workers").Set(int64(workers))
	var set *dedup.Set
	if e.Dedup {
		set = dedup.NewSet(0)
		set.Register(reg)
	}
	e.Ledger.Instrument(reg, e.Events)

	pr := &ledgerProcess{
		eng: e, cfg: cfg, kind: kind, compiled: compiled,
		cap: cap, workers: workers, leaseSize: leaseSize,
		m: m, set: set, reg: reg, ev: e.Events, start: time.Now(),
	}
	pr.base.execs = m.execs.Load()
	pr.base.violations = m.violations.Load()
	pr.base.donations = m.donations.Load()
	pr.base.steals = m.steals.Load()
	// Stamp every span this process records with its fleet identity, so
	// exported spans from different OS processes correlate by (worker,
	// ledger epoch) alongside the per-claim (id, epoch) args.
	rec := e.Tracer.Recorder()
	rec.Annotate("worker", e.Ledger.Owner())
	rec.Annotate("ledger_epoch", e.Ledger.Epoch())
	stopProgress := pr.startProgress()
	defer stopProgress()
	stopSnapshots := pr.startSnapshots()
	defer stopSnapshots()
	pr.ev.Emit(obs.Info, "run.start", map[string]any{
		"workers": workers, "cap": cap, "dedup": e.Dedup,
		"ledger": true, "owner": e.Ledger.Owner(),
	})

	drained := false
	capped := false
	var runErr error
loop:
	for {
		if ctx.Err() != nil {
			break
		}
		if pr.budget() <= 0 {
			capped = true
			break
		}
		lease, err := e.Ledger.Claim(ctx)
		switch {
		case errors.Is(err, ledger.ErrDrained):
			drained = true
			break loop
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			break loop
		case err != nil:
			runErr = err
			break loop
		}
		co, err := pr.runClaim(ctx, lease)
		if err != nil {
			runErr = err
			break loop
		}
		if co.capped {
			capped = true
			break loop
		}
		if co.published {
			pr.fold(co)
		}
	}
	if runErr != nil {
		return nil, runErr
	}

	out := &Outcome{
		Executions:       int(m.execs.Load() - pr.base.execs),
		Violation:        pr.best,
		MaxProcSteps:     pr.maxSteps,
		MaxFaults:        pr.maxFaults,
		Workers:          workers,
		Elapsed:          time.Since(pr.start),
		ViolationLatency: pr.firstAt,
		Donations:        m.donations.Load() - pr.base.donations,
		Steals:           m.steals.Load() - pr.base.steals,
	}
	if set != nil {
		st := set.Stats()
		out.Dedup = &st
	}
	if err := ctx.Err(); err != nil {
		pr.ev.Emit(obs.Warn, "run.done", map[string]any{
			"executions": out.Executions, "complete": false, "cancelled": true,
			"ledger": true, "elapsed_ms": out.Elapsed.Milliseconds(),
		})
		return out, err
	}
	// Drained means GLOBALLY complete: no tasks, no leases, every subtree's
	// result published. Mirror Check's semantics for the violation case.
	out.Complete = drained && !capped && (pr.best == nil || e.Exhaustive)
	pr.ev.Emit(obs.Info, "run.done", map[string]any{
		"executions": out.Executions, "complete": out.Complete, "drained": drained,
		"capped": capped, "ledger": true, "elapsed_ms": out.Elapsed.Milliseconds(),
	})
	return out, nil
}

// ledgerProcess is the per-OS-process state of a distributed exploration:
// the process-scoped counter bases (claims come and go, the registry
// accumulates) and the fold of published claim outcomes.
type ledgerProcess struct {
	eng       *Engine
	cfg       Config
	kind      fault.Kind
	compiled  bool
	cap       int
	workers   int
	leaseSize int64
	m         *runMetrics
	set       *dedup.Set
	reg       *obs.Registry
	ev        *obs.Log
	start     time.Time
	base      struct{ execs, violations, donations, steals int64 }

	cur atomic.Pointer[engineRun] // the live claim's run, for progress
	// claim is the live claim as published in fleet snapshots. Updated
	// with immutable copies on acquire and on every renewal — the snapshot
	// publisher reads it from its own goroutine, so it must never alias
	// the Lease struct the heartbeat mutates in place.
	claim atomic.Pointer[obs.ClaimInfo]

	best      *Counterexample // best across PUBLISHED claims only
	firstAt   time.Duration
	maxSteps  int
	maxFaults int
}

// budget is the process's remaining execution allowance: its cap minus
// every execution it has run, across claims, published or discarded.
func (pr *ledgerProcess) budget() int64 {
	return int64(pr.cap) - (pr.m.execs.Load() - pr.base.execs)
}

// fold merges a published claim's outcome into the process aggregate.
func (pr *ledgerProcess) fold(co *claimOutcome) {
	if co.maxSteps > pr.maxSteps {
		pr.maxSteps = co.maxSteps
	}
	if co.maxFaults > pr.maxFaults {
		pr.maxFaults = co.maxFaults
	}
	if co.best != nil {
		if pr.best == nil || (!pr.eng.Exhaustive && lexLess(co.best.Path, pr.best.Path)) ||
			(pr.eng.Exhaustive && betterExhaustive(co.best, pr.best)) {
			pr.best = co.best
		}
		if pr.firstAt == 0 || (co.firstAt != 0 && co.firstAt < pr.firstAt) {
			pr.firstAt = co.firstAt
		}
	}
}

func betterExhaustive(cand, cur *Counterexample) bool {
	if len(cand.Schedule) != len(cur.Schedule) {
		return len(cand.Schedule) < len(cur.Schedule)
	}
	return lexLess(cand.Path, cur.Path)
}

// claimOutcome is the fate of one ledger claim.
type claimOutcome struct {
	published bool // Release succeeded; the claim's counts are in the ledger
	fenced    bool // superseded mid-claim; all work discarded
	abandoned bool // returned unfinished (cancellation / cap)
	capped    bool // the PROCESS budget ran out during this claim
	best      *Counterexample
	firstAt   time.Duration
	maxSteps  int
	maxFaults int
}

// runClaim enumerates one claimed subtree with the full worker pool. The
// lease is renewed at TTL/3 for the duration; losing it (ErrFenced) cancels
// the claim context and discards everything the claim tallied. Surplus
// frontier tasks are exported while the ledger runs dry. Exactly one of
// Release / Abandon / fenced-discard ends the lease.
func (pr *ledgerProcess) runClaim(ctx context.Context, lease *ledger.Lease) (*claimOutcome, error) {
	l := pr.eng.Ledger
	claimCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The claim's fleet-visible lifecycle: an immutable ClaimInfo for the
	// snapshot publisher (replaced wholesale on every renewal — the
	// heartbeat goroutine mutates the Lease in place, so the publisher
	// must never read it), claim.* events keyed by (claim id, epoch,
	// worker, ledger epoch), and one "claim" span per claim so a subtree's
	// crash → reap → re-enqueue at epoch+1 can be followed across the
	// processes' exported artifacts.
	acquired := time.Now()
	pr.claim.Store(&obs.ClaimInfo{
		ID: lease.ID, Epoch: lease.Epoch,
		StartedUnixNano:      acquired.UnixNano(),
		LeaseExpiresUnixNano: lease.ExpiresUnixNano,
	})
	defer pr.claim.Store((*obs.ClaimInfo)(nil))
	pr.ev.Emit(obs.Info, "claim.acquire", map[string]any{
		"claim": lease.ID, "epoch": lease.Epoch, "worker": l.Owner(),
		"ledger_epoch": l.Epoch(), "path_len": len(lease.Path), "floor": lease.Floor,
		"expires_unix_nano": lease.ExpiresUnixNano,
	})
	rec := pr.eng.Tracer.Recorder()
	spanStart := rec.Begin()

	r := &engineRun{
		cfg:         pr.cfg,
		kind:        pr.kind,
		compiled:    pr.compiled,
		cap:         pr.cap,
		stopOnFirst: !pr.eng.Exhaustive,
		// Overfill the local frontier by the ledger's low-water mark so
		// the export pump finds surplus subtrees to give away without
		// racing local workers for the last queued task.
		lowWater:  2*pr.workers + exportLowWater,
		leaseSize: pr.leaseSize,
		set:       pr.set,
		tr:        pr.eng.Tracer,
		start:     time.Now(),
		cancel:    cancel,
		m:         pr.m,
		ev:        pr.ev,
	}
	r.base.execs = pr.m.execs.Load()
	r.base.violations = pr.m.violations.Load()
	r.base.donations = pr.m.donations.Load()
	r.base.steals = pr.m.steals.Load()
	var dedupBase dedup.Stats
	if pr.set != nil {
		dedupBase = pr.set.Stats()
	}
	r.pool = newCapPool(pr.budget())
	root := task{path: append([]int(nil), lease.Path...), floor: lease.Floor}
	r.fr = newFrontier([]task{root}, pr.workers)
	r.m.depth.Observe(float64(len(root.path)))
	pr.cur.Store(r)
	defer pr.cur.Store((*engineRun)(nil))

	// settle seals the claim's observable lifecycle: one claim.release
	// event and one "claim" span, both carrying the disposition the lease
	// actually ended with (published | fenced | abandoned | error).
	settle := func(disposition string) {
		execs := pr.m.execs.Load() - r.base.execs
		pr.ev.Emit(obs.Info, "claim.release", map[string]any{
			"claim": lease.ID, "epoch": lease.Epoch, "worker": l.Owner(),
			"ledger_epoch": l.Epoch(), "disposition": disposition, "executions": execs,
		})
		rec.End("claim", "ledger", -1, -1, spanStart, map[string]any{
			"claim": lease.ID, "epoch": lease.Epoch,
			"disposition": disposition, "executions": execs,
		})
	}

	go func() {
		<-claimCtx.Done()
		r.fr.abort()
		r.pool.abort()
	}()

	// Renewal heartbeat: keep the lease alive at TTL/3; on fencing, stop
	// the claim immediately — its work can no longer be published.
	var fenced atomic.Bool
	hbStop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		period := l.TTL() / 3
		if period <= 0 {
			period = time.Second
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-claimCtx.Done():
				return
			case <-tick.C:
				if err := l.Renew(lease); err != nil {
					if errors.Is(err, ledger.ErrFenced) {
						fenced.Store(true)
						cancel()
						return
					}
					// Transient I/O: the lease may still be within TTL;
					// retry next tick rather than killing the claim.
					pr.ev.Emit(obs.Warn, "ledger.renew_error", map[string]any{
						"id": lease.ID, "err": err.Error(),
					})
					continue
				}
				// A fresh immutable copy for the snapshot publisher: the
				// renewed expiry is read here, in the renewing goroutine,
				// never from the publisher's.
				pr.claim.Store(&obs.ClaimInfo{
					ID: lease.ID, Epoch: lease.Epoch,
					StartedUnixNano:      acquired.UnixNano(),
					LeaseExpiresUnixNano: lease.ExpiresUnixNano,
				})
				pr.ev.Emit(obs.Debug, "claim.renew", map[string]any{
					"claim": lease.ID, "epoch": lease.Epoch, "worker": l.Owner(),
					"expires_unix_nano": lease.ExpiresUnixNano,
				})
			}
		}
	}()
	// Export pump: while the ledger offers fewer tasks than other processes
	// could claim, give away the oldest (largest) queued subtree. The pump
	// runs at a fraction of the TTL, matching the cadence at which idle
	// participants poll for work.
	hb.Add(1)
	go func() {
		defer hb.Done()
		pump := l.TTL() / 20
		if pump > 50*time.Millisecond {
			pump = 50 * time.Millisecond
		}
		if pump < 2*time.Millisecond {
			pump = 2 * time.Millisecond
		}
		tick := time.NewTicker(pump)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-claimCtx.Done():
				return
			case <-tick.C:
				if !l.Starving(exportLowWater) {
					continue
				}
				t, ok := r.fr.takeOldest()
				if !ok {
					continue
				}
				if ledger.TaskID(t.path, t.floor) == lease.ID {
					// The claim's own root task, still queued before any
					// worker popped it. Exporting it would fence this very
					// claim; keep it local.
					r.fr.settleExport(&t)
					continue
				}
				if err := l.Export(lease, t.path, t.floor); err != nil {
					r.fr.settleExport(&t)
				} else {
					r.fr.settleExport(nil)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < pr.workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(claimCtx, w)
		}(i)
	}
	wg.Wait()
	close(hbStop)
	hb.Wait()

	r.mu.Lock()
	runErr, best := r.err, r.best
	maxSteps, maxFaults, firstAt := r.maxSteps, r.maxFaults, r.firstAt
	r.mu.Unlock()
	co := &claimOutcome{
		best: best, firstAt: firstAt, maxSteps: maxSteps, maxFaults: maxFaults,
	}
	abandon := func() error {
		if err := l.Abandon(lease); err != nil {
			settle("error")
			return err
		}
		pr.ev.Emit(obs.Info, "claim.abandon", map[string]any{
			"claim": lease.ID, "epoch": lease.Epoch, "worker": l.Owner(),
		})
		settle("abandoned")
		return nil
	}
	switch {
	case runErr != nil:
		// Framework error: put the subtree back for someone else before
		// failing this process.
		l.Abandon(lease)
		settle("error")
		return nil, runErr
	case fenced.Load():
		// Renew already dropped the lease; every counter this claim moved
		// is excluded simply by never publishing.
		co.fenced = true
		settle("fenced")
		return co, nil
	case ctx.Err() != nil:
		if err := abandon(); err != nil {
			return nil, err
		}
		co.abandoned = true
		return co, nil
	case r.capped.Load():
		// The PROCESS budget ran out mid-claim: the subtree is not fully
		// enumerated, so its partial tally must not be published.
		if err := abandon(); err != nil {
			return nil, err
		}
		co.abandoned = true
		co.capped = true
		return co, nil
	}

	res := &ledger.Result{
		Executions:   pr.m.execs.Load() - r.base.execs,
		Violations:   pr.m.violations.Load() - r.base.violations,
		MaxProcSteps: maxSteps,
		MaxFaults:    maxFaults,
		ElapsedNS:    time.Since(r.start).Nanoseconds(),
	}
	if best != nil {
		res.HasBest = true
		res.BestPath = append([]int(nil), best.Path...)
		res.BestLen = len(best.Schedule)
	}
	if pr.set != nil {
		st := pr.set.Stats()
		res.DedupHits = st.Hits - dedupBase.Hits
	}
	switch err := l.Release(lease, res); {
	case errors.Is(err, ledger.ErrFenced):
		co.fenced = true
		co.best = nil
		settle("fenced")
		return co, nil
	case err != nil:
		settle("error")
		return nil, err
	}
	pr.ev.Emit(obs.Info, "claim.publish", map[string]any{
		"claim": lease.ID, "epoch": lease.Epoch, "worker": l.Owner(),
		"executions": res.Executions, "violations": res.Violations, "has_best": res.HasBest,
	})
	settle("published")
	co.published = true
	return co, nil
}

// startProgress reports process-cumulative throughput across claims (the
// per-claim engineRuns come and go; the ticker outlives them all).
func (pr *ledgerProcess) startProgress() func() {
	e := pr.eng
	if e.Progress == nil {
		return func() {}
	}
	every := e.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(every)
		defer tick.Stop()
		var lastExecs int64
		lastTime := pr.start
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				execs := pr.m.execs.Load() - pr.base.execs
				rate := float64(execs-lastExecs) / now.Sub(lastTime).Seconds()
				lastExecs, lastTime = execs, now
				p := Progress{
					Executions: execs,
					Rate:       rate,
					Violations: pr.m.violations.Load() - pr.base.violations,
					Elapsed:    time.Since(pr.start),
					Donations:  pr.m.donations.Load() - pr.base.donations,
					Steals:     pr.m.steals.Load() - pr.base.steals,
				}
				if cur := pr.cur.Load(); cur != nil {
					p.Frontier = cur.fr.pending()
				}
				if pr.set != nil {
					p.Dedup = pr.set.Stats()
				}
				if snap := pr.m.depth.Snapshot(); snap.Count > 0 {
					p.DepthP50 = snap.Quantile(0.5)
					p.DepthP99 = snap.Quantile(0.99)
				}
				e.Progress(p)
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// startSnapshots periodically publishes this worker's fleet snapshot —
// registry dump, heartbeat, current claim — into <run>/obs/ via the
// store's atomic write discipline, at the lease renewal cadence (TTL/3).
// A final snapshot on stop records the worker's finished state, so a
// cleanly exited worker shows its full contribution rather than a stale
// mid-run heartbeat. Publishing is best-effort: a failed write is a warn
// event, never a run failure.
func (pr *ledgerProcess) startSnapshots() func() {
	e := pr.eng
	if !e.FleetSnapshots || e.Ledger == nil {
		return func() {}
	}
	dir, err := store.ObsDir(e.Ledger.RunDir())
	if err != nil {
		pr.ev.Emit(obs.Warn, "fleet.snapshot_error", map[string]any{"err": err.Error()})
		return func() {}
	}
	name := store.WorkerSnapshotName(e.Ledger.Owner())
	period := e.Ledger.TTL() / 3
	if period <= 0 {
		period = time.Second
	}
	publish := func() {
		ws := &obs.WorkerSnapshot{
			Schema:            obs.WorkerSnapshotSchema,
			Worker:            e.Ledger.Owner(),
			PID:               os.Getpid(),
			LedgerEpoch:       e.Ledger.Epoch(),
			StartedUnixNano:   pr.start.UnixNano(),
			HeartbeatUnixNano: time.Now().UnixNano(),
			Claim:             pr.claim.Load(),
			Metrics:           pr.reg.Snapshot(),
		}
		data, err := ws.Encode()
		if err == nil {
			err = store.WriteFileAtomic(dir, name, data)
		}
		if err != nil {
			pr.ev.Emit(obs.Warn, "fleet.snapshot_error", map[string]any{"err": err.Error()})
		}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(period)
		defer tick.Stop()
		publish() // an immediately visible worker beats a TTL/3 blind spot
		for {
			select {
			case <-done:
				publish()
				return
			case <-tick.C:
				publish()
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// FinalizeLedger deterministically merges every published result in the run
// directory's ledger into the global outcome — identical to a
// single-process run's verdict: summed executions (exact for covering
// sweeps with dedup off, "modulo dedup" otherwise), maxima folded by max,
// and the canonical counterexample reconstructed by replaying the merged
// mode-least violating path. It refuses (*ledger.IncompleteError) while
// unclaimed tasks or leases remain. Outcome.Workers reports the number of
// participant processes.
func FinalizeLedger(cfg Config, runDir string, exhaustive bool) (*Outcome, *ledger.Merged, error) {
	m, err := ledger.Merge(runDir, exhaustive)
	if err != nil {
		return nil, nil, err
	}
	out := &Outcome{
		Executions:   int(m.Executions),
		MaxProcSteps: m.MaxProcSteps,
		MaxFaults:    m.MaxFaults,
		Workers:      len(m.Participants),
		Elapsed:      time.Duration(m.ElapsedNS),
		Complete:     !m.Capped && (!m.HasBest || exhaustive),
	}
	if m.HasBest {
		ce, err := Replay(cfg, m.BestPath)
		if err != nil {
			return nil, nil, fmt.Errorf("explore: finalize: replaying merged counterexample: %w", err)
		}
		if ce.Verdict.OK() {
			return nil, nil, fmt.Errorf("explore: finalize: merged counterexample path %v no longer violates — the run directory does not match this configuration", m.BestPath)
		}
		out.Violation = ce
	}
	return out, m, nil
}
