package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
)

func inputs(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(10 + i)
	}
	return in
}

func TestExhaustiveSingleCASTwoProcsFaultFree(t *testing.T) {
	out, err := Check(Config{
		Protocol: core.SingleCAS{},
		Inputs:   inputs(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatal("tiny tree must be enumerated completely")
	}
	if !out.OK() {
		t.Fatalf("violation: %s", out.Violation)
	}
	// Two processes, one step each: exactly 2 interleavings.
	if out.Executions != 2 {
		t.Errorf("executions = %d, want 2", out.Executions)
	}
}

func TestExhaustiveTheorem4(t *testing.T) {
	// Theorem 4, verified exhaustively: a single CAS object with
	// unboundedly many overriding faults solves consensus for two
	// processes under EVERY schedule and fault pattern.
	out, err := Check(Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatal("enumeration must complete")
	}
	if !out.OK() {
		t.Fatalf("Theorem 4 violated: %s", out.Violation)
	}
	if out.MaxFaults == 0 {
		t.Error("exploration never injected a fault — adversary space not covered")
	}
}

func TestExhaustiveTheorem18Instance(t *testing.T) {
	// Theorem 18 instance: three processes on one CAS object with
	// unbounded overriding faults. The checker must find a violation.
	out, err := Check(Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("Theorem 18 predicts a violation; none found")
	}
	if out.Violation.Verdict.Violation != run.ViolationConsistency {
		t.Errorf("violation kind = %s, want consistency", out.Violation.Verdict.Violation)
	}
	if len(out.Violation.Schedule) == 0 || out.Violation.Trace.Len() == 0 {
		t.Error("counterexample must carry schedule and trace")
	}
}

func TestExhaustiveTheorem5SmallInstance(t *testing.T) {
	// Figure 2 with f=1 (two objects, one faulty with unbounded faults),
	// two and three processes, every faulty-object choice.
	for _, faulty := range [][]int{{0}, {1}} {
		for _, n := range []int{2, 3} {
			out, err := Check(Config{
				Protocol:        core.NewFPlusOne(1),
				Inputs:          inputs(n),
				FaultyObjects:   faulty,
				FaultsPerObject: fault.Unbounded,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Complete {
				t.Fatalf("n=%d faulty=%v: enumeration incomplete (%d execs)", n, faulty, out.Executions)
			}
			if !out.OK() {
				t.Fatalf("n=%d faulty=%v: Theorem 5 violated: %s", n, faulty, out.Violation)
			}
		}
	}
}

func TestExhaustiveTheorem6SmallestInstance(t *testing.T) {
	// Figure 3 with f=1, t=1, n=2: one object, itself faulty, one
	// overriding fault. Verified over the complete execution tree.
	out, err := Check(Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("enumeration incomplete after %d executions", out.Executions)
	}
	if !out.OK() {
		t.Fatalf("Theorem 6 violated: %s", out.Violation)
	}
	if out.MaxFaults != 1 {
		t.Errorf("max faults = %d, want 1 (the adversary's full budget)", out.MaxFaults)
	}
}

func TestExhaustiveTheorem19Instance(t *testing.T) {
	// Theorem 19 instance: Figure 3 sized for f=1, t=1 runs with
	// n = f+2 = 3 processes. The checker must find a violation.
	out, err := Check(Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatalf("Theorem 19 predicts a violation; none found in %d executions (complete=%v)",
			out.Executions, out.Complete)
	}
}

func TestExhaustiveTwoProcessAnomalyExtendsToStaged(t *testing.T) {
	// Theorem 4's two-process anomaly extends beyond Figure 1: the staged
	// protocol sized for t=1 survives three actual overriding faults at
	// n=2 — exhaustively. (A finding of this reproduction, used by
	// experiment E9's commentary; the old value's truthfulness is all two
	// processes need.)
	out, err := Check(Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: 3,
		MaxExecutions:   100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("enumeration incomplete after %d executions", out.Executions)
	}
	if !out.OK() {
		t.Fatalf("violation: %s", out.Violation)
	}
	if out.MaxFaults != 3 {
		t.Errorf("max faults = %d, want 3 (budget fully explored)", out.MaxFaults)
	}
}

func TestExhaustiveSilentRetry(t *testing.T) {
	out, err := Check(Config{
		Protocol:        core.NewSilentRetry(2),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: 2,
		Kind:            fault.Silent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("enumeration incomplete after %d executions", out.Executions)
	}
	if !out.OK() {
		t.Fatalf("silent retry violated: %s", out.Violation)
	}
}

func TestExhaustiveSilentUnboundedLivelock(t *testing.T) {
	out, err := Check(Config{
		Protocol:        core.NewSilentRetry(1), // believes B=1
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded, // reality: ∞
		Kind:            fault.Silent,
		StepLimit:       12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("unbounded silent faults must produce a wait-freedom violation")
	}
	if out.Violation.Verdict.Violation != run.ViolationWaitFreedom {
		t.Errorf("violation kind = %s, want wait-freedom", out.Violation.Verdict.Violation)
	}
}

func TestExhaustiveMixedFaultKinds(t *testing.T) {
	// Definition 3's mix of faults, model-checked: Figure 2 with f=2
	// faulty objects deviating toward DIFFERENT relaxed postconditions
	// (object 0 overriding, object 1 silent), schedules explored
	// exhaustively with the faults always on.
	mixed := fault.PerObject(map[int]fault.Policy{
		0: fault.WhenEffective(fault.Always(fault.Overriding)),
		1: fault.WhenEffective(fault.Always(fault.Silent)),
	})
	out, err := Check(Config{
		Protocol:        core.NewFPlusOne(2),
		Inputs:          inputs(3),
		FaultyObjects:   []int{0, 1},
		FaultsPerObject: fault.Unbounded,
		FixedPolicy:     mixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("enumeration incomplete after %d executions", out.Executions)
	}
	if !out.OK() {
		t.Fatalf("mixed faults broke Figure 2: %s", out.Violation)
	}
	if out.MaxFaults == 0 {
		t.Error("mixed-fault exploration never faulted")
	}
}

func TestCheckCapReportsIncomplete(t *testing.T) {
	out, err := Check(Config{
		Protocol:        core.NewStaged(2, 1),
		Inputs:          inputs(3),
		FaultyObjects:   []int{0, 1},
		FaultsPerObject: 1,
		MaxExecutions:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete {
		t.Error("capped run must not report completeness")
	}
	if out.Executions != 50 && out.Violation == nil {
		t.Errorf("executions = %d, want 50 (cap)", out.Executions)
	}
}

func TestCheckValidation(t *testing.T) {
	if _, err := Check(Config{Inputs: inputs(1)}); err == nil {
		t.Error("missing protocol must error")
	}
	if _, err := Check(Config{Protocol: core.SingleCAS{}}); err == nil {
		t.Error("missing inputs must error")
	}
	if _, err := Check(Config{Protocol: core.SingleCAS{}, Inputs: inputs(1), Kind: fault.Arbitrary}); err == nil {
		t.Error("unsupported fault kind must error")
	}
}

func TestStressSeedDeterminism(t *testing.T) {
	cfg := Config{
		Protocol:        core.NewStaged(1, 1),
		Inputs:          inputs(2),
		FaultyObjects:   []int{0},
		FaultsPerObject: 1,
	}
	a, err := Stress(cfg, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stress(cfg, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violations != b.Violations || a.TotalFaults != b.TotalFaults || a.MaxProcSteps != b.MaxProcSteps {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestStressFindsKnownViolation(t *testing.T) {
	out, err := Stress(Config{
		Protocol:        core.SingleCAS{},
		Inputs:          inputs(3),
		FaultyObjects:   []int{0},
		FaultsPerObject: fault.Unbounded,
	}, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("stress must hit the three-process violation")
	}
	if out.First == nil || out.First.Trace.Len() == 0 {
		t.Error("first counterexample must be recorded")
	}
	if out.Rate() <= 0 || out.Rate() > 1 {
		t.Errorf("rate = %v", out.Rate())
	}
}

func TestStressCleanConfigStaysClean(t *testing.T) {
	out, err := Stress(Config{
		Protocol:        core.NewStaged(2, 1),
		Inputs:          inputs(3),
		FaultyObjects:   []int{0, 1},
		FaultsPerObject: 1,
	}, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("Theorem 6 configuration violated under stress: %s", out.First)
	}
	if out.TotalFaults == 0 {
		t.Error("stress never injected faults")
	}
}

func TestStressValidation(t *testing.T) {
	if _, err := Stress(Config{Inputs: inputs(1)}, 1, 0); err == nil {
		t.Error("missing protocol must error")
	}
	if _, err := Stress(Config{Protocol: core.SingleCAS{}}, 1, 0); err == nil {
		t.Error("missing inputs must error")
	}
}

func TestChooserOdometer(t *testing.T) {
	// Enumerate a known tree: two binary choices → 4 leaves.
	c := &chooser{}
	leaves := 0
	for {
		c.arity = c.arity[:0]
		c.pos = 0
		_ = c.choose(2)
		_ = c.choose(2)
		leaves++
		if !c.next() {
			break
		}
	}
	if leaves != 4 {
		t.Errorf("enumerated %d leaves, want 4", leaves)
	}
}

func TestChooserVariableArity(t *testing.T) {
	// First choice selects arity of the second: 0→1 alternative, 1→3.
	c := &chooser{}
	var seen [][2]int
	for {
		c.arity = c.arity[:0]
		c.pos = 0
		a := c.choose(2)
		var b int
		if a == 0 {
			b = c.choose(1)
		} else {
			b = c.choose(3)
		}
		seen = append(seen, [2]int{a, b})
		if !c.next() {
			break
		}
	}
	want := [][2]int{{0, 0}, {1, 0}, {1, 1}, {1, 2}}
	if len(seen) != len(want) {
		t.Fatalf("seen = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen = %v, want %v", seen, want)
		}
	}
}
