package explore

import (
	"repro/internal/dedup"
	"repro/internal/fault"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/word"
)

// reducer implements dynamic partial-order reduction over the replay tree:
// sleep sets over the choice-path frontier, process-symmetry
// canonicalization at branch points, and (in aggressive mode) persistent
// sets computed from the step machines' object footprints.
//
// The model makes the classical theory unusually concrete. A transition is
// one granted step of a parked process, and every parked process publishes
// the CAS it is about to issue (sim.PendingOp) before it parks. Two pending
// operations are independent iff they touch disjoint objects, or they touch
// the same object and both are pure reads — a CAS that can neither change
// the register nor consume fault budget in the current state:
//
//	pure(o, exp, new) :=  new == reg[o]                       // no-op write
//	                   || reg[o] != exp && !(kind == Overriding && admits(o))
//
// A failing CAS writes nothing and observes only the register; it is impure
// only when an overriding fault could fire on it (the fault branch both
// rewrites the register and consumes budget). A succeeding CAS that changes
// the register is never pure, which also covers the silent-fault branch.
//
// Everything the reducer consults — the register contents and per-process
// digests (dedup.Tracker), the remaining fault budget, the pending
// operations — is a deterministic function of the choice-path prefix, so
// the reduced tree has a stable shape across replays, workers, resumed
// checkpoints, and ledger participants: the chooser's stale-choice panic
// and the manifest's reduce field enforce exactly this.
//
// Soundness (verdict preservation) is the classical argument; the default
// mode additionally preserves the lexicographically least counterexample:
// every cut branch has, by independence, a permuted twin below an earlier
// (lex-smaller) sibling with the same verdict, so by well-founded induction
// the lex-least violator is never cut. Symmetry skips keep the verdict and
// the lex-least path but may rename processes inside the counterexample's
// schedule when two processes share an input. Aggressive mode keeps only
// the verdict. See docs/MODEL.md, "Partial-order reduction".
type reducer struct {
	mode        run.ReduceMode
	kind        fault.Kind
	n           int
	tracker     *dedup.Tracker
	budget      *fault.Budget
	pendingOf   func(id int) sim.PendingOp
	footprintOf func(id int) (lo, hi int) // nil on the interpreted form

	// Per-replay descent state. sleep is the current sleep set (bit per
	// process); the last* fields describe the step granted at the previous
	// decision, folded into sleep lazily at the next decision (advance).
	sleep     uint64
	lastValid bool
	lastOp    sim.PendingOp
	preReg    word.Word
	preTotal  int
	earlier   []int // kept candidates preceding the chosen one

	cand []int // candidate scratch, reused across decisions
}

// newReducer builds the reduction state for one enumeration loop. The
// tracker is shared with deduplication when both are on — it is the single
// canonical-state observer of the replay.
func newReducer(mode run.ReduceMode, kind fault.Kind, n int, tracker *dedup.Tracker, budget *fault.Budget) *reducer {
	return &reducer{mode: mode, kind: kind, n: n, tracker: tracker, budget: budget}
}

// reset clears the descent state (fresh replay from the root).
func (r *reducer) reset() {
	r.sleep = 0
	r.lastValid = false
	r.earlier = r.earlier[:0]
}

// pure reports that executing op in the current state can neither change
// its object's register nor consume fault budget — the operation is
// invisible to every other process.
func (r *reducer) pure(op sim.PendingOp) bool {
	if !op.Known {
		return false
	}
	reg := r.tracker.Register(op.Obj)
	if op.New == reg {
		// Whether it succeeds or fails, the register keeps its value, and
		// neither fault kind is observable on it (both require a change).
		return true
	}
	if reg != op.Exp {
		// Failing CAS: only an admitted overriding fault could make it
		// write (and charge the budget).
		return !(r.kind == fault.Overriding && r.budget.Admits(op.Obj))
	}
	return false
}

// advance folds the previously granted step into the sleep set: a process
// stays asleep while the steps taken since it was passed over remain
// independent of its pending operation, and the passed-over earlier
// siblings of the last decision fall asleep under the same condition.
// Purity of the executed step is established from ground truth — the
// tracked register and the budget are compared against their pre-step
// snapshots — so a mispredicted fault branch can never leave a process
// asleep through a visible step.
func (r *reducer) advance() {
	if !r.lastValid {
		return
	}
	lastPure := r.lastOp.Known &&
		r.tracker.Register(r.lastOp.Obj) == r.preReg &&
		r.budget.TotalFaults() == r.preTotal
	var next uint64
	consider := func(q int) {
		if !r.lastOp.Known {
			return
		}
		qOp := r.pendingOf(q)
		if !qOp.Known {
			return
		}
		if qOp.Obj != r.lastOp.Obj || (lastPure && r.pure(qOp)) {
			next |= 1 << uint(q)
		}
	}
	for q := 0; q < r.n; q++ {
		if r.sleep&(1<<uint(q)) != 0 {
			consider(q)
		}
	}
	for _, q := range r.earlier {
		consider(q)
	}
	r.sleep = next
	r.lastValid = false
	r.earlier = r.earlier[:0]
}

// candidates filters the enabled set down to the branch alternatives this
// node explores: sleeping processes are cut, a process whose local-state
// digest equals an earlier kept candidate's is cut as a renaming of it, and
// in aggressive mode the survivors are intersected with a persistent set
// grown from object footprints. enabled is ascending; the result preserves
// that order. An empty result means the whole node is redundant
// (sleep-blocked): every continuation is covered below an earlier sibling.
func (r *reducer) candidates(enabled []int) []int {
	cand := r.cand[:0]
	for _, p := range enabled {
		if r.sleep&(1<<uint(p)) != 0 {
			continue
		}
		sym := false
		for _, kept := range cand {
			if r.tracker.ProcDigest(kept) == r.tracker.ProcDigest(p) {
				sym = true
				break
			}
		}
		if sym {
			continue
		}
		cand = append(cand, p)
	}
	if r.mode == run.ReduceAggressive && len(cand) > 1 {
		cand = r.persist(cand)
	}
	r.cand = cand
	return cand
}

// persist intersects the candidates with a persistent set: starting from
// the lex-least candidate, any candidate whose whole-future object
// footprint intersects a member's footprint joins, to a fixpoint. A
// candidate left outside can only ever touch objects disjoint from every
// member's future, so all its steps commute with the member subtrees and
// exploring it separately proves nothing new about the verdict. Requires
// the compiled form (prepare refuses otherwise): footprints come from the
// step machines' states.
func (r *reducer) persist(cand []int) []int {
	in := uint64(1) << uint(cand[0])
	for changed := true; changed; {
		changed = false
		for _, q := range cand[1:] {
			if in&(1<<uint(q)) != 0 {
				continue
			}
			qlo, qhi := r.footprintOf(q)
			for _, p := range cand {
				if in&(1<<uint(p)) == 0 {
					continue
				}
				plo, phi := r.footprintOf(p)
				if qlo <= phi && plo <= qhi {
					in |= 1 << uint(q)
					changed = true
					break
				}
			}
		}
	}
	out := cand[:0]
	for _, p := range cand {
		if in&(1<<uint(p)) != 0 {
			out = append(out, p)
		}
	}
	return out
}

// chose records the decision taken at this node: the passed-over earlier
// candidates (they fall asleep in the siblings' subtrees) and the pre-step
// snapshot of the chosen operation's register and the fault total, against
// which advance establishes the step's purity.
func (r *reducer) chose(cand []int, idx int) {
	r.earlier = append(r.earlier[:0], cand[:idx]...)
	pick := cand[idx]
	r.lastOp = r.pendingOf(pick)
	if r.lastOp.Known {
		r.preReg = r.tracker.Register(r.lastOp.Obj)
	}
	r.preTotal = r.budget.TotalFaults()
	r.lastValid = true
}

// salt folds the sleep set into a dedup fingerprint. With both reductions
// on, two visits to the same canonical state are interchangeable only if
// they also carry the same sleep set — the stored visit explored only the
// non-sleeping successors, so pruning a visit with a smaller sleep set
// would silently drop the extra branches it was entitled to.
func (r *reducer) salt(fp dedup.Fingerprint) dedup.Fingerprint {
	v := r.sleep * 0x9e3779b97f4a7c15
	v ^= v >> 29
	fp.Hi ^= v * 0xbf58476d1ce4e5b9
	fp.Lo ^= (v + 0xcbf29ce484222325) * 0x94d049bb133111eb
	return fp
}
