package explore

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/object"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StressPCTWith is the unified-options form of StressPCT.
func StressPCTWith(runs int, seed int64, depth, stepEstimate int, opts ...run.Option) (*StressOutcome, error) {
	return StressPCT(ConfigFrom(run.NewSettings(opts...)), runs, seed, depth, stepEstimate)
}

// StressPCT samples executions like Stress but schedules each run with a
// PCT scheduler (random priorities, depth−1 priority change points) instead
// of a uniform random walk. The paper's impossibility executions are long
// solo bursts punctuated by a few targeted preemptions — exactly the
// schedule shape PCT generates — so for deep violations (e.g. the covering
// execution of Theorem 19 at f ≥ 2) PCT reaches them orders of magnitude
// sooner than uniform sampling. stepEstimate bounds where change points are
// drawn (0 picks a default from the protocol's solo execution length).
func StressPCT(cfg Config, runs int, seed int64, depth, stepEstimate int) (*StressOutcome, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("explore: no protocol")
	}
	if len(cfg.Inputs) == 0 {
		return nil, fmt.Errorf("explore: no inputs")
	}
	kind := cfg.Kind
	if kind == fault.None {
		kind = fault.Overriding
	}
	if stepEstimate <= 0 {
		// A solo run is the natural length scale of a PCT burst; the
		// cheap estimate below is the step count of an uncontended
		// fault-free execution times the process count.
		stepEstimate = soloSteps(cfg) * len(cfg.Inputs)
		if stepEstimate < 8 {
			stepEstimate = 8
		}
	}

	rng := rand.New(rand.NewSource(seed))
	out := &StressOutcome{}
	for i := 0; i < runs; i++ {
		sched := sim.NewPCT(rng.Int63(), stepEstimate, depth)
		ce, verdict, stats, err := stressOnceSched(cfg, kind, rng, sched)
		if err != nil {
			return nil, err
		}
		out.Runs++
		out.TotalFaults += stats.faults
		if stats.maxSteps > out.MaxProcSteps {
			out.MaxProcSteps = stats.maxSteps
		}
		if !verdict.OK() {
			out.Violations++
			if out.First == nil {
				out.First = ce
			}
		}
	}
	return out, nil
}

// soloSteps measures the fault-free solo execution length of the protocol.
func soloSteps(cfg Config) int {
	bank := object.NewBank(cfg.Protocol.Objects(), nil, nil)
	res, err := sim.Run(sim.Config{
		Programs:  run.Programs(cfg.Protocol, bank, cfg.Inputs[:1]),
		Scheduler: sim.NewRoundRobin(),
		StepLimit: cfg.Protocol.StepBound(1),
	})
	if err != nil || len(res.Steps) == 0 {
		return 8
	}
	return res.Steps[0]
}

// stressOnceSched is stressOnce with a caller-supplied scheduler (fault
// decisions still drawn from rng).
func stressOnceSched(cfg Config, kind fault.Kind, rng *rand.Rand, inner sim.Scheduler) (*Counterexample, run.Verdict, runStats, error) {
	budget := fault.NewFixedBudget(cfg.FaultyObjects, cfg.FaultsPerObject)
	policy := fault.PolicyFunc(func(op fault.Op) fault.Proposal {
		if !budget.Admits(op.Object) || !observable(kind, op) {
			return fault.NoFault
		}
		if rng.Intn(2) == 1 {
			return fault.Proposal{Kind: kind}
		}
		return fault.NoFault
	})

	bank := object.NewBank(cfg.Protocol.Objects(), budget, policy)
	var schedule []int
	sched := sim.SchedulerFunc(func(enabled []int) (int, bool) {
		pick, ok := inner.Next(enabled)
		if ok {
			schedule = append(schedule, pick)
		}
		return pick, ok
	})

	limit := cfg.StepLimit
	if limit <= 0 {
		limit = cfg.Protocol.StepBound(len(cfg.Inputs))
	}
	log := trace.New()
	res, err := sim.Run(sim.Config{
		Programs:  run.Programs(cfg.Protocol, bank, cfg.Inputs),
		Scheduler: sched,
		StepLimit: limit,
		Log:       log,
	})
	if err != nil && res == nil {
		return nil, run.Verdict{}, runStats{}, err
	}

	stats := runStats{faults: budget.TotalFaults()}
	for _, s := range res.Steps {
		if s > stats.maxSteps {
			stats.maxSteps = s
		}
	}
	verdict := run.Evaluate(cfg.Inputs, res, err)
	ce := &Counterexample{
		Schedule: schedule,
		Verdict:  verdict,
		Trace:    log,
		Inputs:   cfg.Inputs,
	}
	return ce, verdict, stats, nil
}
