package explore

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/run"
)

// reduceCase is one protocol configuration of the reduction differential
// sweep: every case is run with reduction off (the reference) and on, and
// the two outcomes must agree on everything reduction promises to preserve.
type reduceCase struct {
	name    string
	cfg     Config
	violate bool // the full exploration is known to find a violation
}

// reduceCases covers every protocol family, clean and violating, with the
// checker's own fault policy (the only policy reduction supports) — the
// same matrix the compiled-vs-interpreted differential sweeps.
func reduceCases() []reduceCase {
	return []reduceCase{
		{"single-cas-clean", Config{
			Protocol:        core.SingleCAS{},
			Inputs:          inputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		}, false},
		{"single-cas-violating", Config{
			Protocol:        core.SingleCAS{},
			Inputs:          inputs(3),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		}, true},
		{"f-plus-one-clean", Config{
			Protocol:        core.NewFPlusOne(1),
			Inputs:          inputs(3),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		}, false},
		{"staged-clean", Config{
			Protocol:        core.NewStaged(1, 1),
			Inputs:          inputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: 1,
		}, false},
		{"staged-violating", Config{
			Protocol:        core.NewStaged(1, 1),
			Inputs:          inputs(3),
			FaultyObjects:   []int{0},
			FaultsPerObject: 1,
		}, true},
		{"f-plus-one-fault-free", Config{
			Protocol: core.NewFPlusOne(1),
			Inputs:   inputs(3),
		}, false},
		{"silent-retry-clean", Config{
			Protocol:        core.NewSilentRetry(2),
			Inputs:          inputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: 2,
			Kind:            fault.Silent,
		}, false},
		{"silent-livelock", Config{
			Protocol:        core.NewSilentRetry(1),
			Inputs:          inputs(2),
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
			Kind:            fault.Silent,
			StepLimit:       12,
		}, true},
	}
}

func mustCheck(t *testing.T, cfg Config) *Outcome {
	t.Helper()
	out, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// diffReduced compares a reduced outcome against the full reference and
// describes the first difference ("" when the reduction kept its promises).
// exact additionally requires the lex-least counterexample to be preserved
// verbatim — schedule, decisions, detail, and trace — which holds in default
// mode; verdict-only comparisons (aggressive mode, equal inputs where
// symmetry may rename processes) pass exact=false.
func diffReduced(full, red *Outcome, exact bool) string {
	if full.Complete != red.Complete {
		return fmt.Sprintf("completeness: full %v, reduced %v", full.Complete, red.Complete)
	}
	if full.OK() != red.OK() {
		return fmt.Sprintf("verdict: full violation=%v, reduced violation=%v", !full.OK(), !red.OK())
	}
	if red.Executions > full.Executions {
		return fmt.Sprintf("executions: reduced %d > full %d (reduction added leaves)", red.Executions, full.Executions)
	}
	if full.Violation == nil {
		return ""
	}
	fv, rv := full.Violation, red.Violation
	if fv.Verdict.Violation != rv.Verdict.Violation {
		return fmt.Sprintf("violation kind: full %s, reduced %s", fv.Verdict.Violation, rv.Verdict.Violation)
	}
	if !exact {
		return ""
	}
	if fv.Verdict.Detail != rv.Verdict.Detail {
		return fmt.Sprintf("violation detail: full %q, reduced %q", fv.Verdict.Detail, rv.Verdict.Detail)
	}
	if !reflect.DeepEqual(fv.Schedule, rv.Schedule) {
		return fmt.Sprintf("counterexample schedule: full %v, reduced %v", fv.Schedule, rv.Schedule)
	}
	if !reflect.DeepEqual(fv.Verdict.Decisions, rv.Verdict.Decisions) ||
		!reflect.DeepEqual(fv.Verdict.Decided, rv.Verdict.Decided) {
		return fmt.Sprintf("counterexample decisions: full %s, reduced %s", fv.Verdict.String(), rv.Verdict.String())
	}
	if d := diffEvents(fv.Trace.Events(), rv.Trace.Events()); d != "" {
		return "counterexample trace: " + d
	}
	return ""
}

// TestReduceMatchesFull is the reduction-equivalence gate (scripts/check.sh
// runs it by name): for every protocol family, clean and violating, on both
// execution forms, the reduced exploration must report the same verdict,
// the same completeness, and — in default mode with distinct inputs, where
// symmetry skipping cannot fire — the exact same lex-least counterexample
// (schedule, decisions, trace) as the full exploration, with no more
// executions than the full one.
func TestReduceMatchesFull(t *testing.T) {
	for _, tc := range reduceCases() {
		tc := tc
		for _, exec := range []run.ExecMode{run.ExecInterpreted, run.ExecCompiled} {
			exec := exec
			t.Run(fmt.Sprintf("%s/%s", tc.name, exec), func(t *testing.T) {
				t.Parallel()
				base := tc.cfg
				base.Exec = exec
				base.MaxExecutions = 2_000_000

				full := mustCheck(t, base)
				reduced := base
				reduced.Reduce = run.ReduceSafe
				red := mustCheck(t, reduced)

				if tc.violate == full.OK() {
					t.Fatalf("reference sweep: violation=%v, want %v", !full.OK(), tc.violate)
				}
				if d := diffReduced(full, red, true); d != "" {
					t.Fatal(d)
				}
				t.Logf("%d executions full, %d reduced (%.2fx)",
					full.Executions, red.Executions,
					float64(full.Executions)/float64(red.Executions))
			})
		}
	}
}

// TestReduceAggressiveKeepsVerdict pins aggressive mode's weaker contract:
// same verdict and completeness as the full sweep, never more executions
// than safe mode, on the compiled form it requires.
func TestReduceAggressiveKeepsVerdict(t *testing.T) {
	for _, tc := range reduceCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base := tc.cfg
			base.Exec = run.ExecCompiled
			base.MaxExecutions = 2_000_000

			full := mustCheck(t, base)
			safe := base
			safe.Reduce = run.ReduceSafe
			son := mustCheck(t, safe)
			agg := base
			agg.Reduce = run.ReduceAggressive
			aon := mustCheck(t, agg)

			if d := diffReduced(full, aon, false); d != "" {
				t.Fatal(d)
			}
			if aon.Executions > son.Executions {
				t.Errorf("aggressive explored %d executions, safe only %d", aon.Executions, son.Executions)
			}
		})
	}
}

// TestReduceAggressiveRefusesInterpreted pins prepare's gate: persistent
// sets need the step machines' footprints.
func TestReduceAggressiveRefusesInterpreted(t *testing.T) {
	_, err := Check(Config{
		Protocol: core.SingleCAS{},
		Inputs:   inputs(2),
		Exec:     run.ExecInterpreted,
		Reduce:   run.ReduceAggressive,
	})
	if err == nil {
		t.Fatal("aggressive reduction on the interpreted form must be refused")
	}
}

// TestReduceRefusesFixedPolicy pins prepare's other gate: the reducer
// reasons about the checker's own fault branches, not an opaque policy's.
func TestReduceRefusesFixedPolicy(t *testing.T) {
	_, err := Check(Config{
		Protocol:    core.SingleCAS{},
		Inputs:      inputs(2),
		FixedPolicy: fault.Always(fault.Overriding),
		Reduce:      run.ReduceSafe,
	})
	if err == nil {
		t.Fatal("reduction with FixedPolicy must be refused")
	}
}

// TestReduceSymmetryEqualInputs gives symmetry skipping something to bite
// on: with every input equal, processes start indistinguishable, so the
// reduced tree must be strictly smaller than sleep sets alone achieve with
// distinct inputs — while the verdict and completeness stay exact.
func TestReduceSymmetryEqualInputs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"single-cas-n3", Config{
			Protocol:        core.SingleCAS{},
			Inputs:          []int64{7, 7, 7},
			FaultyObjects:   []int{0},
			FaultsPerObject: fault.Unbounded,
		}},
		{"staged-n2", Config{
			Protocol:        core.NewStaged(1, 1),
			Inputs:          []int64{7, 7},
			FaultyObjects:   []int{0},
			FaultsPerObject: 1,
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base := tc.cfg
			base.MaxExecutions = 2_000_000
			full := mustCheck(t, base)
			reduced := base
			reduced.Reduce = run.ReduceSafe
			red := mustCheck(t, reduced)
			if d := diffReduced(full, red, false); d != "" {
				t.Fatal(d)
			}
			if red.Executions >= full.Executions {
				t.Errorf("equal inputs: reduced %d executions, full %d — symmetry never fired",
					red.Executions, full.Executions)
			}
			t.Logf("%d executions full, %d reduced", full.Executions, red.Executions)
		})
	}
}

// TestReduceEngineMatchesSequential runs the reduced exploration on the
// parallel engine and pins its determinism contract under reduction: same
// verdict, same counterexample, and (for complete clean sweeps) the same
// execution count as the sequential reduced checker, for any worker count.
func TestReduceEngineMatchesSequential(t *testing.T) {
	for _, tc := range reduceCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.MaxExecutions = 2_000_000
			cfg.Reduce = run.ReduceSafe
			seq := mustCheck(t, cfg)

			for _, workers := range []int{1, 4} {
				eng := &Engine{Workers: workers}
				out, err := eng.Check(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if out.OK() != seq.OK() {
					t.Fatalf("workers=%d: verdict violation=%v, sequential %v", workers, !out.OK(), !seq.OK())
				}
				if seq.Violation != nil {
					if !reflect.DeepEqual(out.Violation.Schedule, seq.Violation.Schedule) {
						t.Fatalf("workers=%d: counterexample schedule %v, sequential %v",
							workers, out.Violation.Schedule, seq.Violation.Schedule)
					}
					if !reflect.DeepEqual(out.Violation.Path, seq.Violation.Path) {
						t.Fatalf("workers=%d: counterexample path %v, sequential %v",
							workers, out.Violation.Path, seq.Violation.Path)
					}
				} else {
					if !out.Complete || out.Executions != seq.Executions {
						t.Fatalf("workers=%d: %d executions (complete=%v), sequential %d (complete=%v)",
							workers, out.Executions, out.Complete, seq.Executions, seq.Complete)
					}
				}
			}
		})
	}
}

// TestReduceWithDedup composes the two pruning mechanisms. The sleep set is
// folded into the dedup fingerprint (reducer.salt), so two visits to the
// same canonical state merge only when they are truly interchangeable; the
// composition must keep exact verdicts and, on clean sweeps, completeness.
func TestReduceWithDedup(t *testing.T) {
	for _, tc := range reduceCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.MaxExecutions = 2_000_000
			full := mustCheck(t, cfg)

			rcfg := cfg
			rcfg.Reduce = run.ReduceSafe
			eng := &Engine{Workers: 2, Dedup: true}
			out, err := eng.Check(context.Background(), rcfg)
			if err != nil {
				t.Fatal(err)
			}
			if out.OK() != full.OK() {
				t.Fatalf("dedup+reduce verdict: violation=%v, full sweep %v", !out.OK(), !full.OK())
			}
			if full.Violation != nil {
				if out.Violation.Verdict.Violation != full.Violation.Verdict.Violation {
					t.Fatalf("dedup+reduce violation kind %s, full %s",
						out.Violation.Verdict.Violation, full.Violation.Verdict.Violation)
				}
			} else if !out.Complete {
				t.Fatalf("dedup+reduce incomplete after %d executions on a clean sweep", out.Executions)
			}
			if out.Executions > full.Executions {
				t.Errorf("dedup+reduce explored %d executions, full sweep only %d", out.Executions, full.Executions)
			}
		})
	}
}

// FuzzReduceNeverMissesViolation fuzzes small configurations across every
// protocol family and fault kind: whatever the full exploration concludes,
// the reduced one must conclude too — a reduced sweep that verifies a
// configuration the full sweep refutes (or vice versa) is unsound.
func FuzzReduceNeverMissesViolation(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), false, false)
	f.Add(uint8(0), uint8(1), uint8(0), false, false) // single-cas n=3: violating
	f.Add(uint8(1), uint8(1), uint8(0), false, true)
	f.Add(uint8(2), uint8(0), uint8(1), false, false)
	f.Add(uint8(2), uint8(1), uint8(1), false, false) // staged n=3 t=1: violating
	f.Add(uint8(3), uint8(0), uint8(0), true, false)  // silent livelock
	f.Add(uint8(3), uint8(0), uint8(2), true, true)
	f.Fuzz(func(t *testing.T, proto, nsel, tsel uint8, silent, equal bool) {
		var p core.Protocol
		switch proto % 4 {
		case 0:
			p = core.SingleCAS{}
		case 1:
			p = core.NewFPlusOne(1)
		case 2:
			p = core.NewStaged(1, 1)
		case 3:
			p = core.NewSilentRetry(1)
		}
		n := 2 + int(nsel%2)
		in := inputs(n)
		if equal {
			for i := range in {
				in[i] = 7
			}
		}
		budget := []int{fault.Unbounded, 1, 2}[tsel%3]
		kind := fault.Overriding
		if silent {
			kind = fault.Silent
		}
		cfg := Config{
			Protocol:        p,
			Inputs:          in,
			FaultyObjects:   []int{0},
			FaultsPerObject: budget,
			Kind:            kind,
			StepLimit:       12,
			MaxExecutions:   500_000,
		}
		full, err := Check(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Reduce = run.ReduceSafe
		red, err := Check(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !full.Complete && full.OK() {
			t.Skip("reference sweep capped without a verdict")
		}
		exact := !equal // symmetry may rename processes when inputs collide
		if d := diffReduced(full, red, exact); d != "" {
			t.Fatalf("proto=%d n=%d t=%d kind=%v equal=%v: %s", proto%4, n, budget, kind, equal, d)
		}
	})
}
