package explore

import (
	"context"
	"fmt"
)

// Subsets enumerates all size-k subsets of {0, .., n-1} in lexicographic
// order — the adversary's possible commitments to a faulty-object set.
func Subsets(n, k int) [][]int {
	if k < 0 || k > n {
		return nil
	}
	var out [][]int
	subset := make([]int, k)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			out = append(out, append([]int(nil), subset...))
			return
		}
		for i := start; i <= n-(k-idx); i++ {
			subset[idx] = i
			rec(i+1, idx+1)
		}
	}
	rec(0, 0)
	return out
}

// CheckAllSubsets runs Check once per size-f subset of the protocol's
// objects as the faulty set — the full quantifier of Definition 3 ("at most
// f faulty objects", adversary's choice). It returns the first violating
// outcome, or the combined outcome if every subset verifies.
func CheckAllSubsets(cfg Config, f int) (*Outcome, error) {
	return checkAllSubsets(cfg, f, func(c Config) (*Outcome, error) { return Check(c) })
}

// CheckAllSubsets is the engine form of the package-level CheckAllSubsets:
// subsets are examined in deterministic lexicographic order, each explored
// in parallel by the engine's workers.
func (e *Engine) CheckAllSubsets(ctx context.Context, cfg Config, f int) (*Outcome, error) {
	return checkAllSubsets(cfg, f, func(c Config) (*Outcome, error) { return e.Check(ctx, c) })
}

func checkAllSubsets(cfg Config, f int, check func(Config) (*Outcome, error)) (*Outcome, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("explore: no protocol")
	}
	objects := cfg.Protocol.Objects()
	subsets := Subsets(objects, f)
	if len(subsets) == 0 {
		return nil, fmt.Errorf("explore: no size-%d subsets of %d objects", f, objects)
	}
	total := &Outcome{Complete: true}
	for _, sub := range subsets {
		c := cfg
		c.FaultyObjects = sub
		out, err := check(c)
		if err != nil {
			return nil, err
		}
		total.Executions += out.Executions
		if out.MaxProcSteps > total.MaxProcSteps {
			total.MaxProcSteps = out.MaxProcSteps
		}
		if out.MaxFaults > total.MaxFaults {
			total.MaxFaults = out.MaxFaults
		}
		if !out.Complete {
			total.Complete = false
		}
		if out.Violation != nil {
			total.Violation = out.Violation
			return total, nil
		}
	}
	return total, nil
}

// FindMinimal enumerates the COMPLETE execution tree (no early exit on the
// first violation) and returns the violating execution with the shortest
// schedule, or nil if none exists. Use it on small configurations to
// extract the crispest counterexample for a report; Check is the fast path.
func FindMinimal(cfg Config) (*Counterexample, *Outcome, error) {
	kind, cap, compiled, err := cfg.prepare()
	if err != nil {
		return nil, nil, err
	}

	out := &Outcome{Workers: 1}
	var best *Counterexample
	c := &chooser{}
	es := newExecState(cfg, kind, compiled, c, nil)
	defer es.close()
	for out.Executions < cap {
		c.arity = c.arity[:0]
		c.pos = 0
		verdict, stats, _, err := es.runLeaf(context.Background())
		if err != nil {
			return nil, nil, err
		}
		out.Executions++
		if stats.maxSteps > out.MaxProcSteps {
			out.MaxProcSteps = stats.maxSteps
		}
		if stats.faults > out.MaxFaults {
			out.MaxFaults = stats.faults
		}
		if !verdict.OK() {
			ce := es.counterexample(verdict)
			if best == nil || len(ce.Schedule) < len(best.Schedule) {
				best = ce
			}
		}
		if !c.next() {
			out.Complete = true
			break
		}
	}
	out.Violation = best
	return best, out, nil
}
