package explore

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestChooserDonateLastOpenBranch: when the only branch point with untaken
// alternatives is carved off, the donor must hand over ONE consolidated task
// covering all of those alternatives and then have nothing left to backtrack
// into — donating the last open branch ends the donor's own enumeration
// after the current path.
func TestChooserDonateLastOpenBranch(t *testing.T) {
	// Depth 0 is the single open branch point (choice 0 of arity 3);
	// depths 1 and 2 are exhausted.
	c := &chooser{path: []int{0, 1, 1}, arity: []int{3, 2, 2}, pos: 3}

	p, floor, ok := c.donate()
	if !ok || !reflect.DeepEqual(p, []int{1}) || floor != 0 {
		t.Fatalf("donate() = %v, %d, %v, want [1], 0, true", p, floor, ok)
	}
	if c.lb != 1 {
		t.Fatalf("donation must raise the floor past the donated branch: lb = %d, want 1", c.lb)
	}
	if c.next() {
		t.Fatalf("donor backtracked to %v after donating its last open branch", c.path)
	}
	// Nothing further to give away either.
	if p, _, ok := c.donate(); ok {
		t.Fatalf("second donate() = %v, want none", p)
	}

	// The donated task enumerates the REMAINING alternatives itself: a
	// recipient chooser seeded with (path, floor) and the same arity
	// advances from alternative 1 to alternative 2, then exhausts.
	rc := &chooser{path: append(p, 1), arity: []int{3, 2}, pos: 2, lb: floor}
	if !rc.next() || !reflect.DeepEqual(rc.path, []int{2}) {
		t.Fatalf("recipient next() -> %v, want [2]", rc.path)
	}
	rc.arity = rc.arity[:1]
	if rc.next() {
		t.Fatalf("recipient backtracked past its floor to %v", rc.path)
	}
}

// TestChooserDonateNothingOpen: a chooser whose whole remaining subtree is
// exhausted donates nothing and leaves its floor untouched.
func TestChooserDonateNothingOpen(t *testing.T) {
	c := &chooser{path: []int{1, 1}, arity: []int{2, 2}, pos: 2}
	if p, _, ok := c.donate(); ok {
		t.Fatalf("donate() = %v, want none", p)
	}
	if c.lb != 0 {
		t.Fatalf("failed donation moved the floor to %d", c.lb)
	}
}

// TestFrontierDonationRacingAbort: donations pushed while the frontier is
// being aborted must neither deadlock a waiting worker nor be lost from the
// post-abort snapshot — abort fails future pops but keeps queued tasks, and
// the aborted worker's unfinished claim stays in its slot.
func TestFrontierDonationRacingAbort(t *testing.T) {
	root := task{path: []int{0}, floor: 1}
	fr := newFrontier([]task{root}, 2)

	// Worker 0 claims the root task; worker 1 blocks in pop.
	got, ok := fr.pop(0)
	if !ok || !reflect.DeepEqual(got.path, root.path) {
		t.Fatalf("pop(0) = %v, %v", got, ok)
	}
	popped := make(chan bool, 1)
	go func() {
		_, ok := fr.pop(1)
		popped <- ok
	}()

	// Donation and abort race from separate goroutines.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		fr.push([]task{{path: []int{0, 1}, floor: 2}})
		fr.publish(0, []int{0, 0, 1}, 1)
	}()
	go func() {
		defer wg.Done()
		fr.abort()
	}()
	wg.Wait()

	// Worker 1 must be released; whether it won the donation or saw the
	// abort first, it must not hang.
	select {
	case ok := <-popped:
		if ok {
			fr.done(1, true)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pop(1) still blocked after abort")
	}

	// Worker 0 abandons its task (as engine workers do on cancellation):
	// the claim stays in its slot.
	fr.done(0, false)
	if _, ok := fr.pop(0); ok {
		t.Fatal("pop succeeded after abort")
	}

	// The snapshot must cover worker 0's unfinished claim, and — unless
	// worker 1 already claimed it — the donation pushed during the abort.
	snap := fr.snapshot()
	foundClaim := false
	for _, task := range snap {
		if reflect.DeepEqual(task.path, []int{0, 0, 1}) && task.floor == 1 {
			foundClaim = true
		}
	}
	if !foundClaim {
		t.Fatalf("snapshot %v lost the aborted worker's published claim", snap)
	}
}

// TestFrontierAbandonedTaskKeepsSlot: done(w, false) must keep the task
// visible to snapshot — this is what makes a cancelled run's checkpoint
// cover work the worker never finished.
func TestFrontierAbandonedTaskKeepsSlot(t *testing.T) {
	fr := newFrontier([]task{{path: []int{2}, floor: 1}}, 1)
	if _, ok := fr.pop(0); !ok {
		t.Fatal("pop failed on a non-empty frontier")
	}
	fr.done(0, false)
	snap := fr.snapshot()
	if len(snap) != 1 || !reflect.DeepEqual(snap[0].path, []int{2}) {
		t.Fatalf("snapshot = %v, want the abandoned task", snap)
	}

	// A finished task, by contrast, leaves no residue.
	fr2 := newFrontier([]task{{path: []int{3}, floor: 1}}, 1)
	if _, ok := fr2.pop(0); !ok {
		t.Fatal("pop failed on a non-empty frontier")
	}
	fr2.done(0, true)
	if snap := fr2.snapshot(); len(snap) != 0 {
		t.Fatalf("snapshot after finished task = %v, want empty", snap)
	}
}
